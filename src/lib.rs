//! # sensor-fusion-fpga
//!
//! A full reproduction of Chappell et al., *"Exploiting real-time FPGA
//! based adaptive systems technology for real-time Sensor Fusion in
//! next generation automotive safety systems"* (DATE 2005): Kalman-
//! filter boresighting of automotive sensors with every substrate the
//! paper's demonstrator depends on, built from scratch in Rust.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`math`] | `mathx` | vectors/matrices, rotations, Cholesky, statistics |
//! | [`sensor`] | `sensors` | DMU 6-DOF IMU and ADXL202 models |
//! | [`motion`] | `vehicle` | drive profiles, tilt table, road vibration |
//! | [`comm`] | `comms` | CAN 2.0A, UART, bridge, stream reconstruction |
//! | [`hw`] | `fpga` | Sabre soft core, Softfloat, fixed point, pipeline |
//! | [`vision`] | `video` | frames, scenes, camera model, affine paths |
//! | [`fusion`] | `boresight` | the paper's sensor-fusion contribution |
//!
//! # Quickstart
//!
//! Fusion runs are *streaming sessions*: a [`fusion::FusionSession`]
//! wires a sensor source, a fusion backend and any sinks around one
//! incremental event loop, and you step it as coarsely or finely as
//! you like:
//!
//! ```
//! use sensor_fusion_fpga::fusion::scenario::ScenarioConfig;
//! use sensor_fusion_fpga::fusion::FusionSession;
//! use sensor_fusion_fpga::math::EulerAngles;
//! use sensor_fusion_fpga::motion::TiltTable;
//!
//! let mut config = ScenarioConfig::static_test(EulerAngles::from_degrees(2.0, -3.0, 1.5));
//! config.duration_s = 30.0;
//! let table = TiltTable::observability_sequence(20.0, config.duration_s / 8.0);
//! let mut session = FusionSession::from_scenario(&table, &config);
//! session.run_for(10.0);          // stream the first 10 s
//! assert!(session.estimate().updates > 0);
//! session.run_to_end();
//! assert!(session.into_result().max_error_deg() < 0.5);
//! ```
//!
//! The batch wrappers remain for the paper's canned procedures:
//!
//! ```
//! use sensor_fusion_fpga::fusion::scenario::{run_static, ScenarioConfig};
//! use sensor_fusion_fpga::math::EulerAngles;
//!
//! let mut config = ScenarioConfig::static_test(EulerAngles::from_degrees(2.0, -3.0, 1.5));
//! config.duration_s = 30.0;
//! let result = run_static(&config);
//! assert!(result.max_error_deg() < 0.5);
//! ```
//!
//! Workloads beyond the paper's two procedures come from the
//! declarative scenario layer: compose a [`fusion::spec::ScenarioSpec`]
//! or pull a named one from [`fusion::catalog`], then lower it to a
//! session (or sweep the whole scenario × substrate matrix with
//! [`fusion::spec::ScenarioSuite`]):
//!
//! ```
//! use sensor_fusion_fpga::fusion::catalog;
//!
//! let mut spec = catalog::by_name("emergency-brake").expect("catalog entry");
//! spec.duration_s = 30.0;
//! assert!(spec.run().max_error_deg().is_finite());
//! ```
//!
//! Many sessions — different scenarios, different arithmetic backends
//! ([`fusion::arith`]) — interleave on one thread via
//! [`fusion::SessionGroup`]; see `examples/streaming_sessions.rs` and
//! `examples/scenario_catalog.rs`.

pub use boresight as fusion;
pub use comms as comm;
pub use fpga as hw;
pub use mathx as math;
pub use sensors as sensor;
pub use vehicle as motion;
pub use video as vision;
