//! Multi-sensor alignment — the paper's future-work extension, live.
//!
//! A camera and a lidar each carry their own two-axis accelerometer;
//! both are aligned to the single vehicle-fixed IMU. Because each
//! sensor lands in the common body frame, the camera-to-lidar rotation
//! falls out for free — the cross-calibration a fused "low-cost
//! situational awareness" stack needs, without ever calibrating the
//! sensors against each other.
//!
//! Run with `cargo run --release --example multi_sensor`.

use boresight::multi::MultiBoresight;
use boresight::EstimatorConfig;
use mathx::{rng::seeded_rng, EulerAngles, GaussianSampler, Vec2, Vec3, STANDARD_GRAVITY};
use sensors::DmuSample;

fn main() {
    let camera_truth = EulerAngles::from_degrees(2.0, -1.0, 1.5);
    let lidar_truth = EulerAngles::from_degrees(-3.0, 2.0, -1.0);
    println!("camera mounted at : {:+.3?} deg", camera_truth.to_degrees());
    println!("lidar mounted at  : {:+.3?} deg", lidar_truth.to_degrees());

    let mut multi = MultiBoresight::new(vec![
        ("camera".into(), EstimatorConfig::paper_static()),
        ("lidar".into(), EstimatorConfig::paper_static()),
    ]);

    let c_cam = camera_truth.dcm().transpose();
    let c_lid = lidar_truth.dcm().transpose();
    let mut rng = seeded_rng(4242);
    let mut gauss = GaussianSampler::new();
    let g = STANDARD_GRAVITY;
    let n = 40_000usize; // 200 s at 200 Hz
    for i in 0..n {
        let t = i as f64 * 0.005;
        let f = Vec3::new([
            2.0 * (0.5 * t).sin() + g * 0.2 * (0.07 * t).sin(),
            1.5 * (0.33 * t).cos(),
            g,
        ]);
        if i % 2 == 0 {
            multi.on_dmu(&DmuSample {
                seq: (i / 2) as u16,
                time_s: t,
                gyro: Vec3::zeros(),
                accel: f,
            });
        }
        for (idx, c) in [(0usize, &c_cam), (1usize, &c_lid)] {
            let f_s = c.rotate(f);
            let z = Vec2::new([
                f_s[0] + gauss.sample_scaled(&mut rng, 0.0, 0.007),
                f_s[1] + gauss.sample_scaled(&mut rng, 0.0, 0.007),
            ]);
            multi.on_acc(idx, t, z);
        }
    }

    println!();
    for (i, name) in multi.names().to_vec().iter().enumerate() {
        let est = multi.estimate(i);
        println!(
            "{name:>6}: estimate {:+.3?} deg, 3-sigma {:.3?} deg",
            est.angles.to_degrees(),
            est.three_sigma_deg()
        );
    }

    let rel = multi.relative_alignment(0, 1);
    let expected = (lidar_truth.dcm().transpose() * camera_truth.dcm()).euler();
    println!();
    println!(
        "camera->lidar rotation (estimated) : {:+.3?} deg",
        rel.to_degrees()
    );
    println!(
        "camera->lidar rotation (truth)     : {:+.3?} deg",
        expected.to_degrees()
    );
    println!("(no direct camera/lidar calibration was performed)");
}
