//! Programming the Sabre soft core directly: assemble a small control
//! program, run it on the instruction-set simulator, and interact with
//! the memory-mapped peripherals of the paper's Figure 6.
//!
//! Run with `cargo run --release --example sabre_assembly`.

use fpga::sabre::{
    assemble, disassemble, ControlBlock, Sabre, StopReason, CONTROL_BASE, LEDS_BASE,
};

fn main() {
    // A program in Sabre assembly: compute a Q16.16 angle, store it in
    // the control block, and raise a heartbeat pattern on the LEDs.
    let source = "
            ; r1 = control block base, r2 = LED base
            lui  r1, 0x8000
            ori  r1, r1, 0x60
            lui  r2, 0x8000
            ; roll = 2.5 deg in Q16.16 radians = 0.04363 * 65536 = 2860
            addi r3, r0, 2860
            sw   r3, 0(r1)
            ; status: result valid
            addi r4, r0, 1
            sw   r4, 24(r1)
            ; heartbeat: count 0..=7 onto the LEDs
            addi r5, r0, 0
            addi r6, r0, 8
    blink:  sw   r5, 0(r2)
            addi r5, r5, 1
            blt  r5, r6, blink
            halt
    ";
    let program = assemble(source).expect("valid assembly");
    println!("assembled {} words:", program.words.len());
    println!("{}\n", disassemble(&program.words));

    let mut cpu = Sabre::with_standard_bus();
    cpu.load_program(&program.words);
    let stop = cpu.run(10_000);
    assert_eq!(stop, StopReason::Halted);

    println!(
        "halted after {} instructions, {} cycles",
        cpu.instructions(),
        cpu.cycles()
    );
    let leds = cpu.bus.read32(LEDS_BASE).expect("leds mapped");
    println!("LED register: {leds:#x} (last heartbeat value)");

    let control = cpu
        .bus
        .device_at(CONTROL_BASE)
        .expect("control mapped")
        .as_any()
        .downcast_mut::<ControlBlock>()
        .expect("control block");
    let roll_q16 = control.angles_q16()[0];
    println!(
        "control block roll: {} raw = {:.4} rad = {:.2} deg (valid={})",
        roll_q16,
        roll_q16 as f64 / 65536.0,
        (roll_q16 as f64 / 65536.0).to_degrees(),
        control.result_valid(),
    );
}
