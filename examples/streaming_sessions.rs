//! Streaming sessions: several concurrent fusion runs — each on a
//! different arithmetic backend — interleaved on one thread.
//!
//! The paper's fusion core is a streaming system; `FusionSession`
//! exposes that directly. Here three sessions share one tilt-table
//! scenario but run the 3-state filter over native f64, Softfloat
//! (the paper's Sabre configuration) and Q16.16 fixed point (the
//! proposed enhancement), stepped round-robin in half-second slices —
//! the shape a many-sensor, many-scenario deployment takes.
//!
//! Run with `cargo run --release --example streaming_sessions`.

use sensor_fusion_fpga::fusion::arith::{F64Arith, FixedArith, SoftArith};
use sensor_fusion_fpga::fusion::scenario::ScenarioConfig;
use sensor_fusion_fpga::fusion::{ArithKf3, FusionSession, SessionGroup, SyntheticSource};
use sensor_fusion_fpga::math::{rad_to_deg, EulerAngles};
use sensor_fusion_fpga::motion::TiltTable;

fn main() {
    let truth = EulerAngles::from_degrees(2.0, -1.5, 2.5);
    let mut config = ScenarioConfig::static_test(truth);
    config.duration_s = 60.0;
    let table = TiltTable::observability_sequence(20.0, config.duration_s / 8.0);

    let mut group = SessionGroup::new();
    group.push(
        FusionSession::builder()
            .source(SyntheticSource::from_scenario(&table, &config))
            .backend(ArithKf3::with_defaults(F64Arith))
            .truth(truth)
            .build(),
    );
    group.push(
        FusionSession::builder()
            .source(SyntheticSource::from_scenario(&table, &config))
            .backend(ArithKf3::with_defaults(SoftArith::default()))
            .truth(truth)
            .build(),
    );
    group.push(
        FusionSession::builder()
            .source(SyntheticSource::from_scenario(&table, &config))
            .backend(ArithKf3::with_defaults(FixedArith))
            .truth(truth)
            .build(),
    );

    // Round-robin half-second slices; print a progress line per lap so
    // the interleaving is visible.
    let mut lap = 0u32;
    while !group.all_finished() {
        group.step_all(0.5);
        lap += 1;
        if lap.is_multiple_of(20) {
            let snapshots: Vec<String> = group
                .sessions()
                .iter()
                .map(|s| {
                    let e = s.estimate().angles.error_to(&s.truth());
                    format!(
                        "{:<13} {:.3} deg",
                        s.backend_label(),
                        rad_to_deg(e.max_abs())
                    )
                })
                .collect();
            println!(
                "t = {:>5.1} s | {}",
                group.sessions()[0].time_s(),
                snapshots.join(" | ")
            );
        }
    }

    println!("\nfinal worst-axis error by arithmetic backend:");
    for session in group.sessions() {
        let err = session.estimate().angles.error_to(&session.truth());
        println!(
            "  {:<13} {:>7.4} deg after {} updates",
            session.backend_label(),
            rad_to_deg(err.max_abs()),
            session.estimate().updates,
        );
    }
}
