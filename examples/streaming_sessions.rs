//! Streaming sessions: several concurrent fusion runs — each on a
//! different arithmetic backend — interleaved on one thread.
//!
//! The paper's fusion core is a streaming system; `FusionSession`
//! exposes that directly. Part one interleaves the 3-state ablation
//! filter over native f64, Softfloat (the paper's Sabre configuration)
//! and Q16.16 fixed point. Part two does the same with the **full
//! 5-state boresight IEKF** — the production algorithm over every
//! substrate via `SessionGroup::full_iekf_sweep`, with the divergence
//! of each number system from the f64 reference reported live.
//!
//! Run with `cargo run --release --example streaming_sessions`.

use sensor_fusion_fpga::fusion::arith::{Arith, F64Arith, QArith, SoftArith};
use sensor_fusion_fpga::fusion::estimator::GenericBoresightEstimator;
use sensor_fusion_fpga::fusion::scenario::ScenarioConfig;
use sensor_fusion_fpga::fusion::{ArithKf3, FusionSession, SessionGroup, SyntheticSource};
use sensor_fusion_fpga::math::{rad_to_deg, EulerAngles};
use sensor_fusion_fpga::motion::TiltTable;

fn main() {
    let truth = EulerAngles::from_degrees(2.0, -1.5, 2.5);
    let mut config = ScenarioConfig::static_test(truth);
    config.duration_s = 60.0;
    let table = TiltTable::observability_sequence(20.0, config.duration_s / 8.0);

    // --- Part 1: the 3-state ablation filter per substrate ----------
    let mut group = SessionGroup::new();
    group.push(
        FusionSession::builder()
            .source(SyntheticSource::from_scenario(&table, &config))
            .backend(ArithKf3::with_defaults(F64Arith::default()))
            .truth(truth)
            .build(),
    );
    group.push(
        FusionSession::builder()
            .source(SyntheticSource::from_scenario(&table, &config))
            .backend(ArithKf3::with_defaults(SoftArith::default()))
            .truth(truth)
            .build(),
    );
    group.push(
        FusionSession::builder()
            .source(SyntheticSource::from_scenario(&table, &config))
            .backend(ArithKf3::with_defaults(QArith::<16>::default()))
            .truth(truth)
            .build(),
    );

    // Round-robin half-second slices; print a progress line per lap so
    // the interleaving is visible.
    let mut lap = 0u32;
    while !group.all_finished() {
        group.step_all(0.5);
        lap += 1;
        if lap.is_multiple_of(20) {
            let snapshots: Vec<String> = group
                .sessions()
                .iter()
                .map(|s| {
                    let e = s.estimate().angles.error_to(&s.truth());
                    format!(
                        "{:<13} {:.3} deg",
                        s.backend_label(),
                        rad_to_deg(e.max_abs())
                    )
                })
                .collect();
            println!(
                "t = {:>5.1} s | {}",
                group.sessions()[0].time_s(),
                snapshots.join(" | ")
            );
        }
    }

    println!("\nfinal worst-axis error by arithmetic backend (3-state ablation):");
    for session in group.sessions() {
        let err = session.estimate().angles.error_to(&session.truth());
        println!(
            "  {:<13} {:>7.4} deg after {} updates",
            session.backend_label(),
            rad_to_deg(err.max_abs()),
            session.estimate().updates,
        );
    }

    // --- Part 2: the full 5-state IEKF per substrate ----------------
    println!("\nfull 5-state IEKF sweep (divergence measured against the f64 session):");
    let mut sweep = SessionGroup::full_iekf_sweep(&table, &config);
    while !sweep.all_finished() {
        sweep.step_all(5.0);
        let div = sweep.divergence_from(0);
        println!(
            "t = {:>5.1} s | {}",
            sweep.sessions()[0].time_s(),
            div.iter()
                .map(|d| format!("{:<16} {:.4} deg", d.label, d.max_abs_deg))
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
    for session in sweep.sessions() {
        let err = session.estimate().angles.error_to(&session.truth());
        println!(
            "  {:<16} {:>7.4} deg error after {} updates",
            session.backend_label(),
            rad_to_deg(err.max_abs()),
            session.estimate().updates,
        );
    }
    let soft = sweep.sessions()[1]
        .backend_as::<GenericBoresightEstimator<SoftArith>>()
        .expect("softfloat backend");
    let fixed = sweep.sessions()[2]
        .backend_as::<GenericBoresightEstimator<QArith<16>>>()
        .expect("fixed backend");
    // Per incoming ACC sample, not per accepted update: rejected
    // samples still pay their model/Jacobian/gating arithmetic (the
    // convention the ablation bench and its JSON report use).
    let samples = (config.duration_s * config.acc_rate_hz).round().max(1.0);
    println!(
        "  softfloat cycles/sample: {:.0}  |  q16.16 saturation events: {}",
        soft.filter().arith().cycles() as f64 / samples,
        fixed.filter().arith().saturations(),
    );
}
