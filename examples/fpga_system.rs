//! The full Figure-2/Figure-3 system: sensors on their buses, the
//! CAN-to-RS232 bridge, serial reconstruction, the fusion filter, the
//! Sabre soft core publishing to its control block, and the affine
//! video correction — one end-to-end simulation.
//!
//! Run with `cargo run --release --example fpga_system`.

use boresight::system::{run_system, SystemConfig};
use mathx::EulerAngles;
use vehicle::profile::presets::urban_drive;

fn main() {
    let truth = EulerAngles::from_degrees(2.0, -1.5, 2.5);
    let mut config = SystemConfig::demo(truth);
    config.scenario.duration_s = 60.0;
    let profile = urban_drive(config.scenario.duration_s);

    println!(
        "running the full system for {:.0} s of urban driving...",
        config.scenario.duration_s
    );
    let report = run_system(&profile, &config);

    println!("\n--- fusion ---");
    println!("true misalignment : {:+.3?} deg", report.truth.to_degrees());
    println!(
        "estimate          : {:+.3?} deg",
        report.estimate.angles.to_degrees()
    );
    println!("error             : {:+.3?} deg", report.error_deg);
    println!(
        "control block     : {:+.3?} deg (Q16.16 through the Sabre bus)",
        report.control_angles_deg
    );

    println!("\n--- serial links ---");
    println!("DMU samples reconstructed : {}", report.stream.dmu_samples);
    println!("ACC samples reconstructed : {}", report.stream.acc_samples);
    println!(
        "link errors (DMU/ACC)     : {}/{}",
        report.stream.dmu_errors, report.stream.acc_errors
    );
    println!(
        "sequence gaps (DMU/ACC)   : {}/{}",
        report.stream.dmu_gaps, report.stream.acc_gaps
    );
    println!("bytes transferred         : {}", report.stream.bytes_in);

    println!("\n--- Sabre soft core ---");
    println!("publish program cycles    : {}", report.sabre_cycles);
    println!("instructions retired      : {}", report.sabre_instructions);
    println!(
        "Kalman cycles/update      : {:.0} (Softfloat accounting)",
        report.kalman_cycles_per_update
    );
    println!(
        "Kalman float ops/update   : {:.1}",
        report.kalman_ops_per_update
    );
    println!(
        "Kalman CPU @ 25 MHz       : {:.1}%",
        report.kalman_cpu_utilization * 100.0
    );

    println!("\n--- video path ---");
    println!(
        "PSNR misaligned           : {:.2} dB",
        report.psnr_misaligned_db
    );
    println!(
        "PSNR corrected            : {:.2} dB",
        report.psnr_corrected_db
    );
    println!("pipeline fps budget       : {:.0}", report.video_fps_budget);
    println!("forward-mapping holes     : {}", report.forward_holes);
}
