//! Video boresight correction: the paper's visualization.
//!
//! A camera mounted with a few degrees of misalignment observes a road
//! scene; the affine stage (fixed-point, LUT-driven, as in the FPGA)
//! corrects the picture using the fused misalignment estimate. The
//! example reports the image quality before and after correction and
//! the real-time budget of the pipelined transform.
//!
//! Run with `cargo run --release --example video_stabilization`.

use boresight::scenario::{run_static, ScenarioConfig};
use fpga::pipeline::FrameTiming;
use mathx::EulerAngles;
use video::affine::{transform, MappingKind};
use video::camera::CameraModel;
use video::metrics::psnr;
use video::scene;

fn main() {
    let truth = EulerAngles::from_degrees(3.0, -1.5, 2.0);
    let focal_px = 320.0;
    let (w, h) = (320u32, 240u32);

    // 1. What the misaligned camera sees.
    let reference = scene::road(w, h, 0.3);
    let camera = CameraModel::new(focal_px, truth);
    let seen = camera.observe(&reference);

    // 2. Estimate the misalignment from inertial data (30 s static).
    let mut config = ScenarioConfig::static_test(truth);
    config.duration_s = 30.0;
    let estimate = run_static(&config).estimate;
    println!(
        "estimated misalignment: {:+.3?} deg",
        estimate.angles.to_degrees()
    );

    // 3. Correct the video with the estimate, fixed-point path.
    let correction = CameraModel::correction(&estimate.angles, focal_px, w, h);
    let (corrected, stats) = transform(&seen, &correction, MappingKind::FixedInverse);

    // 4. Quality on the interior (borders are clipped by the shift).
    let margin = 40;
    let crop = |f: &video::Frame| f.crop(margin, margin, w - 2 * margin, h - 2 * margin);
    println!(
        "PSNR misaligned vs reference : {:6.2} dB",
        psnr(&crop(&reference), &crop(&seen))
    );
    println!(
        "PSNR corrected vs reference  : {:6.2} dB",
        psnr(&crop(&reference), &crop(&corrected))
    );
    println!("gather transform cycles      : {}", stats.cycles);

    // 5. The paper-faithful forward mapping for comparison (holes!).
    let (_, fwd) = transform(&seen, &correction, MappingKind::FixedForward);
    println!(
        "forward-mapping holes        : {} px ({:.2}% of frame)",
        fwd.holes,
        fwd.holes as f64 / (w * h) as f64 * 100.0
    );

    // 6. Real-time budget at the RC200E pixel clock.
    let timing = FrameTiming {
        width: w,
        height: h,
        clock_hz: 65e6,
    };
    println!(
        "pipeline budget              : {:.0} fps at 65 MHz (need 25-30)",
        timing.max_fps()
    );
}
