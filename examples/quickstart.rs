//! Quickstart: boresight a misaligned sensor on a tilt table.
//!
//! Injects a known misalignment, runs the paper's static test
//! procedure for 60 seconds, and prints the estimate with its 3-sigma
//! (~99 %) confidence — the numbers a Table-1 row is made of.
//!
//! Run with `cargo run --release --example quickstart`.

use boresight::scenario::{run_static, ScenarioConfig};
use mathx::EulerAngles;

fn main() {
    // The misalignment a laser boresight tool would measure: the
    // "truth" our estimator must recover.
    let truth = EulerAngles::from_degrees(2.0, -3.0, 1.5);
    println!("true misalignment  : {:+.3?} deg", truth.to_degrees());

    let mut config = ScenarioConfig::static_test(truth);
    config.duration_s = 60.0;
    let result = run_static(&config);

    let est = result.estimate;
    println!("estimated          : {:+.3?} deg", est.angles.to_degrees());
    println!("error              : {:+.3?} deg", result.error_deg());
    println!("3-sigma confidence : {:.3?} deg", est.three_sigma_deg());
    println!("filter updates     : {}", est.updates);
    println!(
        "residuals beyond 3-sigma: {:.2}% (expect about 1%)",
        result.exceed_rate * 100.0
    );
    println!(
        "meets 0.5 deg requirement: {}",
        if result.max_error_deg() < 0.5 {
            "yes"
        } else {
            "no"
        }
    );
}
