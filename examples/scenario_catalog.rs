//! The declarative scenario layer: author a workload as pure data,
//! pull named ones from the catalog, and sweep a scenario × substrate
//! matrix in a few lines.
//!
//! Part one lists the catalog. Part two composes a custom
//! `ScenarioSpec` — a mountain descent with emergency stops on a
//! rough road — and runs it batch-style. Part three runs a reduced
//! three-scenario suite over all arithmetic substrates and prints the
//! per-cell report the `scenario_matrix` bench serializes.
//!
//! Run with `cargo run --release --example scenario_catalog`.

use sensor_fusion_fpga::fusion::catalog;
use sensor_fusion_fpga::fusion::spec::{
    EnvironmentSpec, ScenarioSpec, ScenarioSuite, TrajectorySpec, TuningSpec,
};
use sensor_fusion_fpga::math::EulerAngles;
use sensor_fusion_fpga::motion::Segment;

fn trajectory_kind(spec: &ScenarioSpec) -> String {
    match &spec.trajectory {
        TrajectorySpec::TiltSequence { tilt_deg } => format!("tilt table ({tilt_deg} deg)"),
        TrajectorySpec::Level => "level bench".into(),
        TrajectorySpec::Urban => "urban drive".into(),
        TrajectorySpec::Highway => "highway drive".into(),
        TrajectorySpec::Segments { block } => format!("{}-segment loop", block.len()),
    }
}

fn main() {
    // --- Part 1: the named catalog ----------------------------------
    println!("catalog ({} scenarios):", catalog::all().len());
    for spec in catalog::all() {
        println!(
            "  {:>18}  {:>6.0} s  {}",
            spec.name,
            spec.duration_s,
            trajectory_kind(&spec)
        );
    }

    // --- Part 2: compose a scenario the paper never ran -------------
    let descent = ScenarioSpec::named("mountain-descent")
        .with_truth(EulerAngles::from_degrees(2.0, -2.5, 1.5))
        .with_trajectory(TrajectorySpec::Segments {
            block: vec![
                Segment::accelerate(5.0, 2.0),
                Segment::grade(8.0, -0.06), // 6 % downhill
                Segment::turn(4.0, 0.3),
                Segment::brake(2.0, 6.0), // hard stop
                Segment::idle(2.0),
            ],
        })
        .with_environment(EnvironmentSpec::rough_road())
        .with_tuning(TuningSpec::Dynamic)
        .with_duration(90.0);
    let result = descent.run();
    println!(
        "\nmountain-descent: worst error {:.3} deg, {} retunes, exceed rate {:.4}",
        result.max_error_deg(),
        result.retune_count,
        result.exceed_rate
    );

    // --- Part 3: a scenario x substrate sweep ------------------------
    let suite = ScenarioSuite::new(vec![
        catalog::paper_static(),
        catalog::emergency_brake(),
        catalog::can_fault_storm(),
        descent,
    ])
    .with_duration(30.0);
    println!("\nscenario x substrate matrix (30 s cells):");
    for cell in suite.run().cells {
        println!(
            "  {:>18} {:>9}  rms {:>7.4} deg  retunes {:>2}  saturations {:>3}  cycles/sample {:>7.0}{}",
            cell.scenario,
            cell.substrate.label(),
            cell.summary.error_rms_deg,
            cell.summary.retune_count,
            cell.summary.saturations,
            cell.cycles_per_sample,
            cell.summary.stream
                .map(|s| format!(
                    "  wire: {} flips / {} drops",
                    s.fault_bits_flipped, s.fault_bytes_dropped
                ))
                .unwrap_or_default()
        );
    }
}
