//! Dynamic test: estimate misalignment from a moving vehicle.
//!
//! Reproduces the paper's section 11.2 procedure: the instrumented
//! vehicle drives an urban profile; vibration raises the residual
//! floor; the adaptive monitor retunes the measurement noise (the
//! paper raised it to 0.015 m/s^2 or more); the estimate converges
//! during the drive.
//!
//! Run with `cargo run --release --example dynamic_drive`.

use boresight::scenario::{run, ScenarioConfig};
use mathx::EulerAngles;
use vehicle::profile::presets::urban_drive;

fn main() {
    let truth = EulerAngles::from_degrees(2.5, -2.0, 3.0);
    println!("true misalignment : {:+.3?} deg", truth.to_degrees());

    // Start from the *static* tuning to show the adaptive retune.
    let mut config = ScenarioConfig::dynamic_test(truth);
    config.duration_s = 120.0;
    config.estimator.filter.measurement_sigma = 0.005;
    let profile = urban_drive(config.duration_s);
    let result = run(&profile, &config);

    println!(
        "estimated         : {:+.3?} deg",
        result.estimate.angles.to_degrees()
    );
    println!("error             : {:+.3?} deg", result.error_deg());
    println!(
        "3-sigma           : {:.3?} deg",
        result.estimate.three_sigma_deg()
    );
    println!();
    println!("adaptive measurement-noise tuning (the Figure-8 story):");
    println!("  started at sigma = 0.005 m/s^2 (static tuning)");
    println!("  retunes fired    : {}", result.retune_count);
    println!(
        "  final sigma      : {:.4} m/s^2 (paper: 0.015 or higher)",
        result.final_sigma
    );
    println!(
        "  exceed rate      : {:.2}% (target ~1%)",
        result.exceed_rate * 100.0
    );

    // Convergence over the drive.
    println!("\nestimate trace (roll/pitch/yaw deg, 3-sigma yaw deg):");
    for point in result.estimates.iter().step_by(result.estimates.len() / 8) {
        println!(
            "  t={:6.1}s  [{:+7.3} {:+7.3} {:+7.3}]  yaw 3-sigma {:.3}",
            point.time_s,
            point.angles_deg[0],
            point.angles_deg[1],
            point.angles_deg[2],
            point.three_sigma_deg[2]
        );
    }
}
