//! Adaptive substrate reconfiguration under a CAN fault storm.
//!
//! The session starts on cheap Q16.16 fixed point. The storm's bit
//! flips and byte drops batter the link while the quantized covariance
//! collapses, the innovation gate starts rejecting whole windows, and
//! the hysteresis supervisor escapes to native `f64` — carrying the
//! filter state across in a substrate-agnostic snapshot and logging
//! the switch (when, why, at what transfer cost) to its
//! reconfiguration ledger. Once calm returns the policy proposes
//! dropping back to Q16.16; whether that happens is up to the
//! supervisor's admission check, which refuses any substrate whose
//! quantization grid cannot represent the filter's converged
//! innovation statistics — a destructive downshift is vetoed, not
//! performed.
//!
//! Run with `cargo run --release --example adaptive_session`.

use sensor_fusion_fpga::fusion::adaptive::{AdaptiveBackend, HysteresisPolicy, SubstrateId};
use sensor_fusion_fpga::fusion::catalog;
use sensor_fusion_fpga::fusion::spec::Substrate;

fn main() {
    let spec = catalog::by_name("can-fault-storm")
        .expect("catalog scenario")
        .with_duration(40.0);

    // Static reference runs: the all-f64 gold standard and the pinned
    // Q16.16 filter the adaptive session starts from.
    let f64_rms = spec
        .clone()
        .with_substrate(Substrate::F64)
        .run()
        .error_rms_deg();
    let q16_rms = spec
        .clone()
        .with_substrate(Substrate::Q16_16)
        .run()
        .error_rms_deg();
    println!("static f64     : {f64_rms:8.4} deg RMS");
    println!("static q16.16  : {q16_rms:8.4} deg RMS  (collapses under the storm)");

    // The adaptive session: Q16.16 start, f64 escape hatch.
    let mut session = spec.into_adaptive_session(
        spec.lower_trajectory(),
        SubstrateId::Q16_16,
        Box::new(HysteresisPolicy::new(SubstrateId::F64, SubstrateId::Q16_16)),
    );
    session.run_to_end();

    let backend = session
        .backend_as::<AdaptiveBackend>()
        .expect("adaptive backend");
    println!(
        "\nadaptive run   : {} switch(es), {} vetoed, finished on {}",
        backend.switch_count(),
        backend.vetoed_switches(),
        backend.active_substrate()
    );
    for event in backend.ledger().events() {
        println!(
            "  t={:7.3}s  {:>8} -> {:<8}  reason={}  exceed={:.2} gap={:.3} sat={:.3}  transfer={} cycles",
            event.at_time_s,
            event.from.label(),
            event.to.label(),
            event.reason,
            event.context.exceed_rate,
            event.context.gap_rate,
            event.context.saturation_rate,
            event.transfer_cycles
        );
    }
    if backend.vetoed_switches() > 0 {
        println!(
            "  ({} calm-window downshift proposal(s) vetoed: the converged innovation\n   \
             covariance underflows Q16.16's quantization grid, so switching back\n   \
             would re-collapse the filter — the admission check refuses instead)",
            backend.vetoed_switches()
        );
    }

    let adaptive_rms = session.into_result().error_rms_deg();
    println!("adaptive rms   : {adaptive_rms:8.4} deg  (vs {q16_rms:.4} staying on q16.16)");
    assert!(
        adaptive_rms <= f64_rms + 0.5,
        "adaptive run left the documented divergence bound"
    );
}
