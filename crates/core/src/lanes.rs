//! Multi-lane lockstep fusion: `L` independent 5-state IEKFs stepped
//! through one shared instruction stream.
//!
//! The paper's FPGA argument is that a fixed algorithm earns its
//! throughput from *replicated datapaths*, not faster sequencers. This
//! module is the software mirror of that: [`LaneIekf`] keeps `L`
//! filters' states in structure-of-arrays form and runs every
//! arithmetic operation once per instruction across all lanes through
//! the scalar substrate's [`LaneSpec`] lane form — the per-lane loop
//! [`crate::arith::LaneArith`] for every counted/emulated/fixed-point
//! substrate (on native `f64` the loops autovectorize, on emulated
//! substrates the per-op dispatch overhead is amortized over `L`
//! results), or the explicit-vector [`crate::simd::SimdArith`] when
//! the filter is keyed on [`crate::simd::SimdF64`].
//!
//! Lanes are *independent filters*, so per-lane control flow (the
//! innovation gate, IEKF convergence, trust-region clamps, solver
//! singularity) is handled the way a SIMD/FPGA datapath handles it:
//! every lane executes every instruction, and diverging lanes have
//! their writes masked. A masked lane burns its lane slot — exactly
//! like an idle parallel datapath — but its value stream is
//! **bit-identical** to a scalar [`crate::filter::GenericBoresightFilter`] run
//! (pinned per-lane by `tests/lane_parity.rs`).
//!
//! [`LaneBank`] packages a lane filter plus the shared IMU front end
//! ([`ImuPrep`]) and per-lane residual monitors as a
//! [`FusionBackend`], fusing `L` synchronized ACC channels in one
//! session — the batched alternative to `L` scalar estimators or a
//! [`crate::multi::MultiBoresight`] bank.

// Index-based loops are deliberate: they mirror the masked per-lane
// writes of a SIMD datapath (and the matrix equations behind them).
#![allow(clippy::needless_range_loop)]

use crate::arith::{Arith, LaneOps, LaneSpec};
use crate::estimator::{EstimatorConfig, ImuPrep, MisalignmentEstimate};
use crate::filter::{model_at, FilterConfig, KalmanUpdate};
use crate::model::{MEAS_DIM, STATE_DIM};
use crate::monitor::{ResidualMonitor, Retune};
use crate::session::FusionBackend;
use crate::smallmat;
use mathx::{EulerAngles, Vec2, Vec3};
use sensors::DmuSample;
use std::any::Any;

/// The lane value stepping `L` scalars of substrate `A` at once —
/// `[A::T; L]` for [`crate::arith::LaneArith`] lanes,
/// [`crate::simd::F64Lanes`] for explicit-vector lanes. Either way it
/// indexes as `value[lane] -> A::T`.
type LaneT<A, const L: usize> = <<A as LaneSpec<L>>::Lanes as Arith>::T;

/// `L` independent 5-state iterated EKFs in lockstep over the inner
/// substrate `A`.
///
/// Mirrors the structure-exploiting scalar update of
/// [`crate::filter::GenericBoresightFilter`] instruction for instruction; lanes that
/// diverge in control flow (gate rejection, convergence, singular
/// innovation) have their state writes masked so each lane's result is
/// bit-identical to its scalar run.
///
/// All lanes share one [`FilterConfig`]; the measurement sigma is
/// per-lane (adaptive retunes fire independently).
#[derive(Clone, Debug)]
pub struct LaneIekf<A: LaneSpec<L>, const L: usize> {
    config: FilterConfig,
    arith: A::Lanes,
    sigmas: [f64; L],
    x: [LaneT<A, L>; STATE_DIM],
    /// Kept exactly symmetric per lane, like the scalar filter's.
    p: [[LaneT<A, L>; STATE_DIM]; STATE_DIM],
    updates: [u64; L],
    rejected: [u64; L],
}

impl<A: LaneSpec<L>, const L: usize> LaneIekf<A, L> {
    /// Creates the lane filter over the substrate's default context.
    pub fn new(config: FilterConfig) -> Self
    where
        A: Default,
    {
        Self::with_arith(A::default(), config)
    }

    /// Creates the lane filter over an explicit inner context.
    pub fn with_arith(inner: A, config: FilterConfig) -> Self {
        let mut arith = <A::Lanes as LaneOps<L>>::with_inner(inner);
        let zero = arith.num(0.0);
        let a2 = config.initial_angle_sigma * config.initial_angle_sigma;
        let b2 = if config.estimate_bias {
            config.initial_bias_sigma * config.initial_bias_sigma
        } else {
            0.0
        };
        let mut p = [[zero; STATE_DIM]; STATE_DIM];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = if i < 3 { arith.num(a2) } else { arith.num(b2) };
        }
        Self {
            config,
            arith,
            sigmas: [config.measurement_sigma; L],
            x: [zero; STATE_DIM],
            p,
            updates: [0; L],
            rejected: [0; L],
        }
    }

    /// Number of lanes.
    pub const fn lanes(&self) -> usize {
        L
    }

    /// The lane arithmetic context (one shared ledger for all lanes).
    pub fn arith(&self) -> &A::Lanes {
        &self.arith
    }

    /// The lane arithmetic context, mutably (substrate `num`
    /// conversions mutate the instrumentation ledger).
    pub fn arith_mut(&mut self) -> &mut A::Lanes {
        &mut self.arith
    }

    /// The configuration shared by every lane.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// One lane's measurement noise 1-sigma.
    pub fn measurement_sigma(&self, lane: usize) -> f64 {
        self.sigmas[lane]
    }

    /// Retunes one lane's measurement noise.
    pub fn set_measurement_sigma(&mut self, lane: usize, sigma: f64) {
        self.sigmas[lane] = sigma.max(1e-6);
    }

    /// One lane's estimated misalignment.
    pub fn angles(&self, lane: usize) -> EulerAngles {
        EulerAngles::new(
            self.arith.lane_to_f64(&self.x[0], lane),
            self.arith.lane_to_f64(&self.x[1], lane),
            self.arith.lane_to_f64(&self.x[2], lane),
        )
    }

    /// One lane's estimated ACC biases, m/s^2.
    pub fn bias(&self, lane: usize) -> Vec2 {
        Vec2::new([
            self.arith.lane_to_f64(&self.x[3], lane),
            self.arith.lane_to_f64(&self.x[4], lane),
        ])
    }

    /// One lane's per-angle 1-sigma, rad (read-out over a cloned
    /// context, like the scalar filter's).
    pub fn angle_sigma(&self, lane: usize) -> Vec3
    where
        A: Clone,
    {
        let mut a = self.arith.inner().clone();
        let zero = a.num(0.0);
        let mut out = [0.0; 3];
        for (i, o) in out.iter_mut().enumerate() {
            let m = a.max(self.p[i][i][lane], zero);
            let s = a.sqrt(m);
            *o = a.to_f64(s);
        }
        Vec3::new(out)
    }

    /// One lane's accepted-update count.
    pub fn update_count(&self, lane: usize) -> u64 {
        self.updates[lane]
    }

    /// One lane's gate-rejected count.
    pub fn rejected_count(&self, lane: usize) -> u64 {
        self.rejected[lane]
    }

    /// One lane's estimate with confidence.
    pub fn estimate(&self, lane: usize) -> MisalignmentEstimate
    where
        A: Clone,
    {
        MisalignmentEstimate {
            angles: self.angles(lane),
            one_sigma: self.angle_sigma(lane),
            updates: self.updates[lane],
        }
    }

    /// Exports one lane's complete filter state (state vector,
    /// covariance, adaptive sigma, counters) for migration into
    /// another lane — the primitive behind the fleet arena's
    /// compact-on-evict slot moves.
    pub fn export_lane(&self, lane: usize) -> LaneState<A> {
        LaneState {
            x: std::array::from_fn(|i| self.x[i][lane]),
            p: std::array::from_fn(|r| std::array::from_fn(|c| self.p[r][c][lane])),
            sigma: self.sigmas[lane],
            updates: self.updates[lane],
            rejected: self.rejected[lane],
        }
    }

    /// Imports a previously exported lane state into `lane`,
    /// overwriting it bit-for-bit. Other lanes are untouched.
    pub fn import_lane(&mut self, lane: usize, state: &LaneState<A>) {
        for i in 0..STATE_DIM {
            self.x[i][lane] = state.x[i];
            for j in 0..STATE_DIM {
                self.p[i][j][lane] = state.p[i][j];
            }
        }
        self.sigmas[lane] = state.sigma;
        self.updates[lane] = state.updates;
        self.rejected[lane] = state.rejected;
    }

    /// Re-initializes one lane to the fresh-filter state (the per-lane
    /// mirror of [`Self::with_arith`]'s init), so a recycled slot is
    /// indistinguishable from a newly constructed filter.
    pub fn reset_lane(&mut self, lane: usize) {
        let a2 = self.config.initial_angle_sigma * self.config.initial_angle_sigma;
        let b2 = if self.config.estimate_bias {
            self.config.initial_bias_sigma * self.config.initial_bias_sigma
        } else {
            0.0
        };
        let a = self.arith.inner_mut();
        let zero = a.num(0.0);
        let a2_t = a.num(a2);
        let b2_t = a.num(b2);
        for i in 0..STATE_DIM {
            self.x[i][lane] = zero;
            for j in 0..STATE_DIM {
                self.p[i][j][lane] = if i != j {
                    zero
                } else if i < 3 {
                    a2_t
                } else {
                    b2_t
                };
            }
        }
        self.sigmas[lane] = self.config.measurement_sigma;
        self.updates[lane] = 0;
        self.rejected[lane] = 0;
    }

    /// Time propagation, all lanes at once (lanes run in lockstep on a
    /// common schedule): the symmetric diagonal bump `P += Q dt`.
    pub fn predict(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let qa = self.config.angle_process_density.powi(2) * dt;
        let qb = if self.config.estimate_bias {
            self.config.bias_process_density.powi(2) * dt
        } else {
            0.0
        };
        let a = &mut self.arith;
        let qa_t = a.num(qa);
        let qb_t = a.num(qb);
        for i in 0..3 {
            self.p[i][i] = a.add(self.p[i][i], qa_t);
        }
        for i in 3..STATE_DIM {
            self.p[i][i] = a.add(self.p[i][i], qb_t);
        }
    }

    /// Time propagation with a distinct `dt` per lane (fleet lanes hold
    /// unrelated vehicles on unsynchronized measurement schedules).
    /// Lanes with `dt <= 0` are untouched — the per-lane mirror of the
    /// scalar filter's early return — so each lane's covariance stream
    /// stays bit-identical to a scalar filter run on its own schedule.
    pub fn predict_lanes(&mut self, dts: &[f64; L]) {
        if dts.iter().all(|&dt| dt <= 0.0) {
            return;
        }
        let qa: [f64; L] = dts.map(|dt| {
            if dt > 0.0 {
                self.config.angle_process_density.powi(2) * dt
            } else {
                0.0
            }
        });
        let qb: [f64; L] = dts.map(|dt| {
            if dt > 0.0 && self.config.estimate_bias {
                self.config.bias_process_density.powi(2) * dt
            } else {
                0.0
            }
        });
        let a = &mut self.arith;
        let qa_t = a.from_lanes(qa);
        let qb_t = a.from_lanes(qb);
        for i in 0..STATE_DIM {
            let q_t = if i < 3 { qa_t } else { qb_t };
            let next = a.add(self.p[i][i], q_t);
            for lane in 0..L {
                if dts[lane] > 0.0 {
                    self.p[i][i][lane] = next[lane];
                }
            }
        }
    }

    /// Measurement update, all lanes at once: lane `i` fuses `z[i]`
    /// against the shared body specific force `f_b` (the
    /// one-IMU-many-sensors configuration). Returns each lane's update
    /// record.
    pub fn update_shared_force(
        &mut self,
        z: &[Vec2; L],
        f_b: [A::T; 3],
        time_s: f64,
    ) -> [KalmanUpdate; L] {
        let a = &mut self.arith;
        let fb = f_b.map(|v| a.splat(v));
        self.update_lanes_t(z, fb, &[time_s; L], &[false; L])
    }

    /// Measurement update with a distinct specific force per lane
    /// (independent scenarios in lockstep).
    pub fn update_lanes(
        &mut self,
        z: &[Vec2; L],
        f_b: &[Vec3; L],
        time_s: f64,
    ) -> [KalmanUpdate; L] {
        let zero = self.arith.inner_mut().num(0.0);
        let mut fb = [self.arith.splat(zero); 3];
        for axis in 0..3 {
            for lane in 0..L {
                fb[axis][lane] = self.arith.inner_mut().num(f_b[lane][axis]);
            }
        }
        self.update_lanes_t(z, fb, &[time_s; L], &[false; L])
    }

    /// Measurement update for a subset of lanes: lane `i` participates
    /// only when `active[i]`; inactive lanes keep their state,
    /// covariance and counters bit-for-bit and return `None`. Each
    /// active lane carries its own timestamp (fleet lanes hold
    /// unrelated vehicles whose measurements merely landed in the same
    /// batch window).
    ///
    /// Inactive lanes still execute the shared instruction stream with
    /// masked writes — exactly how gate-rejected lanes are handled —
    /// so every active lane's result stays bit-identical to a scalar
    /// filter fed only that lane's schedule.
    pub fn update_lanes_masked(
        &mut self,
        z: &[Vec2; L],
        f_b: [LaneT<A, L>; 3],
        times: &[f64; L],
        active: &[bool; L],
    ) -> [Option<KalmanUpdate>; L] {
        let inactive: [bool; L] = std::array::from_fn(|lane| !active[lane]);
        let updates = self.update_lanes_t(z, f_b, times, &inactive);
        std::array::from_fn(|lane| active[lane].then(|| updates[lane]))
    }

    /// The lockstep mirror of the scalar filter's `update_t`.
    ///
    /// `inactive` lanes are frozen from the start: they execute every
    /// instruction with writes masked (state, covariance, counters all
    /// untouched) and their returned records are meaningless.
    fn update_lanes_t(
        &mut self,
        z: &[Vec2; L],
        f_b: [LaneT<A, L>; 3],
        times: &[f64; L],
        inactive: &[bool; L],
    ) -> [KalmanUpdate; L] {
        let estimate_bias = self.config.estimate_bias;
        let a = &mut self.arith;
        let r_t = {
            let sigmas = self.sigmas;
            a.from_lanes(sigmas.map(|s| s * s))
        };
        let zero = a.num(0.0);
        let zt = [
            a.from_lanes(std::array::from_fn(|i| z[i][0])),
            a.from_lanes(std::array::from_fn(|i| z[i][1])),
        ];
        let x_pred = self.x;

        // --- Gate pass (identical instruction stream to the scalar
        // filter; decisions extracted per lane) -----------------------
        let (h0, jac0) = model_at(a, estimate_bias, &x_pred, &f_b);
        let innov_t = [a.sub(zt[0], h0[0]), a.sub(zt[1], h0[1])];
        let jp0 = smallmat::mul(a, &jac0, &self.p);
        let s0 = smallmat::innovation_cov(a, &jp0, &jac0, r_t);
        let m0 = a.max(s0[0][0], zero);
        let sig0 = a.sqrt(m0);
        let m1 = a.max(s0[1][1], zero);
        let sig1 = a.sqrt(m1);

        let mut rejectd = [false; L];
        if self.config.gate_sigmas > 0.0 {
            let g = a.num(self.config.gate_sigmas);
            let ai0 = a.abs(innov_t[0]);
            let gs0 = a.mul(g, sig0);
            let exceed0 = a.lane_lt(&gs0, &ai0);
            let ai1 = a.abs(innov_t[1]);
            let gs1 = a.mul(g, sig1);
            let exceed1 = a.lane_lt(&gs1, &ai1);
            for lane in 0..L {
                rejectd[lane] = !inactive[lane] && (exceed0[lane] || exceed1[lane]);
            }
        }

        // --- IEKF iterations with per-lane freeze masks --------------
        let iterations = self.config.iekf_iterations.max(1);
        let eps = a.num(1e-12);
        let eps_scalar = eps[0];
        let mut x_i = x_pred;
        let mut h_i = h0;
        let mut jac = jac0;
        let mut jp = jp0;
        let mut s = s0;
        // Final per-lane linearization and gain for the Joseph update.
        let mut jac_fin = jac0;
        let mut k_fin: [[LaneT<A, L>; MEAS_DIM]; STATE_DIM] = [[zero; MEAS_DIM]; STATE_DIM];
        // A frozen lane has finished iterating (converged, rejected,
        // singular or inactive); its x/jac/k writes are masked from
        // then on. When every lane is already frozen (the whole batch
        // gate-rejected or inactive) the loop — and the Joseph update
        // below — never run at all, mirroring the scalar early return.
        let mut frozen: [bool; L] = std::array::from_fn(|lane| rejectd[lane] || inactive[lane]);
        for iter in 0..iterations {
            if frozen.iter().all(|f| *f) {
                break;
            }
            if iter > 0 {
                let (h, j) = model_at(a, estimate_bias, &x_i, &f_b);
                h_i = h;
                jac = j;
                jp = smallmat::mul(a, &jac, &self.p);
                s = smallmat::innovation_cov(a, &jp, &jac, r_t);
            }
            let active: [bool; L] = std::array::from_fn(|lane| !frozen[lane]);
            let s_inv = inverse2_sym_lanes(a, &s, &mut rejectd, &mut frozen, &active);
            let pjt = smallmat::transpose(a, &jp);
            let k = smallmat::mul(a, &pjt, &s_inv);
            let zh = [a.sub(zt[0], h_i[0]), a.sub(zt[1], h_i[1])];
            let dx = smallmat::vec_sub(a, &x_pred, &x_i);
            let jdx = smallmat::mat_vec(a, &jac, &dx);
            let resid = [a.sub(zh[0], jdx[0]), a.sub(zh[1], jdx[1])];
            let kr = smallmat::mat_vec(a, &k, &resid);
            let x_next = smallmat::vec_add(a, &x_pred, &kr);
            let dstep = smallmat::vec_sub(a, &x_next, &x_i);
            let step = smallmat::vec_max_abs(a, &dstep);
            for lane in 0..L {
                // A lane newly marked singular this iteration was
                // active when s_inv ran but must not adopt its garbage.
                if frozen[lane] {
                    continue;
                }
                for st in 0..STATE_DIM {
                    x_i[st][lane] = x_next[st][lane];
                    for m in 0..MEAS_DIM {
                        k_fin[st][m][lane] = k[st][m][lane];
                    }
                }
                for row in 0..MEAS_DIM {
                    for col in 0..STATE_DIM {
                        jac_fin[row][col][lane] = jac[row][col][lane];
                    }
                }
                if a.inner_mut().lt(step[lane], eps_scalar) {
                    frozen[lane] = true;
                }
            }
        }

        // --- Adopt per lane ------------------------------------------
        // Lanes to leave untouched below: inactive lanes took no
        // measurement at all, rejected lanes keep prior state and
        // covariance like the scalar early return.
        let skip: [bool; L] = std::array::from_fn(|lane| rejectd[lane] || inactive[lane]);
        for lane in 0..L {
            if inactive[lane] {
                continue;
            }
            if rejectd[lane] {
                for st in 0..STATE_DIM {
                    x_i[st][lane] = x_pred[st][lane];
                }
                self.rejected[lane] += 1;
            } else {
                self.updates[lane] += 1;
            }
        }
        self.x = x_i;
        if !estimate_bias {
            self.x[3] = zero;
            self.x[4] = zero;
        }
        if !skip.iter().all(|s| *s) {
            let p_prior = self.p;
            let p_next = smallmat::joseph_update_sym(a, &p_prior, &k_fin, &jac_fin, r_t);
            self.p = p_next;
            for lane in 0..L {
                if skip[lane] {
                    for row in 0..STATE_DIM {
                        for col in 0..STATE_DIM {
                            self.p[row][col][lane] = p_prior[row][col][lane];
                        }
                    }
                }
            }
            self.apply_trust_region(&skip);
        }

        // --- Records -------------------------------------------------
        std::array::from_fn(|lane| KalmanUpdate {
            time_s: times[lane],
            innovation: Vec2::new([
                self.arith.lane_to_f64(&innov_t[0], lane),
                self.arith.lane_to_f64(&innov_t[1], lane),
            ]),
            innovation_sigma: Vec2::new([
                self.arith.lane_to_f64(&sig0, lane),
                self.arith.lane_to_f64(&sig1, lane),
            ]),
            accepted: !rejectd[lane],
        })
    }

    /// The per-lane mirror of the scalar trust region: clamp any
    /// out-of-bounds component and re-open its variance, with both
    /// writes masked to the offending lanes (rejected lanes saw no
    /// update and are skipped, like the scalar early return path).
    fn apply_trust_region(&mut self, rejected: &[bool; L]) {
        let limits = [
            (
                0..3,
                self.config.angle_limit,
                self.config.initial_angle_sigma,
            ),
            (
                3..STATE_DIM,
                if self.config.estimate_bias {
                    self.config.bias_limit
                } else {
                    0.0
                },
                self.config.initial_bias_sigma,
            ),
        ];
        for (range, limit, sigma0) in limits {
            if limit <= 0.0 {
                continue;
            }
            let a = &mut self.arith;
            let lim = a.num(limit);
            let lim_s = lim[0];
            let floor = a.num((sigma0 * 0.5).powi(2));
            let floor_s = floor[0];
            for i in range {
                let ax = a.abs(self.x[i]);
                let out_of_bounds = a.lane_lt(&lim, &ax);
                let nlim = a.inner_mut().neg(lim_s);
                for lane in 0..L {
                    if rejected[lane] || !out_of_bounds[lane] {
                        continue;
                    }
                    let v = self.x[i][lane];
                    let inner = a.inner_mut();
                    self.x[i][lane] = if inner.lt(v, nlim) {
                        nlim
                    } else if inner.lt(lim_s, v) {
                        lim_s
                    } else {
                        v
                    };
                    if inner.lt(self.p[i][i][lane], floor_s) {
                        self.p[i][i][lane] = floor_s;
                    }
                }
            }
        }
    }
}

/// One lane's complete filter state, detached from its lane slot.
///
/// Produced by [`LaneIekf::export_lane`] and consumed by
/// [`LaneIekf::import_lane`]; a round trip through a `LaneState` is
/// bit-exact, so the fleet arena can move a vehicle between slots
/// (compaction on eviction) without perturbing its estimate stream.
#[derive(Clone, Debug)]
pub struct LaneState<A: Arith> {
    x: [A::T; STATE_DIM],
    p: [[A::T; STATE_DIM]; STATE_DIM],
    sigma: f64,
    updates: u64,
    rejected: u64,
}

/// Per-lane mirror of [`smallmat::inverse2_sym`]: the closed-form LDL
/// solve runs for every lane; a lane whose pivot check fails is marked
/// rejected + frozen (the scalar filter's singular early return) and
/// its — possibly non-finite — inverse is masked out by the caller.
fn inverse2_sym_lanes<LA: LaneOps<L>, const L: usize>(
    a: &mut LA,
    s: &[[LA::T; 2]; 2],
    rejected: &mut [bool; L],
    frozen: &mut [bool; L],
    active: &[bool; L],
) -> [[LA::T; 2]; 2]
where
    LA::T: std::ops::IndexMut<usize, Output = <LA::Inner as Arith>::T>,
{
    let zero = a.num(0.0);
    let tiny = a.num(1e-300);
    let one = a.num(1.0);
    let d1 = s[0][0];
    let flag = |a: &mut LA, d: &LA::T, rejected: &mut [bool; L], frozen: &mut [bool; L]| {
        for lane in 0..L {
            if !active[lane] {
                continue;
            }
            let inner = a.inner_mut();
            if inner.lt(d[lane], tiny[lane]) || inner.eq(d[lane], zero[lane]) {
                rejected[lane] = true;
                frozen[lane] = true;
            }
        }
    };
    flag(a, &d1, rejected, frozen);
    let l = a.div(s[1][0], d1);
    let lt = a.mul(l, s[0][1]);
    let d2 = a.sub(s[1][1], lt);
    flag(a, &d2, rejected, frozen);
    let i11 = a.div(one, d2);
    let nl = a.neg(l);
    let i01 = a.mul(nl, i11);
    let inv_d1 = a.div(one, d1);
    let li01 = a.mul(l, i01);
    let i00 = a.sub(inv_d1, li01);
    [[i00, i01], [i01, i11]]
}

/// `L` synchronized ACC channels fused against one shared IMU stream
/// by a lockstep [`LaneIekf`] — the batched-backend counterpart of a
/// [`crate::multi::MultiBoresight`] bank of scalar estimators.
///
/// Channels must arrive in lockstep: every sensor index `0..L` posts a
/// measurement with the same timestamp before the next time step (the
/// multi-channel [`crate::session::SyntheticSource`] produces exactly
/// this). The batched update runs when the last channel of a time
/// step arrives; that call returns its lane's update record, and
/// [`LaneBank::last_updates`] exposes the whole batch.
pub struct LaneBank<A: LaneSpec<L>, const L: usize> {
    config: EstimatorConfig,
    filter: LaneIekf<A, L>,
    monitors: Option<Vec<ResidualMonitor>>,
    prep: ImuPrep<A>,
    front: A,
    pending: [Option<Vec2>; L],
    pending_time: f64,
    pending_count: usize,
    last_update_time: f64,
    last_updates: [Option<KalmanUpdate>; L],
    retune_log: Vec<Retune>,
}

impl<A: LaneSpec<L> + Default, const L: usize> LaneBank<A, L> {
    /// Creates the bank over the substrate's default context; every
    /// lane shares the estimator configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        let mut front = A::default();
        let prep = ImuPrep::new(&mut front);
        Self {
            config,
            filter: LaneIekf::new(config.filter),
            monitors: config.monitor.map(|m| {
                (0..L)
                    .map(|_| ResidualMonitor::new(m, config.filter.measurement_sigma))
                    .collect()
            }),
            prep,
            front,
            pending: [None; L],
            pending_time: 0.0,
            pending_count: 0,
            last_update_time: 0.0,
            last_updates: [None; L],
            retune_log: Vec::new(),
        }
    }

    /// The lockstep filter.
    pub fn filter(&self) -> &LaneIekf<A, L> {
        &self.filter
    }

    /// The most recent batch of per-lane update records.
    pub fn last_updates(&self) -> &[Option<KalmanUpdate>; L] {
        &self.last_updates
    }
}

impl<A: LaneSpec<L> + Clone + 'static, const L: usize> FusionBackend for LaneBank<A, L> {
    fn ingest_dmu(&mut self, sample: &DmuSample) {
        self.prep.on_dmu(&mut self.front, sample);
    }

    fn ingest_acc(&mut self, sensor: usize, time_s: f64, z: Vec2) -> Option<KalmanUpdate> {
        assert!(sensor < L, "LaneBank fuses {L} sensor channels");
        self.prep.last_dmu()?;
        if self.pending_count > 0 && time_s != self.pending_time {
            // A stale partial batch (lockstep contract violated, e.g. a
            // faulted channel dropped a sample): discard it.
            self.pending = [None; L];
            self.pending_count = 0;
        }
        self.pending_time = time_s;
        if self.pending[sensor].replace(z).is_none() {
            self.pending_count += 1;
        }
        if self.pending_count < L {
            return None;
        }
        let z_batch: [Vec2; L] =
            std::array::from_fn(|i| self.pending[i].take().expect("full batch"));
        self.pending_count = 0;
        let lever_arm = self.config.lever_arm;
        let f_b = self
            .prep
            .compensated_force(&mut self.front, time_s, lever_arm)?;
        let dt = (time_s - self.last_update_time).max(0.0);
        self.last_update_time = time_s;
        self.filter.predict(dt);
        let updates = self.filter.update_shared_force(&z_batch, f_b, time_s);
        if let Some(monitors) = &mut self.monitors {
            for (lane, (monitor, update)) in monitors.iter_mut().zip(&updates).enumerate() {
                if let Some(retune) = monitor.observe(update) {
                    self.filter.set_measurement_sigma(lane, retune.new_sigma);
                    self.retune_log.push(retune);
                }
            }
        }
        let result = updates[sensor];
        self.last_updates = updates.map(Some);
        Some(result)
    }

    fn current_estimate(&self) -> MisalignmentEstimate {
        self.filter.estimate(0)
    }

    fn estimate_for(&self, sensor: usize) -> MisalignmentEstimate {
        self.filter.estimate(sensor)
    }

    fn sensor_count(&self) -> usize {
        L
    }

    fn measurement_sigma(&self) -> f64 {
        self.filter.measurement_sigma(0)
    }

    fn retunes(&self) -> &[Retune] {
        // The primary lane's log by contract; the merged cross-lane log
        // drives the session cursor below.
        self.monitors.as_ref().map_or(&[], |m| m[0].retunes())
    }

    fn retune_count(&self) -> usize {
        self.retune_log.len()
    }

    fn for_each_retune_since(&self, from: usize, visit: &mut dyn FnMut(&Retune)) {
        if let Some(fresh) = self.retune_log.get(from..) {
            for retune in fresh {
                visit(retune);
            }
        }
    }

    fn label(&self) -> &'static str {
        // "iekf5/lanes" for per-lane-loop substrates, "iekf5/simd" for
        // explicit-vector lanes.
        self.filter.arith().iekf_label()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::F64Arith;
    use crate::filter::GenericBoresightFilter;
    use mathx::STANDARD_GRAVITY;

    /// Which lanes take the outlier sample in the parity harness.
    #[derive(Clone, Copy, PartialEq)]
    enum OutlierLanes {
        First,
        All,
    }

    fn scalar_filters<const L: usize>(cfg: FilterConfig) -> Vec<GenericBoresightFilter<F64Arith>> {
        (0..L).map(|_| GenericBoresightFilter::new(cfg)).collect()
    }

    /// Drives the lane filter and L scalar filters through the same
    /// schedule and asserts per-lane bit-identity of state, covariance
    /// and counters.
    fn assert_lockstep_parity<const L: usize>(
        cfg: FilterConfig,
        steps: usize,
        outlier: Option<(usize, OutlierLanes)>,
    ) {
        let mut lanes: LaneIekf<F64Arith, L> = LaneIekf::new(cfg);
        let mut scalars = scalar_filters::<L>(cfg);
        let g = STANDARD_GRAVITY;
        for i in 0..steps {
            let t = i as f64 * 0.005;
            let f = Vec3::new([2.0 * (0.5 * t).sin(), 1.5 * (0.33 * t).cos(), g]);
            let z: [Vec2; L] = std::array::from_fn(|lane| {
                let scale = 0.01 * (lane as f64 + 1.0);
                let hit = match outlier {
                    Some((step, OutlierLanes::First)) => step == i && lane == 0,
                    Some((step, OutlierLanes::All)) => step == i,
                    None => false,
                };
                if hit {
                    Vec2::new([5.0, -5.0])
                } else {
                    Vec2::new([
                        f[0] + scale * (1.1 * t).sin(),
                        f[1] - scale * (0.9 * t).cos(),
                    ])
                }
            });
            let fs: [Vec3; L] = [f; L];
            lanes.predict(0.005);
            let lane_updates = lanes.update_lanes(&z, &fs, t);
            for (lane, kf) in scalars.iter_mut().enumerate() {
                kf.predict(0.005);
                let upd = kf.update(z[lane], f, t);
                assert_eq!(
                    upd.accepted, lane_updates[lane].accepted,
                    "step {i} lane {lane}"
                );
            }
        }
        for (lane, kf) in scalars.iter().enumerate() {
            let a = kf.angles();
            let b = lanes.angles(lane);
            assert_eq!(a.roll.to_bits(), b.roll.to_bits(), "lane {lane} roll");
            assert_eq!(a.pitch.to_bits(), b.pitch.to_bits(), "lane {lane} pitch");
            assert_eq!(a.yaw.to_bits(), b.yaw.to_bits(), "lane {lane} yaw");
            assert_eq!(kf.update_count(), lanes.update_count(lane), "lane {lane}");
            assert_eq!(kf.rejected_count(), lanes.rejected_count(lane));
            let p = kf.covariance();
            for r in 0..STATE_DIM {
                for c in 0..STATE_DIM {
                    assert_eq!(
                        p[(r, c)].to_bits(),
                        lanes.arith().lane_to_f64(&lanes.p[r][c], lane).to_bits(),
                        "lane {lane} P[{r}][{c}]"
                    );
                }
            }
        }
    }

    #[test]
    fn lanes_match_scalar_filters_bitwise() {
        assert_lockstep_parity::<4>(FilterConfig::paper_static(), 400, None);
    }

    #[test]
    fn gate_divergence_is_masked_per_lane() {
        // Lane 0 takes a wild outlier mid-run: its gate rejection must
        // not perturb the other lanes, and its own state must match the
        // scalar filter's rejected-sample behaviour exactly.
        assert_lockstep_parity::<2>(
            FilterConfig::paper_static(),
            300,
            Some((150, OutlierLanes::First)),
        );
    }

    #[test]
    fn whole_batch_rejection_is_a_no_op_like_the_scalar_early_return() {
        // Every lane takes the outlier on the same step: the lane
        // filter skips the iterations and Joseph update entirely
        // (masked no-op), which must be indistinguishable per lane
        // from each scalar filter's gate early-return.
        assert_lockstep_parity::<3>(
            FilterConfig::paper_static(),
            200,
            Some((100, OutlierLanes::All)),
        );
    }

    /// Lanes on disjoint measurement schedules (the fleet
    /// configuration: unrelated vehicles sharing a lane group) must
    /// each stay bit-identical to a scalar filter fed only that lane's
    /// schedule, with per-lane dt propagation and masked updates.
    #[test]
    fn masked_lanes_match_scalars_on_disjoint_schedules() {
        let cfg = FilterConfig::paper_static();
        let mut lanes: LaneIekf<F64Arith, 3> = LaneIekf::new(cfg);
        let mut scalars = scalar_filters::<3>(cfg);
        let mut last_t = [0.0_f64; 3];
        let g = STANDARD_GRAVITY;
        for i in 0..300 {
            let t = i as f64 * 0.005;
            let f = Vec3::new([2.0 * (0.5 * t).sin(), 1.5 * (0.33 * t).cos(), g]);
            // Lane 0 updates every step, lane 1 every 2nd, lane 2 every 3rd.
            let active: [bool; 3] = std::array::from_fn(|lane| i % (lane + 1) == 0);
            let z: [Vec2; 3] = std::array::from_fn(|lane| {
                let s = 0.01 * (lane as f64 + 1.0);
                Vec2::new([f[0] + s * (1.1 * t).sin(), f[1] - s * (0.9 * t).cos()])
            });
            let mut dts = [0.0_f64; 3];
            let mut times = [0.0_f64; 3];
            for lane in 0..3 {
                if active[lane] {
                    dts[lane] = t - last_t[lane];
                    times[lane] = t;
                    last_t[lane] = t;
                }
            }
            let fb: [[f64; 3]; 3] = std::array::from_fn(|axis| [f[axis]; 3]);
            lanes.predict_lanes(&dts);
            let ups = lanes.update_lanes_masked(&z, fb, &times, &active);
            for lane in 0..3 {
                if active[lane] {
                    let kf = &mut scalars[lane];
                    kf.predict(dts[lane]);
                    let u = kf.update(z[lane], f, t);
                    let lu = ups[lane].expect("active lane returns a record");
                    assert_eq!(u.accepted, lu.accepted, "step {i} lane {lane}");
                    assert_eq!(lu.time_s, t);
                } else {
                    assert!(ups[lane].is_none(), "step {i} lane {lane}");
                }
            }
        }
        for (lane, kf) in scalars.iter().enumerate() {
            let a = kf.angles();
            let b = lanes.angles(lane);
            assert_eq!(a.roll.to_bits(), b.roll.to_bits(), "lane {lane} roll");
            assert_eq!(a.pitch.to_bits(), b.pitch.to_bits(), "lane {lane} pitch");
            assert_eq!(a.yaw.to_bits(), b.yaw.to_bits(), "lane {lane} yaw");
            assert_eq!(kf.update_count(), lanes.update_count(lane));
            assert_eq!(kf.rejected_count(), lanes.rejected_count(lane));
            let p = kf.covariance();
            for r in 0..STATE_DIM {
                for c in 0..STATE_DIM {
                    assert_eq!(
                        p[(r, c)].to_bits(),
                        lanes.arith().lane_to_f64(&lanes.p[r][c], lane).to_bits(),
                        "lane {lane} P[{r}][{c}]"
                    );
                }
            }
        }
    }

    /// Export → reset → import must round-trip a lane bit-exactly, and
    /// a reset lane must be indistinguishable from a fresh filter.
    #[test]
    fn lane_export_import_reset_round_trip() {
        let cfg = FilterConfig::paper_static();
        let mut lanes: LaneIekf<F64Arith, 4> = LaneIekf::new(cfg);
        let g = STANDARD_GRAVITY;
        for i in 0..120 {
            let t = i as f64 * 0.005;
            let f = Vec3::new([1.2 * (0.4 * t).sin(), 0.8 * (0.7 * t).cos(), g]);
            let z: [Vec2; 4] = std::array::from_fn(|lane| {
                let s = 0.02 * (lane as f64 + 1.0);
                Vec2::new([f[0] + s * (1.3 * t).sin(), f[1] + s * (0.6 * t).cos()])
            });
            lanes.predict(0.005);
            lanes.update_lanes(&z, &[f; 4], t);
        }
        lanes.set_measurement_sigma(2, 0.042);
        let snapshot = lanes.export_lane(2);
        let before_x = lanes.angles(2);
        let before_updates = lanes.update_count(2);
        lanes.reset_lane(2);
        // A reset lane matches a fresh filter's lane 2 bit-for-bit.
        let fresh: LaneIekf<F64Arith, 4> = LaneIekf::new(cfg);
        assert_eq!(
            lanes.angles(2).roll.to_bits(),
            fresh.angles(2).roll.to_bits()
        );
        assert_eq!(lanes.update_count(2), 0);
        assert_eq!(lanes.measurement_sigma(2), cfg.measurement_sigma);
        for r in 0..STATE_DIM {
            for c in 0..STATE_DIM {
                assert_eq!(
                    lanes.arith().lane_to_f64(&lanes.p[r][c], 2).to_bits(),
                    fresh.arith().lane_to_f64(&fresh.p[r][c], 2).to_bits(),
                    "reset P[{r}][{c}]"
                );
            }
        }
        lanes.import_lane(2, &snapshot);
        assert_eq!(lanes.angles(2).roll.to_bits(), before_x.roll.to_bits());
        assert_eq!(lanes.angles(2).pitch.to_bits(), before_x.pitch.to_bits());
        assert_eq!(lanes.angles(2).yaw.to_bits(), before_x.yaw.to_bits());
        assert_eq!(lanes.update_count(2), before_updates);
        assert_eq!(lanes.measurement_sigma(2), 0.042);
    }

    #[test]
    fn lane_bank_runs_in_a_session() {
        use crate::scenario::ScenarioConfig;
        use crate::session::{ChannelConfig, FusionSession, SyntheticSource};
        use vehicle::TiltTable;

        let truth = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let cfg = {
            let mut c = ScenarioConfig::static_test(truth);
            c.duration_s = 30.0;
            c
        };
        let channel = ChannelConfig {
            misalignment: truth,
            noise_sigma: 0.007,
            ..ChannelConfig::ideal()
        };
        let table = TiltTable::observability_sequence(20.0, cfg.duration_s / 8.0);
        let source = SyntheticSource::new(
            &table,
            cfg.dmu,
            cfg.vibration,
            cfg.acc_rate_hz,
            cfg.duration_s,
            cfg.seed,
        )
        .with_channel(&channel)
        .with_channel(&channel);
        let mut session = FusionSession::builder()
            .source(source)
            .backend(LaneBank::<F64Arith, 2>::new(EstimatorConfig::paper_static()))
            .build();
        session.run_to_end();
        assert_eq!(session.backend_label(), "iekf5/lanes");
        for lane in 0..2 {
            let est = session.estimate_for(lane);
            assert!(est.updates > 5000, "lane {lane}: {}", est.updates);
        }
    }
}
