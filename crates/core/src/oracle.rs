//! Fusion-error oracles — one shared set of health checks over a run.
//!
//! The bench bins and integration tests had each grown their own
//! ad-hoc notion of "healthy" (finite angles here, an exceed-rate cap
//! there). [`FusionOracle`] consolidates them: it drives a session in
//! fixed stream-time windows alongside an interleaved native-`f64`
//! reference fed the same scenario, and emits a typed
//! [`OracleVerdict`] — with the update index where the condition first
//! held — for every failure class the repo knows how to detect:
//!
//! * [`OracleVerdict::NonFiniteState`] — NaN/inf misalignment angles;
//! * [`OracleVerdict::CovarianceIndefinite`] — a 1-sigma readout gone
//!   NaN or negative (a covariance diagonal driven below zero);
//! * [`OracleVerdict::CovarianceCollapse`] — reported 1-sigma at
//!   effectively zero while updates keep streaming (overconfidence);
//! * [`OracleVerdict::Divergence`] — worst-axis disagreement with the
//!   `f64` reference beyond a bound, after warm-up;
//! * [`OracleVerdict::GateLivelock`] — the innovation gate rejecting
//!   every sample for a long stretch (the filter can never recover
//!   because it never accepts the evidence that would fix it);
//! * [`OracleVerdict::RetuneThrash`] — the adaptive monitor slewing
//!   sigma back and forth many times within a short update span;
//! * [`OracleVerdict::SaturationStorm`] — fixed-point range clips
//!   arriving faster than the filter accepts updates;
//! * [`OracleVerdict::LinkFaultStorm`] — injected channel faults per
//!   second beyond the configured ceiling (live runs only: a replayed
//!   recording carries endpoint stats, not a live injector);
//! * [`OracleVerdict::LedgerViolation`] — an adaptive run whose
//!   reconfiguration ledger fails its chain validation.
//!
//! One oracle pass serves the fuzz campaign ([`crate::fuzz`]), the
//! regression corpus (`tests/corpus.rs`), and — via
//! [`FusionOracle::check_summary`] — the scenario-matrix, adaptive and
//! fleet bench bins that previously hand-rolled these gates.

use crate::adaptive::AdaptiveBackend;
use crate::estimator::MisalignmentEstimate;
use crate::replay::{replay_spec_session, Recording};
use crate::report::VehicleSummary;
use crate::session::FusionSession;
use crate::spec::{ScenarioSpec, Substrate};
use mathx::rad_to_deg;

/// Thresholds for every oracle check. The defaults are calibrated so
/// the full healthy scenario catalog passes on every substrate while
/// the fuzz campaign's genuine failures still trip (pinned by tests).
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Stream-time window between check points, seconds.
    pub check_interval_s: f64,
    /// Worst-axis disagreement with the `f64` reference that counts as
    /// divergence, degrees.
    pub divergence_bound_deg: f64,
    /// Accepted updates both subject and reference must reach before
    /// the divergence check arms (transient disagreement during
    /// convergence is expected).
    pub divergence_warmup_updates: u64,
    /// Consecutive gate-rejected measurements (with no acceptance in
    /// between) that count as livelock...
    pub livelock_rejections: u64,
    /// ...provided the filter is still materially uncertain: worst-axis
    /// 1-sigma above this (radians) while the streak runs. Converged
    /// fixed-point filters go benignly deaf once their covariance
    /// quantizes to zero (measured healthy deaf-phase worst sigma is
    /// 2.3e-2 rad); a genuinely livelocked gate never converges and
    /// holds its initial sigma (8.7e-2 rad for the default 5-degree
    /// prior). The ceiling sits between the two.
    pub livelock_sigma_ceiling_rad: f64,
    /// Number of retunes within [`OracleConfig::thrash_span_updates`]
    /// that counts as thrash.
    pub thrash_retunes: usize,
    /// Update-index span the thrash counter slides over.
    pub thrash_span_updates: u64,
    /// Mean fixed-point saturations per measurement within one window
    /// that counts as a storm...
    pub saturation_per_update: f64,
    /// ...provided at least this many saturations landed in the window
    /// (so a quiet window cannot trip on a tiny denominator).
    pub saturation_min_burst: u64,
    /// Reported 1-sigma below this (radians) is covariance collapse.
    /// Checked on float substrates only: q16.16 (and the adaptive
    /// supervisor, which idles there) quantizes healthy steady-state
    /// sigma to exactly zero, so zero is not evidence of a defect
    /// for them.
    pub sigma_floor_rad: f64,
    /// Injected link-fault events (flips + drops + bursts) per second
    /// that count as a fault storm.
    pub fault_events_per_s: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            check_interval_s: 1.0,
            divergence_bound_deg: 5.0,
            divergence_warmup_updates: 500,
            livelock_rejections: 400,
            livelock_sigma_ceiling_rad: 4e-2,
            thrash_retunes: 16,
            thrash_span_updates: 1000,
            saturation_per_update: 16.0,
            saturation_min_burst: 1000,
            sigma_floor_rad: 1e-9,
            fault_events_per_s: 500.0,
        }
    }
}

/// One detected failure, with the update index (counting every
/// measurement the filter saw, accepted or gated) at which the
/// offending condition was first observed.
#[derive(Clone, Debug, PartialEq)]
pub enum OracleVerdict {
    /// Misalignment angles went NaN or infinite.
    NonFiniteState {
        /// Update index at first detection.
        at_update: u64,
    },
    /// A 1-sigma readout went NaN or negative — the covariance
    /// diagonal is no longer positive.
    CovarianceIndefinite {
        /// Update index at first detection.
        at_update: u64,
        /// The offending per-axis 1-sigma readout, radians.
        sigma: [f64; 3],
    },
    /// Reported 1-sigma collapsed to (effectively) zero.
    CovarianceCollapse {
        /// Update index at first detection.
        at_update: u64,
        /// Smallest per-axis 1-sigma observed, radians.
        sigma_min: f64,
    },
    /// Worst-axis disagreement with the interleaved `f64` reference
    /// exceeded the bound.
    Divergence {
        /// Update index at first detection.
        at_update: u64,
        /// Worst-axis disagreement at detection, degrees.
        error_deg: f64,
    },
    /// The innovation gate rejected every measurement for a long
    /// stretch.
    GateLivelock {
        /// Update index at first detection.
        at_update: u64,
        /// Consecutive rejections at detection.
        rejected: u64,
    },
    /// The adaptive monitor retuned too often within a short span.
    RetuneThrash {
        /// Update index at first detection.
        at_update: u64,
        /// Retunes inside the offending span.
        retunes: usize,
        /// The span they landed in, update indices.
        span: u64,
    },
    /// Fixed-point saturations swamped the measurement stream.
    SaturationStorm {
        /// Update index at first detection.
        at_update: u64,
        /// Saturations within the offending window.
        saturations: u64,
        /// Measurements within the same window.
        updates: u64,
    },
    /// Injected link faults exceeded the per-second ceiling.
    LinkFaultStorm {
        /// Update index at first detection.
        at_update: u64,
        /// Observed fault events (flips + drops + bursts) per second.
        events_per_s: f64,
    },
    /// The adaptive reconfiguration ledger failed chain validation.
    LedgerViolation {
        /// Update index at detection (end of run).
        at_update: u64,
        /// The validator's complaint.
        detail: String,
    },
}

impl OracleVerdict {
    /// Stable machine-readable name of this failure class (the key the
    /// corpus files and campaign summaries store).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::NonFiniteState { .. } => "non-finite-state",
            Self::CovarianceIndefinite { .. } => "covariance-indefinite",
            Self::CovarianceCollapse { .. } => "covariance-collapse",
            Self::Divergence { .. } => "divergence",
            Self::GateLivelock { .. } => "gate-livelock",
            Self::RetuneThrash { .. } => "retune-thrash",
            Self::SaturationStorm { .. } => "saturation-storm",
            Self::LinkFaultStorm { .. } => "link-fault-storm",
            Self::LedgerViolation { .. } => "ledger-violation",
        }
    }

    /// The update index at which the condition was first observed.
    pub fn at_update(&self) -> u64 {
        match self {
            Self::NonFiniteState { at_update }
            | Self::CovarianceIndefinite { at_update, .. }
            | Self::CovarianceCollapse { at_update, .. }
            | Self::Divergence { at_update, .. }
            | Self::GateLivelock { at_update, .. }
            | Self::RetuneThrash { at_update, .. }
            | Self::SaturationStorm { at_update, .. }
            | Self::LinkFaultStorm { at_update, .. }
            | Self::LedgerViolation { at_update, .. } => *at_update,
        }
    }
}

impl std::fmt::Display for OracleVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ update {}", self.kind(), self.at_update())?;
        match self {
            Self::CovarianceIndefinite { sigma, .. } => {
                write!(f, " (sigma {:?})", sigma)
            }
            Self::CovarianceCollapse { sigma_min, .. } => {
                write!(f, " (sigma_min {sigma_min:.3e} rad)")
            }
            Self::Divergence { error_deg, .. } => write!(f, " ({error_deg:.2} deg vs f64)"),
            Self::GateLivelock { rejected, .. } => write!(f, " ({rejected} consecutive rejects)"),
            Self::RetuneThrash { retunes, span, .. } => {
                write!(f, " ({retunes} retunes in {span} updates)")
            }
            Self::SaturationStorm {
                saturations,
                updates,
                ..
            } => write!(f, " ({saturations} saturations / {updates} updates)"),
            Self::LinkFaultStorm { events_per_s, .. } => {
                write!(f, " ({events_per_s:.0} fault events/s)")
            }
            Self::LedgerViolation { detail, .. } => write!(f, " ({detail})"),
            _ => Ok(()),
        }
    }
}

/// The oracle's findings over one run. Each failure class is reported
/// at most once, at its first occurrence, in detection order.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Scenario name.
    pub scenario: String,
    /// Substrate label of the checked session.
    pub substrate: String,
    /// Every distinct failure class detected, in detection order.
    pub verdicts: Vec<OracleVerdict>,
    /// Measurements the subject saw (accepted + gated).
    pub updates: u64,
    /// Measurements the subject accepted.
    pub accepted: u64,
}

impl OracleReport {
    /// `true` when no check tripped.
    pub fn is_healthy(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// The earliest-detected verdict, if any.
    pub fn first(&self) -> Option<&OracleVerdict> {
        self.verdicts.first()
    }

    /// `true` if a verdict of the given [`OracleVerdict::kind`] was
    /// detected.
    pub fn has_kind(&self, kind: &str) -> bool {
        self.verdicts.iter().any(|v| v.kind() == kind)
    }
}

/// The consolidated health-check pass. See the module docs for the
/// checks; construct with a tuned [`OracleConfig`] or use `Default`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FusionOracle {
    /// The thresholds in force.
    pub config: OracleConfig,
}

impl FusionOracle {
    /// An oracle with explicit thresholds.
    pub fn new(config: OracleConfig) -> Self {
        Self { config }
    }

    /// Runs `spec` from scratch next to an interleaved `f64` reference
    /// over the same scenario (same trajectory, same seeds, same
    /// channel) and checks every window.
    pub fn check_spec(&self, spec: &ScenarioSpec) -> OracleReport {
        let trajectory = std::sync::Arc::new(spec.lower_trajectory());
        let shared: std::sync::Arc<dyn vehicle::Trajectory> = trajectory;
        let subject = spec.into_session(std::sync::Arc::clone(&shared));
        let reference = (spec.substrate != Substrate::F64).then(|| {
            spec.clone()
                .with_substrate(Substrate::F64)
                .into_session(shared)
        });
        self.check_sessions(spec, subject, reference, spec.duration_s, true)
    }

    /// Replays a recorded run of `spec` (subject and `f64` reference
    /// both fed from the recording) and checks every window. The
    /// link-fault-storm check is skipped: a recording carries the
    /// original run's endpoint stats, not a live injector.
    pub fn check_recording(&self, spec: &ScenarioSpec, recording: &Recording) -> OracleReport {
        let subject = replay_spec_session(spec, recording);
        let reference = (spec.substrate != Substrate::F64)
            .then(|| replay_spec_session(&spec.clone().with_substrate(Substrate::F64), recording));
        self.check_sessions(spec, subject, reference, recording.duration_s, false)
    }

    /// The shared windowed loop behind [`FusionOracle::check_spec`]
    /// and [`FusionOracle::check_recording`].
    fn check_sessions(
        &self,
        spec: &ScenarioSpec,
        mut subject: FusionSession,
        mut reference: Option<FusionSession>,
        duration_s: f64,
        live: bool,
    ) -> OracleReport {
        let cfg = &self.config;
        let mut report = OracleReport {
            scenario: spec.name.clone(),
            substrate: spec.substrate.label().to_string(),
            ..OracleReport::default()
        };
        let quantized = spec.substrate.quantizes_sigma();
        let mut state = CheckState::default();
        let mut elapsed = 0.0;
        while elapsed < duration_s && !subject.is_finished() {
            let chunk = cfg.check_interval_s.min(duration_s - elapsed);
            if live {
                subject.begin_stats_window();
            }
            subject.run_for(chunk);
            if let Some(reference) = reference.as_mut() {
                reference.run_for(chunk);
            }
            elapsed += chunk;
            self.check_window(
                &subject,
                reference.as_ref(),
                chunk,
                live,
                quantized,
                &mut state,
                &mut report,
            );
        }
        // Post-run: the reconfiguration ledger must chain.
        if let Some(backend) = subject.backend_as::<AdaptiveBackend>() {
            if let Err(detail) = backend.ledger().validate(backend.initial_substrate()) {
                push_once(
                    &mut report,
                    OracleVerdict::LedgerViolation {
                        at_update: subject.stats().updates,
                        detail,
                    },
                );
            }
        }
        report.updates = subject.stats().updates;
        report.accepted = subject.estimate().updates;
        report
    }

    /// One window's worth of incremental checks.
    #[allow(clippy::too_many_arguments)]
    fn check_window(
        &self,
        subject: &FusionSession,
        reference: Option<&FusionSession>,
        window_s: f64,
        live: bool,
        quantized: bool,
        state: &mut CheckState,
        report: &mut OracleReport,
    ) {
        let cfg = &self.config;
        let stats = subject.stats();
        let estimate = subject.estimate();
        let at_update = stats.updates;

        // State and covariance health.
        let angles = [
            estimate.angles.roll,
            estimate.angles.pitch,
            estimate.angles.yaw,
        ];
        if angles.iter().any(|x| !x.is_finite()) {
            push_once(report, OracleVerdict::NonFiniteState { at_update });
        }
        let sigma = [
            estimate.one_sigma[0],
            estimate.one_sigma[1],
            estimate.one_sigma[2],
        ];
        if sigma.iter().any(|x| x.is_nan() || *x < 0.0) {
            push_once(
                report,
                OracleVerdict::CovarianceIndefinite { at_update, sigma },
            );
        } else if estimate.updates > 0 && !quantized {
            let sigma_min = sigma.iter().cloned().fold(f64::INFINITY, f64::min);
            if sigma_min < cfg.sigma_floor_rad {
                push_once(
                    report,
                    OracleVerdict::CovarianceCollapse {
                        at_update,
                        sigma_min,
                    },
                );
            }
        }

        // Divergence against the interleaved f64 reference.
        if let Some(reference) = reference {
            let ref_estimate = reference.estimate();
            if estimate.updates >= cfg.divergence_warmup_updates
                && ref_estimate.updates >= cfg.divergence_warmup_updates
            {
                let err = estimate.angles.error_to(&ref_estimate.angles);
                let worst_deg = rad_to_deg(err.roll.abs().max(err.pitch.abs()).max(err.yaw.abs()));
                if !worst_deg.is_finite() || worst_deg > cfg.divergence_bound_deg {
                    push_once(
                        report,
                        OracleVerdict::Divergence {
                            at_update,
                            error_deg: worst_deg,
                        },
                    );
                }
            }
        }

        // Gate livelock: measurements keep arriving, none accepted.
        let accepted_delta = estimate.updates.saturating_sub(state.last_accepted);
        let seen_delta = stats.updates.saturating_sub(state.last_seen);
        if accepted_delta > 0 {
            state.consecutive_rejected = 0;
        } else {
            state.consecutive_rejected += seen_delta;
        }
        state.last_accepted = estimate.updates;
        state.last_seen = stats.updates;
        let sigma_max = sigma.iter().cloned().fold(0.0_f64, f64::max);
        if state.consecutive_rejected >= cfg.livelock_rejections
            && sigma_max > cfg.livelock_sigma_ceiling_rad
        {
            push_once(
                report,
                OracleVerdict::GateLivelock {
                    at_update,
                    rejected: state.consecutive_rejected,
                },
            );
        }

        // Retune thrash: a sliding span over the retune log.
        let retunes = subject.retunes();
        while state.retunes_checked < retunes.len() {
            let i = state.retunes_checked;
            if i + 1 >= cfg.thrash_retunes {
                let first = retunes[i + 1 - cfg.thrash_retunes].at_sample;
                let span = retunes[i].at_sample.saturating_sub(first);
                if span <= cfg.thrash_span_updates {
                    push_once(
                        report,
                        OracleVerdict::RetuneThrash {
                            at_update,
                            retunes: cfg.thrash_retunes,
                            span,
                        },
                    );
                }
            }
            state.retunes_checked += 1;
        }

        // Saturation storm: clips per measurement within this window.
        let sat_delta = stats.saturations.saturating_sub(state.last_saturations);
        state.last_saturations = stats.saturations;
        if sat_delta >= cfg.saturation_min_burst
            && sat_delta as f64 > cfg.saturation_per_update * seen_delta.max(1) as f64
        {
            push_once(
                report,
                OracleVerdict::SaturationStorm {
                    at_update,
                    saturations: sat_delta,
                    updates: seen_delta,
                },
            );
        }

        // Link-fault storm (live sources only — see module docs).
        if live {
            if let Some(stream) = subject.stream_stats() {
                let events = stream.window_fault_bits_flipped
                    + stream.window_fault_bytes_dropped
                    + stream.window_fault_bursts;
                let events_per_s = events as f64 / window_s.max(1e-9);
                if events_per_s > cfg.fault_events_per_s {
                    push_once(
                        report,
                        OracleVerdict::LinkFaultStorm {
                            at_update,
                            events_per_s,
                        },
                    );
                }
            }
        }
    }

    /// The post-hoc subset of checks a finished run's summary still
    /// supports — the shared replacement for the ad-hoc
    /// `is_healthy()`-style gates in the bench bins. Returns every
    /// verdict the summary evidences (state health, covariance health,
    /// and — when the summary carries stream stats — cumulative fault
    /// counters vs the whole-run budget implied by `duration_s`).
    pub fn check_summary(
        &self,
        summary: &VehicleSummary,
        duration_s: f64,
        substrate: Substrate,
    ) -> Vec<OracleVerdict> {
        let mut verdicts = self.check_estimate(&summary.estimate, substrate);
        let at_update = summary.estimate.updates;
        if !summary.final_worst_error_deg.is_finite()
            && !verdicts.iter().any(|v| v.kind() == "non-finite-state")
        {
            verdicts.push(OracleVerdict::NonFiniteState { at_update });
        }
        if let Some(stream) = &summary.stream {
            let events =
                stream.fault_bits_flipped + stream.fault_bytes_dropped + stream.fault_bursts;
            let events_per_s = events as f64 / duration_s.max(1e-9);
            if events_per_s > self.config.fault_events_per_s {
                verdicts.push(OracleVerdict::LinkFaultStorm {
                    at_update,
                    events_per_s,
                });
            }
        }
        verdicts
    }

    /// State and covariance health of one bare estimate — the first
    /// half of [`FusionOracle::check_summary`], and the shared
    /// replacement for the hand-rolled `is_finite()` sampling over
    /// resident vehicles in the fleet bench bin.
    pub fn check_estimate(
        &self,
        estimate: &MisalignmentEstimate,
        substrate: Substrate,
    ) -> Vec<OracleVerdict> {
        let mut verdicts = Vec::new();
        let at_update = estimate.updates;
        let angles = [
            estimate.angles.roll,
            estimate.angles.pitch,
            estimate.angles.yaw,
        ];
        if angles.iter().any(|x| !x.is_finite()) {
            verdicts.push(OracleVerdict::NonFiniteState { at_update });
        }
        let sigma = [
            estimate.one_sigma[0],
            estimate.one_sigma[1],
            estimate.one_sigma[2],
        ];
        if sigma.iter().any(|x| x.is_nan() || *x < 0.0) {
            verdicts.push(OracleVerdict::CovarianceIndefinite { at_update, sigma });
        } else if estimate.updates > 0 && !substrate.quantizes_sigma() {
            let sigma_min = sigma.iter().cloned().fold(f64::INFINITY, f64::min);
            if sigma_min < self.config.sigma_floor_rad {
                verdicts.push(OracleVerdict::CovarianceCollapse {
                    at_update,
                    sigma_min,
                });
            }
        }
        verdicts
    }

    /// Validates an adaptive run's reconfiguration ledger — the shared
    /// replacement for the hand-rolled chain walk in the adaptive
    /// bench bin.
    pub fn check_ledger(
        &self,
        ledger: &crate::adaptive::ReconfigLedger,
        initial: crate::adaptive::SubstrateId,
        at_update: u64,
    ) -> Option<OracleVerdict> {
        ledger
            .validate(initial)
            .err()
            .map(|detail| OracleVerdict::LedgerViolation { at_update, detail })
    }
}

/// Incremental bookkeeping carried across check windows.
#[derive(Default)]
struct CheckState {
    last_accepted: u64,
    last_seen: u64,
    last_saturations: u64,
    consecutive_rejected: u64,
    retunes_checked: usize,
}

fn push_once(report: &mut OracleReport, verdict: OracleVerdict) {
    if !report.has_kind(verdict.kind()) {
        report.verdicts.push(verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimatorConfig;
    use crate::filter::FilterConfig;
    use crate::session::LinkFaultConfig;
    use crate::spec::{ChannelSpec, EnvironmentSpec, TuningSpec};
    use mathx::EulerAngles;

    fn healthy_spec(substrate: Substrate) -> ScenarioSpec {
        ScenarioSpec::named("oracle-unit")
            .with_truth(EulerAngles::from_degrees(2.0, -1.0, 1.5))
            .with_duration(15.0)
            .with_substrate(substrate)
    }

    #[test]
    fn healthy_runs_pass_on_every_substrate() {
        for substrate in [
            Substrate::F64,
            Substrate::Softfloat,
            Substrate::Q16_16,
            Substrate::Adaptive,
        ] {
            let report = FusionOracle::default().check_spec(&healthy_spec(substrate));
            assert!(report.is_healthy(), "{substrate}: {:?}", report.verdicts);
            assert!(report.accepted > 0, "{substrate}");
        }
    }

    #[test]
    fn tight_gate_under_fault_storm_trips_the_oracle() {
        // The known-bad shape the shrinking test also uses: heavy
        // channel faults into a q16.16 filter whose innovation gate is
        // clamped so tight it can never accept the (noisier) stream.
        let mut filter = FilterConfig::paper_dynamic();
        filter.gate_sigmas = 0.05;
        let spec = healthy_spec(Substrate::Q16_16)
            .with_environment(EnvironmentSpec::rough_road())
            .with_tuning(TuningSpec::Custom(EstimatorConfig {
                filter,
                monitor: None,
                lever_arm: mathx::Vec3::zeros(),
            }))
            .with_channel(ChannelSpec::Comms {
                faults: LinkFaultConfig {
                    bit_flip_prob: 0.01,
                    drop_prob: 0.01,
                    burst_prob: 0.002,
                    burst_len: 8,
                },
            });
        let report = FusionOracle::default().check_spec(&spec);
        assert!(
            report.has_kind("gate-livelock"),
            "expected livelock, got {:?}",
            report.verdicts
        );
        let verdict = report.first().expect("at least one verdict");
        assert!(verdict.at_update() > 0);
    }

    #[test]
    fn summary_checks_flag_non_finite_and_collapsed_runs() {
        let oracle = FusionOracle::default();
        let spec = healthy_spec(Substrate::F64);
        let result = spec.run();
        let mut summary = VehicleSummary::from_result(&result, 0, None);
        assert!(oracle
            .check_summary(&summary, spec.duration_s, Substrate::F64)
            .is_empty());

        summary.estimate.angles.roll = f64::NAN;
        let verdicts = oracle.check_summary(&summary, spec.duration_s, Substrate::F64);
        assert!(verdicts.iter().any(|v| v.kind() == "non-finite-state"));

        let mut collapsed = VehicleSummary::from_result(&result, 0, None);
        collapsed.estimate.one_sigma = mathx::Vec3::zeros();
        let verdicts = oracle.check_summary(&collapsed, spec.duration_s, Substrate::F64);
        assert!(verdicts.iter().any(|v| v.kind() == "covariance-collapse"));

        let mut indefinite = VehicleSummary::from_result(&result, 0, None);
        indefinite.estimate.one_sigma[1] = -1.0e-3;
        let verdicts = oracle.check_summary(&indefinite, spec.duration_s, Substrate::F64);
        assert!(verdicts.iter().any(|v| v.kind() == "covariance-indefinite"));
    }

    #[test]
    fn recording_checks_reproduce_live_verdict_kinds() {
        let spec = healthy_spec(Substrate::Softfloat);
        let (_, recording) = crate::replay::record_spec(&spec);
        let report = FusionOracle::default().check_recording(&spec, &recording);
        assert!(report.is_healthy(), "{:?}", report.verdicts);
        assert!(report.updates > 0);
    }
}
