//! Scenario harness: the paper's test procedure as code.
//!
//! Builds the full synthetic experiment — a motion truth source
//! ([`vehicle::Trajectory`]), the DMU and ACC instrument models with
//! the true mounting misalignment applied, road vibration, and the
//! estimator — runs it for the configured duration (the paper records
//! 300 s), and returns the traces every table and figure needs:
//! per-axis residuals with their 3-sigma bounds (Figure 8), the
//! misalignment estimate trajectory with covariance (Figure 9), and
//! final estimate vs truth with confidence (Table 1).
//!
//! Since the [`crate::session`] redesign these entry points are thin
//! compat shims: the event loop lives in
//! [`FusionSession`], and [`run`] just
//! builds a session from the config and collects its [`RunResult`].
//! Use the session API directly for incremental stepping, multiple
//! concurrent runs or non-default backends.

use crate::estimator::{EstimatorConfig, MisalignmentEstimate};
use crate::session::{FusionSession, IntoSharedTrajectory, LinkFaultConfig};
use crate::spec::TrajectorySpec;
use mathx::{rad_to_deg, EulerAngles, Vec2};
use sensors::DmuConfig;
use vehicle::VibrationConfig;

/// Scenario configuration.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// The true mounting misalignment to inject (and later compare
    /// against — the role the laser reference plays in the paper).
    pub true_misalignment: EulerAngles,
    /// True ACC biases, m/s^2.
    pub true_acc_bias: Vec2,
    /// Run length, seconds (the paper runs 300 s).
    pub duration_s: f64,
    /// DMU instrument configuration.
    pub dmu: DmuConfig,
    /// ACC white-noise sigma per sample, m/s^2 (instrument noise; the
    /// paper's static floor).
    pub acc_noise_sigma: f64,
    /// ACC sample rate, Hz.
    pub acc_rate_hz: f64,
    /// Common rigid-body vibration (sensed coherently by both
    /// instruments).
    pub vibration: VibrationConfig,
    /// Differential vibration sensed only by the ACC (mount flexure) as
    /// a fraction of the common vibration intensity — this is the term
    /// that forces the paper's dynamic retuning.
    pub differential_vibration: f64,
    /// Estimator configuration.
    pub estimator: EstimatorConfig,
    /// Byte-level fault rates on the serial links (only exercised when
    /// the scenario runs through the comms chain; the default is a
    /// clean channel).
    pub link_faults: LinkFaultConfig,
    /// RNG seed (scenarios are fully deterministic given the seed).
    pub seed: u64,
    /// Keep every n-th residual/estimate point in the trace (1 = all).
    pub trace_decimation: usize,
}

impl ScenarioConfig {
    /// Shared base for every test procedure: paper sensor configs,
    /// 300 s run, deterministic seed — the static/dynamic constructors
    /// only override tuning and vibration.
    fn base(true_misalignment: EulerAngles) -> Self {
        // Tactical-grade IMU accelerometers (the BAE DMU is a cut above
        // consumer parts): ~0.004 m/s^2 per-sample noise keeps the
        // combined residual floor inside the paper's tuned
        // 0.003-0.01 m/s^2 static range.
        let mut dmu = DmuConfig::default();
        dmu.accel.error.noise_std = 0.004;
        Self {
            true_misalignment,
            true_acc_bias: Vec2::new([0.02, -0.015]),
            duration_s: 300.0,
            dmu,
            acc_noise_sigma: 0.005,
            acc_rate_hz: 200.0,
            vibration: VibrationConfig::none(),
            differential_vibration: 0.0,
            estimator: EstimatorConfig::paper_static(),
            link_faults: LinkFaultConfig::clean(),
            seed: 0xB0B5,
            trace_decimation: 10,
        }
    }

    /// The paper's static test: tilt-table schedule, no vibration,
    /// static filter tuning.
    pub fn static_test(true_misalignment: EulerAngles) -> Self {
        Self::base(true_misalignment)
    }

    /// The paper's dynamic test: passenger-car vibration and the
    /// dynamic filter tuning.
    pub fn dynamic_test(true_misalignment: EulerAngles) -> Self {
        Self {
            vibration: VibrationConfig::passenger_car(),
            differential_vibration: 0.1,
            estimator: EstimatorConfig::paper_dynamic(),
            ..Self::base(true_misalignment)
        }
    }
}

impl Default for ScenarioConfig {
    /// The static test procedure with no injected misalignment.
    fn default() -> Self {
        Self::base(EulerAngles::zero())
    }
}

/// One point of the residual trace (Figure 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResidualPoint {
    /// Time, seconds.
    pub time_s: f64,
    /// X-axis innovation, m/s^2.
    pub residual_x: f64,
    /// X-axis 3-sigma bound, m/s^2.
    pub three_sigma_x: f64,
    /// Y-axis innovation, m/s^2.
    pub residual_y: f64,
    /// Y-axis 3-sigma bound, m/s^2.
    pub three_sigma_y: f64,
}

/// One point of the estimate trace (Figure 9).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EstimatePoint {
    /// Time, seconds.
    pub time_s: f64,
    /// Estimated angles, degrees.
    pub angles_deg: [f64; 3],
    /// 3-sigma bounds, degrees.
    pub three_sigma_deg: [f64; 3],
}

/// Everything a run produces.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// The injected truth.
    pub truth: EulerAngles,
    /// Final estimate with confidence.
    pub estimate: MisalignmentEstimate,
    /// Residual trace (decimated).
    pub residuals: Vec<ResidualPoint>,
    /// Estimate trace (decimated).
    pub estimates: Vec<EstimatePoint>,
    /// Fraction of residuals beyond 3 sigma over the whole run.
    pub exceed_rate: f64,
    /// Measurement sigma in force at the end (after any retunes).
    pub final_sigma: f64,
    /// Number of adaptive retunes that fired.
    pub retune_count: usize,
}

impl RunResult {
    /// Per-axis estimation error, degrees.
    pub fn error_deg(&self) -> [f64; 3] {
        let e = self.estimate.angles.error_to(&self.truth);
        [rad_to_deg(e.roll), rad_to_deg(e.pitch), rad_to_deg(e.yaw)]
    }

    /// Largest absolute per-axis error, degrees.
    pub fn max_error_deg(&self) -> f64 {
        self.error_deg().iter().fold(0.0_f64, |m, e| m.max(e.abs()))
    }

    /// Pooled-axis RMS estimation error over the converged (second)
    /// half of the estimate trace, degrees — the per-cell error metric
    /// the arithmetic ablation and the scenario sweep share. `NaN`
    /// when no trace was recorded.
    pub fn error_rms_deg(&self) -> f64 {
        let truth = self.truth.to_degrees();
        let tail = &self.estimates[self.estimates.len() / 2..];
        if tail.is_empty() {
            return f64::NAN;
        }
        let mean_sq: f64 = tail
            .iter()
            .map(|p| {
                (0..3)
                    .map(|i| (p.angles_deg[i] - truth[i]).powi(2))
                    .sum::<f64>()
                    / 3.0
            })
            .sum::<f64>()
            / tail.len() as f64;
        mean_sq.sqrt()
    }
}

/// Runs one scenario against a trajectory to completion.
///
/// Compat shim over the session layer: equivalent to building
/// [`FusionSession::from_scenario`] and collecting
/// [`FusionSession::into_result`]. Takes the trajectory by value,
/// reference-to-clonable or `Arc` (see
/// [`IntoSharedTrajectory`]).
pub fn run(trajectory: impl IntoSharedTrajectory, config: &ScenarioConfig) -> RunResult {
    FusionSession::from_scenario(trajectory, config).into_result()
}

/// Runs the paper's static test procedure (tilt-table observability
/// sequence) with the given configuration.
pub fn run_static(config: &ScenarioConfig) -> RunResult {
    let table = TrajectorySpec::paper_tilt_table().lower(config.duration_s);
    run(table, config)
}

/// Runs the paper's dynamic test procedure (urban drive profile).
pub fn run_dynamic(config: &ScenarioConfig) -> RunResult {
    let profile = TrajectorySpec::Urban.lower(config.duration_s);
    run(profile, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_static(truth: EulerAngles, seed: u64) -> RunResult {
        let mut cfg = ScenarioConfig::static_test(truth);
        cfg.duration_s = 80.0;
        cfg.seed = seed;
        run_static(&cfg)
    }

    #[test]
    fn static_run_estimates_misalignment() {
        let truth = EulerAngles::from_degrees(2.0, -3.0, 1.5);
        let result = short_static(truth, 1);
        assert!(
            result.max_error_deg() < 0.3,
            "errors {:?}",
            result.error_deg()
        );
        assert!(result.estimate.updates > 10_000);
    }

    #[test]
    fn static_residuals_stay_inside_three_sigma() {
        let result = short_static(EulerAngles::from_degrees(1.0, 1.0, 1.0), 2);
        assert!(result.exceed_rate < 0.03, "rate {}", result.exceed_rate);
    }

    #[test]
    fn dynamic_run_converges_with_vibration() {
        let truth = EulerAngles::from_degrees(3.0, -2.0, 2.5);
        let mut cfg = ScenarioConfig::dynamic_test(truth);
        cfg.duration_s = 120.0;
        let result = run_dynamic(&cfg);
        assert!(
            result.max_error_deg() < 0.6,
            "errors {:?}",
            result.error_deg()
        );
    }

    #[test]
    fn static_tuning_on_dynamic_run_forces_retune() {
        // The Figure-8 narrative: a filter tuned for the static floor
        // sees vibration residuals breaching 3 sigma, and the monitor
        // raises R.
        let truth = EulerAngles::from_degrees(2.0, 2.0, 2.0);
        let mut cfg = ScenarioConfig::dynamic_test(truth);
        cfg.estimator.filter.measurement_sigma = 0.004; // static tuning
        cfg.duration_s = 60.0;
        let result = run_dynamic(&cfg);
        assert!(result.retune_count > 0, "no retune fired");
        assert!(result.final_sigma > 0.004);
    }

    #[test]
    fn traces_are_recorded() {
        let result = short_static(EulerAngles::from_degrees(1.0, 0.5, -0.5), 3);
        assert!(!result.residuals.is_empty());
        assert!(!result.estimates.is_empty());
        // Time is monotonic.
        for w in result.residuals.windows(2) {
            assert!(w[1].time_s > w[0].time_s);
        }
        // 3-sigma bounds are positive.
        assert!(result.residuals.iter().all(|p| p.three_sigma_x > 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let truth = EulerAngles::from_degrees(1.0, 1.0, 1.0);
        let a = short_static(truth, 7);
        let b = short_static(truth, 7);
        assert_eq!(a.estimate.angles, b.estimate.angles);
        assert_eq!(a.exceed_rate, b.exceed_rate);
    }

    #[test]
    fn different_seeds_agree_on_the_answer() {
        // Run-to-run repeatability — the paper's two dynamic tests
        // "show very close agreement". Short (80 s) runs leave a few
        // tenths of a degree of bias/angle separation error, so the
        // agreement tolerance reflects that; the 300 s Table-1 runs
        // agree much more closely.
        let truth = EulerAngles::from_degrees(2.0, -1.0, 1.0);
        let a = short_static(truth, 11);
        let b = short_static(truth, 12);
        for (ea, eb) in a.error_deg().iter().zip(b.error_deg().iter()) {
            assert!((ea - eb).abs() < 0.8, "{ea} vs {eb}");
        }
    }
}
