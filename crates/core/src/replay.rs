//! Deterministic record/replay of fusion sessions.
//!
//! A [`FusionSession`] backend is a pure function of the event stream
//! it ingests: feed it the identical [`SensorEvent`]s in the identical
//! order and every update, retune and estimate reproduces bit for bit,
//! on every arithmetic substrate. This module captures that stream:
//!
//! * [`RecordingSink`] — an [`EventSink`] that logs every timestamped
//!   sensor event (plus the retunes the backend fired) as it streams
//!   by; attach it via `Arc<Mutex<_>>` to keep a read-back handle;
//! * [`Recording`] — the captured stream with a compact **versioned**
//!   binary serialization ([`Recording::to_bytes`] /
//!   [`Recording::from_bytes`]); `f64` payloads are stored as raw IEEE
//!   bits, so the file round-trips exactly;
//! * [`ReplaySource`] — a [`SensorSource`] that re-emits the recorded
//!   events in recorded order, gated by their timestamps, so a
//!   replayed session is **pinned bit-identical** to the original
//!   (estimate trace, residuals, retunes and the final
//!   [`StreamStats`]) — the property `tests/replay_pin.rs` asserts
//!   for every catalog scenario on every substrate;
//! * [`record_spec`] / [`replay_spec_session`] — the one-call paths
//!   the fuzz campaign and the regression corpus use: run a
//!   [`ScenarioSpec`] once while recording, then rebuild the exact run
//!   from the file, with the live synthetic/comms front end replaced
//!   by the recording.
//!
//! Retunes and substrate switches are stored as *annotations*: replay
//! re-derives them from the event stream (and the corpus test checks
//! they match), but a recording alone is enough to triage a failure
//! without re-running the generator.

use crate::adaptive::AdaptiveBackend;
use crate::monitor::Retune;
use crate::scenario::RunResult;
use crate::session::{
    EventSink, FusionSession, IntoSharedTrajectory, SensorEvent, SensorSource, TIME_EPS,
};
use crate::spec::ScenarioSpec;
use comms::StreamStats;
use mathx::{Vec2, Vec3};
use sensors::DmuSample;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Serialization version written to every recording header.
pub const FORMAT_VERSION: u16 = 1;

/// File magic, first four bytes of every recording.
pub const MAGIC: [u8; 4] = *b"BRSR";

/// One substrate switch, as annotated onto a recording (a flat,
/// serializable mirror of [`crate::adaptive::ReconfigEvent`] — the
/// policy context window is not replayed, only the decision).
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchRecord {
    /// Stream time of the decision, seconds.
    pub at_time_s: f64,
    /// Accepted updates completed when the switch happened.
    pub at_update: u64,
    /// Outgoing substrate label (e.g. `q16.16`).
    pub from: String,
    /// Incoming substrate label.
    pub to: String,
    /// The policy that fired.
    pub reason: String,
    /// Modelled snapshot-transfer cycles charged.
    pub transfer_cycles: u64,
}

/// One record of the captured stream, in dispatch order.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayRecord {
    /// A timestamped sensor event (the replayed payload).
    Event(SensorEvent),
    /// A retune the backend's monitor fired (annotation).
    Retune(Retune),
    /// A substrate switch the adaptive supervisor performed
    /// (annotation, stamped post-run from the reconfiguration ledger).
    Switch(SwitchRecord),
}

/// A captured session stream plus enough header data to rebuild the
/// source side of the run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recording {
    /// The original source's natural step, seconds.
    pub dt: f64,
    /// The original source's total duration, seconds.
    pub duration_s: f64,
    /// Final serial-link statistics of the original source, if it ran
    /// through a comms chain (replay surfaces these verbatim, so
    /// stream-stats consumers see the identical numbers).
    pub stream_stats: Option<StreamStats>,
    /// The stream, in dispatch order.
    pub records: Vec<ReplayRecord>,
}

impl Recording {
    /// An empty recording for a source with the given step/duration.
    pub fn new(dt: f64, duration_s: f64) -> Self {
        Self {
            dt,
            duration_s,
            stream_stats: None,
            records: Vec::new(),
        }
    }

    /// The recorded sensor events, in dispatch order.
    pub fn events(&self) -> impl Iterator<Item = &SensorEvent> {
        self.records.iter().filter_map(|r| match r {
            ReplayRecord::Event(e) => Some(e),
            _ => None,
        })
    }

    /// Number of sensor events recorded.
    pub fn event_count(&self) -> usize {
        self.events().count()
    }

    /// The annotated retunes, in firing order.
    pub fn retunes(&self) -> impl Iterator<Item = &Retune> {
        self.records.iter().filter_map(|r| match r {
            ReplayRecord::Retune(t) => Some(t),
            _ => None,
        })
    }

    /// The annotated substrate switches, in switch order.
    pub fn switches(&self) -> impl Iterator<Item = &SwitchRecord> {
        self.records.iter().filter_map(|r| match r {
            ReplayRecord::Switch(s) => Some(s),
            _ => None,
        })
    }

    /// Stamps post-run annotations off the finished original session:
    /// the final stream stats and, for an adaptive backend, the
    /// reconfiguration ledger as [`SwitchRecord`]s.
    pub fn annotate_from_session(&mut self, session: &FusionSession) {
        self.stream_stats = session.stream_stats();
        if let Some(backend) = session.backend_as::<AdaptiveBackend>() {
            for event in backend.ledger().events() {
                self.records.push(ReplayRecord::Switch(SwitchRecord {
                    at_time_s: event.at_time_s,
                    at_update: event.at_update,
                    from: event.from.to_string(),
                    to: event.to.to_string(),
                    reason: event.reason.to_string(),
                    transfer_cycles: event.transfer_cycles,
                }));
            }
        }
    }

    /// Serializes the recording (magic, version, header, records).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.records.len() * 64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(u8::from(self.stream_stats.is_some()));
        out.extend_from_slice(&self.dt.to_bits().to_le_bytes());
        out.extend_from_slice(&self.duration_s.to_bits().to_le_bytes());
        if let Some(stats) = &self.stream_stats {
            for v in stream_stats_words(stats) {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for record in &self.records {
            match record {
                ReplayRecord::Event(SensorEvent::Dmu(s)) => {
                    out.push(0);
                    out.extend_from_slice(&s.seq.to_le_bytes());
                    write_f64(&mut out, s.time_s);
                    for i in 0..3 {
                        write_f64(&mut out, s.gyro[i]);
                    }
                    for i in 0..3 {
                        write_f64(&mut out, s.accel[i]);
                    }
                }
                ReplayRecord::Event(SensorEvent::Acc { sensor, time_s, z }) => {
                    out.push(1);
                    out.extend_from_slice(&(*sensor as u32).to_le_bytes());
                    write_f64(&mut out, *time_s);
                    write_f64(&mut out, z[0]);
                    write_f64(&mut out, z[1]);
                }
                ReplayRecord::Retune(t) => {
                    out.push(2);
                    out.extend_from_slice(&t.at_sample.to_le_bytes());
                    write_f64(&mut out, t.new_sigma);
                    write_f64(&mut out, t.rate);
                }
                ReplayRecord::Switch(s) => {
                    out.push(3);
                    write_f64(&mut out, s.at_time_s);
                    out.extend_from_slice(&s.at_update.to_le_bytes());
                    write_str(&mut out, &s.from);
                    write_str(&mut out, &s.to);
                    write_str(&mut out, &s.reason);
                    out.extend_from_slice(&s.transfer_cycles.to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserializes a recording produced by [`Recording::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err("not a boresight recording (bad magic)".into());
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(format!(
                "unsupported recording version {version} (expected {FORMAT_VERSION})"
            ));
        }
        let has_stats = r.take(1)?[0] != 0;
        let dt = r.f64()?;
        let duration_s = r.f64()?;
        let stream_stats = if has_stats {
            let mut words = [0u64; STREAM_STATS_WORDS];
            for w in words.iter_mut() {
                *w = r.u64()?;
            }
            Some(stream_stats_from_words(&words))
        } else {
            None
        };
        let count = r.u64()? as usize;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = r.take(1)?[0];
            records.push(match tag {
                0 => {
                    let seq = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
                    let time_s = r.f64()?;
                    let gyro = Vec3::new([r.f64()?, r.f64()?, r.f64()?]);
                    let accel = Vec3::new([r.f64()?, r.f64()?, r.f64()?]);
                    ReplayRecord::Event(SensorEvent::Dmu(DmuSample {
                        seq,
                        time_s,
                        gyro,
                        accel,
                    }))
                }
                1 => {
                    let sensor = u32::from_le_bytes(r.take(4)?.try_into().unwrap()) as usize;
                    let time_s = r.f64()?;
                    let z = Vec2::new([r.f64()?, r.f64()?]);
                    ReplayRecord::Event(SensorEvent::Acc { sensor, time_s, z })
                }
                2 => ReplayRecord::Retune(Retune {
                    at_sample: r.u64()?,
                    new_sigma: r.f64()?,
                    rate: r.f64()?,
                }),
                3 => {
                    let at_time_s = r.f64()?;
                    let at_update = r.u64()?;
                    let from = r.str()?;
                    let to = r.str()?;
                    let reason = r.str()?;
                    let transfer_cycles = r.u64()?;
                    ReplayRecord::Switch(SwitchRecord {
                        at_time_s,
                        at_update,
                        from,
                        to,
                        reason,
                        transfer_cycles,
                    })
                }
                other => return Err(format!("unknown record tag {other}")),
            });
        }
        if r.pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after the last record",
                bytes.len() - r.pos
            ));
        }
        Ok(Self {
            dt,
            duration_s,
            stream_stats,
            records,
        })
    }

    /// Writes the recording to a file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a recording from a file.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, String> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        Self::from_bytes(&bytes)
    }

    /// A replay source over this recording's event stream.
    pub fn replay_source(&self) -> ReplaySource {
        ReplaySource {
            events: self.events().copied().collect(),
            stats: self.stream_stats,
            dt: self.dt,
            duration_s: self.duration_s,
            next: 0,
        }
    }
}

/// Number of `u64` words a serialized [`StreamStats`] occupies.
const STREAM_STATS_WORDS: usize = 13;

fn stream_stats_words(s: &StreamStats) -> [u64; STREAM_STATS_WORDS] {
    [
        s.dmu_samples,
        s.acc_samples,
        s.dmu_errors,
        s.dmu_gaps,
        s.acc_errors,
        s.acc_gaps,
        s.bytes_in,
        s.fault_bits_flipped,
        s.fault_bytes_dropped,
        s.fault_bursts,
        s.window_fault_bits_flipped,
        s.window_fault_bytes_dropped,
        s.window_fault_bursts,
    ]
}

fn stream_stats_from_words(w: &[u64; STREAM_STATS_WORDS]) -> StreamStats {
    StreamStats {
        dmu_samples: w[0],
        acc_samples: w[1],
        dmu_errors: w[2],
        dmu_gaps: w[3],
        acc_errors: w[4],
        acc_gaps: w[5],
        bytes_in: w[6],
        fault_bits_flipped: w[7],
        fault_bytes_dropped: w[8],
        fault_bursts: w[9],
        window_fault_bits_flipped: w[10],
        window_fault_bytes_dropped: w[11],
        window_fault_bursts: w[12],
    }
}

fn write_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "oversized string field");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated recording at byte {}", self.pos))?;
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|e| e.to_string())
    }
}

/// An [`EventSink`] that captures the stream into a [`Recording`].
/// Attach as `Arc<Mutex<RecordingSink>>` and read the recording back
/// after the run (see [`record_spec`] for the packaged flow).
#[derive(Debug)]
pub struct RecordingSink {
    recording: Recording,
}

impl RecordingSink {
    /// A sink for a source with the given natural step and duration.
    pub fn new(dt: f64, duration_s: f64) -> Self {
        Self {
            recording: Recording::new(dt, duration_s),
        }
    }

    /// The capture so far.
    pub fn recording(&self) -> &Recording {
        &self.recording
    }

    /// Consumes the sink, yielding the capture.
    pub fn into_recording(self) -> Recording {
        self.recording
    }
}

impl EventSink for RecordingSink {
    fn on_event(&mut self, event: &SensorEvent) {
        self.recording.records.push(ReplayRecord::Event(*event));
    }

    fn on_retune(&mut self, retune: &Retune) {
        self.recording.records.push(ReplayRecord::Retune(*retune));
    }
}

/// A [`SensorSource`] that re-emits a recorded event stream.
///
/// Events are emitted strictly in recorded order: each [`poll`] window
/// releases records from the head of the stream while the head event's
/// timestamp lies inside the window. Recorded order — not timestamp
/// sorting — is what the backend's bit-identity depends on (a comms
/// chain can reconstruct a DMU sample after an ACC sample that carries
/// a slightly later timestamp).
///
/// [`poll`]: SensorSource::poll
pub struct ReplaySource {
    events: Vec<SensorEvent>,
    stats: Option<StreamStats>,
    dt: f64,
    duration_s: f64,
    next: usize,
}

impl SensorSource for ReplaySource {
    fn dt(&self) -> f64 {
        self.dt
    }

    fn duration_s(&self) -> Option<f64> {
        Some(self.duration_s)
    }

    fn poll(&mut self, t_to: f64, out: &mut Vec<SensorEvent>) {
        while let Some(event) = self.events.get(self.next) {
            if event.time_s() > t_to + TIME_EPS {
                break;
            }
            out.push(*event);
            self.next += 1;
        }
        // Events timestamped past the recorded duration (reconstruction
        // latency at the very end of a comms run) flush on the final
        // window, so replay finishes exactly when the original did.
        if t_to + TIME_EPS >= self.duration_s {
            while let Some(event) = self.events.get(self.next) {
                out.push(*event);
                self.next += 1;
            }
        }
    }

    fn is_exhausted(&self) -> bool {
        self.next >= self.events.len()
    }

    fn stream_stats(&self) -> Option<StreamStats> {
        self.stats
    }
}

/// Runs `spec` to completion while recording its event stream.
/// Returns the batch result and the annotated recording (stream stats
/// and, for adaptive runs, the switch ledger stamped on).
pub fn record_spec(spec: &ScenarioSpec) -> (RunResult, Recording) {
    record_spec_over(spec, spec.lower_trajectory())
}

/// [`record_spec`] over an explicit (possibly shared) trajectory.
pub fn record_spec_over(
    spec: &ScenarioSpec,
    trajectory: impl IntoSharedTrajectory,
) -> (RunResult, Recording) {
    let cfg = spec.config();
    let sink = Arc::new(Mutex::new(RecordingSink::new(
        1.0 / cfg.acc_rate_hz,
        cfg.duration_s,
    )));
    let mut session = spec
        .session_builder(trajectory)
        .sink(Arc::clone(&sink))
        .build();
    session.run_to_end();
    let mut recording = {
        let mut guard = sink.lock().expect("recording sink");
        std::mem::take(&mut guard.recording)
    };
    recording.annotate_from_session(&session);
    (session.into_result(), recording)
}

/// Builds the session `spec` describes with its live front end
/// replaced by `recording` — same substrate backend, tuning, truth and
/// trace decimation, fed from the captured stream. Running it to the
/// end reproduces the original run bit for bit.
pub fn replay_spec_session(spec: &ScenarioSpec, recording: &Recording) -> FusionSession {
    let cfg = spec.config();
    let builder = FusionSession::builder().source(recording.replay_source());
    spec.substrate
        .attach_iekf(builder, cfg.estimator)
        .truth(cfg.true_misalignment)
        .record_traces_sized(cfg.trace_decimation, recording.event_count())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelSpec, Substrate};
    use mathx::EulerAngles;

    fn short_spec(substrate: Substrate) -> ScenarioSpec {
        ScenarioSpec::named("replay-unit")
            .with_truth(EulerAngles::from_degrees(2.0, -1.0, 1.5))
            .with_duration(12.0)
            .with_substrate(substrate)
    }

    #[test]
    fn recording_round_trips_through_bytes() {
        let (_, recording) = record_spec(&short_spec(Substrate::F64));
        assert!(recording.event_count() > 1000);
        let bytes = recording.to_bytes();
        let back = Recording::from_bytes(&bytes).expect("parse");
        assert_eq!(back, recording);

        // Corrupt the magic and the version independently.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(Recording::from_bytes(&bad).is_err());
        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        assert!(Recording::from_bytes(&bad).unwrap_err().contains("version"));
        assert!(Recording::from_bytes(&bytes[..bytes.len() - 3])
            .unwrap_err()
            .contains("truncated"));
    }

    #[test]
    fn replay_reproduces_the_original_run_bit_for_bit() {
        for substrate in [Substrate::F64, Substrate::Q16_16] {
            let spec = short_spec(substrate);
            let (original, recording) = record_spec(&spec);
            let replayed = replay_spec_session(&spec, &recording).into_result();
            assert_eq!(original.estimate, replayed.estimate, "{substrate}");
            assert_eq!(original.residuals, replayed.residuals, "{substrate}");
            assert_eq!(original.estimates, replayed.estimates, "{substrate}");
            assert_eq!(original.retune_count, replayed.retune_count, "{substrate}");
        }
    }

    #[test]
    fn comms_replay_preserves_stream_stats() {
        let spec = short_spec(Substrate::Softfloat).with_channel(ChannelSpec::Comms {
            faults: crate::session::LinkFaultConfig {
                bit_flip_prob: 0.002,
                drop_prob: 0.002,
                burst_prob: 0.0005,
                burst_len: 6,
            },
        });
        let (original, recording) = record_spec(&spec);
        let stats = recording.stream_stats.expect("comms stats recorded");
        assert!(stats.fault_bits_flipped > 0);

        let mut session = replay_spec_session(&spec, &recording);
        session.run_to_end();
        assert_eq!(session.stream_stats(), Some(stats));
        let replayed = session.into_result();
        assert_eq!(original.estimate, replayed.estimate);
        assert_eq!(original.residuals, replayed.residuals);
    }

    #[test]
    fn adaptive_recordings_annotate_switches() {
        let spec = short_spec(Substrate::Adaptive)
            .with_environment(crate::spec::EnvironmentSpec::rough_road());
        let (_, recording) = record_spec(&spec);
        // Whether or not the policy fired in 12 s, the annotation path
        // must round-trip through the serialization.
        let back = Recording::from_bytes(&recording.to_bytes()).expect("parse");
        assert_eq!(back.switches().count(), recording.switches().count());
        for (a, b) in back.switches().zip(recording.switches()) {
            assert_eq!(a, b);
        }
    }
}
