//! Computational boresighting of automotive sensors — the core
//! contribution of Chappell et al., "Exploiting real-time FPGA based
//! adaptive systems technology for real-time Sensor Fusion in next
//! generation automotive safety systems" (DATE 2005).
//!
//! A vehicle-fixed 6-DOF IMU and a two-axis accelerometer attached to
//! the sensor being aligned both witness the same specific-force
//! vector; the differences between their readings are a function of
//! the sensor's mounting misalignment (roll, pitch, yaw). This crate
//! estimates that misalignment in real time:
//!
//! * [`model`] — the measurement model `z = S C_sb(e) f_b + b + v` and
//!   its analytic Jacobian, in native `f64` and generically over any
//!   [`arith::Arith`] number system;
//! * [`filter`] — the extended Kalman filter (Joseph-form updates,
//!   innovation gating) over misalignment plus ACC bias —
//!   [`GenericBoresightFilter`] runs the identical algorithm over any
//!   arithmetic substrate, with [`BoresightFilter`] the bit-pinned
//!   native-`f64` instantiation;
//! * [`monitor`] — the paper's residual / 3-sigma tuning loop that
//!   raises the measurement noise when vehicle vibration appears;
//! * [`estimator`] — [`BoresightEstimator`], the public API tying the
//!   above to the asynchronous DMU/ACC streams with lever-arm
//!   compensation;
//! * [`session`] — the streaming heart of the crate:
//!   [`FusionSession`] wires a pluggable [`SensorSource`], a
//!   [`FusionBackend`] and any number of [`EventSink`]s around one
//!   incremental event loop;
//! * [`spec`] — the declarative scenario layer: a pure-data
//!   [`ScenarioSpec`] composing trajectory, environment, channel,
//!   tuning and arithmetic substrate, lowered to a session through
//!   one [`spec::ScenarioSpec::into_session`] path, plus the
//!   [`spec::ScenarioSuite`] scenario × substrate sweep runner;
//! * [`catalog`] — ≥10 named workloads (the paper's two procedures
//!   plus drive styles, road surfaces, vehicle classes, channel-fault
//!   storms and a 1-hour drift run) ready for the suite;
//! * [`exec`] — the vendored work-stealing-lite worker pool behind
//!   [`spec::ScenarioSuite::run_parallel`]: whole sessions are `Send`,
//!   so every scenario × substrate cell lowers and runs inside its
//!   worker thread, bit-identical to the serial sweep;
//! * [`fuzz`] — the seeded scenario fuzzer: a replayable random
//!   composer of [`ScenarioSpec`]s over every axis the declarative
//!   layer exposes, with greedy shrinking toward the minimal spec
//!   still tripping a given [`oracle`] verdict, and the lossless
//!   spec JSON codec behind the committed `corpus/` regression cases;
//! * [`oracle`] — [`oracle::FusionOracle`], the shared fusion-health
//!   oracle: covariance collapse/indefiniteness, divergence against
//!   an interleaved `f64` reference, innovation-gate livelock, retune
//!   thrash, saturation storms, link-fault storms and reconfiguration
//!   ledger violations, each a typed [`oracle::OracleVerdict`] with
//!   the first offending update index;
//! * [`replay`] — the deterministic record/replay layer: a
//!   [`replay::RecordingSink`] captures a session's event stream into
//!   a compact versioned [`replay::Recording`], and a
//!   [`replay::ReplaySource`] feeds it back bit-identically on every
//!   substrate (pinned by test);
//! * [`json`] — the dependency-free JSON tree shared by the bench
//!   reports and the fuzz corpus codec;
//! * [`scenario`] — the static (tilt-table) and dynamic (drive)
//!   test procedures producing Table-1/Figure-8/Figure-9 data, as thin
//!   wrappers over [`session`] (and the lowering target [`spec`]
//!   reuses);
//! * [`arith`] — the arithmetic substrates (native f64, emulated
//!   Softfloat with Sabre cycle accounting, saturating Q16.16 fixed
//!   point) with shared per-op instrumentation, plus the 3-state
//!   ablation filter; the *full* 5-state IEKF runs over any of them
//!   through [`SessionBuilder::iekf`] or
//!   [`SessionGroup::full_iekf_sweep`];
//! * [`simd`] — the explicit-vector `f64` lane substrate
//!   ([`SimdArith`]) behind the same [`arith::Arith`] trait: SSE2
//!   packed doubles on x86_64 under the `simd` cargo feature, with a
//!   bit-identical portable fallback;
//! * [`fleet`] — the fleet-scale session server: thousands of
//!   concurrent vehicles packed into struct-of-arrays
//!   [`lanes::LaneIekf`] shard arenas behind bounded ingress queues,
//!   advanced in deterministic epochs over the [`exec`] pool, with
//!   mid-run admission, compacting eviction and per-vehicle bit
//!   identity to standalone scalar sessions;
//! * [`report`] — the shared per-vehicle summary type
//!   ([`report::VehicleSummary`]) the suite matrix and the fleet both
//!   emit, plus the streaming RMS accumulator behind it;
//! * [`smallmat`] — the substrate-generic dense kernels (products,
//!   Gauss-Jordan inverse, Cholesky check) shared by both filters;
//! * [`system`] — the full Figure-2 system simulation: sensors, CAN,
//!   bridge, UARTs, reconstruction, fusion, the Sabre soft core
//!   publishing to its control block, and affine video correction —
//!   a session over the [`session::CommsChainSource`] front end.
//!
//! # Quickstart
//!
//! A [`FusionSession`] streams sensor events through a fusion backend
//! incrementally — build one from a scenario, step it as fast or as
//! slowly as you like, and read the estimate at any point:
//!
//! ```
//! use boresight::session::FusionSession;
//! use boresight::scenario::ScenarioConfig;
//! use mathx::EulerAngles;
//! use vehicle::TiltTable;
//!
//! let mut config = ScenarioConfig::static_test(EulerAngles::from_degrees(2.0, -3.0, 1.5));
//! config.duration_s = 30.0; // the paper records 300 s
//! let table = TiltTable::observability_sequence(20.0, config.duration_s / 8.0);
//! let mut session = FusionSession::from_scenario(&table, &config);
//! session.run_for(10.0);              // stream the first 10 s...
//! let early = session.estimate();     // ...peek at the estimate...
//! session.run_to_end();               // ...then finish the run
//! let result = session.into_result();
//! assert!(result.max_error_deg() < 0.5);
//! assert!(early.updates < result.estimate.updates);
//! ```
//!
//! The batch wrappers are still the shortest path to the paper's
//! procedures:
//!
//! ```
//! use boresight::scenario::{run_static, ScenarioConfig};
//! use mathx::EulerAngles;
//!
//! let mut config = ScenarioConfig::static_test(EulerAngles::from_degrees(2.0, -3.0, 1.5));
//! config.duration_s = 30.0;
//! let result = run_static(&config);
//! assert!(result.max_error_deg() < 0.5);
//! ```
//!
//! Workloads beyond the paper's two procedures are authored
//! declaratively: compose a [`ScenarioSpec`], or pull a named one from
//! the [`catalog`], and lower it to a session (or sweep the whole
//! scenario × substrate matrix with [`spec::ScenarioSuite`]):
//!
//! ```
//! use boresight::catalog;
//!
//! let mut spec = catalog::by_name("emergency-brake").expect("catalog entry");
//! spec.duration_s = 30.0; // catalog entries default to full length
//! let result = spec.run();
//! assert!(result.max_error_deg().is_finite());
//! ```
//!
//! Several sessions — different scenarios, different arithmetic
//! backends — interleave on one thread through
//! [`session::SessionGroup`] (see `examples/streaming_sessions.rs`),
//! or fan out across cores with
//! [`spec::ScenarioSuite::run_parallel`] — sessions are `Send` and own
//! their trajectories, so whole cells run inside worker threads.

pub mod adaptive;
pub mod arith;
pub mod catalog;
pub mod estimator;
pub mod exec;
pub mod filter;
pub mod fleet;
pub mod fuzz;
pub mod json;
pub mod lanes;
pub mod model;
pub mod monitor;
pub mod multi;
pub mod oracle;
pub mod replay;
pub mod report;
pub mod scenario;
pub mod session;
pub mod simd;
pub mod smallmat;
pub mod spec;
pub mod system;

pub use adaptive::{
    AdaptiveBackend, ContextMonitor, ContextState, FrontierPoint, FrontierPolicy, HysteresisPolicy,
    PinnedPolicy, ReconfigEvent, ReconfigLedger, ReconfigPolicy, SubstrateId,
};
#[allow(deprecated)]
pub use arith::FixedArith;
pub use arith::{
    Arith, F32Arith, F32ArithFast, F64Arith, F64ArithFast, LaneArith, LaneOps, LaneSpec, OpCounts,
    PhaseCost, PhaseLedger, QArith, SoftArith,
};
pub use estimator::{
    BoresightEstimator, EstimatorConfig, GenericBoresightEstimator, ImuPrep, MisalignmentEstimate,
};
pub use filter::{BoresightFilter, FilterConfig, GenericBoresightFilter, KalmanUpdate};
pub use fleet::{
    AdmitError, EpochProfile, EpochSample, EvictReason, EvictionPolicy, Fleet, FleetConfig,
    FleetStats, VehicleId,
};
pub use fuzz::{generate_spec, shrink, CorpusEntry, ShrinkOutcome};
pub use json::Json;
pub use lanes::{LaneBank, LaneIekf, LaneState};
pub use monitor::{MonitorConfig, ResidualMonitor, Retune};
pub use multi::MultiBoresight;
pub use oracle::{FusionOracle, OracleConfig, OracleReport, OracleVerdict};
pub use replay::{
    record_spec, replay_spec_session, Recording, RecordingSink, ReplayRecord, ReplaySource,
};
pub use report::{RunningRms, VehicleSummary};
pub use scenario::{run, run_dynamic, run_static, RunResult, ScenarioConfig};
pub use session::{
    ArithDivergence, ArithKf3, ChannelConfig, CommsChainSource, EventSink, FusionBackend,
    FusionSession, IntoSharedTrajectory, LinkFaultConfig, SensorEvent, SensorSource,
    SessionBuilder, SessionGroup, SessionStats, SyntheticSource, UartReplaySource,
};
pub use simd::{F64Lanes, SimdArith, SimdF64};
pub use spec::{
    ChannelSpec, EnvironmentSpec, ScenarioSpec, ScenarioSuite, ScenarioTrajectory, Substrate,
    SuiteCell, SuiteReport, TrajectorySpec, TuningSpec, VibrationClass,
};
pub use system::{run_system, SystemConfig, SystemReport};
