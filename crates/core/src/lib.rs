//! Computational boresighting of automotive sensors — the core
//! contribution of Chappell et al., "Exploiting real-time FPGA based
//! adaptive systems technology for real-time Sensor Fusion in next
//! generation automotive safety systems" (DATE 2005).
//!
//! A vehicle-fixed 6-DOF IMU and a two-axis accelerometer attached to
//! the sensor being aligned both witness the same specific-force
//! vector; the differences between their readings are a function of
//! the sensor's mounting misalignment (roll, pitch, yaw). This crate
//! estimates that misalignment in real time:
//!
//! * [`model`] — the measurement model `z = S C_sb(e) f_b + b + v` and
//!   its analytic Jacobian;
//! * [`filter`] — the extended Kalman filter (Joseph-form updates,
//!   innovation gating) over misalignment plus ACC bias;
//! * [`monitor`] — the paper's residual / 3-sigma tuning loop that
//!   raises the measurement noise when vehicle vibration appears;
//! * [`estimator`] — [`BoresightEstimator`], the public API tying the
//!   above to the asynchronous DMU/ACC streams with lever-arm
//!   compensation;
//! * [`scenario`] — the static (tilt-table) and dynamic (drive)
//!   test procedures producing Table-1/Figure-8/Figure-9 data;
//! * [`arith`] — the same filter over native f64, emulated Softfloat
//!   and Q16.16 fixed point (the paper's future-work ablation);
//! * [`system`] — the full Figure-2 system simulation: sensors, CAN,
//!   bridge, UARTs, reconstruction, fusion, the Sabre soft core
//!   publishing to its control block, and affine video correction.
//!
//! # Quickstart
//!
//! ```
//! use boresight::scenario::{run_static, ScenarioConfig};
//! use mathx::EulerAngles;
//!
//! let mut config = ScenarioConfig::static_test(EulerAngles::from_degrees(2.0, -3.0, 1.5));
//! config.duration_s = 30.0; // the paper records 300 s
//! let result = run_static(&config);
//! assert!(result.max_error_deg() < 0.5);
//! ```

pub mod arith;
pub mod estimator;
pub mod filter;
pub mod model;
pub mod monitor;
pub mod multi;
pub mod scenario;
pub mod system;

pub use estimator::{BoresightEstimator, EstimatorConfig, MisalignmentEstimate};
pub use filter::{BoresightFilter, FilterConfig, KalmanUpdate};
pub use monitor::{MonitorConfig, ResidualMonitor, Retune};
pub use multi::MultiBoresight;
pub use scenario::{run, run_dynamic, run_static, RunResult, ScenarioConfig};
pub use system::{run_system, SystemConfig, SystemReport};
