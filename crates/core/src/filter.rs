//! The misalignment Kalman filter.
//!
//! An extended Kalman filter over the state `[phi, theta, psi, bx, by]`
//! (sensor misalignment Euler angles plus the two ACC bias states).
//! The misalignment is quasi-constant, so prediction is a random walk
//! with small process noise; each two-axis accelerometer sample is a
//! nonlinear measurement handled with the analytic Jacobian of
//! [`crate::model`]. The covariance update uses the Joseph form and is
//! re-symmetrized each step, keeping `P` positive definite over
//! hour-long runs — the filter also reports the innovation and its
//! 3-sigma bound, which is what the paper plots (Figure 8) and tunes
//! against.

use crate::model::{self, Meas, State, StateCov, MEAS_DIM, STATE_DIM};
use mathx::{Cholesky, EulerAngles, Mat2, Matrix, Vec2, Vec3};

/// Filter configuration.
#[derive(Clone, Copy, Debug)]
pub struct FilterConfig {
    /// Initial 1-sigma uncertainty of each misalignment angle, rad.
    pub initial_angle_sigma: f64,
    /// Initial 1-sigma uncertainty of each ACC bias, m/s^2.
    pub initial_bias_sigma: f64,
    /// Angle random-walk process density, rad/sqrt(s).
    pub angle_process_density: f64,
    /// Bias random-walk process density, (m/s^2)/sqrt(s).
    pub bias_process_density: f64,
    /// Measurement noise 1-sigma per axis, m/s^2 (the paper's tuned
    /// 0.003-0.01 static / >= 0.015 moving value).
    pub measurement_sigma: f64,
    /// Estimate the bias states. When `false` they are pinned at zero.
    pub estimate_bias: bool,
    /// Innovation gate in sigmas (a sample whose normalized innovation
    /// exceeds this on either axis is rejected). `0` disables gating.
    pub gate_sigmas: f64,
    /// Physical trust region for the misalignment angles, rad. Mounting
    /// errors are mechanically small; bounding the state prevents the
    /// EKF from being captured by the degenerate large-angle solutions
    /// (e.g. pitch ~ -90 deg with a gravity-sized bias) that weakly
    /// excited starts can otherwise wander into. When an angle is
    /// clamped its variance is re-opened so the filter can recover.
    /// `0` disables the constraint.
    pub angle_limit: f64,
    /// Physical trust region for the ACC biases, m/s^2 (`0` disables).
    pub bias_limit: f64,
    /// Iterated-EKF relinearization passes per measurement update
    /// (1 = classic EKF). Iteration keeps the update consistent when
    /// the state is still degrees away from the truth, which is what
    /// stops weakly excited starts from banking linearization error
    /// as information.
    pub iekf_iterations: usize,
}

impl FilterConfig {
    /// Defaults matching the paper's static tuning.
    pub fn paper_static() -> Self {
        Self {
            initial_angle_sigma: mathx::deg_to_rad(5.0),
            initial_bias_sigma: 0.05,
            angle_process_density: 2e-6,
            bias_process_density: 2e-6,
            measurement_sigma: 0.007,
            estimate_bias: true,
            gate_sigmas: 6.0,
            angle_limit: mathx::deg_to_rad(15.0),
            bias_limit: 0.3,
            iekf_iterations: 3,
        }
    }

    /// Defaults matching the paper's dynamic tuning (raised R).
    pub fn paper_dynamic() -> Self {
        Self {
            measurement_sigma: 0.015,
            ..Self::paper_static()
        }
    }
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self::paper_static()
    }
}

/// Record of one measurement update (the residual trace of Figure 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KalmanUpdate {
    /// Update time, seconds.
    pub time_s: f64,
    /// Innovation (measurement minus prediction), m/s^2.
    pub innovation: Vec2,
    /// 1-sigma of the innovation from `S = H P H^T + R`, m/s^2.
    pub innovation_sigma: Vec2,
    /// `false` if the gate rejected this sample.
    pub accepted: bool,
}

impl KalmanUpdate {
    /// `true` if either axis exceeded its 3-sigma bound.
    pub fn exceeds_three_sigma(&self) -> bool {
        self.innovation[0].abs() > 3.0 * self.innovation_sigma[0]
            || self.innovation[1].abs() > 3.0 * self.innovation_sigma[1]
    }
}

/// The extended Kalman filter.
///
/// # Examples
///
/// ```
/// use boresight::filter::{BoresightFilter, FilterConfig};
/// use mathx::{Vec2, Vec3, STANDARD_GRAVITY};
///
/// let mut kf = BoresightFilter::new(FilterConfig::default());
/// kf.predict(0.01);
/// // A level platform: ACC sees ~zero if aligned.
/// let f_b = Vec3::new([0.0, 0.0, STANDARD_GRAVITY]);
/// let update = kf.update(Vec2::new([0.001, -0.002]), f_b, 0.01);
/// assert!(update.accepted);
/// ```
#[derive(Clone, Debug)]
pub struct BoresightFilter {
    config: FilterConfig,
    x: State,
    p: StateCov,
    updates: u64,
    rejected: u64,
}

impl BoresightFilter {
    /// Creates a filter from its configuration.
    pub fn new(config: FilterConfig) -> Self {
        let mut p = StateCov::zeros();
        let a2 = config.initial_angle_sigma * config.initial_angle_sigma;
        let b2 = if config.estimate_bias {
            config.initial_bias_sigma * config.initial_bias_sigma
        } else {
            0.0
        };
        for i in 0..3 {
            p[(i, i)] = a2;
        }
        for i in 3..STATE_DIM {
            p[(i, i)] = b2;
        }
        Self {
            config,
            x: State::zeros(),
            p,
            updates: 0,
            rejected: 0,
        }
    }

    /// The configuration (measurement sigma may have been retuned).
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// Current measurement noise 1-sigma.
    pub fn measurement_sigma(&self) -> f64 {
        self.config.measurement_sigma
    }

    /// Retunes the measurement noise (the adaptive monitor calls this).
    pub fn set_measurement_sigma(&mut self, sigma: f64) {
        self.config.measurement_sigma = sigma.max(1e-6);
    }

    /// Estimated misalignment angles.
    pub fn angles(&self) -> EulerAngles {
        EulerAngles::new(self.x[0], self.x[1], self.x[2])
    }

    /// Estimated ACC biases, m/s^2.
    pub fn bias(&self) -> Vec2 {
        Vec2::new([self.x[3], self.x[4]])
    }

    /// Full state vector.
    pub fn state(&self) -> &State {
        &self.x
    }

    /// State covariance.
    pub fn covariance(&self) -> &StateCov {
        &self.p
    }

    /// 1-sigma of each misalignment angle, rad.
    pub fn angle_sigma(&self) -> Vec3 {
        Vec3::new([
            self.p[(0, 0)].max(0.0).sqrt(),
            self.p[(1, 1)].max(0.0).sqrt(),
            self.p[(2, 2)].max(0.0).sqrt(),
        ])
    }

    /// Accepted updates so far.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Gate-rejected updates so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Time propagation over `dt` seconds: the state is constant, the
    /// covariance grows by the random-walk process noise.
    pub fn predict(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let qa = self.config.angle_process_density.powi(2) * dt;
        let qb = if self.config.estimate_bias {
            self.config.bias_process_density.powi(2) * dt
        } else {
            0.0
        };
        for i in 0..3 {
            self.p[(i, i)] += qa;
        }
        for i in 3..STATE_DIM {
            self.p[(i, i)] += qb;
        }
    }

    /// Measurement update with the ACC sample `z` (m/s^2, x'/y') given
    /// the concurrent IMU specific force `f_b`. Returns the update
    /// record for residual monitoring.
    ///
    /// Runs the iterated EKF: the measurement is relinearized
    /// [`FilterConfig::iekf_iterations`] times around the improving
    /// estimate (Gauss-Newton on the MAP objective), then the
    /// covariance is updated in Joseph form at the final
    /// linearization point.
    pub fn update(&mut self, z: Meas, f_b: Vec3, time_s: f64) -> KalmanUpdate {
        let r = self.config.measurement_sigma.powi(2);
        let x_pred = self.x;

        // First-pass innovation and its sigma: this is what the
        // residual monitor sees (z minus the prior prediction).
        let innovation = z - model::h(&x_pred, f_b);
        let jac0 = self.jacobian_at(&x_pred, f_b);
        let s0: Mat2 = jac0 * self.p * jac0.transpose() + Mat2::identity() * r;
        let sigma = Vec2::new([s0[(0, 0)].max(0.0).sqrt(), s0[(1, 1)].max(0.0).sqrt()]);

        // Gate on the per-axis normalized innovation.
        if self.config.gate_sigmas > 0.0 {
            let g = self.config.gate_sigmas;
            if innovation[0].abs() > g * sigma[0] || innovation[1].abs() > g * sigma[1] {
                self.rejected += 1;
                return KalmanUpdate {
                    time_s,
                    innovation,
                    innovation_sigma: sigma,
                    accepted: false,
                };
            }
        }

        let iterations = self.config.iekf_iterations.max(1);
        let mut x_i = x_pred;
        let mut jac = jac0;
        let mut gain: Option<Matrix<STATE_DIM, MEAS_DIM>> = None;
        for _ in 0..iterations {
            jac = self.jacobian_at(&x_i, f_b);
            let s: Mat2 = jac * self.p * jac.transpose() + Mat2::identity() * r;
            let s_inv = match s.inverse() {
                Some(inv) => inv,
                None => {
                    self.rejected += 1;
                    return KalmanUpdate {
                        time_s,
                        innovation,
                        innovation_sigma: sigma,
                        accepted: false,
                    };
                }
            };
            let k: Matrix<STATE_DIM, MEAS_DIM> = self.p * jac.transpose() * s_inv;
            // IEKF residual: z - h(x_i) - H (x_pred - x_i).
            let resid = z - model::h(&x_i, f_b) - jac * (x_pred - x_i);
            let x_next = x_pred + k * resid;
            let step = (x_next - x_i).max_abs();
            x_i = x_next;
            gain = Some(k);
            if step < 1e-12 {
                break;
            }
        }
        let k = gain.expect("at least one iteration ran");
        self.x = x_i;
        if !self.config.estimate_bias {
            self.x[3] = 0.0;
            self.x[4] = 0.0;
        }
        // Joseph-form covariance update at the final linearization.
        let ikh = StateCov::identity() - k * jac;
        self.p = (ikh * self.p * ikh.transpose() + k * (Mat2::identity() * r) * k.transpose())
            .symmetrized();
        self.apply_trust_region();
        self.updates += 1;
        KalmanUpdate {
            time_s,
            innovation,
            innovation_sigma: sigma,
            accepted: true,
        }
    }

    /// Jacobian with the bias columns masked when bias estimation is
    /// disabled.
    fn jacobian_at(&self, x: &State, f_b: Vec3) -> model::MeasJacobian {
        let mut jac = model::jacobian(x, f_b);
        if !self.config.estimate_bias {
            jac[(0, 3)] = 0.0;
            jac[(1, 4)] = 0.0;
        }
        jac
    }

    /// Clamps the state to its physical trust region, re-opening the
    /// variance of any clamped component (see [`FilterConfig`]).
    fn apply_trust_region(&mut self) {
        if self.config.angle_limit > 0.0 {
            let lim = self.config.angle_limit;
            let floor = (self.config.initial_angle_sigma * 0.5).powi(2);
            for i in 0..3 {
                if self.x[i].abs() > lim {
                    self.x[i] = self.x[i].clamp(-lim, lim);
                    if self.p[(i, i)] < floor {
                        self.p[(i, i)] = floor;
                    }
                }
            }
        }
        if self.config.bias_limit > 0.0 && self.config.estimate_bias {
            let lim = self.config.bias_limit;
            let floor = (self.config.initial_bias_sigma * 0.5).powi(2);
            for i in 3..STATE_DIM {
                if self.x[i].abs() > lim {
                    self.x[i] = self.x[i].clamp(-lim, lim);
                    if self.p[(i, i)] < floor {
                        self.p[(i, i)] = floor;
                    }
                }
            }
        }
    }

    /// Checks that the covariance is still symmetric positive definite
    /// (diagnostics; `true` means healthy).
    pub fn covariance_healthy(&self) -> bool {
        self.p.asymmetry() < 1e-9 && Cholesky::new(&self.p).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathx::rng::seeded_rng;
    use mathx::{deg_to_rad, rad_to_deg, GaussianSampler, STANDARD_GRAVITY};

    /// Simulates `n` measurements of a true misalignment under the
    /// given specific-force schedule and returns the filter.
    fn run_filter(
        truth: EulerAngles,
        bias: Vec2,
        forces: impl Iterator<Item = Vec3>,
        sigma: f64,
        cfg: FilterConfig,
        seed: u64,
    ) -> BoresightFilter {
        let mut kf = BoresightFilter::new(cfg);
        let mut rng = seeded_rng(seed);
        let mut gauss = GaussianSampler::new();
        let c_sb = truth.dcm().transpose();
        let mut t = 0.0;
        for f_b in forces {
            let f_s = c_sb.rotate(f_b);
            let z = Vec2::new([
                f_s[0] + bias[0] + gauss.sample_scaled(&mut rng, 0.0, sigma),
                f_s[1] + bias[1] + gauss.sample_scaled(&mut rng, 0.0, sigma),
            ]);
            kf.predict(0.005);
            kf.update(z, f_b, t);
            t += 0.005;
        }
        kf
    }

    /// A force schedule that excites all axes: gravity with varying
    /// tilts plus horizontal accelerations.
    fn rich_forces(n: usize) -> impl Iterator<Item = Vec3> {
        (0..n).map(|i| {
            let t = i as f64 * 0.005;
            let g = STANDARD_GRAVITY;
            let ax = 2.0 * (0.5 * t).sin();
            let ay = 1.5 * (0.33 * t).cos();
            let tilt = 0.2 * (0.1 * t).sin();
            Vec3::new([ax + g * tilt, ay, g * (1.0 - tilt * tilt / 2.0)])
        })
    }

    #[test]
    fn converges_to_truth_with_excitation() {
        let truth = EulerAngles::from_degrees(2.0, -1.5, 3.0);
        let cfg = FilterConfig::paper_static();
        let kf = run_filter(truth, Vec2::zeros(), rich_forces(20_000), 0.007, cfg, 1);
        let est = kf.angles();
        let err = est.error_to(&truth);
        assert!(
            rad_to_deg(err.max_abs()) < 0.05,
            "error {:?} deg",
            err.to_degrees()
        );
        assert!(kf.covariance_healthy());
    }

    #[test]
    fn estimates_bias_jointly() {
        let truth = EulerAngles::from_degrees(1.0, 2.0, -2.0);
        let bias = Vec2::new([0.03, -0.02]);
        let cfg = FilterConfig::paper_static();
        let kf = run_filter(truth, bias, rich_forces(40_000), 0.007, cfg, 2);
        let est_bias = kf.bias();
        assert!(
            (est_bias - bias).max_abs() < 0.01,
            "bias {est_bias:?} vs {bias:?}"
        );
        let err = kf.angles().error_to(&truth);
        assert!(rad_to_deg(err.max_abs()) < 0.1, "{:?}", err.to_degrees());
    }

    #[test]
    fn static_level_estimates_pitch_roll_only() {
        // Pure gravity along z: yaw is unobservable; its variance must
        // stay near the prior while pitch/roll collapse.
        let truth = EulerAngles::from_degrees(1.0, -1.0, 2.0);
        let mut cfg = FilterConfig::paper_static();
        cfg.estimate_bias = false; // bias/angle inseparable when static level
        let forces = (0..10_000).map(|_| Vec3::new([0.0, 0.0, STANDARD_GRAVITY]));
        let kf = run_filter(truth, Vec2::zeros(), forces, 0.005, cfg, 3);
        let sigma = kf.angle_sigma();
        assert!(
            sigma[0] < 0.2 * cfg.initial_angle_sigma,
            "roll {}",
            sigma[0]
        );
        assert!(
            sigma[1] < 0.2 * cfg.initial_angle_sigma,
            "pitch {}",
            sigma[1]
        );
        assert!(
            sigma[2] > 0.9 * cfg.initial_angle_sigma,
            "yaw should stay uncertain: {}",
            sigma[2]
        );
        // Pitch/roll estimates are right even though yaw is not.
        assert!((kf.angles().roll - truth.roll).abs() < deg_to_rad(0.05));
        assert!((kf.angles().pitch - truth.pitch).abs() < deg_to_rad(0.05));
    }

    #[test]
    fn covariance_decreases_monotonically_in_information() {
        let mut kf = BoresightFilter::new(FilterConfig::paper_static());
        let f = Vec3::new([1.0, 2.0, STANDARD_GRAVITY]);
        let mut last_trace = kf.covariance().trace();
        for i in 0..100 {
            kf.predict(0.005);
            kf.update(Vec2::new([0.0, 0.0]), f, i as f64 * 0.005);
            let tr = kf.covariance().trace();
            assert!(tr <= last_trace + 1e-9, "trace grew at {i}");
            last_trace = tr;
        }
    }

    #[test]
    fn three_sigma_consistency() {
        // With a correctly tuned filter, ~1% of residuals exceed 3 sigma
        // (the paper's rule: "about once every 100 samples").
        let truth = EulerAngles::from_degrees(1.0, 1.0, 1.0);
        let mut kf = BoresightFilter::new(FilterConfig::paper_static());
        let mut rng = seeded_rng(4);
        let mut gauss = GaussianSampler::new();
        let sigma = 0.007;
        let c_sb = truth.dcm().transpose();
        let mut exceed = 0;
        let n = 20_000;
        let forces: Vec<Vec3> = rich_forces(n).collect();
        for (i, &f_b) in forces.iter().enumerate() {
            let f_s = c_sb.rotate(f_b);
            let z = Vec2::new([
                f_s[0] + gauss.sample_scaled(&mut rng, 0.0, sigma),
                f_s[1] + gauss.sample_scaled(&mut rng, 0.0, sigma),
            ]);
            kf.predict(0.005);
            let upd = kf.update(z, f_b, i as f64 * 0.005);
            if i > n / 2 && upd.exceeds_three_sigma() {
                exceed += 1;
            }
        }
        let rate = exceed as f64 / (n / 2) as f64;
        assert!(rate < 0.02, "3-sigma exceed rate {rate}");
    }

    #[test]
    fn gate_rejects_outliers() {
        let mut cfg = FilterConfig::paper_static();
        cfg.gate_sigmas = 4.0;
        let mut kf = BoresightFilter::new(cfg);
        let f = Vec3::new([0.0, 0.0, STANDARD_GRAVITY]);
        for i in 0..200 {
            kf.predict(0.005);
            kf.update(Vec2::new([0.0, 0.0]), f, i as f64 * 0.005);
        }
        let angles_before = kf.angles();
        let upd = kf.update(Vec2::new([5.0, -5.0]), f, 1.0); // wild outlier
        assert!(!upd.accepted);
        assert_eq!(kf.angles(), angles_before);
        assert_eq!(kf.rejected_count(), 1);
    }

    #[test]
    fn covariance_stays_healthy_long_run() {
        let truth = EulerAngles::from_degrees(4.0, 4.0, 4.0);
        let kf = run_filter(
            truth,
            Vec2::new([0.02, 0.02]),
            rich_forces(60_000), // 5 minutes at 200 Hz
            0.015,
            FilterConfig::paper_dynamic(),
            5,
        );
        assert!(kf.covariance_healthy());
        assert_eq!(kf.update_count(), 60_000);
    }

    #[test]
    fn retuning_measurement_noise_widens_sigma() {
        // Compare two identical filters that differ only in R: once the
        // covariance has settled, the higher-R filter reports wider
        // innovation sigma.
        let f = Vec3::new([0.0, 0.0, STANDARD_GRAVITY]);
        let run_with = |sigma: f64| {
            let mut cfg = FilterConfig::paper_static();
            cfg.measurement_sigma = sigma;
            let mut kf = BoresightFilter::new(cfg);
            let mut last = Vec2::zeros();
            for i in 0..200 {
                kf.predict(0.005);
                last = kf
                    .update(Vec2::zeros(), f, i as f64 * 0.005)
                    .innovation_sigma;
            }
            last
        };
        let tight = run_with(0.005);
        let loose = run_with(0.05);
        assert!(loose[0] > tight[0]);
        assert!(loose[1] > tight[1]);
    }

    #[test]
    fn disabled_bias_states_stay_zero() {
        let mut cfg = FilterConfig::paper_static();
        cfg.estimate_bias = false;
        let truth = EulerAngles::from_degrees(2.0, 1.0, -1.0);
        let kf = run_filter(truth, Vec2::zeros(), rich_forces(5000), 0.007, cfg, 6);
        assert_eq!(kf.bias(), Vec2::zeros());
    }
}
