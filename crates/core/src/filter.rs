//! The misalignment Kalman filter, generic over the arithmetic
//! substrate.
//!
//! An extended Kalman filter over the state `[phi, theta, psi, bx, by]`
//! (sensor misalignment Euler angles plus the two ACC bias states).
//! The misalignment is quasi-constant, so prediction is a random walk
//! with small process noise; each two-axis accelerometer sample is a
//! nonlinear measurement handled with the analytic Jacobian of
//! [`crate::model`]. The covariance update uses the Joseph form and is
//! re-symmetrized each step, keeping `P` positive definite over
//! hour-long runs — the filter also reports the innovation and its
//! 3-sigma bound, which is what the paper plots (Figure 8) and tunes
//! against.
//!
//! Since the generic-arithmetic refactor the whole algorithm runs over
//! any [`Arith`] number system: [`GenericBoresightFilter<A>`] performs
//! every scalar operation through the substrate, with the linear
//! algebra shared with the 3-state ablation filter via
//! [`crate::smallmat`]. The hot path is *structure-exploiting*: one
//! fused trig/Jacobian evaluation per linearization point, the gate
//! pass reused as IEKF iteration 0, an exactly symmetric `P` (so
//! `P J^T` is a transposition of `J P`), a closed-form 2x2 innovation
//! solve and a rank-2 packed Joseph update — every saved multiply is a
//! saved cycle in the Softfloat/fixed-point ledgers, and the
//! [`crate::arith::PhaseLedger`] attributes where the remaining ops
//! land (predict / gate / update). [`BoresightFilter`] is the
//! native-`f64` instantiation, pinned bit-for-bit against the
//! reference trace in `tests/arith_full_filter.rs` (deliberately
//! re-pinned for the kernel rewrite; the dense reference kernels stay
//! compiled and cross-checked by proptest).

use crate::arith::{Arith, F64Arith, OpCounts, PhaseLedger};
use crate::model::{self, Meas, State, StateCov, MEAS_DIM, STATE_DIM};
use crate::smallmat;
use mathx::{EulerAngles, Vec2, Vec3};

/// Filter configuration.
#[derive(Clone, Copy, Debug)]
pub struct FilterConfig {
    /// Initial 1-sigma uncertainty of each misalignment angle, rad.
    pub initial_angle_sigma: f64,
    /// Initial 1-sigma uncertainty of each ACC bias, m/s^2.
    pub initial_bias_sigma: f64,
    /// Angle random-walk process density, rad/sqrt(s).
    pub angle_process_density: f64,
    /// Bias random-walk process density, (m/s^2)/sqrt(s).
    pub bias_process_density: f64,
    /// Measurement noise 1-sigma per axis, m/s^2 (the paper's tuned
    /// 0.003-0.01 static / >= 0.015 moving value).
    pub measurement_sigma: f64,
    /// Estimate the bias states. When `false` they are pinned at zero.
    pub estimate_bias: bool,
    /// Innovation gate in sigmas (a sample whose normalized innovation
    /// exceeds this on either axis is rejected). `0` disables gating.
    pub gate_sigmas: f64,
    /// Physical trust region for the misalignment angles, rad. Mounting
    /// errors are mechanically small; bounding the state prevents the
    /// EKF from being captured by the degenerate large-angle solutions
    /// (e.g. pitch ~ -90 deg with a gravity-sized bias) that weakly
    /// excited starts can otherwise wander into. When an angle is
    /// clamped its variance is re-opened so the filter can recover.
    /// `0` disables the constraint.
    pub angle_limit: f64,
    /// Physical trust region for the ACC biases, m/s^2 (`0` disables).
    pub bias_limit: f64,
    /// Iterated-EKF relinearization passes per measurement update
    /// (1 = classic EKF). Iteration keeps the update consistent when
    /// the state is still degrees away from the truth, which is what
    /// stops weakly excited starts from banking linearization error
    /// as information.
    pub iekf_iterations: usize,
}

impl FilterConfig {
    /// Defaults matching the paper's static tuning.
    pub fn paper_static() -> Self {
        Self {
            initial_angle_sigma: mathx::deg_to_rad(5.0),
            initial_bias_sigma: 0.05,
            angle_process_density: 2e-6,
            bias_process_density: 2e-6,
            measurement_sigma: 0.007,
            estimate_bias: true,
            gate_sigmas: 6.0,
            angle_limit: mathx::deg_to_rad(15.0),
            bias_limit: 0.3,
            iekf_iterations: 3,
        }
    }

    /// Defaults matching the paper's dynamic tuning (raised R).
    pub fn paper_dynamic() -> Self {
        Self {
            measurement_sigma: 0.015,
            ..Self::paper_static()
        }
    }
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self::paper_static()
    }
}

/// Record of one measurement update (the residual trace of Figure 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KalmanUpdate {
    /// Update time, seconds.
    pub time_s: f64,
    /// Innovation (measurement minus prediction), m/s^2.
    pub innovation: Vec2,
    /// 1-sigma of the innovation from `S = H P H^T + R`, m/s^2.
    pub innovation_sigma: Vec2,
    /// `false` if the gate rejected this sample.
    pub accepted: bool,
}

impl KalmanUpdate {
    /// `true` if either axis exceeded its 3-sigma bound.
    pub fn exceeds_three_sigma(&self) -> bool {
        self.innovation[0].abs() > 3.0 * self.innovation_sigma[0]
            || self.innovation[1].abs() > 3.0 * self.innovation_sigma[1]
    }
}

/// The extended Kalman filter over an arbitrary [`Arith`] substrate.
///
/// # Examples
///
/// ```
/// use boresight::arith::QArith;
/// use boresight::filter::{FilterConfig, GenericBoresightFilter};
/// use mathx::{Vec2, Vec3, STANDARD_GRAVITY};
///
/// // The identical 5-state IEKF, in Q16.16 fixed point.
/// let mut kf: GenericBoresightFilter<QArith<16>> =
///     GenericBoresightFilter::new(FilterConfig::default());
/// kf.predict(0.01);
/// let f_b = Vec3::new([0.0, 0.0, STANDARD_GRAVITY]);
/// let update = kf.update(Vec2::new([0.001, -0.002]), f_b, 0.01);
/// assert!(update.accepted);
/// ```
#[derive(Clone, Debug)]
pub struct GenericBoresightFilter<A: Arith> {
    config: FilterConfig,
    arith: A,
    x: [A::T; STATE_DIM],
    /// Kept **exactly symmetric** (bitwise): the update writes only
    /// unique entries and mirrors them, prediction and the trust
    /// region touch the diagonal only. The structure-exploiting update
    /// kernels rely on this invariant (e.g. `P J^T` is read off `J P`
    /// by transposition instead of a second 50-FMA product).
    p: [[A::T; STATE_DIM]; STATE_DIM],
    updates: u64,
    rejected: u64,
    phases: PhaseLedger,
}

/// `(counts, cycles)` snapshot for phase attribution.
fn ledger_snapshot<A: Arith>(a: &A) -> (OpCounts, u64) {
    (a.counts(), a.cycles())
}

/// The native-`f64` filter — the reference instantiation every
/// pre-refactor call site keeps using unchanged.
///
/// # Examples
///
/// ```
/// use boresight::filter::{BoresightFilter, FilterConfig};
/// use mathx::{Vec2, Vec3, STANDARD_GRAVITY};
///
/// let mut kf = BoresightFilter::new(FilterConfig::default());
/// kf.predict(0.01);
/// // A level platform: ACC sees ~zero if aligned.
/// let f_b = Vec3::new([0.0, 0.0, STANDARD_GRAVITY]);
/// let update = kf.update(Vec2::new([0.001, -0.002]), f_b, 0.01);
/// assert!(update.accepted);
/// ```
pub type BoresightFilter = GenericBoresightFilter<F64Arith>;

impl<A: Arith> GenericBoresightFilter<A> {
    /// Creates a filter from its configuration over the substrate's
    /// default context.
    pub fn new(config: FilterConfig) -> Self
    where
        A: Default,
    {
        Self::with_arith(A::default(), config)
    }

    /// Creates a filter over an explicit arithmetic context (e.g. a
    /// [`crate::arith::SoftArith`] whose FPU ledger the caller wants to
    /// keep reading).
    pub fn with_arith(mut arith: A, config: FilterConfig) -> Self {
        let zero = arith.num(0.0);
        let a2 = config.initial_angle_sigma * config.initial_angle_sigma;
        let b2 = if config.estimate_bias {
            config.initial_bias_sigma * config.initial_bias_sigma
        } else {
            0.0
        };
        let mut p = [[zero; STATE_DIM]; STATE_DIM];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = if i < 3 { arith.num(a2) } else { arith.num(b2) };
        }
        Self {
            config,
            arith,
            x: [zero; STATE_DIM],
            p,
            updates: 0,
            rejected: 0,
            phases: PhaseLedger::default(),
        }
    }

    /// The arithmetic context (inspect for op counts / cycle ledgers).
    pub fn arith(&self) -> &A {
        &self.arith
    }

    /// The arithmetic context, mutably (the generic estimator runs its
    /// sensor-prep math through the same context so one ledger covers
    /// the whole algorithm).
    pub fn arith_mut(&mut self) -> &mut A {
        &mut self.arith
    }

    /// The configuration (measurement sigma may have been retuned).
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// Current measurement noise 1-sigma.
    pub fn measurement_sigma(&self) -> f64 {
        self.config.measurement_sigma
    }

    /// Retunes the measurement noise (the adaptive monitor calls this).
    pub fn set_measurement_sigma(&mut self, sigma: f64) {
        self.config.measurement_sigma = sigma.max(1e-6);
    }

    /// Estimated misalignment angles.
    pub fn angles(&self) -> EulerAngles {
        EulerAngles::new(
            self.arith.to_f64(self.x[0]),
            self.arith.to_f64(self.x[1]),
            self.arith.to_f64(self.x[2]),
        )
    }

    /// Estimated ACC biases, m/s^2.
    pub fn bias(&self) -> Vec2 {
        Vec2::new([self.arith.to_f64(self.x[3]), self.arith.to_f64(self.x[4])])
    }

    /// Full state vector, converted to `f64`.
    pub fn state(&self) -> State {
        let mut out = State::zeros();
        for i in 0..STATE_DIM {
            out[i] = self.arith.to_f64(self.x[i]);
        }
        out
    }

    /// State covariance, converted to `f64`.
    pub fn covariance(&self) -> StateCov {
        let mut out = StateCov::zeros();
        for r in 0..STATE_DIM {
            for c in 0..STATE_DIM {
                out[(r, c)] = self.arith.to_f64(self.p[r][c]);
            }
        }
        out
    }

    /// 1-sigma of each misalignment angle, rad. Runs over a cloned
    /// arithmetic context (a read-out, not part of the algorithm's op
    /// ledger).
    pub fn angle_sigma(&self) -> Vec3
    where
        A: Clone,
    {
        let mut a = self.arith.clone();
        let zero = a.num(0.0);
        let mut out = [0.0; 3];
        for (i, o) in out.iter_mut().enumerate() {
            let m = a.max(self.p[i][i], zero);
            let s = a.sqrt(m);
            *o = a.to_f64(s);
        }
        Vec3::new(out)
    }

    /// Accepted updates so far.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Gate-rejected updates so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Time propagation over `dt` seconds: the state transition is the
    /// identity (a random walk), so the full `F P F^T + Q` collapses
    /// to the symmetric diagonal bump `P += Q dt` — no dense products,
    /// no work off the diagonal, symmetry preserved by construction.
    pub fn predict(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let before = ledger_snapshot(&self.arith);
        let qa = self.config.angle_process_density.powi(2) * dt;
        let qb = if self.config.estimate_bias {
            self.config.bias_process_density.powi(2) * dt
        } else {
            0.0
        };
        let a = &mut self.arith;
        let qa_t = a.num(qa);
        let qb_t = a.num(qb);
        for i in 0..3 {
            self.p[i][i] = a.add(self.p[i][i], qa_t);
        }
        for i in 3..STATE_DIM {
            self.p[i][i] = a.add(self.p[i][i], qb_t);
        }
        let after = ledger_snapshot(&self.arith);
        self.phases.predict.charge(before, after);
    }

    /// Where the substrate's ops and cycles were spent, by algorithm
    /// phase (predict / gate / update). Arithmetic the filter did not
    /// run — the estimator's sensor prep, diagnostics over cloned
    /// contexts — is the difference between [`Arith::counts`] and
    /// [`PhaseLedger::tracked_ops`].
    pub fn phase_ledger(&self) -> &PhaseLedger {
        &self.phases
    }

    /// Measurement update with the ACC sample `z` (m/s^2, x'/y') given
    /// the concurrent IMU specific force `f_b`. Returns the update
    /// record for residual monitoring.
    ///
    /// Runs the iterated EKF: the measurement is relinearized
    /// [`FilterConfig::iekf_iterations`] times around the improving
    /// estimate (Gauss-Newton on the MAP objective), then the
    /// covariance is updated in Joseph form at the final
    /// linearization point.
    pub fn update(&mut self, z: Meas, f_b: Vec3, time_s: f64) -> KalmanUpdate {
        let fb = [
            self.arith.num(f_b[0]),
            self.arith.num(f_b[1]),
            self.arith.num(f_b[2]),
        ];
        self.update_t(z, fb, time_s)
    }

    /// [`Self::update`] with the specific force already in the
    /// substrate (the generic estimator's lever-arm and slope math
    /// produces it there).
    ///
    /// This is the structure-exploiting hot path: one fused
    /// trig/Jacobian evaluation per linearization point
    /// ([`model::h_and_jacobian_generic`]), the gate-pass model reused
    /// verbatim for IEKF iteration 0 (its linearization point *is* the
    /// prior), `S` accumulated in packed symmetric form, the 2x2
    /// innovation solved closed-form ([`smallmat::inverse2_sym`]),
    /// `P J^T` read off `J P` by transposition (valid because `P` is
    /// kept exactly symmetric) and the Joseph update specialized to
    /// the rank-2 measurement ([`smallmat::joseph_update_sym`]). The
    /// dense reference kernels remain in [`crate::smallmat`] and the
    /// optimized path is cross-checked against them by proptest.
    pub fn update_t(&mut self, z: Meas, f_b: [A::T; 3], time_s: f64) -> KalmanUpdate {
        let gate_before = ledger_snapshot(&self.arith);
        let r = self.config.measurement_sigma.powi(2);
        let estimate_bias = self.config.estimate_bias;
        let a = &mut self.arith;
        let r_t = a.num(r);
        let zero = a.num(0.0);
        let zt = [a.num(z[0]), a.num(z[1])];
        let x_pred = self.x;

        // First-pass innovation and its sigma: this is what the
        // residual monitor sees (z minus the prior prediction).
        let (h0, jac0) = model_at(a, estimate_bias, &x_pred, &f_b);
        let innov_t = [a.sub(zt[0], h0[0]), a.sub(zt[1], h0[1])];
        let jp0 = smallmat::mul(a, &jac0, &self.p);
        let s0 = smallmat::innovation_cov(a, &jp0, &jac0, r_t);
        let m0 = a.max(s0[0][0], zero);
        let sig0 = a.sqrt(m0);
        let m1 = a.max(s0[1][1], zero);
        let sig1 = a.sqrt(m1);
        let innovation = Vec2::new([a.to_f64(innov_t[0]), a.to_f64(innov_t[1])]);
        let sigma = Vec2::new([a.to_f64(sig0), a.to_f64(sig1)]);

        // Gate on the per-axis normalized innovation.
        if self.config.gate_sigmas > 0.0 {
            let g = a.num(self.config.gate_sigmas);
            let exceed0 = {
                let ai = a.abs(innov_t[0]);
                let gs = a.mul(g, sig0);
                a.lt(gs, ai)
            };
            let exceeded = exceed0 || {
                let ai = a.abs(innov_t[1]);
                let gs = a.mul(g, sig1);
                a.lt(gs, ai)
            };
            if exceeded {
                self.rejected += 1;
                self.phases
                    .gate
                    .charge(gate_before, ledger_snapshot(&self.arith));
                return KalmanUpdate {
                    time_s,
                    innovation,
                    innovation_sigma: sigma,
                    accepted: false,
                };
            }
        }
        let update_before = ledger_snapshot(&self.arith);
        self.phases.gate.charge(gate_before, update_before);

        let a = &mut self.arith;
        let iterations = self.config.iekf_iterations.max(1);
        let eps = a.num(1e-12);
        let mut x_i = x_pred;
        // Iteration 0 relinearizes at x_i = x_pred — exactly where the
        // gate pass just evaluated the model — so its h, J, J P and S
        // are the gate's, reused, not recomputed.
        let mut h_i = h0;
        let mut jac = jac0;
        let mut jp = jp0;
        let mut s = s0;
        let mut gain: Option<[[A::T; MEAS_DIM]; STATE_DIM]> = None;
        for iter in 0..iterations {
            if iter > 0 {
                let (h, j) = model_at(a, estimate_bias, &x_i, &f_b);
                h_i = h;
                jac = j;
                jp = smallmat::mul(a, &jac, &self.p);
                s = smallmat::innovation_cov(a, &jp, &jac, r_t);
            }
            let s_inv = match smallmat::inverse2_sym(a, &s) {
                Some(inv) => inv,
                None => {
                    self.rejected += 1;
                    self.phases
                        .update
                        .charge(update_before, ledger_snapshot(&self.arith));
                    return KalmanUpdate {
                        time_s,
                        innovation,
                        innovation_sigma: sigma,
                        accepted: false,
                    };
                }
            };
            // P J^T == (J P)^T entry for entry because P is exactly
            // symmetric — pure data movement instead of 50 FMAs.
            let pjt = smallmat::transpose(a, &jp);
            let k = smallmat::mul(a, &pjt, &s_inv);
            // IEKF residual: z - h(x_i) - H (x_pred - x_i).
            let zh = [a.sub(zt[0], h_i[0]), a.sub(zt[1], h_i[1])];
            let dx = smallmat::vec_sub(a, &x_pred, &x_i);
            let jdx = smallmat::mat_vec(a, &jac, &dx);
            let resid = [a.sub(zh[0], jdx[0]), a.sub(zh[1], jdx[1])];
            let kr = smallmat::mat_vec(a, &k, &resid);
            let x_next = smallmat::vec_add(a, &x_pred, &kr);
            let dstep = smallmat::vec_sub(a, &x_next, &x_i);
            let step = smallmat::vec_max_abs(a, &dstep);
            x_i = x_next;
            gain = Some(k);
            if a.lt(step, eps) {
                break;
            }
        }
        let k = gain.expect("at least one iteration ran");
        self.x = x_i;
        if !estimate_bias {
            self.x[3] = zero;
            self.x[4] = zero;
        }
        // Rank-2 Joseph-form covariance update at the final
        // linearization, upper triangle mirrored (keeps P exactly
        // symmetric for the next update's transposition shortcut).
        self.p = smallmat::joseph_update_sym(a, &self.p, &k, &jac, r_t);
        self.apply_trust_region();
        self.updates += 1;
        self.phases
            .update
            .charge(update_before, ledger_snapshot(&self.arith));
        KalmanUpdate {
            time_s,
            innovation,
            innovation_sigma: sigma,
            accepted: true,
        }
    }

    /// Clamps the state to its physical trust region, re-opening the
    /// variance of any clamped component (see [`FilterConfig`]).
    fn apply_trust_region(&mut self) {
        let a = &mut self.arith;
        if self.config.angle_limit > 0.0 {
            let lim = a.num(self.config.angle_limit);
            let floor = a.num((self.config.initial_angle_sigma * 0.5).powi(2));
            for i in 0..3 {
                let ax = a.abs(self.x[i]);
                if a.lt(lim, ax) {
                    self.x[i] = clamp_sym(a, self.x[i], lim);
                    if a.lt(self.p[i][i], floor) {
                        self.p[i][i] = floor;
                    }
                }
            }
        }
        if self.config.bias_limit > 0.0 && self.config.estimate_bias {
            let lim = a.num(self.config.bias_limit);
            let floor = a.num((self.config.initial_bias_sigma * 0.5).powi(2));
            for i in 3..STATE_DIM {
                let ax = a.abs(self.x[i]);
                if a.lt(lim, ax) {
                    self.x[i] = clamp_sym(a, self.x[i], lim);
                    if a.lt(self.p[i][i], floor) {
                        self.p[i][i] = floor;
                    }
                }
            }
        }
    }

    /// Checks that the covariance is still symmetric positive definite
    /// (diagnostics; `true` means healthy). Runs over a cloned
    /// arithmetic context so the diagnostic does not pollute the
    /// algorithm's op ledger.
    pub fn covariance_healthy(&self) -> bool
    where
        A: Clone,
    {
        let mut a = self.arith.clone();
        let asym = smallmat::asymmetry(&mut a, &self.p);
        let tol = a.num(1e-9);
        // "Not above tolerance" rather than "below": on a fixed-point
        // substrate the tolerance itself quantizes to zero, and the
        // exactly-mirrored covariance (asymmetry exactly zero) must
        // still count as symmetric.
        !a.lt(tol, asym) && smallmat::cholesky_ok(&mut a, &self.p)
    }

    /// Exports the filter's algorithmic state through `f64` — the
    /// substrate-agnostic half of the adaptive supervisor's state
    /// transfer ([`crate::adaptive`]). Reads each unique covariance
    /// entry once (conversions are uncounted, so the op and cycle
    /// ledgers are untouched).
    pub fn export_snapshot(&self) -> crate::adaptive::FilterSnapshot {
        let mut x = [0.0; STATE_DIM];
        for (out, value) in x.iter_mut().zip(self.x.iter()) {
            *out = self.arith.to_f64(*value);
        }
        let mut p_upper = [0.0; crate::adaptive::snapshot::PACKED_COV];
        let mut k = 0;
        for i in 0..STATE_DIM {
            for j in i..STATE_DIM {
                p_upper[k] = self.arith.to_f64(self.p[i][j]);
                k += 1;
            }
        }
        crate::adaptive::FilterSnapshot {
            x,
            p_upper,
            updates: self.updates,
            rejected: self.rejected,
            measurement_sigma: self.config.measurement_sigma,
            phases: self.phases,
        }
    }

    /// Imports a snapshot into this filter's substrate, replacing its
    /// state. Each unique covariance entry converts once and is
    /// mirrored, preserving the exact-bitwise-symmetry invariant on
    /// `P`; diagonal entries are floored at the substrate's
    /// [`crate::adaptive::positive_quantum`] so a healthy covariance
    /// stays positive-definite through quantization. The accepted /
    /// rejected counters, the retuned measurement sigma and the
    /// per-phase attribution carry over; the substrate's own op
    /// ledger is left untouched.
    pub fn import_snapshot(&mut self, snapshot: &crate::adaptive::FilterSnapshot) {
        let quantum = crate::adaptive::positive_quantum(&mut self.arith);
        for (slot, value) in self.x.iter_mut().zip(snapshot.x.iter()) {
            *slot = self.arith.num(*value);
        }
        let mut k = 0;
        for i in 0..STATE_DIM {
            for j in i..STATE_DIM {
                let mut value = snapshot.p_upper[k];
                if i == j {
                    value = value.max(quantum);
                }
                let converted = self.arith.num(value);
                self.p[i][j] = converted;
                self.p[j][i] = converted;
                k += 1;
            }
        }
        self.updates = snapshot.updates;
        self.rejected = snapshot.rejected;
        self.config.measurement_sigma = snapshot.measurement_sigma.max(1e-6);
        self.phases = snapshot.phases;
    }
}

/// `x` clamped to `[-lim, lim]` (mirrors `f64::clamp`'s branch order).
fn clamp_sym<A: Arith>(a: &mut A, x: A::T, lim: A::T) -> A::T {
    let nlim = a.neg(lim);
    if a.lt(x, nlim) {
        nlim
    } else if a.lt(lim, x) {
        lim
    } else {
        x
    }
}

/// Fused model + Jacobian evaluation with the bias columns masked when
/// bias estimation is disabled. Shared with the lockstep lane filter
/// ([`crate::lanes::LaneIekf`]), whose per-lane values must mirror
/// this exact sequence.
#[allow(clippy::type_complexity)]
pub(crate) fn model_at<A: Arith>(
    a: &mut A,
    estimate_bias: bool,
    x: &[A::T; STATE_DIM],
    f_b: &[A::T; 3],
) -> ([A::T; MEAS_DIM], [[A::T; STATE_DIM]; MEAS_DIM]) {
    let (h, mut jac) = model::h_and_jacobian_generic(a, x, f_b);
    if !estimate_bias {
        let zero = a.num(0.0);
        jac[0][3] = zero;
        jac[1][4] = zero;
    }
    (h, jac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{QArith, SoftArith};
    use mathx::rng::seeded_rng;
    use mathx::{deg_to_rad, rad_to_deg, GaussianSampler, STANDARD_GRAVITY};

    /// Simulates `n` measurements of a true misalignment under the
    /// given specific-force schedule and returns the filter.
    fn run_filter(
        truth: EulerAngles,
        bias: Vec2,
        forces: impl Iterator<Item = Vec3>,
        sigma: f64,
        cfg: FilterConfig,
        seed: u64,
    ) -> BoresightFilter {
        run_filter_over(F64Arith::default(), truth, bias, forces, sigma, cfg, seed)
    }

    /// The same simulation over any substrate.
    fn run_filter_over<A: Arith>(
        arith: A,
        truth: EulerAngles,
        bias: Vec2,
        forces: impl Iterator<Item = Vec3>,
        sigma: f64,
        cfg: FilterConfig,
        seed: u64,
    ) -> GenericBoresightFilter<A> {
        let mut kf = GenericBoresightFilter::with_arith(arith, cfg);
        let mut rng = seeded_rng(seed);
        let mut gauss = GaussianSampler::new();
        let c_sb = truth.dcm().transpose();
        let mut t = 0.0;
        for f_b in forces {
            let f_s = c_sb.rotate(f_b);
            let z = Vec2::new([
                f_s[0] + bias[0] + gauss.sample_scaled(&mut rng, 0.0, sigma),
                f_s[1] + bias[1] + gauss.sample_scaled(&mut rng, 0.0, sigma),
            ]);
            kf.predict(0.005);
            kf.update(z, f_b, t);
            t += 0.005;
        }
        kf
    }

    /// A force schedule that excites all axes: gravity with varying
    /// tilts plus horizontal accelerations.
    fn rich_forces(n: usize) -> impl Iterator<Item = Vec3> {
        (0..n).map(|i| {
            let t = i as f64 * 0.005;
            let g = STANDARD_GRAVITY;
            let ax = 2.0 * (0.5 * t).sin();
            let ay = 1.5 * (0.33 * t).cos();
            let tilt = 0.2 * (0.1 * t).sin();
            Vec3::new([ax + g * tilt, ay, g * (1.0 - tilt * tilt / 2.0)])
        })
    }

    #[test]
    fn converges_to_truth_with_excitation() {
        let truth = EulerAngles::from_degrees(2.0, -1.5, 3.0);
        let cfg = FilterConfig::paper_static();
        let kf = run_filter(truth, Vec2::zeros(), rich_forces(20_000), 0.007, cfg, 1);
        let est = kf.angles();
        let err = est.error_to(&truth);
        assert!(
            rad_to_deg(err.max_abs()) < 0.05,
            "error {:?} deg",
            err.to_degrees()
        );
        assert!(kf.covariance_healthy());
    }

    #[test]
    fn softfloat_full_filter_matches_native_bitwise() {
        // The identical 5-state IEKF over emulated IEEE arithmetic must
        // agree with the native path bit for bit — the paper's Sabre
        // configuration loses no accuracy, only cycles.
        let truth = EulerAngles::from_degrees(2.0, -1.5, 3.0);
        let cfg = FilterConfig::paper_static();
        let native = run_filter(truth, Vec2::zeros(), rich_forces(2_000), 0.007, cfg, 1);
        let soft = run_filter_over(
            SoftArith::default(),
            truth,
            Vec2::zeros(),
            rich_forces(2_000),
            0.007,
            cfg,
            1,
        );
        let a = native.angles();
        let b = soft.angles();
        assert_eq!(a.roll.to_bits(), b.roll.to_bits());
        assert_eq!(a.pitch.to_bits(), b.pitch.to_bits());
        assert_eq!(a.yaw.to_bits(), b.yaw.to_bits());
        assert!(soft.arith().cycles() > 0, "cycles must accumulate");
        assert!(soft.arith().counts().trig > 0, "trig must be counted");
    }

    #[test]
    fn fixed_point_full_filter_stays_bounded_and_counts_saturations() {
        // Q16.16 over the full IEKF is the paper's "obvious
        // enhancement" taken literally: the covariance floor sits at
        // the quantization step, so accuracy degrades — but the state
        // must stay inside the trust region and every overflow must be
        // counted, never wrapped.
        let truth = EulerAngles::from_degrees(2.0, -1.5, 3.0);
        let cfg = FilterConfig::paper_static();
        let kf = run_filter_over(
            QArith::<16>::default(),
            truth,
            Vec2::zeros(),
            rich_forces(5_000),
            0.007,
            cfg,
            1,
        );
        let angles = kf.angles();
        assert!(
            angles.max_abs() <= cfg.angle_limit + 1e-3,
            "trust region must bound the fixed-point state: {:?}",
            angles.to_degrees()
        );
        assert!(kf.arith().counts().total() > 0);
        assert!(kf.arith().cycles() > 0);
    }

    #[test]
    fn estimates_bias_jointly() {
        let truth = EulerAngles::from_degrees(1.0, 2.0, -2.0);
        let bias = Vec2::new([0.03, -0.02]);
        let cfg = FilterConfig::paper_static();
        let kf = run_filter(truth, bias, rich_forces(40_000), 0.007, cfg, 2);
        let est_bias = kf.bias();
        assert!(
            (est_bias - bias).max_abs() < 0.01,
            "bias {est_bias:?} vs {bias:?}"
        );
        let err = kf.angles().error_to(&truth);
        assert!(rad_to_deg(err.max_abs()) < 0.1, "{:?}", err.to_degrees());
    }

    #[test]
    fn static_level_estimates_pitch_roll_only() {
        // Pure gravity along z: yaw is unobservable; its variance must
        // stay near the prior while pitch/roll collapse.
        let truth = EulerAngles::from_degrees(1.0, -1.0, 2.0);
        let mut cfg = FilterConfig::paper_static();
        cfg.estimate_bias = false; // bias/angle inseparable when static level
        let forces = (0..10_000).map(|_| Vec3::new([0.0, 0.0, STANDARD_GRAVITY]));
        let kf = run_filter(truth, Vec2::zeros(), forces, 0.005, cfg, 3);
        let sigma = kf.angle_sigma();
        assert!(
            sigma[0] < 0.2 * cfg.initial_angle_sigma,
            "roll {}",
            sigma[0]
        );
        assert!(
            sigma[1] < 0.2 * cfg.initial_angle_sigma,
            "pitch {}",
            sigma[1]
        );
        assert!(
            sigma[2] > 0.9 * cfg.initial_angle_sigma,
            "yaw should stay uncertain: {}",
            sigma[2]
        );
        // Pitch/roll estimates are right even though yaw is not.
        assert!((kf.angles().roll - truth.roll).abs() < deg_to_rad(0.05));
        assert!((kf.angles().pitch - truth.pitch).abs() < deg_to_rad(0.05));
    }

    #[test]
    fn covariance_decreases_monotonically_in_information() {
        let mut kf = BoresightFilter::new(FilterConfig::paper_static());
        let f = Vec3::new([1.0, 2.0, STANDARD_GRAVITY]);
        let mut last_trace = kf.covariance().trace();
        for i in 0..100 {
            kf.predict(0.005);
            kf.update(Vec2::new([0.0, 0.0]), f, i as f64 * 0.005);
            let tr = kf.covariance().trace();
            assert!(tr <= last_trace + 1e-9, "trace grew at {i}");
            last_trace = tr;
        }
    }

    #[test]
    fn three_sigma_consistency() {
        // With a correctly tuned filter, ~1% of residuals exceed 3 sigma
        // (the paper's rule: "about once every 100 samples").
        let truth = EulerAngles::from_degrees(1.0, 1.0, 1.0);
        let mut kf = BoresightFilter::new(FilterConfig::paper_static());
        let mut rng = seeded_rng(4);
        let mut gauss = GaussianSampler::new();
        let sigma = 0.007;
        let c_sb = truth.dcm().transpose();
        let mut exceed = 0;
        let n = 20_000;
        let forces: Vec<Vec3> = rich_forces(n).collect();
        for (i, &f_b) in forces.iter().enumerate() {
            let f_s = c_sb.rotate(f_b);
            let z = Vec2::new([
                f_s[0] + gauss.sample_scaled(&mut rng, 0.0, sigma),
                f_s[1] + gauss.sample_scaled(&mut rng, 0.0, sigma),
            ]);
            kf.predict(0.005);
            let upd = kf.update(z, f_b, i as f64 * 0.005);
            if i > n / 2 && upd.exceeds_three_sigma() {
                exceed += 1;
            }
        }
        let rate = exceed as f64 / (n / 2) as f64;
        assert!(rate < 0.02, "3-sigma exceed rate {rate}");
    }

    #[test]
    fn gate_rejects_outliers() {
        let mut cfg = FilterConfig::paper_static();
        cfg.gate_sigmas = 4.0;
        let mut kf = BoresightFilter::new(cfg);
        let f = Vec3::new([0.0, 0.0, STANDARD_GRAVITY]);
        for i in 0..200 {
            kf.predict(0.005);
            kf.update(Vec2::new([0.0, 0.0]), f, i as f64 * 0.005);
        }
        let angles_before = kf.angles();
        let upd = kf.update(Vec2::new([5.0, -5.0]), f, 1.0); // wild outlier
        assert!(!upd.accepted);
        assert_eq!(kf.angles(), angles_before);
        assert_eq!(kf.rejected_count(), 1);
    }

    #[test]
    fn covariance_stays_healthy_long_run() {
        let truth = EulerAngles::from_degrees(4.0, 4.0, 4.0);
        let kf = run_filter(
            truth,
            Vec2::new([0.02, 0.02]),
            rich_forces(60_000), // 5 minutes at 200 Hz
            0.015,
            FilterConfig::paper_dynamic(),
            5,
        );
        assert!(kf.covariance_healthy());
        assert_eq!(kf.update_count(), 60_000);
    }

    #[test]
    fn retuning_measurement_noise_widens_sigma() {
        // Compare two identical filters that differ only in R: once the
        // covariance has settled, the higher-R filter reports wider
        // innovation sigma.
        let f = Vec3::new([0.0, 0.0, STANDARD_GRAVITY]);
        let run_with = |sigma: f64| {
            let mut cfg = FilterConfig::paper_static();
            cfg.measurement_sigma = sigma;
            let mut kf = BoresightFilter::new(cfg);
            let mut last = Vec2::zeros();
            for i in 0..200 {
                kf.predict(0.005);
                last = kf
                    .update(Vec2::zeros(), f, i as f64 * 0.005)
                    .innovation_sigma;
            }
            last
        };
        let tight = run_with(0.005);
        let loose = run_with(0.05);
        assert!(loose[0] > tight[0]);
        assert!(loose[1] > tight[1]);
    }

    #[test]
    fn covariance_stays_exactly_symmetric_bitwise() {
        // The structure-exploiting update reads P J^T off J P by
        // transposition, which is only bit-safe if P is *exactly*
        // symmetric — not just numerically close.
        let truth = EulerAngles::from_degrees(2.0, -1.5, 3.0);
        let kf = run_filter(
            truth,
            Vec2::new([0.02, -0.01]),
            rich_forces(3_000),
            0.007,
            FilterConfig::paper_static(),
            8,
        );
        let p = kf.covariance();
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(
                    p[(r, c)].to_bits(),
                    p[(c, r)].to_bits(),
                    "P[{r}][{c}] not bitwise symmetric"
                );
            }
        }
    }

    #[test]
    fn phase_ledger_attributes_the_whole_filter() {
        let truth = EulerAngles::from_degrees(2.0, -1.5, 3.0);
        let kf = run_filter_over(
            SoftArith::default(),
            truth,
            Vec2::zeros(),
            rich_forces(500),
            0.007,
            FilterConfig::paper_static(),
            9,
        );
        let phases = kf.phase_ledger();
        assert!(phases.predict.ops.total() > 0, "predict charged");
        assert!(phases.gate.ops.total() > 0, "gate charged");
        assert!(phases.update.ops.total() > 0, "update charged");
        assert!(phases.update.cycles > phases.gate.cycles);
        // Every filter op lands in exactly one phase: the ledger total
        // is the sum of the three (this test drives the filter
        // directly, so there is no front-end remainder).
        let counts = kf.arith().counts();
        assert_eq!(counts.total(), phases.tracked_ops());
        assert_eq!(kf.arith().cycles(), phases.tracked_cycles());
        // Gate-rejected samples charge the gate but not the update.
        let mut gated = BoresightFilter::new(FilterConfig::paper_static());
        let f = Vec3::new([0.0, 0.0, STANDARD_GRAVITY]);
        for i in 0..50 {
            gated.predict(0.005);
            gated.update(Vec2::zeros(), f, i as f64 * 0.005);
        }
        let update_before = gated.phase_ledger().update;
        let gate_before = gated.phase_ledger().gate.ops.total();
        let upd = gated.update(Vec2::new([9.0, -9.0]), f, 1.0);
        assert!(!upd.accepted);
        assert_eq!(gated.phase_ledger().update, update_before);
        assert!(gated.phase_ledger().gate.ops.total() > gate_before);
    }

    #[test]
    fn disabled_bias_states_stay_zero() {
        let mut cfg = FilterConfig::paper_static();
        cfg.estimate_bias = false;
        let truth = EulerAngles::from_degrees(2.0, 1.0, -1.0);
        let kf = run_filter(truth, Vec2::zeros(), rich_forces(5000), 0.007, cfg, 6);
        assert_eq!(kf.bias(), Vec2::zeros());
    }
}
