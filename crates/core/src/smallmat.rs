//! Shared small-matrix kernels over an [`Arith`] substrate.
//!
//! Every dense loop the estimation stack needs — products, transposed
//! products, Gauss-Jordan inversion, Cholesky health checks,
//! symmetrization — lives here once, generic over the number system,
//! and is used by both the 3-state ablation filter
//! ([`crate::arith::Kf3`]) and the production 5-state IEKF
//! ([`crate::filter::GenericBoresightFilter`]).
//!
//! The accumulation order of every kernel deliberately mirrors the
//! `mathx` dense operators (accumulator starts at zero, innermost index
//! ascending, scalar factors applied in the same operand order), so
//! that instantiating these kernels with [`crate::arith::F64Arith`]
//! reproduces the pre-generic native-`f64` filter **bit for bit** —
//! the property the parity tests in `tests/arith_full_filter.rs` pin.

// Index-based loops are deliberate throughout: they mirror the matrix
// equations (and the `mathx` operators they must reproduce bitwise).
#![allow(clippy::needless_range_loop)]

use crate::arith::Arith;

/// An `R x C` zero matrix in the substrate.
pub fn zeros<A: Arith, const R: usize, const C: usize>(a: &mut A) -> [[A::T; C]; R] {
    [[a.num(0.0); C]; R]
}

/// The `N x N` identity in the substrate.
pub fn identity<A: Arith, const N: usize>(a: &mut A) -> [[A::T; N]; N] {
    let zero = a.num(0.0);
    let one = a.num(1.0);
    let mut out = [[zero; N]; N];
    for (i, row) in out.iter_mut().enumerate() {
        row[i] = one;
    }
    out
}

/// Transpose (pure data movement, no arithmetic charged).
pub fn transpose<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    m: &[[A::T; C]; R],
) -> [[A::T; R]; C] {
    let mut out = [[a.num(0.0); R]; C];
    for r in 0..R {
        for c in 0..C {
            out[c][r] = m[r][c];
        }
    }
    out
}

/// Matrix product `X * Y`.
pub fn mul<A: Arith, const R: usize, const C: usize, const K: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    y: &[[A::T; K]; C],
) -> [[A::T; K]; R] {
    let zero = a.num(0.0);
    let mut out = [[zero; K]; R];
    for r in 0..R {
        for k in 0..K {
            let mut acc = zero;
            for c in 0..C {
                acc = a.fma(x[r][c], y[c][k], acc);
            }
            out[r][k] = acc;
        }
    }
    out
}

/// Matrix product against a transpose, `X * Y^T`, without moving data.
pub fn mul_nt<A: Arith, const R: usize, const C: usize, const K: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    y: &[[A::T; C]; K],
) -> [[A::T; K]; R] {
    let zero = a.num(0.0);
    let mut out = [[zero; K]; R];
    for r in 0..R {
        for k in 0..K {
            let mut acc = zero;
            for c in 0..C {
                acc = a.fma(x[r][c], y[k][c], acc);
            }
            out[r][k] = acc;
        }
    }
    out
}

/// Matrix-vector product `M * v`.
pub fn mat_vec<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    m: &[[A::T; C]; R],
    v: &[A::T; C],
) -> [A::T; R] {
    let zero = a.num(0.0);
    let mut out = [zero; R];
    for r in 0..R {
        let mut acc = zero;
        for c in 0..C {
            acc = a.fma(m[r][c], v[c], acc);
        }
        out[r] = acc;
    }
    out
}

/// Transposed matrix-vector product `M^T * v`.
pub fn mat_tvec<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    m: &[[A::T; C]; R],
    v: &[A::T; R],
) -> [A::T; C] {
    let zero = a.num(0.0);
    let mut out = [zero; C];
    for c in 0..C {
        let mut acc = zero;
        for r in 0..R {
            acc = a.fma(m[r][c], v[r], acc);
        }
        out[c] = acc;
    }
    out
}

/// Element-wise sum `X + Y`.
pub fn add<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    y: &[[A::T; C]; R],
) -> [[A::T; C]; R] {
    let mut out = *x;
    for r in 0..R {
        for c in 0..C {
            out[r][c] = a.add(x[r][c], y[r][c]);
        }
    }
    out
}

/// Element-wise difference `X - Y`.
pub fn sub<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    y: &[[A::T; C]; R],
) -> [[A::T; C]; R] {
    let mut out = *x;
    for r in 0..R {
        for c in 0..C {
            out[r][c] = a.sub(x[r][c], y[r][c]);
        }
    }
    out
}

/// Element-wise scale `X * s` (element first, like `mathx`).
pub fn scale<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    s: A::T,
) -> [[A::T; C]; R] {
    let mut out = *x;
    for row in &mut out {
        for v in row.iter_mut() {
            *v = a.mul(*v, s);
        }
    }
    out
}

/// `identity * s` — including the explicit zero-element multiplies the
/// dense `mathx` formulation performs, so op ledgers stay comparable.
pub fn scaled_identity<A: Arith, const N: usize>(a: &mut A, s: A::T) -> [[A::T; N]; N] {
    let id = identity::<A, N>(a);
    scale(a, &id, s)
}

/// `0.5 * (X + X^T)` — the Kalman covariance re-symmetrization.
pub fn symmetrized<A: Arith, const N: usize>(a: &mut A, x: &[[A::T; N]; N]) -> [[A::T; N]; N] {
    let half = a.num(0.5);
    let mut out = *x;
    for r in 0..N {
        for c in 0..N {
            let sum = a.add(x[r][c], x[c][r]);
            out[r][c] = a.mul(half, sum);
        }
    }
    out
}

/// Largest absolute asymmetry `max |X - X^T|`.
pub fn asymmetry<A: Arith, const N: usize>(a: &mut A, x: &[[A::T; N]; N]) -> A::T {
    let mut m = a.num(0.0);
    for r in 0..N {
        for c in 0..N {
            let d = a.sub(x[r][c], x[c][r]);
            let ad = a.abs(d);
            m = a.max(m, ad);
        }
    }
    m
}

/// Largest absolute component of a vector.
pub fn vec_max_abs<A: Arith, const N: usize>(a: &mut A, v: &[A::T; N]) -> A::T {
    let mut m = a.num(0.0);
    for x in v {
        let ax = a.abs(*x);
        m = a.max(m, ax);
    }
    m
}

/// Right-handed cross product of two 3-vectors (the `mathx::Vec3`
/// component order).
pub fn cross3<A: Arith>(a: &mut A, x: &[A::T; 3], y: &[A::T; 3]) -> [A::T; 3] {
    let mut out = *x;
    for (i, o) in out.iter_mut().enumerate() {
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        let p = a.mul(x[j], y[k]);
        let q = a.mul(x[k], y[j]);
        *o = a.sub(p, q);
    }
    out
}

/// Element-wise vector sum.
pub fn vec_add<A: Arith, const N: usize>(a: &mut A, x: &[A::T; N], y: &[A::T; N]) -> [A::T; N] {
    let mut out = *x;
    for i in 0..N {
        out[i] = a.add(x[i], y[i]);
    }
    out
}

/// Element-wise vector difference.
pub fn vec_sub<A: Arith, const N: usize>(a: &mut A, x: &[A::T; N], y: &[A::T; N]) -> [A::T; N] {
    let mut out = *x;
    for i in 0..N {
        out[i] = a.sub(x[i], y[i]);
    }
    out
}

/// Inverse by Gauss-Jordan elimination with partial pivoting — the
/// same pivot choice, `1e-300` singularity threshold and elimination
/// order as `mathx::Matrix::inverse`, so the `f64` instantiation is
/// bit-identical to it.
pub fn inverse<A: Arith, const N: usize>(a: &mut A, m: &[[A::T; N]; N]) -> Option<[[A::T; N]; N]> {
    let zero = a.num(0.0);
    let tiny = a.num(1e-300);
    let mut w = *m;
    let mut inv = identity::<A, N>(a);
    for col in 0..N {
        let mut pivot = col;
        for r in (col + 1)..N {
            let ar = a.abs(w[r][col]);
            let ap = a.abs(w[pivot][col]);
            if a.lt(ap, ar) {
                pivot = r;
            }
        }
        let ap = a.abs(w[pivot][col]);
        // The equality arm matters for substrates where `tiny`
        // quantizes to zero (Q16.16): an exactly-zero pivot must still
        // report singular instead of proceeding to a saturating
        // divide-by-zero. Floats short-circuit on the `lt`.
        if a.lt(ap, tiny) || a.eq(ap, zero) {
            return None;
        }
        w.swap(col, pivot);
        inv.swap(col, pivot);
        let d = w[col][col];
        for c in 0..N {
            w[col][c] = a.div(w[col][c], d);
            inv[col][c] = a.div(inv[col][c], d);
        }
        for r in 0..N {
            if r == col {
                continue;
            }
            let factor = w[r][col];
            if a.eq(factor, zero) {
                continue;
            }
            for c in 0..N {
                let t = a.mul(factor, w[col][c]);
                w[r][c] = a.sub(w[r][c], t);
                let t = a.mul(factor, inv[col][c]);
                inv[r][c] = a.sub(inv[r][c], t);
            }
        }
    }
    Some(inv)
}

/// Joseph-form Kalman covariance update,
/// `P' = (I - K H) P (I - K H)^T + K (r I) K^T`, re-symmetrized —
/// the shared sequence both [`crate::arith::Kf3`] and the generic
/// IEKF apply (a sum of (near-)PSD terms, which is what keeps the
/// covariance bounded under coarse fixed-point rounding).
pub fn joseph_update<A: Arith, const N: usize, const M: usize>(
    a: &mut A,
    p: &[[A::T; N]; N],
    k: &[[A::T; M]; N],
    h: &[[A::T; N]; M],
    r: A::T,
) -> [[A::T; N]; N] {
    let kh = mul(a, k, h);
    let id = identity::<A, N>(a);
    let ikh = sub(a, &id, &kh);
    let ip = mul(a, &ikh, p);
    let ipit = mul_nt(a, &ip, &ikh);
    let ir = scaled_identity::<A, M>(a, r);
    let kir = mul(a, k, &ir);
    let kirk = mul_nt(a, &kir, k);
    let sum = add(a, &ipit, &kirk);
    symmetrized(a, &sum)
}

/// `true` if the lower-triangle Cholesky factorization succeeds (every
/// pivot strictly positive) — the substrate-generic mirror of
/// `mathx::Cholesky::new(..).is_some()`.
pub fn cholesky_ok<A: Arith, const N: usize>(a: &mut A, m: &[[A::T; N]; N]) -> bool {
    let zero = a.num(0.0);
    let mut l = zeros::<A, N, N>(a);
    for i in 0..N {
        for j in 0..=i {
            let mut sum = m[i][j];
            for k in 0..j {
                let t = a.mul(l[i][k], l[j][k]);
                sum = a.sub(sum, t);
            }
            if i == j {
                if !a.lt(zero, sum) {
                    return false;
                }
                l[i][i] = a.sqrt(sum);
            } else {
                l[i][j] = a.div(sum, l[j][j]);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::F64Arith;
    use mathx::{Matrix, Vector};

    fn to_mathx<const R: usize, const C: usize>(m: [[f64; C]; R]) -> Matrix<R, C> {
        Matrix::new(m)
    }

    #[test]
    fn products_match_mathx_bitwise() {
        let a = [[1.1, -2.2, 0.3], [0.7, 5.5, -1.9]];
        let b = [[0.2, 1.7], [-3.3, 0.9], [4.1, -0.4]];
        let mut ar = F64Arith::default();
        let p = mul(&mut ar, &a, &b);
        let expect = to_mathx(a) * to_mathx(b);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(p[r][c].to_bits(), expect[(r, c)].to_bits());
            }
        }
        let c = [[0.5, -1.25, 2.0], [3.5, 0.75, -0.125]];
        let ct = transpose(&mut ar, &c);
        assert_eq!(ct[2][1], -0.125);
        let pnt = mul_nt(&mut ar, &a, &c);
        let direct: Matrix<2, 2> = to_mathx(a) * to_mathx(c).transpose();
        for r in 0..2 {
            for k in 0..2 {
                assert_eq!(pnt[r][k].to_bits(), direct[(r, k)].to_bits());
            }
        }
    }

    #[test]
    fn inverse_matches_mathx_bitwise() {
        let m = [[4.0, 7.1, 0.3], [2.2, 6.4, -1.0], [0.5, -0.9, 3.3]];
        let mut ar = F64Arith::default();
        let inv = inverse(&mut ar, &m).expect("nonsingular");
        let expect = to_mathx(m).inverse().expect("nonsingular");
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(inv[r][c].to_bits(), expect[(r, c)].to_bits());
            }
        }
        let singular = [[1.0, 2.0], [2.0, 4.0]];
        assert!(inverse(&mut ar, &singular).is_none());
    }

    #[test]
    fn vectors_and_symmetry_match_mathx() {
        let m = [[1.0, 2.5], [2.0, -1.0]];
        let v = [0.4, -0.7];
        let mut ar = F64Arith::default();
        let mv = mat_vec(&mut ar, &m, &v);
        let expect = to_mathx(m) * Vector::new(v);
        assert_eq!(mv[0].to_bits(), expect[0].to_bits());
        assert_eq!(mv[1].to_bits(), expect[1].to_bits());
        let sym = symmetrized(&mut ar, &m);
        let esym = to_mathx(m).symmetrized();
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(sym[r][c].to_bits(), esym[(r, c)].to_bits());
            }
        }
        let asy = asymmetry(&mut ar, &m);
        assert_eq!(asy.to_bits(), to_mathx(m).asymmetry().to_bits());
        assert_eq!(
            vec_max_abs(&mut ar, &v).to_bits(),
            Vector::new(v).max_abs().to_bits()
        );
    }

    #[test]
    fn cholesky_agrees_with_mathx_on_spd_and_indefinite() {
        let spd = [[4.0, 2.0, 0.4], [2.0, 3.0, 0.1], [0.4, 0.1, 1.5]];
        let mut ar = F64Arith::default();
        assert!(cholesky_ok(&mut ar, &spd));
        assert!(mathx::Cholesky::new(&to_mathx(spd)).is_some());
        let indef = [[1.0, 0.0], [0.0, -1.0]];
        assert!(!cholesky_ok(&mut ar, &indef));
        assert!(mathx::Cholesky::new(&to_mathx(indef)).is_none());
    }
}
