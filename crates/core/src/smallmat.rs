//! Shared small-matrix kernels over an [`Arith`] substrate.
//!
//! Every dense loop the estimation stack needs — products, transposed
//! products, Gauss-Jordan inversion, Cholesky health checks,
//! symmetrization — lives here once, generic over the number system,
//! and is used by both the 3-state ablation filter
//! ([`crate::arith::Kf3`]) and the production 5-state IEKF
//! ([`crate::filter::GenericBoresightFilter`]).
//!
//! The accumulation order of every kernel deliberately mirrors the
//! `mathx` dense operators (accumulator starts at zero, innermost index
//! ascending, scalar factors applied in the same operand order), so
//! that instantiating these kernels with [`crate::arith::F64Arith`]
//! reproduces the pre-generic native-`f64` filter **bit for bit** —
//! the property the parity tests in `tests/arith_full_filter.rs` pin.

// Index-based loops are deliberate throughout: they mirror the matrix
// equations (and the `mathx` operators they must reproduce bitwise).
#![allow(clippy::needless_range_loop)]

use crate::arith::Arith;

/// An `R x C` zero matrix in the substrate.
pub fn zeros<A: Arith, const R: usize, const C: usize>(a: &mut A) -> [[A::T; C]; R] {
    [[a.num(0.0); C]; R]
}

/// The `N x N` identity in the substrate.
pub fn identity<A: Arith, const N: usize>(a: &mut A) -> [[A::T; N]; N] {
    let zero = a.num(0.0);
    let one = a.num(1.0);
    let mut out = [[zero; N]; N];
    for (i, row) in out.iter_mut().enumerate() {
        row[i] = one;
    }
    out
}

/// Transpose (pure data movement, no arithmetic charged).
pub fn transpose<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    m: &[[A::T; C]; R],
) -> [[A::T; R]; C] {
    let mut out = [[a.num(0.0); R]; C];
    for r in 0..R {
        for c in 0..C {
            out[c][r] = m[r][c];
        }
    }
    out
}

/// Matrix product `X * Y`.
pub fn mul<A: Arith, const R: usize, const C: usize, const K: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    y: &[[A::T; K]; C],
) -> [[A::T; K]; R] {
    let zero = a.num(0.0);
    let mut out = [[zero; K]; R];
    for r in 0..R {
        for k in 0..K {
            let mut acc = zero;
            for c in 0..C {
                acc = a.fma(x[r][c], y[c][k], acc);
            }
            out[r][k] = acc;
        }
    }
    out
}

/// Matrix product against a transpose, `X * Y^T`, without moving data.
pub fn mul_nt<A: Arith, const R: usize, const C: usize, const K: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    y: &[[A::T; C]; K],
) -> [[A::T; K]; R] {
    let zero = a.num(0.0);
    let mut out = [[zero; K]; R];
    for r in 0..R {
        for k in 0..K {
            let mut acc = zero;
            for c in 0..C {
                acc = a.fma(x[r][c], y[k][c], acc);
            }
            out[r][k] = acc;
        }
    }
    out
}

/// Matrix-vector product `M * v`.
pub fn mat_vec<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    m: &[[A::T; C]; R],
    v: &[A::T; C],
) -> [A::T; R] {
    let zero = a.num(0.0);
    let mut out = [zero; R];
    for r in 0..R {
        let mut acc = zero;
        for c in 0..C {
            acc = a.fma(m[r][c], v[c], acc);
        }
        out[r] = acc;
    }
    out
}

/// Transposed matrix-vector product `M^T * v`.
pub fn mat_tvec<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    m: &[[A::T; C]; R],
    v: &[A::T; R],
) -> [A::T; C] {
    let zero = a.num(0.0);
    let mut out = [zero; C];
    for c in 0..C {
        let mut acc = zero;
        for r in 0..R {
            acc = a.fma(m[r][c], v[r], acc);
        }
        out[c] = acc;
    }
    out
}

/// Element-wise sum `X + Y`.
pub fn add<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    y: &[[A::T; C]; R],
) -> [[A::T; C]; R] {
    let mut out = *x;
    for r in 0..R {
        for c in 0..C {
            out[r][c] = a.add(x[r][c], y[r][c]);
        }
    }
    out
}

/// Element-wise difference `X - Y`.
pub fn sub<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    y: &[[A::T; C]; R],
) -> [[A::T; C]; R] {
    let mut out = *x;
    for r in 0..R {
        for c in 0..C {
            out[r][c] = a.sub(x[r][c], y[r][c]);
        }
    }
    out
}

/// Element-wise scale `X * s` (element first, like `mathx`).
pub fn scale<A: Arith, const R: usize, const C: usize>(
    a: &mut A,
    x: &[[A::T; C]; R],
    s: A::T,
) -> [[A::T; C]; R] {
    let mut out = *x;
    for row in &mut out {
        for v in row.iter_mut() {
            *v = a.mul(*v, s);
        }
    }
    out
}

/// `identity * s` — including the explicit zero-element multiplies the
/// dense `mathx` formulation performs, so op ledgers stay comparable.
pub fn scaled_identity<A: Arith, const N: usize>(a: &mut A, s: A::T) -> [[A::T; N]; N] {
    let id = identity::<A, N>(a);
    scale(a, &id, s)
}

/// `0.5 * (X + X^T)` — the Kalman covariance re-symmetrization.
pub fn symmetrized<A: Arith, const N: usize>(a: &mut A, x: &[[A::T; N]; N]) -> [[A::T; N]; N] {
    let half = a.num(0.5);
    let mut out = *x;
    for r in 0..N {
        for c in 0..N {
            let sum = a.add(x[r][c], x[c][r]);
            out[r][c] = a.mul(half, sum);
        }
    }
    out
}

/// Largest absolute asymmetry `max |X - X^T|`.
pub fn asymmetry<A: Arith, const N: usize>(a: &mut A, x: &[[A::T; N]; N]) -> A::T {
    let mut m = a.num(0.0);
    for r in 0..N {
        for c in 0..N {
            let d = a.sub(x[r][c], x[c][r]);
            let ad = a.abs(d);
            m = a.max(m, ad);
        }
    }
    m
}

/// Largest absolute component of a vector.
pub fn vec_max_abs<A: Arith, const N: usize>(a: &mut A, v: &[A::T; N]) -> A::T {
    let mut m = a.num(0.0);
    for x in v {
        let ax = a.abs(*x);
        m = a.max(m, ax);
    }
    m
}

/// Right-handed cross product of two 3-vectors (the `mathx::Vec3`
/// component order).
pub fn cross3<A: Arith>(a: &mut A, x: &[A::T; 3], y: &[A::T; 3]) -> [A::T; 3] {
    let mut out = *x;
    for (i, o) in out.iter_mut().enumerate() {
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        let p = a.mul(x[j], y[k]);
        let q = a.mul(x[k], y[j]);
        *o = a.sub(p, q);
    }
    out
}

/// Element-wise vector sum.
pub fn vec_add<A: Arith, const N: usize>(a: &mut A, x: &[A::T; N], y: &[A::T; N]) -> [A::T; N] {
    let mut out = *x;
    for i in 0..N {
        out[i] = a.add(x[i], y[i]);
    }
    out
}

/// Element-wise vector difference.
pub fn vec_sub<A: Arith, const N: usize>(a: &mut A, x: &[A::T; N], y: &[A::T; N]) -> [A::T; N] {
    let mut out = *x;
    for i in 0..N {
        out[i] = a.sub(x[i], y[i]);
    }
    out
}

/// Inverse by Gauss-Jordan elimination with partial pivoting — the
/// same pivot choice, `1e-300` singularity threshold and elimination
/// order as `mathx::Matrix::inverse`, so the `f64` instantiation is
/// bit-identical to it.
pub fn inverse<A: Arith, const N: usize>(a: &mut A, m: &[[A::T; N]; N]) -> Option<[[A::T; N]; N]> {
    let zero = a.num(0.0);
    let tiny = a.num(1e-300);
    let mut w = *m;
    let mut inv = identity::<A, N>(a);
    for col in 0..N {
        let mut pivot = col;
        for r in (col + 1)..N {
            let ar = a.abs(w[r][col]);
            let ap = a.abs(w[pivot][col]);
            if a.lt(ap, ar) {
                pivot = r;
            }
        }
        let ap = a.abs(w[pivot][col]);
        // The equality arm matters for substrates where `tiny`
        // quantizes to zero (Q16.16): an exactly-zero pivot must still
        // report singular instead of proceeding to a saturating
        // divide-by-zero. Floats short-circuit on the `lt`.
        if a.lt(ap, tiny) || a.eq(ap, zero) {
            return None;
        }
        w.swap(col, pivot);
        inv.swap(col, pivot);
        let d = w[col][col];
        for c in 0..N {
            w[col][c] = a.div(w[col][c], d);
            inv[col][c] = a.div(inv[col][c], d);
        }
        for r in 0..N {
            if r == col {
                continue;
            }
            let factor = w[r][col];
            if a.eq(factor, zero) {
                continue;
            }
            for c in 0..N {
                let t = a.mul(factor, w[col][c]);
                w[r][c] = a.sub(w[r][c], t);
                let t = a.mul(factor, inv[col][c]);
                inv[r][c] = a.sub(inv[r][c], t);
            }
        }
    }
    Some(inv)
}

/// Joseph-form Kalman covariance update,
/// `P' = (I - K H) P (I - K H)^T + K (r I) K^T`, re-symmetrized —
/// the shared sequence both [`crate::arith::Kf3`] and the generic
/// IEKF apply (a sum of (near-)PSD terms, which is what keeps the
/// covariance bounded under coarse fixed-point rounding).
pub fn joseph_update<A: Arith, const N: usize, const M: usize>(
    a: &mut A,
    p: &[[A::T; N]; N],
    k: &[[A::T; M]; N],
    h: &[[A::T; N]; M],
    r: A::T,
) -> [[A::T; N]; N] {
    let kh = mul(a, k, h);
    let id = identity::<A, N>(a);
    let ikh = sub(a, &id, &kh);
    let ip = mul(a, &ikh, p);
    let ipit = mul_nt(a, &ip, &ikh);
    let ir = scaled_identity::<A, M>(a, r);
    let kir = mul(a, k, &ir);
    let kirk = mul_nt(a, &kir, k);
    let sum = add(a, &ipit, &kirk);
    symmetrized(a, &sum)
}

/// Innovation covariance `S = (J P) J^T + r I` from the precomputed
/// product `jp = J P`, exploiting the symmetry of `P`: only the upper
/// triangle of the `M x M` result is accumulated (same mathx order as
/// [`mul_nt`] entry by entry) and mirrored, and the diagonal adds `r`
/// directly instead of multiplying out a scaled identity. For an
/// exactly symmetric `P` the unique entries are bit-identical to the
/// dense `mul_nt` + `scaled_identity` + `add` sequence this replaces;
/// the mirrored strict-lower entries differ from their independently
/// accumulated dense counterparts by at most the dot-product rounding
/// spread (~1 scaled ulp).
pub fn innovation_cov<A: Arith, const N: usize, const M: usize>(
    a: &mut A,
    jp: &[[A::T; N]; M],
    j: &[[A::T; N]; M],
    r: A::T,
) -> [[A::T; M]; M] {
    let zero = a.num(0.0);
    let mut out = [[zero; M]; M];
    for row in 0..M {
        for col in row..M {
            let mut acc = zero;
            for c in 0..N {
                acc = a.fma(jp[row][c], j[col][c], acc);
            }
            out[row][col] = acc;
            out[col][row] = acc;
        }
        out[row][row] = a.add(out[row][row], r);
    }
    out
}

/// Closed-form inverse of a symmetric positive-definite 2x2 matrix via
/// its LDL^T factorization — the structure-exploiting replacement for
/// running the dense `N x N` Gauss-Jordan kernel on the 2x2 innovation
/// covariance (3 divisions instead of 8, no pivot search).
///
/// Every division is by a factorization pivot (`d1 = s00`, the Schur
/// complement `d2 = s11 - s10^2/s00`), both of innovation magnitude —
/// the same property that made pivoting Gauss-Jordan usable in Q16.16
/// where the adj/det closed form underflows (`det ~ R^2` quantizes to
/// zero). Returns `None` when a pivot is not strictly positive
/// (indefinite or singular), mirroring the Gauss-Jordan singularity
/// guard, including the exact-zero arm for substrates where the
/// `1e-300` threshold quantizes to zero.
pub fn inverse2_sym<A: Arith>(a: &mut A, s: &[[A::T; 2]; 2]) -> Option<[[A::T; 2]; 2]> {
    let zero = a.num(0.0);
    let tiny = a.num(1e-300);
    let one = a.num(1.0);
    let d1 = s[0][0];
    if a.lt(d1, tiny) || a.eq(d1, zero) {
        return None;
    }
    let l = a.div(s[1][0], d1);
    let lt = a.mul(l, s[0][1]);
    let d2 = a.sub(s[1][1], lt);
    if a.lt(d2, tiny) || a.eq(d2, zero) {
        return None;
    }
    // S^-1 = [[1/d1 + l^2/d2, -l/d2], [-l/d2, 1/d2]].
    let i11 = a.div(one, d2);
    let nl = a.neg(l);
    let i01 = a.mul(nl, i11);
    let inv_d1 = a.div(one, d1);
    let li01 = a.mul(l, i01); // -l^2/d2
    let i00 = a.sub(inv_d1, li01);
    Some([[i00, i01], [i01, i11]])
}

/// Joseph-form covariance update specialized to the rank-`M`
/// measurement with a scalar-`r I` noise: computes only the upper
/// triangle of `(I - K H) P (I - K H)^T + K (r I) K^T` and mirrors it,
/// skipping the explicit `r I` matrix, the `K (r I)` product and the
/// dense re-symmetrization pass of [`joseph_update`].
///
/// The result is exactly symmetric by construction (the invariant the
/// symmetric-`P` fast path of the IEKF relies on). Each unique entry
/// is accumulated in the same mathx order as the dense kernel's
/// upper-triangle entry, so the output tracks the dense
/// `joseph_update` within the re-symmetrization average (~1 ulp scaled
/// to the covariance magnitude — pinned by proptest in
/// `tests/arith_full_filter.rs`).
pub fn joseph_update_sym<A: Arith, const N: usize, const M: usize>(
    a: &mut A,
    p: &[[A::T; N]; N],
    k: &[[A::T; M]; N],
    h: &[[A::T; N]; M],
    r: A::T,
) -> [[A::T; N]; N] {
    let zero = a.num(0.0);
    let kh = mul(a, k, h);
    let id = identity::<A, N>(a);
    let ikh = sub(a, &id, &kh);
    let ip = mul(a, &ikh, p);
    let mut out = [[zero; N]; N];
    for row in 0..N {
        for col in row..N {
            // (I-KH) P (I-KH)^T entry, same accumulation as mul_nt.
            let mut acc = zero;
            for c in 0..N {
                acc = a.fma(ip[row][c], ikh[col][c], acc);
            }
            // K (r I) K^T entry: r * <K_row, K_col>.
            let mut kk = zero;
            for m in 0..M {
                kk = a.fma(k[row][m], k[col][m], kk);
            }
            let krk = a.mul(kk, r);
            let v = a.add(acc, krk);
            out[row][col] = v;
            out[col][row] = v;
        }
    }
    out
}

/// `true` if the lower-triangle Cholesky factorization succeeds (every
/// pivot strictly positive) — the substrate-generic mirror of
/// `mathx::Cholesky::new(..).is_some()`.
pub fn cholesky_ok<A: Arith, const N: usize>(a: &mut A, m: &[[A::T; N]; N]) -> bool {
    let zero = a.num(0.0);
    let mut l = zeros::<A, N, N>(a);
    for i in 0..N {
        for j in 0..=i {
            let mut sum = m[i][j];
            for k in 0..j {
                let t = a.mul(l[i][k], l[j][k]);
                sum = a.sub(sum, t);
            }
            if i == j {
                if !a.lt(zero, sum) {
                    return false;
                }
                l[i][i] = a.sqrt(sum);
            } else {
                l[i][j] = a.div(sum, l[j][j]);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::F64Arith;
    use mathx::{Matrix, Vector};

    fn to_mathx<const R: usize, const C: usize>(m: [[f64; C]; R]) -> Matrix<R, C> {
        Matrix::new(m)
    }

    #[test]
    fn products_match_mathx_bitwise() {
        let a = [[1.1, -2.2, 0.3], [0.7, 5.5, -1.9]];
        let b = [[0.2, 1.7], [-3.3, 0.9], [4.1, -0.4]];
        let mut ar = F64Arith::default();
        let p = mul(&mut ar, &a, &b);
        let expect = to_mathx(a) * to_mathx(b);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(p[r][c].to_bits(), expect[(r, c)].to_bits());
            }
        }
        let c = [[0.5, -1.25, 2.0], [3.5, 0.75, -0.125]];
        let ct = transpose(&mut ar, &c);
        assert_eq!(ct[2][1], -0.125);
        let pnt = mul_nt(&mut ar, &a, &c);
        let direct: Matrix<2, 2> = to_mathx(a) * to_mathx(c).transpose();
        for r in 0..2 {
            for k in 0..2 {
                assert_eq!(pnt[r][k].to_bits(), direct[(r, k)].to_bits());
            }
        }
    }

    #[test]
    fn inverse_matches_mathx_bitwise() {
        let m = [[4.0, 7.1, 0.3], [2.2, 6.4, -1.0], [0.5, -0.9, 3.3]];
        let mut ar = F64Arith::default();
        let inv = inverse(&mut ar, &m).expect("nonsingular");
        let expect = to_mathx(m).inverse().expect("nonsingular");
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(inv[r][c].to_bits(), expect[(r, c)].to_bits());
            }
        }
        let singular = [[1.0, 2.0], [2.0, 4.0]];
        assert!(inverse(&mut ar, &singular).is_none());
    }

    #[test]
    fn vectors_and_symmetry_match_mathx() {
        let m = [[1.0, 2.5], [2.0, -1.0]];
        let v = [0.4, -0.7];
        let mut ar = F64Arith::default();
        let mv = mat_vec(&mut ar, &m, &v);
        let expect = to_mathx(m) * Vector::new(v);
        assert_eq!(mv[0].to_bits(), expect[0].to_bits());
        assert_eq!(mv[1].to_bits(), expect[1].to_bits());
        let sym = symmetrized(&mut ar, &m);
        let esym = to_mathx(m).symmetrized();
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(sym[r][c].to_bits(), esym[(r, c)].to_bits());
            }
        }
        let asy = asymmetry(&mut ar, &m);
        assert_eq!(asy.to_bits(), to_mathx(m).asymmetry().to_bits());
        assert_eq!(
            vec_max_abs(&mut ar, &v).to_bits(),
            Vector::new(v).max_abs().to_bits()
        );
    }

    #[test]
    fn innovation_cov_matches_dense_sequence_on_unique_entries() {
        let mut ar = F64Arith::default();
        let j = [[1.5, -2.0, 0.25, 0.0, 3.0], [0.5, 1.0, -0.75, 2.0, -1.0]];
        // Symmetric P.
        let mut p = [[0.0; 5]; 5];
        for r in 0..5 {
            for c in 0..5 {
                let v = 0.1 / (1.0 + (r as f64 - c as f64).abs()) + if r == c { 1.0 } else { 0.0 };
                p[r][c] = v;
                p[c][r] = v;
            }
        }
        let r_t = 4.9e-5;
        let jp = mul(&mut ar, &j, &p);
        let s = innovation_cov(&mut ar, &jp, &j, r_t);
        // Dense reference: J P J^T + r I.
        let jpj = mul_nt(&mut ar, &jp, &j);
        let ir = scaled_identity::<F64Arith, 2>(&mut ar, r_t);
        let dense = add(&mut ar, &jpj, &ir);
        assert_eq!(s[0][0].to_bits(), dense[0][0].to_bits());
        assert_eq!(s[0][1].to_bits(), dense[0][1].to_bits());
        assert_eq!(s[1][1].to_bits(), dense[1][1].to_bits());
        // The mirrored entry equals the upper one exactly.
        assert_eq!(s[1][0].to_bits(), s[0][1].to_bits());
    }

    #[test]
    fn inverse2_sym_inverts_spd_and_rejects_indefinite() {
        let mut ar = F64Arith::default();
        let s = [[2.0e-4, 0.5e-4], [0.5e-4, 1.0e-4]];
        let inv = inverse2_sym(&mut ar, &s).expect("SPD");
        // S * S^-1 ~ I.
        let prod = mul(&mut ar, &s, &inv);
        assert!((prod[0][0] - 1.0).abs() < 1e-12);
        assert!((prod[1][1] - 1.0).abs() < 1e-12);
        assert!(prod[0][1].abs() < 1e-12);
        assert!(prod[1][0].abs() < 1e-12);
        assert_eq!(inv[0][1].to_bits(), inv[1][0].to_bits());
        // Non-positive leading pivot: rejected.
        assert!(inverse2_sym(&mut ar, &[[-1.0, 0.0], [0.0, 1.0]]).is_none());
        assert!(inverse2_sym(&mut ar, &[[0.0, 0.0], [0.0, 1.0]]).is_none());
        // Indefinite via the Schur complement: rejected.
        assert!(inverse2_sym(&mut ar, &[[1.0, 2.0], [2.0, 1.0]]).is_none());
        // The Q16.16-critical case: innovation-scale pivots whose adj/det
        // determinant would underflow the fixed-point quantum still invert.
        use crate::arith::QArith;
        let mut q = QArith::<16>::default();
        let sq = [[q.num(6.0e-4), q.num(0.0)], [q.num(0.0), q.num(6.0e-4)]];
        let invq = inverse2_sym(&mut q, &sq).expect("pivot-structured solve survives Q16.16");
        assert!(q.to_f64(invq[0][0]) > 1000.0, "{}", q.to_f64(invq[0][0]));
    }

    #[test]
    fn joseph_update_sym_is_exactly_symmetric_and_tracks_dense() {
        let mut ar = F64Arith::default();
        let mut p = [[0.0; 5]; 5];
        for r in 0..5 {
            for c in 0..5 {
                let v = 0.01 / (1.0 + (r as f64 + c as f64));
                p[r][c] = v;
                p[c][r] = v;
            }
        }
        for i in 0..5 {
            p[i][i] += 0.05;
        }
        let h = [[1.0, -2.0, 0.5, 1.0, 0.0], [0.0, 1.5, -1.0, 0.0, 1.0]];
        let k = transpose(&mut ar, &h);
        let k = scale(&mut ar, &k, 0.01);
        let r_t = 4.9e-5;
        let packed = joseph_update_sym(&mut ar, &p, &k, &h, r_t);
        let dense = joseph_update(&mut ar, &p, &k, &h, r_t);
        let scale_m = dense
            .iter()
            .flatten()
            .fold(f64::MIN_POSITIVE, |m, v| m.max(v.abs()));
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(
                    packed[r][c].to_bits(),
                    packed[c][r].to_bits(),
                    "exact symmetry ({r},{c})"
                );
                assert!(
                    (packed[r][c] - dense[r][c]).abs() <= 4.0 * scale_m * f64::EPSILON,
                    "({r},{c}): packed {} dense {}",
                    packed[r][c],
                    dense[r][c]
                );
            }
        }
    }

    #[test]
    fn cholesky_agrees_with_mathx_on_spd_and_indefinite() {
        let spd = [[4.0, 2.0, 0.4], [2.0, 3.0, 0.1], [0.4, 0.1, 1.5]];
        let mut ar = F64Arith::default();
        assert!(cholesky_ok(&mut ar, &spd));
        assert!(mathx::Cholesky::new(&to_mathx(spd)).is_some());
        let indef = [[1.0, 0.0], [0.0, -1.0]];
        assert!(!cholesky_ok(&mut ar, &indef));
        assert!(mathx::Cholesky::new(&to_mathx(indef)).is_none());
    }
}
