//! Shared per-vehicle result reporting.
//!
//! One vehicle's run — whether it executed as a standalone
//! [`crate::session::FusionSession`], as a cell of a
//! [`crate::spec::ScenarioSuite`] sweep, or as a slot in a
//! [`crate::fleet::Fleet`] arena — is summarized by the same
//! [`VehicleSummary`]: final estimate vs. truth, converged RMS error,
//! residual health, adaptive retunes, substrate saturations and the
//! serial-link fault counters. Consumers (the bench matrix, the CI
//! health gates, the fleet server's eviction log) all read one shape
//! instead of re-assembling the fields inline.

use crate::estimator::MisalignmentEstimate;
use crate::scenario::RunResult;
use comms::StreamStats;
use mathx::{rad_to_deg, EulerAngles};

/// Everything one vehicle's run is judged by, detached from how the
/// run was executed.
#[derive(Clone, Debug)]
pub struct VehicleSummary {
    /// Injected truth.
    pub truth: EulerAngles,
    /// Final estimate with confidence.
    pub estimate: MisalignmentEstimate,
    /// Converged-half pooled-axis boresight RMS error, degrees (`NaN`
    /// when the run recorded no converged-half samples).
    pub error_rms_deg: f64,
    /// Final worst-axis error, degrees.
    pub final_worst_error_deg: f64,
    /// Fraction of residuals beyond 3 sigma.
    pub exceed_rate: f64,
    /// Adaptive retunes fired.
    pub retune_count: usize,
    /// Fixed-point saturation events (0 on float substrates; 0 for
    /// fleet vehicles, whose lanes share one substrate context and
    /// cannot attribute saturations per vehicle).
    pub saturations: u64,
    /// Serial-link statistics, for comms-channel runs (includes the
    /// fault-injector counters).
    pub stream: Option<StreamStats>,
    /// Substrate reconfigurations performed mid-run (0 for every
    /// static substrate; populated when the vehicle ran under an
    /// [`crate::adaptive::AdaptiveBackend`]).
    pub substrate_switches: u64,
}

impl VehicleSummary {
    /// Summarizes a batch [`RunResult`] (the suite/session path).
    pub fn from_result(result: &RunResult, saturations: u64, stream: Option<StreamStats>) -> Self {
        Self {
            truth: result.truth,
            estimate: result.estimate,
            error_rms_deg: result.error_rms_deg(),
            final_worst_error_deg: result.max_error_deg(),
            exceed_rate: result.exceed_rate,
            retune_count: result.retune_count,
            saturations,
            stream,
            substrate_switches: 0,
        }
    }

    /// Stamps the adaptive reconfiguration count onto the summary.
    pub fn with_substrate_switches(mut self, switches: u64) -> Self {
        self.substrate_switches = switches;
        self
    }

    /// Per-axis estimation error, degrees.
    pub fn error_deg(&self) -> [f64; 3] {
        let e = self.estimate.angles.error_to(&self.truth);
        [rad_to_deg(e.roll), rad_to_deg(e.pitch), rad_to_deg(e.yaw)]
    }

    /// `true` when the estimate and its confidence are finite and the
    /// covariance never went indefinite (non-negative sigmas) — the
    /// health predicate the CI smoke runs gate on.
    pub fn is_healthy(&self) -> bool {
        let a = self.estimate.angles;
        let s = self.estimate.one_sigma;
        a.roll.is_finite()
            && a.pitch.is_finite()
            && a.yaw.is_finite()
            && (0..3).all(|i| s[i].is_finite() && s[i] >= 0.0)
            && self.error_rms_deg.is_finite()
    }
}

/// Incremental pooled-axis RMS accumulator — the streaming counterpart
/// of [`RunResult::error_rms_deg`], for executors (the fleet arena)
/// that never materialize an estimate trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningRms {
    sum_sq: f64,
    n: u64,
}

impl RunningRms {
    /// Folds one per-axis error sample (degrees) into the pool.
    pub fn push(&mut self, errs_deg: [f64; 3]) {
        self.sum_sq += errs_deg.iter().map(|e| e * e).sum::<f64>() / 3.0;
        self.n += 1;
    }

    /// Number of samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Pooled RMS over every sample pushed, degrees (`NaN` when
    /// empty, like the trace-based metric on an empty trace).
    pub fn rms_deg(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        (self.sum_sq / self.n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_static, ScenarioConfig};

    #[test]
    fn summary_matches_run_result_fields() {
        let truth = EulerAngles::from_degrees(2.0, -3.0, 1.5);
        let mut cfg = ScenarioConfig::static_test(truth);
        cfg.duration_s = 40.0;
        let result = run_static(&cfg);
        let summary = VehicleSummary::from_result(&result, 7, None);
        assert_eq!(summary.error_rms_deg, result.error_rms_deg());
        assert_eq!(summary.final_worst_error_deg, result.max_error_deg());
        assert_eq!(summary.exceed_rate, result.exceed_rate);
        assert_eq!(summary.retune_count, result.retune_count);
        assert_eq!(summary.saturations, 7);
        assert_eq!(summary.error_deg(), result.error_deg());
        assert!(summary.is_healthy());
    }

    #[test]
    fn health_rejects_non_finite_estimates() {
        let truth = EulerAngles::from_degrees(1.0, 1.0, 1.0);
        let mut cfg = ScenarioConfig::static_test(truth);
        cfg.duration_s = 30.0;
        let result = run_static(&cfg);
        let mut summary = VehicleSummary::from_result(&result, 0, None);
        assert!(summary.is_healthy());
        summary.estimate.angles.pitch = f64::NAN;
        assert!(!summary.is_healthy());
    }

    #[test]
    fn running_rms_matches_batch_formula() {
        let mut rms = RunningRms::default();
        assert!(rms.rms_deg().is_nan());
        let samples = [[0.1, -0.2, 0.05], [0.0, 0.3, -0.1], [0.2, 0.1, 0.0]];
        for s in samples {
            rms.push(s);
        }
        let mean_sq: f64 = samples
            .iter()
            .map(|s| s.iter().map(|e| e * e).sum::<f64>() / 3.0)
            .sum::<f64>()
            / samples.len() as f64;
        assert_eq!(rms.rms_deg().to_bits(), mean_sq.sqrt().to_bits());
        assert_eq!(rms.samples(), 3);
    }
}
