//! Multi-sensor alignment — the paper's proposed extension.
//!
//! "Future implementations will demonstrate self-aligning and
//! self-referencing methods for dynamic alignment of multiple sensors
//! ... it can readily be extended to fuse data from multiple sensors
//! together (eg. lidar and video) to provide low-cost situational
//! awareness systems."
//!
//! The extension is structurally simple and this module makes it
//! concrete: one vehicle-fixed IMU stream is shared by any number of
//! per-sensor estimators (each sensor carries its own two-axis ACC).
//! Aligning every sensor to the common body frame *also* aligns the
//! sensors to each other — [`MultiBoresight::relative_alignment`]
//! returns the rotation between any two sensors without any direct
//! cross-sensor calibration, which is exactly what fusing lidar
//! returns with video requires.

use crate::estimator::{BoresightEstimator, EstimatorConfig, MisalignmentEstimate};
use crate::filter::KalmanUpdate;
use crate::monitor::Retune;
use crate::session::FusionBackend;
use mathx::{Dcm, EulerAngles, Vec2};
use sensors::DmuSample;
use std::any::Any;

/// Joint alignment of several sensors against one IMU.
///
/// Each sensor runs its own scalar [`BoresightEstimator`], so sensors
/// may carry different configurations and asynchronous channels. When
/// every sensor shares one configuration and the channels arrive in
/// lockstep (the multi-channel synthetic source), the SIMD-style
/// [`crate::lanes::LaneBank`] computes the identical per-sensor
/// estimates — bit for bit, pinned by `tests/lane_parity.rs` — through
/// one lane-batched filter instead of `N` scalar ones.
///
/// # Examples
///
/// ```
/// use boresight::multi::MultiBoresight;
/// use boresight::EstimatorConfig;
///
/// let mut multi = MultiBoresight::new(vec![
///     ("camera".into(), EstimatorConfig::paper_static()),
///     ("lidar".into(), EstimatorConfig::paper_static()),
/// ]);
/// assert_eq!(multi.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct MultiBoresight {
    names: Vec<String>,
    estimators: Vec<BoresightEstimator>,
}

impl MultiBoresight {
    /// Creates one estimator per (name, config) pair.
    pub fn new(sensors: Vec<(String, EstimatorConfig)>) -> Self {
        let (names, configs): (Vec<_>, Vec<_>) = sensors.into_iter().unzip();
        Self {
            names,
            estimators: configs.into_iter().map(BoresightEstimator::new).collect(),
        }
    }

    /// Number of sensors being aligned.
    pub fn len(&self) -> usize {
        self.estimators.len()
    }

    /// `true` if no sensors are registered.
    pub fn is_empty(&self) -> bool {
        self.estimators.is_empty()
    }

    /// Sensor names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Broadcasts an IMU sample to every per-sensor estimator (they
    /// share the single vehicle-fixed DMU).
    pub fn on_dmu(&mut self, sample: &DmuSample) {
        for est in &mut self.estimators {
            est.on_dmu(sample);
        }
    }

    /// Feeds one sensor's ACC measurement.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is out of range.
    pub fn on_acc(&mut self, sensor: usize, time_s: f64, z: Vec2) -> Option<KalmanUpdate> {
        self.estimators[sensor].on_acc(time_s, z)
    }

    /// Current estimate for one sensor.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is out of range.
    pub fn estimate(&self, sensor: usize) -> MisalignmentEstimate {
        self.estimators[sensor].estimate()
    }

    /// All estimates, in index order.
    pub fn estimates(&self) -> Vec<MisalignmentEstimate> {
        self.estimators.iter().map(|e| e.estimate()).collect()
    }

    /// The primary (index 0) estimator, with a meaningful panic for an
    /// empty bank used as a session backend.
    fn primary(&self) -> &BoresightEstimator {
        self.estimators
            .first()
            .expect("MultiBoresight backend needs at least one sensor")
    }

    /// The rotation carrying sensor `from`'s frame into sensor `to`'s
    /// frame, derived purely from each sensor's alignment to the
    /// common body frame: `C_to_from = C_to_b * C_b_from`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn relative_alignment(&self, from: usize, to: usize) -> EulerAngles {
        let c_b_from: Dcm = self.estimators[from].estimate().angles.dcm(); // from -> body
        let c_b_to: Dcm = self.estimators[to].estimate().angles.dcm(); // to -> body
                                                                       // to <- body <- from.
        (c_b_to.transpose() * c_b_from).euler()
    }
}

/// A whole sensor bank as one session backend: the shared IMU stream
/// broadcasts to every per-sensor estimator, and multi-channel
/// [`SensorEvent::Acc`](crate::session::SensorEvent) events route by
/// channel index. Drive it with a multi-channel
/// [`SyntheticSource`](crate::session::SyntheticSource).
impl FusionBackend for MultiBoresight {
    fn ingest_dmu(&mut self, sample: &DmuSample) {
        self.on_dmu(sample);
    }

    fn ingest_acc(&mut self, sensor: usize, time_s: f64, z: Vec2) -> Option<KalmanUpdate> {
        self.on_acc(sensor, time_s, z)
    }

    fn current_estimate(&self) -> MisalignmentEstimate {
        self.primary().estimate()
    }

    fn estimate_for(&self, sensor: usize) -> MisalignmentEstimate {
        self.estimate(sensor)
    }

    fn sensor_count(&self) -> usize {
        self.len()
    }

    /// The primary (index 0) sensor's sigma.
    fn measurement_sigma(&self) -> f64 {
        self.primary().current_measurement_sigma()
    }

    fn retunes(&self) -> &[Retune] {
        self.primary().retunes()
    }

    fn retune_count(&self) -> usize {
        self.estimators.iter().map(|e| e.retunes().len()).sum()
    }

    fn for_each_retune_since(&self, from: usize, visit: &mut dyn FnMut(&Retune)) {
        // K-way selection merge over the per-sensor logs (each already
        // in firing order), visiting the globally ordered tail without
        // building the merged Vec the old implementation allocated.
        // Ties go to the lower sensor index, matching the stable sort
        // this replaces.
        let mut cursors = vec![0usize; self.estimators.len()];
        let mut emitted = 0usize;
        loop {
            let mut best: Option<(usize, u64)> = None;
            for (i, est) in self.estimators.iter().enumerate() {
                if let Some(r) = est.retunes().get(cursors[i]) {
                    if best.is_none_or(|(_, s)| r.at_sample < s) {
                        best = Some((i, r.at_sample));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            let retune = self.estimators[i].retunes()[cursors[i]];
            cursors[i] += 1;
            if emitted >= from {
                visit(&retune);
            }
            emitted += 1;
        }
    }

    fn label(&self) -> &'static str {
        "multi/iekf5"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathx::rng::seeded_rng;
    use mathx::{rad_to_deg, GaussianSampler, Vec3, STANDARD_GRAVITY};

    /// Runs two sensors with different true misalignments against the
    /// same excitation and returns the multi-estimator.
    fn run_two(truth_a: EulerAngles, truth_b: EulerAngles, n: usize) -> MultiBoresight {
        let mut multi = MultiBoresight::new(vec![
            ("camera".into(), EstimatorConfig::paper_static()),
            ("lidar".into(), EstimatorConfig::paper_static()),
        ]);
        let c_a = truth_a.dcm().transpose();
        let c_b = truth_b.dcm().transpose();
        let mut rng = seeded_rng(5);
        let mut gauss = GaussianSampler::new();
        let g = STANDARD_GRAVITY;
        for i in 0..n {
            let t = i as f64 * 0.005;
            let f = Vec3::new([
                2.0 * (0.5 * t).sin() + g * 0.2 * (0.07 * t).sin(),
                1.5 * (0.33 * t).cos(),
                g,
            ]);
            if i % 2 == 0 {
                multi.on_dmu(&DmuSample {
                    seq: (i / 2) as u16,
                    time_s: t,
                    gyro: Vec3::zeros(),
                    accel: f,
                });
            }
            for (idx, c) in [(0usize, &c_a), (1usize, &c_b)] {
                let f_s = c.rotate(f);
                let z = Vec2::new([
                    f_s[0] + gauss.sample_scaled(&mut rng, 0.0, 0.007),
                    f_s[1] + gauss.sample_scaled(&mut rng, 0.0, 0.007),
                ]);
                multi.on_acc(idx, t, z);
            }
        }
        multi
    }

    #[test]
    fn each_sensor_converges_independently() {
        let truth_a = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let truth_b = EulerAngles::from_degrees(-3.0, 2.0, -1.0);
        let multi = run_two(truth_a, truth_b, 30_000);
        let ea = multi.estimate(0).angles.error_to(&truth_a);
        let eb = multi.estimate(1).angles.error_to(&truth_b);
        assert!(rad_to_deg(ea.max_abs()) < 0.3, "{:?}", ea.to_degrees());
        assert!(rad_to_deg(eb.max_abs()) < 0.3, "{:?}", eb.to_degrees());
    }

    #[test]
    fn relative_alignment_without_cross_calibration() {
        let truth_a = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let truth_b = EulerAngles::from_degrees(-3.0, 2.0, -1.0);
        let multi = run_two(truth_a, truth_b, 30_000);
        let rel = multi.relative_alignment(0, 1);
        // Ground truth relative rotation.
        let expected = (truth_b.dcm().transpose() * truth_a.dcm()).euler();
        let err = rel.error_to(&expected);
        assert!(
            rad_to_deg(err.max_abs()) < 0.5,
            "relative {:?} vs {:?}",
            rel.to_degrees(),
            expected.to_degrees()
        );
    }

    #[test]
    fn self_relative_alignment_is_identity() {
        let truth = EulerAngles::from_degrees(1.0, 1.0, 1.0);
        let multi = run_two(truth, truth, 5_000);
        let rel = multi.relative_alignment(0, 0);
        assert!(rad_to_deg(rel.max_abs()) < 1e-9);
    }

    #[test]
    fn multi_driven_through_session_layer() {
        // The same two-sensor rig as above, but driven by a
        // FusionSession over a two-channel synthetic source instead of
        // hand-fed samples.
        use crate::scenario::ScenarioConfig;
        use crate::session::{ChannelConfig, FusionSession, SyntheticSource};
        use vehicle::TiltTable;

        let truth_a = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let truth_b = EulerAngles::from_degrees(-3.0, 2.0, -1.0);
        let cfg = {
            let mut c = ScenarioConfig::static_test(truth_a);
            c.duration_s = 120.0;
            c
        };
        let channel = |truth| ChannelConfig {
            misalignment: truth,
            noise_sigma: 0.007,
            ..ChannelConfig::ideal()
        };
        let table = TiltTable::observability_sequence(20.0, cfg.duration_s / 8.0);
        let source = SyntheticSource::new(
            &table,
            cfg.dmu,
            cfg.vibration,
            cfg.acc_rate_hz,
            cfg.duration_s,
            cfg.seed,
        )
        .with_channel(&channel(truth_a))
        .with_channel(&channel(truth_b));
        let mut session = FusionSession::builder()
            .source(source)
            .backend(MultiBoresight::new(vec![
                ("camera".into(), EstimatorConfig::paper_static()),
                ("lidar".into(), EstimatorConfig::paper_static()),
            ]))
            .build();
        session.run_to_end();

        // Each sensor converges to its own truth...
        let ea = session.estimate_for(0).angles.error_to(&truth_a);
        let eb = session.estimate_for(1).angles.error_to(&truth_b);
        assert!(rad_to_deg(ea.max_abs()) < 0.3, "{:?}", ea.to_degrees());
        assert!(rad_to_deg(eb.max_abs()) < 0.3, "{:?}", eb.to_degrees());

        // ...and the backend hands back relative alignment with no
        // cross-sensor calibration.
        let multi: &MultiBoresight = session.backend_as().expect("multi backend");
        assert_eq!(multi.sensor_count(), 2);
        let rel = multi.relative_alignment(0, 1);
        let expected = (truth_b.dcm().transpose() * truth_a.dcm()).euler();
        let err = rel.error_to(&expected);
        assert!(
            rad_to_deg(err.max_abs()) < 0.5,
            "relative {:?} vs {:?}",
            rel.to_degrees(),
            expected.to_degrees()
        );
    }

    #[test]
    fn retunes_aggregate_across_sensors() {
        use mathx::{GaussianSampler, Vec3, STANDARD_GRAVITY};

        // Sensor 1 carries a static-tuned filter fed vibration-grade
        // noise, so only its monitor retunes; the backend totals must
        // still see it even though sensor 0 stays quiet.
        let mut noisy = EstimatorConfig::paper_static();
        noisy.filter.measurement_sigma = 0.003;
        let mut multi = MultiBoresight::new(vec![
            ("quiet".into(), EstimatorConfig::paper_static()),
            ("noisy".into(), noisy),
        ]);
        let mut rng = seeded_rng(9);
        let mut gauss = GaussianSampler::new();
        let g = STANDARD_GRAVITY;
        for i in 0..5000 {
            let t = i as f64 * 0.005;
            multi.on_dmu(&DmuSample {
                seq: i as u16,
                time_s: t,
                gyro: Vec3::zeros(),
                accel: Vec3::new([0.0, 0.0, g]),
            });
            multi.on_acc(0, t, Vec2::zeros());
            multi.on_acc(
                1,
                t,
                Vec2::new([
                    gauss.sample_scaled(&mut rng, 0.0, 0.03),
                    gauss.sample_scaled(&mut rng, 0.0, 0.03),
                ]),
            );
        }
        assert!(multi.estimators[0].retunes().is_empty());
        assert!(!multi.estimators[1].retunes().is_empty());
        let total = FusionBackend::retune_count(&multi);
        assert_eq!(total, multi.estimators[1].retunes().len());
        let mut visited = Vec::new();
        FusionBackend::for_each_retune_since(&multi, 0, &mut |r| visited.push(*r));
        assert_eq!(visited.len(), total);
        // The merge visits in firing order.
        assert!(visited.windows(2).all(|w| w[0].at_sample <= w[1].at_sample));
        // retunes() stays the primary sensor's log by contract.
        assert!(FusionBackend::retunes(&multi).is_empty());
    }

    #[test]
    fn names_and_len() {
        let multi = MultiBoresight::new(vec![
            ("camera".into(), EstimatorConfig::paper_static()),
            ("lidar".into(), EstimatorConfig::paper_static()),
            ("radar".into(), EstimatorConfig::paper_static()),
        ]);
        assert_eq!(multi.len(), 3);
        assert!(!multi.is_empty());
        assert_eq!(multi.names()[2], "radar");
    }
}
