//! Multi-sensor alignment — the paper's proposed extension.
//!
//! "Future implementations will demonstrate self-aligning and
//! self-referencing methods for dynamic alignment of multiple sensors
//! ... it can readily be extended to fuse data from multiple sensors
//! together (eg. lidar and video) to provide low-cost situational
//! awareness systems."
//!
//! The extension is structurally simple and this module makes it
//! concrete: one vehicle-fixed IMU stream is shared by any number of
//! per-sensor estimators (each sensor carries its own two-axis ACC).
//! Aligning every sensor to the common body frame *also* aligns the
//! sensors to each other — [`MultiBoresight::relative_alignment`]
//! returns the rotation between any two sensors without any direct
//! cross-sensor calibration, which is exactly what fusing lidar
//! returns with video requires.

use crate::estimator::{BoresightEstimator, EstimatorConfig, MisalignmentEstimate};
use crate::filter::KalmanUpdate;
use mathx::{Dcm, EulerAngles, Vec2};
use sensors::DmuSample;

/// Joint alignment of several sensors against one IMU.
///
/// # Examples
///
/// ```
/// use boresight::multi::MultiBoresight;
/// use boresight::EstimatorConfig;
///
/// let mut multi = MultiBoresight::new(vec![
///     ("camera".into(), EstimatorConfig::paper_static()),
///     ("lidar".into(), EstimatorConfig::paper_static()),
/// ]);
/// assert_eq!(multi.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct MultiBoresight {
    names: Vec<String>,
    estimators: Vec<BoresightEstimator>,
}

impl MultiBoresight {
    /// Creates one estimator per (name, config) pair.
    pub fn new(sensors: Vec<(String, EstimatorConfig)>) -> Self {
        let (names, configs): (Vec<_>, Vec<_>) = sensors.into_iter().unzip();
        Self {
            names,
            estimators: configs.into_iter().map(BoresightEstimator::new).collect(),
        }
    }

    /// Number of sensors being aligned.
    pub fn len(&self) -> usize {
        self.estimators.len()
    }

    /// `true` if no sensors are registered.
    pub fn is_empty(&self) -> bool {
        self.estimators.is_empty()
    }

    /// Sensor names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Broadcasts an IMU sample to every per-sensor estimator (they
    /// share the single vehicle-fixed DMU).
    pub fn on_dmu(&mut self, sample: &DmuSample) {
        for est in &mut self.estimators {
            est.on_dmu(sample);
        }
    }

    /// Feeds one sensor's ACC measurement.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is out of range.
    pub fn on_acc(&mut self, sensor: usize, time_s: f64, z: Vec2) -> Option<KalmanUpdate> {
        self.estimators[sensor].on_acc(time_s, z)
    }

    /// Current estimate for one sensor.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is out of range.
    pub fn estimate(&self, sensor: usize) -> MisalignmentEstimate {
        self.estimators[sensor].estimate()
    }

    /// All estimates, in index order.
    pub fn estimates(&self) -> Vec<MisalignmentEstimate> {
        self.estimators.iter().map(|e| e.estimate()).collect()
    }

    /// The rotation carrying sensor `from`'s frame into sensor `to`'s
    /// frame, derived purely from each sensor's alignment to the
    /// common body frame: `C_to_from = C_to_b * C_b_from`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn relative_alignment(&self, from: usize, to: usize) -> EulerAngles {
        let c_b_from: Dcm = self.estimators[from].estimate().angles.dcm(); // from -> body
        let c_b_to: Dcm = self.estimators[to].estimate().angles.dcm(); // to -> body
        // to <- body <- from.
        (c_b_to.transpose() * c_b_from).euler()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathx::rng::seeded_rng;
    use mathx::{rad_to_deg, GaussianSampler, Vec3, STANDARD_GRAVITY};

    /// Runs two sensors with different true misalignments against the
    /// same excitation and returns the multi-estimator.
    fn run_two(truth_a: EulerAngles, truth_b: EulerAngles, n: usize) -> MultiBoresight {
        let mut multi = MultiBoresight::new(vec![
            ("camera".into(), EstimatorConfig::paper_static()),
            ("lidar".into(), EstimatorConfig::paper_static()),
        ]);
        let c_a = truth_a.dcm().transpose();
        let c_b = truth_b.dcm().transpose();
        let mut rng = seeded_rng(5);
        let mut gauss = GaussianSampler::new();
        let g = STANDARD_GRAVITY;
        for i in 0..n {
            let t = i as f64 * 0.005;
            let f = Vec3::new([
                2.0 * (0.5 * t).sin() + g * 0.2 * (0.07 * t).sin(),
                1.5 * (0.33 * t).cos(),
                g,
            ]);
            if i % 2 == 0 {
                multi.on_dmu(&DmuSample {
                    seq: (i / 2) as u16,
                    time_s: t,
                    gyro: Vec3::zeros(),
                    accel: f,
                });
            }
            for (idx, c) in [(0usize, &c_a), (1usize, &c_b)] {
                let f_s = c.rotate(f);
                let z = Vec2::new([
                    f_s[0] + gauss.sample_scaled(&mut rng, 0.0, 0.007),
                    f_s[1] + gauss.sample_scaled(&mut rng, 0.0, 0.007),
                ]);
                multi.on_acc(idx, t, z);
            }
        }
        multi
    }

    #[test]
    fn each_sensor_converges_independently() {
        let truth_a = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let truth_b = EulerAngles::from_degrees(-3.0, 2.0, -1.0);
        let multi = run_two(truth_a, truth_b, 30_000);
        let ea = multi.estimate(0).angles.error_to(&truth_a);
        let eb = multi.estimate(1).angles.error_to(&truth_b);
        assert!(rad_to_deg(ea.max_abs()) < 0.3, "{:?}", ea.to_degrees());
        assert!(rad_to_deg(eb.max_abs()) < 0.3, "{:?}", eb.to_degrees());
    }

    #[test]
    fn relative_alignment_without_cross_calibration() {
        let truth_a = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let truth_b = EulerAngles::from_degrees(-3.0, 2.0, -1.0);
        let multi = run_two(truth_a, truth_b, 30_000);
        let rel = multi.relative_alignment(0, 1);
        // Ground truth relative rotation.
        let expected = (truth_b.dcm().transpose() * truth_a.dcm()).euler();
        let err = rel.error_to(&expected);
        assert!(
            rad_to_deg(err.max_abs()) < 0.5,
            "relative {:?} vs {:?}",
            rel.to_degrees(),
            expected.to_degrees()
        );
    }

    #[test]
    fn self_relative_alignment_is_identity() {
        let truth = EulerAngles::from_degrees(1.0, 1.0, 1.0);
        let multi = run_two(truth, truth, 5_000);
        let rel = multi.relative_alignment(0, 0);
        assert!(rad_to_deg(rel.max_abs()) < 1e-9);
    }

    #[test]
    fn names_and_len() {
        let multi = MultiBoresight::new(vec![
            ("camera".into(), EstimatorConfig::paper_static()),
            ("lidar".into(), EstimatorConfig::paper_static()),
            ("radar".into(), EstimatorConfig::paper_static()),
        ]);
        assert_eq!(multi.len(), 3);
        assert!(!multi.is_empty());
        assert_eq!(multi.names()[2], "radar");
    }
}
