//! Streaming fusion sessions: one composable event loop for every
//! workload in the crate.
//!
//! The paper's demonstrator is a *streaming* system — asynchronous
//! DMU/ACC events flowing through a reconfigurable fusion core — but
//! the original entry points (`scenario::run`, `system::run_system`,
//! the bench binaries) each hard-wired their own batch event loop.
//! This module owns that loop once, split into three pluggable roles:
//!
//! * [`SensorSource`] — produces timestamped [`SensorEvent`]s:
//!   trajectory-driven synthetic instruments ([`SyntheticSource`]),
//!   the full CAN/UART front end of Figure 2 ([`CommsChainSource`]),
//!   or replay of captured serial bytes ([`UartReplaySource`]);
//! * [`FusionBackend`] — consumes events and maintains the estimate:
//!   the production 5-state IEKF ([`BoresightEstimator`]), the 3-state
//!   ablation filter over any [`Arith`] number system ([`ArithKf3`]),
//!   or a whole [`crate::multi::MultiBoresight`] bank;
//! * [`EventSink`] — observes the stream: trace recorders, retune
//!   logs, the Sabre publish block, video-correction hooks.
//!
//! A [`FusionSession`] wires one of each together and exposes
//! *incremental* control — [`FusionSession::step`] advances the
//! session by a caller-chosen time slice, so any number of sessions
//! (different scenarios, different arithmetic backends) can be batched
//! or interleaved by a caller; [`SessionGroup`] does exactly that.
//! [`FusionSession::run_to_end`] recovers the old batch behaviour, and
//! `scenario::run`, `run_static`, `run_dynamic` and
//! `system::run_system` are now thin wrappers over this module.
//!
//! # Threading and allocation
//!
//! Sessions own everything they touch — sources hold their trajectory
//! as an [`Arc`] (see [`IntoSharedTrajectory`]), and every source,
//! backend and sink is `Send` — so a whole `FusionSession` can be
//! built on one thread and run on another, which is what the parallel
//! sweep executor ([`crate::spec::ScenarioSuite::run_parallel`], built
//! on [`crate::exec`]) does per scenario × substrate cell. Sinks that
//! must be read back after the run are attached as `Arc<Mutex<S>>`.
//!
//! The steady-state event path is allocation-free: the per-step event
//! buffer, the comms-chain byte buffers and the reconstruction decode
//! buffers are all pooled and reused, trace recorders are pre-sized
//! from the scenario duration, and retunes flow through a cursor
//! ([`FusionBackend::for_each_retune_since`]) instead of freshly
//! allocated `Vec`s (pinned by the allocation-audit integration test).
//!
//! ```
//! use boresight::session::{FusionSession, SyntheticSource};
//! use boresight::scenario::ScenarioConfig;
//! use mathx::EulerAngles;
//! use vehicle::TiltTable;
//!
//! let mut config = ScenarioConfig::static_test(EulerAngles::from_degrees(2.0, -3.0, 1.5));
//! config.duration_s = 30.0;
//! let table = TiltTable::observability_sequence(20.0, config.duration_s / 8.0);
//! let mut session = FusionSession::builder()
//!     .source(SyntheticSource::from_scenario(&table, &config))
//!     .estimator(config.estimator)
//!     .truth(config.true_misalignment)
//!     .record_traces(config.trace_decimation)
//!     .build();
//! while !session.is_finished() {
//!     session.step(1.0); // one simulated second at a time
//! }
//! assert!(session.into_result().max_error_deg() < 0.5);
//! ```

use crate::arith::{Arith, F64Arith, Kf3, QArith, SoftArith};
use crate::estimator::{
    BoresightEstimator, EstimatorConfig, GenericBoresightEstimator, MisalignmentEstimate,
};
use crate::filter::KalmanUpdate;
use crate::monitor::Retune;
use crate::scenario::{EstimatePoint, ResidualPoint, RunResult, ScenarioConfig};
use comms::{
    AdxlPacket, BridgeEncoder, DmuCanCodec, FaultInjector, Reconstructor, SensorMessage,
    StreamStats, UartConfig, UartLink,
};
use mathx::{EulerAngles, GaussianSampler, Vec2, Vec3};
use rand::rngs::StdRng;
use sensors::{Adxl202, Adxl202Config, Dmu, DmuConfig, DmuSample, Mounting};
use std::any::Any;
use std::sync::{Arc, Mutex};
use vehicle::{RoadVibration, Trajectory, VibrationConfig};

/// Comparison slack when deciding whether an event at time `t` falls
/// inside a step ending at `t_to` (guards against `i * dt` round-off).
/// Shared with [`crate::replay::ReplaySource`], whose head-gated poll
/// must make the identical in-window decisions.
pub(crate) const TIME_EPS: f64 = 1e-9;

/// Conversion into the shared, owned trajectory handle sessions carry.
///
/// Sources used to borrow `&'a dyn Trajectory`, which pinned a session
/// to the stack frame that lowered the trajectory and kept it from
/// crossing threads. They now hold `Arc<dyn Trajectory>`; this trait
/// keeps every existing call shape working:
///
/// * a concrete trajectory by value (`TiltTable`, `DriveProfile`,
///   [`crate::spec::ScenarioTrajectory`]) is moved into a fresh `Arc`;
/// * `&T` of a cloneable trajectory (the pre-refactor `&table` call
///   sites) is cloned into a fresh `Arc`;
/// * an `Arc<dyn Trajectory>` (or a reference to one) is shared as-is —
///   the path sweep runners use so every substrate session of one
///   scenario reads the same lowered trajectory. Custom `Trajectory`
///   implementations come in through this door: `Arc::new(custom)`.
///
/// (Implemented per concrete trajectory type rather than blanket over
/// `T: Trajectory` — coherence cannot prove a blanket value impl and
/// the `&T` convenience impl disjoint.)
pub trait IntoSharedTrajectory {
    /// The `Arc` the session's source will own.
    fn into_shared(self) -> Arc<dyn Trajectory>;
}

/// Implements the conversion for a concrete trajectory type, by value
/// and by (cloning) reference. Crate-internal: the expansion names the
/// `vehicle` crate directly, which downstream crates need not depend
/// on — external trajectories come in as `Arc<dyn Trajectory>`.
macro_rules! impl_into_shared_trajectory {
    ($($t:ty),+ $(,)?) => {$(
        impl $crate::session::IntoSharedTrajectory for $t {
            fn into_shared(self) -> std::sync::Arc<dyn vehicle::Trajectory> {
                std::sync::Arc::new(self)
            }
        }

        impl $crate::session::IntoSharedTrajectory for &$t {
            fn into_shared(self) -> std::sync::Arc<dyn vehicle::Trajectory> {
                std::sync::Arc::new(self.clone())
            }
        }
    )+};
}

pub(crate) use impl_into_shared_trajectory;

impl_into_shared_trajectory!(vehicle::TiltTable, vehicle::DriveProfile);

impl IntoSharedTrajectory for Arc<dyn Trajectory> {
    fn into_shared(self) -> Arc<dyn Trajectory> {
        self
    }
}

impl IntoSharedTrajectory for &Arc<dyn Trajectory> {
    fn into_shared(self) -> Arc<dyn Trajectory> {
        Arc::clone(self)
    }
}

impl IntoSharedTrajectory for Box<dyn Trajectory> {
    fn into_shared(self) -> Arc<dyn Trajectory> {
        Arc::from(self)
    }
}

/// One timestamped observation flowing through a session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SensorEvent {
    /// A vehicle-fixed IMU sample (specific force + angular rate).
    Dmu(DmuSample),
    /// A two-axis accelerometer measurement from one sensor channel.
    Acc {
        /// Which sensor channel produced it (0 for single-sensor rigs).
        sensor: usize,
        /// Measurement time, seconds.
        time_s: f64,
        /// Sensed x/y specific force, m/s^2.
        z: Vec2,
    },
}

impl SensorEvent {
    /// The event's timestamp, seconds.
    pub fn time_s(&self) -> f64 {
        match self {
            SensorEvent::Dmu(s) => s.time_s,
            SensorEvent::Acc { time_s, .. } => *time_s,
        }
    }
}

/// A producer of timestamped sensor events.
///
/// Sources own their randomness (each carries its own seeded RNG), so
/// a session's entire event stream is a pure function of its
/// configuration — the property the determinism tests pin down. They
/// are also `Send` (owning their trajectory and RNG), so a whole
/// session can run on a worker thread.
pub trait SensorSource: Send {
    /// The source's natural step, seconds (the default slice used by
    /// [`FusionSession::run_for`]).
    fn dt(&self) -> f64;

    /// Total duration of the stream, seconds, if finite.
    fn duration_s(&self) -> Option<f64> {
        None
    }

    /// Appends every event with timestamp `<= t_to` that has not been
    /// produced yet. Implementations must emit events in time order.
    fn poll(&mut self, t_to: f64, out: &mut Vec<SensorEvent>);

    /// `true` once the source will never produce another event.
    fn is_exhausted(&self) -> bool {
        false
    }

    /// Serial-link statistics, for sources fed through a comms chain.
    fn stream_stats(&self) -> Option<StreamStats> {
        None
    }

    /// Starts a fresh stats window: zeroes the per-window fault
    /// counters surfaced through [`StreamStats`] (the cumulative
    /// totals are untouched). A no-op for sources without fault
    /// injection. Health monitors (the fault-storm oracle) call this
    /// at each observation-window boundary and read the deltas off
    /// the next [`SensorSource::stream_stats`] snapshot.
    fn reset_stats_window(&mut self) {}
}

/// A consumer of sensor events that maintains a misalignment estimate.
///
/// Backends are `'static + Send`: `'static` so sessions can hand their
/// backend back out by type ([`FusionSession::backend_as`]), `Send` so
/// sessions cross threads.
pub trait FusionBackend: Any + Send {
    /// Ingests a vehicle-fixed IMU sample.
    fn ingest_dmu(&mut self, sample: &DmuSample);

    /// Ingests one sensor channel's ACC measurement. Returns the filter
    /// update record, or `None` if the backend was not ready (no IMU
    /// sample yet).
    fn ingest_acc(&mut self, sensor: usize, time_s: f64, z: Vec2) -> Option<KalmanUpdate>;

    /// The current (primary-sensor) estimate.
    fn current_estimate(&self) -> MisalignmentEstimate;

    /// The estimate for one sensor channel.
    fn estimate_for(&self, sensor: usize) -> MisalignmentEstimate {
        assert_eq!(sensor, 0, "single-sensor backend");
        self.current_estimate()
    }

    /// Number of sensor channels this backend fuses.
    fn sensor_count(&self) -> usize {
        1
    }

    /// The measurement sigma currently in force, m/s^2 (for
    /// multi-sensor backends: the primary sensor's).
    fn measurement_sigma(&self) -> f64;

    /// The primary sensor's adaptive retunes so far (empty if not
    /// monitored).
    fn retunes(&self) -> &[Retune] {
        &[]
    }

    /// Total adaptive retunes fired so far across every sensor.
    fn retune_count(&self) -> usize {
        self.retunes().len()
    }

    /// Visits the retunes after the first `from`, in firing order
    /// across all sensors. The session calls this with a cursor only
    /// when [`Self::retune_count`] grows — i.e. when a retune actually
    /// fired, never per event — so the steady-state event path stays
    /// allocation-free. The default reads straight off the
    /// [`Self::retunes`] slice without allocating; multi-sensor
    /// implementations may allocate small merge state per *retune*
    /// (retunes are rare, hold-off-limited events).
    fn for_each_retune_since(&self, from: usize, visit: &mut dyn FnMut(&Retune)) {
        if let Some(fresh) = self.retunes().get(from..) {
            for retune in fresh {
                visit(retune);
            }
        }
    }

    /// Substrate range-saturation events so far (fixed-point
    /// overflow). Default 0 for backends whose arithmetic cannot
    /// saturate; estimator backends report their substrate's counter,
    /// so sessions and fleets surface it without poking filter
    /// internals.
    fn saturations(&self) -> u64 {
        0
    }

    /// Short human-readable backend name (shows up in reports).
    fn label(&self) -> &'static str;

    /// Upcast for [`FusionSession::backend_as`].
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for [`FusionSession::backend_as_mut`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The full 5-state IEKF over *any* arithmetic substrate as a session
/// backend — the reference `f64` path, the paper's Softfloat
/// configuration and the Q16.16 enhancement are all one
/// `SessionBuilder::iekf` call apart.
impl<A: Arith + Clone + 'static> FusionBackend for GenericBoresightEstimator<A> {
    fn ingest_dmu(&mut self, sample: &DmuSample) {
        self.on_dmu(sample);
    }

    fn ingest_acc(&mut self, sensor: usize, time_s: f64, z: Vec2) -> Option<KalmanUpdate> {
        assert_eq!(sensor, 0, "BoresightEstimator fuses a single sensor");
        self.on_acc(time_s, z)
    }

    fn current_estimate(&self) -> MisalignmentEstimate {
        self.estimate()
    }

    fn measurement_sigma(&self) -> f64 {
        self.current_measurement_sigma()
    }

    fn retunes(&self) -> &[Retune] {
        GenericBoresightEstimator::retunes(self)
    }

    fn saturations(&self) -> u64 {
        self.filter().arith().saturations()
    }

    fn label(&self) -> &'static str {
        self.filter().arith().iekf_label()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The 3-state ablation filter as a session backend, generic over the
/// arithmetic substrate — the hook that lets one session type cover
/// the paper configuration (Softfloat), the fixed-point enhancement
/// and the native reference.
pub struct ArithKf3<A: Arith> {
    kf: Kf3<A>,
    last_dmu: Option<DmuSample>,
    process_noise: f64,
    measurement_sigma: f64,
}

impl<A: Arith> ArithKf3<A> {
    /// Creates a backend with the given initial angle sigma (rad),
    /// measurement sigma (m/s^2) and per-update process noise (rad^2).
    pub fn new(arith: A, initial_sigma: f64, measurement_sigma: f64, process_noise: f64) -> Self {
        Self {
            kf: Kf3::new(arith, initial_sigma, measurement_sigma),
            last_dmu: None,
            process_noise,
            measurement_sigma,
        }
    }

    /// Paper-style defaults (0.1 rad initial sigma, 0.007 m/s^2
    /// measurement sigma, 1e-10 rad^2 process noise).
    pub fn with_defaults(arith: A) -> Self {
        Self::new(arith, 0.1, 0.007, 1e-10)
    }

    /// The wrapped filter (e.g. to read Softfloat cycle stats).
    pub fn kf(&self) -> &Kf3<A> {
        &self.kf
    }
}

impl<A: Arith + 'static> FusionBackend for ArithKf3<A> {
    fn ingest_dmu(&mut self, sample: &DmuSample) {
        self.last_dmu = Some(*sample);
    }

    fn ingest_acc(&mut self, sensor: usize, time_s: f64, z: Vec2) -> Option<KalmanUpdate> {
        assert_eq!(sensor, 0, "ArithKf3 fuses a single sensor");
        let f = self.last_dmu?.accel;
        // Innovation record in f64 (the backend arithmetic is only used
        // for the filter itself): H rows are [0, -fz, fy] and
        // [fz, 0, -fx], and the innovation sigma is approximated from
        // the covariance diagonal.
        let e = self.kf.angles();
        let pred = [
            f[0] - f[2] * e.pitch + f[1] * e.yaw,
            f[1] + f[2] * e.roll - f[0] * e.yaw,
        ];
        let v = self.kf.variance();
        let r = self.measurement_sigma * self.measurement_sigma;
        let s = [
            (f[2] * f[2] * v[1] + f[1] * f[1] * v[2] + r).sqrt(),
            (f[2] * f[2] * v[0] + f[0] * f[0] * v[2] + r).sqrt(),
        ];
        self.kf.step(z, f, self.process_noise);
        Some(KalmanUpdate {
            time_s,
            innovation: Vec2::new([z[0] - pred[0], z[1] - pred[1]]),
            innovation_sigma: Vec2::new(s),
            accepted: true,
        })
    }

    fn current_estimate(&self) -> MisalignmentEstimate {
        let v = self.kf.variance();
        MisalignmentEstimate {
            angles: self.kf.angles(),
            one_sigma: Vec3::new([
                v[0].max(0.0).sqrt(),
                v[1].max(0.0).sqrt(),
                v[2].max(0.0).sqrt(),
            ]),
            updates: self.kf.update_count(),
        }
    }

    fn measurement_sigma(&self) -> f64 {
        self.measurement_sigma
    }

    fn label(&self) -> &'static str {
        self.kf.arith().name()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An observer of the event stream.
///
/// All methods default to no-ops so sinks implement only what they
/// need. Sinks are `Send` (sessions cross threads); sinks that must be
/// read back after the run are attached as `Arc<Mutex<S>>` (which also
/// implements `EventSink`), keeping a handle on the caller's side.
pub trait EventSink: Send {
    /// Called for every raw event before the backend ingests it.
    fn on_event(&mut self, event: &SensorEvent) {
        let _ = event;
    }

    /// Called after the backend accepted a measurement update.
    fn on_update(&mut self, update: &KalmanUpdate, estimate: &MisalignmentEstimate) {
        let _ = (update, estimate);
    }

    /// Called when the backend's adaptive monitor fired a retune.
    fn on_retune(&mut self, retune: &Retune) {
        let _ = retune;
    }

    /// Called once per [`FusionSession::step`] with the session clock,
    /// after the window's events have been dispatched — the hook for
    /// wall-clock-scheduled consumers (e.g. periodic publishing),
    /// which must keep firing even through a sensor-stream drought.
    fn on_time(&mut self, time_s: f64, estimate: &MisalignmentEstimate) {
        let _ = (time_s, estimate);
    }

    /// Called exactly once, when the source is exhausted.
    fn on_finish(&mut self, estimate: &MisalignmentEstimate) {
        let _ = estimate;
    }
}

/// The shared-handle sink: attach the clone, keep the original to read
/// the sink back after the run. Uncontended in practice (a session
/// runs on one thread at a time), so the lock is a handful of cycles.
impl<S: EventSink> EventSink for Arc<Mutex<S>> {
    fn on_event(&mut self, event: &SensorEvent) {
        self.lock().expect("sink lock").on_event(event);
    }

    fn on_update(&mut self, update: &KalmanUpdate, estimate: &MisalignmentEstimate) {
        self.lock().expect("sink lock").on_update(update, estimate);
    }

    fn on_retune(&mut self, retune: &Retune) {
        self.lock().expect("sink lock").on_retune(retune);
    }

    fn on_time(&mut self, time_s: f64, estimate: &MisalignmentEstimate) {
        self.lock().expect("sink lock").on_time(time_s, estimate);
    }

    fn on_finish(&mut self, estimate: &MisalignmentEstimate) {
        self.lock().expect("sink lock").on_finish(estimate);
    }
}

/// Collects the adaptive retune history as it streams by.
#[derive(Clone, Debug, Default)]
pub struct RetuneLog {
    /// Retunes observed, in firing order.
    pub retunes: Vec<Retune>,
}

impl EventSink for RetuneLog {
    fn on_retune(&mut self, retune: &Retune) {
        self.retunes.push(*retune);
    }
}

/// Keeps the most recent estimate, e.g. to drive a video-correction
/// stage (the paper's control-block consumer) outside the session.
#[derive(Clone, Debug, Default)]
pub struct LatestEstimateSink {
    /// The most recent estimate, if any update has been accepted.
    pub latest: Option<MisalignmentEstimate>,
}

impl EventSink for LatestEstimateSink {
    fn on_update(&mut self, _update: &KalmanUpdate, estimate: &MisalignmentEstimate) {
        self.latest = Some(*estimate);
    }
}

/// Records the Figure-8 / Figure-9 traces, decimated by update count.
#[derive(Clone, Debug)]
struct TraceRecorder {
    decimation: usize,
    seen: u64,
    residuals: Vec<ResidualPoint>,
    estimates: Vec<EstimatePoint>,
}

impl TraceRecorder {
    /// A recorder with both trace buffers pre-sized for
    /// `expected_updates` accepted updates — sessions built from a
    /// scenario know their duration and sample rate, so the steady
    /// state never regrows these `Vec`s.
    fn with_capacity(decimation: usize, expected_updates: usize) -> Self {
        let decimation = decimation.max(1);
        let points = expected_updates / decimation + 2;
        Self {
            decimation,
            seen: 0,
            residuals: Vec::with_capacity(points),
            estimates: Vec::with_capacity(points),
        }
    }

    fn observe(&mut self, update: &KalmanUpdate, estimate: &MisalignmentEstimate) {
        if self.seen.is_multiple_of(self.decimation as u64) {
            self.residuals.push(ResidualPoint {
                time_s: update.time_s,
                residual_x: update.innovation[0],
                three_sigma_x: 3.0 * update.innovation_sigma[0],
                residual_y: update.innovation[1],
                three_sigma_y: 3.0 * update.innovation_sigma[1],
            });
            self.estimates.push(EstimatePoint {
                time_s: update.time_s,
                angles_deg: estimate.angles.to_degrees(),
                three_sigma_deg: estimate.three_sigma_deg(),
            });
        }
        self.seen += 1;
    }
}

/// Byte-level fault rates applied to both serial links of a
/// [`CommsChainSource`] — the [`comms::FaultInjector`] knobs (bit
/// flips, drops, bursts), finally reachable from the session layer
/// through [`crate::scenario::ScenarioConfig::link_faults`].
///
/// The default is a clean channel, which injects nothing and draws no
/// randomness, so fault-free runs stay bit-identical to the
/// pre-fault-wiring event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaultConfig {
    /// Per-byte probability of a single-bit flip.
    pub bit_flip_prob: f64,
    /// Per-byte probability of the byte being silently dropped.
    pub drop_prob: f64,
    /// Per-byte probability of a burst starting (the next `burst_len`
    /// bytes are replaced with noise).
    pub burst_prob: f64,
    /// Burst length, bytes.
    pub burst_len: usize,
}

impl LinkFaultConfig {
    /// A clean channel (no faults, no RNG draws).
    pub fn clean() -> Self {
        Self::default()
    }

    /// `true` when no fault can ever fire.
    pub fn is_clean(&self) -> bool {
        self.bit_flip_prob == 0.0 && self.drop_prob == 0.0 && self.burst_prob == 0.0
    }

    /// Builds the injector this configuration describes.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(self.bit_flip_prob, self.drop_prob)
            .with_bursts(self.burst_prob, self.burst_len)
    }
}

/// One ACC channel of a [`SyntheticSource`].
#[derive(Clone, Debug)]
pub struct ChannelConfig {
    /// True mounting misalignment of this sensor.
    pub misalignment: EulerAngles,
    /// Lever arm from the IMU to this sensor, body axes, metres.
    pub lever_arm: Vec3,
    /// True x/y biases, m/s^2.
    pub bias: Vec2,
    /// White-noise sigma per sample, m/s^2.
    pub noise_sigma: f64,
    /// Mount-flexure vibration sensed only by this channel, as a
    /// fraction of the common vibration intensity.
    pub differential_vibration: f64,
    /// The vibration process driving the differential term.
    pub vibration: VibrationConfig,
}

impl ChannelConfig {
    /// An ideal channel (no misalignment, bias, noise or flexure).
    pub fn ideal() -> Self {
        Self {
            misalignment: EulerAngles::zero(),
            lever_arm: Vec3::zeros(),
            bias: Vec2::zeros(),
            noise_sigma: 0.0,
            differential_vibration: 0.0,
            vibration: VibrationConfig::none(),
        }
    }

    /// The channel described by a [`ScenarioConfig`].
    pub fn from_scenario(config: &ScenarioConfig) -> Self {
        Self {
            misalignment: config.true_misalignment,
            lever_arm: config.estimator.lever_arm,
            bias: config.true_acc_bias,
            noise_sigma: config.acc_noise_sigma,
            differential_vibration: config.differential_vibration,
            vibration: config.vibration,
        }
    }
}

struct Channel {
    mounting: Mounting,
    bias: Vec2,
    noise_sigma: f64,
    differential_vibration: f64,
    diff_vib: RoadVibration,
    gauss: GaussianSampler,
}

impl Channel {
    fn new(config: &ChannelConfig) -> Self {
        Self {
            mounting: Mounting::new(config.misalignment, config.lever_arm),
            bias: config.bias,
            noise_sigma: config.noise_sigma,
            differential_vibration: config.differential_vibration,
            diff_vib: RoadVibration::new(config.vibration),
            gauss: GaussianSampler::new(),
        }
    }
}

/// Trajectory-driven synthetic instruments: the DMU model plus any
/// number of ACC channels, with common (rigid-body) and differential
/// (mount-flexure) road vibration — the source behind `scenario::run`
/// and the multi-sensor workloads.
pub struct SyntheticSource {
    trajectory: Arc<dyn Trajectory>,
    rng: StdRng,
    dmu: Dmu,
    common_vib: RoadVibration,
    channels: Vec<Channel>,
    acc_dt: f64,
    dmu_every: usize,
    steps: usize,
    next_step: usize,
}

impl SyntheticSource {
    /// Creates a source with no ACC channels yet (add them with
    /// [`SyntheticSource::with_channel`]).
    pub fn new(
        trajectory: impl IntoSharedTrajectory,
        dmu: DmuConfig,
        vibration: VibrationConfig,
        acc_rate_hz: f64,
        duration_s: f64,
        seed: u64,
    ) -> Self {
        let dmu = Dmu::new(dmu);
        let acc_dt = 1.0 / acc_rate_hz;
        Self {
            trajectory: trajectory.into_shared(),
            rng: mathx::rng::seeded_rng(seed),
            dmu_every: (dmu.dt() / acc_dt).round().max(1.0) as usize,
            dmu,
            common_vib: RoadVibration::new(vibration),
            channels: Vec::new(),
            acc_dt,
            steps: (duration_s / acc_dt).round() as usize,
            next_step: 0,
        }
    }

    /// Adds one ACC channel; channels are polled in insertion order and
    /// numbered from 0.
    pub fn with_channel(mut self, config: &ChannelConfig) -> Self {
        self.channels.push(Channel::new(config));
        self
    }

    /// The single-channel source described by a [`ScenarioConfig`] —
    /// event-for-event what the batch `scenario::run` used to simulate
    /// inline.
    pub fn from_scenario(trajectory: impl IntoSharedTrajectory, config: &ScenarioConfig) -> Self {
        Self::new(
            trajectory,
            config.dmu,
            config.vibration,
            config.acc_rate_hz,
            config.duration_s,
            config.seed,
        )
        .with_channel(&ChannelConfig::from_scenario(config))
    }

    fn emit_step(&mut self, out: &mut Vec<SensorEvent>) {
        let i = self.next_step;
        self.next_step += 1;
        let t = i as f64 * self.acc_dt;
        let state = self.trajectory.sample(t);
        let speed = state.speed();
        let f_true = state.specific_force_body();
        let w_true = state.angular_rate_b;
        // Common rigid-body vibration, sensed coherently by the IMU and
        // every ACC channel.
        let (df, dw) = self.common_vib.step(speed, &mut self.rng);
        let f_b = f_true + df;
        let w_b = w_true + dw;

        if i.is_multiple_of(self.dmu_every) {
            let sample = self.dmu.sample(f_b, w_b, &mut self.rng);
            out.push(SensorEvent::Dmu(sample));
        }

        for (sensor, ch) in self.channels.iter_mut().enumerate() {
            let f_sensor = ch.mounting.body_to_sensor(f_b, w_b, state.angular_accel_b);
            let (dfd, _) = ch.diff_vib.step(speed, &mut self.rng);
            let z = Vec2::new([
                f_sensor[0]
                    + ch.differential_vibration * dfd[0]
                    + ch.bias[0]
                    + ch.gauss.sample_scaled(&mut self.rng, 0.0, ch.noise_sigma),
                f_sensor[1]
                    + ch.differential_vibration * dfd[1]
                    + ch.bias[1]
                    + ch.gauss.sample_scaled(&mut self.rng, 0.0, ch.noise_sigma),
            ]);
            out.push(SensorEvent::Acc {
                sensor,
                time_s: t,
                z,
            });
        }
    }
}

impl SensorSource for SyntheticSource {
    fn dt(&self) -> f64 {
        self.acc_dt
    }

    fn duration_s(&self) -> Option<f64> {
        Some(self.steps as f64 * self.acc_dt)
    }

    fn poll(&mut self, t_to: f64, out: &mut Vec<SensorEvent>) {
        while self.next_step < self.steps && self.next_step as f64 * self.acc_dt <= t_to + TIME_EPS
        {
            self.emit_step(out);
        }
    }

    fn is_exhausted(&self) -> bool {
        self.next_step >= self.steps
    }
}

/// The full Figure-2 front end as a source: instruments sampled from a
/// trajectory, DMU packed onto CAN frames through the RS-232 bridge,
/// the ADXL202 eval packet stream, both UARTs at line rate, and the
/// reconstruction stage — events are what survives the serial chain.
pub struct CommsChainSource {
    trajectory: Arc<dyn Trajectory>,
    rng: StdRng,
    gauss: GaussianSampler,
    dmu: Dmu,
    acc: Adxl202,
    mounting: Mounting,
    common_vib: RoadVibration,
    diff_vib: RoadVibration,
    bridge_enc: BridgeEncoder,
    dmu_link: UartLink,
    acc_link: UartLink,
    dmu_fault: FaultInjector,
    acc_fault: FaultInjector,
    faults_active: bool,
    recon: Reconstructor,
    true_acc_bias: Vec2,
    differential_vibration: f64,
    acc_dt: f64,
    dmu_every: usize,
    steps: usize,
    next_step: usize,
    /// Reused per-step byte buffers (encode, line delivery, fault
    /// injection) — the comms chain heap-allocates nothing per sample
    /// once warmed up.
    enc_buf: Vec<u8>,
    link_buf: Vec<u8>,
    fault_buf: Vec<u8>,
}

impl CommsChainSource {
    /// Builds the chain for a scenario (instrument configs, truth,
    /// vibration and seed all come from `config`).
    pub fn from_scenario(trajectory: impl IntoSharedTrajectory, config: &ScenarioConfig) -> Self {
        let dmu = Dmu::new(config.dmu);
        let mut acc_cfg = Adxl202Config::ideal();
        acc_cfg.sample_rate_hz = config.acc_rate_hz;
        acc_cfg.channel.error.noise_std = config.acc_noise_sigma;
        acc_cfg.timer_resolution_us = 0.5;
        let acc_dt = 1.0 / config.acc_rate_hz;
        Self {
            trajectory: trajectory.into_shared(),
            rng: mathx::rng::seeded_rng(config.seed),
            gauss: GaussianSampler::new(),
            dmu_every: (dmu.dt() / acc_dt).round().max(1.0) as usize,
            recon: Reconstructor::new(1.0 / dmu.dt(), config.acc_rate_hz),
            dmu,
            acc: Adxl202::new(acc_cfg),
            mounting: Mounting::new(config.true_misalignment, config.estimator.lever_arm),
            common_vib: RoadVibration::new(config.vibration),
            diff_vib: RoadVibration::new(config.vibration),
            bridge_enc: BridgeEncoder::new(),
            dmu_link: UartLink::new(UartConfig::baud_38400()),
            acc_link: UartLink::new(UartConfig::baud_19200()),
            dmu_fault: config.link_faults.injector(),
            acc_fault: config.link_faults.injector(),
            faults_active: !config.link_faults.is_clean(),
            true_acc_bias: config.true_acc_bias,
            differential_vibration: config.differential_vibration,
            acc_dt,
            steps: (config.duration_s / acc_dt).round() as usize,
            next_step: 0,
            enc_buf: Vec::new(),
            link_buf: Vec::new(),
            fault_buf: Vec::new(),
        }
    }

    fn emit_step(&mut self, out: &mut Vec<SensorEvent>) {
        let i = self.next_step;
        self.next_step += 1;
        let t = i as f64 * self.acc_dt;
        let state = self.trajectory.sample(t);
        let speed = state.speed();
        let (df, dw) = self.common_vib.step(speed, &mut self.rng);
        let f_b = state.specific_force_body() + df;
        let w_b = state.angular_rate_b + dw;

        // DMU -> CAN -> bridge -> UART.
        if i.is_multiple_of(self.dmu_every) {
            let sample = self.dmu.sample(f_b, w_b, &mut self.rng);
            for frame in DmuCanCodec::encode(&sample) {
                self.bridge_enc.encode_into(&frame, &mut self.enc_buf);
                self.dmu_link.send(&self.enc_buf);
            }
        }
        // ACC -> eval packet -> UART (instrument noise lives in the
        // ADXL202 error model, not here).
        let f_sensor = self
            .mounting
            .body_to_sensor(f_b, w_b, state.angular_accel_b);
        let (dfd, _) = self.diff_vib.step(speed, &mut self.rng);
        let input = Vec2::new([
            f_sensor[0]
                + self.differential_vibration * dfd[0]
                + self.true_acc_bias[0]
                + self.gauss.sample_scaled(&mut self.rng, 0.0, 0.0),
            f_sensor[1] + self.differential_vibration * dfd[1] + self.true_acc_bias[1],
        ]);
        let duty = self.acc.sample(input, &mut self.rng);
        self.acc_link
            .send(&AdxlPacket::from_sample(&duty).to_bytes());

        // Serial delivery at line rate, wire faults, then
        // reconstruction — all through the pooled byte buffers. A clean
        // channel skips the injectors entirely (they would pass the
        // bytes through untouched and draw no randomness anyway), so
        // the fault-free stream is bit-identical to the pre-fault-wiring
        // chain and pays no per-poll copy.
        self.dmu_link.poll_into(self.acc_dt, &mut self.link_buf);
        if !self.link_buf.is_empty() {
            if self.faults_active {
                self.dmu_fault
                    .apply_into(&self.link_buf, &mut self.rng, &mut self.fault_buf);
                self.recon.push_dmu_bytes(&self.fault_buf);
            } else {
                self.recon.push_dmu_bytes(&self.link_buf);
            }
        }
        self.acc_link.poll_into(self.acc_dt, &mut self.link_buf);
        if !self.link_buf.is_empty() {
            if self.faults_active {
                self.acc_fault
                    .apply_into(&self.link_buf, &mut self.rng, &mut self.fault_buf);
                self.recon.push_acc_bytes(&self.fault_buf);
            } else {
                self.recon.push_acc_bytes(&self.link_buf);
            }
        }
        while let Some(msg) = self.recon.pop() {
            out.push(match msg {
                SensorMessage::Dmu(s) => SensorEvent::Dmu(s),
                SensorMessage::Acc(s) => SensorEvent::Acc {
                    sensor: 0,
                    time_s: s.time_s,
                    z: s.decode(),
                },
            });
        }
    }
}

impl SensorSource for CommsChainSource {
    fn dt(&self) -> f64 {
        self.acc_dt
    }

    fn duration_s(&self) -> Option<f64> {
        Some(self.steps as f64 * self.acc_dt)
    }

    fn poll(&mut self, t_to: f64, out: &mut Vec<SensorEvent>) {
        while self.next_step < self.steps && self.next_step as f64 * self.acc_dt <= t_to + TIME_EPS
        {
            self.emit_step(out);
        }
    }

    fn is_exhausted(&self) -> bool {
        self.next_step >= self.steps
    }

    fn stream_stats(&self) -> Option<StreamStats> {
        let mut stats = self.recon.stats();
        stats.fault_bits_flipped = self.dmu_fault.bits_flipped() + self.acc_fault.bits_flipped();
        stats.fault_bytes_dropped = self.dmu_fault.bytes_dropped() + self.acc_fault.bytes_dropped();
        stats.fault_bursts = self.dmu_fault.bursts() + self.acc_fault.bursts();
        stats.window_fault_bits_flipped =
            self.dmu_fault.window_bits_flipped() + self.acc_fault.window_bits_flipped();
        stats.window_fault_bytes_dropped =
            self.dmu_fault.window_bytes_dropped() + self.acc_fault.window_bytes_dropped();
        stats.window_fault_bursts = self.dmu_fault.window_bursts() + self.acc_fault.window_bursts();
        Some(stats)
    }

    fn reset_stats_window(&mut self) {
        self.dmu_fault.reset_window();
        self.acc_fault.reset_window();
    }
}

/// Replays captured serial bytes (DMU-bridge and ACC-eval streams)
/// through the reconstruction stage — fusing recorded drives instead
/// of live instruments.
pub struct UartReplaySource {
    /// `(delivery_time_s, is_dmu, bytes)` in time order.
    chunks: Vec<(f64, bool, Vec<u8>)>,
    recon: Reconstructor,
    acc_dt: f64,
    next_chunk: usize,
}

impl UartReplaySource {
    /// Creates a replay source; rates describe the original streams
    /// (they size the reconstruction timing windows).
    pub fn new(dmu_rate_hz: f64, acc_rate_hz: f64) -> Self {
        Self {
            chunks: Vec::new(),
            recon: Reconstructor::new(dmu_rate_hz, acc_rate_hz),
            acc_dt: 1.0 / acc_rate_hz,
            next_chunk: 0,
        }
    }

    /// Appends a chunk of the DMU-bridge byte stream delivered at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last pushed chunk.
    pub fn push_dmu_chunk(&mut self, t: f64, bytes: Vec<u8>) {
        self.push(t, true, bytes);
    }

    /// Appends a chunk of the ACC eval-board byte stream delivered at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last pushed chunk.
    pub fn push_acc_chunk(&mut self, t: f64, bytes: Vec<u8>) {
        self.push(t, false, bytes);
    }

    fn push(&mut self, t: f64, is_dmu: bool, bytes: Vec<u8>) {
        if let Some(&(last, _, _)) = self.chunks.last() {
            assert!(t >= last, "replay chunks must be pushed in time order");
        }
        self.chunks.push((t, is_dmu, bytes));
    }
}

impl SensorSource for UartReplaySource {
    fn dt(&self) -> f64 {
        self.acc_dt
    }

    fn duration_s(&self) -> Option<f64> {
        self.chunks.last().map(|&(t, _, _)| t)
    }

    fn poll(&mut self, t_to: f64, out: &mut Vec<SensorEvent>) {
        while let Some((t, is_dmu, bytes)) = self.chunks.get(self.next_chunk) {
            if *t > t_to + TIME_EPS {
                break;
            }
            if *is_dmu {
                self.recon.push_dmu_bytes(bytes);
            } else {
                self.recon.push_acc_bytes(bytes);
            }
            self.next_chunk += 1;
        }
        while let Some(msg) = self.recon.pop() {
            out.push(match msg {
                SensorMessage::Dmu(s) => SensorEvent::Dmu(s),
                SensorMessage::Acc(s) => SensorEvent::Acc {
                    sensor: 0,
                    time_s: s.time_s,
                    z: s.decode(),
                },
            });
        }
    }

    fn is_exhausted(&self) -> bool {
        self.next_chunk >= self.chunks.len()
    }

    fn stream_stats(&self) -> Option<StreamStats> {
        Some(self.recon.stats())
    }
}

/// Aggregate counters a session maintains as the stream flows.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionStats {
    /// Raw events dispatched.
    pub events: u64,
    /// Accepted measurement updates.
    pub updates: u64,
    /// Updates whose innovation exceeded its 3-sigma bound.
    pub exceeded: u64,
    /// Substrate range-saturation events, read off the backend
    /// ([`FusionBackend::saturations`]) — 0 for substrates that cannot
    /// saturate.
    pub saturations: u64,
}

impl SessionStats {
    /// Fraction of updates beyond 3 sigma.
    pub fn exceed_rate(&self) -> f64 {
        if self.updates > 0 {
            self.exceeded as f64 / self.updates as f64
        } else {
            0.0
        }
    }
}

/// Builder for [`FusionSession`].
pub struct SessionBuilder {
    source: Option<Box<dyn SensorSource>>,
    backend: Option<Box<dyn FusionBackend>>,
    sinks: Vec<Box<dyn EventSink>>,
    truth: EulerAngles,
    trace_decimation: Option<usize>,
    trace_expected_updates: usize,
}

impl SessionBuilder {
    /// Sets the event source (required).
    pub fn source(mut self, source: impl SensorSource + 'static) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// Sets the sensor source from an already boxed trait object (the
    /// form [`crate::spec::ScenarioSpec::into_source`] produces).
    pub fn source_boxed(mut self, source: Box<dyn SensorSource>) -> Self {
        self.source = Some(source);
        self
    }

    /// Sets the fusion backend (defaults to the paper's static-tuned
    /// 5-state estimator).
    pub fn backend(mut self, backend: impl FusionBackend) -> Self {
        self.backend = Some(Box::new(backend));
        self
    }

    /// Convenience: the production 5-state IEKF with `config` (native
    /// `f64`).
    pub fn estimator(self, config: EstimatorConfig) -> Self {
        self.backend(BoresightEstimator::new(config))
    }

    /// Convenience: the identical full 5-state IEKF running over an
    /// arbitrary arithmetic substrate.
    pub fn iekf(self, arith: impl Arith + Clone + 'static, config: EstimatorConfig) -> Self {
        self.backend(GenericBoresightEstimator::with_arith(arith, config))
    }

    /// Convenience: the 3-state ablation filter over `arith` with
    /// paper-style defaults.
    pub fn arith_backend(self, arith: impl Arith + 'static) -> Self {
        self.backend(ArithKf3::with_defaults(arith))
    }

    /// Attaches an event sink (use `Arc<Mutex<_>>` to keep a handle).
    pub fn sink(mut self, sink: impl EventSink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Records Figure-8/Figure-9 traces, keeping every `decimation`-th
    /// update.
    pub fn record_traces(mut self, decimation: usize) -> Self {
        self.trace_decimation = Some(decimation);
        self
    }

    /// Like [`SessionBuilder::record_traces`], but pre-sizes the trace
    /// buffers for `expected_updates` accepted updates so the recording
    /// hot path never reallocates (scenario-built sessions pass
    /// `duration x rate` here).
    pub fn record_traces_sized(mut self, decimation: usize, expected_updates: usize) -> Self {
        self.trace_decimation = Some(decimation);
        self.trace_expected_updates = expected_updates;
        self
    }

    /// Injected truth, for error reporting in [`RunResult`].
    pub fn truth(mut self, truth: EulerAngles) -> Self {
        self.truth = truth;
        self
    }

    /// Builds the session.
    ///
    /// # Panics
    ///
    /// Panics if no source was provided.
    pub fn build(self) -> FusionSession {
        let expected_updates = self.trace_expected_updates;
        FusionSession {
            source: self.source.expect("FusionSession needs a source"),
            backend: self.backend.unwrap_or_else(|| {
                Box::new(BoresightEstimator::new(EstimatorConfig::paper_static()))
            }),
            sinks: self.sinks,
            recorder: self
                .trace_decimation
                .map(|d| TraceRecorder::with_capacity(d, expected_updates)),
            truth: self.truth,
            time_s: 0.0,
            stats: SessionStats::default(),
            retunes_dispatched: 0,
            retune_log: Vec::with_capacity(32),
            finished: false,
            scratch: Vec::with_capacity(EVENT_SCRATCH_CAPACITY),
        }
    }
}

/// Initial capacity of the per-step event scratch buffer (a generous
/// bound on the events one natural step produces; the buffer grows
/// once and is then reused for the rest of the run).
const EVENT_SCRATCH_CAPACITY: usize = 64;

/// An incremental fusion run: one source, one backend, any sinks.
///
/// Sessions are stepped by a caller-chosen time slice, so several of
/// them — different scenarios, different [`Arith`] backends — can be
/// interleaved on one thread (see [`SessionGroup`]). Sessions own
/// everything they touch and are `Send`, so whole sessions can also be
/// fanned out across worker threads
/// ([`crate::spec::ScenarioSuite::run_parallel`]).
pub struct FusionSession {
    source: Box<dyn SensorSource>,
    backend: Box<dyn FusionBackend>,
    sinks: Vec<Box<dyn EventSink>>,
    recorder: Option<TraceRecorder>,
    truth: EulerAngles,
    time_s: f64,
    stats: SessionStats,
    retunes_dispatched: usize,
    retune_log: Vec<Retune>,
    finished: bool,
    scratch: Vec<SensorEvent>,
}

impl FusionSession {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            source: None,
            backend: None,
            sinks: Vec::new(),
            truth: EulerAngles::zero(),
            trace_decimation: None,
            trace_expected_updates: 0,
        }
    }

    /// Expected ACC sample count of a scenario — the trace pre-sizing
    /// hint every scenario-built session passes to
    /// [`SessionBuilder::record_traces_sized`].
    pub fn expected_updates(config: &ScenarioConfig) -> usize {
        (config.duration_s * config.acc_rate_hz).round().max(0.0) as usize
    }

    /// The session described by a [`ScenarioConfig`] over `trajectory`:
    /// synthetic source, production estimator, trace recording — the
    /// batch `scenario::run` in streaming form.
    pub fn from_scenario(trajectory: impl IntoSharedTrajectory, config: &ScenarioConfig) -> Self {
        Self::builder()
            .source(SyntheticSource::from_scenario(trajectory, config))
            .estimator(config.estimator)
            .truth(config.true_misalignment)
            .record_traces_sized(config.trace_decimation, Self::expected_updates(config))
            .build()
    }

    /// A scenario session whose full 5-state IEKF runs over `arith`
    /// instead of native `f64` — identical source and traces, different
    /// number system.
    pub fn iekf_from_scenario(
        trajectory: impl IntoSharedTrajectory,
        config: &ScenarioConfig,
        arith: impl Arith + Clone + 'static,
    ) -> Self {
        Self::builder()
            .source(SyntheticSource::from_scenario(trajectory, config))
            .iekf(arith, config.estimator)
            .truth(config.true_misalignment)
            .record_traces_sized(config.trace_decimation, Self::expected_updates(config))
            .build()
    }

    /// Session clock, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The source's natural step, seconds.
    pub fn source_dt(&self) -> f64 {
        self.source.dt()
    }

    /// `true` once every event has been produced and dispatched.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Aggregate stream counters. The saturation counter is read off
    /// the backend at call time, so it is always current.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.stats;
        stats.saturations = self.backend.saturations();
        stats
    }

    /// The injected truth this session reports errors against.
    pub fn truth(&self) -> EulerAngles {
        self.truth
    }

    /// The backend's short name.
    pub fn backend_label(&self) -> &'static str {
        self.backend.label()
    }

    /// The current estimate.
    pub fn estimate(&self) -> MisalignmentEstimate {
        self.backend.current_estimate()
    }

    /// The estimate for one sensor channel of a multi-sensor backend.
    pub fn estimate_for(&self, sensor: usize) -> MisalignmentEstimate {
        self.backend.estimate_for(sensor)
    }

    /// Adaptive retunes fired so far, across every sensor, in firing
    /// order — a borrow of the session's incrementally maintained log
    /// (no allocation per read).
    pub fn retunes(&self) -> &[Retune] {
        &self.retune_log
    }

    /// Serial-link statistics, if the source runs through a comms chain.
    pub fn stream_stats(&self) -> Option<StreamStats> {
        self.source.stream_stats()
    }

    /// Starts a fresh link-stats window on the source (see
    /// [`SensorSource::reset_stats_window`]): the `window_fault_*`
    /// fields of subsequent [`FusionSession::stream_stats`] snapshots
    /// count from here.
    pub fn begin_stats_window(&mut self) {
        self.source.reset_stats_window();
    }

    /// The backend, by concrete type.
    pub fn backend_as<B: FusionBackend>(&self) -> Option<&B> {
        self.backend.as_any().downcast_ref()
    }

    /// The backend, mutably, by concrete type.
    pub fn backend_as_mut<B: FusionBackend>(&mut self) -> Option<&mut B> {
        self.backend.as_any_mut().downcast_mut()
    }

    /// Advances the session clock by `dt` seconds, dispatching every
    /// event the source produces in that window. Returns the number of
    /// events dispatched.
    pub fn step(&mut self, dt: f64) -> usize {
        assert!(dt > 0.0, "step needs a positive time slice");
        self.time_s += dt;
        let mut events = std::mem::take(&mut self.scratch);
        events.clear();
        self.source.poll(self.time_s, &mut events);
        let count = events.len();
        for event in &events {
            self.dispatch(event);
        }
        self.scratch = events;
        // The clock tick fires even when the window carried no events,
        // so wall-clock-scheduled sinks keep running through stream
        // droughts (exactly as the pre-session batch loops did).
        if !self.sinks.is_empty() {
            let estimate = self.backend.current_estimate();
            for sink in &mut self.sinks {
                sink.on_time(self.time_s, &estimate);
            }
        }
        if !self.finished && self.source.is_exhausted() {
            self.finished = true;
            let estimate = self.backend.current_estimate();
            for sink in &mut self.sinks {
                sink.on_finish(&estimate);
            }
        }
        count
    }

    fn dispatch(&mut self, event: &SensorEvent) {
        self.stats.events += 1;
        for sink in &mut self.sinks {
            sink.on_event(event);
        }
        let update = match *event {
            SensorEvent::Dmu(ref sample) => {
                self.backend.ingest_dmu(sample);
                None
            }
            SensorEvent::Acc { sensor, time_s, z } => self.backend.ingest_acc(sensor, time_s, z),
        };
        if let Some(update) = update {
            self.stats.updates += 1;
            if update.exceeds_three_sigma() {
                self.stats.exceeded += 1;
            }
            let estimate = self.backend.current_estimate();
            if let Some(rec) = &mut self.recorder {
                rec.observe(&update, &estimate);
            }
            for sink in &mut self.sinks {
                sink.on_update(&update, &estimate);
            }
        }
        // Surface any retunes the backend's monitors (any sensor)
        // fired while ingesting this event — cursor-based, appending to
        // the session's own log instead of allocating a fresh Vec
        // (retunes are rare, but the count check runs per event).
        let count = self.backend.retune_count();
        if count > self.retunes_dispatched {
            let first_fresh = self.retune_log.len();
            let log = &mut self.retune_log;
            self.backend
                .for_each_retune_since(self.retunes_dispatched, &mut |r| log.push(*r));
            self.retunes_dispatched = count;
            for i in first_fresh..self.retune_log.len() {
                let retune = self.retune_log[i];
                for sink in &mut self.sinks {
                    sink.on_retune(&retune);
                }
            }
        }
    }

    /// Runs for `duration_s` seconds of stream time in natural-step
    /// slices.
    pub fn run_for(&mut self, duration_s: f64) {
        let end = self.time_s + duration_s;
        let dt = self.source.dt();
        while self.time_s + TIME_EPS < end && !self.finished {
            self.step(dt.min(end - self.time_s));
        }
        // A finished source no longer produces events, but the clock
        // still honours the requested window.
        if self.time_s < end {
            self.time_s = end;
        }
    }

    /// Runs until the source is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the source is unbounded (no `duration_s`).
    pub fn run_to_end(&mut self) {
        let total = self
            .source
            .duration_s()
            .expect("run_to_end needs a finite source");
        while !self.finished {
            let remaining = (total - self.time_s).max(self.source.dt());
            self.run_for(remaining);
        }
    }

    /// Finishes the run and produces the batch-style [`RunResult`].
    pub fn into_result(mut self) -> RunResult {
        if !self.finished && self.source.duration_s().is_some() {
            self.run_to_end();
        }
        let (residuals, estimates) = match self.recorder {
            Some(rec) => (rec.residuals, rec.estimates),
            None => (Vec::new(), Vec::new()),
        };
        RunResult {
            truth: self.truth,
            estimate: self.backend.current_estimate(),
            residuals,
            estimates,
            exceed_rate: self.stats.exceed_rate(),
            final_sigma: self.backend.measurement_sigma(),
            retune_count: self.backend.retune_count(),
        }
    }
}

/// How far one substrate's estimate has drifted from the reference
/// session's (see [`SessionGroup::divergence_from`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArithDivergence {
    /// The session's backend label (e.g. `iekf5/q16.16`).
    pub label: &'static str,
    /// Largest per-axis angle difference to the reference, degrees.
    pub max_abs_deg: f64,
    /// Accepted updates in this session.
    pub updates: u64,
}

/// A batch of sessions driven together — many scenarios, many
/// arithmetic backends, one thread.
#[derive(Default)]
pub struct SessionGroup {
    sessions: Vec<FusionSession>,
}

impl SessionGroup {
    /// An empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// The Table-1/Figure-9 arithmetic sweep over one scenario: three
    /// sessions running the *identical* full 5-state IEKF over native
    /// `f64` (index 0, the reference), Sabre-accounted Softfloat
    /// (index 1) and Q16.16 fixed point (index 2) — interleave them
    /// with [`SessionGroup::run_interleaved`] and read
    /// [`SessionGroup::divergence_from`]`(0)` at any point.
    pub fn full_iekf_sweep(trajectory: impl IntoSharedTrajectory, config: &ScenarioConfig) -> Self {
        let trajectory = trajectory.into_shared();
        let mut group = Self::new();
        group.push(FusionSession::iekf_from_scenario(
            Arc::clone(&trajectory),
            config,
            F64Arith::default(),
        ));
        group.push(FusionSession::iekf_from_scenario(
            Arc::clone(&trajectory),
            config,
            SoftArith::default(),
        ));
        group.push(FusionSession::iekf_from_scenario(
            trajectory,
            config,
            QArith::<16>::default(),
        ));
        group
    }

    /// Each session's estimate drift from session `reference`'s, in
    /// insertion order (the reference reports 0).
    ///
    /// # Panics
    ///
    /// Panics if `reference` is out of range.
    pub fn divergence_from(&self, reference: usize) -> Vec<ArithDivergence> {
        let mut out = Vec::with_capacity(self.sessions.len());
        self.divergence_into(reference, &mut out);
        out
    }

    /// [`SessionGroup::divergence_from`] into a caller-owned buffer
    /// (cleared first) — the allocation-free variant for callers that
    /// poll divergence every few stream seconds.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is out of range.
    pub fn divergence_into(&self, reference: usize, out: &mut Vec<ArithDivergence>) {
        out.clear();
        let anchor = self.sessions[reference].estimate().angles;
        out.extend(self.sessions.iter().map(|s| {
            let estimate = s.estimate();
            ArithDivergence {
                label: s.backend_label(),
                max_abs_deg: mathx::rad_to_deg(estimate.angles.error_to(&anchor).max_abs()),
                updates: estimate.updates,
            }
        }));
    }

    /// Adds a session and returns its index.
    pub fn push(&mut self, session: FusionSession) -> usize {
        self.sessions.push(session);
        self.sessions.len() - 1
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` if the group is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The sessions, in insertion order.
    pub fn sessions(&self) -> &[FusionSession] {
        &self.sessions
    }

    /// One session, mutably.
    pub fn session_mut(&mut self, index: usize) -> &mut FusionSession {
        &mut self.sessions[index]
    }

    /// Steps every unfinished session by `dt` seconds.
    pub fn step_all(&mut self, dt: f64) {
        for s in &mut self.sessions {
            if !s.is_finished() {
                s.step(dt);
            }
        }
    }

    /// `true` once every session has finished.
    pub fn all_finished(&self) -> bool {
        self.sessions.iter().all(FusionSession::is_finished)
    }

    /// Round-robins `chunk_s`-second slices across the group until
    /// every session finishes — the many-concurrent-sensors pattern.
    pub fn run_interleaved(&mut self, chunk_s: f64) {
        assert!(chunk_s > 0.0, "need a positive chunk");
        while !self.all_finished() {
            for s in &mut self.sessions {
                if !s.is_finished() {
                    s.run_for(chunk_s);
                }
            }
        }
    }

    /// Runs every unfinished session to completion on the
    /// [`crate::exec`] worker pool, one session per lane (`0` workers
    /// means one per core), leaving the group in insertion order. The
    /// thread-level counterpart of the SIMD-style
    /// [`crate::lanes::LaneIekf`]: sessions own their sources and
    /// backends, so lanes never interact and the results are
    /// bit-identical to a serial [`SessionGroup::run_interleaved`]
    /// pass (pinned by test).
    ///
    /// # Panics
    ///
    /// Panics if any unfinished session's source is unbounded.
    pub fn run_lanes(&mut self, workers: usize) {
        let sessions = std::mem::take(&mut self.sessions);
        self.sessions = crate::exec::map_parallel(sessions, workers, |mut s| {
            if !s.is_finished() {
                s.run_to_end();
            }
            s
        });
    }

    /// [`SessionGroup::run_lanes`] on a caller-owned persistent
    /// [`crate::exec::Pool`] — for hosts that amortize one warm pool
    /// across many sweeps instead of paying spawn/join per call.
    /// Results are bit-identical to [`SessionGroup::run_lanes`].
    ///
    /// # Panics
    ///
    /// Panics if any unfinished session's source is unbounded.
    pub fn run_lanes_on(&mut self, pool: &crate::exec::Pool) {
        let sessions = std::mem::take(&mut self.sessions);
        self.sessions = pool.map(sessions, |mut s| {
            if !s.is_finished() {
                s.run_to_end();
            }
            s
        });
    }

    /// Consumes the group, yielding the sessions.
    pub fn into_sessions(self) -> Vec<FusionSession> {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{F64Arith, QArith, SoftArith};
    use crate::scenario::{run_static, ScenarioConfig};
    use mathx::rad_to_deg;
    use vehicle::TiltTable;

    fn short_config(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::static_test(EulerAngles::from_degrees(2.0, -1.0, 1.5));
        cfg.duration_s = 60.0;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn session_matches_batch_run_exactly() {
        // The compat shim and a hand-built session must agree bit for
        // bit: they drive the same source, backend and recorder.
        let cfg = short_config(3);
        let batch = run_static(&cfg);
        let table = TiltTable::observability_sequence(20.0, cfg.duration_s / 8.0);
        let session = FusionSession::from_scenario(&table, &cfg);
        let streamed = session.into_result();
        assert_eq!(batch.estimate, streamed.estimate);
        assert_eq!(batch.residuals, streamed.residuals);
        assert_eq!(batch.estimates, streamed.estimates);
        assert_eq!(batch.exceed_rate, streamed.exceed_rate);
    }

    #[test]
    fn stepping_by_odd_slices_equals_one_shot() {
        let cfg = short_config(4);
        let table = TiltTable::observability_sequence(20.0, cfg.duration_s / 8.0);
        let mut incremental = FusionSession::from_scenario(&table, &cfg);
        while !incremental.is_finished() {
            incremental.step(0.7303); // deliberately unaligned with acc_dt
        }
        let a = incremental.into_result();
        let b = FusionSession::from_scenario(&table, &cfg).into_result();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.residuals, b.residuals);
    }

    #[test]
    fn arith_backends_interleave_in_one_group() {
        let cfg = short_config(5);
        let table = TiltTable::observability_sequence(20.0, cfg.duration_s / 8.0);
        let mut group = SessionGroup::new();
        group.push(
            FusionSession::builder()
                .source(SyntheticSource::from_scenario(&table, &cfg))
                .arith_backend(F64Arith::default())
                .truth(cfg.true_misalignment)
                .build(),
        );
        group.push(
            FusionSession::builder()
                .source(SyntheticSource::from_scenario(&table, &cfg))
                .arith_backend(QArith::<16>::default())
                .truth(cfg.true_misalignment)
                .build(),
        );
        group.run_interleaved(0.5);
        assert!(group.all_finished());
        let [f64_s, fixed_s] = group.sessions() else {
            panic!("two sessions")
        };
        assert_eq!(f64_s.backend_label(), "f64");
        assert_eq!(fixed_s.backend_label(), "q16.16");
        // Both 3-state filters see the full biased measurement (no bias
        // states), so just check they tracked the same answer and the
        // float path did no worse than fixed point.
        let err =
            |s: &FusionSession| rad_to_deg(s.estimate().angles.error_to(&s.truth()).max_abs());
        assert!(err(f64_s) < 1.0, "f64 err {}", err(f64_s));
        assert!(err(fixed_s) < 2.0, "fixed err {}", err(fixed_s));
    }

    #[test]
    fn softfloat_backend_accounts_cycles() {
        let cfg = short_config(6);
        let table = TiltTable::observability_sequence(20.0, cfg.duration_s / 8.0);
        let mut session = FusionSession::builder()
            .source(SyntheticSource::from_scenario(&table, &cfg))
            .arith_backend(SoftArith::default())
            .build();
        session.run_for(5.0);
        let backend: &ArithKf3<SoftArith> = session.backend_as().expect("softfloat backend");
        let stats = backend.kf().arith().fpu.stats();
        assert!(stats.cycles > 0, "softfloat cycles should accumulate");
        assert_eq!(session.backend_label(), "softfloat/f64");
    }

    #[test]
    fn full_iekf_sweep_interleaves_three_substrates() {
        let mut cfg = short_config(12);
        cfg.duration_s = 30.0;
        let table = TiltTable::observability_sequence(20.0, cfg.duration_s / 8.0);
        let mut group = SessionGroup::full_iekf_sweep(&table, &cfg);
        group.run_interleaved(0.5);
        assert!(group.all_finished());
        let div = group.divergence_from(0);
        assert_eq!(div.len(), 3);
        assert_eq!(div[0].label, "iekf5/f64");
        assert_eq!(div[1].label, "iekf5/softfloat");
        assert_eq!(div[2].label, "iekf5/q16.16");
        // The reference diverges from itself by exactly nothing, and
        // IEEE emulation is bit-identical to the native path.
        assert_eq!(div[0].max_abs_deg, 0.0);
        assert_eq!(div[1].max_abs_deg, 0.0, "softfloat must match f64");
        // Fixed point drifts, but the trust region keeps it bounded.
        assert!(div[2].max_abs_deg <= 2.0 * rad_to_deg(cfg.estimator.filter.angle_limit));
        // The emulated session accounted Sabre cycles for the full
        // 5-state algorithm.
        let soft = group.sessions()[1]
            .backend_as::<crate::estimator::GenericBoresightEstimator<SoftArith>>()
            .expect("softfloat backend");
        assert!(soft.filter().arith().cycles() > 0);
        let fixed = group.sessions()[2]
            .backend_as::<crate::estimator::GenericBoresightEstimator<QArith<16>>>()
            .expect("fixed backend");
        assert!(fixed.filter().arith().counts().total() > 0);
    }

    #[test]
    fn run_lanes_matches_interleaved_bitwise() {
        let cfg = short_config(13);
        let table = TiltTable::observability_sequence(20.0, cfg.duration_s / 8.0);
        let build = || SessionGroup::full_iekf_sweep(&table, &cfg);
        let mut serial = build();
        serial.run_interleaved(0.5);
        let mut lanes = build();
        lanes.run_lanes(4);
        assert!(lanes.all_finished());
        for (a, b) in serial.sessions().iter().zip(lanes.sessions()) {
            assert_eq!(a.backend_label(), b.backend_label());
            let (ea, eb) = (a.estimate(), b.estimate());
            assert_eq!(ea.angles.roll.to_bits(), eb.angles.roll.to_bits());
            assert_eq!(ea.angles.pitch.to_bits(), eb.angles.pitch.to_bits());
            assert_eq!(ea.angles.yaw.to_bits(), eb.angles.yaw.to_bits());
            assert_eq!(ea.updates, eb.updates);
        }
    }

    #[test]
    fn sinks_observe_events_updates_and_retunes() {
        #[derive(Default)]
        struct Counter {
            events: usize,
            updates: usize,
            finishes: usize,
        }
        impl EventSink for Counter {
            fn on_event(&mut self, _: &SensorEvent) {
                self.events += 1;
            }
            fn on_update(&mut self, _: &KalmanUpdate, _: &MisalignmentEstimate) {
                self.updates += 1;
            }
            fn on_finish(&mut self, _: &MisalignmentEstimate) {
                self.finishes += 1;
            }
        }
        let mut cfg = short_config(7);
        cfg.duration_s = 10.0;
        let table = TiltTable::level(10.0);
        let counter = Arc::new(Mutex::new(Counter::default()));
        let retunes = Arc::new(Mutex::new(RetuneLog::default()));
        let mut session = FusionSession::builder()
            .source(SyntheticSource::from_scenario(&table, &cfg))
            .estimator(cfg.estimator)
            .sink(Arc::clone(&counter))
            .sink(Arc::clone(&retunes))
            .build();
        session.run_to_end();
        let c = counter.lock().unwrap();
        assert!(c.events > 2000, "events {}", c.events);
        assert!(c.updates > 1900, "updates {}", c.updates);
        assert_eq!(c.finishes, 1);
        assert_eq!(
            retunes.lock().unwrap().retunes.len(),
            session.retunes().len()
        );
    }

    #[test]
    fn latest_estimate_sink_tracks_backend() {
        let cfg = short_config(8);
        let table = TiltTable::level(cfg.duration_s);
        let latest = Arc::new(Mutex::new(LatestEstimateSink::default()));
        let mut session = FusionSession::builder()
            .source(SyntheticSource::from_scenario(&table, &cfg))
            .estimator(cfg.estimator)
            .sink(Arc::clone(&latest))
            .build();
        session.run_for(5.0);
        let seen = latest.lock().unwrap().latest.expect("updates flowed");
        assert_eq!(seen, session.estimate());
    }

    #[test]
    fn uart_replay_reconstructs_recorded_streams() {
        // Record a short comms-chain run, then replay the captured
        // bytes: the replayed session must converge like the live one.
        let cfg = short_config(9);
        let mut replay = UartReplaySource::new(1.0 / Dmu::new(cfg.dmu).dt(), cfg.acc_rate_hz);
        // "Capture": encode DMU samples onto the bridge byte stream the
        // way the live chain does.
        let mut rng = mathx::rng::seeded_rng(1);
        let mut dmu = Dmu::new(cfg.dmu);
        let mut enc = BridgeEncoder::new();
        let g = mathx::STANDARD_GRAVITY;
        for i in 0..50 {
            let t = i as f64 * dmu.dt();
            let s = dmu.sample(Vec3::new([0.0, 0.0, g]), Vec3::zeros(), &mut rng);
            let mut bytes = Vec::new();
            for frame in DmuCanCodec::encode(&s) {
                bytes.extend_from_slice(&enc.encode(&frame));
            }
            replay.push_dmu_chunk(t, bytes);
        }
        let mut session = FusionSession::builder()
            .source(replay)
            .estimator(cfg.estimator)
            .build();
        session.run_for(1.0);
        let stats = session.stream_stats().expect("replay has stream stats");
        assert!(stats.dmu_samples > 40, "dmu {}", stats.dmu_samples);
        assert_eq!(stats.dmu_errors, 0);
    }

    #[test]
    fn run_for_honours_the_clock_past_exhaustion() {
        let mut cfg = short_config(10);
        cfg.duration_s = 2.0;
        let table = TiltTable::level(2.0);
        let mut session = FusionSession::from_scenario(&table, &cfg);
        session.run_for(5.0);
        assert!(session.is_finished());
        assert!((session.time_s() - 5.0).abs() < 1e-6);
    }
}
