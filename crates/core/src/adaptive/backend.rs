//! The supervisor: a [`FusionBackend`] that hot-swaps the substrate of
//! the running 5-state IEKF.

use super::context::{ContextConfig, ContextMonitor, ContextState};
use super::ledger::{snapshot_transfer_cycles, ReconfigEvent, ReconfigLedger};
use super::policy::{HysteresisPolicy, PinnedPolicy, ReconfigPolicy, SubstrateId};
use crate::arith::{Arith, F32Arith, F64Arith, OpCounts, QArith, SoftArith};
use crate::estimator::{EstimatorConfig, GenericBoresightEstimator, MisalignmentEstimate};
use crate::filter::KalmanUpdate;
use crate::monitor::Retune;
use crate::session::FusionBackend;
use mathx::Vec2;
use sensors::DmuSample;
use std::any::Any;

/// A switch whose triggering window gated out more than this fraction
/// of its measurement attempts transfers a *reconditioned* covariance
/// (see [`AdaptiveBackend::switch_to`]): majority rejection means the
/// exported `P` no longer reflects the estimate error. A healthy
/// filter never gets near this — the bench scenarios' `f64` windows
/// stay under a few percent even mid fault storm.
const RECONDITION_EXCEED_RATE: f64 = 0.5;

/// Reopen floor for reconditioned transfers, as a fraction of the
/// configured initial sigmas — the same `0.5` the filter's trust
/// region uses when it re-opens a clamped component's variance.
const RECONDITION_SIGMA_FRACTION: f64 = 0.5;

/// The currently resident estimator, one concrete instantiation per
/// switchable substrate. An enum rather than a `Box<dyn ...>` so the
/// steady-state dispatch is a jump, not a vtable + heap indirection,
/// and so the whole supervisor stays a plain `Send` value. The size
/// spread between the float and `i32` fixed-point variants is fine:
/// exactly one instance lives per supervisor, never in bulk storage,
/// and boxing the large variants would put a pointer chase on every
/// sample of the hot path.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
enum ActiveEstimator {
    F64(GenericBoresightEstimator<F64Arith>),
    F32(GenericBoresightEstimator<F32Arith>),
    Softfloat(GenericBoresightEstimator<SoftArith>),
    Q16(GenericBoresightEstimator<QArith<16>>),
    Q24(GenericBoresightEstimator<QArith<24>>),
}

/// Dispatches `$body` over the active estimator, read-only.
macro_rules! with_active {
    ($active:expr, $est:ident => $body:expr) => {
        match $active {
            ActiveEstimator::F64($est) => $body,
            ActiveEstimator::F32($est) => $body,
            ActiveEstimator::Softfloat($est) => $body,
            ActiveEstimator::Q16($est) => $body,
            ActiveEstimator::Q24($est) => $body,
        }
    };
}

impl ActiveEstimator {
    /// A fresh estimator over `id`'s default arithmetic context.
    fn fresh(id: SubstrateId, config: EstimatorConfig) -> Self {
        match id {
            SubstrateId::F64 => Self::F64(GenericBoresightEstimator::with_arith(
                F64Arith::default(),
                config,
            )),
            SubstrateId::F32 => Self::F32(GenericBoresightEstimator::with_arith(
                F32Arith::default(),
                config,
            )),
            SubstrateId::Softfloat => Self::Softfloat(GenericBoresightEstimator::with_arith(
                SoftArith::default(),
                config,
            )),
            SubstrateId::Q16_16 => Self::Q16(GenericBoresightEstimator::with_arith(
                QArith::<16>::default(),
                config,
            )),
            SubstrateId::Q8_24 => Self::Q24(GenericBoresightEstimator::with_arith(
                QArith::<24>::default(),
                config,
            )),
        }
    }
}

/// A context-aware [`FusionBackend`] wrapping one
/// [`GenericBoresightEstimator`] at a time and migrating its full
/// state between substrates when the [`ReconfigPolicy`] fires and the
/// admission check ([`AdaptiveBackend::admits`]) agrees the target
/// can hold the filter.
///
/// Delegation is pass-through: the inner estimator sees exactly the
/// event sequence a static session would feed it, and context is read
/// only from the `f64`-side records each call already returns — which
/// is why a never-firing policy is bit-identical to the static run
/// (pinned by test). Op, cycle and saturation totals are cumulative
/// across switches: the outgoing substrate's ledger is folded into
/// the supervisor's carried totals before it is dropped, and every
/// transfer charges [`snapshot_transfer_cycles`].
///
/// # Examples
///
/// ```
/// use boresight::adaptive::{AdaptiveBackend, HysteresisPolicy, SubstrateId};
/// use boresight::estimator::EstimatorConfig;
/// use boresight::session::{FusionBackend, FusionSession};
/// use boresight::catalog;
///
/// let spec = catalog::paper_static().with_duration(20.0);
/// let backend = AdaptiveBackend::new(
///     spec.config().estimator,
///     SubstrateId::Q16_16,
///     Box::new(HysteresisPolicy::default()),
/// );
/// let mut session = FusionSession::builder()
///     .source_boxed(spec.into_source(spec.lower_trajectory()))
///     .backend(backend)
///     .truth(spec.truth)
///     .build();
/// session.run_to_end();
/// let supervisor = session.backend_as::<AdaptiveBackend>().unwrap();
/// assert!(supervisor.ledger().validate(SubstrateId::Q16_16).is_ok());
/// ```
pub struct AdaptiveBackend {
    config: EstimatorConfig,
    active: ActiveEstimator,
    active_id: SubstrateId,
    initial_id: SubstrateId,
    policy: Box<dyn ReconfigPolicy>,
    context: ContextMonitor,
    ledger: ReconfigLedger,
    carried_ops: OpCounts,
    carried_cycles: u64,
    vetoed_switches: u64,
}

impl AdaptiveBackend {
    /// A supervisor starting on `initial` under `policy`, with the
    /// default context window.
    pub fn new(
        config: EstimatorConfig,
        initial: SubstrateId,
        policy: Box<dyn ReconfigPolicy>,
    ) -> Self {
        Self::with_context(config, initial, policy, ContextConfig::default())
    }

    /// [`AdaptiveBackend::new`] with an explicit context window.
    pub fn with_context(
        config: EstimatorConfig,
        initial: SubstrateId,
        policy: Box<dyn ReconfigPolicy>,
        context: ContextConfig,
    ) -> Self {
        Self {
            active: ActiveEstimator::fresh(initial, config),
            config,
            active_id: initial,
            initial_id: initial,
            policy,
            context: ContextMonitor::new(context),
            ledger: ReconfigLedger::new(),
            carried_ops: OpCounts::default(),
            carried_cycles: 0,
            vetoed_switches: 0,
        }
    }

    /// The default supervisor the session/spec layers attach for
    /// [`crate::spec::Substrate::Adaptive`]: start on Q16.16, default
    /// hysteresis band (Softfloat under stress).
    pub fn default_for(config: EstimatorConfig) -> Self {
        Self::new(
            config,
            SubstrateId::Q16_16,
            Box::new(HysteresisPolicy::default()),
        )
    }

    /// A supervisor whose policy never fires — the zero-switch
    /// bit-identity reference over `substrate`.
    pub fn pinned(config: EstimatorConfig, substrate: SubstrateId) -> Self {
        Self::new(config, substrate, Box::new(PinnedPolicy))
    }

    /// The substrate currently executing the filter.
    pub fn active_substrate(&self) -> SubstrateId {
        self.active_id
    }

    /// The substrate the session started on.
    pub fn initial_substrate(&self) -> SubstrateId {
        self.initial_id
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The switch log.
    pub fn ledger(&self) -> &ReconfigLedger {
        &self.ledger
    }

    /// Substrate switches so far.
    pub fn switch_count(&self) -> u64 {
        self.ledger.total_switches()
    }

    /// Policy verdicts the admission check refused (see
    /// [`AdaptiveBackend::admits`]).
    pub fn vetoed_switches(&self) -> u64 {
        self.vetoed_switches
    }

    /// Whether `target` can run this filter *right now* — the
    /// supervisor's admission check, consulted before every switch.
    ///
    /// A policy says *when* to move; whether the destination's number
    /// format can hold the filter at all is a property of the filter's
    /// working scales, so the supervisor checks it centrally instead
    /// of trusting every policy to know every substrate. The binding
    /// scale is the measurement-update gate: the innovation covariance
    /// is at least `R = sigma^2` (`sigma` the retuned measurement
    /// 1-sigma), so the 2x2 inversion forms a determinant of order
    /// `sigma^4` and inverse entries of order `1 / sigma^2`. If the
    /// determinant quantizes to zero the gain explodes off a zero
    /// divide; if the inverse saturates the update is garbage — both
    /// observed failure modes of the Q formats on the dynamic
    /// scenarios, and both checkable in `f64` for free before
    /// committing to a transfer. Precision targets (`f64`, softfloat,
    /// `f32`) always pass.
    pub fn admits(&self, target: SubstrateId) -> bool {
        let sigma = with_active!(&self.active, e => e.current_measurement_sigma());
        let s_floor = sigma * sigma;
        let quantum = target.conversion_bound(0.0);
        s_floor * s_floor >= quantum && 1.0 / s_floor <= target.representable_limit()
    }

    /// Cumulative op ledger: every substrate segment so far plus the
    /// active one.
    pub fn total_ops(&self) -> OpCounts {
        let mut total = self.carried_ops;
        let counts = with_active!(&self.active, e => e.filter().arith().counts());
        total.accumulate(&counts);
        total
    }

    /// Cumulative modelled cycles, including every snapshot transfer.
    pub fn total_cycles(&self) -> u64 {
        self.carried_cycles + with_active!(&self.active, e => e.filter().arith().cycles())
    }

    /// Cumulative range-saturation events across every substrate
    /// segment.
    pub fn total_saturations(&self) -> u64 {
        self.total_ops().saturations
    }

    /// Migrates the running filter onto `target`: snapshot out, fold
    /// the outgoing ledger into the carried totals, charge the
    /// transfer, import into a fresh estimator, log the event.
    ///
    /// If the window that triggered the switch gated out a majority
    /// of its measurement attempts — or saw *any* range saturation,
    /// which means the outgoing arithmetic overflowed mid-algorithm —
    /// the exported covariance is no longer an honest statement of
    /// the estimate's error. The classic failure is fixed point
    /// collapsing `P` to its quantization floor while the estimate is
    /// still degrees off, which would freeze the incoming substrate
    /// behind its own gate.
    /// The supervisor then floors the snapshot's covariance diagonal
    /// at the same `(0.5 * initial sigma)^2` reopen floor the
    /// filter's trust region uses, and the incoming substrate
    /// re-converges instead. Calm switches import the covariance
    /// verbatim: a converged, trustworthy `P` keeps gains small, which
    /// is exactly what lets a coarse substrate hold a converged
    /// estimate cheaply.
    fn switch_to(&mut self, target: SubstrateId, ctx: &ContextState) {
        let mut snapshot = with_active!(&self.active, e => e.export_snapshot());
        if ctx.exceed_rate > RECONDITION_EXCEED_RATE || ctx.saturation_rate > 0.0 {
            let filter = &self.config.filter;
            snapshot.filter.recondition_diagonal(
                (filter.initial_angle_sigma * RECONDITION_SIGMA_FRACTION).powi(2),
                (filter.initial_bias_sigma * RECONDITION_SIGMA_FRACTION).powi(2),
            );
        }
        let (counts, cycles) = with_active!(&self.active, e => {
            let arith = e.filter().arith();
            (arith.counts(), arith.cycles())
        });
        self.carried_ops.accumulate(&counts);
        let transfer = snapshot_transfer_cycles();
        self.carried_cycles += cycles + transfer;
        let mut next = ActiveEstimator::fresh(target, self.config);
        with_active!(&mut next, e => e.import_snapshot(&snapshot));
        self.ledger.record(ReconfigEvent {
            at_time_s: ctx.time_s,
            at_update: snapshot.filter.updates,
            from: self.active_id,
            to: target,
            reason: self.policy.name(),
            context: *ctx,
            transfer_cycles: transfer,
        });
        self.active = next;
        self.active_id = target;
    }
}

impl std::fmt::Debug for AdaptiveBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveBackend")
            .field("active", &self.active_id)
            .field("policy", &self.policy.name())
            .field("switches", &self.switch_count())
            .finish_non_exhaustive()
    }
}

impl FusionBackend for AdaptiveBackend {
    fn ingest_dmu(&mut self, sample: &DmuSample) {
        with_active!(&mut self.active, e => e.on_dmu(sample));
    }

    fn ingest_acc(&mut self, sensor: usize, time_s: f64, z: Vec2) -> Option<KalmanUpdate> {
        assert_eq!(sensor, 0, "AdaptiveBackend fuses a single sensor");
        let update = with_active!(&mut self.active, e => e.on_acc(time_s, z));
        let saturations = self.total_saturations();
        let retunes = with_active!(&self.active, e => e.retunes().len() as u64);
        self.context
            .observe_acc(time_s, update.as_ref(), saturations, retunes);
        if self.context.decision_due() {
            let ctx = self.context.take_state();
            if let Some(target) = self.policy.decide(&ctx, self.active_id) {
                if target != self.active_id {
                    if self.admits(target) {
                        self.switch_to(target, &ctx);
                    } else {
                        self.vetoed_switches += 1;
                    }
                }
            }
        }
        update
    }

    fn current_estimate(&self) -> MisalignmentEstimate {
        with_active!(&self.active, e => e.estimate())
    }

    fn measurement_sigma(&self) -> f64 {
        with_active!(&self.active, e => e.current_measurement_sigma())
    }

    fn retunes(&self) -> &[Retune] {
        // The monitor is cloned across switches, so this history is
        // continuous over the whole session.
        with_active!(&self.active, e => e.retunes())
    }

    fn saturations(&self) -> u64 {
        self.total_saturations()
    }

    fn label(&self) -> &'static str {
        "iekf5/adaptive"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
