//! The reconfiguration ledger: when, why, and at what cost.

use super::context::ContextState;
use super::policy::SubstrateId;
use super::snapshot::PACKED_COV;
use crate::model::STATE_DIM;

/// Modelled cycles to move one 32-bit word of snapshot state between
/// substrates — same spirit as the `QArith` per-op cycle model: a
/// load/store pair through the reconfiguration buffer.
pub const TRANSFER_CYCLES_PER_WORD: u64 = 2;

/// 32-bit words a snapshot transfer moves: every `f64` quantity is two
/// words (state vector, packed covariance, the six IMU front-end
/// values, the measurement sigma and the last-update timestamp), plus
/// two words each for the update/rejection counters.
pub const TRANSFER_WORDS: u64 = 2 * (STATE_DIM as u64 + PACKED_COV as u64 + 6 + 2) + 2 * 2;

/// Modelled cost of one snapshot transfer, charged to the supervisor's
/// cumulative cycle ledger at every switch and recorded per event.
pub const fn snapshot_transfer_cycles() -> u64 {
    TRANSFER_WORDS * TRANSFER_CYCLES_PER_WORD
}

/// One substrate switch, as recorded by the supervisor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReconfigEvent {
    /// Stream time of the decision, seconds.
    pub at_time_s: f64,
    /// Accepted updates completed when the switch happened.
    pub at_update: u64,
    /// The outgoing substrate.
    pub from: SubstrateId,
    /// The incoming substrate.
    pub to: SubstrateId,
    /// The policy that fired ([`super::policy::ReconfigPolicy::name`]).
    pub reason: &'static str,
    /// The context window that triggered the decision — the *why* in
    /// numbers.
    pub context: ContextState,
    /// Modelled snapshot-transfer cycles charged for this switch.
    pub transfer_cycles: u64,
}

/// The append-only switch log. Capacity is reserved up front
/// (switches are rare, hold-off-limited events); past the cap the
/// count keeps growing but events are dropped rather than reallocating
/// mid-stream.
#[derive(Debug)]
pub struct ReconfigLedger {
    events: Vec<ReconfigEvent>,
    dropped: u64,
}

/// Retained-event capacity of a ledger.
const LEDGER_CAPACITY: usize = 64;

impl ReconfigLedger {
    /// An empty ledger with its capacity pre-reserved.
    pub fn new() -> Self {
        Self {
            events: Vec::with_capacity(LEDGER_CAPACITY),
            dropped: 0,
        }
    }

    /// Appends one switch.
    pub fn record(&mut self, event: ReconfigEvent) {
        if self.events.len() < self.events.capacity() {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events, in switch order.
    pub fn events(&self) -> &[ReconfigEvent] {
        &self.events
    }

    /// Total switches over the session (including any past capacity).
    pub fn total_switches(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// Events dropped past capacity (0 in any sane run).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `true` when no switch ever fired.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Total modelled transfer cycles across retained events.
    pub fn transfer_cycles(&self) -> u64 {
        self.events.iter().map(|e| e.transfer_cycles).sum()
    }

    /// Structural well-formedness — the property the CI smoke gate
    /// asserts: the chain starts at `initial`, every event actually
    /// changes substrate, consecutive events are continuous
    /// (`from == previous.to`) and time/update stamps never go
    /// backwards.
    pub fn validate(&self, initial: SubstrateId) -> Result<(), String> {
        let mut expected_from = initial;
        let mut last_time = f64::NEG_INFINITY;
        let mut last_update = 0u64;
        for (i, event) in self.events.iter().enumerate() {
            if event.from == event.to {
                return Err(format!(
                    "event {i}: switch to the same substrate {}",
                    event.to
                ));
            }
            if event.from != expected_from {
                return Err(format!(
                    "event {i}: chain break — from {} but the previous substrate was {}",
                    event.from, expected_from
                ));
            }
            if event.at_time_s < last_time {
                return Err(format!("event {i}: time went backwards"));
            }
            if event.at_update < last_update {
                return Err(format!("event {i}: update counter went backwards"));
            }
            if event.transfer_cycles != snapshot_transfer_cycles() {
                return Err(format!("event {i}: unexpected transfer cost"));
            }
            expected_from = event.to;
            last_time = event.at_time_s;
            last_update = event.at_update;
        }
        Ok(())
    }
}

impl Default for ReconfigLedger {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t: f64, from: SubstrateId, to: SubstrateId) -> ReconfigEvent {
        ReconfigEvent {
            at_time_s: t,
            at_update: (t * 100.0) as u64,
            from,
            to,
            reason: "hysteresis",
            context: ContextState::default(),
            transfer_cycles: snapshot_transfer_cycles(),
        }
    }

    #[test]
    fn validates_a_continuous_chain_and_rejects_breaks() {
        let mut ledger = ReconfigLedger::new();
        ledger.record(event(1.0, SubstrateId::Q16_16, SubstrateId::Softfloat));
        ledger.record(event(4.0, SubstrateId::Softfloat, SubstrateId::Q16_16));
        assert!(ledger.validate(SubstrateId::Q16_16).is_ok());
        assert_eq!(ledger.total_switches(), 2);
        assert_eq!(ledger.transfer_cycles(), 2 * snapshot_transfer_cycles());

        // Wrong starting substrate.
        assert!(ledger.validate(SubstrateId::F64).is_err());

        // Chain break.
        ledger.record(event(5.0, SubstrateId::F32, SubstrateId::F64));
        assert!(ledger.validate(SubstrateId::Q16_16).is_err());
    }

    #[test]
    fn capacity_overflow_counts_instead_of_reallocating() {
        let mut ledger = ReconfigLedger::new();
        let cap = ledger.events.capacity();
        for i in 0..(cap + 3) {
            let (from, to) = if i % 2 == 0 {
                (SubstrateId::Q16_16, SubstrateId::Softfloat)
            } else {
                (SubstrateId::Softfloat, SubstrateId::Q16_16)
            };
            ledger.record(event(i as f64, from, to));
        }
        assert_eq!(ledger.events().len(), cap);
        assert_eq!(ledger.dropped(), 3);
        assert_eq!(ledger.total_switches(), cap as u64 + 3);
        assert_eq!(ledger.events.capacity(), cap, "no reallocation");
    }
}
