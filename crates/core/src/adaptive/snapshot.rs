//! Substrate-agnostic filter state transfer.
//!
//! A snapshot is the filter's full algorithmic state expressed in
//! `f64` — the one format every [`Arith`] converts to exactly for the
//! values it can represent. Export reads each unique quantity once
//! through [`Arith::to_f64`]; import writes each unique quantity once
//! through [`Arith::num`] and mirrors the covariance, preserving the
//! filter's exact-bitwise-symmetry invariant on `P`. Neither
//! conversion is a counted operation, so a snapshot never perturbs the
//! substrate's op or cycle ledger (the supervisor charges a separate,
//! documented transfer cost per switch — see
//! [`crate::adaptive::ledger`]).

use crate::arith::Arith;
use crate::model::STATE_DIM;
use crate::monitor::ResidualMonitor;
use mathx::Vec3;
use sensors::DmuSample;

/// Unique entries of the symmetric `STATE_DIM x STATE_DIM` covariance
/// (upper triangle, row-major).
pub const PACKED_COV: usize = STATE_DIM * (STATE_DIM + 1) / 2;

/// The filter's algorithmic state, independent of the substrate it
/// was running on: state vector, packed-symmetric covariance, the
/// gate/iteration counters and the retunable measurement sigma.
///
/// The per-phase op/cycle attribution ([`crate::arith::PhaseLedger`])
/// rides along so accounting survives a substrate swap; the substrate
/// op ledger itself stays with the outgoing context (the supervisor
/// folds it into its cumulative totals instead).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilterSnapshot {
    /// State vector (misalignment angles + ACC biases), `f64`.
    pub x: [f64; STATE_DIM],
    /// Upper triangle of the covariance, row-major, `f64`.
    pub p_upper: [f64; PACKED_COV],
    /// Accepted measurement updates so far.
    pub updates: u64,
    /// Gate-rejected measurements so far.
    pub rejected: u64,
    /// Measurement noise 1-sigma currently in force (retunes carry
    /// over the swap).
    pub measurement_sigma: f64,
    /// Per-phase op/cycle attribution accumulated so far.
    pub phases: crate::arith::PhaseLedger,
}

impl FilterSnapshot {
    /// Floors the covariance diagonal — angle states at
    /// `angle_floor`, bias states at `bias_floor` (both variances,
    /// not sigmas). Adds a non-negative diagonal matrix, so a
    /// positive-(semi)definite covariance stays that way.
    ///
    /// The supervisor applies this when a stress switch carries a
    /// covariance the gate evidence says is lying — collapsed to a
    /// coarse substrate's quantization floor while the estimate is
    /// still far off. Importing such a covariance verbatim freezes
    /// the incoming substrate: the gate keeps rejecting, so the
    /// better arithmetic never gets to correct the state.
    pub fn recondition_diagonal(&mut self, angle_floor: f64, bias_floor: f64) {
        let mut k = 0;
        for i in 0..STATE_DIM {
            let floor = if i < 3 { angle_floor } else { bias_floor };
            self.p_upper[k] = self.p_upper[k].max(floor);
            // Skip the rest of row i (off-diagonals stay put).
            k += STATE_DIM - i;
        }
    }
}

/// The IMU front end's state ([`crate::estimator::ImuPrep`]): the
/// sample history lives in `f64` sensor types already; the smoothed
/// force slope and differentiated angular acceleration are the only
/// in-substrate values and cross through `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImuPrepSnapshot {
    /// Most recent DMU sample (zero-order-hold source).
    pub last_dmu: Option<DmuSample>,
    /// The DMU sample before it (slope differentiation).
    pub prev_dmu: Option<DmuSample>,
    /// Smoothed d(f_imu)/dt, m/s^3.
    pub f_slope: [f64; 3],
    /// Previous gyro sample and its timestamp (lever-arm term).
    pub prev_gyro: Option<(f64, Vec3)>,
    /// Differentiated angular acceleration, rad/s^2.
    pub angular_accel: [f64; 3],
}

/// Everything a running estimator is, minus the substrate: the filter
/// snapshot, the IMU front end, the residual monitor (plain `f64`
/// state — cloned, so the retune history and hold-off survive the
/// swap) and the stream bookkeeping.
#[derive(Clone, Debug)]
pub struct EstimatorSnapshot {
    /// The filter core.
    pub filter: FilterSnapshot,
    /// The IMU front end.
    pub prep: ImuPrepSnapshot,
    /// The residual monitor, verbatim (`None` if tuning is disabled).
    pub monitor: Option<ResidualMonitor>,
    /// Timestamp of the last accepted ACC sample, seconds.
    pub last_update_time: f64,
    /// ACC samples dropped before the first DMU sample.
    pub dropped_no_imu: u64,
}

/// The smallest `f64` that converts to a strictly positive value in
/// `a` — the substrate's positive quantum.
///
/// Found by halving from 1.0 until the substrate rounds to zero (or
/// the probe leaves any realistic representable range at `2^-200`).
/// Conversions are not counted operations, so probing is free on the
/// op and cycle ledgers. Import floors the covariance diagonal here,
/// which keeps a healthy covariance positive-definite through
/// quantization: a diagonal entry may round to zero on a coarse
/// substrate while its row survives, and Cholesky would then reject a
/// matrix the `f64` filter considered fine.
pub fn positive_quantum<A: Arith>(a: &mut A) -> f64 {
    let mut quantum = 1.0f64;
    for _ in 0..200 {
        let half = quantum * 0.5;
        let probe = a.num(half);
        if a.to_f64(probe) > 0.0 {
            quantum = half;
        } else {
            break;
        }
    }
    quantum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{F32Arith, F64Arith, QArith, SoftArith};

    #[test]
    fn positive_quantum_matches_each_substrate() {
        // Native f64 and emulated binary64 both keep halving to the
        // probe floor; fixed point stops at its LSB scale (from_f64
        // rounds to nearest, so 2^-(FRAC+1) still maps to raw 1).
        assert!(positive_quantum(&mut F64Arith::default()) <= 2f64.powi(-190));
        assert!(positive_quantum(&mut SoftArith::default()) <= 2f64.powi(-190));
        assert_eq!(
            positive_quantum(&mut QArith::<16>::default()),
            2f64.powi(-17)
        );
        assert_eq!(
            positive_quantum(&mut QArith::<24>::default()),
            2f64.powi(-25)
        );
        let q32 = positive_quantum(&mut F32Arith::default());
        assert!(q32 > 0.0 && q32 < f32::MIN_POSITIVE as f64);
    }

    #[test]
    fn recondition_floors_only_the_diagonal() {
        let mut snapshot = FilterSnapshot {
            x: [0.0; STATE_DIM],
            p_upper: [1e-9; PACKED_COV],
            updates: 0,
            rejected: 0,
            measurement_sigma: 0.02,
            phases: crate::arith::PhaseLedger::default(),
        };
        snapshot.recondition_diagonal(4e-3, 6e-4);
        // Diagonal entries sit at packed offsets 0, 5, 9, 12, 14 for
        // STATE_DIM == 5 (row-major upper triangle).
        for (k, value) in snapshot.p_upper.iter().enumerate() {
            match k {
                0 | 5 | 9 => assert_eq!(*value, 4e-3, "angle diagonal at {k}"),
                12 | 14 => assert_eq!(*value, 6e-4, "bias diagonal at {k}"),
                _ => assert_eq!(*value, 1e-9, "off-diagonal at {k}"),
            }
        }
        // A diagonal already above the floor is untouched.
        snapshot.p_upper[0] = 0.5;
        snapshot.recondition_diagonal(4e-3, 6e-4);
        assert_eq!(snapshot.p_upper[0], 0.5);
    }

    #[test]
    fn quantum_probe_leaves_ledgers_untouched() {
        let mut a = QArith::<16>::default();
        positive_quantum(&mut a);
        assert_eq!(a.counts().total(), 0);
        assert_eq!(a.cycles(), 0);
    }
}
