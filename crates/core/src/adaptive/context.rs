//! Folding the system's existing health signals into a reconfiguration
//! context.
//!
//! The monitor consumes only `f64`-side records the session already
//! produces — the [`KalmanUpdate`] each ACC sample returns, the
//! substrate's cumulative saturation counter, the residual monitor's
//! retune count and the ACC inter-arrival times (link-fault storms
//! show up as gaps: dropped or garbled frames never reach the
//! backend). Nothing is read *through* the substrate, so observing
//! context cannot perturb the filter — the property the zero-switch
//! bit-identity pin relies on. Everything is plain counters: the
//! steady-state event path allocates nothing.

use crate::filter::KalmanUpdate;

/// Context-window configuration.
#[derive(Clone, Copy, Debug)]
pub struct ContextConfig {
    /// ACC samples per decision window (the policy is consulted once
    /// per window).
    pub decision_interval: u64,
    /// An inter-ACC interval longer than this factor times the
    /// learned nominal period counts as a link gap.
    pub gap_factor: f64,
}

impl Default for ContextConfig {
    fn default() -> Self {
        Self {
            decision_interval: 200,
            gap_factor: 1.5,
        }
    }
}

/// One decision window's folded context — the policy's whole world.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ContextState {
    /// Timestamp of the window's last ACC sample, seconds.
    pub time_s: f64,
    /// ACC samples observed in the window.
    pub acc_samples: u64,
    /// Accepted measurement updates in the window.
    pub updates: u64,
    /// Fraction of the window's measurement *attempts* (accepted or
    /// gated out) whose innovation exceeded its 3-sigma bound. Always
    /// in `[0, 1]` — unlike the per-accepted-update ratio
    /// [`crate::session::SessionStats::exceed_rate`] reports, which
    /// degenerates when the gate rejects nearly everything (the
    /// exact regime a reconfiguration policy must act in).
    pub exceed_rate: f64,
    /// Substrate range-saturation events per ACC sample in the window
    /// (fixed point only; 0 elsewhere). Per sample, not per accepted
    /// update: saturations mostly fire in propagation, which runs
    /// whether or not the gate accepts.
    pub saturation_rate: f64,
    /// Fraction of ACC inter-arrival intervals that were link gaps.
    pub gap_rate: f64,
    /// Residual-monitor retunes fired during the window.
    pub retunes: u64,
}

/// Streaming accumulator for [`ContextState`], reset per decision
/// window. The nominal ACC period is learned as the smallest interval
/// seen, so gap detection needs no configuration of the sensor rate.
#[derive(Clone, Debug)]
pub struct ContextMonitor {
    config: ContextConfig,
    acc_samples: u64,
    attempts: u64,
    updates: u64,
    exceeds: u64,
    intervals: u64,
    gaps: u64,
    last_acc_time: Option<f64>,
    nominal_dt: f64,
    last_time: f64,
    saturations_at_window_start: u64,
    last_saturations: u64,
    retunes_at_window_start: u64,
    last_retunes: u64,
}

impl ContextMonitor {
    /// A fresh monitor.
    pub fn new(config: ContextConfig) -> Self {
        Self {
            config,
            acc_samples: 0,
            attempts: 0,
            updates: 0,
            exceeds: 0,
            intervals: 0,
            gaps: 0,
            last_acc_time: None,
            nominal_dt: f64::INFINITY,
            last_time: 0.0,
            saturations_at_window_start: 0,
            last_saturations: 0,
            retunes_at_window_start: 0,
            last_retunes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ContextConfig {
        &self.config
    }

    /// Folds one ACC sample's outcome plus the backend's cumulative
    /// saturation and retune counters into the current window.
    pub fn observe_acc(
        &mut self,
        time_s: f64,
        update: Option<&KalmanUpdate>,
        saturations_total: u64,
        retunes_total: u64,
    ) {
        self.acc_samples += 1;
        self.last_time = time_s;
        if let Some(last) = self.last_acc_time {
            let dt = time_s - last;
            if dt > 1e-9 {
                self.intervals += 1;
                if dt < self.nominal_dt {
                    self.nominal_dt = dt;
                }
                if self.nominal_dt.is_finite() && dt > self.config.gap_factor * self.nominal_dt {
                    self.gaps += 1;
                }
            }
        }
        self.last_acc_time = Some(time_s);
        if let Some(update) = update {
            self.attempts += 1;
            if update.accepted {
                self.updates += 1;
            }
            if update.exceeds_three_sigma() {
                self.exceeds += 1;
            }
        }
        self.last_saturations = saturations_total;
        self.last_retunes = retunes_total;
    }

    /// `true` once the current window holds a full decision interval.
    pub fn decision_due(&self) -> bool {
        self.acc_samples >= self.config.decision_interval
    }

    /// Returns the folded window and starts the next one. The nominal
    /// ACC period and the cumulative-counter baselines persist across
    /// windows.
    pub fn take_state(&mut self) -> ContextState {
        let state = ContextState {
            time_s: self.last_time,
            acc_samples: self.acc_samples,
            updates: self.updates,
            exceed_rate: if self.attempts > 0 {
                self.exceeds as f64 / self.attempts as f64
            } else {
                0.0
            },
            saturation_rate: if self.acc_samples > 0 {
                (self.last_saturations - self.saturations_at_window_start) as f64
                    / self.acc_samples as f64
            } else {
                0.0
            },
            gap_rate: if self.intervals > 0 {
                self.gaps as f64 / self.intervals as f64
            } else {
                0.0
            },
            retunes: self.last_retunes - self.retunes_at_window_start,
        };
        self.acc_samples = 0;
        self.attempts = 0;
        self.updates = 0;
        self.exceeds = 0;
        self.intervals = 0;
        self.gaps = 0;
        self.saturations_at_window_start = self.last_saturations;
        self.retunes_at_window_start = self.last_retunes;
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathx::Vec2;

    fn update(accepted: bool, exceeded: bool) -> KalmanUpdate {
        // innovation 3.5x sigma when exceeded, well inside otherwise.
        let innovation = if exceeded { 0.35 } else { 0.01 };
        KalmanUpdate {
            time_s: 0.0,
            innovation: Vec2::new([innovation, 0.0]),
            innovation_sigma: Vec2::new([0.1, 0.1]),
            accepted,
        }
    }

    #[test]
    fn folds_exceed_gap_and_saturation_rates() {
        let mut monitor = ContextMonitor::new(ContextConfig {
            decision_interval: 4,
            gap_factor: 1.5,
        });
        // Nominal 5 ms cadence with one dropped sample (10 ms gap).
        monitor.observe_acc(0.005, Some(&update(true, false)), 0, 0);
        monitor.observe_acc(0.010, Some(&update(true, false)), 2, 0);
        monitor.observe_acc(0.020, Some(&update(false, true)), 4, 1);
        assert!(!monitor.decision_due());
        monitor.observe_acc(0.025, Some(&update(true, false)), 4, 1);
        assert!(monitor.decision_due());
        let state = monitor.take_state();
        assert_eq!(state.acc_samples, 4);
        assert_eq!(state.updates, 3);
        // One exceed over four attempts (the gated-out sample counts
        // as an attempt — the rate stays bounded even when the gate
        // rejects a whole window).
        assert!((state.exceed_rate - 1.0 / 4.0).abs() < 1e-12);
        assert!((state.gap_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((state.saturation_rate - 4.0 / 4.0).abs() < 1e-12);
        assert_eq!(state.retunes, 1);

        // The next window starts clean but keeps the learned cadence
        // and counter baselines.
        monitor.observe_acc(0.030, Some(&update(true, false)), 4, 1);
        monitor.observe_acc(0.035, Some(&update(true, false)), 4, 1);
        monitor.observe_acc(0.040, Some(&update(true, false)), 4, 1);
        monitor.observe_acc(0.045, Some(&update(true, false)), 4, 1);
        let calm = monitor.take_state();
        assert_eq!(calm.retunes, 0);
        assert_eq!(calm.saturation_rate, 0.0);
        assert_eq!(calm.gap_rate, 0.0);
        assert_eq!(calm.exceed_rate, 0.0);
    }

    #[test]
    fn exceed_rate_stays_bounded_when_the_gate_rejects_everything() {
        // A collapsed-covariance substrate can gate out an entire
        // window; the rate must saturate at 1.0, not divide by the
        // (zero) accepted-update count.
        let mut monitor = ContextMonitor::new(ContextConfig {
            decision_interval: 3,
            gap_factor: 1.5,
        });
        for i in 0..3 {
            monitor.observe_acc(0.005 * (i + 1) as f64, Some(&update(false, true)), 0, 0);
        }
        let state = monitor.take_state();
        assert_eq!(state.updates, 0);
        assert_eq!(state.exceed_rate, 1.0);
    }
}
