//! Context-aware runtime substrate reconfiguration — the paper's
//! *adaptive* FPGA thesis applied to the arithmetic datapath.
//!
//! Chappell et al. built the boresight filter on an FPGA precisely so
//! the datapath could be *reconfigured at runtime*: swap in a cheaper
//! number system when conditions are benign, swap precision back in
//! when they are not, and bank the saved cycles (or energy) the rest
//! of the time. The repo's frontier benchmark measures exactly that
//! trade — per-substrate accuracy vs modelled Sabre cycles — but until
//! this module the substrate was frozen when the session was built.
//!
//! [`AdaptiveBackend`] closes the loop. It is an ordinary
//! [`crate::session::FusionBackend`] (usable from
//! [`crate::session::FusionSession`], [`crate::spec::ScenarioSuite`]
//! via [`crate::spec::Substrate::Adaptive`], and per-slot in
//! [`crate::fleet::Fleet::admit_adaptive`]) that hot-swaps the
//! arithmetic substrate of the running 5-state IEKF mid-session:
//!
//! * [`snapshot`] — the substrate-agnostic state transfer:
//!   [`FilterSnapshot`] / [`EstimatorSnapshot`] export the full filter
//!   state (state vector, packed-symmetric covariance, gate and
//!   iteration counters, IMU front-end state, monitor state) through
//!   `f64` and import it into any other [`crate::arith::Arith`]
//!   context, with a documented, tested conversion bound;
//! * [`context`] — [`ContextMonitor`] folds the signals the system
//!   already produces (innovation-gate exceed rate, Q-format
//!   saturation counters, monitor retunes, link-fault gaps in the ACC
//!   stream) into a small [`ContextState`], allocation-free;
//! * [`policy`] — the pluggable [`ReconfigPolicy`]:
//!   [`HysteresisPolicy`] (threshold + hold-off, the default),
//!   [`FrontierPolicy`] (driven by measured
//!   `bench_baselines/BENCH_frontier.json` points, picks the cheapest
//!   substrate meeting an RMS target) and [`PinnedPolicy`] (never
//!   fires — the bit-identity reference);
//! * [`ledger`] — [`ReconfigLedger`]: when, why and at what cost every
//!   switch happened, including the modelled snapshot-transfer cycles.
//!
//! # Conversion bounds
//!
//! Export always goes through `f64` (every substrate's
//! [`crate::arith::Arith::to_f64`] is exact for the values it can
//! hold), so one hop `A -> f64 -> B` costs only B's quantization:
//!
//! | target      | absolute round-trip error for magnitude `m`         |
//! |-------------|-----------------------------------------------------|
//! | `f64`       | 0 (identity)                                        |
//! | `softfloat` | 0 (same binary64 format, bit-identical by test)     |
//! | `f32`       | `m * 2^-24` (half-ulp, + `2^-149` below normal)     |
//! | `q16.16`    | `2^-17` (half LSB) while `|x| < 2^15`, saturating   |
//! | `q8.24`     | `2^-25` (half LSB) while `|x| < 2^7`, saturating    |
//!
//! [`SubstrateId::conversion_bound`] is that table as code; the
//! snapshot proptests pin it for every substrate pair. On import the
//! covariance diagonal is floored at the target's smallest positive
//! representable value ([`positive_quantum`]) so a healthy covariance
//! stays positive-definite after quantization.
//!
//! # Pinned properties
//!
//! * A session whose policy never fires is **bit-identical** to the
//!   static session over the same substrate: the wrapper feeds the
//!   inner estimator the exact event sequence and reads context only
//!   from `f64`-side records, never through the substrate.
//! * Steady state between switches is allocation-free (alloc_audit);
//!   a switch itself may allocate (it builds the successor estimator).
//! * Every switch appears in the ledger, with chain continuity
//!   (`from` of each event equals `to` of the previous one).

pub mod backend;
pub mod context;
pub mod ledger;
pub mod policy;
pub mod snapshot;

pub use backend::AdaptiveBackend;
pub use context::{ContextConfig, ContextMonitor, ContextState};
pub use ledger::{ReconfigEvent, ReconfigLedger, TRANSFER_CYCLES_PER_WORD};
pub use policy::{
    FrontierPoint, FrontierPolicy, HysteresisPolicy, PinnedPolicy, ReconfigPolicy, SubstrateId,
};
pub use snapshot::{positive_quantum, EstimatorSnapshot, FilterSnapshot, ImuPrepSnapshot};
