//! Reconfiguration policies: *when* to swap substrates, and *to what*.

use super::context::ContextState;

/// The substrates the supervisor can hot-swap between — the frontier
/// benchmark's scalar datapaths. Distinct from
/// [`crate::spec::Substrate`], which names the static session axis;
/// this enum is the adaptive supervisor's richer target set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SubstrateId {
    /// Native `f64` (host FPU; not cycle-modelled).
    F64,
    /// Native `f32` (host FPU; not cycle-modelled).
    F32,
    /// Emulated IEEE binary64 with Sabre cycle accounting —
    /// bit-identical results to `f64`, honest cycle prices.
    Softfloat,
    /// Saturating Q16.16 fixed point.
    Q16_16,
    /// Saturating Q8.24 fixed point.
    Q8_24,
}

impl SubstrateId {
    /// Every switchable substrate, reference-first.
    pub fn all() -> [Self; 5] {
        [
            Self::F64,
            Self::F32,
            Self::Softfloat,
            Self::Q16_16,
            Self::Q8_24,
        ]
    }

    /// Short name (matches the frontier benchmark's substrate labels).
    pub fn label(self) -> &'static str {
        match self {
            Self::F64 => "f64",
            Self::F32 => "f32",
            Self::Softfloat => "softfloat",
            Self::Q16_16 => "q16.16",
            Self::Q8_24 => "q8.24",
        }
    }

    /// Parses a short name. `softfloat/f64` (the frontier cell
    /// spelling) and `fixed` (the legacy Q16.16 alias) are accepted.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "f64" => Some(Self::F64),
            "f32" => Some(Self::F32),
            "softfloat" | "softfloat/f64" => Some(Self::Softfloat),
            "q16.16" | "fixed" => Some(Self::Q16_16),
            "q8.24" => Some(Self::Q8_24),
            _ => None,
        }
    }

    /// Absolute error bound for converting one `f64` value of the
    /// given magnitude into this substrate — the module-level
    /// conversion-bound table as code, pinned by the snapshot
    /// round-trip proptests. Only meaningful inside
    /// [`SubstrateId::representable_limit`]; beyond it fixed point
    /// saturates.
    pub fn conversion_bound(self, magnitude: f64) -> f64 {
        match self {
            // Identity / same binary64 format.
            Self::F64 | Self::Softfloat => 0.0,
            // Half-ulp relative, plus the subnormal quantum below the
            // normal range.
            Self::F32 => magnitude * 2f64.powi(-24) + 2f64.powi(-149),
            // Half of the fixed-point LSB (from_f64 rounds to nearest).
            Self::Q16_16 => 2f64.powi(-17),
            Self::Q8_24 => 2f64.powi(-25),
        }
    }

    /// Largest magnitude this substrate represents without saturating.
    pub fn representable_limit(self) -> f64 {
        match self {
            Self::F64 | Self::Softfloat => f64::INFINITY,
            Self::F32 => f32::MAX as f64,
            Self::Q16_16 => 2f64.powi(15),
            Self::Q8_24 => 2f64.powi(7),
        }
    }
}

impl std::fmt::Display for SubstrateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Decides, once per context window, whether to reconfigure.
///
/// Policies are consulted by [`crate::adaptive::AdaptiveBackend`] with
/// the folded [`ContextState`] and the currently active substrate;
/// returning `Some(target)` with `target != active` triggers a
/// snapshot transfer. Policies own their hysteresis state (streaks,
/// hold-offs) — `decide` takes `&mut self`.
pub trait ReconfigPolicy: Send {
    /// Short policy name, recorded as each ledger event's reason.
    fn name(&self) -> &'static str;

    /// The verdict for this window: `None` / the active substrate to
    /// stay, or the substrate to switch to.
    fn decide(&mut self, ctx: &ContextState, active: SubstrateId) -> Option<SubstrateId>;
}

/// Never reconfigures — the reference policy behind the zero-switch
/// bit-identity pin (an adaptive session running this policy must be
/// bit-identical to the static session over the same substrate).
#[derive(Clone, Copy, Debug, Default)]
pub struct PinnedPolicy;

impl ReconfigPolicy for PinnedPolicy {
    fn name(&self) -> &'static str {
        "pinned"
    }

    fn decide(&mut self, _ctx: &ContextState, _active: SubstrateId) -> Option<SubstrateId> {
        None
    }
}

/// Threshold-with-hysteresis reconfiguration (the default policy).
///
/// Stress — a gate-exceed burst, fixed-point saturation, or link gaps
/// from a fault storm — upshifts immediately to the precision target.
/// Downshifting back to the cheap target requires `calm_windows`
/// *consecutive* quiet windows, so a storm's tail cannot make the
/// supervisor thrash. The stress thresholds are deliberately above
/// the calm ones (classic hysteresis band).
#[derive(Clone, Debug)]
pub struct HysteresisPolicy {
    stress_target: SubstrateId,
    calm_target: SubstrateId,
    exceed_upshift: f64,
    exceed_downshift: f64,
    saturation_upshift: f64,
    gap_upshift: f64,
    gap_downshift: f64,
    calm_windows: u32,
    calm_streak: u32,
}

impl HysteresisPolicy {
    /// A policy moving between an explicit stress/calm substrate pair
    /// with the default thresholds.
    pub fn new(stress_target: SubstrateId, calm_target: SubstrateId) -> Self {
        Self {
            stress_target,
            calm_target,
            exceed_upshift: 0.08,
            exceed_downshift: 0.02,
            saturation_upshift: 0.01,
            gap_upshift: 0.02,
            gap_downshift: 0.005,
            calm_windows: 3,
            calm_streak: 0,
        }
    }

    /// Overrides the gate-exceed thresholds (upshift above, calm
    /// below).
    pub fn with_exceed_band(mut self, upshift: f64, downshift: f64) -> Self {
        self.exceed_upshift = upshift;
        self.exceed_downshift = downshift;
        self
    }

    /// Overrides the link-gap thresholds (upshift above, calm below).
    pub fn with_gap_band(mut self, upshift: f64, downshift: f64) -> Self {
        self.gap_upshift = upshift;
        self.gap_downshift = downshift;
        self
    }

    /// Overrides the saturation-events-per-update upshift threshold.
    pub fn with_saturation_upshift(mut self, upshift: f64) -> Self {
        self.saturation_upshift = upshift;
        self
    }

    /// Overrides how many consecutive calm windows earn a downshift.
    pub fn with_calm_windows(mut self, windows: u32) -> Self {
        self.calm_windows = windows;
        self
    }

    /// `true` when a window demands the precision substrate.
    fn stressed(&self, ctx: &ContextState) -> bool {
        ctx.exceed_rate > self.exceed_upshift
            || ctx.saturation_rate > self.saturation_upshift
            || ctx.gap_rate > self.gap_upshift
    }

    /// `true` when a window counts toward the calm streak.
    fn calm(&self, ctx: &ContextState) -> bool {
        ctx.exceed_rate <= self.exceed_downshift
            && ctx.saturation_rate == 0.0
            && ctx.gap_rate <= self.gap_downshift
    }
}

impl Default for HysteresisPolicy {
    /// Softfloat under stress, Q16.16 when calm: both ends of the
    /// default band are cycle-modelled, so the ledger's cost
    /// accounting stays honest (native `f64` reports zero cycles).
    /// Softfloat is bit-identical to `f64`, so the stress end loses
    /// no accuracy.
    fn default() -> Self {
        Self::new(SubstrateId::Softfloat, SubstrateId::Q16_16)
    }
}

impl ReconfigPolicy for HysteresisPolicy {
    fn name(&self) -> &'static str {
        "hysteresis"
    }

    fn decide(&mut self, ctx: &ContextState, active: SubstrateId) -> Option<SubstrateId> {
        if self.stressed(ctx) {
            self.calm_streak = 0;
            if active != self.stress_target {
                return Some(self.stress_target);
            }
            return None;
        }
        if self.calm(ctx) {
            self.calm_streak = self.calm_streak.saturating_add(1);
        } else {
            self.calm_streak = 0;
        }
        if self.calm_streak >= self.calm_windows && active != self.calm_target {
            self.calm_streak = 0;
            return Some(self.calm_target);
        }
        None
    }
}

/// One measured accuracy-vs-cycles point (a scalar `lanes == 1` cell
/// of `bench_baselines/BENCH_frontier.json`; the loader lives in the
/// bench crate, which depends on this one).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontierPoint {
    /// The substrate the point prices.
    pub substrate: SubstrateId,
    /// Whole-run RMS misalignment error, degrees.
    pub rms_deg: f64,
    /// Modelled Sabre cycles per ACC sample (0 = not cycle-modelled).
    pub cycles_per_sample: f64,
}

/// Evidence-driven reconfiguration: under stress behave like
/// [`HysteresisPolicy`] (upshift to the precision target); once calm,
/// pick the **cheapest measured substrate meeting an RMS target** from
/// the committed frontier instead of a hard-wired calm substrate.
///
/// Only cycle-modelled points compete on price (a 0-cycle entry means
/// "not modelled", not "free"); if no point meets the target, the
/// policy holds the precision substrate.
#[derive(Clone, Debug)]
pub struct FrontierPolicy {
    points: Vec<FrontierPoint>,
    rms_target_deg: f64,
    stress: HysteresisPolicy,
}

impl FrontierPolicy {
    /// A policy over measured frontier points with an RMS target.
    pub fn new(points: Vec<FrontierPoint>, rms_target_deg: f64) -> Self {
        Self {
            points,
            rms_target_deg,
            stress: HysteresisPolicy::default(),
        }
    }

    /// Replaces the embedded stress-detection band.
    pub fn with_stress_band(mut self, band: HysteresisPolicy) -> Self {
        self.stress = band;
        self
    }

    /// The RMS target, degrees.
    pub fn rms_target_deg(&self) -> f64 {
        self.rms_target_deg
    }

    /// The cheapest cycle-modelled substrate whose measured RMS meets
    /// the target.
    pub fn cheapest_meeting_target(&self) -> Option<SubstrateId> {
        self.points
            .iter()
            .filter(|p| p.cycles_per_sample > 0.0 && p.rms_deg <= self.rms_target_deg)
            .min_by(|a, b| {
                a.cycles_per_sample
                    .partial_cmp(&b.cycles_per_sample)
                    .expect("finite frontier cycles")
            })
            .map(|p| p.substrate)
    }
}

impl ReconfigPolicy for FrontierPolicy {
    fn name(&self) -> &'static str {
        "frontier"
    }

    fn decide(&mut self, ctx: &ContextState, active: SubstrateId) -> Option<SubstrateId> {
        let calm_choice = self
            .cheapest_meeting_target()
            .unwrap_or(self.stress.stress_target);
        self.stress.calm_target = calm_choice;
        self.stress.decide(ctx, active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm_ctx() -> ContextState {
        ContextState {
            updates: 190,
            acc_samples: 200,
            ..ContextState::default()
        }
    }

    fn stormy_ctx() -> ContextState {
        ContextState {
            gap_rate: 0.10,
            exceed_rate: 0.12,
            updates: 150,
            acc_samples: 200,
            ..ContextState::default()
        }
    }

    #[test]
    fn hysteresis_upshifts_immediately_and_downshifts_after_streak() {
        let mut policy = HysteresisPolicy::default();
        assert_eq!(
            policy.decide(&stormy_ctx(), SubstrateId::Q16_16),
            Some(SubstrateId::Softfloat)
        );
        // Already on the stress target: hold.
        assert_eq!(policy.decide(&stormy_ctx(), SubstrateId::Softfloat), None);
        // Two calm windows are not yet a streak of three.
        assert_eq!(policy.decide(&calm_ctx(), SubstrateId::Softfloat), None);
        assert_eq!(policy.decide(&calm_ctx(), SubstrateId::Softfloat), None);
        assert_eq!(
            policy.decide(&calm_ctx(), SubstrateId::Softfloat),
            Some(SubstrateId::Q16_16)
        );
        // A storm inside the streak resets it.
        assert_eq!(policy.decide(&calm_ctx(), SubstrateId::Softfloat), None);
        assert_eq!(
            policy.decide(&stormy_ctx(), SubstrateId::Softfloat),
            None,
            "storm on the stress target holds"
        );
        assert_eq!(policy.decide(&calm_ctx(), SubstrateId::Softfloat), None);
    }

    #[test]
    fn frontier_picks_cheapest_point_meeting_target() {
        let points = vec![
            FrontierPoint {
                substrate: SubstrateId::Softfloat,
                rms_deg: 0.10,
                cycles_per_sample: 335_000.0,
            },
            FrontierPoint {
                substrate: SubstrateId::Q16_16,
                rms_deg: 0.9,
                cycles_per_sample: 1_300.0,
            },
            FrontierPoint {
                substrate: SubstrateId::Q8_24,
                rms_deg: 0.8,
                cycles_per_sample: 5_800.0,
            },
            // Not cycle-modelled: never competes on price.
            FrontierPoint {
                substrate: SubstrateId::F64,
                rms_deg: 0.10,
                cycles_per_sample: 0.0,
            },
        ];
        let mut policy = FrontierPolicy::new(points.clone(), 1.0);
        assert_eq!(
            policy.cheapest_meeting_target(),
            Some(SubstrateId::Q16_16),
            "both Q formats qualify; Q16.16 is cheaper"
        );
        for _ in 0..3 {
            policy.decide(&calm_ctx(), SubstrateId::Softfloat);
        }
        // A tighter target excludes Q16.16 but keeps Q8.24.
        let tight = FrontierPolicy::new(points.clone(), 0.85);
        assert_eq!(tight.cheapest_meeting_target(), Some(SubstrateId::Q8_24));
        // An impossible target holds the precision substrate.
        let mut none = FrontierPolicy::new(points, 0.01);
        assert_eq!(none.cheapest_meeting_target(), None);
        assert_eq!(
            none.decide(&stormy_ctx(), SubstrateId::Q16_16),
            Some(SubstrateId::Softfloat)
        );
    }

    #[test]
    fn substrate_ids_round_trip_their_labels() {
        for id in SubstrateId::all() {
            assert_eq!(SubstrateId::parse(id.label()), Some(id));
        }
        assert_eq!(
            SubstrateId::parse("softfloat/f64"),
            Some(SubstrateId::Softfloat)
        );
        assert_eq!(SubstrateId::parse("fixed"), Some(SubstrateId::Q16_16));
        assert_eq!(SubstrateId::parse("q4.28"), None);
    }
}
