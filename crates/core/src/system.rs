//! End-to-end system simulation: Figure 2 and Figure 3 as one loop.
//!
//! Composes every substrate in the workspace the way the paper wires
//! the hardware:
//!
//! ```text
//! vehicle --> DMU --CAN frames--> bridge --UART 38400--> |        |
//!         --> ACC --eval packets--------UART 19200-----> | recon- | --> fusion
//!                                                        | struct |      |
//!   Sabre soft-core <---- mailbox <------ estimate <-----+--------+------+
//!      | (program copies results to the control block)
//!      v
//!  control block (Q16.16 angles) --> affine video correction --> PSNR
//! ```
//!
//! The Kalman software cost on the Sabre is accounted by shadowing the
//! filter with the Softfloat implementation for the first updates and
//! charging its per-op Sabre cycle costs (see DESIGN.md section 4.4).

use crate::arith::{Kf3, SoftArith};
use crate::estimator::MisalignmentEstimate;
use crate::scenario::ScenarioConfig;
use crate::session::{
    CommsChainSource, EventSink, FusionSession, IntoSharedTrajectory, SensorEvent,
};
use comms::StreamStats;
use fpga::fixed::Q16_16;
use fpga::pipeline::FrameTiming;
use fpga::sabre::{assemble, ControlBlock, ControlReg, Sabre, StopReason, CONTROL_BASE};
use mathx::{rad_to_deg, EulerAngles, Vec3};
use std::sync::{Arc, Mutex};
use video::{
    affine::{transform, MappingKind},
    camera::CameraModel,
    metrics::psnr,
    scene,
};

/// The Sabre program that publishes fused results: it copies the
/// mailbox the fusion software fills (data memory, word address 64)
/// into the memory-mapped control block and sets the valid flag —
/// the role `SabreControlRun` plays in the paper's Figure 7.
const PUBLISH_PROGRAM: &str = "
        ; mailbox layout at byte 256 (word 64):
        ;   +0 valid, +4 roll, +8 pitch, +12 yaw (Q16.16 rad)
        ;   +16..+24 three 1-sigma values (Q16.16 rad), +28 count
        lw   r1, 256(r0)
        beq  r1, r0, done       ; no new result
        lui  r2, 0x8000
        ori  r2, r2, 0x60       ; control block base
        lw   r3, 260(r0)
        sw   r3, 0(r2)          ; roll
        lw   r3, 264(r0)
        sw   r3, 4(r2)          ; pitch
        lw   r3, 268(r0)
        sw   r3, 8(r2)          ; yaw
        lw   r3, 272(r0)
        sw   r3, 12(r2)         ; roll sigma
        lw   r3, 276(r0)
        sw   r3, 16(r2)         ; pitch sigma
        lw   r3, 280(r0)
        sw   r3, 20(r2)         ; yaw sigma
        lw   r3, 284(r0)
        sw   r3, 28(r2)         ; update count
        addi r4, r0, 1
        sw   r4, 24(r2)         ; status: result valid
        sw   r0, 256(r0)        ; consume the mailbox
done:   halt
";

/// System-level configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// The underlying scenario (truth, sensors, filter tuning).
    pub scenario: ScenarioConfig,
    /// Video frame size for the correction experiment.
    pub frame_size: (u32, u32),
    /// Camera focal length, pixels.
    pub focal_px: f64,
    /// Sabre core clock, Hz (the paper does not quote one; 25 MHz is
    /// typical for a soft core on a Virtex-II).
    pub sabre_clock_hz: f64,
    /// How often the fusion result is published to the control block.
    pub publish_interval_s: f64,
    /// How many filter updates to shadow with the Softfloat filter for
    /// cycle accounting.
    pub shadow_updates: u64,
}

impl SystemConfig {
    /// A dynamic-drive system test with the given truth.
    pub fn demo(true_misalignment: EulerAngles) -> Self {
        Self {
            scenario: ScenarioConfig::dynamic_test(true_misalignment),
            frame_size: (160, 120),
            focal_px: 300.0,
            sabre_clock_hz: 25e6,
            publish_interval_s: 0.2,
            shadow_updates: 1000,
        }
    }

    /// The demo system over a declarative scenario: the spec's lowered
    /// [`ScenarioConfig`] (truth, environment, tuning, link faults)
    /// replaces the hard-wired dynamic test, so any catalog entry can
    /// drive the full Figure-2 simulation. Run it against
    /// [`crate::spec::ScenarioSpec::lower_trajectory`].
    pub fn from_spec(spec: &crate::spec::ScenarioSpec) -> Self {
        Self {
            scenario: spec.config(),
            ..Self::demo(spec.truth)
        }
    }
}

impl Default for SystemConfig {
    /// The demo system with no injected misalignment.
    fn default() -> Self {
        Self::demo(EulerAngles::zero())
    }
}

/// Everything the system run reports.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Injected truth.
    pub truth: EulerAngles,
    /// Final fused estimate.
    pub estimate: MisalignmentEstimate,
    /// Per-axis error, degrees.
    pub error_deg: [f64; 3],
    /// Serial-link/reconstruction statistics.
    pub stream: StreamStats,
    /// Sabre cycles spent on publish-program executions.
    pub sabre_cycles: u64,
    /// Sabre instructions retired on publishes.
    pub sabre_instructions: u64,
    /// Softfloat Kalman cost: cycles per filter update.
    pub kalman_cycles_per_update: f64,
    /// Softfloat Kalman cost: float ops per filter update.
    pub kalman_ops_per_update: f64,
    /// Fraction of the Sabre clock the Kalman software needs at the
    /// ACC rate (< 1.0 means real time, as the paper demonstrates).
    pub kalman_cpu_utilization: f64,
    /// Angles read back from the control block (Q16.16-quantized).
    pub control_angles_deg: [f64; 3],
    /// PSNR of the misaligned camera view vs the reference, dB.
    pub psnr_misaligned_db: f64,
    /// PSNR after correction with the published estimate, dB.
    pub psnr_corrected_db: f64,
    /// Video pipeline frame-rate budget at the pixel clock.
    pub video_fps_budget: f64,
    /// Holes the paper-faithful forward mapping left in one frame.
    pub forward_holes: u64,
}

/// Publishes each estimate through the Sabre soft core into the
/// memory-mapped control block — the paper's Figure-7 path — as an
/// [`EventSink`] on the fusion stream.
pub struct SabrePublishSink {
    cpu: Sabre,
    program: Vec<u32>,
    interval_s: f64,
    next_publish: f64,
    publishes: u64,
}

impl SabrePublishSink {
    /// Builds the sink, assembling the publish program.
    pub fn new(interval_s: f64) -> Self {
        let program = assemble(PUBLISH_PROGRAM).expect("publish program assembles");
        Self {
            cpu: Sabre::with_standard_bus(),
            program: program.words,
            interval_s,
            next_publish: interval_s,
            publishes: 0,
        }
    }

    /// Writes an estimate into the Sabre mailbox and runs the publish
    /// program, which copies it to the control block.
    fn publish(&mut self, est: &MisalignmentEstimate) {
        let q = |x: f64| Q16_16::from_f64(x).raw() as u32;
        self.cpu.write_data_word(256, 1);
        self.cpu.write_data_word(260, q(est.angles.roll));
        self.cpu.write_data_word(264, q(est.angles.pitch));
        self.cpu.write_data_word(268, q(est.angles.yaw));
        self.cpu.write_data_word(272, q(est.one_sigma[0]));
        self.cpu.write_data_word(276, q(est.one_sigma[1]));
        self.cpu.write_data_word(280, q(est.one_sigma[2]));
        self.cpu.write_data_word(284, est.updates as u32);
        self.cpu.load_program(&self.program);
        let stop = self.cpu.run(10_000);
        debug_assert_eq!(stop, StopReason::Halted);
        self.publishes += 1;
    }

    /// Angles read back from the control block (Q16.16-quantized).
    pub fn control_angles(&mut self) -> EulerAngles {
        let control = self
            .cpu
            .bus
            .device_at(CONTROL_BASE)
            .expect("control mapped")
            .as_any()
            .downcast_mut::<ControlBlock>()
            .expect("control block type");
        let qa = control.angles_q16();
        let _valid = control.result_valid();
        let _count = control.reg(ControlReg::UpdateCount);
        EulerAngles::new(
            Q16_16::from_raw(qa[0]).to_f64(),
            Q16_16::from_raw(qa[1]).to_f64(),
            Q16_16::from_raw(qa[2]).to_f64(),
        )
    }

    /// Sabre cycles spent on publish-program executions.
    pub fn cycles(&self) -> u64 {
        self.cpu.cycles()
    }

    /// Sabre instructions retired on publishes.
    pub fn instructions(&self) -> u64 {
        self.cpu.instructions()
    }

    /// Publish-program executions so far.
    pub fn publishes(&self) -> u64 {
        self.publishes
    }
}

impl EventSink for SabrePublishSink {
    fn on_time(&mut self, time_s: f64, estimate: &MisalignmentEstimate) {
        // Scheduled on the session clock, not on updates, so publishes
        // keep firing through a sensor-stream drought (UART error
        // burst, reconstruction gap) just as the hardware would.
        if time_s >= self.next_publish {
            self.next_publish += self.interval_s;
            self.publish(estimate);
        }
    }

    fn on_finish(&mut self, estimate: &MisalignmentEstimate) {
        // Final publish so the control block reflects the end-of-run
        // estimate (the video correction uses it).
        self.publish(estimate);
    }
}

/// Shadows the fusion filter with the Softfloat implementation for the
/// first N updates, accumulating the per-op Sabre cycle costs of the
/// Kalman software (see DESIGN.md section 4.4).
pub struct ShadowKf3Sink {
    shadow: Kf3<SoftArith>,
    last_f_b: Option<Vec3>,
    max_updates: u64,
}

impl ShadowKf3Sink {
    /// Builds the shadow filter from the scenario's filter tuning.
    pub fn new(sc: &ScenarioConfig, max_updates: u64) -> Self {
        Self {
            shadow: Kf3::new(
                SoftArith::default(),
                sc.estimator.filter.initial_angle_sigma,
                sc.estimator.filter.measurement_sigma,
            ),
            last_f_b: None,
            max_updates,
        }
    }

    /// The shadowed filter (inspect its Softfloat stats).
    pub fn kf(&self) -> &Kf3<SoftArith> {
        &self.shadow
    }

    /// Cycle and op cost per shadowed update.
    pub fn cost_per_update(&self) -> (f64, f64) {
        let stats = self.shadow.arith().fpu.stats();
        let updates = self.shadow.update_count().max(1);
        (
            stats.cycles as f64 / updates as f64,
            stats.total_ops() as f64 / updates as f64,
        )
    }
}

impl EventSink for ShadowKf3Sink {
    fn on_event(&mut self, event: &SensorEvent) {
        match *event {
            SensorEvent::Dmu(s) => self.last_f_b = Some(s.accel),
            SensorEvent::Acc { z, .. } => {
                if self.shadow.update_count() < self.max_updates {
                    if let Some(f) = self.last_f_b {
                        self.shadow.step(z, f, 1e-10);
                    }
                }
            }
        }
    }
}

/// Runs the full system against a trajectory.
///
/// Compat shim over the session layer: the event loop lives in
/// [`FusionSession`]; this wrapper wires the [`CommsChainSource`]
/// front end, the production estimator, the Sabre publish and shadow
/// sinks together, then performs the end-of-run video-correction
/// experiment and assembles the [`SystemReport`].
pub fn run_system(trajectory: impl IntoSharedTrajectory, config: &SystemConfig) -> SystemReport {
    let sc = &config.scenario;
    let sabre = Arc::new(Mutex::new(SabrePublishSink::new(config.publish_interval_s)));
    let shadow = Arc::new(Mutex::new(ShadowKf3Sink::new(sc, config.shadow_updates)));
    let mut session = FusionSession::builder()
        .source(CommsChainSource::from_scenario(trajectory, sc))
        .estimator(sc.estimator)
        .truth(sc.true_misalignment)
        .sink(Arc::clone(&shadow))
        .sink(Arc::clone(&sabre))
        .build();
    session.run_to_end();

    let stream = session.stream_stats().expect("comms chain has stats");
    let estimate = session.estimate();
    let control_angles = sabre.lock().expect("sabre sink lock").control_angles();

    // Video correction experiment with the published (quantized) angles.
    let (w, h) = config.frame_size;
    let reference = scene::road(w, h, 0.25);
    let camera = CameraModel::new(config.focal_px, sc.true_misalignment);
    let seen = camera.observe(&reference);
    let correction = CameraModel::correction(&control_angles, config.focal_px, w, h);
    let (corrected, _) = transform(&seen, &correction, MappingKind::FixedInverse);
    let margin = (w / 8).max(8);
    let crop = |f: &video::Frame| f.crop(margin, margin, w - 2 * margin, h - 2 * margin);
    let psnr_mis = psnr(&crop(&reference), &crop(&seen));
    let psnr_cor = psnr(&crop(&reference), &crop(&corrected));
    let (_, fwd_stats) = transform(&seen, &correction, MappingKind::FixedForward);

    // Kalman software budget.
    let (cycles_per_update, ops_per_update) =
        shadow.lock().expect("shadow sink lock").cost_per_update();
    let utilization = cycles_per_update * sc.acc_rate_hz / config.sabre_clock_hz;

    let error = estimate.angles.error_to(&sc.true_misalignment);
    let timing = FrameTiming {
        width: w,
        height: h,
        clock_hz: 65e6,
    };
    let sabre = sabre.lock().expect("sabre sink lock");

    SystemReport {
        truth: sc.true_misalignment,
        estimate,
        error_deg: [
            rad_to_deg(error.roll),
            rad_to_deg(error.pitch),
            rad_to_deg(error.yaw),
        ],
        stream,
        sabre_cycles: sabre.cycles(),
        sabre_instructions: sabre.instructions(),
        kalman_cycles_per_update: cycles_per_update,
        kalman_ops_per_update: ops_per_update,
        kalman_cpu_utilization: utilization,
        control_angles_deg: control_angles.to_degrees(),
        psnr_misaligned_db: psnr_mis,
        psnr_corrected_db: psnr_cor,
        video_fps_budget: timing.max_fps(),
        forward_holes: fwd_stats.holes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SystemConfig {
        let mut cfg = SystemConfig::demo(EulerAngles::from_degrees(2.0, -1.5, 2.5));
        cfg.scenario.duration_s = 40.0;
        cfg.shadow_updates = 300;
        cfg
    }

    #[test]
    fn sabre_publishes_on_wall_clock_even_without_updates() {
        // The publish schedule is driven by the session clock, not by
        // filter updates, so a sensor-stream drought does not stall the
        // control block (the pre-session batch loop behaved this way).
        let mut sink = SabrePublishSink::new(0.2);
        let est = MisalignmentEstimate {
            angles: EulerAngles::zero(),
            one_sigma: Vec3::zeros(),
            updates: 0,
        };
        for i in 1..=100 {
            sink.on_time(i as f64 * 0.01, &est); // 1 s of ticks, zero updates
        }
        assert_eq!(sink.publishes(), 5);
    }

    #[test]
    fn system_config_from_spec_carries_the_scenario() {
        let spec = crate::catalog::can_fault_storm().with_duration(25.0);
        let cfg = SystemConfig::from_spec(&spec);
        assert_eq!(cfg.scenario.duration_s, 25.0);
        assert!(!cfg.scenario.link_faults.is_clean());
        let trajectory = spec.lower_trajectory();
        let report = run_system(&trajectory, &cfg);
        // The fault storm damages frames; the checksums must catch it
        // and the estimate must survive.
        assert!(report.stream.fault_bits_flipped > 0);
        assert!(report.stream.dmu_errors + report.stream.acc_errors > 0);
        assert!(report.estimate.angles.max_abs().is_finite());
    }

    #[test]
    fn end_to_end_system_converges() {
        let cfg = quick_config();
        let profile = vehicle::profile::presets::urban_drive(cfg.scenario.duration_s);
        let report = run_system(&profile, &cfg);
        // Convergence through the full serial + quantization chain.
        for (axis, err) in ["roll", "pitch", "yaw"].iter().zip(report.error_deg) {
            assert!(err.abs() < 1.0, "{axis} error {err} deg");
        }
        // Clean links: no CRC errors on a clean channel.
        assert_eq!(report.stream.dmu_errors, 0);
        assert_eq!(report.stream.acc_errors, 0);
        assert!(report.stream.dmu_samples > 1000);
        assert!(report.stream.acc_samples > 2000);
    }

    #[test]
    fn control_block_reflects_estimate() {
        let cfg = quick_config();
        let profile = vehicle::profile::presets::urban_drive(cfg.scenario.duration_s);
        let report = run_system(&profile, &cfg);
        // The control block holds the last published estimate,
        // quantized to Q16.16 (resolution ~ 0.0009 deg).
        for (c, e) in report
            .control_angles_deg
            .iter()
            .zip(report.estimate.angles.to_degrees())
        {
            assert!((c - e).abs() < 0.01, "{c} vs {e}");
        }
        assert!(report.sabre_cycles > 0);
        assert!(report.sabre_instructions > 0);
    }

    #[test]
    fn video_correction_improves_psnr() {
        let cfg = quick_config();
        let profile = vehicle::profile::presets::urban_drive(cfg.scenario.duration_s);
        let report = run_system(&profile, &cfg);
        assert!(
            report.psnr_corrected_db > report.psnr_misaligned_db + 3.0,
            "misaligned {:.1} dB corrected {:.1} dB",
            report.psnr_misaligned_db,
            report.psnr_corrected_db
        );
        assert!(report.video_fps_budget > 25.0);
    }

    #[test]
    fn kalman_fits_sabre_realtime_budget() {
        let cfg = quick_config();
        let profile = vehicle::profile::presets::urban_drive(cfg.scenario.duration_s);
        let report = run_system(&profile, &cfg);
        assert!(report.kalman_cycles_per_update > 1000.0);
        assert!(report.kalman_ops_per_update > 50.0);
        assert!(
            report.kalman_cpu_utilization < 1.0,
            "Kalman does not fit: {}",
            report.kalman_cpu_utilization
        );
    }
}
