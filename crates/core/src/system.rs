//! End-to-end system simulation: Figure 2 and Figure 3 as one loop.
//!
//! Composes every substrate in the workspace the way the paper wires
//! the hardware:
//!
//! ```text
//! vehicle --> DMU --CAN frames--> bridge --UART 38400--> |        |
//!         --> ACC --eval packets--------UART 19200-----> | recon- | --> fusion
//!                                                        | struct |      |
//!   Sabre soft-core <---- mailbox <------ estimate <-----+--------+------+
//!      | (program copies results to the control block)
//!      v
//!  control block (Q16.16 angles) --> affine video correction --> PSNR
//! ```
//!
//! The Kalman software cost on the Sabre is accounted by shadowing the
//! filter with the Softfloat implementation for the first updates and
//! charging its per-op Sabre cycle costs (see DESIGN.md section 4.4).

use crate::arith::{Kf3, SoftArith};
use crate::estimator::{BoresightEstimator, MisalignmentEstimate};
use crate::scenario::ScenarioConfig;
use comms::{
    AdxlPacket, BridgeEncoder, DmuCanCodec, Reconstructor, SensorMessage, StreamStats, UartConfig,
    UartLink,
};
use fpga::fixed::Q16_16;
use fpga::pipeline::FrameTiming;
use fpga::sabre::{assemble, ControlBlock, ControlReg, Sabre, StopReason, CONTROL_BASE};
use mathx::{rad_to_deg, EulerAngles, GaussianSampler, Vec2};
use sensors::{Adxl202, Adxl202Config, Dmu, Mounting};
use vehicle::{RoadVibration, Trajectory};
use video::{
    affine::{transform, MappingKind},
    camera::CameraModel,
    metrics::psnr,
    scene,
};

/// The Sabre program that publishes fused results: it copies the
/// mailbox the fusion software fills (data memory, word address 64)
/// into the memory-mapped control block and sets the valid flag —
/// the role `SabreControlRun` plays in the paper's Figure 7.
const PUBLISH_PROGRAM: &str = "
        ; mailbox layout at byte 256 (word 64):
        ;   +0 valid, +4 roll, +8 pitch, +12 yaw (Q16.16 rad)
        ;   +16..+24 three 1-sigma values (Q16.16 rad), +28 count
        lw   r1, 256(r0)
        beq  r1, r0, done       ; no new result
        lui  r2, 0x8000
        ori  r2, r2, 0x60       ; control block base
        lw   r3, 260(r0)
        sw   r3, 0(r2)          ; roll
        lw   r3, 264(r0)
        sw   r3, 4(r2)          ; pitch
        lw   r3, 268(r0)
        sw   r3, 8(r2)          ; yaw
        lw   r3, 272(r0)
        sw   r3, 12(r2)         ; roll sigma
        lw   r3, 276(r0)
        sw   r3, 16(r2)         ; pitch sigma
        lw   r3, 280(r0)
        sw   r3, 20(r2)         ; yaw sigma
        lw   r3, 284(r0)
        sw   r3, 28(r2)         ; update count
        addi r4, r0, 1
        sw   r4, 24(r2)         ; status: result valid
        sw   r0, 256(r0)        ; consume the mailbox
done:   halt
";

/// System-level configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// The underlying scenario (truth, sensors, filter tuning).
    pub scenario: ScenarioConfig,
    /// Video frame size for the correction experiment.
    pub frame_size: (u32, u32),
    /// Camera focal length, pixels.
    pub focal_px: f64,
    /// Sabre core clock, Hz (the paper does not quote one; 25 MHz is
    /// typical for a soft core on a Virtex-II).
    pub sabre_clock_hz: f64,
    /// How often the fusion result is published to the control block.
    pub publish_interval_s: f64,
    /// How many filter updates to shadow with the Softfloat filter for
    /// cycle accounting.
    pub shadow_updates: u64,
}

impl SystemConfig {
    /// A dynamic-drive system test with the given truth.
    pub fn demo(true_misalignment: EulerAngles) -> Self {
        Self {
            scenario: ScenarioConfig::dynamic_test(true_misalignment),
            frame_size: (160, 120),
            focal_px: 300.0,
            sabre_clock_hz: 25e6,
            publish_interval_s: 0.2,
            shadow_updates: 1000,
        }
    }
}

/// Everything the system run reports.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Injected truth.
    pub truth: EulerAngles,
    /// Final fused estimate.
    pub estimate: MisalignmentEstimate,
    /// Per-axis error, degrees.
    pub error_deg: [f64; 3],
    /// Serial-link/reconstruction statistics.
    pub stream: StreamStats,
    /// Sabre cycles spent on publish-program executions.
    pub sabre_cycles: u64,
    /// Sabre instructions retired on publishes.
    pub sabre_instructions: u64,
    /// Softfloat Kalman cost: cycles per filter update.
    pub kalman_cycles_per_update: f64,
    /// Softfloat Kalman cost: float ops per filter update.
    pub kalman_ops_per_update: f64,
    /// Fraction of the Sabre clock the Kalman software needs at the
    /// ACC rate (< 1.0 means real time, as the paper demonstrates).
    pub kalman_cpu_utilization: f64,
    /// Angles read back from the control block (Q16.16-quantized).
    pub control_angles_deg: [f64; 3],
    /// PSNR of the misaligned camera view vs the reference, dB.
    pub psnr_misaligned_db: f64,
    /// PSNR after correction with the published estimate, dB.
    pub psnr_corrected_db: f64,
    /// Video pipeline frame-rate budget at the pixel clock.
    pub video_fps_budget: f64,
    /// Holes the paper-faithful forward mapping left in one frame.
    pub forward_holes: u64,
}

/// Writes an estimate into the Sabre mailbox and runs the publish
/// program, which copies it to the control block.
fn publish(cpu: &mut Sabre, program: &[u32], est: &MisalignmentEstimate) {
    let q = |x: f64| Q16_16::from_f64(x).raw() as u32;
    cpu.write_data_word(256, 1);
    cpu.write_data_word(260, q(est.angles.roll));
    cpu.write_data_word(264, q(est.angles.pitch));
    cpu.write_data_word(268, q(est.angles.yaw));
    cpu.write_data_word(272, q(est.one_sigma[0]));
    cpu.write_data_word(276, q(est.one_sigma[1]));
    cpu.write_data_word(280, q(est.one_sigma[2]));
    cpu.write_data_word(284, est.updates as u32);
    cpu.load_program(program);
    let stop = cpu.run(10_000);
    debug_assert_eq!(stop, StopReason::Halted);
}

/// Runs the full system against a trajectory.
pub fn run_system(trajectory: &dyn Trajectory, config: &SystemConfig) -> SystemReport {
    let sc = &config.scenario;
    let mut rng = mathx::rng::seeded_rng(sc.seed);
    let mut gauss = GaussianSampler::new();

    // Instruments.
    let mut dmu = Dmu::new(sc.dmu);
    let mut acc_cfg = Adxl202Config::ideal();
    acc_cfg.sample_rate_hz = sc.acc_rate_hz;
    acc_cfg.channel.error.noise_std = sc.acc_noise_sigma;
    acc_cfg.timer_resolution_us = 0.5;
    let mut acc = Adxl202::new(acc_cfg);
    let mounting = Mounting::new(sc.true_misalignment, sc.estimator.lever_arm);
    let mut common_vib = RoadVibration::new(sc.vibration);
    let mut diff_vib = RoadVibration::new(sc.vibration);

    // Comms chain.
    let mut bridge_enc = BridgeEncoder::new();
    let mut dmu_link = UartLink::new(UartConfig::baud_38400());
    let mut acc_link = UartLink::new(UartConfig::baud_19200());
    let mut recon = Reconstructor::new(1.0 / dmu.dt(), sc.acc_rate_hz);

    // Fusion.
    let mut estimator = BoresightEstimator::new(sc.estimator);
    let mut shadow = Kf3::new(
        SoftArith::default(),
        sc.estimator.filter.initial_angle_sigma,
        sc.estimator.filter.measurement_sigma,
    );
    let mut last_f_b = None;

    // Sabre.
    let program = assemble(PUBLISH_PROGRAM).expect("publish program assembles");
    let mut cpu = Sabre::with_standard_bus();
    let mut publishes = 0u64;
    let mut next_publish = config.publish_interval_s;

    let acc_dt = 1.0 / sc.acc_rate_hz;
    let dmu_every = (dmu.dt() / acc_dt).round().max(1.0) as usize;
    let steps = (sc.duration_s / acc_dt).round() as usize;

    for i in 0..steps {
        let t = i as f64 * acc_dt;
        let state = trajectory.sample(t);
        let speed = state.speed();
        let (df, dw) = common_vib.step(speed, &mut rng);
        let f_b = state.specific_force_body() + df;
        let w_b = state.angular_rate_b + dw;

        // DMU -> CAN -> bridge -> UART.
        if i % dmu_every == 0 {
            let sample = dmu.sample(f_b, w_b, &mut rng);
            for frame in DmuCanCodec::encode(&sample) {
                dmu_link.send(&bridge_enc.encode(&frame));
            }
        }
        // ACC -> eval packet -> UART.
        let f_sensor = mounting.body_to_sensor(f_b, w_b, state.angular_accel_b);
        let (dfd, _) = diff_vib.step(speed, &mut rng);
        let input = Vec2::new([
            f_sensor[0] + sc.differential_vibration * dfd[0] + sc.true_acc_bias[0]
                + gauss.sample_scaled(&mut rng, 0.0, 0.0),
            f_sensor[1] + sc.differential_vibration * dfd[1] + sc.true_acc_bias[1],
        ]);
        let duty = acc.sample(input, &mut rng);
        let packet = AdxlPacket::from_sample(&duty);
        acc_link.send(&packet.to_bytes());

        // Serial delivery at line rate.
        let dmu_bytes = dmu_link.poll(acc_dt);
        if !dmu_bytes.is_empty() {
            recon.push_dmu_bytes(&dmu_bytes);
        }
        let acc_bytes = acc_link.poll(acc_dt);
        if !acc_bytes.is_empty() {
            recon.push_acc_bytes(&acc_bytes);
        }

        // Fusion consumes reconstructed messages.
        while let Some(msg) = recon.pop() {
            match msg {
                SensorMessage::Dmu(s) => {
                    last_f_b = Some(s.accel);
                    estimator.on_dmu(&s);
                }
                SensorMessage::Acc(s) => {
                    let z = s.decode();
                    if let Some(update) = estimator.on_acc(s.time_s, z) {
                        let _ = update;
                        if shadow.update_count() < config.shadow_updates {
                            if let Some(f) = last_f_b {
                                shadow.step(z, f, 1e-10);
                            }
                        }
                    }
                }
            }
        }

        // Periodic publish through the Sabre core.
        if t >= next_publish {
            next_publish += config.publish_interval_s;
            publish(&mut cpu, &program.words, &estimator.estimate());
            publishes += 1;
        }
    }
    // Final publish so the control block reflects the end-of-run
    // estimate (the video correction below uses it).
    publish(&mut cpu, &program.words, &estimator.estimate());
    publishes += 1;

    // Read the published result back from the control block.
    let control = cpu
        .bus
        .device_at(CONTROL_BASE)
        .expect("control mapped")
        .as_any()
        .downcast_mut::<ControlBlock>()
        .expect("control block type");
    let qa = control.angles_q16();
    let control_angles = EulerAngles::new(
        Q16_16::from_raw(qa[0]).to_f64(),
        Q16_16::from_raw(qa[1]).to_f64(),
        Q16_16::from_raw(qa[2]).to_f64(),
    );
    let _valid = control.result_valid();
    let _count = control.reg(ControlReg::UpdateCount);

    // Video correction experiment with the published (quantized) angles.
    let (w, h) = config.frame_size;
    let reference = scene::road(w, h, 0.25);
    let camera = CameraModel::new(config.focal_px, sc.true_misalignment);
    let seen = camera.observe(&reference);
    let correction = CameraModel::correction(&control_angles, config.focal_px, w, h);
    let (corrected, _) = transform(&seen, &correction, MappingKind::FixedInverse);
    let margin = (w / 8).max(8);
    let crop = |f: &video::Frame| f.crop(margin, margin, w - 2 * margin, h - 2 * margin);
    let psnr_mis = psnr(&crop(&reference), &crop(&seen));
    let psnr_cor = psnr(&crop(&reference), &crop(&corrected));
    let (_, fwd_stats) = transform(&seen, &correction, MappingKind::FixedForward);

    // Kalman software budget.
    let stats = shadow.arith().fpu.stats();
    let updates = shadow.update_count().max(1);
    let cycles_per_update = stats.cycles as f64 / updates as f64;
    let ops_per_update = stats.total_ops() as f64 / updates as f64;
    let utilization = cycles_per_update * sc.acc_rate_hz / config.sabre_clock_hz;

    let estimate = estimator.estimate();
    let error = estimate.angles.error_to(&sc.true_misalignment);
    let timing = FrameTiming {
        width: w,
        height: h,
        clock_hz: 65e6,
    };
    let _ = publishes;

    SystemReport {
        truth: sc.true_misalignment,
        estimate,
        error_deg: [
            rad_to_deg(error.roll),
            rad_to_deg(error.pitch),
            rad_to_deg(error.yaw),
        ],
        stream: recon.stats(),
        sabre_cycles: cpu.cycles(),
        sabre_instructions: cpu.instructions(),
        kalman_cycles_per_update: cycles_per_update,
        kalman_ops_per_update: ops_per_update,
        kalman_cpu_utilization: utilization,
        control_angles_deg: control_angles.to_degrees(),
        psnr_misaligned_db: psnr_mis,
        psnr_corrected_db: psnr_cor,
        video_fps_budget: timing.max_fps(),
        forward_holes: fwd_stats.holes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SystemConfig {
        let mut cfg = SystemConfig::demo(EulerAngles::from_degrees(2.0, -1.5, 2.5));
        cfg.scenario.duration_s = 40.0;
        cfg.shadow_updates = 300;
        cfg
    }

    #[test]
    fn end_to_end_system_converges() {
        let cfg = quick_config();
        let profile = vehicle::profile::presets::urban_drive(cfg.scenario.duration_s);
        let report = run_system(&profile, &cfg);
        // Convergence through the full serial + quantization chain.
        for (axis, err) in ["roll", "pitch", "yaw"].iter().zip(report.error_deg) {
            assert!(err.abs() < 1.0, "{axis} error {err} deg");
        }
        // Clean links: no CRC errors on a clean channel.
        assert_eq!(report.stream.dmu_errors, 0);
        assert_eq!(report.stream.acc_errors, 0);
        assert!(report.stream.dmu_samples > 1000);
        assert!(report.stream.acc_samples > 2000);
    }

    #[test]
    fn control_block_reflects_estimate() {
        let cfg = quick_config();
        let profile = vehicle::profile::presets::urban_drive(cfg.scenario.duration_s);
        let report = run_system(&profile, &cfg);
        // The control block holds the last published estimate,
        // quantized to Q16.16 (resolution ~ 0.0009 deg).
        for (c, e) in report
            .control_angles_deg
            .iter()
            .zip(report.estimate.angles.to_degrees())
        {
            assert!((c - e).abs() < 0.01, "{c} vs {e}");
        }
        assert!(report.sabre_cycles > 0);
        assert!(report.sabre_instructions > 0);
    }

    #[test]
    fn video_correction_improves_psnr() {
        let cfg = quick_config();
        let profile = vehicle::profile::presets::urban_drive(cfg.scenario.duration_s);
        let report = run_system(&profile, &cfg);
        assert!(
            report.psnr_corrected_db > report.psnr_misaligned_db + 3.0,
            "misaligned {:.1} dB corrected {:.1} dB",
            report.psnr_misaligned_db,
            report.psnr_corrected_db
        );
        assert!(report.video_fps_budget > 25.0);
    }

    #[test]
    fn kalman_fits_sabre_realtime_budget() {
        let cfg = quick_config();
        let profile = vehicle::profile::presets::urban_drive(cfg.scenario.duration_s);
        let report = run_system(&profile, &cfg);
        assert!(report.kalman_cycles_per_update > 1000.0);
        assert!(report.kalman_ops_per_update > 50.0);
        assert!(
            report.kalman_cpu_utilization < 1.0,
            "Kalman does not fit: {}",
            report.kalman_cpu_utilization
        );
    }
}
