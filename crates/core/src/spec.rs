//! Declarative scenario specifications and the sweep runner.
//!
//! [`ScenarioConfig`] grew out of the paper's two
//! procedures (static tilt table, one dynamic drive) and hard-codes
//! that pair. This module replaces it as the *authoring* surface with
//! a pure-data, composable [`ScenarioSpec`]:
//!
//! * [`TrajectorySpec`] — what the vehicle does: the paper tilt-table
//!   sequences, a level bench, the preset drives, or an arbitrary
//!   [`vehicle::Segment`] list repeated to cover the run;
//! * [`EnvironmentSpec`] — what the road does: a vibration class
//!   (lab / passenger car / truck), a road-roughness multiplier and
//!   the differential (mount-flexure) vibration fraction;
//! * [`ChannelSpec`] — how measurements travel: ideal synthetic
//!   instruments, or the full Figure-2 CAN/UART comms chain with
//!   byte-level [`LinkFaultConfig`] fault injection;
//! * [`TuningSpec`] — which estimator tuning runs: the paper's static
//!   or dynamic configuration, or a custom [`EstimatorConfig`];
//! * [`Substrate`] — which arithmetic the full 5-state IEKF runs over
//!   (native `f64`, Sabre-accounted Softfloat, or Q16.16 fixed point).
//!
//! A spec lowers in two steps: [`ScenarioSpec::config`] produces the
//! legacy [`ScenarioConfig`] (kept bit-identical for the two paper
//! procedures), and [`ScenarioSpec::into_session`] produces the
//! streaming [`FusionSession`] over a trajectory built by
//! [`ScenarioSpec::lower_trajectory`]. [`ScenarioSpec::run`] does all
//! three for the batch case.
//!
//! [`ScenarioSuite`] executes a scenario × substrate matrix over a
//! [`SessionGroup`] and reports one machine-readable [`SuiteCell`] per
//! cell; the named workloads live in [`crate::catalog`].
//!
//! ```
//! use boresight::spec::{EnvironmentSpec, ScenarioSpec, TrajectorySpec};
//! use mathx::EulerAngles;
//! use vehicle::Segment;
//!
//! let result = ScenarioSpec::named("brake-and-turn")
//!     .with_truth(EulerAngles::from_degrees(2.0, -1.0, 1.5))
//!     .with_trajectory(TrajectorySpec::Segments {
//!         block: vec![
//!             Segment::accelerate(4.0, 2.5),
//!             Segment::turn(4.0, 0.3),
//!             Segment::brake(3.0, 3.0),
//!             Segment::idle(1.0),
//!         ],
//!     })
//!     .with_environment(EnvironmentSpec::passenger_car())
//!     .with_duration(24.0)
//!     .run();
//! assert!(result.max_error_deg().is_finite());
//! ```

use crate::adaptive::AdaptiveBackend;
use crate::arith::{Arith, F64Arith, QArith, SoftArith};
use crate::estimator::{EstimatorConfig, GenericBoresightEstimator};
use crate::exec;
use crate::report::VehicleSummary;
use crate::scenario::{RunResult, ScenarioConfig};
use crate::session::{
    CommsChainSource, FusionSession, IntoSharedTrajectory, LinkFaultConfig, SensorSource,
    SessionBuilder, SessionGroup, SyntheticSource,
};
use mathx::{EulerAngles, Vec2};
use std::sync::Arc;
use vehicle::{profile::presets, DriveProfile, Segment, TiltTable, Trajectory, VibrationConfig};

/// What the vehicle (or test platform) does during the run.
///
/// A spec carries no duration of its own: [`TrajectorySpec::lower`]
/// stretches the description to the scenario's `duration_s` — tilt
/// sequences split it into equal holds, drives repeat their block —
/// which is the hold/repeat arithmetic `run_static`, `run_dynamic` and
/// the bench binaries used to copy-paste.
#[derive(Clone, Debug, PartialEq)]
pub enum TrajectorySpec {
    /// The paper's tilt-table observability sequence (8 equal holds).
    TiltSequence {
        /// Tilt magnitude per orientation step, degrees.
        tilt_deg: f64,
    },
    /// A level, motionless platform for the whole run.
    Level,
    /// The urban stop-and-go preset drive.
    Urban,
    /// The highway preset drive.
    Highway,
    /// An arbitrary drive-segment block, repeated end to end until it
    /// covers the scenario duration.
    Segments {
        /// The segments of one repetition.
        block: Vec<Segment>,
    },
}

impl TrajectorySpec {
    /// The paper's static procedure: 20-degree tilts, duration/8 holds.
    pub fn paper_tilt_table() -> Self {
        Self::TiltSequence { tilt_deg: 20.0 }
    }

    /// Builds the trajectory this spec describes for a `duration_s`
    /// run.
    pub fn lower(&self, duration_s: f64) -> ScenarioTrajectory {
        match self {
            Self::TiltSequence { tilt_deg } => ScenarioTrajectory::Table(
                TiltTable::observability_sequence(*tilt_deg, duration_s / 8.0),
            ),
            Self::Level => ScenarioTrajectory::Table(TiltTable::level(duration_s)),
            Self::Urban => ScenarioTrajectory::Drive(presets::urban_drive(duration_s)),
            Self::Highway => ScenarioTrajectory::Drive(presets::highway_drive(duration_s)),
            Self::Segments { block } => {
                ScenarioTrajectory::Drive(DriveProfile::repeated(block, duration_s))
            }
        }
    }
}

/// An owned, lowered trajectory (tilt table or drive profile).
#[derive(Clone, Debug)]
pub enum ScenarioTrajectory {
    /// A stationary tilt-table schedule.
    Table(TiltTable),
    /// A piecewise drive profile.
    Drive(DriveProfile),
}

crate::session::impl_into_shared_trajectory!(ScenarioTrajectory);

impl Trajectory for ScenarioTrajectory {
    fn duration_s(&self) -> f64 {
        match self {
            Self::Table(t) => t.duration_s(),
            Self::Drive(d) => d.duration_s(),
        }
    }

    fn sample(&self, t: f64) -> vehicle::KinematicState {
        match self {
            Self::Table(table) => table.sample(t),
            Self::Drive(drive) => drive.sample(t),
        }
    }
}

/// The road-vibration class a scenario runs in.
#[derive(Clone, Copy, Debug)]
pub enum VibrationClass {
    /// Static laboratory platform: no vibration at all.
    None,
    /// A standard private passenger vehicle (the paper's test car).
    PassengerCar,
    /// A heavy truck: roughly 3x the passenger-car intensity.
    Truck,
    /// An explicit vibration model.
    Custom(VibrationConfig),
}

/// What the environment does to the instruments.
#[derive(Clone, Copy, Debug)]
pub struct EnvironmentSpec {
    /// Common rigid-body vibration class.
    pub vibration: VibrationClass,
    /// Road-roughness multiplier on the class RMS values (1.0 =
    /// nominal; potholed surfaces run 2-3x).
    pub road_roughness: f64,
    /// Mount-flexure vibration sensed only by the ACC, as a fraction
    /// of the common intensity — the term that forces the paper's
    /// dynamic retuning.
    pub differential_vibration: f64,
}

impl EnvironmentSpec {
    /// The paper's static laboratory: no vibration.
    pub fn laboratory() -> Self {
        Self {
            vibration: VibrationClass::None,
            road_roughness: 1.0,
            differential_vibration: 0.0,
        }
    }

    /// The paper's dynamic test environment: passenger-car vibration
    /// with 10 % mount flexure.
    pub fn passenger_car() -> Self {
        Self {
            vibration: VibrationClass::PassengerCar,
            road_roughness: 1.0,
            differential_vibration: 0.1,
        }
    }

    /// Heavy-truck vibration with a stiffer mount (15 % flexure).
    pub fn truck() -> Self {
        Self {
            vibration: VibrationClass::Truck,
            road_roughness: 1.0,
            differential_vibration: 0.15,
        }
    }

    /// A badly surfaced road: passenger-car vibration at 2.5x RMS and
    /// elevated mount flexure.
    pub fn rough_road() -> Self {
        Self {
            vibration: VibrationClass::PassengerCar,
            road_roughness: 2.5,
            differential_vibration: 0.25,
        }
    }

    /// The [`VibrationConfig`] this environment lowers to (roughness
    /// of exactly 1.0 passes the class configuration through
    /// untouched, keeping the paper environments bit-identical).
    pub fn vibration_config(&self) -> VibrationConfig {
        let base = match self.vibration {
            VibrationClass::None => VibrationConfig::none(),
            VibrationClass::PassengerCar => VibrationConfig::passenger_car(),
            VibrationClass::Truck => VibrationConfig::truck(),
            VibrationClass::Custom(cfg) => cfg,
        };
        if self.road_roughness == 1.0 {
            base
        } else {
            VibrationConfig {
                accel_rms: base.accel_rms * self.road_roughness,
                rate_rms: base.rate_rms * self.road_roughness,
                ..base
            }
        }
    }
}

/// How measurements reach the fusion core.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ChannelSpec {
    /// Synthetic instruments wired straight to the session — no
    /// serial transport (the [`crate::session::SyntheticSource`]
    /// path).
    #[default]
    Ideal,
    /// The full Figure-2 chain — DMU over CAN through the RS-232
    /// bridge, ACC eval packets, both UARTs at line rate,
    /// reconstruction — with optional byte-level fault injection
    /// (the [`CommsChainSource`] path).
    Comms {
        /// Fault rates on both serial links.
        faults: LinkFaultConfig,
    },
}

impl ChannelSpec {
    /// The comms chain with a clean channel.
    pub fn comms() -> Self {
        Self::Comms {
            faults: LinkFaultConfig::clean(),
        }
    }
}

/// Which estimator tuning the scenario runs.
#[derive(Clone, Copy, Debug)]
pub enum TuningSpec {
    /// The paper's static-test tuning ([`EstimatorConfig::paper_static`]).
    Static,
    /// The paper's dynamic (vehicle) tuning ([`EstimatorConfig::paper_dynamic`]).
    Dynamic,
    /// An explicit estimator configuration.
    Custom(EstimatorConfig),
}

impl TuningSpec {
    /// The [`EstimatorConfig`] this tuning lowers to.
    pub fn estimator_config(&self) -> EstimatorConfig {
        match self {
            Self::Static => EstimatorConfig::paper_static(),
            Self::Dynamic => EstimatorConfig::paper_dynamic(),
            Self::Custom(cfg) => *cfg,
        }
    }
}

/// The arithmetic substrate the full 5-state IEKF runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Substrate {
    /// Native `f64` (the reference).
    F64,
    /// Emulated IEEE double with Sabre cycle accounting (the paper's
    /// deployed configuration).
    Softfloat,
    /// Saturating Q16.16 fixed point (the paper's proposed
    /// enhancement).
    Q16_16,
    /// The context-aware supervisor ([`crate::adaptive::AdaptiveBackend`]):
    /// starts on Q16.16 and hot-swaps substrates under the default
    /// hysteresis policy, logging every switch to its reconfiguration
    /// ledger.
    Adaptive,
}

impl Substrate {
    /// Every *static* substrate, in reference-first order. The
    /// adaptive supervisor is not listed — it reconfigures across
    /// these and is opted into per scenario or per suite axis.
    pub fn all() -> [Self; 3] {
        [Self::F64, Self::Softfloat, Self::Q16_16]
    }

    /// Short name (`f64`, `softfloat`, `q16.16`, `adaptive`).
    pub fn label(self) -> &'static str {
        match self {
            Self::F64 => "f64",
            Self::Softfloat => "softfloat",
            Self::Q16_16 => "q16.16",
            Self::Adaptive => "adaptive",
        }
    }

    /// Whether this substrate can quantize a healthy steady-state
    /// covariance to exactly zero. Q16.16's resolution (1/65536) is
    /// coarser than the converged angle variances, so its reported
    /// sigma legitimately reads 0.0 after convergence; the adaptive
    /// supervisor idles on q16.16 and inherits the same behavior.
    /// Health checks that treat a zero sigma as a defect must skip
    /// these substrates.
    pub fn quantizes_sigma(self) -> bool {
        matches!(self, Self::Q16_16 | Self::Adaptive)
    }

    /// Parses a short name (`fixed` is accepted for `q16.16`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "f64" => Some(Self::F64),
            "softfloat" => Some(Self::Softfloat),
            "q16.16" | "fixed" => Some(Self::Q16_16),
            "adaptive" => Some(Self::Adaptive),
            _ => None,
        }
    }

    /// Attaches the full 5-state IEKF over this substrate to a session
    /// builder — the one substrate-dispatch site every lowering path
    /// shares.
    pub fn attach_iekf(
        self,
        builder: SessionBuilder,
        estimator: EstimatorConfig,
    ) -> SessionBuilder {
        match self {
            Self::F64 => builder.iekf(F64Arith::default(), estimator),
            Self::Softfloat => builder.iekf(SoftArith::default(), estimator),
            Self::Q16_16 => builder.iekf(QArith::<16>::default(), estimator),
            Self::Adaptive => builder.backend(AdaptiveBackend::default_for(estimator)),
        }
    }

    /// [`FusionSession::iekf_from_scenario`] with the substrate chosen
    /// at run time instead of by type parameter.
    pub fn iekf_from_scenario(
        self,
        trajectory: impl IntoSharedTrajectory,
        config: &ScenarioConfig,
    ) -> FusionSession {
        match self {
            Self::F64 => FusionSession::iekf_from_scenario(trajectory, config, F64Arith::default()),
            Self::Softfloat => {
                FusionSession::iekf_from_scenario(trajectory, config, SoftArith::default())
            }
            Self::Q16_16 => {
                FusionSession::iekf_from_scenario(trajectory, config, QArith::<16>::default())
            }
            Self::Adaptive => {
                let expected = FusionSession::expected_updates(config);
                FusionSession::builder()
                    .source(SyntheticSource::from_scenario(trajectory, config))
                    .backend(AdaptiveBackend::default_for(config.estimator))
                    .truth(config.true_misalignment)
                    .record_traces_sized(config.trace_decimation, expected)
                    .build()
            }
        }
    }

    /// Reads `(total ops, saturations, cycles)` off a session whose
    /// full-IEKF backend runs over this substrate — the one
    /// instrumentation-dispatch site the suite and the arithmetic
    /// ablation share. Returns zeros for a foreign backend.
    pub fn read_instrumentation(self, session: &FusionSession) -> (u64, u64, u64) {
        match self {
            Self::F64 => instrumentation::<F64Arith>(session),
            Self::Softfloat => instrumentation::<SoftArith>(session),
            Self::Q16_16 => instrumentation::<QArith<16>>(session),
            Self::Adaptive => session
                .backend_as::<AdaptiveBackend>()
                .map(|b| {
                    (
                        b.total_ops().total(),
                        b.total_saturations(),
                        b.total_cycles(),
                    )
                })
                .unwrap_or((0, 0, 0)),
        }
    }
}

impl std::fmt::Display for Substrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A declarative, composable scenario: everything a workload needs,
/// as pure data, buildable fluently and lowered to the session layer
/// through [`ScenarioSpec::into_session`].
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Catalog name (kebab-case by convention).
    pub name: String,
    /// True mounting misalignment to inject.
    pub truth: EulerAngles,
    /// True ACC biases, m/s^2.
    pub acc_bias: Vec2,
    /// Run length, seconds.
    pub duration_s: f64,
    /// RNG seed (specs are fully deterministic given the seed).
    pub seed: u64,
    /// Keep every n-th residual/estimate point in the trace.
    pub trace_decimation: usize,
    /// What the vehicle does.
    pub trajectory: TrajectorySpec,
    /// What the road does.
    pub environment: EnvironmentSpec,
    /// How measurements travel.
    pub channel: ChannelSpec,
    /// Which estimator tuning runs.
    pub tuning: TuningSpec,
    /// Which arithmetic the IEKF runs over.
    pub substrate: Substrate,
}

impl ScenarioSpec {
    /// A named spec with the paper's static-test defaults: tilt-table
    /// trajectory, laboratory environment, ideal channel, static
    /// tuning, native `f64`, 300 s, the shared deterministic seed
    /// (the scalar defaults come from [`ScenarioConfig::default`], the
    /// single source of the paper baseline).
    pub fn named(name: impl Into<String>) -> Self {
        let base = ScenarioConfig::default();
        Self {
            name: name.into(),
            truth: base.true_misalignment,
            acc_bias: base.true_acc_bias,
            duration_s: base.duration_s,
            seed: base.seed,
            trace_decimation: base.trace_decimation,
            trajectory: TrajectorySpec::paper_tilt_table(),
            environment: EnvironmentSpec::laboratory(),
            channel: ChannelSpec::Ideal,
            tuning: TuningSpec::Static,
            substrate: Substrate::F64,
        }
    }

    /// Sets the injected truth.
    pub fn with_truth(mut self, truth: EulerAngles) -> Self {
        self.truth = truth;
        self
    }

    /// Sets the true ACC biases.
    pub fn with_acc_bias(mut self, bias: Vec2) -> Self {
        self.acc_bias = bias;
        self
    }

    /// Sets the run length, seconds.
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trace decimation.
    pub fn with_trace_decimation(mut self, decimation: usize) -> Self {
        self.trace_decimation = decimation;
        self
    }

    /// Sets the trajectory.
    pub fn with_trajectory(mut self, trajectory: TrajectorySpec) -> Self {
        self.trajectory = trajectory;
        self
    }

    /// Sets the environment.
    pub fn with_environment(mut self, environment: EnvironmentSpec) -> Self {
        self.environment = environment;
        self
    }

    /// Sets the measurement channel.
    pub fn with_channel(mut self, channel: ChannelSpec) -> Self {
        self.channel = channel;
        self
    }

    /// Sets the estimator tuning.
    pub fn with_tuning(mut self, tuning: TuningSpec) -> Self {
        self.tuning = tuning;
        self
    }

    /// Sets the arithmetic substrate.
    pub fn with_substrate(mut self, substrate: Substrate) -> Self {
        self.substrate = substrate;
        self
    }

    /// Lowers the spec to the legacy [`ScenarioConfig`] — the thin
    /// target the batch wrappers and the comms/system layers consume.
    /// For the two paper procedures this reproduces
    /// [`ScenarioConfig::static_test`] / [`ScenarioConfig::dynamic_test`]
    /// bit for bit (pinned by test).
    pub fn config(&self) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::static_test(self.truth);
        cfg.true_acc_bias = self.acc_bias;
        cfg.duration_s = self.duration_s;
        cfg.seed = self.seed;
        cfg.trace_decimation = self.trace_decimation;
        cfg.vibration = self.environment.vibration_config();
        cfg.differential_vibration = self.environment.differential_vibration;
        cfg.estimator = self.tuning.estimator_config();
        cfg.link_faults = match self.channel {
            ChannelSpec::Ideal => LinkFaultConfig::clean(),
            ChannelSpec::Comms { faults } => faults,
        };
        cfg
    }

    /// Builds the owned trajectory this spec runs over.
    pub fn lower_trajectory(&self) -> ScenarioTrajectory {
        self.trajectory.lower(self.duration_s)
    }

    /// Lowers the spec's channel front end to a boxed sensor source —
    /// the shared lowering step behind [`ScenarioSpec::into_session`]
    /// and fleet admission ([`crate::fleet::Fleet::admit`]), so a
    /// fleet vehicle sees byte-for-byte the event stream a standalone
    /// session would.
    pub fn into_source(&self, trajectory: impl IntoSharedTrajectory) -> Box<dyn SensorSource> {
        let cfg = self.config();
        match self.channel {
            ChannelSpec::Ideal => Box::new(SyntheticSource::from_scenario(trajectory, &cfg)),
            ChannelSpec::Comms { .. } => {
                Box::new(CommsChainSource::from_scenario(trajectory, &cfg))
            }
        }
    }

    /// Lowers the spec to a streaming [`FusionSession`] over
    /// `trajectory` (normally the one from
    /// [`ScenarioSpec::lower_trajectory`]; pass an `Arc` clone to share
    /// one lowered trajectory across many sessions) — the single path
    /// every channel, tuning and substrate combination goes through.
    pub fn into_session(&self, trajectory: impl IntoSharedTrajectory) -> FusionSession {
        self.session_builder(trajectory).build()
    }

    /// The configured [`SessionBuilder`] behind
    /// [`ScenarioSpec::into_session`]: source, substrate backend,
    /// truth and trace recording attached, but not yet built — so
    /// callers can hang extra [`crate::session::EventSink`]s (e.g. a
    /// [`crate::replay::RecordingSink`]) on the session first.
    pub fn session_builder(&self, trajectory: impl IntoSharedTrajectory) -> SessionBuilder {
        let cfg = self.config();
        let expected_updates = FusionSession::expected_updates(&cfg);
        let builder = FusionSession::builder().source_boxed(self.into_source(trajectory));
        self.substrate
            .attach_iekf(builder, cfg.estimator)
            .truth(cfg.true_misalignment)
            .record_traces_sized(cfg.trace_decimation, expected_updates)
    }

    /// Lowers and runs the spec to completion (the batch path).
    pub fn run(&self) -> RunResult {
        self.into_session(self.lower_trajectory()).into_result()
    }

    /// [`ScenarioSpec::into_session`] with an explicit adaptive
    /// supervisor instead of the spec's static substrate: same source
    /// lowering, same trace recording, but the backend starts on
    /// `initial` and reconfigures under `policy`.
    pub fn into_adaptive_session(
        &self,
        trajectory: impl IntoSharedTrajectory,
        initial: crate::adaptive::SubstrateId,
        policy: Box<dyn crate::adaptive::ReconfigPolicy>,
    ) -> FusionSession {
        let cfg = self.config();
        let expected_updates = FusionSession::expected_updates(&cfg);
        FusionSession::builder()
            .source_boxed(self.into_source(trajectory))
            .backend(AdaptiveBackend::new(cfg.estimator, initial, policy))
            .truth(cfg.true_misalignment)
            .record_traces_sized(cfg.trace_decimation, expected_updates)
            .build()
    }
}

/// Reads the per-substrate instrumentation off a finished session.
fn instrumentation<A: Arith + Clone + 'static>(session: &FusionSession) -> (u64, u64, u64) {
    session
        .backend_as::<GenericBoresightEstimator<A>>()
        .map(|backend| {
            let arith = backend.filter().arith();
            let counts = arith.counts();
            (counts.total(), counts.saturations, arith.cycles())
        })
        .unwrap_or((0, 0, 0))
}

/// One scenario × substrate cell of a [`SuiteReport`].
#[derive(Clone, Debug)]
pub struct SuiteCell {
    /// Scenario name.
    pub scenario: String,
    /// Arithmetic substrate of this cell.
    pub substrate: Substrate,
    /// Backend label the session reported (e.g. `iekf5/q16.16`).
    pub backend: &'static str,
    /// Run length actually executed, seconds.
    pub duration_s: f64,
    /// The per-vehicle verdict (estimate vs. truth, RMS error,
    /// residual health, retunes, saturations, link-fault counters) —
    /// the shared [`crate::report::VehicleSummary`] shape the fleet
    /// layer also reports.
    pub summary: VehicleSummary,
    /// Substrate arithmetic operations executed.
    pub ops: u64,
    /// Estimated Sabre cycles (0 for the host-FPU reference).
    pub cycles: u64,
    /// Cycle estimate per incoming ACC sample.
    pub cycles_per_sample: f64,
    /// Substrate reconfigurations the backend performed (0 for every
    /// static substrate).
    pub switches: u64,
}

impl SuiteCell {
    fn collect(spec: &ScenarioSpec, session: FusionSession) -> Self {
        let backend = session.backend_label();
        let (ops, saturations, cycles) = spec.substrate.read_instrumentation(&session);
        let switches = session
            .backend_as::<AdaptiveBackend>()
            .map_or(0, |b| b.switch_count());
        let stream = session.stream_stats();
        let cfg = spec.config();
        let samples = (cfg.duration_s * cfg.acc_rate_hz).round().max(1.0);
        let result = session.into_result();
        Self {
            scenario: spec.name.clone(),
            substrate: spec.substrate,
            backend,
            duration_s: cfg.duration_s,
            summary: VehicleSummary::from_result(&result, saturations, stream)
                .with_substrate_switches(switches),
            ops,
            cycles,
            cycles_per_sample: cycles as f64 / samples,
            switches,
        }
    }

    /// `true` when the estimate and its confidence are finite and the
    /// covariance never went indefinite (non-negative sigmas) — the
    /// health predicate the CI smoke run gates on.
    pub fn is_healthy(&self) -> bool {
        self.summary.is_healthy()
    }
}

/// The machine-readable result of a [`ScenarioSuite`] run.
#[derive(Clone, Debug, Default)]
pub struct SuiteReport {
    /// One cell per scenario × substrate, scenario-major.
    pub cells: Vec<SuiteCell>,
}

impl SuiteReport {
    /// The cell for one scenario × substrate, if present.
    pub fn cell(&self, scenario: &str, substrate: Substrate) -> Option<&SuiteCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.substrate == substrate)
    }

    /// Cells whose estimate went non-finite or covariance-indefinite.
    pub fn unhealthy(&self) -> Vec<&SuiteCell> {
        self.cells.iter().filter(|c| !c.is_healthy()).collect()
    }
}

/// Executes a scenario × substrate matrix over a [`SessionGroup`]:
/// each scenario's substrate sessions share one lowered trajectory and
/// interleave on one thread, exactly like the production
/// many-concurrent-sensors pattern.
#[derive(Clone, Debug)]
pub struct ScenarioSuite {
    scenarios: Vec<ScenarioSpec>,
    substrates: Vec<Substrate>,
    duration_override_s: Option<f64>,
    chunk_s: f64,
}

impl ScenarioSuite {
    /// A suite over the given scenarios and all three substrates.
    pub fn new(scenarios: Vec<ScenarioSpec>) -> Self {
        Self {
            scenarios,
            substrates: Substrate::all().to_vec(),
            duration_override_s: None,
            chunk_s: 1.0,
        }
    }

    /// The full catalog × substrate matrix.
    pub fn full_matrix() -> Self {
        Self::new(crate::catalog::all())
    }

    /// Restricts the substrate axis.
    pub fn with_substrates(mut self, substrates: &[Substrate]) -> Self {
        self.substrates = substrates.to_vec();
        self
    }

    /// Overrides every scenario's duration (reduced-duration smoke
    /// runs; the catalog's long-haul entry is 3600 s at full length).
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.duration_override_s = Some(duration_s);
        self
    }

    /// Sets the interleave slice handed to each session in turn.
    pub fn with_chunk(mut self, chunk_s: f64) -> Self {
        self.chunk_s = chunk_s;
        self
    }

    /// The scenarios on the suite's scenario axis.
    pub fn scenarios(&self) -> &[ScenarioSpec] {
        &self.scenarios
    }

    /// Every scenario × substrate cell spec of the matrix, in
    /// scenario-major order, with the duration override applied — the
    /// shared work list behind both [`ScenarioSuite::run`] and
    /// [`ScenarioSuite::run_parallel`].
    fn cell_specs(&self) -> Vec<ScenarioSpec> {
        self.scenarios
            .iter()
            .flat_map(|base| {
                let mut spec = base.clone();
                if let Some(d) = self.duration_override_s {
                    spec.duration_s = d;
                }
                self.substrates
                    .iter()
                    .map(move |&s| spec.clone().with_substrate(s))
            })
            .collect()
    }

    /// Runs the whole matrix to completion on the calling thread, one
    /// scenario's substrate sessions interleaved at a time.
    pub fn run(&self) -> SuiteReport {
        let mut cells = Vec::with_capacity(self.scenarios.len() * self.substrates.len());
        for scenario_cells in self.cell_specs().chunks(self.substrates.len().max(1)) {
            // All substrate sessions of one scenario share one lowered
            // trajectory.
            let trajectory: Arc<dyn Trajectory> = Arc::new(scenario_cells[0].lower_trajectory());
            let mut group = SessionGroup::new();
            for cell_spec in scenario_cells {
                group.push(cell_spec.into_session(Arc::clone(&trajectory)));
            }
            group.run_interleaved(self.chunk_s);
            for (cell_spec, session) in scenario_cells.iter().zip(group.into_sessions()) {
                cells.push(SuiteCell::collect(cell_spec, session));
            }
        }
        SuiteReport { cells }
    }

    /// Runs the whole matrix on a pool of `workers` threads (`0` means
    /// one per core; see [`exec::map_parallel`]).
    ///
    /// Each scenario × substrate cell is lowered to an owned
    /// [`FusionSession`] *inside its worker* and run to completion
    /// there; per-cell RNG seeding makes every cell independent, so the
    /// report is bit-identical to [`ScenarioSuite::run`] (pinned by
    /// test) while the wall clock shrinks with the core count.
    pub fn run_parallel(&self, workers: usize) -> SuiteReport {
        let cells = exec::map_parallel(self.cell_specs(), workers, |spec| {
            let mut session = spec.into_session(spec.lower_trajectory());
            session.run_to_end();
            SuiteCell::collect(&spec, session)
        });
        SuiteReport { cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_dynamic, run_static};

    #[test]
    fn paper_static_spec_lowers_to_static_test_config() {
        let truth = EulerAngles::from_degrees(2.0, -3.0, 1.5);
        let spec = ScenarioSpec::named("paper-static").with_truth(truth);
        let lowered = spec.config();
        let reference = ScenarioConfig::static_test(truth);
        assert_eq!(lowered.true_misalignment, reference.true_misalignment);
        assert_eq!(lowered.true_acc_bias, reference.true_acc_bias);
        assert_eq!(lowered.duration_s, reference.duration_s);
        assert_eq!(lowered.seed, reference.seed);
        assert_eq!(
            lowered.estimator.filter.measurement_sigma,
            reference.estimator.filter.measurement_sigma
        );
        assert_eq!(lowered.vibration.accel_rms, reference.vibration.accel_rms);
        assert_eq!(lowered.link_faults, reference.link_faults);
    }

    #[test]
    fn spec_run_is_bit_identical_to_run_static() {
        let truth = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let spec = ScenarioSpec::named("paper-static")
            .with_truth(truth)
            .with_duration(60.0);
        let from_spec = spec.run();
        let mut cfg = ScenarioConfig::static_test(truth);
        cfg.duration_s = 60.0;
        let from_config = run_static(&cfg);
        assert_eq!(from_spec.estimate, from_config.estimate);
        assert_eq!(from_spec.residuals, from_config.residuals);
        assert_eq!(from_spec.exceed_rate, from_config.exceed_rate);
    }

    #[test]
    fn dynamic_spec_is_bit_identical_to_run_dynamic() {
        let truth = EulerAngles::from_degrees(3.0, -2.0, 2.5);
        let spec = ScenarioSpec::named("paper-dynamic")
            .with_truth(truth)
            .with_trajectory(TrajectorySpec::Urban)
            .with_environment(EnvironmentSpec::passenger_car())
            .with_tuning(TuningSpec::Dynamic)
            .with_duration(40.0);
        let from_spec = spec.run();
        let mut cfg = ScenarioConfig::dynamic_test(truth);
        cfg.duration_s = 40.0;
        let from_config = run_dynamic(&cfg);
        assert_eq!(from_spec.estimate, from_config.estimate);
        assert_eq!(from_spec.residuals, from_config.residuals);
    }

    #[test]
    fn substrate_labels_roundtrip() {
        for s in Substrate::all() {
            assert_eq!(Substrate::parse(s.label()), Some(s));
        }
        assert_eq!(Substrate::parse("fixed"), Some(Substrate::Q16_16));
        assert_eq!(Substrate::parse("i387"), None);
    }

    #[test]
    fn rough_road_scales_vibration_rms() {
        let env = EnvironmentSpec::rough_road();
        let cfg = env.vibration_config();
        let base = VibrationConfig::passenger_car();
        assert!((cfg.accel_rms - base.accel_rms * 2.5).abs() < 1e-12);
        assert_eq!(cfg.corner_hz, base.corner_hz);
    }

    #[test]
    fn comms_channel_spec_runs_through_the_chain() {
        let spec = ScenarioSpec::named("comms-smoke")
            .with_truth(EulerAngles::from_degrees(1.0, -1.0, 1.0))
            .with_channel(ChannelSpec::comms())
            .with_duration(20.0);
        let trajectory = spec.lower_trajectory();
        let mut session = spec.into_session(&trajectory);
        session.run_to_end();
        let stats = session.stream_stats().expect("comms chain has stats");
        assert!(stats.acc_samples > 1000);
        assert_eq!(stats.fault_bits_flipped, 0);
        assert_eq!(stats.fault_bytes_dropped, 0);
    }

    #[test]
    fn fault_injection_reaches_the_stream_stats() {
        let spec = ScenarioSpec::named("faulty")
            .with_truth(EulerAngles::from_degrees(1.0, -1.0, 1.0))
            .with_channel(ChannelSpec::Comms {
                faults: LinkFaultConfig {
                    bit_flip_prob: 0.01,
                    drop_prob: 0.005,
                    burst_prob: 0.0,
                    burst_len: 0,
                },
            })
            .with_duration(20.0);
        let trajectory = spec.lower_trajectory();
        let mut session = spec.into_session(&trajectory);
        session.run_to_end();
        let stats = session.stream_stats().expect("comms chain has stats");
        assert!(stats.fault_bits_flipped > 100, "{stats:?}");
        assert!(stats.fault_bytes_dropped > 50, "{stats:?}");
        // Corrupted frames fail their checksums instead of poisoning
        // the filter.
        assert!(stats.dmu_errors + stats.acc_errors > 0, "{stats:?}");
        assert!(session.estimate().angles.max_abs().is_finite());
    }

    #[test]
    fn suite_runs_a_small_matrix() {
        let suite = ScenarioSuite::new(vec![
            ScenarioSpec::named("cell").with_truth(EulerAngles::from_degrees(2.0, -1.0, 1.5))
        ])
        .with_substrates(&[Substrate::F64, Substrate::Q16_16])
        .with_duration(20.0);
        let report = suite.run();
        assert_eq!(report.cells.len(), 2);
        assert!(report.unhealthy().is_empty());
        let f64_cell = report.cell("cell", Substrate::F64).expect("f64 cell");
        assert_eq!(f64_cell.backend, "iekf5/f64");
        assert_eq!(f64_cell.cycles, 0, "host FPU accounts no Sabre cycles");
        let fixed = report.cell("cell", Substrate::Q16_16).expect("fixed cell");
        assert!(fixed.ops > 0);
        assert!(fixed.cycles > 0);
    }
}
