//! The boresight estimator: the crate's primary public API.
//!
//! Wires the pieces of the paper's "Sensor Fusion Algorithm" together:
//! incoming DMU samples (body specific force + angular rate) and ACC
//! samples (two-axis sensor-frame specific force) are time-aligned,
//! lever-arm compensated, pushed through the misalignment Kalman
//! filter, and watched by the adaptive residual monitor. The output is
//! a [`MisalignmentEstimate`] — roll, pitch, yaw with their 3-sigma
//! (~99 %) confidence bounds, which is exactly what the paper's
//! control block hands to the video transform.
//!
//! Like the filter, the estimator is generic over the
//! [`Arith`] substrate: the slope-limited IMU extrapolation and the
//! lever-arm compensation run through the same arithmetic context as
//! the filter itself, so a Softfloat or fixed-point deployment
//! accounts for *all* of the fusion math, not just the Kalman core.
//! Timestamps and the residual monitor stay in `f64` — they model the
//! scheduler and the tuning loop, not the datapath.

use crate::arith::{Arith, F64Arith};
use crate::filter::{FilterConfig, GenericBoresightFilter, KalmanUpdate};
use crate::monitor::{MonitorConfig, ResidualMonitor, Retune};
use crate::smallmat;
use mathx::{rad_to_deg, EulerAngles, Vec2, Vec3};
use sensors::DmuSample;

/// Estimator configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct EstimatorConfig {
    /// Kalman filter configuration.
    pub filter: FilterConfig,
    /// Residual monitor configuration; `None` disables adaptive tuning.
    pub monitor: Option<MonitorConfig>,
    /// Known lever arm from the IMU to the ACC in body axes, metres
    /// (compensated before the filter sees the measurement).
    pub lever_arm: Vec3,
}

impl EstimatorConfig {
    /// Paper-style static test configuration with adaptive tuning on.
    pub fn paper_static() -> Self {
        Self {
            filter: FilterConfig::paper_static(),
            monitor: Some(MonitorConfig::default()),
            lever_arm: Vec3::zeros(),
        }
    }

    /// Paper-style dynamic (vehicle) configuration.
    pub fn paper_dynamic() -> Self {
        Self {
            filter: FilterConfig::paper_dynamic(),
            monitor: Some(MonitorConfig::default()),
            lever_arm: Vec3::zeros(),
        }
    }
}

/// The result the system reports: misalignment plus confidence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MisalignmentEstimate {
    /// Estimated misalignment angles.
    pub angles: EulerAngles,
    /// Per-angle 1-sigma, radians.
    pub one_sigma: Vec3,
    /// Accepted measurement updates that produced this estimate.
    pub updates: u64,
}

impl MisalignmentEstimate {
    /// Per-angle 3-sigma (~99 % confidence) bounds, degrees.
    pub fn three_sigma_deg(&self) -> [f64; 3] {
        [
            rad_to_deg(3.0 * self.one_sigma[0]),
            rad_to_deg(3.0 * self.one_sigma[1]),
            rad_to_deg(3.0 * self.one_sigma[2]),
        ]
    }

    /// `true` when every angle's 3-sigma bound is below `limit_deg`.
    pub fn confident_within_deg(&self, limit_deg: f64) -> bool {
        self.three_sigma_deg().iter().all(|s| *s <= limit_deg)
    }
}

/// The boresight estimator over an arbitrary [`Arith`] substrate.
///
/// # Examples
///
/// ```
/// use boresight::arith::{Arith, SoftArith};
/// use boresight::estimator::GenericBoresightEstimator;
/// use boresight::EstimatorConfig;
/// use mathx::{Vec2, Vec3, STANDARD_GRAVITY};
/// use sensors::DmuSample;
///
/// // The full 5-state estimation path in emulated IEEE arithmetic,
/// // with exact Sabre cycle accounting behind it.
/// let mut est = GenericBoresightEstimator::with_arith(
///     SoftArith::default(),
///     EstimatorConfig::paper_static(),
/// );
/// let dmu = DmuSample {
///     seq: 0,
///     time_s: 0.0,
///     gyro: Vec3::zeros(),
///     accel: Vec3::new([0.0, 0.0, STANDARD_GRAVITY]),
/// };
/// est.on_dmu(&dmu);
/// est.on_acc(0.005, Vec2::new([0.01, -0.01]));
/// assert!(est.filter().arith().cycles() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct GenericBoresightEstimator<A: Arith> {
    config: EstimatorConfig,
    filter: GenericBoresightFilter<A>,
    monitor: Option<ResidualMonitor>,
    prep: ImuPrep<A>,
    last_update_time: f64,
    dropped_no_imu: u64,
}

/// The IMU-side front end of the fusion algorithm, factored out of the
/// estimator so lockstep lane backends ([`crate::lanes::LaneBank`])
/// can share it: slope-limited extrapolation of the asynchronous DMU
/// stream to ACC timestamps plus gyro differentiation for the
/// lever-arm compensation. All math runs through the caller's
/// arithmetic context, so the substrate's ledger covers it.
#[derive(Clone, Debug)]
pub struct ImuPrep<A: Arith> {
    last_dmu: Option<DmuSample>,
    prev_dmu: Option<DmuSample>,
    /// Exponentially smoothed d(f_imu)/dt used to extrapolate the IMU
    /// stream to ACC timestamps without amplifying the IMU noise.
    f_slope: [A::T; 3],
    prev_gyro: Option<(f64, Vec3)>,
    angular_accel: [A::T; 3],
}

/// The native-`f64` estimator — the reference instantiation every
/// pre-refactor call site keeps using unchanged.
///
/// # Examples
///
/// ```
/// use boresight::{BoresightEstimator, EstimatorConfig};
/// use mathx::{Vec2, Vec3, STANDARD_GRAVITY};
/// use sensors::DmuSample;
///
/// let mut est = BoresightEstimator::new(EstimatorConfig::paper_static());
/// let dmu = DmuSample {
///     seq: 0,
///     time_s: 0.0,
///     gyro: Vec3::zeros(),
///     accel: Vec3::new([0.0, 0.0, STANDARD_GRAVITY]),
/// };
/// est.on_dmu(&dmu);
/// let update = est.on_acc(0.005, Vec2::new([0.01, -0.01]));
/// assert!(update.is_some());
/// ```
pub type BoresightEstimator = GenericBoresightEstimator<F64Arith>;

/// Smoothing factor for the specific-force slope (fraction of the old
/// slope retained per DMU sample).
const SLOPE_BETA: f64 = 0.75;

/// Largest plausible rate of change of the specific force, m/s^3.
/// Vehicle jerk tops out around 10-20 m/s^3; anything above this is a
/// discontinuity (tilt-table step, segment boundary) that must not be
/// extrapolated.
const SLOPE_LIMIT: f64 = 50.0;

impl<A: Arith> GenericBoresightEstimator<A> {
    /// Creates an estimator over the substrate's default context.
    pub fn new(config: EstimatorConfig) -> Self
    where
        A: Default,
    {
        Self::with_arith(A::default(), config)
    }

    /// Creates an estimator over an explicit arithmetic context.
    pub fn with_arith(arith: A, config: EstimatorConfig) -> Self {
        let mut filter = GenericBoresightFilter::with_arith(arith, config.filter);
        let monitor = config
            .monitor
            .map(|m| ResidualMonitor::new(m, config.filter.measurement_sigma));
        let prep = ImuPrep::new(filter.arith_mut());
        Self {
            config,
            filter,
            monitor,
            prep,
            last_update_time: 0.0,
            dropped_no_imu: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Direct access to the filter (diagnostics).
    pub fn filter(&self) -> &GenericBoresightFilter<A> {
        &self.filter
    }

    /// The monitor's retune log (empty if monitoring is disabled).
    pub fn retunes(&self) -> &[Retune] {
        self.monitor.as_ref().map_or(&[], |m| m.retunes())
    }

    /// The measurement sigma currently in force.
    pub fn current_measurement_sigma(&self) -> f64 {
        self.filter.measurement_sigma()
    }

    /// ACC samples dropped because no IMU sample had arrived yet.
    pub fn dropped_no_imu(&self) -> u64 {
        self.dropped_no_imu
    }

    /// Ingests a DMU sample (specific force + angular rate in body
    /// axes). Also differentiates the gyro for the lever-arm term.
    pub fn on_dmu(&mut self, sample: &DmuSample) {
        self.prep.on_dmu(self.filter.arith_mut(), sample);
    }

    /// Ingests a two-axis ACC sample (m/s^2) at time `t`, pairing it
    /// with the most recent DMU sample (zero-order hold — the two
    /// streams are asynchronous in the real system). Returns the
    /// filter update record, or `None` if no DMU sample has arrived.
    pub fn on_acc(&mut self, time_s: f64, z: Vec2) -> Option<KalmanUpdate> {
        let lever_arm = self.config.lever_arm;
        let f_b = self
            .prep
            .compensated_force(self.filter.arith_mut(), time_s, lever_arm)?;
        let dt = (time_s - self.last_update_time).max(0.0);
        self.last_update_time = time_s;
        self.filter.predict(dt);
        let update = self.filter.update_t(z, f_b, time_s);
        if let Some(monitor) = &mut self.monitor {
            if let Some(retune) = monitor.observe(&update) {
                self.filter.set_measurement_sigma(retune.new_sigma);
            }
        }
        Some(update)
    }

    /// The current estimate with confidence.
    pub fn estimate(&self) -> MisalignmentEstimate
    where
        A: Clone,
    {
        MisalignmentEstimate {
            angles: self.filter.angles(),
            one_sigma: self.filter.angle_sigma(),
            updates: self.filter.update_count(),
        }
    }

    /// Exports the estimator's full algorithmic state through `f64`
    /// (filter core, IMU front end, residual monitor, stream
    /// bookkeeping) — the adaptive supervisor's transfer format
    /// ([`crate::adaptive`]).
    pub fn export_snapshot(&self) -> crate::adaptive::EstimatorSnapshot {
        crate::adaptive::EstimatorSnapshot {
            filter: self.filter.export_snapshot(),
            prep: self.prep.snapshot(self.filter.arith()),
            monitor: self.monitor.clone(),
            last_update_time: self.last_update_time,
            dropped_no_imu: self.dropped_no_imu,
        }
    }

    /// Imports a snapshot, replacing this estimator's state (the
    /// substrate keeps its own op/cycle ledger). The residual monitor
    /// transfers verbatim, so the retune history, window and hold-off
    /// continue across a substrate swap.
    pub fn import_snapshot(&mut self, snapshot: &crate::adaptive::EstimatorSnapshot) {
        self.filter.import_snapshot(&snapshot.filter);
        self.prep.restore(self.filter.arith_mut(), &snapshot.prep);
        self.monitor = snapshot.monitor.clone();
        self.last_update_time = snapshot.last_update_time;
        self.dropped_no_imu = snapshot.dropped_no_imu;
    }
}

impl<A: Arith> ImuPrep<A> {
    /// A fresh front end over the given context.
    pub fn new(a: &mut A) -> Self {
        let zero = a.num(0.0);
        Self {
            last_dmu: None,
            prev_dmu: None,
            f_slope: [zero; 3],
            prev_gyro: None,
            angular_accel: [zero; 3],
        }
    }

    /// The most recent DMU sample, if any has arrived.
    pub fn last_dmu(&self) -> Option<&DmuSample> {
        self.last_dmu.as_ref()
    }

    /// Exports the front end's state through `f64`. The sample history
    /// is `f64` sensor data already; only the smoothed force slope and
    /// the differentiated angular acceleration live in the substrate.
    pub fn snapshot(&self, a: &A) -> crate::adaptive::ImuPrepSnapshot {
        crate::adaptive::ImuPrepSnapshot {
            last_dmu: self.last_dmu,
            prev_dmu: self.prev_dmu,
            f_slope: [
                a.to_f64(self.f_slope[0]),
                a.to_f64(self.f_slope[1]),
                a.to_f64(self.f_slope[2]),
            ],
            prev_gyro: self.prev_gyro,
            angular_accel: [
                a.to_f64(self.angular_accel[0]),
                a.to_f64(self.angular_accel[1]),
                a.to_f64(self.angular_accel[2]),
            ],
        }
    }

    /// Restores the front end from a snapshot, converting the
    /// in-substrate values through the target context.
    pub fn restore(&mut self, a: &mut A, snapshot: &crate::adaptive::ImuPrepSnapshot) {
        self.last_dmu = snapshot.last_dmu;
        self.prev_dmu = snapshot.prev_dmu;
        self.f_slope = [
            a.num(snapshot.f_slope[0]),
            a.num(snapshot.f_slope[1]),
            a.num(snapshot.f_slope[2]),
        ];
        self.prev_gyro = snapshot.prev_gyro;
        self.angular_accel = [
            a.num(snapshot.angular_accel[0]),
            a.num(snapshot.angular_accel[1]),
            a.num(snapshot.angular_accel[2]),
        ];
    }

    /// Ingests a DMU sample: differentiates the gyro for the lever-arm
    /// term and updates the slope-limited specific-force extrapolator.
    pub fn on_dmu(&mut self, a: &mut A, sample: &DmuSample) {
        if let Some((t_prev, w_prev)) = self.prev_gyro {
            let dt = sample.time_s - t_prev;
            if dt > 1e-6 {
                let dt_t = a.num(dt);
                let mut alpha = [a.num(0.0); 3];
                for (i, o) in alpha.iter_mut().enumerate() {
                    let d = {
                        let g = a.num(sample.gyro[i]);
                        let w = a.num(w_prev[i]);
                        a.sub(g, w)
                    };
                    *o = a.div(d, dt_t);
                }
                self.angular_accel = alpha;
            }
        }
        self.prev_gyro = Some((sample.time_s, sample.gyro));
        if let Some(prev) = self.last_dmu {
            let dt = sample.time_s - prev.time_s;
            if dt > 1e-6 {
                let dt_t = a.num(dt);
                let mut raw = [a.num(0.0); 3];
                for (i, o) in raw.iter_mut().enumerate() {
                    let d = {
                        let f = a.num(sample.accel[i]);
                        let p = a.num(prev.accel[i]);
                        a.sub(f, p)
                    };
                    *o = a.div(d, dt_t);
                }
                let limit = a.num(SLOPE_LIMIT);
                let peak = smallmat::vec_max_abs(a, &raw);
                if a.lt(limit, peak) {
                    // Discontinuity: do not chase it, drop the slope.
                    self.f_slope = [a.num(0.0); 3];
                } else {
                    let beta = a.num(SLOPE_BETA);
                    let rest = a.num(1.0 - SLOPE_BETA);
                    for (slope, fresh) in self.f_slope.iter_mut().zip(&raw) {
                        let s = a.mul(*slope, beta);
                        let r = a.mul(*fresh, rest);
                        *slope = a.add(s, r);
                    }
                }
            }
        }
        self.prev_dmu = self.last_dmu;
        self.last_dmu = Some(*sample);
    }

    /// Specific force extrapolated to time `t` from the latest DMU
    /// sample. The two streams are asynchronous; a zero-order hold
    /// leaves a `df/dt * latency` residual during manoeuvres, so the
    /// exponentially smoothed slope of the IMU stream is carried
    /// forward (the smoothing keeps the IMU noise from being amplified
    /// by differencing; the horizon is clamped to one DMU interval so
    /// outages do not extrapolate wildly).
    fn specific_force_at(&mut self, a: &mut A, t: f64) -> Option<[A::T; 3]> {
        let last = self.last_dmu?;
        let accel = [
            a.num(last.accel[0]),
            a.num(last.accel[1]),
            a.num(last.accel[2]),
        ];
        let dt = match self.prev_dmu {
            Some(prev) if last.time_s > prev.time_s => last.time_s - prev.time_s,
            _ => return Some(accel),
        };
        let horizon = a.num((t - last.time_s).clamp(0.0, dt));
        let mut out = accel;
        for (i, o) in out.iter_mut().enumerate() {
            let p = a.mul(self.f_slope[i], horizon);
            *o = a.add(accel[i], p);
        }
        Some(out)
    }

    /// The body-frame specific force at the ACC's location and time:
    /// the extrapolated IMU stream plus the lever-arm compensation
    /// terms (tangential + centripetal, from the differentiated gyro).
    /// `None` until a DMU sample has arrived.
    pub fn compensated_force(
        &mut self,
        a: &mut A,
        time_s: f64,
        lever_arm: Vec3,
    ) -> Option<[A::T; 3]> {
        let dmu = self.last_dmu?;
        let gyro = dmu.gyro;
        let f_imu = self.specific_force_at(a, time_s)?;
        // Lever-arm compensation: the ACC sits at r from the IMU, so it
        // senses extra rotational terms we remove using the gyro.
        let angular_accel = self.angular_accel;
        let r_t = [
            a.num(lever_arm[0]),
            a.num(lever_arm[1]),
            a.num(lever_arm[2]),
        ];
        let w = [a.num(gyro[0]), a.num(gyro[1]), a.num(gyro[2])];
        let tangential = smallmat::cross3(a, &angular_accel, &r_t);
        let wr = smallmat::cross3(a, &w, &r_t);
        let centripetal = smallmat::cross3(a, &w, &wr);
        let extra = smallmat::vec_add(a, &tangential, &centripetal);
        Some(smallmat::vec_add(a, &f_imu, &extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathx::rng::seeded_rng;
    use mathx::{GaussianSampler, STANDARD_GRAVITY};

    fn dmu_at(t: f64, f: Vec3, w: Vec3) -> DmuSample {
        DmuSample {
            seq: (t * 100.0) as u16,
            time_s: t,
            gyro: w,
            accel: f,
        }
    }

    #[test]
    fn acc_before_dmu_is_dropped() {
        let mut est = BoresightEstimator::new(EstimatorConfig::paper_static());
        assert!(est.on_acc(0.0, Vec2::zeros()).is_none());
        // dropped counter only increments through the convenience API
        // below; direct None return is the contract here.
        est.on_dmu(&dmu_at(
            0.0,
            Vec3::new([0.0, 0.0, STANDARD_GRAVITY]),
            Vec3::zeros(),
        ));
        assert!(est.on_acc(0.01, Vec2::zeros()).is_some());
    }

    #[test]
    fn estimates_misalignment_end_to_end() {
        let truth = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let c_sb = truth.dcm().transpose();
        let mut est = BoresightEstimator::new(EstimatorConfig::paper_static());
        let mut rng = seeded_rng(1);
        let mut gauss = GaussianSampler::new();
        let g = STANDARD_GRAVITY;
        for i in 0..40_000 {
            let t = i as f64 * 0.005;
            // Tilting + accelerating excitation.
            let f_b = Vec3::new([
                1.5 * (0.4 * t).sin() + g * 0.15 * (0.05 * t).sin(),
                1.0 * (0.26 * t).cos(),
                g,
            ]);
            if i % 2 == 0 {
                est.on_dmu(&dmu_at(t, f_b, Vec3::zeros()));
            }
            let f_s = c_sb.rotate(f_b);
            let z = Vec2::new([
                f_s[0] + gauss.sample_scaled(&mut rng, 0.0, 0.007),
                f_s[1] + gauss.sample_scaled(&mut rng, 0.0, 0.007),
            ]);
            est.on_acc(t, z);
        }
        let result = est.estimate();
        let err = result.angles.error_to(&truth);
        // Bias states must be separated from the angles using only the
        // x/y excitation here, which bounds accuracy to a few tenths
        // of a degree over this 200 s run.
        assert!(
            rad_to_deg(err.max_abs()) < 0.5,
            "error {:?}",
            err.to_degrees()
        );
        assert!(result.confident_within_deg(1.0));
        assert!(result.updates > 39_000);
    }

    #[test]
    fn lever_arm_compensation_removes_rotation_terms() {
        // Spinning platform, ACC 0.5 m out on x: without compensation
        // the centripetal term biases the measurement.
        let r = Vec3::new([0.5, 0.0, 0.0]);
        let mut cfg = EstimatorConfig::paper_static();
        cfg.lever_arm = r;
        cfg.filter.estimate_bias = false;
        let mut est = BoresightEstimator::new(cfg);
        let w = Vec3::new([0.0, 0.0, 1.0]); // 1 rad/s yaw spin
        let g = STANDARD_GRAVITY;
        let f_imu = Vec3::new([0.0, 0.0, g]);
        // ACC senses the centripetal acceleration at its location.
        let f_acc = f_imu + w.cross(&w.cross(&r));
        for i in 0..2000 {
            let t = i as f64 * 0.005;
            est.on_dmu(&dmu_at(t, f_imu, w));
            est.on_acc(t, Vec2::new([f_acc[0], f_acc[1]]));
        }
        // With compensation the (aligned) truth should be recovered:
        // angles near zero, not pulled by the 0.5 m/s^2 centripetal term.
        let est_angles = est.estimate().angles;
        assert!(
            rad_to_deg(est_angles.max_abs()) < 0.2,
            "{:?}",
            est_angles.to_degrees()
        );
    }

    #[test]
    fn adaptive_retune_fires_under_vibration() {
        let mut cfg = EstimatorConfig::paper_static();
        cfg.filter.measurement_sigma = 0.003; // static tuning
        let mut est = BoresightEstimator::new(cfg);
        let mut rng = seeded_rng(2);
        let mut gauss = GaussianSampler::new();
        let g = STANDARD_GRAVITY;
        for i in 0..5000 {
            let t = i as f64 * 0.005;
            est.on_dmu(&dmu_at(t, Vec3::new([0.0, 0.0, g]), Vec3::zeros()));
            // Vibration-grade noise, 10x the static tuning.
            let z = Vec2::new([
                gauss.sample_scaled(&mut rng, 0.0, 0.03),
                gauss.sample_scaled(&mut rng, 0.0, 0.03),
            ]);
            est.on_acc(t, z);
        }
        assert!(
            !est.retunes().is_empty(),
            "monitor should have raised the noise"
        );
        assert!(est.current_measurement_sigma() > 0.003);
    }

    #[test]
    fn generic_estimator_runs_the_full_path_in_fixed_point() {
        use crate::arith::QArith;
        let truth = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let c_sb = truth.dcm().transpose();
        let mut est: GenericBoresightEstimator<QArith<16>> =
            GenericBoresightEstimator::new(EstimatorConfig::paper_static());
        let g = STANDARD_GRAVITY;
        for i in 0..4000 {
            let t = i as f64 * 0.005;
            let f_b = Vec3::new([1.5 * (0.4 * t).sin(), 1.0 * (0.26 * t).cos(), g]);
            if i % 2 == 0 {
                est.on_dmu(&dmu_at(t, f_b, Vec3::zeros()));
            }
            let f_s = c_sb.rotate(f_b);
            est.on_acc(t, Vec2::new([f_s[0], f_s[1]]));
        }
        // The Q16.16 path must stay bounded (trust region) and its
        // instrumentation must cover the whole fusion algorithm.
        let angles = est.estimate().angles;
        assert!(angles.max_abs() <= est.config().filter.angle_limit + 1e-3);
        let counts = est.filter().arith().counts();
        assert!(counts.total() > 0);
        assert!(counts.trig > 0, "model trig must flow through the ledger");
    }

    #[test]
    fn confidence_summary() {
        let est = MisalignmentEstimate {
            angles: EulerAngles::zero(),
            one_sigma: Vec3::new([0.001, 0.001, 0.01]),
            updates: 100,
        };
        let ts = est.three_sigma_deg();
        assert!((ts[0] - rad_to_deg(0.003)).abs() < 1e-12);
        assert!(est.confident_within_deg(2.0));
        assert!(!est.confident_within_deg(0.5)); // yaw too loose
    }
}
