//! Arithmetic ablation: the misalignment Kalman filter over different
//! number systems.
//!
//! The paper runs its filter in IEEE floats emulated by Softfloat on
//! the Sabre core, and names "a full fixed-point analysis and
//! conversion of the Sensor Fusion Algorithm from float to fixed-point
//! calculations" as the obvious enhancement. This module makes that
//! comparison executable: a three-state small-angle Kalman filter
//! (`z = S(f - e x f) + v`, linear in the misalignment `e`) implemented
//! over an abstract [`Arith`] so the identical algorithm runs in
//!
//! * native `f64` ([`F64Arith`]) — the reference,
//! * emulated IEEE binary64 ([`SoftArith`]) — the paper's
//!   configuration, with exact operation counts and Sabre cycle costs,
//! * Q16.16 fixed point ([`FixedArith`]) — the proposed enhancement.

// The filter kernel indexes with `for i in 0..3` on purpose: the loops
// mirror the matrix equations they implement.
#![allow(clippy::needless_range_loop)]

use fpga::fixed::Q16_16;
use fpga::softfloat::{Sf64, SoftFpu};
use mathx::{EulerAngles, Vec2, Vec3};

/// Number-system abstraction for the ablation filter.
pub trait Arith {
    /// The scalar type.
    type T: Copy;

    /// Converts from `f64`.
    fn num(&mut self, x: f64) -> Self::T;
    /// Converts to `f64`.
    fn to_f64(&self, x: Self::T) -> f64;
    /// Addition.
    fn add(&mut self, a: Self::T, b: Self::T) -> Self::T;
    /// Subtraction.
    fn sub(&mut self, a: Self::T, b: Self::T) -> Self::T;
    /// Multiplication.
    fn mul(&mut self, a: Self::T, b: Self::T) -> Self::T;
    /// Division.
    fn div(&mut self, a: Self::T, b: Self::T) -> Self::T;

    /// Short name of the number system (used as a session backend
    /// label).
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Native double precision.
#[derive(Clone, Copy, Debug, Default)]
pub struct F64Arith;

impl Arith for F64Arith {
    type T = f64;

    fn num(&mut self, x: f64) -> f64 {
        x
    }

    fn to_f64(&self, x: f64) -> f64 {
        x
    }

    fn add(&mut self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn sub(&mut self, a: f64, b: f64) -> f64 {
        a - b
    }

    fn mul(&mut self, a: f64, b: f64) -> f64 {
        a * b
    }

    fn div(&mut self, a: f64, b: f64) -> f64 {
        a / b
    }

    fn name(&self) -> &'static str {
        "f64"
    }
}

/// Softfloat binary64 with Sabre cycle accounting.
#[derive(Clone, Debug, Default)]
pub struct SoftArith {
    /// The cost-accounted FPU (inspect for op counts and cycles).
    pub fpu: SoftFpu,
}

impl Arith for SoftArith {
    type T = Sf64;

    fn num(&mut self, x: f64) -> Sf64 {
        Sf64::from_f64(x)
    }

    fn to_f64(&self, x: Sf64) -> f64 {
        x.to_f64()
    }

    fn add(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.fpu.add_f64(a, b)
    }

    fn sub(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.fpu.sub_f64(a, b)
    }

    fn mul(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.fpu.mul_f64(a, b)
    }

    fn div(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.fpu.div_f64(a, b)
    }

    fn name(&self) -> &'static str {
        "softfloat/f64"
    }
}

/// Q16.16 saturating fixed point.
#[derive(Clone, Copy, Debug, Default)]
pub struct FixedArith;

impl Arith for FixedArith {
    type T = Q16_16;

    fn num(&mut self, x: f64) -> Q16_16 {
        Q16_16::from_f64(x)
    }

    fn to_f64(&self, x: Q16_16) -> f64 {
        x.to_f64()
    }

    fn add(&mut self, a: Q16_16, b: Q16_16) -> Q16_16 {
        a.saturating_add(b)
    }

    fn sub(&mut self, a: Q16_16, b: Q16_16) -> Q16_16 {
        a.saturating_add(-b)
    }

    fn mul(&mut self, a: Q16_16, b: Q16_16) -> Q16_16 {
        a.saturating_mul(b)
    }

    fn div(&mut self, a: Q16_16, b: Q16_16) -> Q16_16 {
        a.saturating_div(b)
    }

    fn name(&self) -> &'static str {
        "q16.16"
    }
}

/// Three-state small-angle misalignment Kalman filter over an
/// [`Arith`].
///
/// State `e = [phi, theta, psi]`; measurement
/// `z = S (f + [f]x e) + v` — linear, so this is a plain Kalman filter
/// with `H = S [f]x` recomputed per sample.
///
/// # Examples
///
/// ```
/// use boresight::arith::{F64Arith, Kf3};
/// use mathx::{Vec2, Vec3};
///
/// let mut kf = Kf3::new(F64Arith, 0.1, 0.007);
/// kf.step(Vec2::new([0.0, 0.0]), Vec3::new([0.0, 0.0, 9.81]), 1e-10);
/// assert!(kf.angles().max_abs() < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct Kf3<A: Arith> {
    arith: A,
    x: [A::T; 3],
    p: [[A::T; 3]; 3],
    r: A::T,
    updates: u64,
}

impl<A: Arith> Kf3<A> {
    /// Creates a filter with the given initial angle sigma (rad) and
    /// measurement sigma (m/s^2).
    pub fn new(mut arith: A, initial_sigma: f64, measurement_sigma: f64) -> Self {
        let zero = arith.num(0.0);
        let p0 = arith.num(initial_sigma * initial_sigma);
        let r = arith.num(measurement_sigma * measurement_sigma);
        let mut p = [[zero; 3]; 3];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = p0;
        }
        Self {
            arith,
            x: [zero; 3],
            p,
            r,
            updates: 0,
        }
    }

    /// Borrow the arithmetic context (e.g. to read softfloat stats).
    pub fn arith(&self) -> &A {
        &self.arith
    }

    /// Accepted updates so far.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Estimated misalignment.
    pub fn angles(&self) -> EulerAngles {
        EulerAngles::new(
            self.arith.to_f64(self.x[0]),
            self.arith.to_f64(self.x[1]),
            self.arith.to_f64(self.x[2]),
        )
    }

    /// Covariance diagonal (rad^2).
    pub fn variance(&self) -> Vec3 {
        Vec3::new([
            self.arith.to_f64(self.p[0][0]),
            self.arith.to_f64(self.p[1][1]),
            self.arith.to_f64(self.p[2][2]),
        ])
    }

    /// One predict+update step: process noise `q` (rad^2 per step),
    /// measurement `z` (ACC x/y, m/s^2), IMU specific force `f`.
    pub fn step(&mut self, z: Vec2, f: Vec3, q: f64) {
        let a = &mut self.arith;
        // Predict: P += q I.
        let qv = a.num(q);
        for i in 0..3 {
            self.p[i][i] = a.add(self.p[i][i], qv);
        }
        // H = S [f]x  (rows: [0, -fz, fy] and [fz, 0, -fx]).
        let fx = a.num(f[0]);
        let fy = a.num(f[1]);
        let fz = a.num(f[2]);
        let zero = a.num(0.0);
        let nfz = a.sub(zero, fz);
        let nfx = a.sub(zero, fx);
        let h = [[zero, nfz, fy], [fz, zero, nfx]];
        // ph = P H^T (3x2), s = H P H^T + R (2x2).
        let mut ph = [[zero; 2]; 3];
        for i in 0..3 {
            for j in 0..2 {
                let mut acc = zero;
                for k in 0..3 {
                    let t = a.mul(self.p[i][k], h[j][k]);
                    acc = a.add(acc, t);
                }
                ph[i][j] = acc;
            }
        }
        let mut s = [[zero; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = if i == j { self.r } else { zero };
                for k in 0..3 {
                    let t = a.mul(h[i][k], ph[k][j]);
                    acc = a.add(acc, t);
                }
                s[i][j] = acc;
            }
        }
        // 2x2 inverse.
        let d0 = a.mul(s[0][0], s[1][1]);
        let d1 = a.mul(s[0][1], s[1][0]);
        let det = a.sub(d0, d1);
        let n01 = a.sub(zero, s[0][1]);
        let n10 = a.sub(zero, s[1][0]);
        let si = [
            [a.div(s[1][1], det), a.div(n01, det)],
            [a.div(n10, det), a.div(s[0][0], det)],
        ];
        // K = PH * S^-1 (3x2).
        let mut kmat = [[zero; 2]; 3];
        for i in 0..3 {
            for j in 0..2 {
                let t0 = a.mul(ph[i][0], si[0][j]);
                let t1 = a.mul(ph[i][1], si[1][j]);
                kmat[i][j] = a.add(t0, t1);
            }
        }
        // Innovation: z - (S f + H x).
        let mut innov = [zero; 2];
        let zf = [a.num(z[0]), a.num(z[1])];
        let sf = [fx, fy];
        for i in 0..2 {
            let mut pred = sf[i];
            for k in 0..3 {
                let t = a.mul(h[i][k], self.x[k]);
                pred = a.add(pred, t);
            }
            innov[i] = a.sub(zf[i], pred);
        }
        // x += K * innovation.
        for i in 0..3 {
            let t0 = a.mul(kmat[i][0], innov[0]);
            let t1 = a.mul(kmat[i][1], innov[1]);
            let delta = a.add(t0, t1);
            self.x[i] = a.add(self.x[i], delta);
        }
        // P = P - K (PH)^T  (standard form; adequate for the ablation).
        for i in 0..3 {
            for j in 0..3 {
                let t0 = a.mul(kmat[i][0], ph[j][0]);
                let t1 = a.mul(kmat[i][1], ph[j][1]);
                let sum = a.add(t0, t1);
                self.p[i][j] = a.sub(self.p[i][j], sum);
            }
        }
        // Re-symmetrize against round-off (essential in fixed point).
        let half = a.num(0.5);
        for i in 0..3 {
            for j in (i + 1)..3 {
                let sum = a.add(self.p[i][j], self.p[j][i]);
                let m = a.mul(half, sum);
                self.p[i][j] = m;
                self.p[j][i] = m;
            }
        }
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathx::rng::seeded_rng;
    use mathx::{rad_to_deg, GaussianSampler, STANDARD_GRAVITY};

    fn simulate<A: Arith>(arith: A, n: usize, sigma: f64, seed: u64) -> Kf3<A> {
        let truth = EulerAngles::from_degrees(1.5, -1.0, 2.0);
        let e = truth.as_vec3();
        let mut kf = Kf3::new(arith, 0.1, sigma);
        let mut rng = seeded_rng(seed);
        let mut gauss = GaussianSampler::new();
        let g = STANDARD_GRAVITY;
        for i in 0..n {
            let t = i as f64 * 0.005;
            let f = Vec3::new([2.0 * (0.5 * t).sin(), 1.5 * (0.33 * t).cos(), g]);
            // Small-angle truth measurement.
            let f_s = f - e.cross(&f);
            let z = Vec2::new([
                f_s[0] + gauss.sample_scaled(&mut rng, 0.0, sigma),
                f_s[1] + gauss.sample_scaled(&mut rng, 0.0, sigma),
            ]);
            kf.step(z, f, 1e-10);
        }
        kf
    }

    #[test]
    fn f64_filter_converges() {
        let kf = simulate(F64Arith, 10_000, 0.007, 1);
        let err = kf
            .angles()
            .error_to(&EulerAngles::from_degrees(1.5, -1.0, 2.0));
        assert!(rad_to_deg(err.max_abs()) < 0.05, "{:?}", err.to_degrees());
    }

    #[test]
    fn softfloat_filter_matches_f64_exactly() {
        // Same algorithm, same inputs: IEEE emulation must agree with
        // the native FPU bit-for-bit at every step, so the final
        // estimates are identical.
        let native = simulate(F64Arith, 2_000, 0.007, 2);
        let soft = simulate(SoftArith::default(), 2_000, 0.007, 2);
        let a = native.angles();
        let b = soft.angles();
        assert_eq!(a.roll.to_bits(), b.roll.to_bits());
        assert_eq!(a.pitch.to_bits(), b.pitch.to_bits());
        assert_eq!(a.yaw.to_bits(), b.yaw.to_bits());
    }

    #[test]
    fn softfloat_op_counts_are_recorded() {
        let soft = simulate(SoftArith::default(), 100, 0.007, 3);
        let stats = soft.arith().fpu.stats();
        assert!(stats.total_ops() > 10_000, "{}", stats.total_ops());
        assert!(stats.cycles > 100_000);
        // Divisions only come from the 2x2 inverse: 4 per step.
        assert_eq!(stats.div_f64, 400);
    }

    #[test]
    fn fixed_point_filter_converges_with_degraded_accuracy() {
        let truth = EulerAngles::from_degrees(1.5, -1.0, 2.0);
        let fixed = simulate(FixedArith, 10_000, 0.007, 4);
        let err_fixed = rad_to_deg(fixed.angles().error_to(&truth).max_abs());
        let native = simulate(F64Arith, 10_000, 0.007, 4);
        let err_native = rad_to_deg(native.angles().error_to(&truth).max_abs());
        // Fixed point still works at the few-degree scale...
        assert!(err_fixed < 1.0, "fixed error {err_fixed} deg");
        // ...but cannot beat the float path.
        assert!(err_fixed >= err_native, "{err_fixed} vs {err_native}");
    }

    #[test]
    fn variance_shrinks_with_updates() {
        let kf = simulate(F64Arith, 5_000, 0.007, 5);
        let v = kf.variance();
        assert!(v[0] < 0.01 * 0.01);
        assert!(v[1] < 0.01 * 0.01);
        assert_eq!(kf.update_count(), 5_000);
    }
}
