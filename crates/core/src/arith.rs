//! Arithmetic substrates: the fusion filters over different number
//! systems.
//!
//! The paper runs its filter in IEEE floats emulated by Softfloat on
//! the Sabre core, and names "a full fixed-point analysis and
//! conversion of the Sensor Fusion Algorithm from float to fixed-point
//! calculations" as the obvious enhancement. This module makes that
//! comparison executable for the *whole* estimation stack: the
//! [`Arith`] trait abstracts every scalar operation the filters
//! perform, so the identical algorithms — the 3-state small-angle
//! [`Kf3`] and the production 5-state iterated EKF
//! ([`crate::filter::GenericBoresightFilter`]) — run in
//!
//! * native `f64` ([`F64Arith`]) — the reference,
//! * native `f32` ([`F32Arith`]) — the cheap host float, half the
//!   mantissa at a fraction of an FPGA multiplier's area,
//! * emulated IEEE binary64 ([`SoftArith`]) — the paper's
//!   configuration, with exact operation counts and Sabre cycle costs,
//! * the saturating fixed-point family ([`QArith`]) — the proposed
//!   enhancement at any Q-format split (Q16.16, Q8.24, Q4.28, …),
//!   never wrapping, every saturation event counted,
//! * `L` lockstep lanes of any of the above ([`LaneArith`]) — the
//!   software mirror of an FPGA's replicated parallel datapath,
//!   stepping `L` independent filters per instruction stream (see
//!   [`crate::lanes`]) — or the explicit-vector `f64` lanes of
//!   [`crate::simd::SimdArith`], selected per scalar substrate through
//!   [`LaneSpec`].
//!
//! # The widened trait
//!
//! Beyond `add`/`sub`/`mul`/`div`, the full IEKF needs negation,
//! square roots, absolute values, comparisons ([`Arith::lt`],
//! [`Arith::eq`], [`Arith::max`]), a fused multiply-add ([`Arith::fma`],
//! which substrates with a wide accumulator override to round once)
//! and trigonometry ([`Arith::sin_cos`], defaulting to host-evaluated
//! values so emulated substrates stay bit-comparable to the native
//! reference while still charging a software-evaluation cost).
//!
//! # Instrumentation
//!
//! Every substrate keeps a shared [`OpCounts`] ledger — one counter
//! per operation class plus the saturation-event count — read through
//! [`Arith::counts`], with a substrate cycle model behind
//! [`Arith::cycles`]: Softfloat charges its [`fpga::softfloat::SoftFpu`]
//! ledger, fixed point charges the integer-op model in
//! [`QArith::CYCLE_ADD`] and friends, and the native reference
//! reports zero (host FPU, not cycle-modelled).

// The filter kernel indexes with `for i in 0..3` on purpose: the loops
// mirror the matrix equations they implement.
#![allow(clippy::needless_range_loop)]

use crate::smallmat;
use fpga::fixed::Fixed;
use fpga::softfloat::{Sf64, SoftFpu};
use mathx::{EulerAngles, Vec2, Vec3};

/// Per-operation counters shared by every arithmetic substrate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions.
    pub add: u64,
    /// Subtractions.
    pub sub: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions.
    pub div: u64,
    /// Negations.
    pub neg: u64,
    /// Absolute values.
    pub abs: u64,
    /// Square roots.
    pub sqrt: u64,
    /// Comparisons (`lt`, `eq`, and the compare inside `max`).
    pub cmp: u64,
    /// Fused multiply-adds performed as one operation (substrates
    /// without a wide accumulator count the mul and add separately).
    pub fma: u64,
    /// Sine/cosine pair evaluations.
    pub trig: u64,
    /// Range-saturation events (fixed point only; attributes
    /// fixed-point divergence to overflow rather than rounding).
    pub saturations: u64,
}

impl OpCounts {
    /// Total arithmetic operations (saturations are events, not ops).
    pub fn total(&self) -> u64 {
        self.add
            + self.sub
            + self.mul
            + self.div
            + self.neg
            + self.abs
            + self.sqrt
            + self.cmp
            + self.fma
            + self.trig
    }

    /// The counter growth from an `earlier` snapshot of the same
    /// ledger to this one — the primitive behind per-phase attribution.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not an earlier snapshot
    /// (any counter would go negative).
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            add: self.add - earlier.add,
            sub: self.sub - earlier.sub,
            mul: self.mul - earlier.mul,
            div: self.div - earlier.div,
            neg: self.neg - earlier.neg,
            abs: self.abs - earlier.abs,
            sqrt: self.sqrt - earlier.sqrt,
            cmp: self.cmp - earlier.cmp,
            fma: self.fma - earlier.fma,
            trig: self.trig - earlier.trig,
            saturations: self.saturations - earlier.saturations,
        }
    }

    /// Accumulates another ledger into this one.
    pub fn accumulate(&mut self, other: &OpCounts) {
        self.add += other.add;
        self.sub += other.sub;
        self.mul += other.mul;
        self.div += other.div;
        self.neg += other.neg;
        self.abs += other.abs;
        self.sqrt += other.sqrt;
        self.cmp += other.cmp;
        self.fma += other.fma;
        self.trig += other.trig;
        self.saturations += other.saturations;
    }
}

/// The cost a ledger attributes to one algorithm phase: its op counts
/// plus the substrate's modelled cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Operations charged to the phase.
    pub ops: OpCounts,
    /// Modelled cycles charged to the phase (0 on substrates that are
    /// not cycle-modelled).
    pub cycles: u64,
}

impl PhaseCost {
    /// Charges the growth between two `(counts, cycles)` snapshots.
    pub fn charge(&mut self, before: (OpCounts, u64), after: (OpCounts, u64)) {
        self.ops.accumulate(&after.0.since(&before.0));
        self.cycles += after.1 - before.1;
    }
}

/// Per-phase attribution of the filter's arithmetic: where in the
/// algorithm the substrate's ops and cycles are spent. Maintained by
/// [`crate::filter::GenericBoresightFilter`] from ledger snapshots at
/// phase boundaries, so it works unchanged on every substrate
/// (including [`F64ArithFast`], where every delta is zero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseLedger {
    /// Time propagation (`P += Q dt`).
    pub predict: PhaseCost,
    /// First-pass innovation, its sigma and the gate decision.
    pub gate: PhaseCost,
    /// IEKF iterations, the Joseph covariance update and the trust
    /// region — only charged for accepted samples.
    pub update: PhaseCost,
}

impl PhaseLedger {
    /// Total ops attributed to a tracked phase (arithmetic outside the
    /// filter — estimator prep, diagnostics — is the caller's ledger
    /// total minus this).
    pub fn tracked_ops(&self) -> u64 {
        self.predict.ops.total() + self.gate.ops.total() + self.update.ops.total()
    }

    /// Total cycles attributed to a tracked phase.
    pub fn tracked_cycles(&self) -> u64 {
        self.predict.cycles + self.gate.cycles + self.update.cycles
    }
}

/// Number-system abstraction for the fusion filters.
///
/// Implementations count every operation in their [`OpCounts`] ledger;
/// the provided defaults (negate via subtract-from-zero, fused
/// multiply-add via separate multiply and add, comparisons-based `abs`
/// and `max`, host-evaluated trigonometry) are built from the
/// primitive operations, so they stay correctly counted and behave
/// sanely for any custom substrate.
///
/// Substrates and their scalars are `Send`: a filter over any `Arith`
/// is a session backend, and whole sessions move to worker threads in
/// the parallel sweep executor. Every substrate here is plain data.
pub trait Arith: Send {
    /// The scalar type.
    type T: Copy + std::fmt::Debug + Send;

    /// Converts from `f64`.
    fn num(&mut self, x: f64) -> Self::T;
    /// Converts to `f64`.
    fn to_f64(&self, x: Self::T) -> f64;
    /// Addition.
    fn add(&mut self, a: Self::T, b: Self::T) -> Self::T;
    /// Subtraction.
    fn sub(&mut self, a: Self::T, b: Self::T) -> Self::T;
    /// Multiplication.
    fn mul(&mut self, a: Self::T, b: Self::T) -> Self::T;
    /// Division.
    fn div(&mut self, a: Self::T, b: Self::T) -> Self::T;

    /// Square root (negative inputs follow the substrate's convention:
    /// NaN for floats, zero for fixed point).
    fn sqrt(&mut self, a: Self::T) -> Self::T {
        let v = self.to_f64(a).sqrt();
        self.num(v)
    }

    /// Negation.
    fn neg(&mut self, a: Self::T) -> Self::T {
        let zero = self.num(0.0);
        self.sub(zero, a)
    }

    /// Absolute value.
    fn abs(&mut self, a: Self::T) -> Self::T {
        let zero = self.num(0.0);
        if self.lt(a, zero) {
            self.neg(a)
        } else {
            a
        }
    }

    /// Strict less-than.
    fn lt(&mut self, a: Self::T, b: Self::T) -> bool;

    /// Equality (IEEE semantics for float substrates: NaN != NaN).
    fn eq(&mut self, a: Self::T, b: Self::T) -> bool;

    /// The larger of two values.
    fn max(&mut self, a: Self::T, b: Self::T) -> Self::T {
        if self.lt(a, b) {
            b
        } else {
            a
        }
    }

    /// Fused multiply-add `a * b + c`. The default rounds twice
    /// (separate multiply and add, matching float substrates without an
    /// FMA unit); substrates with a wide accumulator override it to
    /// round once.
    fn fma(&mut self, a: Self::T, b: Self::T, c: Self::T) -> Self::T {
        let p = self.mul(a, b);
        self.add(c, p)
    }

    /// Sine and cosine of an angle in radians.
    ///
    /// The default evaluates on the host through `f64` — a sane choice
    /// for every substrate here, because it keeps emulated number
    /// systems bit-comparable to the native reference while the cycle
    /// model still charges the software (or LUT) evaluation the target
    /// would perform. Small-angle substrates may instead override with
    /// `sin x ~ x`, `cos x ~ 1` or an LUT such as
    /// `fpga::fixed::SinCosLut`.
    fn sin_cos(&mut self, a: Self::T) -> (Self::T, Self::T) {
        let (s, c) = self.to_f64(a).sin_cos();
        (self.num(s), self.num(c))
    }

    /// Short name of the number system (used as a session backend
    /// label).
    fn name(&self) -> &'static str {
        "custom"
    }

    /// Label for the full 5-state IEKF running over this substrate.
    fn iekf_label(&self) -> &'static str {
        "iekf5/custom"
    }

    /// The operation ledger so far.
    fn counts(&self) -> OpCounts {
        OpCounts::default()
    }

    /// Modelled execution cycles so far (0 = not cycle-modelled).
    fn cycles(&self) -> u64 {
        0
    }

    /// Range-saturation events so far.
    fn saturations(&self) -> u64 {
        self.counts().saturations
    }

    /// Clears the operation ledger (and any cycle model behind it).
    fn reset_counts(&mut self) {}

    /// Clears *only* the range-saturation tally, leaving the op and
    /// cycle ledgers intact. Windowed saturation-rate consumers (the
    /// adaptive context monitor, fleet summaries) previously had no
    /// way to zero the tally without also destroying the cycle model;
    /// a no-op on substrates that cannot saturate.
    fn reset_saturation_counts(&mut self) {}
}

/// Native double precision, generic over whether the [`OpCounts`]
/// ledger is maintained.
///
/// `COUNTED` is a compile-time switch: with `true` (the [`F64Arith`]
/// default) every operation increments its counter; with `false`
/// ([`F64ArithFast`]) the increments are `if COUNTED` branches on a
/// const, which the compiler deletes — the native hot path pays
/// *nothing* for instrumentation it does not use. The arithmetic
/// itself is identical either way, so results are bit-for-bit equal
/// across the two instantiations.
#[derive(Clone, Copy, Debug, Default)]
pub struct GenericF64Arith<const COUNTED: bool> {
    counts: OpCounts,
}

/// Native double precision (the reference substrate).
///
/// Operations are counted but not cycle-modelled: this is the host
/// FPU, the baseline everything else is compared against. For the
/// zero-overhead variant the throughput benchmarks use, see
/// [`F64ArithFast`].
pub type F64Arith = GenericF64Arith<true>;

/// Native double precision with the operation ledger compiled out —
/// the zero-instrumentation-cost substrate for wall-clock throughput
/// work. Bit-identical results to [`F64Arith`]; `counts()` reports
/// all zeros.
pub type F64ArithFast = GenericF64Arith<false>;

impl<const COUNTED: bool> Arith for GenericF64Arith<COUNTED> {
    type T = f64;

    fn num(&mut self, x: f64) -> f64 {
        x
    }

    fn to_f64(&self, x: f64) -> f64 {
        x
    }

    fn add(&mut self, a: f64, b: f64) -> f64 {
        if COUNTED {
            self.counts.add += 1;
        }
        a + b
    }

    fn sub(&mut self, a: f64, b: f64) -> f64 {
        if COUNTED {
            self.counts.sub += 1;
        }
        a - b
    }

    fn mul(&mut self, a: f64, b: f64) -> f64 {
        if COUNTED {
            self.counts.mul += 1;
        }
        a * b
    }

    fn div(&mut self, a: f64, b: f64) -> f64 {
        if COUNTED {
            self.counts.div += 1;
        }
        a / b
    }

    fn sqrt(&mut self, a: f64) -> f64 {
        if COUNTED {
            self.counts.sqrt += 1;
        }
        a.sqrt()
    }

    fn neg(&mut self, a: f64) -> f64 {
        if COUNTED {
            self.counts.neg += 1;
        }
        -a
    }

    fn abs(&mut self, a: f64) -> f64 {
        if COUNTED {
            self.counts.abs += 1;
        }
        a.abs()
    }

    fn lt(&mut self, a: f64, b: f64) -> bool {
        if COUNTED {
            self.counts.cmp += 1;
        }
        a < b
    }

    fn eq(&mut self, a: f64, b: f64) -> bool {
        if COUNTED {
            self.counts.cmp += 1;
        }
        a == b
    }

    fn max(&mut self, a: f64, b: f64) -> f64 {
        if COUNTED {
            self.counts.cmp += 1;
        }
        a.max(b)
    }

    fn sin_cos(&mut self, a: f64) -> (f64, f64) {
        if COUNTED {
            self.counts.trig += 1;
        }
        a.sin_cos()
    }

    fn name(&self) -> &'static str {
        if COUNTED {
            "f64"
        } else {
            "f64/uncounted"
        }
    }

    fn iekf_label(&self) -> &'static str {
        // Both instantiations run the identical arithmetic, so they
        // share the reference label (parallel/serial parity tests
        // compare labels across counted and uncounted runs).
        "iekf5/f64"
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }
}

/// Native single precision, generic over whether the [`OpCounts`]
/// ledger is maintained (the `f32` twin of [`GenericF64Arith`]).
///
/// Half the mantissa of the reference at a fraction of the hardware
/// cost: a binary32 multiplier is the cheap, paper-era-realistic FPGA
/// float option, and on the host it is the densest native SIMD lane.
/// Values round through `f32` on entry (`num`) and after every
/// operation, so the divergence the arithmetic ablation measures is
/// pure precision loss — there is no range saturation to attribute.
#[derive(Clone, Copy, Debug, Default)]
pub struct GenericF32Arith<const COUNTED: bool> {
    counts: OpCounts,
}

/// Native single precision (counted).
pub type F32Arith = GenericF32Arith<true>;

/// Native single precision with the ledger compiled out — bit-identical
/// results to [`F32Arith`] for wall-clock throughput work.
pub type F32ArithFast = GenericF32Arith<false>;

impl<const COUNTED: bool> Arith for GenericF32Arith<COUNTED> {
    type T = f32;

    fn num(&mut self, x: f64) -> f32 {
        x as f32
    }

    fn to_f64(&self, x: f32) -> f64 {
        x as f64
    }

    fn add(&mut self, a: f32, b: f32) -> f32 {
        if COUNTED {
            self.counts.add += 1;
        }
        a + b
    }

    fn sub(&mut self, a: f32, b: f32) -> f32 {
        if COUNTED {
            self.counts.sub += 1;
        }
        a - b
    }

    fn mul(&mut self, a: f32, b: f32) -> f32 {
        if COUNTED {
            self.counts.mul += 1;
        }
        a * b
    }

    fn div(&mut self, a: f32, b: f32) -> f32 {
        if COUNTED {
            self.counts.div += 1;
        }
        a / b
    }

    fn sqrt(&mut self, a: f32) -> f32 {
        if COUNTED {
            self.counts.sqrt += 1;
        }
        a.sqrt()
    }

    fn neg(&mut self, a: f32) -> f32 {
        if COUNTED {
            self.counts.neg += 1;
        }
        -a
    }

    fn abs(&mut self, a: f32) -> f32 {
        if COUNTED {
            self.counts.abs += 1;
        }
        a.abs()
    }

    fn lt(&mut self, a: f32, b: f32) -> bool {
        if COUNTED {
            self.counts.cmp += 1;
        }
        a < b
    }

    fn eq(&mut self, a: f32, b: f32) -> bool {
        if COUNTED {
            self.counts.cmp += 1;
        }
        a == b
    }

    fn max(&mut self, a: f32, b: f32) -> f32 {
        if COUNTED {
            self.counts.cmp += 1;
        }
        a.max(b)
    }

    fn sin_cos(&mut self, a: f32) -> (f32, f32) {
        if COUNTED {
            self.counts.trig += 1;
        }
        // Host-evaluated in f64 then rounded, like every emulated
        // substrate's trig default: the f32 path measures datapath
        // precision, not libm's single-precision polynomial choice.
        let (s, c) = (a as f64).sin_cos();
        (s as f32, c as f32)
    }

    fn name(&self) -> &'static str {
        if COUNTED {
            "f32"
        } else {
            "f32/uncounted"
        }
    }

    fn iekf_label(&self) -> &'static str {
        "iekf5/f32"
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }
}

/// Softfloat binary64 with Sabre cycle accounting.
#[derive(Clone, Debug, Default)]
pub struct SoftArith {
    /// The cost-accounted FPU (inspect for op counts and cycles).
    pub fpu: SoftFpu,
    counts: OpCounts,
}

impl Arith for SoftArith {
    type T = Sf64;

    fn num(&mut self, x: f64) -> Sf64 {
        Sf64::from_f64(x)
    }

    fn to_f64(&self, x: Sf64) -> f64 {
        x.to_f64()
    }

    fn add(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.counts.add += 1;
        self.fpu.add_f64(a, b)
    }

    fn sub(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.counts.sub += 1;
        self.fpu.sub_f64(a, b)
    }

    fn mul(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.counts.mul += 1;
        self.fpu.mul_f64(a, b)
    }

    fn div(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.counts.div += 1;
        self.fpu.div_f64(a, b)
    }

    fn sqrt(&mut self, a: Sf64) -> Sf64 {
        self.counts.sqrt += 1;
        self.fpu.sqrt_f64(a)
    }

    fn neg(&mut self, a: Sf64) -> Sf64 {
        self.counts.neg += 1;
        self.fpu.neg_f64(a)
    }

    fn abs(&mut self, a: Sf64) -> Sf64 {
        self.counts.abs += 1;
        self.fpu.abs_f64(a)
    }

    fn lt(&mut self, a: Sf64, b: Sf64) -> bool {
        self.counts.cmp += 1;
        self.fpu.lt_f64(a, b)
    }

    fn eq(&mut self, a: Sf64, b: Sf64) -> bool {
        self.counts.cmp += 1;
        self.fpu.eq_f64(a, b)
    }

    fn max(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        // `f64::max` semantics (NaN-ignoring), so the emulated path
        // stays bit-comparable to the native reference even when a NaN
        // enters the stream; the trait's lt-based default would return
        // the NaN instead.
        self.counts.cmp += 1;
        if a.is_nan() {
            return b;
        }
        if b.is_nan() {
            return a;
        }
        if self.fpu.lt_f64(a, b) {
            b
        } else {
            a
        }
    }

    fn sin_cos(&mut self, a: Sf64) -> (Sf64, Sf64) {
        self.counts.trig += 1;
        self.fpu.sin_cos_f64(a)
    }

    fn name(&self) -> &'static str {
        "softfloat/f64"
    }

    fn iekf_label(&self) -> &'static str {
        "iekf5/softfloat"
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn cycles(&self) -> u64 {
        self.fpu.stats().cycles
    }

    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
        self.fpu.reset();
    }
}

/// The saturating fixed-point substrate family, one 32-bit register
/// split into `32 - FRAC` integer and `FRAC` fractional bits.
///
/// Every operation saturates at the register range instead of silently
/// wrapping, and each saturation is recorded in
/// [`OpCounts::saturations`] so fixed-point divergence in the
/// arithmetic ablation is attributable to overflow vs quantization.
/// The fused multiply-add keeps the 64-bit product-accumulator wide
/// (one rounding), as a DSP-slice MAC would. The integer cycle model
/// is format-independent: every Q-split runs the same 32-bit integer
/// datapath, only the rounding shift constant differs.
///
/// Trading integer for fractional bits moves the substrate along the
/// accuracy-vs-range frontier: `QArith<16>` (Q16.16) is the balanced
/// paper-era split, `QArith<24>` (Q8.24) buys 8 more fraction bits at
/// a ±128 range, `QArith<28>` (Q4.28) resolves 3.7 nano-units but
/// saturates beyond ±8 — the saturation ledger quantifies exactly what
/// each narrower range costs on a given scenario.
#[derive(Clone, Copy, Debug, Default)]
pub struct QArith<const FRAC: u32> {
    counts: OpCounts,
}

/// Q16.16 saturating fixed point — the balanced split the paper's
/// "obvious enhancement" proposes.
///
/// Deprecated: the alias predates the [`QArith`] format family and
/// hides the fraction split that now matters everywhere (frontier
/// sweeps, adaptive reconfiguration). Name the split explicitly.
#[deprecated(
    since = "0.8.0",
    note = "use QArith<16> — the alias hides the Q-format split"
)]
pub type FixedArith = QArith<16>;

impl<const FRAC: u32> QArith<FRAC> {
    /// Integer cycles for add/sub/neg/abs/compare on a 32-bit core.
    pub const CYCLE_ADD: u64 = 1;
    /// Integer cycles for the 32x32->64 multiply with rounding shift.
    pub const CYCLE_MUL: u64 = 3;
    /// Integer cycles for the fused multiply-add (wide accumulate).
    pub const CYCLE_FMA: u64 = 4;
    /// Integer cycles for the iterative 64/32 divide.
    pub const CYCLE_DIV: u64 = 35;
    /// Integer cycles for the integer square root iteration.
    pub const CYCLE_SQRT: u64 = 40;
    /// Cycles for a trig evaluation via the Q1.14 lookup table.
    pub const CYCLE_TRIG: u64 = 8;

    fn sat(&mut self, saturated: bool) {
        if saturated {
            self.counts.saturations += 1;
        }
    }
}

/// Floor integer square root of a `u64`.
fn isqrt_u64(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = 1u64 << (n.ilog2() / 2 + 1);
    loop {
        let y = (x + n / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

impl<const FRAC: u32> Arith for QArith<FRAC> {
    type T = Fixed<FRAC>;

    fn num(&mut self, x: f64) -> Fixed<FRAC> {
        Fixed::from_f64(x)
    }

    fn to_f64(&self, x: Fixed<FRAC>) -> f64 {
        x.to_f64()
    }

    fn add(&mut self, a: Fixed<FRAC>, b: Fixed<FRAC>) -> Fixed<FRAC> {
        self.counts.add += 1;
        let (v, sat) = a.saturating_add_checked(b);
        self.sat(sat);
        v
    }

    fn sub(&mut self, a: Fixed<FRAC>, b: Fixed<FRAC>) -> Fixed<FRAC> {
        self.counts.sub += 1;
        let (v, sat) = a.saturating_sub_checked(b);
        self.sat(sat);
        v
    }

    fn mul(&mut self, a: Fixed<FRAC>, b: Fixed<FRAC>) -> Fixed<FRAC> {
        self.counts.mul += 1;
        let (v, sat) = a.saturating_mul_checked(b);
        self.sat(sat);
        v
    }

    fn div(&mut self, a: Fixed<FRAC>, b: Fixed<FRAC>) -> Fixed<FRAC> {
        self.counts.div += 1;
        let (v, sat) = a.saturating_div_checked(b);
        self.sat(sat);
        v
    }

    fn sqrt(&mut self, a: Fixed<FRAC>) -> Fixed<FRAC> {
        self.counts.sqrt += 1;
        if a.raw() <= 0 {
            return Fixed::ZERO;
        }
        // sqrt(raw / 2^FRAC) * 2^FRAC = sqrt(raw * 2^FRAC): one widening
        // shift keeps the iteration in integers at full precision. The
        // result fits i32 for every split up to Q4.28
        // (sqrt(2^31 * 2^28) < 2^30).
        Fixed::from_raw(isqrt_u64((a.raw() as u64) << FRAC) as i32)
    }

    fn neg(&mut self, a: Fixed<FRAC>) -> Fixed<FRAC> {
        self.counts.neg += 1;
        self.sat(a.raw() == i32::MIN);
        a.saturating_neg()
    }

    fn abs(&mut self, a: Fixed<FRAC>) -> Fixed<FRAC> {
        self.counts.abs += 1;
        self.sat(a.raw() == i32::MIN);
        a.abs()
    }

    fn lt(&mut self, a: Fixed<FRAC>, b: Fixed<FRAC>) -> bool {
        self.counts.cmp += 1;
        a < b
    }

    fn eq(&mut self, a: Fixed<FRAC>, b: Fixed<FRAC>) -> bool {
        self.counts.cmp += 1;
        a == b
    }

    fn fma(&mut self, a: Fixed<FRAC>, b: Fixed<FRAC>, c: Fixed<FRAC>) -> Fixed<FRAC> {
        self.counts.fma += 1;
        let (v, sat) = a.saturating_mul_add_checked(b, c);
        self.sat(sat);
        v
    }

    fn sin_cos(&mut self, a: Fixed<FRAC>) -> (Fixed<FRAC>, Fixed<FRAC>) {
        self.counts.trig += 1;
        let (s, c) = a.to_f64().sin_cos();
        (Fixed::from_f64(s), Fixed::from_f64(c))
    }

    fn name(&self) -> &'static str {
        match FRAC {
            16 => "q16.16",
            20 => "q12.20",
            24 => "q8.24",
            28 => "q4.28",
            _ => "q.fixed",
        }
    }

    fn iekf_label(&self) -> &'static str {
        match FRAC {
            16 => "iekf5/q16.16",
            20 => "iekf5/q12.20",
            24 => "iekf5/q8.24",
            28 => "iekf5/q4.28",
            _ => "iekf5/q.fixed",
        }
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn cycles(&self) -> u64 {
        let c = &self.counts;
        (c.add + c.sub + c.neg + c.abs + c.cmp) * Self::CYCLE_ADD
            + c.mul * Self::CYCLE_MUL
            + c.fma * Self::CYCLE_FMA
            + c.div * Self::CYCLE_DIV
            + c.sqrt * Self::CYCLE_SQRT
            + c.trig * Self::CYCLE_TRIG
    }

    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }

    fn reset_saturation_counts(&mut self) {
        self.counts.saturations = 0;
    }
}

/// A multi-lane batched substrate: `L` independent values of an inner
/// substrate stepped in lockstep, the software mirror of an FPGA's
/// replicated parallel datapath.
///
/// The scalar is `[A::T; L]` and every arithmetic operation applies
/// the inner substrate's operation to each lane. On native `f64` the
/// lane loops are trivially unrollable/vectorizable; on emulated
/// substrates the per-operation dispatch overhead is amortized over
/// `L` useful results. Each lane's value stream is **bit-identical**
/// to running the inner substrate alone (the property the lane-parity
/// tests pin), because a lane never observes its neighbours.
///
/// # Collective comparisons vs SIMD masks
///
/// [`Arith::lt`] and [`Arith::eq`] must return one `bool`, so here
/// they are *collective*: true only when every lane agrees. Lockstep
/// code that needs per-lane control flow (the gate, the trust region,
/// IEKF convergence) must use the per-lane probes
/// ([`LaneArith::lane_lt`], [`LaneArith::lane_to_f64`]) and mask its
/// own writes — which is exactly what [`crate::lanes::LaneIekf`] does.
/// [`Arith::max`] and [`Arith::abs`] stay element-wise (they are value
/// selections, not control flow).
///
/// The explicit-vector substrate [`crate::simd::SimdArith`] honours
/// the identical contract, but by *mask* semantics: its per-lane probe
/// ([`LaneOps::lane_lt`]) is a hardware compare producing a lane mask
/// (`cmppd` + `movemask` on SSE2), and its collective [`Arith::lt`] /
/// [`Arith::eq`] are the all-lanes reduction of that mask. Divergence
/// handling is therefore the same on both lane substrates — every lane
/// executes every instruction and the *caller* masks the writes of
/// lanes that left the common control path — which is why
/// [`crate::lanes::LaneIekf`] is generic over [`LaneOps`] and stays
/// per-lane bit-identical to the scalar filter on either. The two
/// differ only in how the lanes are computed: a per-lane loop over the
/// inner substrate here (autovectorized at best), one vector
/// instruction per op there.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaneArith<A: Arith, const L: usize> {
    inner: A,
}

impl<A: Arith, const L: usize> LaneArith<A, L> {
    /// Wraps an inner substrate context.
    pub fn new(inner: A) -> Self {
        Self { inner }
    }

    /// The inner substrate context (one shared ledger across lanes).
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The inner substrate context, mutably.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Builds a lane value from per-lane `f64`s.
    pub fn from_lanes(&mut self, xs: [f64; L]) -> [A::T; L] {
        xs.map(|x| self.inner.num(x))
    }

    /// Reads one lane back as `f64`.
    pub fn lane_to_f64(&self, v: &[A::T; L], lane: usize) -> f64 {
        self.inner.to_f64(v[lane])
    }

    /// Per-lane strict less-than — the masked-control-flow probe.
    pub fn lane_lt(&mut self, a: &[A::T; L], b: &[A::T; L]) -> [bool; L] {
        std::array::from_fn(|i| self.inner.lt(a[i], b[i]))
    }
}

impl<A: Arith, const L: usize> Arith for LaneArith<A, L> {
    type T = [A::T; L];

    fn num(&mut self, x: f64) -> Self::T {
        [self.inner.num(x); L]
    }

    fn to_f64(&self, x: Self::T) -> f64 {
        self.inner.to_f64(x[0])
    }

    fn add(&mut self, a: Self::T, b: Self::T) -> Self::T {
        std::array::from_fn(|i| self.inner.add(a[i], b[i]))
    }

    fn sub(&mut self, a: Self::T, b: Self::T) -> Self::T {
        std::array::from_fn(|i| self.inner.sub(a[i], b[i]))
    }

    fn mul(&mut self, a: Self::T, b: Self::T) -> Self::T {
        std::array::from_fn(|i| self.inner.mul(a[i], b[i]))
    }

    fn div(&mut self, a: Self::T, b: Self::T) -> Self::T {
        std::array::from_fn(|i| self.inner.div(a[i], b[i]))
    }

    fn sqrt(&mut self, a: Self::T) -> Self::T {
        std::array::from_fn(|i| self.inner.sqrt(a[i]))
    }

    fn neg(&mut self, a: Self::T) -> Self::T {
        std::array::from_fn(|i| self.inner.neg(a[i]))
    }

    fn abs(&mut self, a: Self::T) -> Self::T {
        std::array::from_fn(|i| self.inner.abs(a[i]))
    }

    fn lt(&mut self, a: Self::T, b: Self::T) -> bool {
        (0..L).all(|i| self.inner.lt(a[i], b[i]))
    }

    fn eq(&mut self, a: Self::T, b: Self::T) -> bool {
        (0..L).all(|i| self.inner.eq(a[i], b[i]))
    }

    fn max(&mut self, a: Self::T, b: Self::T) -> Self::T {
        std::array::from_fn(|i| self.inner.max(a[i], b[i]))
    }

    fn fma(&mut self, a: Self::T, b: Self::T, c: Self::T) -> Self::T {
        std::array::from_fn(|i| self.inner.fma(a[i], b[i], c[i]))
    }

    fn sin_cos(&mut self, a: Self::T) -> (Self::T, Self::T) {
        let mut cs = [a[0]; L];
        let sn = std::array::from_fn(|i| {
            let (s, c) = self.inner.sin_cos(a[i]);
            cs[i] = c;
            s
        });
        (sn, cs)
    }

    fn name(&self) -> &'static str {
        "lanes"
    }

    fn iekf_label(&self) -> &'static str {
        "iekf5/lanes"
    }

    fn counts(&self) -> OpCounts {
        self.inner.counts()
    }

    fn cycles(&self) -> u64 {
        self.inner.cycles()
    }

    fn reset_counts(&mut self) {
        self.inner.reset_counts();
    }

    fn reset_saturation_counts(&mut self) {
        self.inner.reset_saturation_counts();
    }
}

/// A scalar substrate that knows its `L`-lane batched form.
///
/// This is the compile-time link [`crate::lanes::LaneIekf`] (and the
/// fleet arena on top of it) uses to pick a lane substrate per scalar
/// substrate: every counted/emulated/fixed-point scalar maps to the
/// generic per-lane loop [`LaneArith<Self, L>`], while the
/// [`crate::simd::SimdF64`] marker maps to the explicit-vector
/// [`crate::simd::SimdArith<L>`]. Code written against
/// `A: LaneSpec<L>` is oblivious to the choice — both lane forms
/// implement [`LaneOps`] and both keep each lane bit-identical to a
/// scalar run.
pub trait LaneSpec<const L: usize>: Arith + Sized
where
    <Self::Lanes as Arith>::T: std::ops::IndexMut<usize, Output = Self::T>,
{
    /// The lane substrate stepping `L` values of `Self` in lockstep.
    type Lanes: LaneOps<L, Inner = Self> + Clone + std::fmt::Debug;
}

/// The operations a lane substrate offers beyond [`Arith`]: lane
/// construction, per-lane read-out and the per-lane compare probe that
/// masked control flow is built from.
///
/// The `IndexMut` bound is the load-bearing part of the contract: a
/// lane value must expose its lanes as `value[lane]` scalars of the
/// inner substrate, so lockstep callers (masked state adoption in
/// [`crate::lanes::LaneIekf`], staged-measurement scatter in the fleet
/// arena) write diverged lanes back element-wise regardless of whether
/// the storage is a plain array ([`LaneArith`]) or an explicit vector
/// register image ([`crate::simd::F64Lanes`]).
pub trait LaneOps<const L: usize>: Arith
where
    Self::T: std::ops::IndexMut<usize, Output = <Self::Inner as Arith>::T>,
{
    /// The scalar substrate a lane holds `L` values of.
    type Inner: Arith;

    /// Wraps an inner substrate context.
    fn with_inner(inner: Self::Inner) -> Self;

    /// The inner substrate context (one shared ledger across lanes).
    fn inner(&self) -> &Self::Inner;

    /// The inner substrate context, mutably.
    fn inner_mut(&mut self) -> &mut Self::Inner;

    /// Builds a lane value from per-lane `f64`s. Takes `&mut self`
    /// (unlike the usual `from_*` convention) because substrate
    /// conversions go through [`Arith::num`], which mutates the
    /// instrumentation ledger.
    #[allow(clippy::wrong_self_convention)]
    fn from_lanes(&mut self, xs: [f64; L]) -> Self::T;

    /// Broadcasts one inner scalar to every lane.
    fn splat(&mut self, v: <Self::Inner as Arith>::T) -> Self::T;

    /// Reads one lane back as `f64`.
    fn lane_to_f64(&self, v: &Self::T, lane: usize) -> f64;

    /// Per-lane strict less-than — the masked-control-flow probe.
    fn lane_lt(&mut self, a: &Self::T, b: &Self::T) -> [bool; L];
}

impl<A: Arith, const L: usize> LaneOps<L> for LaneArith<A, L> {
    type Inner = A;

    fn with_inner(inner: A) -> Self {
        Self { inner }
    }

    fn inner(&self) -> &A {
        &self.inner
    }

    fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    fn from_lanes(&mut self, xs: [f64; L]) -> [A::T; L] {
        xs.map(|x| self.inner.num(x))
    }

    fn splat(&mut self, v: A::T) -> [A::T; L] {
        [v; L]
    }

    fn lane_to_f64(&self, v: &[A::T; L], lane: usize) -> f64 {
        self.inner.to_f64(v[lane])
    }

    fn lane_lt(&mut self, a: &[A::T; L], b: &[A::T; L]) -> [bool; L] {
        std::array::from_fn(|i| self.inner.lt(a[i], b[i]))
    }
}

impl<const COUNTED: bool, const L: usize> LaneSpec<L> for GenericF64Arith<COUNTED> {
    type Lanes = LaneArith<Self, L>;
}

impl<const COUNTED: bool, const L: usize> LaneSpec<L> for GenericF32Arith<COUNTED> {
    type Lanes = LaneArith<Self, L>;
}

impl<const L: usize> LaneSpec<L> for SoftArith {
    type Lanes = LaneArith<Self, L>;
}

impl<const FRAC: u32, const L: usize> LaneSpec<L> for QArith<FRAC> {
    type Lanes = LaneArith<Self, L>;
}

/// Three-state small-angle misalignment Kalman filter over an
/// [`Arith`].
///
/// State `e = [phi, theta, psi]`; measurement
/// `z = S (f + [f]x e) + v` — linear, so this is a plain Kalman filter
/// with `H = S [f]x` recomputed per sample. The dense loops are the
/// shared [`crate::smallmat`] kernels, the same ones the 5-state
/// generic IEKF runs on.
///
/// # Examples
///
/// ```
/// use boresight::arith::{F64Arith, Kf3};
/// use mathx::{Vec2, Vec3};
///
/// let mut kf = Kf3::new(F64Arith::default(), 0.1, 0.007);
/// kf.step(Vec2::new([0.0, 0.0]), Vec3::new([0.0, 0.0, 9.81]), 1e-10);
/// assert!(kf.angles().max_abs() < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct Kf3<A: Arith> {
    arith: A,
    x: [A::T; 3],
    p: [[A::T; 3]; 3],
    r: A::T,
    updates: u64,
}

impl<A: Arith> Kf3<A> {
    /// Creates a filter with the given initial angle sigma (rad) and
    /// measurement sigma (m/s^2).
    pub fn new(mut arith: A, initial_sigma: f64, measurement_sigma: f64) -> Self {
        let zero = arith.num(0.0);
        let p0 = arith.num(initial_sigma * initial_sigma);
        let r = arith.num(measurement_sigma * measurement_sigma);
        let mut p = [[zero; 3]; 3];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = p0;
        }
        Self {
            arith,
            x: [zero; 3],
            p,
            r,
            updates: 0,
        }
    }

    /// Borrow the arithmetic context (e.g. to read softfloat stats).
    pub fn arith(&self) -> &A {
        &self.arith
    }

    /// Accepted updates so far.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Estimated misalignment.
    pub fn angles(&self) -> EulerAngles {
        EulerAngles::new(
            self.arith.to_f64(self.x[0]),
            self.arith.to_f64(self.x[1]),
            self.arith.to_f64(self.x[2]),
        )
    }

    /// Covariance diagonal (rad^2).
    pub fn variance(&self) -> Vec3 {
        Vec3::new([
            self.arith.to_f64(self.p[0][0]),
            self.arith.to_f64(self.p[1][1]),
            self.arith.to_f64(self.p[2][2]),
        ])
    }

    /// One predict+update step: process noise `q` (rad^2 per step),
    /// measurement `z` (ACC x/y, m/s^2), IMU specific force `f`.
    pub fn step(&mut self, z: Vec2, f: Vec3, q: f64) {
        let a = &mut self.arith;
        // Predict: P += q I.
        let qv = a.num(q);
        for i in 0..3 {
            self.p[i][i] = a.add(self.p[i][i], qv);
        }
        // H = S [f]x  (rows: [0, -fz, fy] and [fz, 0, -fx]).
        let fx = a.num(f[0]);
        let fy = a.num(f[1]);
        let fz = a.num(f[2]);
        let zero = a.num(0.0);
        let nfz = a.neg(fz);
        let nfx = a.neg(fx);
        let h = [[zero, nfz, fy], [fz, zero, nfx]];
        // ph = P H^T (3x2), s = H (P H^T) + R (2x2).
        let ph = smallmat::mul_nt(a, &self.p, &h);
        let mut s = smallmat::mul(a, &h, &ph);
        for i in 0..2 {
            s[i][i] = a.add(s[i][i], self.r);
        }
        // Gauss-Jordan 2x2 inverse (shared with the 5-state IEKF). The
        // closed-form adj/det inverse is unusable in Q16.16: once the
        // covariance reaches the quantization floor the determinant
        // (~R^2) underflows to zero and the gain saturates; pivoting
        // row reduction divides by S entries instead, which stay
        // representable.
        let Some(si) = smallmat::inverse(a, &s) else {
            return;
        };
        // K = PH * S^-1 (3x2).
        let kmat = smallmat::mul(a, &ph, &si);
        // Innovation: z - (S f + H x).
        let hx = smallmat::mat_vec(a, &h, &self.x);
        let zf = [a.num(z[0]), a.num(z[1])];
        let sf = [fx, fy];
        let mut innov = [zero; 2];
        for i in 0..2 {
            let pred = a.add(sf[i], hx[i]);
            innov[i] = a.sub(zf[i], pred);
        }
        // x += K * innovation.
        let dx = smallmat::mat_vec(a, &kmat, &innov);
        for i in 0..3 {
            self.x[i] = a.add(self.x[i], dx[i]);
        }
        // Joseph-form covariance update (the kernel shared with the
        // 5-state IEKF). The standard form `P - K (PH)^T` loses
        // positive definiteness under coarse rounding — in Q16.16 it
        // went indefinite within a handful of steps — while the Joseph
        // form is a sum of (near-)PSD terms and stays bounded.
        self.p = smallmat::joseph_update(a, &self.p, &kmat, &h, self.r);
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathx::rng::seeded_rng;
    use mathx::{rad_to_deg, GaussianSampler, STANDARD_GRAVITY};

    fn simulate<A: Arith>(arith: A, n: usize, sigma: f64, seed: u64) -> Kf3<A> {
        let truth = EulerAngles::from_degrees(1.5, -1.0, 2.0);
        let e = truth.as_vec3();
        let mut kf = Kf3::new(arith, 0.1, sigma);
        let mut rng = seeded_rng(seed);
        let mut gauss = GaussianSampler::new();
        let g = STANDARD_GRAVITY;
        for i in 0..n {
            let t = i as f64 * 0.005;
            let f = Vec3::new([2.0 * (0.5 * t).sin(), 1.5 * (0.33 * t).cos(), g]);
            // Small-angle truth measurement.
            let f_s = f - e.cross(&f);
            let z = Vec2::new([
                f_s[0] + gauss.sample_scaled(&mut rng, 0.0, sigma),
                f_s[1] + gauss.sample_scaled(&mut rng, 0.0, sigma),
            ]);
            kf.step(z, f, 1e-10);
        }
        kf
    }

    #[test]
    fn f64_filter_converges() {
        let kf = simulate(F64Arith::default(), 10_000, 0.007, 1);
        let err = kf
            .angles()
            .error_to(&EulerAngles::from_degrees(1.5, -1.0, 2.0));
        assert!(rad_to_deg(err.max_abs()) < 0.05, "{:?}", err.to_degrees());
    }

    #[test]
    fn softfloat_filter_matches_f64_exactly() {
        // Same algorithm, same inputs: IEEE emulation must agree with
        // the native FPU bit-for-bit at every step, so the final
        // estimates are identical.
        let native = simulate(F64Arith::default(), 2_000, 0.007, 2);
        let soft = simulate(SoftArith::default(), 2_000, 0.007, 2);
        let a = native.angles();
        let b = soft.angles();
        assert_eq!(a.roll.to_bits(), b.roll.to_bits());
        assert_eq!(a.pitch.to_bits(), b.pitch.to_bits());
        assert_eq!(a.yaw.to_bits(), b.yaw.to_bits());
    }

    #[test]
    fn softfloat_op_counts_are_recorded() {
        let soft = simulate(SoftArith::default(), 100, 0.007, 3);
        let stats = soft.arith().fpu.stats();
        assert!(stats.total_ops() > 10_000, "{}", stats.total_ops());
        assert!(stats.cycles > 100_000);
        // Divisions only come from the Gauss-Jordan 2x2 inverse: two
        // pivot rows of (2 work + 2 inverse) entries = 8 per step.
        assert_eq!(stats.div_f64, 800);
        // The shared per-substrate ledger agrees with the FPU's.
        let counts = soft.arith().counts();
        assert_eq!(counts.div, 800);
        assert_eq!(counts.mul, stats.mul_f64);
        assert_eq!(counts.add + counts.sub, stats.add_f64);
        assert_eq!(soft.arith().cycles(), stats.cycles);
    }

    #[test]
    fn fixed_point_filter_converges_with_degraded_accuracy() {
        let truth = EulerAngles::from_degrees(1.5, -1.0, 2.0);
        let fixed = simulate(QArith::<16>::default(), 10_000, 0.007, 4);
        let err_fixed = rad_to_deg(fixed.angles().error_to(&truth).max_abs());
        let native = simulate(F64Arith::default(), 10_000, 0.007, 4);
        let err_native = rad_to_deg(native.angles().error_to(&truth).max_abs());
        // Fixed point still works at the few-degree scale: once the
        // covariance hits the Q16.16 quantization floor the gain on the
        // least-observable axis rounds to zero and that estimate
        // stalls — the quantified cost of the paper's proposed
        // enhancement, attributable through the op/saturation ledger.
        assert!(err_fixed < 5.0, "fixed error {err_fixed} deg");
        // ...but cannot beat the float path.
        assert!(err_fixed >= err_native, "{err_fixed} vs {err_native}");
    }

    #[test]
    fn fixed_point_saturation_is_counted_not_wrapped() {
        let mut a = QArith::<16>::default();
        let big = a.num(30000.0);
        let sum = a.add(big, big);
        // Saturates at the register maximum instead of wrapping
        // negative.
        assert!(a.to_f64(sum) > 32000.0);
        let prod = a.mul(big, big);
        assert!(a.to_f64(prod) > 32000.0);
        let tiny = a.num(0.0001);
        let q = a.div(big, tiny);
        assert!(a.to_f64(q) > 32000.0);
        assert_eq!(a.saturations(), 3);
        assert_eq!(a.counts().add, 1);
        assert_eq!(a.counts().mul, 1);
        assert_eq!(a.counts().div, 1);
        assert!(a.cycles() > 0);
        // The explicit saturation reset zeroes only the tally,
        // leaving the op ledger (and the cycle model) intact.
        a.reset_saturation_counts();
        assert_eq!(a.saturations(), 0);
        assert_eq!(a.counts().add, 1);
        assert!(a.cycles() > 0);
        a.reset_counts();
        assert_eq!(a.counts().total(), 0);
    }

    #[test]
    fn widened_ops_are_consistent_across_substrates() {
        let mut f = F64Arith::default();
        let mut s = SoftArith::default();
        let mut q = QArith::<16>::default();
        for x in [-2.5, -0.25, 0.5, 3.75] {
            let (vf, vs, vq) = (f.num(x), s.num(x), q.num(x));
            let xf = f.neg(vf);
            let xs = s.neg(vs);
            let xq = q.neg(vq);
            assert_eq!(xf, s.to_f64(xs));
            assert_eq!(xf, q.to_f64(xq));
            let af = f.abs(vf);
            let asoft = s.abs(vs);
            let afix = q.abs(vq);
            assert_eq!(af, s.to_f64(asoft));
            assert_eq!(af, q.to_f64(afix));
        }
        // sqrt: exact on perfect squares for all substrates.
        let (wf, ws, wq) = (f.num(6.25), s.num(6.25), q.num(6.25));
        assert_eq!(f.sqrt(wf), 2.5);
        let rs = s.sqrt(ws);
        assert_eq!(s.to_f64(rs), 2.5);
        let rq = q.sqrt(wq);
        assert_eq!(q.to_f64(rq), 2.5);
        let neg1 = q.num(-1.0);
        let rneg = q.sqrt(neg1);
        assert_eq!(q.to_f64(rneg), 0.0);
        // fma: fixed point rounds once through the wide accumulator.
        let (qa, qb, qc) = (q.num(1.5), q.num(2.0), q.num(0.25));
        let v = q.fma(qa, qb, qc);
        assert_eq!(q.to_f64(v), 3.25);
        // comparisons and max.
        assert!(f.lt(1.0, 2.0) && !f.eq(1.0, 2.0));
        let (s1, s2) = (s.num(1.0), s.num(2.0));
        assert!(s.lt(s1, s2));
        let (q1, q2) = (q.num(1.0), q.num(2.0));
        assert!(q.lt(q1, q2));
        assert_eq!(f.max(1.0, 2.0), 2.0);
        // trig defaults agree with the host.
        let (sn, cs) = f.sin_cos(0.5);
        let half = s.num(0.5);
        let (ss, sc) = s.sin_cos(half);
        assert_eq!(sn, s.to_f64(ss));
        assert_eq!(cs, s.to_f64(sc));
        assert!(s.fpu.stats().sincos_f64 > 0);
    }

    #[test]
    fn uncounted_f64_is_bit_identical_and_ledger_free() {
        // The fast instantiation must compute exactly what the counted
        // reference computes (same machine ops, no ledger writes)...
        let counted = simulate(F64Arith::default(), 3_000, 0.007, 6);
        let fast = simulate(F64ArithFast::default(), 3_000, 0.007, 6);
        let a = counted.angles();
        let b = fast.angles();
        assert_eq!(a.roll.to_bits(), b.roll.to_bits());
        assert_eq!(a.pitch.to_bits(), b.pitch.to_bits());
        assert_eq!(a.yaw.to_bits(), b.yaw.to_bits());
        // ...while its ledger stays empty and the reference's fills.
        assert!(counted.arith().counts().total() > 0);
        assert_eq!(fast.arith().counts().total(), 0);
        assert_eq!(fast.arith().counts(), OpCounts::default());
        assert_eq!(fast.arith().cycles(), 0);
        assert_eq!(counted.arith().name(), "f64");
        assert_eq!(fast.arith().name(), "f64/uncounted");
        assert_eq!(fast.arith().iekf_label(), counted.arith().iekf_label());
    }

    #[test]
    fn variance_shrinks_with_updates() {
        let kf = simulate(F64Arith::default(), 5_000, 0.007, 5);
        let v = kf.variance();
        assert!(v[0] < 0.01 * 0.01);
        assert!(v[1] < 0.01 * 0.01);
        assert_eq!(kf.update_count(), 5_000);
    }
}
