//! The named scenario catalog: every workload the suite sweeps.
//!
//! Each entry is a [`ScenarioSpec`] — pure data, so callers can take
//! one and rebuild it fluently (shorter duration, different substrate,
//! extra faults) before lowering it. [`all`] returns the whole
//! catalog; [`by_name`] looks one up.
//!
//! The first two entries reproduce the paper's procedures exactly
//! (their lowered [`crate::scenario::ScenarioConfig`]s are pinned
//! bit-identical to `ScenarioConfig::static_test` / `dynamic_test` by
//! test); the rest are the coverage the paper never had — drive
//! styles, road surfaces, vehicle classes, channel faults and a
//! long-haul drift run.
//!
//! ```
//! use boresight::catalog;
//!
//! let mut brake = catalog::by_name("emergency-brake").expect("catalog entry");
//! brake.duration_s = 30.0; // full entries default to 300 s
//! assert!(brake.run().max_error_deg().is_finite());
//! ```

use crate::session::LinkFaultConfig;
use crate::spec::{ChannelSpec, EnvironmentSpec, ScenarioSpec, TrajectorySpec, TuningSpec};
use mathx::EulerAngles;
use vehicle::Segment;

/// The paper's static procedure: tilt-table observability sequence on
/// the laboratory bench, static tuning.
pub fn paper_static() -> ScenarioSpec {
    ScenarioSpec::named("paper-static")
        .with_truth(EulerAngles::from_degrees(2.0, -3.0, 1.5))
        .with_seed(101)
}

/// The paper's dynamic procedure: urban stop-and-go drive with
/// passenger-car vibration and dynamic tuning.
pub fn paper_dynamic() -> ScenarioSpec {
    ScenarioSpec::named("paper-dynamic")
        .with_truth(EulerAngles::from_degrees(3.0, -2.0, 2.5))
        .with_trajectory(TrajectorySpec::Urban)
        .with_environment(EnvironmentSpec::passenger_car())
        .with_tuning(TuningSpec::Dynamic)
        .with_seed(102)
}

/// Sustained highway cruise: long accelerations, gentle curves, lane
/// changes — weak excitation, the convergence-speed stress case.
pub fn highway_cruise() -> ScenarioSpec {
    ScenarioSpec::named("highway-cruise")
        .with_truth(EulerAngles::from_degrees(1.5, -2.0, 2.0))
        .with_trajectory(TrajectorySpec::Highway)
        .with_environment(EnvironmentSpec::passenger_car())
        .with_tuning(TuningSpec::Dynamic)
        .with_seed(103)
}

/// City stop-and-go: short pull-aways, tight turns and frequent full
/// stops — rich longitudinal excitation, little sustained speed.
pub fn city_stop_and_go() -> ScenarioSpec {
    ScenarioSpec::named("city-stop-and-go")
        .with_truth(EulerAngles::from_degrees(-2.0, 1.5, -1.0))
        .with_trajectory(TrajectorySpec::Segments {
            block: vec![
                Segment::idle(3.0),
                Segment::accelerate(4.0, 2.5),
                Segment::cruise(2.0),
                Segment::brake(3.0, 3.0),
                Segment::idle(2.0),
                Segment::accelerate(3.0, 2.0),
                Segment::turn(4.0, 0.35),
                Segment::brake(2.0, 2.5),
            ],
        })
        .with_environment(EnvironmentSpec::passenger_car())
        .with_tuning(TuningSpec::Dynamic)
        .with_seed(104)
}

/// Repeated emergency stops: hard ~0.7 g braking from speed — the
/// largest longitudinal specific forces and suspension pitch steps in
/// the catalog.
pub fn emergency_brake() -> ScenarioSpec {
    ScenarioSpec::named("emergency-brake")
        .with_truth(EulerAngles::from_degrees(2.5, 2.0, -2.0))
        .with_trajectory(TrajectorySpec::Segments {
            block: vec![
                Segment::accelerate(6.0, 2.5),
                Segment::cruise(2.0),
                Segment::brake(2.5, 7.0),
                Segment::idle(3.0),
            ],
        })
        .with_environment(EnvironmentSpec::passenger_car())
        .with_tuning(TuningSpec::Dynamic)
        .with_seed(105)
}

/// ISO-3888-style double lane change (slalom): alternating hard
/// lateral acceleration — the strongest roll/yaw excitation.
pub fn double_lane_change() -> ScenarioSpec {
    ScenarioSpec::named("double-lane-change")
        .with_truth(EulerAngles::from_degrees(-1.5, -1.0, 3.0))
        .with_trajectory(TrajectorySpec::Segments {
            block: vec![
                Segment::accelerate(6.0, 2.5),
                Segment::lane_change(3.0, 3.0),
                Segment::lane_change(3.0, 3.0),
                Segment::cruise(2.0),
            ],
        })
        .with_environment(EnvironmentSpec::passenger_car())
        .with_tuning(TuningSpec::Dynamic)
        .with_seed(106)
}

/// Urban drive over a badly surfaced road: 2.5x vibration RMS and
/// heavy mount flexure — the adaptive-retune stress case.
pub fn rough_road() -> ScenarioSpec {
    ScenarioSpec::named("rough-road")
        .with_truth(EulerAngles::from_degrees(2.0, 2.0, 2.0))
        .with_trajectory(TrajectorySpec::Urban)
        .with_environment(EnvironmentSpec::rough_road())
        .with_tuning(TuningSpec::Dynamic)
        .with_seed(107)
}

/// Highway transit on a heavy truck: ~3x passenger-car vibration with
/// a large idle component — the vehicle-class axis of the paper's
/// "depends on the vehicle" retuning story.
pub fn truck_transit() -> ScenarioSpec {
    ScenarioSpec::named("truck-transit")
        .with_truth(EulerAngles::from_degrees(1.0, -3.0, 1.5))
        .with_trajectory(TrajectorySpec::Highway)
        .with_environment(EnvironmentSpec::truck())
        .with_tuning(TuningSpec::Dynamic)
        .with_seed(108)
}

/// Mountain-road hill climb: sustained grades excite pitch
/// observability on the road — the tilt table's pitch steps without
/// the laboratory.
pub fn hill_climb() -> ScenarioSpec {
    ScenarioSpec::named("hill-climb")
        .with_truth(EulerAngles::from_degrees(-2.5, 2.5, -1.5))
        .with_trajectory(TrajectorySpec::Segments {
            block: vec![
                Segment::accelerate(5.0, 2.0),
                Segment::grade(10.0, 0.07),
                Segment::cruise(3.0),
                Segment::grade(10.0, -0.07),
                Segment::brake(4.0, 2.0),
                Segment::idle(2.0),
            ],
        })
        .with_environment(EnvironmentSpec::passenger_car())
        .with_tuning(TuningSpec::Dynamic)
        .with_seed(109)
}

/// CAN/UART fault storm: the urban drive through the full comms chain
/// with bit flips, byte drops and burst errors on both links — the
/// reconstruction stage's checksums must shed the damage.
pub fn can_fault_storm() -> ScenarioSpec {
    ScenarioSpec::named("can-fault-storm")
        .with_truth(EulerAngles::from_degrees(2.0, -1.5, 2.5))
        .with_trajectory(TrajectorySpec::Urban)
        .with_environment(EnvironmentSpec::passenger_car())
        .with_tuning(TuningSpec::Dynamic)
        .with_channel(ChannelSpec::Comms {
            faults: LinkFaultConfig {
                bit_flip_prob: 0.002,
                drop_prob: 0.002,
                burst_prob: 0.0005,
                burst_len: 6,
            },
        })
        .with_seed(110)
}

/// Long-haul drift: a full hour of highway driving — does the
/// estimate stay put over 12x the paper's run length?
pub fn long_haul_drift() -> ScenarioSpec {
    ScenarioSpec::named("long-haul-drift")
        .with_truth(EulerAngles::from_degrees(1.0, 1.0, -1.0))
        .with_trajectory(TrajectorySpec::Highway)
        .with_environment(EnvironmentSpec::passenger_car())
        .with_tuning(TuningSpec::Dynamic)
        .with_duration(3600.0)
        .with_trace_decimation(100)
        .with_seed(111)
}

/// The whole catalog, paper procedures first.
pub fn all() -> Vec<ScenarioSpec> {
    vec![
        paper_static(),
        paper_dynamic(),
        highway_cruise(),
        city_stop_and_go(),
        emergency_brake(),
        double_lane_change(),
        rough_road(),
        truck_transit(),
        hill_climb(),
        can_fault_storm(),
        long_haul_drift(),
    ]
}

/// Every catalog name, in [`all`] order.
pub fn names() -> Vec<String> {
    all().into_iter().map(|s| s.name).collect()
}

/// Looks up one scenario by its catalog name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_at_least_ten_unique_entries() {
        let names = names();
        assert!(names.len() >= 10, "only {} scenarios", names.len());
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate catalog names");
    }

    #[test]
    fn by_name_finds_every_entry() {
        for name in names() {
            let spec = by_name(&name).expect("entry resolves");
            assert_eq!(spec.name, name);
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = all().iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), all().len(), "catalog seeds must differ");
    }

    #[test]
    fn every_trajectory_lowers_and_covers_its_duration() {
        use vehicle::Trajectory as _;
        for spec in all() {
            let trajectory = spec.trajectory.lower(40.0);
            assert!(
                trajectory.duration_s() >= 40.0,
                "{} covers only {} s",
                spec.name,
                trajectory.duration_s()
            );
            for t in [0.0, 13.0, 39.0] {
                assert!(
                    trajectory.sample(t).specific_force_body().is_finite(),
                    "{} non-finite at t={t}",
                    spec.name
                );
            }
        }
    }
}
