//! Scenario fuzzing: a seeded random composer of [`ScenarioSpec`]s, a
//! proptest-style shrinker, and a lossless JSON codec for specs — the
//! generator side of the robustness campaign.
//!
//! * [`generate_spec`] draws one scenario from the full cross product
//!   the spec layer can express (trajectory blocks x environments x
//!   link-fault configs x tunings x substrates, including
//!   [`Substrate::Adaptive`]). The draw is a pure function of
//!   `(campaign_seed, case_index)`, so any case from any campaign
//!   replays from two integers.
//! * [`shrink`] greedily minimizes a failing spec while preserving the
//!   oracle verdict that made it fail: halve the duration, drop drive
//!   segments, calm the environment, zero fault rates one at a time,
//!   relax custom tunings, zero the ACC bias — repeated to a fixed
//!   point under an oracle-run budget. The result is the minimal spec
//!   the regression corpus stores.
//! * [`spec_to_json`] / [`spec_from_json`] round-trip a spec through
//!   the [`Json`] tree **losslessly** (finite `f64`s reproduce their
//!   exact bits — see [`crate::json`]), and
//!   [`CorpusEntry`] packages a shrunk failure (spec + expected
//!   verdict + provenance) as the `corpus/<name>/case.json` file
//!   `tests/corpus.rs` auto-discovers.

use crate::estimator::EstimatorConfig;
use crate::filter::FilterConfig;
use crate::json::Json;
use crate::monitor::MonitorConfig;
use crate::oracle::FusionOracle;
use crate::session::LinkFaultConfig;
use crate::spec::{
    ChannelSpec, EnvironmentSpec, ScenarioSpec, Substrate, TrajectorySpec, TuningSpec,
    VibrationClass,
};
use mathx::rng::seeded_rng;
use mathx::{EulerAngles, Vec2, Vec3};
use rand::rngs::StdRng;
use rand::RngExt;
use vehicle::Segment;

/// Draws the `case_index`-th scenario of a fuzz campaign. The same
/// `(campaign_seed, case_index)` pair always yields the same spec.
pub fn generate_spec(campaign_seed: u64, case_index: u64) -> ScenarioSpec {
    // Golden-ratio mix so neighbouring case indices land in unrelated
    // RNG streams even for small campaign seeds.
    let mut rng = seeded_rng(
        campaign_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case_index),
    );
    let truth = EulerAngles::from_degrees(
        rng.random_range(-4.0..4.0),
        rng.random_range(-4.0..4.0),
        rng.random_range(-4.0..4.0),
    );
    let acc_bias = Vec2::new([rng.random_range(-0.05..0.05), rng.random_range(-0.05..0.05)]);
    let spec = ScenarioSpec::named(format!("fuzz-{campaign_seed:016x}-{case_index:04}"))
        .with_truth(truth)
        .with_acc_bias(acc_bias)
        .with_duration(rng.random_range(16.0..40.0))
        .with_seed(rng.random::<u64>())
        .with_trajectory(random_trajectory(&mut rng))
        .with_environment(random_environment(&mut rng))
        .with_channel(random_channel(&mut rng))
        .with_tuning(random_tuning(&mut rng));
    let substrate = match rng.random_range(0u32..4) {
        0 => Substrate::F64,
        1 => Substrate::Softfloat,
        2 => Substrate::Q16_16,
        _ => Substrate::Adaptive,
    };
    spec.with_substrate(substrate)
}

fn random_trajectory(rng: &mut StdRng) -> TrajectorySpec {
    match rng.random_range(0u32..5) {
        0 => TrajectorySpec::TiltSequence {
            tilt_deg: rng.random_range(10.0..30.0),
        },
        1 => TrajectorySpec::Level,
        2 => TrajectorySpec::Urban,
        3 => TrajectorySpec::Highway,
        _ => {
            let len = rng.random_range(2u32..6) as usize;
            let block = (0..len).map(|_| random_segment(rng)).collect();
            TrajectorySpec::Segments { block }
        }
    }
}

fn random_segment(rng: &mut StdRng) -> Segment {
    match rng.random_range(0u32..7) {
        0 => Segment::Idle {
            duration_s: rng.random_range(1.0..6.0),
        },
        1 => Segment::Cruise {
            duration_s: rng.random_range(1.0..6.0),
        },
        2 => Segment::Accelerate {
            duration_s: rng.random_range(1.0..5.0),
            accel: rng.random_range(0.5..4.0),
        },
        3 => Segment::Brake {
            duration_s: rng.random_range(1.0..5.0),
            decel: rng.random_range(0.5..8.0),
        },
        4 => Segment::Turn {
            duration_s: rng.random_range(1.0..6.0),
            yaw_rate: rng.random_range(-0.6..0.6),
        },
        5 => Segment::LaneChange {
            duration_s: rng.random_range(1.0..4.0),
            peak_lateral_accel: rng.random_range(0.5..4.0),
        },
        _ => Segment::Grade {
            duration_s: rng.random_range(1.0..6.0),
            pitch_rad: rng.random_range(-0.1..0.1),
        },
    }
}

fn random_environment(rng: &mut StdRng) -> EnvironmentSpec {
    let mut env = match rng.random_range(0u32..4) {
        0 => EnvironmentSpec::laboratory(),
        1 => EnvironmentSpec::passenger_car(),
        2 => EnvironmentSpec::truck(),
        _ => EnvironmentSpec::rough_road(),
    };
    if rng.random_bool(0.3) {
        env.road_roughness = rng.random_range(0.5..3.0);
    }
    if rng.random_bool(0.3) {
        env.differential_vibration = rng.random_range(0.0..0.4);
    }
    env
}

fn random_channel(rng: &mut StdRng) -> ChannelSpec {
    if rng.random_bool(0.45) {
        return ChannelSpec::Ideal;
    }
    // Log-uniform fault rates from "barely there" up to storm level.
    let mut rate = |hi_exp: f64| -> f64 {
        if rng.random_bool(0.25) {
            0.0
        } else {
            10f64.powf(rng.random_range(-5.0..hi_exp))
        }
    };
    ChannelSpec::Comms {
        faults: LinkFaultConfig {
            bit_flip_prob: rate(-1.3),
            drop_prob: rate(-1.3),
            burst_prob: rate(-2.0),
            burst_len: rng.random_range(2u32..10) as usize,
        },
    }
}

fn random_tuning(rng: &mut StdRng) -> TuningSpec {
    match rng.random_range(0u32..4) {
        0 => TuningSpec::Static,
        1 => TuningSpec::Dynamic,
        2 => {
            // A tight innovation gate — the classic livelock shape.
            let mut filter = FilterConfig::paper_dynamic();
            filter.gate_sigmas = rng.random_range(0.05..2.0);
            TuningSpec::Custom(EstimatorConfig {
                filter,
                monitor: rng.random_bool(0.5).then(MonitorConfig::default),
                lever_arm: Vec3::zeros(),
            })
        }
        _ => {
            // An aggressive monitor — scale hard, re-fire fast.
            let monitor = MonitorConfig {
                window: rng.random_range(20usize..80),
                holdoff: rng.random_range(5usize..40),
                scale_up: rng.random_range(1.5..4.0),
                scale_down: rng.random_range(0.3..1.0),
                target_exceed_rate: rng.random_range(0.0005..0.01),
                ..MonitorConfig::default()
            };
            TuningSpec::Custom(EstimatorConfig {
                filter: FilterConfig::paper_dynamic(),
                monitor: Some(monitor),
                lever_arm: Vec3::zeros(),
            })
        }
    }
}

/// The result of shrinking a failing spec.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimal spec still tripping the original verdict kind.
    pub spec: ScenarioSpec,
    /// Accepted shrink steps.
    pub steps: usize,
    /// Oracle runs spent (each candidate costs one).
    pub attempts: usize,
}

/// Greedily minimizes `spec` while the oracle keeps reporting a
/// verdict of kind `kind`, spending at most `max_attempts` oracle
/// runs. Each round proposes, in order: halving the duration, dropping
/// one drive segment, flattening the trajectory, calming the
/// environment, zeroing individual link-fault rates, removing the
/// comms chain, relaxing a custom tuning to a paper preset, and
/// zeroing the ACC bias; rounds repeat until none of them reproduces
/// the verdict (a fixed point) or the budget runs out.
pub fn shrink(
    spec: &ScenarioSpec,
    kind: &str,
    oracle: &FusionOracle,
    max_attempts: usize,
) -> ShrinkOutcome {
    let mut best = spec.clone();
    let mut steps = 0usize;
    let mut attempts = 0usize;
    loop {
        let mut progressed = false;
        for candidate in shrink_candidates(&best) {
            if attempts >= max_attempts {
                return ShrinkOutcome {
                    spec: best,
                    steps,
                    attempts,
                };
            }
            attempts += 1;
            if oracle.check_spec(&candidate).has_kind(kind) {
                best = candidate;
                steps += 1;
                progressed = true;
                break; // restart the transformation ladder on the smaller spec
            }
        }
        if !progressed {
            return ShrinkOutcome {
                spec: best,
                steps,
                attempts,
            };
        }
    }
}

/// The ordered shrink proposals for one round (each a single
/// transformation of `spec`). Proposals that would not change the
/// spec are skipped.
pub fn shrink_candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    // 1. Halve the duration (floor 8 s — enough for convergence).
    if spec.duration_s > 8.0 {
        out.push(spec.clone().with_duration((spec.duration_s / 2.0).max(8.0)));
    }
    // 2. Drop one segment from an explicit block.
    if let TrajectorySpec::Segments { block } = &spec.trajectory {
        if block.len() > 1 {
            for drop in 0..block.len() {
                let mut smaller = block.clone();
                smaller.remove(drop);
                out.push(
                    spec.clone()
                        .with_trajectory(TrajectorySpec::Segments { block: smaller }),
                );
            }
        }
    }
    // 3. Flatten the trajectory entirely.
    if !matches!(spec.trajectory, TrajectorySpec::Level) {
        out.push(spec.clone().with_trajectory(TrajectorySpec::Level));
    }
    // 4. Calm the environment, one knob at a time.
    if spec.environment.road_roughness != 1.0 {
        let mut env = spec.environment;
        env.road_roughness = 1.0;
        out.push(spec.clone().with_environment(env));
    }
    if spec.environment.differential_vibration != 0.0 {
        let mut env = spec.environment;
        env.differential_vibration = 0.0;
        out.push(spec.clone().with_environment(env));
    }
    if !matches!(spec.environment.vibration, VibrationClass::None) {
        let mut env = spec.environment;
        env.vibration = VibrationClass::None;
        out.push(spec.clone().with_environment(env));
    }
    // 5. Zero link-fault rates individually, then drop the chain.
    if let ChannelSpec::Comms { faults } = spec.channel {
        for zeroed in [
            LinkFaultConfig {
                bit_flip_prob: 0.0,
                ..faults
            },
            LinkFaultConfig {
                drop_prob: 0.0,
                ..faults
            },
            LinkFaultConfig {
                burst_prob: 0.0,
                ..faults
            },
        ] {
            if zeroed != faults {
                out.push(
                    spec.clone()
                        .with_channel(ChannelSpec::Comms { faults: zeroed }),
                );
            }
        }
        out.push(spec.clone().with_channel(ChannelSpec::Ideal));
    }
    // 6. Relax a custom tuning to the paper presets.
    if matches!(spec.tuning, TuningSpec::Custom(_)) {
        out.push(spec.clone().with_tuning(TuningSpec::Dynamic));
        out.push(spec.clone().with_tuning(TuningSpec::Static));
    }
    // 7. Zero the injected ACC bias.
    if spec.acc_bias != Vec2::zeros() {
        out.push(spec.clone().with_acc_bias(Vec2::zeros()));
    }
    out
}

/// A shrunk fuzz failure packaged for the regression corpus: the
/// minimal spec, the oracle verdict it trips, and the campaign
/// coordinates it was found at.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Campaign seed the case was drawn from.
    pub campaign_seed: u64,
    /// Case index within the campaign.
    pub case_index: u64,
    /// The [`crate::oracle::OracleVerdict::kind`] the spec trips.
    pub verdict: String,
    /// The (shrunk) failing spec.
    pub spec: ScenarioSpec,
}

/// Corpus file format version.
pub const CORPUS_FORMAT: u64 = 1;

impl CorpusEntry {
    /// Serializes the entry as the `case.json` document.
    pub fn to_json(&self) -> Result<Json, String> {
        Ok(Json::Obj(vec![
            ("format".into(), Json::Int(CORPUS_FORMAT)),
            ("campaign_seed".into(), Json::Int(self.campaign_seed)),
            ("case_index".into(), Json::Int(self.case_index)),
            ("verdict".into(), Json::Str(self.verdict.clone())),
            ("spec".into(), spec_to_json(&self.spec)?),
        ]))
    }

    /// Parses a `case.json` document.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let format = lookup_u64(doc, "format")?;
        if format != CORPUS_FORMAT {
            return Err(format!("unsupported corpus format {format}"));
        }
        Ok(Self {
            campaign_seed: lookup_u64(doc, "campaign_seed")?,
            case_index: lookup_u64(doc, "case_index")?,
            verdict: lookup_str(doc, "verdict")?.to_string(),
            spec: spec_from_json(doc.lookup("spec").ok_or("missing spec")?)?,
        })
    }
}

/// Serializes a [`ScenarioSpec`] to a [`Json`] tree. Every scalar
/// survives bit-exactly (see [`crate::json`]). Fails only for
/// [`VibrationClass::Custom`], which the generator never produces.
pub fn spec_to_json(spec: &ScenarioSpec) -> Result<Json, String> {
    let trajectory = match &spec.trajectory {
        TrajectorySpec::TiltSequence { tilt_deg } => Json::Obj(vec![
            ("type".into(), Json::Str("tilt-sequence".into())),
            ("tilt_deg".into(), Json::Num(*tilt_deg)),
        ]),
        TrajectorySpec::Level => Json::Obj(vec![("type".into(), Json::Str("level".into()))]),
        TrajectorySpec::Urban => Json::Obj(vec![("type".into(), Json::Str("urban".into()))]),
        TrajectorySpec::Highway => Json::Obj(vec![("type".into(), Json::Str("highway".into()))]),
        TrajectorySpec::Segments { block } => Json::Obj(vec![
            ("type".into(), Json::Str("segments".into())),
            (
                "block".into(),
                Json::Arr(block.iter().map(segment_to_json).collect()),
            ),
        ]),
    };
    let vibration = match spec.environment.vibration {
        VibrationClass::None => "none",
        VibrationClass::PassengerCar => "passenger-car",
        VibrationClass::Truck => "truck",
        VibrationClass::Custom(_) => {
            return Err("custom vibration models are not serializable".into())
        }
    };
    let channel = match spec.channel {
        ChannelSpec::Ideal => Json::Obj(vec![("type".into(), Json::Str("ideal".into()))]),
        ChannelSpec::Comms { faults } => Json::Obj(vec![
            ("type".into(), Json::Str("comms".into())),
            ("bit_flip_prob".into(), Json::Num(faults.bit_flip_prob)),
            ("drop_prob".into(), Json::Num(faults.drop_prob)),
            ("burst_prob".into(), Json::Num(faults.burst_prob)),
            ("burst_len".into(), Json::Int(faults.burst_len as u64)),
        ]),
    };
    let tuning = match &spec.tuning {
        TuningSpec::Static => Json::Obj(vec![("type".into(), Json::Str("static".into()))]),
        TuningSpec::Dynamic => Json::Obj(vec![("type".into(), Json::Str("dynamic".into()))]),
        TuningSpec::Custom(cfg) => {
            let mut fields = vec![
                ("type".into(), Json::Str("custom".into())),
                ("filter".into(), filter_to_json(&cfg.filter)),
                (
                    "lever_arm".into(),
                    Json::Arr(vec![
                        Json::Num(cfg.lever_arm[0]),
                        Json::Num(cfg.lever_arm[1]),
                        Json::Num(cfg.lever_arm[2]),
                    ]),
                ),
            ];
            if let Some(monitor) = &cfg.monitor {
                fields.push(("monitor".into(), monitor_to_json(monitor)));
            }
            Json::Obj(fields)
        }
    };
    Ok(Json::Obj(vec![
        ("name".into(), Json::Str(spec.name.clone())),
        (
            "truth_rad".into(),
            Json::Arr(vec![
                Json::Num(spec.truth.roll),
                Json::Num(spec.truth.pitch),
                Json::Num(spec.truth.yaw),
            ]),
        ),
        (
            "acc_bias".into(),
            Json::Arr(vec![
                Json::Num(spec.acc_bias[0]),
                Json::Num(spec.acc_bias[1]),
            ]),
        ),
        ("duration_s".into(), Json::Num(spec.duration_s)),
        ("seed".into(), Json::Int(spec.seed)),
        (
            "trace_decimation".into(),
            Json::Int(spec.trace_decimation as u64),
        ),
        ("trajectory".into(), trajectory),
        (
            "environment".into(),
            Json::Obj(vec![
                ("vibration".into(), Json::Str(vibration.into())),
                (
                    "road_roughness".into(),
                    Json::Num(spec.environment.road_roughness),
                ),
                (
                    "differential_vibration".into(),
                    Json::Num(spec.environment.differential_vibration),
                ),
            ]),
        ),
        ("channel".into(), channel),
        ("tuning".into(), tuning),
        ("substrate".into(), Json::Str(spec.substrate.label().into())),
    ]))
}

fn segment_to_json(segment: &Segment) -> Json {
    let (kind, duration_s, param): (&str, f64, Option<(&str, f64)>) = match *segment {
        Segment::Idle { duration_s } => ("idle", duration_s, None),
        Segment::Cruise { duration_s } => ("cruise", duration_s, None),
        Segment::Accelerate { duration_s, accel } => {
            ("accelerate", duration_s, Some(("accel", accel)))
        }
        Segment::Brake { duration_s, decel } => ("brake", duration_s, Some(("decel", decel))),
        Segment::Turn {
            duration_s,
            yaw_rate,
        } => ("turn", duration_s, Some(("yaw_rate", yaw_rate))),
        Segment::LaneChange {
            duration_s,
            peak_lateral_accel,
        } => (
            "lane-change",
            duration_s,
            Some(("peak_lateral_accel", peak_lateral_accel)),
        ),
        Segment::Grade {
            duration_s,
            pitch_rad,
        } => ("grade", duration_s, Some(("pitch_rad", pitch_rad))),
    };
    let mut fields = vec![
        ("type".into(), Json::Str(kind.into())),
        ("duration_s".into(), Json::Num(duration_s)),
    ];
    if let Some((key, value)) = param {
        fields.push((key.into(), Json::Num(value)));
    }
    Json::Obj(fields)
}

fn filter_to_json(filter: &FilterConfig) -> Json {
    Json::Obj(vec![
        (
            "initial_angle_sigma".into(),
            Json::Num(filter.initial_angle_sigma),
        ),
        (
            "initial_bias_sigma".into(),
            Json::Num(filter.initial_bias_sigma),
        ),
        (
            "angle_process_density".into(),
            Json::Num(filter.angle_process_density),
        ),
        (
            "bias_process_density".into(),
            Json::Num(filter.bias_process_density),
        ),
        (
            "measurement_sigma".into(),
            Json::Num(filter.measurement_sigma),
        ),
        (
            "estimate_bias".into(),
            Json::Int(u64::from(filter.estimate_bias)),
        ),
        ("gate_sigmas".into(), Json::Num(filter.gate_sigmas)),
        ("angle_limit".into(), Json::Num(filter.angle_limit)),
        ("bias_limit".into(), Json::Num(filter.bias_limit)),
        (
            "iekf_iterations".into(),
            Json::Int(filter.iekf_iterations as u64),
        ),
    ])
}

fn monitor_to_json(monitor: &MonitorConfig) -> Json {
    Json::Obj(vec![
        ("window".into(), Json::Int(monitor.window as u64)),
        (
            "target_exceed_rate".into(),
            Json::Num(monitor.target_exceed_rate),
        ),
        ("scale_up".into(), Json::Num(monitor.scale_up)),
        ("scale_down".into(), Json::Num(monitor.scale_down)),
        ("sigma_min".into(), Json::Num(monitor.sigma_min)),
        ("sigma_max".into(), Json::Num(monitor.sigma_max)),
        ("holdoff".into(), Json::Int(monitor.holdoff as u64)),
    ])
}

/// Parses a spec serialized by [`spec_to_json`].
pub fn spec_from_json(doc: &Json) -> Result<ScenarioSpec, String> {
    let truth = match doc.lookup("truth_rad") {
        Some(Json::Arr(items)) if items.len() == 3 => EulerAngles::new(
            items[0].as_f64().ok_or("truth_rad[0]")?,
            items[1].as_f64().ok_or("truth_rad[1]")?,
            items[2].as_f64().ok_or("truth_rad[2]")?,
        ),
        _ => return Err("missing truth_rad[3]".into()),
    };
    let acc_bias = match doc.lookup("acc_bias") {
        Some(Json::Arr(items)) if items.len() == 2 => Vec2::new([
            items[0].as_f64().ok_or("acc_bias[0]")?,
            items[1].as_f64().ok_or("acc_bias[1]")?,
        ]),
        _ => return Err("missing acc_bias[2]".into()),
    };
    let trajectory_doc = doc.lookup("trajectory").ok_or("missing trajectory")?;
    let trajectory = match lookup_str(trajectory_doc, "type")? {
        "tilt-sequence" => TrajectorySpec::TiltSequence {
            tilt_deg: lookup_f64(trajectory_doc, "tilt_deg")?,
        },
        "level" => TrajectorySpec::Level,
        "urban" => TrajectorySpec::Urban,
        "highway" => TrajectorySpec::Highway,
        "segments" => {
            let Some(Json::Arr(items)) = trajectory_doc.lookup("block") else {
                return Err("missing segments block".into());
            };
            let block = items
                .iter()
                .map(segment_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            TrajectorySpec::Segments { block }
        }
        other => return Err(format!("unknown trajectory type {other:?}")),
    };
    let env_doc = doc.lookup("environment").ok_or("missing environment")?;
    let environment = EnvironmentSpec {
        vibration: match lookup_str(env_doc, "vibration")? {
            "none" => VibrationClass::None,
            "passenger-car" => VibrationClass::PassengerCar,
            "truck" => VibrationClass::Truck,
            other => return Err(format!("unknown vibration class {other:?}")),
        },
        road_roughness: lookup_f64(env_doc, "road_roughness")?,
        differential_vibration: lookup_f64(env_doc, "differential_vibration")?,
    };
    let channel_doc = doc.lookup("channel").ok_or("missing channel")?;
    let channel = match lookup_str(channel_doc, "type")? {
        "ideal" => ChannelSpec::Ideal,
        "comms" => ChannelSpec::Comms {
            faults: LinkFaultConfig {
                bit_flip_prob: lookup_f64(channel_doc, "bit_flip_prob")?,
                drop_prob: lookup_f64(channel_doc, "drop_prob")?,
                burst_prob: lookup_f64(channel_doc, "burst_prob")?,
                burst_len: lookup_u64(channel_doc, "burst_len")? as usize,
            },
        },
        other => return Err(format!("unknown channel type {other:?}")),
    };
    let tuning_doc = doc.lookup("tuning").ok_or("missing tuning")?;
    let tuning = match lookup_str(tuning_doc, "type")? {
        "static" => TuningSpec::Static,
        "dynamic" => TuningSpec::Dynamic,
        "custom" => {
            let filter_doc = tuning_doc.lookup("filter").ok_or("missing filter")?;
            let filter = FilterConfig {
                initial_angle_sigma: lookup_f64(filter_doc, "initial_angle_sigma")?,
                initial_bias_sigma: lookup_f64(filter_doc, "initial_bias_sigma")?,
                angle_process_density: lookup_f64(filter_doc, "angle_process_density")?,
                bias_process_density: lookup_f64(filter_doc, "bias_process_density")?,
                measurement_sigma: lookup_f64(filter_doc, "measurement_sigma")?,
                estimate_bias: lookup_u64(filter_doc, "estimate_bias")? != 0,
                gate_sigmas: lookup_f64(filter_doc, "gate_sigmas")?,
                angle_limit: lookup_f64(filter_doc, "angle_limit")?,
                bias_limit: lookup_f64(filter_doc, "bias_limit")?,
                iekf_iterations: lookup_u64(filter_doc, "iekf_iterations")? as usize,
            };
            let monitor = match tuning_doc.lookup("monitor") {
                Some(monitor_doc) => Some(MonitorConfig {
                    window: lookup_u64(monitor_doc, "window")? as usize,
                    target_exceed_rate: lookup_f64(monitor_doc, "target_exceed_rate")?,
                    scale_up: lookup_f64(monitor_doc, "scale_up")?,
                    scale_down: lookup_f64(monitor_doc, "scale_down")?,
                    sigma_min: lookup_f64(monitor_doc, "sigma_min")?,
                    sigma_max: lookup_f64(monitor_doc, "sigma_max")?,
                    holdoff: lookup_u64(monitor_doc, "holdoff")? as usize,
                }),
                None => None,
            };
            let lever_arm = match tuning_doc.lookup("lever_arm") {
                Some(Json::Arr(items)) if items.len() == 3 => Vec3::new([
                    items[0].as_f64().ok_or("lever_arm[0]")?,
                    items[1].as_f64().ok_or("lever_arm[1]")?,
                    items[2].as_f64().ok_or("lever_arm[2]")?,
                ]),
                _ => return Err("missing lever_arm[3]".into()),
            };
            TuningSpec::Custom(EstimatorConfig {
                filter,
                monitor,
                lever_arm,
            })
        }
        other => return Err(format!("unknown tuning type {other:?}")),
    };
    let substrate_label = lookup_str(doc, "substrate")?;
    let substrate = Substrate::parse(substrate_label)
        .ok_or_else(|| format!("unknown substrate {substrate_label:?}"))?;
    Ok(ScenarioSpec::named(lookup_str(doc, "name")?)
        .with_truth(truth)
        .with_acc_bias(acc_bias)
        .with_duration(lookup_f64(doc, "duration_s")?)
        .with_seed(lookup_u64(doc, "seed")?)
        .with_trace_decimation(lookup_u64(doc, "trace_decimation")? as usize)
        .with_trajectory(trajectory)
        .with_environment(environment)
        .with_channel(channel)
        .with_tuning(tuning)
        .with_substrate(substrate))
}

fn segment_from_json(doc: &Json) -> Result<Segment, String> {
    let duration_s = lookup_f64(doc, "duration_s")?;
    Ok(match lookup_str(doc, "type")? {
        "idle" => Segment::Idle { duration_s },
        "cruise" => Segment::Cruise { duration_s },
        "accelerate" => Segment::Accelerate {
            duration_s,
            accel: lookup_f64(doc, "accel")?,
        },
        "brake" => Segment::Brake {
            duration_s,
            decel: lookup_f64(doc, "decel")?,
        },
        "turn" => Segment::Turn {
            duration_s,
            yaw_rate: lookup_f64(doc, "yaw_rate")?,
        },
        "lane-change" => Segment::LaneChange {
            duration_s,
            peak_lateral_accel: lookup_f64(doc, "peak_lateral_accel")?,
        },
        "grade" => Segment::Grade {
            duration_s,
            pitch_rad: lookup_f64(doc, "pitch_rad")?,
        },
        other => return Err(format!("unknown segment type {other:?}")),
    })
}

fn lookup_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.lookup(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number {key:?}"))
}

fn lookup_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.lookup(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer {key:?}"))
}

fn lookup_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.lookup(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical(spec: &ScenarioSpec) -> String {
        spec_to_json(spec).expect("serialize").render_to_string()
    }

    #[test]
    fn generation_is_a_pure_function_of_seed_and_index() {
        for case in 0..8 {
            let a = generate_spec(0xFACE, case);
            let b = generate_spec(0xFACE, case);
            assert_eq!(canonical(&a), canonical(&b));
        }
        assert_ne!(
            canonical(&generate_spec(1, 0)),
            canonical(&generate_spec(2, 0))
        );
        assert_ne!(
            canonical(&generate_spec(1, 0)),
            canonical(&generate_spec(1, 1))
        );
    }

    #[test]
    fn specs_round_trip_through_json_losslessly() {
        for case in 0..32 {
            let spec = generate_spec(0xC0FFEE, case);
            let text = canonical(&spec);
            let parsed = Json::parse(&text).expect("parse json");
            let back = spec_from_json(&parsed).expect("decode spec");
            assert_eq!(canonical(&back), text, "case {case}");
        }
    }

    #[test]
    fn corpus_entries_round_trip() {
        let entry = CorpusEntry {
            campaign_seed: 7,
            case_index: 3,
            verdict: "gate-livelock".into(),
            spec: generate_spec(7, 3),
        };
        let doc = entry.to_json().expect("serialize");
        let back = CorpusEntry::from_json(&doc).expect("decode");
        assert_eq!(back.campaign_seed, 7);
        assert_eq!(back.case_index, 3);
        assert_eq!(back.verdict, "gate-livelock");
        assert_eq!(canonical(&back.spec), canonical(&entry.spec));
    }

    #[test]
    fn the_generator_covers_every_axis() {
        // Over a modest campaign, every substrate, both channel kinds
        // and at least one custom tuning must appear — the cross
        // product is actually being explored.
        let mut substrates = std::collections::HashSet::new();
        let mut comms = 0;
        let mut ideal = 0;
        let mut custom_tunings = 0;
        for case in 0..64 {
            let spec = generate_spec(0xBEEF, case);
            substrates.insert(spec.substrate.label());
            match spec.channel {
                ChannelSpec::Ideal => ideal += 1,
                ChannelSpec::Comms { .. } => comms += 1,
            }
            if matches!(spec.tuning, TuningSpec::Custom(_)) {
                custom_tunings += 1;
            }
        }
        assert_eq!(substrates.len(), 4, "{substrates:?}");
        assert!(comms > 8 && ideal > 8, "comms {comms} ideal {ideal}");
        assert!(custom_tunings > 4);
    }

    #[test]
    fn shrink_candidates_only_propose_changed_specs() {
        let minimal = ScenarioSpec::named("already-minimal")
            .with_duration(8.0)
            .with_trajectory(TrajectorySpec::Level)
            .with_environment(EnvironmentSpec::laboratory())
            .with_acc_bias(Vec2::zeros());
        // Level trajectory, lab environment, ideal channel, static
        // tuning, floor duration, zero bias: nothing left to try.
        assert!(shrink_candidates(&minimal).is_empty());
        let storm = generate_spec(0xD00D, 0);
        assert!(!shrink_candidates(&storm).is_empty());
    }
}
