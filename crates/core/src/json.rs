//! A minimal JSON tree — just enough structure for the bench reports
//! and the fuzz corpus (no external serializer in the offline build).
//!
//! Grew up in the bench crate as the report writer; promoted here so
//! the core fuzz layer can serialize [`crate::spec::ScenarioSpec`]s to
//! corpus files ([`crate::fuzz::spec_to_json`]) and the test harness
//! can parse them back without depending on the bench binaries.
//!
//! Finite `f64`s round-trip **bit-exactly**: rendering uses Rust's
//! shortest-round-trip float formatting and parsing uses
//! `str::parse::<f64>`, which together reproduce the original bits —
//! the property the deterministic-replay corpus relies on.

/// A JSON value.
#[derive(Debug)]
pub enum Json {
    /// A floating-point number (non-finite values serialize as null).
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A string.
    Str(String),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    /// Renders the document to its serialized text.
    pub fn render_to_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    /// Renders into a caller-owned buffer.
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(x) => out.push_str(&format!("{x}")),
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render(out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
        }
    }

    /// Parses a JSON document (the subset [`Json::render`] emits:
    /// objects, arrays, strings with `\uXXXX`/standard escapes,
    /// numbers, `true`/`false`/`null`; `null` and booleans parse as
    /// non-finite / 0-or-1 [`Json::Num`]s). Returns `None` on
    /// malformed input.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    /// Walks a `.`-separated path of object keys and array indices
    /// (e.g. `"matrix.speedup"` or `"substrates.1.samples_per_sec"`).
    pub fn lookup(&self, path: &str) -> Option<&Json> {
        let mut node = self;
        for part in path.split('.') {
            node = match node {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == part).map(|(_, v)| v)?,
                Json::Arr(items) => items.get(part.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(node)
    }

    /// The numeric value of this node ([`Json::Num`] or [`Json::Int`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The string value of this node, if it is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value of this node, if it is a [`Json::Int`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// Finds the element of an array field whose `label` equals
    /// `label` — the shape every per-substrate bench report uses.
    pub fn find_labeled(&self, array: &str, label: &str) -> Option<&Json> {
        let Json::Arr(items) = self.lookup(array)? else {
            return None;
        };
        items
            .iter()
            .find(|item| matches!(item.lookup("label"), Some(Json::Str(s)) if s == label))
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let Json::Str(key) = parse_value(b, pos)? else {
                    return None;
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return None;
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match *b.get(*pos)? {
                    b'"' => {
                        *pos += 1;
                        return Some(Json::Str(out));
                    }
                    b'\\' => {
                        *pos += 1;
                        match *b.get(*pos)? {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = b.get(*pos + 1..*pos + 5)?;
                                let code =
                                    u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                                out.push(char::from_u32(code)?);
                                *pos += 4;
                            }
                            _ => return None,
                        }
                        *pos += 1;
                    }
                    _ => {
                        // Advance over one UTF-8 scalar.
                        let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                        let ch = rest.chars().next()?;
                        out.push(ch);
                        *pos += ch.len_utf8();
                    }
                }
            }
        }
        b't' => {
            if b.get(*pos..*pos + 4)? == b"true" {
                *pos += 4;
                Some(Json::Num(1.0))
            } else {
                None
            }
        }
        b'f' => {
            if b.get(*pos..*pos + 5)? == b"false" {
                *pos += 5;
                Some(Json::Num(0.0))
            } else {
                None
            }
        }
        b'n' => {
            if b.get(*pos..*pos + 4)? == b"null" {
                *pos += 4;
                Some(Json::Num(f64::NAN))
            } else {
                None
            }
        }
        _ => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).ok()?;
            if !text.contains(['.', 'e', 'E']) {
                if let Ok(i) = text.parse::<u64>() {
                    return Some(Json::Int(i));
                }
            }
            text.parse::<f64>().ok().map(Json::Num)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_through_parse() {
        let doc = Json::Obj(vec![
            ("bench".into(), Json::Str("x \"quoted\"\n".into())),
            ("n".into(), Json::Int(42)),
            ("v".into(), Json::Num(1.5e-3)),
            ("bad".into(), Json::Num(f64::NAN)),
            (
                "rows".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("label".into(), Json::Str("softfloat".into())),
                        ("samples_per_sec".into(), Json::Num(26236.13)),
                    ]),
                    Json::Obj(vec![
                        ("label".into(), Json::Str("f64".into())),
                        ("samples_per_sec".into(), Json::Num(172268.3)),
                    ]),
                ]),
            ),
        ]);
        let text = doc.render_to_string();
        let parsed = Json::parse(&text).expect("parse");
        assert_eq!(parsed.lookup("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(parsed.lookup("n").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.lookup("v").unwrap().as_f64(), Some(1.5e-3));
        assert!(parsed.lookup("bad").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(
            parsed
                .lookup("rows.1.samples_per_sec")
                .unwrap()
                .as_f64()
                .unwrap(),
            172268.3
        );
        let soft = parsed.find_labeled("rows", "softfloat").expect("labeled");
        assert_eq!(
            soft.lookup("samples_per_sec").unwrap().as_f64().unwrap(),
            26236.13
        );
        assert_eq!(
            parsed.lookup("bench").unwrap().as_str(),
            Some("x \"quoted\"\n")
        );
        assert!(Json::parse("{\"unterminated\": ").is_none());
        assert!(Json::parse("[1, 2] trailing").is_none());
    }

    #[test]
    fn finite_floats_roundtrip_bit_exactly() {
        // The corpus format stores spec scalars as JSON numbers; the
        // shortest-round-trip renderer must reproduce the exact bits.
        for &x in &[
            0.1,
            -3.0e-17,
            std::f64::consts::PI,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            2.225073858507201e-308, // subnormal-boundary stress value
            1.7976931348623157e308,
        ] {
            let text = Json::Num(x).render_to_string();
            let back = Json::parse(&text).expect("parse").as_f64().expect("num");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }
}
