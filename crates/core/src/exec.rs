//! A vendored work-stealing-lite executor for the sweep and fleet
//! layers.
//!
//! Two tiers live here. [`map_parallel`] is the one-shot API the
//! scenario × substrate sweeps use: every cell owns its RNG,
//! trajectory and session, so a scoped pool of threads self-scheduling
//! over a shared work list through one atomic cursor keeps every core
//! busy even when cell costs differ by orders of magnitude (the
//! Softfloat column costs ~50x the native one). Results come back in
//! input order regardless of completion order, so parallel callers
//! observe exactly what the serial loop would have produced — the
//! property [`crate::spec::ScenarioSuite::run_parallel`] pins with a
//! bit-identity test.
//!
//! [`Pool`] is the persistent tier underneath: a long-lived set of
//! parked worker threads woken per call through a condvar-guarded
//! epoch counter. One [`Pool::run_epoch`] call publishes a borrowed
//! closure to every worker, runs the caller as worker `0`, and
//! barriers until the last worker finishes — **no thread is spawned
//! and no heap allocation is performed per call**, which is what lets
//! the fleet server's 5 ms epoch loop run on it without paying thread
//! spawn/join or scheduling-allocation costs every epoch
//! (`tests/alloc_audit.rs` pins the zero-allocation property).
//! [`map_parallel`] is now a thin one-shot wrapper: build a pool, run
//! one cursor-scheduled map epoch, drop the pool.
//!
//! ```
//! use boresight::exec;
//!
//! let squares = exec::map_parallel((0..16).collect(), 4, |x: i32| x * x);
//! assert_eq!(squares[5], 25);
//!
//! // The persistent tier: one pool, many epochs, zero spawns after
//! // construction.
//! let pool = exec::Pool::new(4);
//! let sum = std::sync::atomic::AtomicUsize::new(0);
//! pool.run_epoch(|worker| {
//!     sum.fetch_add(worker, std::sync::atomic::Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 0 + 1 + 2 + 3);
//! ```

use std::cell::UnsafeCell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The worker count meaning "one per available core".
///
/// [`map_parallel`] and [`Pool::new`] treat `0` as
/// [`default_workers`], so bench binaries can pass a plain
/// `--workers 0` through.
pub const AUTO_WORKERS: usize = 0;

/// The machine's available parallelism (falls back to 1 when the
/// platform cannot say).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a requested worker count: `0` means
/// [`default_workers`], anything else is taken as-is.
pub fn resolve_workers(requested: usize) -> usize {
    if requested == AUTO_WORKERS {
        default_workers()
    } else {
        requested
    }
}

/// Threads spawned by every [`Pool`] built so far, process-wide.
///
/// Warm-up audits read this before and after a measurement window to
/// prove a persistent pool serviced it without spawning — the property
/// the fleet's epoch loop depends on. The counter only ever grows.
pub fn threads_spawned() -> u64 {
    POOL_THREADS_SPAWNED.load(Ordering::Relaxed)
}

static POOL_THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// An `UnsafeCell` the executor layer may share across threads.
///
/// Soundness is the *caller's* obligation and always rests on one of
/// two disjointness arguments: an atomic cursor or claim flag hands
/// each cell to exactly one worker per epoch (the map / shard-claim
/// pattern), or the cell is indexed by worker id so no two workers
/// ever touch the same one (the per-worker-scratch pattern).
pub(crate) struct SyncCell<T>(UnsafeCell<T>);

// SAFETY: `SyncCell` only adds the `Sync` bound; every access goes
// through `get()` under one of the disjointness protocols above, and
// `T: Send` is required because those protocols move `T`s (or `&mut
// T`s) across worker threads.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    pub(crate) fn new(value: T) -> Self {
        Self(UnsafeCell::new(value))
    }

    /// The raw slot. Callers must uphold the module's disjointness
    /// protocol before turning this into a reference.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self) -> &mut T {
        // SAFETY: forwarded to the caller (see the type docs).
        unsafe { &mut *self.0.get() }
    }

    /// Exclusive access through an exclusive handle — plain safe code.
    pub(crate) fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }

    pub(crate) fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// A type-erased borrowed job: the closure's address plus a
/// monomorphized trampoline. Valid only while the publishing
/// `run_epoch` frame is alive — which the completion barrier
/// guarantees.
#[derive(Clone, Copy)]
struct RawJob {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointer is only dereferenced through `call` between job
// publication and the completion barrier, while the referent (a
// `Sync` closure borrowed by `run_epoch`) is alive and shareable.
unsafe impl Send for RawJob {}

struct JobState {
    /// Bumped once per published job; workers use it to tell a fresh
    /// job from a spurious wake-up.
    epoch: u64,
    job: Option<RawJob>,
    /// Workers still running the current job.
    remaining: usize,
    /// A worker's job panicked; re-raised on the caller after the
    /// barrier so the borrow discipline survives unwinding.
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<JobState>,
    /// Workers park here between epochs.
    start: Condvar,
    /// The caller parks here until `remaining` hits zero.
    done: Condvar,
}

/// A persistent worker pool: `workers - 1` parked threads plus the
/// caller, woken per [`Pool::run_epoch`] call via a condvar-guarded
/// epoch counter.
///
/// Construction spawns the threads once; every subsequent epoch is
/// allocation-free and spawn-free (wake, run, barrier). Dropping the
/// pool parks a shutdown flag and joins the threads.
pub struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Builds a pool of `workers` (resolved via [`resolve_workers`];
    /// minimum 1). A 1-worker pool spawns no threads — `run_epoch`
    /// runs inline.
    pub fn new(workers: usize) -> Self {
        let workers = resolve_workers(workers).max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(JobState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|id| {
                POOL_THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("exec-pool-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Total workers, the caller included.
    pub fn workers(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(worker_id)` once on every worker — ids `0..workers()`,
    /// the caller as worker `0` — and returns after the last worker
    /// finishes. The closure is borrowed, not boxed: the call performs
    /// no heap allocation and spawns no thread.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker's `f` after the barrier.
    pub fn run_epoch<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.handles.is_empty() {
            f(0);
            return;
        }
        unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), worker: usize) {
            // SAFETY: `data` is the `&F` published below, alive until
            // the barrier releases the caller.
            let f = unsafe { &*data.cast::<F>() };
            f(worker);
        }
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.job = Some(RawJob {
                data: (&raw const f).cast(),
                call: trampoline::<F>,
            });
            state.epoch += 1;
            state.remaining = self.handles.len();
            self.shared.start.notify_all();
        }
        // The barrier must run even if `f(0)` unwinds: workers may
        // still hold `&f`, so the guard waits for them before the
        // closure's frame is torn down.
        let guard = BarrierGuard {
            shared: &self.shared,
        };
        f(0);
        drop(guard);
        let mut state = self.shared.state.lock().expect("pool state");
        if state.panicked {
            state.panicked = false;
            drop(state);
            panic!("a pool worker's job panicked");
        }
    }

    /// Maps `f` over `items` on this pool via one cursor-scheduled
    /// epoch, returning results in input order. Dynamic scheduling —
    /// an atomic cursor hands each idle worker the next unclaimed
    /// item — so uneven item costs do not leave threads idle.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.workers() == 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let work: Vec<SyncCell<Option<T>>> =
            items.into_iter().map(|t| SyncCell::new(Some(t))).collect();
        let results: Vec<SyncCell<Option<R>>> = (0..n).map(|_| SyncCell::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        self.run_epoch(|_| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            // SAFETY: the cursor hands index `i` to exactly one
            // worker; nobody else touches these cells this epoch.
            let item = unsafe { work[i].get() }
                .take()
                .expect("each slot is claimed once");
            let r = f(item);
            *unsafe { results[i].get() } = Some(r);
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot was filled"))
            .collect()
    }
}

/// Waits out the completion barrier, even during unwinding.
struct BarrierGuard<'a> {
    shared: &'a PoolShared,
}

impl Drop for BarrierGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("pool state");
        while state.remaining > 0 {
            state = self.shared.done.wait(state).expect("pool state");
        }
        state.job = None;
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen {
                    seen = state.epoch;
                    break state.job.expect("a bumped epoch publishes a job");
                }
                state = shared.start.wait(state).expect("pool state");
            }
        };
        // SAFETY: the publishing `run_epoch` frame is barriered on
        // `remaining`, so the borrowed closure outlives this call.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (job.call)(job.data, worker)
        }));
        let mut state = shared.state.lock().expect("pool state");
        if outcome.is_err() {
            state.panicked = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Maps `f` over `items` on a one-shot pool of `workers` threads
/// (resolved via [`resolve_workers`]; the pool never exceeds the item
/// count), returning results in input order.
///
/// `f` runs exactly once per item; scheduling is [`Pool::map`]'s
/// dynamic cursor. With one worker (or one item) no thread is spawned
/// and the map runs inline, so single-core machines pay nothing for
/// the machinery. Sweep callers that map repeatedly should hold a
/// [`Pool`] and call [`Pool::map`] to skip the per-call spawn/join.
///
/// # Panics
///
/// Propagates a panic from `f` after the pool joins.
pub fn map_parallel<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_workers(workers).clamp(1, n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    Pool::new(workers).map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let out = map_parallel((0..100).collect(), 4, |x: usize| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = map_parallel(items.clone(), 1, |x| x.wrapping_mul(0x9E3779B9));
        let parallel = map_parallel(items, 8, |x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = map_parallel(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn auto_workers_resolve_to_at_least_one() {
        assert!(resolve_workers(AUTO_WORKERS) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn uneven_costs_still_cover_every_item() {
        // Items with wildly different costs: the cursor must hand every
        // index out exactly once.
        let out = map_parallel((0..25).collect(), 5, |x: u64| {
            let spin = if x.is_multiple_of(7) { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn worker_count_exceeding_items_is_clamped() {
        let out = map_parallel(vec![1, 2, 3], 64, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn pool_runs_many_epochs_without_spawning() {
        let pool = Pool::new(4);
        assert_eq!(pool.workers(), 4);
        let spawned = threads_spawned();
        let hits = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run_epoch(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 200 * 4);
        assert_eq!(
            threads_spawned(),
            spawned,
            "run_epoch must never spawn a thread"
        );
    }

    #[test]
    fn pool_worker_ids_are_distinct_and_dense() {
        let pool = Pool::new(6);
        let seen: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        pool.run_epoch(|worker| {
            seen[worker].fetch_add(1, Ordering::Relaxed);
        });
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "worker {i} ran once");
        }
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let spawned = threads_spawned();
        let pool = Pool::new(1);
        pool.run_epoch(|worker| assert_eq!(worker, 0));
        assert_eq!(pool.map(vec![1, 2, 3], |x: i32| x * 10), vec![10, 20, 30]);
        assert_eq!(threads_spawned(), spawned, "a 1-worker pool spawns nothing");
    }

    #[test]
    fn pool_map_matches_one_shot_map() {
        let pool = Pool::new(3);
        let items: Vec<u64> = (0..41).collect();
        let a = pool.map(items.clone(), |x| x.wrapping_mul(0x9E3779B9));
        let b = map_parallel(items, 3, |x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(a, b);
        // The pool stays serviceable after a map epoch.
        let c = pool.map((0..5).collect(), |x: i32| x + 1);
        assert_eq!(c, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = Pool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_epoch(|worker| {
                if worker == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "the worker's panic must surface");
        // The pool survives the panic and keeps running epochs.
        let hits = AtomicUsize::new(0);
        pool.run_epoch(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }
}
