//! A vendored work-stealing-lite worker pool for the sweep layer.
//!
//! The scenario × substrate matrix is embarrassingly parallel — every
//! cell owns its RNG, trajectory and session — but the offline build
//! has no rayon, so this module provides the minimum: a scoped pool of
//! `workers` threads self-scheduling over a shared work list through
//! one atomic cursor. Threads that finish a long cell early simply
//! claim the next unclaimed index ("stealing" from the static
//! partition a naive split would have given them), which keeps every
//! core busy even when cell costs differ by orders of magnitude (the
//! Softfloat column costs ~50x the native one).
//!
//! Results come back in input order regardless of completion order, so
//! parallel callers observe exactly what the serial loop would have
//! produced — the property [`crate::spec::ScenarioSuite::run_parallel`]
//! pins with a bit-identity test.
//!
//! ```
//! use boresight::exec;
//!
//! let squares = exec::map_parallel((0..16).collect(), 4, |x: i32| x * x);
//! assert_eq!(squares[5], 25);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count meaning "one per available core".
///
/// [`map_parallel`] treats `0` as [`default_workers`], so bench
/// binaries can pass a plain `--workers 0` through.
pub const AUTO_WORKERS: usize = 0;

/// The machine's available parallelism (falls back to 1 when the
/// platform cannot say).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a requested worker count: `0` means
/// [`default_workers`], anything else is taken as-is.
pub fn resolve_workers(requested: usize) -> usize {
    if requested == AUTO_WORKERS {
        default_workers()
    } else {
        requested
    }
}

/// Maps `f` over `items` on a scoped pool of `workers` threads
/// (resolved via [`resolve_workers`]; the pool never exceeds the item
/// count), returning results in input order.
///
/// `f` runs exactly once per item. Scheduling is dynamic — an atomic
/// cursor hands each idle worker the next unclaimed item — so uneven
/// item costs do not leave threads idle. With one worker (or one item)
/// no thread is spawned and the map runs inline, so single-core
/// machines pay nothing for the machinery.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins.
pub fn map_parallel<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_workers(workers).clamp(1, n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each slot is locked exactly once per phase (take the item, store
    // the result), so the mutexes are uncontended bookkeeping — the
    // scheduling itself is the lock-free cursor.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot lock")
                    .take()
                    .expect("each slot is claimed once");
                let r = f(item);
                *results[i].lock().expect("result slot lock") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let out = map_parallel((0..100).collect(), 4, |x: usize| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = map_parallel(items.clone(), 1, |x| x.wrapping_mul(0x9E3779B9));
        let parallel = map_parallel(items, 8, |x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = map_parallel(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn auto_workers_resolve_to_at_least_one() {
        assert!(resolve_workers(AUTO_WORKERS) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn uneven_costs_still_cover_every_item() {
        // Items with wildly different costs: the cursor must hand every
        // index out exactly once.
        let out = map_parallel((0..25).collect(), 5, |x: u64| {
            let spin = if x.is_multiple_of(7) { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn worker_count_exceeding_items_is_clamped() {
        let out = map_parallel(vec![1, 2, 3], 64, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
