//! Explicit SIMD `f64` lanes: the vector-register twin of
//! [`crate::arith::LaneArith`].
//!
//! [`crate::arith::LaneArith<F64Arith, L>`] leaves lane parallelism to
//! the autovectorizer (and pays ledger increments per lane);
//! [`SimdArith<L>`] makes it explicit: the lane value [`F64Lanes`] is
//! a register image, and with the `simd` cargo feature enabled on
//! x86_64 every arithmetic operation lowers to SSE2 packed-double
//! intrinsics over pairs of lanes (SSE2 is the x86_64 baseline — no
//! runtime feature detection needed). Without the feature, or on other
//! architectures, the same operations run as portable scalar loops.
//!
//! **Both paths are bit-identical to the scalar [`crate::arith::F64Arith`] stream,
//! per lane.** IEEE 754 requires correctly rounded add/sub/mul/div/
//! sqrt, so `addpd` and the scalar `+` produce the same bits; the two
//! places where x86 vector idioms would diverge are deliberately kept
//! off the vector unit:
//!
//! * `max` stays a per-lane `f64::max` — `maxpd` returns its second
//!   operand for NaN inputs and conflates `±0.0`, which would break
//!   bit-parity with the scalar filter's NaN-ignoring max;
//! * `fma` stays multiply-then-add (two roundings) — a `vfmadd` would
//!   round once and change the stream relative to [`crate::arith::F64Arith`], whose
//!   `fma` default is also two-rounding.
//!
//! Comparisons use *mask* semantics: [`LaneOps::lane_lt`] is a packed
//! compare reduced to a `[bool; L]` lane mask (`cmpltpd` +
//! `movmskpd`), and the collective [`Arith::lt`]/[`Arith::eq`] are the
//! all-lanes reduction of that mask — the same observable contract as
//! [`crate::arith::LaneArith`]'s collective comparisons, so
//! [`crate::lanes::LaneIekf`] masks divergence identically over either
//! lane substrate.

use crate::arith::{Arith, LaneOps, LaneSpec, OpCounts};
use std::ops::{Index, IndexMut};

/// `L` lanes of `f64`, the scalar type of [`SimdArith`].
///
/// A thin newtype over `[f64; L]` so the backing storage is exactly a
/// (sequence of) vector register image(s); lanes read and write
/// through `Index`/`IndexMut`, the contract [`LaneOps`] requires of
/// every lane value. 16-byte aligned so each even-offset lane pair
/// sits on one vector-register-sized slot that never straddles a
/// cache line — the one layout edge a plain `[f64; L]` lane array
/// doesn't get.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(align(16))]
pub struct F64Lanes<const L: usize>([f64; L]);

impl<const L: usize> F64Lanes<L> {
    /// Wraps per-lane values.
    pub const fn new(lanes: [f64; L]) -> Self {
        Self(lanes)
    }

    /// Broadcasts one value to every lane.
    pub const fn splat(v: f64) -> Self {
        Self([v; L])
    }

    /// The lanes as a plain array.
    pub const fn as_array(&self) -> &[f64; L] {
        &self.0
    }
}

impl<const L: usize> Index<usize> for F64Lanes<L> {
    type Output = f64;

    #[inline]
    fn index(&self, lane: usize) -> &f64 {
        &self.0[lane]
    }
}

impl<const L: usize> IndexMut<usize> for F64Lanes<L> {
    #[inline]
    fn index_mut(&mut self, lane: usize) -> &mut f64 {
        &mut self.0[lane]
    }
}

/// The explicit SSE2 backend: packed-double intrinsics over lane
/// pairs, scalar on the odd tail.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod backend {
    use std::arch::x86_64::*;

    macro_rules! packed_binop {
        ($name:ident, $packed:ident, $scalar:expr) => {
            #[inline]
            pub fn $name<const L: usize>(a: &[f64; L], b: &[f64; L]) -> [f64; L] {
                let mut out = [0.0_f64; L];
                let mut i = 0;
                // SAFETY: `i + 2 <= L` bounds every 16-byte access and
                // the unaligned intrinsics carry no alignment demand
                // (they still run at aligned-load speed on the
                // 16-byte-aligned `F64Lanes` storage).
                unsafe {
                    while i + 2 <= L {
                        let va = _mm_loadu_pd(a.as_ptr().add(i));
                        let vb = _mm_loadu_pd(b.as_ptr().add(i));
                        _mm_storeu_pd(out.as_mut_ptr().add(i), $packed(va, vb));
                        i += 2;
                    }
                }
                while i < L {
                    out[i] = $scalar(a[i], b[i]);
                    i += 1;
                }
                out
            }
        };
    }

    packed_binop!(add, _mm_add_pd, |x: f64, y: f64| x + y);
    packed_binop!(sub, _mm_sub_pd, |x: f64, y: f64| x - y);
    packed_binop!(mul, _mm_mul_pd, |x: f64, y: f64| x * y);
    packed_binop!(div, _mm_div_pd, |x: f64, y: f64| x / y);

    #[inline]
    pub fn sqrt<const L: usize>(a: &[f64; L]) -> [f64; L] {
        let mut out = [0.0_f64; L];
        let mut i = 0;
        // SAFETY: as in `packed_binop`.
        unsafe {
            while i + 2 <= L {
                let va = _mm_loadu_pd(a.as_ptr().add(i));
                _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_sqrt_pd(va));
                i += 2;
            }
        }
        while i < L {
            out[i] = a[i].sqrt();
            i += 1;
        }
        out
    }

    #[inline]
    pub fn neg<const L: usize>(a: &[f64; L]) -> [f64; L] {
        let mut out = [0.0_f64; L];
        let mut i = 0;
        // SAFETY: as in `packed_binop`. Sign-bit XOR is exactly IEEE
        // negation, bitwise.
        unsafe {
            let sign = _mm_set1_pd(-0.0);
            while i + 2 <= L {
                let va = _mm_loadu_pd(a.as_ptr().add(i));
                _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_xor_pd(va, sign));
                i += 2;
            }
        }
        while i < L {
            out[i] = -a[i];
            i += 1;
        }
        out
    }

    #[inline]
    pub fn abs<const L: usize>(a: &[f64; L]) -> [f64; L] {
        let mut out = [0.0_f64; L];
        let mut i = 0;
        // SAFETY: as in `packed_binop`. Clearing the sign bit is
        // exactly IEEE abs, bitwise.
        unsafe {
            let sign = _mm_set1_pd(-0.0);
            while i + 2 <= L {
                let va = _mm_loadu_pd(a.as_ptr().add(i));
                _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_andnot_pd(sign, va));
                i += 2;
            }
        }
        while i < L {
            out[i] = a[i].abs();
            i += 1;
        }
        out
    }

    #[inline]
    pub fn lt_mask<const L: usize>(a: &[f64; L], b: &[f64; L]) -> [bool; L] {
        let mut out = [false; L];
        let mut i = 0;
        // SAFETY: as in `packed_binop`. `cmpltpd` is an ordered
        // compare: NaN lanes produce `false`, matching scalar `<`.
        unsafe {
            while i + 2 <= L {
                let va = _mm_loadu_pd(a.as_ptr().add(i));
                let vb = _mm_loadu_pd(b.as_ptr().add(i));
                let m = _mm_movemask_pd(_mm_cmplt_pd(va, vb));
                out[i] = m & 1 != 0;
                out[i + 1] = m & 2 != 0;
                i += 2;
            }
        }
        while i < L {
            out[i] = a[i] < b[i];
            i += 1;
        }
        out
    }

    /// `a*b + c` with TWO roundings (`mulpd` then `addpd`) in one
    /// traversal. Bit-identical to the trait-default fma, which is
    /// also multiply-then-add — this just skips materializing the
    /// intermediate product array, which matters because the MAC is
    /// the hottest op in the matrix kernels.
    #[inline]
    pub fn fma<const L: usize>(a: &[f64; L], b: &[f64; L], c: &[f64; L]) -> [f64; L] {
        let mut out = [0.0_f64; L];
        let mut i = 0;
        // SAFETY: as in `packed_binop`.
        unsafe {
            while i + 2 <= L {
                let va = _mm_loadu_pd(a.as_ptr().add(i));
                let vb = _mm_loadu_pd(b.as_ptr().add(i));
                let vc = _mm_loadu_pd(c.as_ptr().add(i));
                _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_add_pd(_mm_mul_pd(va, vb), vc));
                i += 2;
            }
        }
        while i < L {
            out[i] = a[i] * b[i] + c[i];
            i += 1;
        }
        out
    }
}

/// The portable fallback: plain scalar loops, bit-identical to the
/// SSE2 path because IEEE 754 add/sub/mul/div/sqrt are correctly
/// rounded on both.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod backend {
    #[inline(always)]
    pub fn add<const L: usize>(a: &[f64; L], b: &[f64; L]) -> [f64; L] {
        std::array::from_fn(|i| a[i] + b[i])
    }

    #[inline(always)]
    pub fn sub<const L: usize>(a: &[f64; L], b: &[f64; L]) -> [f64; L] {
        std::array::from_fn(|i| a[i] - b[i])
    }

    #[inline(always)]
    pub fn mul<const L: usize>(a: &[f64; L], b: &[f64; L]) -> [f64; L] {
        std::array::from_fn(|i| a[i] * b[i])
    }

    #[inline(always)]
    pub fn div<const L: usize>(a: &[f64; L], b: &[f64; L]) -> [f64; L] {
        std::array::from_fn(|i| a[i] / b[i])
    }

    #[inline(always)]
    pub fn sqrt<const L: usize>(a: &[f64; L]) -> [f64; L] {
        std::array::from_fn(|i| a[i].sqrt())
    }

    #[inline(always)]
    pub fn neg<const L: usize>(a: &[f64; L]) -> [f64; L] {
        std::array::from_fn(|i| -a[i])
    }

    #[inline(always)]
    pub fn abs<const L: usize>(a: &[f64; L]) -> [f64; L] {
        std::array::from_fn(|i| a[i].abs())
    }

    #[inline(always)]
    pub fn lt_mask<const L: usize>(a: &[f64; L], b: &[f64; L]) -> [bool; L] {
        std::array::from_fn(|i| a[i] < b[i])
    }

    /// `a*b + c`, two roundings per lane like the trait-default fma
    /// (Rust never contracts `*` + `+` into a fused multiply-add).
    #[inline(always)]
    pub fn fma<const L: usize>(a: &[f64; L], b: &[f64; L], c: &[f64; L]) -> [f64; L] {
        std::array::from_fn(|i| a[i] * b[i] + c[i])
    }
}

/// The scalar marker substrate whose [`LaneSpec`] lane form is the
/// explicit-vector [`SimdArith`].
///
/// As a scalar it is plain, uncounted native `f64` — bit-identical to
/// [`crate::arith::F64Arith`] op for op (the per-lane scalar hops the
/// lane filter takes through `inner_mut()` therefore cannot perturb
/// parity) and ledger-free like [`crate::arith::F64ArithFast`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimdF64;

impl Arith for SimdF64 {
    type T = f64;

    fn num(&mut self, x: f64) -> f64 {
        x
    }

    fn to_f64(&self, x: f64) -> f64 {
        x
    }

    fn add(&mut self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn sub(&mut self, a: f64, b: f64) -> f64 {
        a - b
    }

    fn mul(&mut self, a: f64, b: f64) -> f64 {
        a * b
    }

    fn div(&mut self, a: f64, b: f64) -> f64 {
        a / b
    }

    fn sqrt(&mut self, a: f64) -> f64 {
        a.sqrt()
    }

    fn neg(&mut self, a: f64) -> f64 {
        -a
    }

    fn abs(&mut self, a: f64) -> f64 {
        a.abs()
    }

    fn lt(&mut self, a: f64, b: f64) -> bool {
        a < b
    }

    fn eq(&mut self, a: f64, b: f64) -> bool {
        a == b
    }

    fn max(&mut self, a: f64, b: f64) -> f64 {
        a.max(b)
    }

    fn sin_cos(&mut self, a: f64) -> (f64, f64) {
        a.sin_cos()
    }

    fn name(&self) -> &'static str {
        "simd/f64"
    }

    fn iekf_label(&self) -> &'static str {
        // Same arithmetic as the reference, so the scalar label is the
        // reference's (sessions built directly over `SimdF64` are
        // interchangeable with `F64Arith` ones).
        "iekf5/f64"
    }
}

impl<const L: usize> LaneSpec<L> for SimdF64 {
    type Lanes = SimdArith<L>;
}

/// `L` explicit-vector `f64` lanes implementing [`Arith`] (and
/// [`LaneOps`]) over [`F64Lanes`].
///
/// Drop-in for [`crate::arith::LaneArith<F64Arith, L>`] wherever the
/// lane substrate is chosen through [`LaneSpec`] —
/// `LaneIekf<SimdF64, 8>`, `LaneBank<SimdF64, 8>`,
/// `Fleet<SimdF64, 8>` — with every lane bit-identical to a scalar
/// `F64Arith` run (see the [module docs](self) for why, and for the
/// two vector idioms deliberately avoided). Not cycle-modelled and
/// uncounted: this substrate exists to win wall clock, its cost model
/// is the measured samples/sec in `BENCH_frontier.json`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimdArith<const L: usize> {
    inner: SimdF64,
}

impl<const L: usize> Arith for SimdArith<L> {
    type T = F64Lanes<L>;

    #[inline]
    fn num(&mut self, x: f64) -> F64Lanes<L> {
        F64Lanes::splat(x)
    }

    fn to_f64(&self, x: F64Lanes<L>) -> f64 {
        x.0[0]
    }

    #[inline]
    fn add(&mut self, a: F64Lanes<L>, b: F64Lanes<L>) -> F64Lanes<L> {
        F64Lanes(backend::add(&a.0, &b.0))
    }

    #[inline]
    fn sub(&mut self, a: F64Lanes<L>, b: F64Lanes<L>) -> F64Lanes<L> {
        F64Lanes(backend::sub(&a.0, &b.0))
    }

    #[inline]
    fn mul(&mut self, a: F64Lanes<L>, b: F64Lanes<L>) -> F64Lanes<L> {
        F64Lanes(backend::mul(&a.0, &b.0))
    }

    #[inline]
    fn div(&mut self, a: F64Lanes<L>, b: F64Lanes<L>) -> F64Lanes<L> {
        F64Lanes(backend::div(&a.0, &b.0))
    }

    #[inline]
    fn sqrt(&mut self, a: F64Lanes<L>) -> F64Lanes<L> {
        F64Lanes(backend::sqrt(&a.0))
    }

    #[inline]
    fn neg(&mut self, a: F64Lanes<L>) -> F64Lanes<L> {
        F64Lanes(backend::neg(&a.0))
    }

    #[inline]
    fn abs(&mut self, a: F64Lanes<L>) -> F64Lanes<L> {
        F64Lanes(backend::abs(&a.0))
    }

    #[inline]
    fn lt(&mut self, a: F64Lanes<L>, b: F64Lanes<L>) -> bool {
        backend::lt_mask(&a.0, &b.0).iter().all(|&m| m)
    }

    #[inline]
    fn eq(&mut self, a: F64Lanes<L>, b: F64Lanes<L>) -> bool {
        (0..L).all(|i| a.0[i] == b.0[i])
    }

    #[inline]
    fn max(&mut self, a: F64Lanes<L>, b: F64Lanes<L>) -> F64Lanes<L> {
        // Per-lane `f64::max`, NOT `maxpd`: the packed instruction's
        // NaN and signed-zero behaviour differs from `f64::max`, which
        // would break bit-parity with the scalar reference.
        F64Lanes(std::array::from_fn(|i| a.0[i].max(b.0[i])))
    }

    /// Multiply then add, TWO roundings — the same arithmetic as the
    /// trait default (a fused `vfmadd` rounds once and would diverge
    /// from the scalar `F64Arith` stream), but in one array traversal
    /// instead of two chained ops.
    #[inline]
    fn fma(&mut self, a: F64Lanes<L>, b: F64Lanes<L>, c: F64Lanes<L>) -> F64Lanes<L> {
        F64Lanes(backend::fma(&a.0, &b.0, &c.0))
    }

    fn sin_cos(&mut self, a: F64Lanes<L>) -> (F64Lanes<L>, F64Lanes<L>) {
        let mut cs = [0.0_f64; L];
        let sn = std::array::from_fn(|i| {
            let (s, c) = a.0[i].sin_cos();
            cs[i] = c;
            s
        });
        (F64Lanes(sn), F64Lanes(cs))
    }

    fn name(&self) -> &'static str {
        match L {
            1 => "simd/f64x1",
            2 => "simd/f64x2",
            4 => "simd/f64x4",
            8 => "simd/f64x8",
            16 => "simd/f64x16",
            _ => "simd/f64xN",
        }
    }

    fn iekf_label(&self) -> &'static str {
        "iekf5/simd"
    }

    fn counts(&self) -> OpCounts {
        OpCounts::default()
    }
}

impl<const L: usize> LaneOps<L> for SimdArith<L> {
    type Inner = SimdF64;

    fn with_inner(inner: SimdF64) -> Self {
        Self { inner }
    }

    fn inner(&self) -> &SimdF64 {
        &self.inner
    }

    fn inner_mut(&mut self) -> &mut SimdF64 {
        &mut self.inner
    }

    fn from_lanes(&mut self, xs: [f64; L]) -> F64Lanes<L> {
        F64Lanes(xs)
    }

    fn splat(&mut self, v: f64) -> F64Lanes<L> {
        F64Lanes::splat(v)
    }

    fn lane_to_f64(&self, v: &F64Lanes<L>, lane: usize) -> f64 {
        v.0[lane]
    }

    fn lane_lt(&mut self, a: &F64Lanes<L>, b: &F64Lanes<L>) -> [bool; L] {
        backend::lt_mask(&a.0, &b.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every backend op must be bitwise what the scalar FPU computes —
    /// including on the odd tail lane of an odd width, and on special
    /// values (NaN propagation, signed zeros, infinities). Inputs go
    /// through `black_box` so both sides execute on the hardware:
    /// compile-time folding canonicalizes NaN signs differently from
    /// the FPU's indefinite NaN, which is exactly the mismatch the
    /// runtime parity claim does not include.
    #[test]
    fn backend_ops_match_scalar_bitwise() {
        let a: [f64; 7] =
            std::hint::black_box([1.5, -2.25, f64::NAN, 0.0, -0.0, 1e-308, f64::INFINITY]);
        let b: [f64; 7] = std::hint::black_box([3.0, 0.5, 1.0, -0.0, 0.0, 1e308, -1.0]);
        let mut s = SimdArith::<7>::default();
        let (va, vb) = (F64Lanes(a), F64Lanes(b));
        let pairs: [(F64Lanes<7>, [f64; 7]); 4] = [
            (s.add(va, vb), std::array::from_fn(|i| a[i] + b[i])),
            (s.sub(va, vb), std::array::from_fn(|i| a[i] - b[i])),
            (s.mul(va, vb), std::array::from_fn(|i| a[i] * b[i])),
            (s.div(va, vb), std::array::from_fn(|i| a[i] / b[i])),
        ];
        for (got, want) in pairs {
            for i in 0..7 {
                assert_eq!(got[i].to_bits(), want[i].to_bits(), "lane {i}");
            }
        }
        let r = s.sqrt(va);
        let n = s.neg(va);
        let ab = s.abs(va);
        let mx = s.max(va, vb);
        for i in 0..7 {
            assert_eq!(r[i].to_bits(), a[i].sqrt().to_bits(), "sqrt {i}");
            assert_eq!(n[i].to_bits(), (-a[i]).to_bits(), "neg {i}");
            assert_eq!(ab[i].to_bits(), a[i].abs().to_bits(), "abs {i}");
            assert_eq!(mx[i].to_bits(), a[i].max(b[i]).to_bits(), "max {i}");
        }
    }

    #[test]
    fn masks_and_collectives_agree_with_scalar_compares() {
        let a = [1.0, 5.0, f64::NAN, -0.0];
        let b = [2.0, 4.0, 1.0, 0.0];
        let mut s = SimdArith::<4>::default();
        let (va, vb) = (F64Lanes(a), F64Lanes(b));
        let mask = s.lane_lt(&va, &vb);
        assert_eq!(mask, [true, false, false, false]);
        // Collective lt/eq are the all-lanes reductions.
        assert!(!s.lt(va, vb));
        let lo = F64Lanes([0.0, 0.0, 0.0, 0.0]);
        let hi = F64Lanes([1.0, 2.0, 3.0, 4.0]);
        assert!(s.lt(lo, hi));
        assert!(s.eq(lo, lo));
        assert!(!s.eq(va, va), "NaN lane must fail IEEE equality");
    }

    #[test]
    fn fma_rounds_twice_like_the_scalar_reference() {
        let mut s = SimdArith::<2>::default();
        // x² = 1 + 2⁻²⁶ + 2⁻⁵⁴: the 2⁻⁵⁴ tail is below the half-ulp of
        // the product (so mul-then-add loses it) but representable in
        // the fused result's exponent range (so one rounding keeps it).
        let x = 1.0 + (2.0_f64).powi(-27);
        let v = s.fma(F64Lanes([x; 2]), F64Lanes([x; 2]), F64Lanes([-1.0; 2]));
        let two_rounding = x * x - 1.0;
        let fused = x.mul_add(x, -1.0);
        assert_eq!(v[0].to_bits(), two_rounding.to_bits());
        assert_ne!(fused.to_bits(), two_rounding.to_bits());
    }
}
