//! The boresight measurement model.
//!
//! The two-axis accelerometer fixed to the sensor measures the x', y'
//! components of the specific force expressed in the sensor frame:
//!
//! ```text
//! z = S * C_sb(phi, theta, psi) * f_b + b + v
//! ```
//!
//! where `C_sb` is the (sensor-from-body) misalignment DCM — the
//! quantity the filter estimates — `f_b` the IMU's body-frame specific
//! force, `S` the first-two-rows selector, `b` the accelerometer bias
//! pair and `v` measurement noise. This module supplies the model
//! function `h` and its analytic Jacobian with respect to the filter
//! state `[phi, theta, psi, bx, by]`.

use crate::arith::Arith;
use crate::smallmat;
use mathx::{Mat3, Matrix, Vec3, Vector};

/// Dimension of the filter state.
pub const STATE_DIM: usize = 5;
/// Dimension of the measurement.
pub const MEAS_DIM: usize = 2;

/// Filter state vector `[phi, theta, psi, bx, by]`.
pub type State = Vector<STATE_DIM>;
/// Measurement vector (ACC x', y' specific force, m/s^2).
pub type Meas = Vector<MEAS_DIM>;
/// State covariance.
pub type StateCov = Matrix<STATE_DIM, STATE_DIM>;
/// Measurement Jacobian.
pub type MeasJacobian = Matrix<MEAS_DIM, STATE_DIM>;

fn rx(phi: f64) -> Mat3 {
    let (s, c) = phi.sin_cos();
    Mat3::new([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
}

fn ry(theta: f64) -> Mat3 {
    let (s, c) = theta.sin_cos();
    Mat3::new([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
}

fn rz(psi: f64) -> Mat3 {
    let (s, c) = psi.sin_cos();
    Mat3::new([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
}

fn drx(phi: f64) -> Mat3 {
    let (s, c) = phi.sin_cos();
    Mat3::new([[0.0, 0.0, 0.0], [0.0, -s, -c], [0.0, c, -s]])
}

fn dry(theta: f64) -> Mat3 {
    let (s, c) = theta.sin_cos();
    Mat3::new([[-s, 0.0, c], [0.0, 0.0, 0.0], [-c, 0.0, -s]])
}

fn drz(psi: f64) -> Mat3 {
    let (s, c) = psi.sin_cos();
    Mat3::new([[-s, -c, 0.0], [c, -s, 0.0], [0.0, 0.0, 0.0]])
}

/// Sensor-from-body DCM for the given state.
pub fn c_sb(x: &State) -> Mat3 {
    (rz(x[2]) * ry(x[1]) * rx(x[0])).transpose()
}

/// Model function: predicted ACC measurement for state `x` and IMU
/// specific force `f_b`.
pub fn h(x: &State, f_b: Vec3) -> Meas {
    let f_s = c_sb(x) * f_b;
    Vector::new([f_s[0] + x[3], f_s[1] + x[4]])
}

/// Analytic Jacobian `dh/dx` (2 x 5).
pub fn jacobian(x: &State, f_b: Vec3) -> MeasJacobian {
    let a = rz(x[2]);
    let b = ry(x[1]);
    let c = rx(x[0]);
    // C_sb = C^T B^T A^T; partials replace one factor by its derivative.
    let d_phi = (a * b * drx(x[0])).transpose() * f_b;
    let d_theta = (a * dry(x[1]) * c).transpose() * f_b;
    let d_psi = (drz(x[2]) * b * c).transpose() * f_b;
    let mut jac = MeasJacobian::zeros();
    for row in 0..MEAS_DIM {
        jac[(row, 0)] = d_phi[row];
        jac[(row, 1)] = d_theta[row];
        jac[(row, 2)] = d_psi[row];
    }
    jac[(0, 3)] = 1.0;
    jac[(1, 4)] = 1.0;
    jac
}

// --- Substrate-generic model -------------------------------------
//
// The same model function and Jacobian over any `Arith` number system,
// with every dense product going through the shared `smallmat` kernels
// in the exact operation order of the `f64` path above — instantiated
// with `F64Arith` these reproduce `h`/`jacobian` bit for bit.

fn rx_g<A: Arith>(a: &mut A, phi: A::T) -> [[A::T; 3]; 3] {
    let (s, c) = a.sin_cos(phi);
    let ns = a.neg(s);
    let zero = a.num(0.0);
    let one = a.num(1.0);
    [[one, zero, zero], [zero, c, ns], [zero, s, c]]
}

fn ry_g<A: Arith>(a: &mut A, theta: A::T) -> [[A::T; 3]; 3] {
    let (s, c) = a.sin_cos(theta);
    let ns = a.neg(s);
    let zero = a.num(0.0);
    let one = a.num(1.0);
    [[c, zero, s], [zero, one, zero], [ns, zero, c]]
}

fn rz_g<A: Arith>(a: &mut A, psi: A::T) -> [[A::T; 3]; 3] {
    let (s, c) = a.sin_cos(psi);
    let ns = a.neg(s);
    let zero = a.num(0.0);
    let one = a.num(1.0);
    [[c, ns, zero], [s, c, zero], [zero, zero, one]]
}

fn drx_g<A: Arith>(a: &mut A, phi: A::T) -> [[A::T; 3]; 3] {
    let (s, c) = a.sin_cos(phi);
    let ns = a.neg(s);
    let nc = a.neg(c);
    let zero = a.num(0.0);
    [[zero, zero, zero], [zero, ns, nc], [zero, c, ns]]
}

fn dry_g<A: Arith>(a: &mut A, theta: A::T) -> [[A::T; 3]; 3] {
    let (s, c) = a.sin_cos(theta);
    let ns = a.neg(s);
    let nc = a.neg(c);
    let zero = a.num(0.0);
    [[ns, zero, c], [zero, zero, zero], [nc, zero, ns]]
}

fn drz_g<A: Arith>(a: &mut A, psi: A::T) -> [[A::T; 3]; 3] {
    let (s, c) = a.sin_cos(psi);
    let ns = a.neg(s);
    let nc = a.neg(c);
    let zero = a.num(0.0);
    [[ns, nc, zero], [c, ns, zero], [zero, zero, zero]]
}

/// `Rz * Ry * Rx` for the given state — `C_sb` is its transpose, which
/// callers apply implicitly through [`smallmat::mat_tvec`].
fn rot_prod_g<A: Arith>(a: &mut A, x: &[A::T; STATE_DIM]) -> [[A::T; 3]; 3] {
    let rz = rz_g(a, x[2]);
    let ry = ry_g(a, x[1]);
    let rx = rx_g(a, x[0]);
    let zy = smallmat::mul(a, &rz, &ry);
    smallmat::mul(a, &zy, &rx)
}

/// Substrate-generic model function: predicted ACC measurement for
/// state `x` and IMU specific force `f_b`.
pub fn h_generic<A: Arith>(a: &mut A, x: &[A::T; STATE_DIM], f_b: &[A::T; 3]) -> [A::T; MEAS_DIM] {
    let prod = rot_prod_g(a, x);
    let f_s = smallmat::mat_tvec(a, &prod, f_b);
    [a.add(f_s[0], x[3]), a.add(f_s[1], x[4])]
}

/// Substrate-generic analytic Jacobian `dh/dx` (2 x 5).
pub fn jacobian_generic<A: Arith>(
    a: &mut A,
    x: &[A::T; STATE_DIM],
    f_b: &[A::T; 3],
) -> [[A::T; STATE_DIM]; MEAS_DIM] {
    let az = rz_g(a, x[2]);
    let by = ry_g(a, x[1]);
    let cx = rx_g(a, x[0]);
    // C_sb = C^T B^T A^T; partials replace one factor by its derivative.
    let ab = smallmat::mul(a, &az, &by);
    let dcx = drx_g(a, x[0]);
    let m_phi = smallmat::mul(a, &ab, &dcx);
    let d_phi = smallmat::mat_tvec(a, &m_phi, f_b);
    let dby = dry_g(a, x[1]);
    let adb = smallmat::mul(a, &az, &dby);
    let m_theta = smallmat::mul(a, &adb, &cx);
    let d_theta = smallmat::mat_tvec(a, &m_theta, f_b);
    let daz = drz_g(a, x[2]);
    let db = smallmat::mul(a, &daz, &by);
    let m_psi = smallmat::mul(a, &db, &cx);
    let d_psi = smallmat::mat_tvec(a, &m_psi, f_b);
    let zero = a.num(0.0);
    let one = a.num(1.0);
    let mut jac = [[zero; STATE_DIM]; MEAS_DIM];
    for row in 0..MEAS_DIM {
        jac[row][0] = d_phi[row];
        jac[row][1] = d_theta[row];
        jac[row][2] = d_psi[row];
    }
    jac[0][3] = one;
    jac[1][4] = one;
    jac
}

/// Fused model + Jacobian evaluation — the structure-exploiting hot
/// path of the IEKF measurement update.
///
/// [`h_generic`] and [`jacobian_generic`] each rebuild the Euler
/// rotation factors from scratch: between them one linearization point
/// costs nine `sin_cos` evaluations of three distinct angles and
/// re-multiplies the shared `Rz Ry` product. This function evaluates
/// the trig **once per angle**, builds every factor (and derivative
/// factor) from the shared `(sin, cos)` pairs, and reuses the `Rz Ry`
/// product between the model and the `phi` partial — three `sin_cos`
/// and seven 3x3 products instead of nine and eight.
///
/// Every arithmetic value is identical to what the separate functions
/// compute (the same pure operations on the same inputs, just not
/// repeated), so the returned pair is **bit-identical** to
/// `(h_generic(..), jacobian_generic(..))` on every substrate — pinned
/// by test below.
#[allow(clippy::type_complexity)]
pub fn h_and_jacobian_generic<A: Arith>(
    a: &mut A,
    x: &[A::T; STATE_DIM],
    f_b: &[A::T; 3],
) -> ([A::T; MEAS_DIM], [[A::T; STATE_DIM]; MEAS_DIM]) {
    let zero = a.num(0.0);
    let one = a.num(1.0);
    let (s0, c0) = a.sin_cos(x[0]);
    let (s1, c1) = a.sin_cos(x[1]);
    let (s2, c2) = a.sin_cos(x[2]);
    let (ns0, nc0) = (a.neg(s0), a.neg(c0));
    let (ns1, nc1) = (a.neg(s1), a.neg(c1));
    let (ns2, nc2) = (a.neg(s2), a.neg(c2));
    let cx = [[one, zero, zero], [zero, c0, ns0], [zero, s0, c0]];
    let by = [[c1, zero, s1], [zero, one, zero], [ns1, zero, c1]];
    let az = [[c2, ns2, zero], [s2, c2, zero], [zero, zero, one]];
    let dcx = [[zero, zero, zero], [zero, ns0, nc0], [zero, c0, ns0]];
    let dby = [[ns1, zero, c1], [zero, zero, zero], [nc1, zero, ns1]];
    let daz = [[ns2, nc2, zero], [c2, ns2, zero], [zero, zero, zero]];
    // C_sb = C^T B^T A^T; partials replace one factor by its derivative.
    let ab = smallmat::mul(a, &az, &by);
    let m_phi = smallmat::mul(a, &ab, &dcx);
    let d_phi = smallmat::mat_tvec(a, &m_phi, f_b);
    let adb = smallmat::mul(a, &az, &dby);
    let m_theta = smallmat::mul(a, &adb, &cx);
    let d_theta = smallmat::mat_tvec(a, &m_theta, f_b);
    let db = smallmat::mul(a, &daz, &by);
    let m_psi = smallmat::mul(a, &db, &cx);
    let d_psi = smallmat::mat_tvec(a, &m_psi, f_b);
    // The model itself shares the Rz Ry product with the phi partial.
    let prod = smallmat::mul(a, &ab, &cx);
    let f_s = smallmat::mat_tvec(a, &prod, f_b);
    let h = [a.add(f_s[0], x[3]), a.add(f_s[1], x[4])];
    let mut jac = [[zero; STATE_DIM]; MEAS_DIM];
    for row in 0..MEAS_DIM {
        jac[row][0] = d_phi[row];
        jac[row][1] = d_theta[row];
        jac[row][2] = d_psi[row];
    }
    jac[0][3] = one;
    jac[1][4] = one;
    (h, jac)
}

/// First-order (small-angle) approximation of `h`, used by tests and
/// the fixed-point filter: `z ~ S (f - e x f) + b`.
pub fn h_small_angle(x: &State, f_b: Vec3) -> Meas {
    let e = Vec3::new([x[0], x[1], x[2]]);
    let f_s = f_b - e.cross(&f_b);
    Vector::new([f_s[0] + x[3], f_s[1] + x[4]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathx::{deg_to_rad, EulerAngles, STANDARD_GRAVITY};

    fn state(roll: f64, pitch: f64, yaw: f64, bx: f64, by: f64) -> State {
        Vector::new([deg_to_rad(roll), deg_to_rad(pitch), deg_to_rad(yaw), bx, by])
    }

    #[test]
    fn c_sb_matches_mathx_convention() {
        let x = state(3.0, -2.0, 5.0, 0.0, 0.0);
        let e = EulerAngles::new(x[0], x[1], x[2]);
        let expected = e.dcm().transpose();
        assert!((c_sb(&x) - *expected.matrix()).max_abs() < 1e-14);
    }

    #[test]
    fn zero_state_is_identity() {
        let x = State::zeros();
        let f = Vec3::new([1.0, 2.0, 3.0]);
        let z = h(&x, f);
        assert_eq!(z, Vector::new([1.0, 2.0]));
    }

    #[test]
    fn bias_adds_directly() {
        let x = state(0.0, 0.0, 0.0, 0.05, -0.02);
        let f = Vec3::new([1.0, 2.0, 3.0]);
        let z = h(&x, f);
        assert!((z[0] - 1.05).abs() < 1e-15);
        assert!((z[1] - 1.98).abs() < 1e-15);
    }

    #[test]
    fn jacobian_matches_numerical() {
        let x0 = state(2.0, -1.5, 3.0, 0.01, -0.02);
        let f = Vec3::new([0.8, -0.4, STANDARD_GRAVITY]);
        let jac = jacobian(&x0, f);
        let eps = 1e-7;
        for k in 0..STATE_DIM {
            let mut xp = x0;
            let mut xm = x0;
            xp[k] += eps;
            xm[k] -= eps;
            let num = (h(&xp, f) - h(&xm, f)) / (2.0 * eps);
            for row in 0..MEAS_DIM {
                assert!(
                    (jac[(row, k)] - num[row]).abs() < 1e-6,
                    "d h[{row}]/dx[{k}]: analytic {} numeric {}",
                    jac[(row, k)],
                    num[row]
                );
            }
        }
    }

    #[test]
    fn jacobian_numerical_at_zero() {
        let x0 = State::zeros();
        let f = Vec3::new([0.0, 0.0, STANDARD_GRAVITY]);
        let jac = jacobian(&x0, f);
        // Small-angle theory: z_x ~ -theta*g, z_y ~ +phi*g at level.
        assert!((jac[(0, 1)] + STANDARD_GRAVITY).abs() < 1e-12);
        assert!((jac[(1, 0)] - STANDARD_GRAVITY).abs() < 1e-12);
        // Yaw unobservable when gravity is along z.
        assert!(jac[(0, 2)].abs() < 1e-12);
        assert!(jac[(1, 2)].abs() < 1e-12);
    }

    #[test]
    fn yaw_becomes_observable_with_horizontal_force() {
        let x0 = State::zeros();
        let f = Vec3::new([2.0, 0.0, STANDARD_GRAVITY]); // braking/accelerating
        let jac = jacobian(&x0, f);
        // z_y picks up -psi*f_x.
        assert!((jac[(1, 2)] + 2.0).abs() < 1e-12, "{}", jac[(1, 2)]);
    }

    #[test]
    fn generic_model_is_bit_identical_to_f64_model() {
        use crate::arith::F64Arith;
        let x0 = state(2.0, -1.5, 3.0, 0.01, -0.02);
        let f = Vec3::new([0.8, -0.4, STANDARD_GRAVITY]);
        let mut a = F64Arith::default();
        let xs = *x0.as_array();
        let fb = *f.as_array();
        let hg = h_generic(&mut a, &xs, &fb);
        let hf = h(&x0, f);
        assert_eq!(hg[0].to_bits(), hf[0].to_bits());
        assert_eq!(hg[1].to_bits(), hf[1].to_bits());
        let jg = jacobian_generic(&mut a, &xs, &fb);
        let jf = jacobian(&x0, f);
        for r in 0..MEAS_DIM {
            for c in 0..STATE_DIM {
                assert_eq!(jg[r][c].to_bits(), jf[(r, c)].to_bits(), "({r},{c})");
            }
        }
    }

    #[test]
    fn fused_model_is_bit_identical_to_separate_evaluations() {
        use crate::arith::F64Arith;
        for (roll, pitch, yaw) in [(2.0, -1.5, 3.0), (0.0, 0.0, 0.0), (-4.9, 4.9, 0.3)] {
            let x0 = state(roll, pitch, yaw, 0.013, -0.027);
            let f = Vec3::new([0.8, -0.4, STANDARD_GRAVITY]);
            let mut a = F64Arith::default();
            let xs = *x0.as_array();
            let fb = *f.as_array();
            let (hf, jf) = h_and_jacobian_generic(&mut a, &xs, &fb);
            let hs = h_generic(&mut a, &xs, &fb);
            let js = jacobian_generic(&mut a, &xs, &fb);
            assert_eq!(hf[0].to_bits(), hs[0].to_bits());
            assert_eq!(hf[1].to_bits(), hs[1].to_bits());
            for r in 0..MEAS_DIM {
                for c in 0..STATE_DIM {
                    assert_eq!(jf[r][c].to_bits(), js[r][c].to_bits(), "({r},{c})");
                }
            }
        }
    }

    #[test]
    fn fused_model_spends_one_trig_pass_per_angle() {
        use crate::arith::{Arith as _, F64Arith};
        let x0 = state(2.0, -1.5, 3.0, 0.0, 0.0);
        let f = Vec3::new([0.8, -0.4, STANDARD_GRAVITY]);
        let xs = *x0.as_array();
        let fb = *f.as_array();
        let mut fused = F64Arith::default();
        let _ = h_and_jacobian_generic(&mut fused, &xs, &fb);
        assert_eq!(fused.counts().trig, 3, "one sin_cos per distinct angle");
        let mut separate = F64Arith::default();
        let _ = h_generic(&mut separate, &xs, &fb);
        let _ = jacobian_generic(&mut separate, &xs, &fb);
        assert_eq!(separate.counts().trig, 9);
        assert!(fused.counts().total() < separate.counts().total());
    }

    #[test]
    fn small_angle_model_close_to_exact() {
        let x = state(0.5, -0.4, 0.8, 0.0, 0.0);
        let f = Vec3::new([1.0, -0.5, STANDARD_GRAVITY]);
        let exact = h(&x, f);
        let approx = h_small_angle(&x, f);
        assert!((exact - approx).max_abs() < 2e-3);
    }
}
