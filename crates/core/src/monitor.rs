//! Residual monitoring and adaptive measurement-noise tuning.
//!
//! "The residuals ... were used to help tune the Kalman Filter by
//! selecting a good measurement noise value. ... Since the residuals
//! should only exceed the 3-sigma value about once every 100 samples,
//! the Filter noise was increased." This module implements exactly
//! that loop: a sliding window tracks the fraction of innovations
//! outside their 3-sigma bound, and when the fraction exceeds the
//! target the measurement sigma is scaled up (with an optional slow
//! decay back toward the floor when the residuals are consistently
//! quiet).

use crate::filter::KalmanUpdate;
use mathx::WindowStats;

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Sliding window length, samples.
    pub window: usize,
    /// Acceptable 3-sigma exceedance rate (the paper's 1/100).
    pub target_exceed_rate: f64,
    /// Multiplier applied to sigma when the rate is exceeded.
    pub scale_up: f64,
    /// Multiplier applied when the window is entirely quiet (set to
    /// `1.0` to disable decay, the paper only increased).
    pub scale_down: f64,
    /// Lower bound for the measurement sigma, m/s^2.
    pub sigma_min: f64,
    /// Upper bound for the measurement sigma, m/s^2.
    pub sigma_max: f64,
    /// Minimum samples between retunes (lets the window refill).
    pub holdoff: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            window: 200,
            target_exceed_rate: 0.01,
            scale_up: 1.3,
            scale_down: 1.0,
            sigma_min: 0.003,
            sigma_max: 0.1,
            holdoff: 100,
        }
    }
}

/// A retune decision from the monitor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Retune {
    /// Sample index at which the retune fired.
    pub at_sample: u64,
    /// New measurement sigma to apply.
    pub new_sigma: f64,
    /// Exceedance rate that triggered it.
    pub rate: f64,
}

/// Initial capacity of the retune log (the hold-off keeps real runs
/// far below this; growing past it costs one reallocation, not
/// correctness).
const RETUNE_LOG_CAPACITY: usize = 32;

/// The residual monitor.
///
/// # Examples
///
/// ```
/// use boresight::monitor::{MonitorConfig, ResidualMonitor};
/// let monitor = ResidualMonitor::new(MonitorConfig::default(), 0.007);
/// assert_eq!(monitor.current_sigma(), 0.007);
/// ```
#[derive(Clone, Debug)]
pub struct ResidualMonitor {
    config: MonitorConfig,
    window: WindowStats,
    sigma: f64,
    samples: u64,
    last_retune: u64,
    retunes: Vec<Retune>,
}

impl ResidualMonitor {
    /// Creates a monitor starting from the given measurement sigma.
    pub fn new(config: MonitorConfig, initial_sigma: f64) -> Self {
        Self {
            config,
            window: WindowStats::new(config.window.max(1)),
            sigma: initial_sigma,
            samples: 0,
            last_retune: 0,
            // Pre-sized: the hold-off bounds retunes to a handful per
            // run, so the log never regrows on the update hot path.
            retunes: Vec::with_capacity(RETUNE_LOG_CAPACITY),
        }
    }

    /// The sigma the monitor currently recommends.
    pub fn current_sigma(&self) -> f64 {
        self.sigma
    }

    /// The 3-sigma exceedance rate over the current window.
    pub fn exceed_rate(&self) -> f64 {
        self.window.exceed_rate()
    }

    /// All retunes so far.
    pub fn retunes(&self) -> &[Retune] {
        &self.retunes
    }

    /// Observes one filter update; returns a retune decision when the
    /// exceedance statistics call for one.
    pub fn observe(&mut self, update: &KalmanUpdate) -> Option<Retune> {
        self.samples += 1;
        let magnitude = update.innovation[0].abs().max(update.innovation[1].abs());
        self.window.push(magnitude, update.exceeds_three_sigma());
        if !self.window.is_full() {
            return None;
        }
        if self.samples - self.last_retune < self.config.holdoff as u64 {
            return None;
        }
        let rate = self.window.exceed_rate();
        let new_sigma = if rate > self.config.target_exceed_rate {
            (self.sigma * self.config.scale_up).min(self.config.sigma_max)
        } else if rate == 0.0 && self.config.scale_down < 1.0 {
            (self.sigma * self.config.scale_down).max(self.config.sigma_min)
        } else {
            return None;
        };
        if (new_sigma - self.sigma).abs() < f64::EPSILON {
            return None;
        }
        self.sigma = new_sigma;
        self.last_retune = self.samples;
        let retune = Retune {
            at_sample: self.samples,
            new_sigma,
            rate,
        };
        self.retunes.push(retune);
        Some(retune)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathx::Vec2;

    fn update(innovation: f64, sigma: f64) -> KalmanUpdate {
        KalmanUpdate {
            time_s: 0.0,
            innovation: Vec2::new([innovation, 0.0]),
            innovation_sigma: Vec2::new([sigma, sigma]),
            accepted: true,
        }
    }

    #[test]
    fn quiet_residuals_do_not_retune() {
        let mut mon = ResidualMonitor::new(MonitorConfig::default(), 0.007);
        for _ in 0..1000 {
            assert!(mon.observe(&update(0.005, 0.01)).is_none());
        }
        assert_eq!(mon.current_sigma(), 0.007);
        assert!(mon.retunes().is_empty());
    }

    #[test]
    fn noisy_residuals_scale_sigma_up() {
        let mut mon = ResidualMonitor::new(MonitorConfig::default(), 0.007);
        let mut fired = false;
        for i in 0..1000 {
            // Every 20th sample blows through 3 sigma: 5% >> 1% target.
            let u = if i % 20 == 0 {
                update(0.2, 0.01)
            } else {
                update(0.005, 0.01)
            };
            if mon.observe(&u).is_some() {
                fired = true;
                break;
            }
        }
        assert!(fired);
        assert!(mon.current_sigma() > 0.007);
    }

    #[test]
    fn repeated_retunes_respect_holdoff_and_cap() {
        let cfg = MonitorConfig {
            sigma_max: 0.02,
            ..MonitorConfig::default()
        };
        let mut mon = ResidualMonitor::new(cfg, 0.015);
        let mut count = 0;
        for _ in 0..5000 {
            if mon.observe(&update(1.0, 0.01)).is_some() {
                count += 1;
            }
        }
        assert!(count >= 1);
        assert!(mon.current_sigma() <= 0.02 + 1e-12);
        // Holdoff bounds the retune frequency.
        assert!(count <= 5000 / cfg.holdoff + 1);
    }

    #[test]
    fn decay_when_enabled() {
        let cfg = MonitorConfig {
            scale_down: 0.95,
            sigma_min: 0.003,
            ..MonitorConfig::default()
        };
        let mut mon = ResidualMonitor::new(cfg, 0.02);
        for _ in 0..10_000 {
            mon.observe(&update(0.0001, 0.02));
        }
        assert!(mon.current_sigma() < 0.02);
        assert!(mon.current_sigma() >= 0.003);
    }

    #[test]
    fn rate_reporting() {
        let mut mon = ResidualMonitor::new(MonitorConfig::default(), 0.01);
        for i in 0..200 {
            let u = if i % 10 == 0 {
                update(1.0, 0.01)
            } else {
                update(0.001, 0.01)
            };
            mon.observe(&u);
        }
        assert!(
            (mon.exceed_rate() - 0.1).abs() < 0.02,
            "{}",
            mon.exceed_rate()
        );
    }
}
