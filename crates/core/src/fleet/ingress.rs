//! Bounded per-shard frame ingestion.
//!
//! The shard front end mirrors the comms layer's byte-pool idiom: one
//! preallocated ring of `(slot, event)` frames per shard, filled by
//! polling each vehicle's sensor source one tick forward and drained
//! slot-major by the arena dispatch loop. The queue is **bounded** —
//! when a tick's arrivals would overflow it, vehicles that have not
//! been polled yet are *deferred* (their local clock does not advance,
//! so no data is lost — they fall behind real time and catch up when
//! pressure drops), and a single vehicle's burst that alone overflows
//! the remaining capacity is *dropped* frame by frame. Both outcomes
//! are counted explicitly; steady state enqueues with zero heap
//! allocation.

use crate::session::{SensorEvent, SensorSource};

/// Backpressure and occupancy counters for one shard's ingress queue.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngressStats {
    /// Frames accepted into the queue over the shard's lifetime.
    pub enqueued: u64,
    /// Frames discarded because the queue was full mid-poll (lossy
    /// overflow — the per-vehicle event stream now has a gap).
    pub dropped: u64,
    /// Vehicle-ticks postponed because the queue lacked headroom
    /// (lossless backpressure — the vehicle's clock stalled).
    pub deferred: u64,
    /// Highest queue occupancy ever observed.
    pub high_water: usize,
}

impl IngressStats {
    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &IngressStats) {
        self.enqueued += other.enqueued;
        self.dropped += other.dropped;
        self.deferred += other.deferred;
        self.high_water = self.high_water.max(other.high_water);
    }
}

/// A bounded, preallocated frame queue feeding one shard's dispatch
/// loop.
#[derive(Debug)]
pub(crate) struct IngressQueue {
    buf: Vec<(u32, SensorEvent)>,
    scratch: Vec<SensorEvent>,
    capacity: usize,
    headroom: usize,
    pub(crate) stats: IngressStats,
}

/// Minimum free frames required before polling another vehicle: a
/// vehicle's single catch-up tick rarely produces more than a few
/// DMU + ACC events, so this keeps ordinary polls loss-free.
const POLL_HEADROOM: usize = 8;

impl IngressQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(POLL_HEADROOM);
        Self {
            buf: Vec::with_capacity(capacity),
            scratch: Vec::with_capacity(64),
            capacity,
            headroom: POLL_HEADROOM,
            stats: IngressStats::default(),
        }
    }

    /// `true` when another vehicle may be polled without risking
    /// frame loss on an ordinary tick.
    pub(crate) fn has_headroom(&self) -> bool {
        self.capacity - self.buf.len() >= self.headroom
    }

    /// Polls `source` forward to `t_to` and enqueues what it produced
    /// under `slot`, dropping (and counting) frames past capacity.
    pub(crate) fn poll_from(&mut self, slot: u32, source: &mut dyn SensorSource, t_to: f64) {
        self.scratch.clear();
        source.poll(t_to, &mut self.scratch);
        for &event in &self.scratch {
            if self.buf.len() >= self.capacity {
                self.stats.dropped += 1;
                continue;
            }
            self.buf.push((slot, event));
            self.stats.enqueued += 1;
        }
        self.stats.high_water = self.stats.high_water.max(self.buf.len());
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    /// One queued frame, by arrival index.
    pub(crate) fn frame(&self, i: usize) -> (u32, SensorEvent) {
        self.buf[i]
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A source producing one fixed-size burst per poll.
    struct Burst {
        per_poll: usize,
        t: f64,
    }

    impl SensorSource for Burst {
        fn dt(&self) -> f64 {
            0.005
        }

        fn poll(&mut self, t_to: f64, out: &mut Vec<SensorEvent>) {
            for i in 0..self.per_poll {
                out.push(SensorEvent::Acc {
                    sensor: 0,
                    time_s: self.t + i as f64 * 1e-6,
                    z: mathx::Vec2::zeros(),
                });
            }
            self.t = t_to;
        }
    }

    #[test]
    fn overflow_drops_are_counted_not_silent() {
        let mut q = IngressQueue::new(24);
        let mut src = Burst {
            per_poll: 10,
            t: 0.0,
        };
        q.poll_from(0, &mut src, 0.005);
        assert!(q.has_headroom(), "14 free >= 8 headroom");
        q.poll_from(1, &mut src, 0.005);
        assert!(!q.has_headroom(), "4 free < 8 headroom");
        q.poll_from(2, &mut src, 0.005);
        assert_eq!(q.len(), 24);
        assert_eq!(q.stats.enqueued, 24);
        assert_eq!(q.stats.dropped, 6);
        assert_eq!(q.stats.high_water, 24);
        q.clear();
        assert_eq!(q.len(), 0);
        assert!(q.has_headroom());
    }

    #[test]
    fn frames_keep_arrival_order_and_slot_tags() {
        let mut q = IngressQueue::new(64);
        let mut src = Burst {
            per_poll: 3,
            t: 0.0,
        };
        q.poll_from(7, &mut src, 0.005);
        q.poll_from(9, &mut src, 0.005);
        assert_eq!(q.len(), 6);
        assert_eq!(q.frame(0).0, 7);
        assert_eq!(q.frame(5).0, 9);
    }
}
