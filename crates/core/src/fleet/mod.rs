//! Fleet-scale session serving: thousands of concurrent vehicles
//! multiplexed through one process.
//!
//! The paper's datapath aligns one vehicle's sensors; the production
//! problem is a *fleet* — every vehicle on the road running the same
//! boresight estimator, supervised centrally. This module is that
//! server. A [`Fleet`] owns a set of shards; each shard packs its
//! resident vehicles' filter state into lockstep
//! [`crate::lanes::LaneIekf`] lane groups (structure-of-arrays, `L`
//! *unrelated vehicles* per group — the fleet twist on the lane
//! substrate, which PR 5 used for one vehicle's `L` channels) behind a
//! double-buffered frame-ingestion queue.
//!
//! Scheduling is epoch-based on a **persistent executor**: one
//! [`Fleet::run_epochs`] epoch advances every shard one sensor tick on
//! a cached [`crate::exec::Pool`] whose workers park between epochs —
//! no thread is spawned or joined per epoch, and a steady-state epoch
//! performs zero heap allocations at *any* worker count
//! (`tests/alloc_audit.rs`). Shards are **shard-affine**: each worker
//! owns a deterministic contiguous home range and claims those shards
//! first via a per-shard epoch-stamped atomic (no per-tick mutex),
//! then falls back to stealing unclaimed shards from slower workers.
//! Each claimed shard runs a **pipelined** fused task — drain the
//! primed ingress buffer through the lanes, apply shard-local
//! evictions, then pre-ingest epoch N+1 into the other buffer — so one
//! shard's next-epoch ingest overlaps other shards' compute. The
//! adaptive sideband rides the same pool behind an atomic cursor
//! instead of serializing on the barrier, and every epoch's wall time
//! is attributed phase by phase into an [`EpochProfiler`]
//! ([`Fleet::epoch_profile`]).
//!
//! The contract that makes the fleet trustworthy is **per-vehicle bit
//! identity**: a vehicle admitted from a catalog
//! [`crate::spec::ScenarioSpec`] produces exactly the estimate stream
//! — to the last bit, including gate decisions, retunes and counters —
//! that a standalone scalar [`crate::session::FusionSession`] run of
//! the same spec produces, at any shard count and any worker count
//! (`tests/fleet.rs` pins this for 1000+ vehicles). The fused task
//! keeps every shard's ingest→compute→evict sequence exactly the
//! serial order; only the interleaving *across* shards varies with the
//! schedule, and shards are independent. Vehicles join mid-run
//! ([`Fleet::admit`]), leave on completion, divergence, monitor fault
//! or request ([`EvictionPolicy`], [`Fleet::evict`]), and their slots
//! are recycled allocation-free; directory and eviction-log upkeep
//! stay on the sequential epoch barrier (the control plane keeps its
//! locksteps, the data plane loses its locks).
//!
//! ```
//! use boresight::arith::F64Arith;
//! use boresight::catalog;
//! use boresight::fleet::{Fleet, FleetConfig};
//!
//! let mut fleet: Fleet<F64Arith, 4> = Fleet::new(FleetConfig::default());
//! let mut spec = catalog::paper_static();
//! spec.duration_s = 2.0;
//! let id = fleet.admit(&spec).expect("static tuning is lane-compatible");
//! fleet.run_epochs(100, 1); // 100 ticks at 200 Hz = 0.5 s of stream
//! assert!(fleet.estimate(id).expect("resident").updates > 0);
//! ```

mod arena;
mod ingress;
mod policy;
mod profile;

pub use arena::VehicleStats;
pub use ingress::IngressStats;
pub use policy::{AdmitError, EvictReason, EvictionPolicy};
pub use profile::{EpochProfile, EpochProfiler, EpochSample, PhaseStats, DEFAULT_PROFILE_WINDOW};

use crate::adaptive::{AdaptiveBackend, ReconfigLedger, ReconfigPolicy, SubstrateId};
use crate::arith::LaneSpec;
use crate::estimator::MisalignmentEstimate;
use crate::exec::{self, SyncCell};
use crate::filter::FilterConfig;
use crate::report::VehicleSummary;
use crate::session::{FusionBackend, FusionSession};
use crate::spec::ScenarioSpec;
use arena::Shard;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// A fleet-unique vehicle handle, stable across slot compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VehicleId(pub u64);

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Fleet server configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of shards (parallelism grain; vehicle results do not
    /// depend on it).
    pub shards: usize,
    /// Epoch tick, seconds of stream time per epoch (the paper's
    /// 200 Hz ACC rate makes 5 ms the natural grain).
    pub tick_dt: f64,
    /// Per-shard ingress queue capacity, frames (each shard carries
    /// two buffers of this capacity for the ingest/compute pipeline).
    pub ingress_capacity: usize,
    /// The filter tuning every lane group shares. Admission accepts
    /// any scenario whose tuning differs only in measurement sigma
    /// (the one per-lane parameter).
    pub filter: FilterConfig,
    /// When the arena evicts vehicles on its own.
    pub eviction: EvictionPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            tick_dt: 0.005,
            ingress_capacity: 4096,
            filter: FilterConfig::paper_static(),
            eviction: EvictionPolicy::default(),
        }
    }
}

/// One entry of the fleet's eviction log.
#[derive(Clone, Debug)]
pub struct EvictedVehicle {
    /// The vehicle's fleet handle.
    pub id: VehicleId,
    /// The scenario it was admitted from.
    pub scenario: String,
    /// Why it left.
    pub reason: EvictReason,
    /// Its summary at eviction time.
    pub summary: VehicleSummary,
}

/// Aggregate fleet counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetStats {
    /// Vehicles currently resident.
    pub vehicles: usize,
    /// Epochs run so far.
    pub epoch: u64,
    /// Events dispatched across all resident vehicles.
    pub events: u64,
    /// Measurement updates returned across all resident vehicles.
    pub updates: u64,
    /// Updates beyond 3 sigma across all resident vehicles.
    pub exceeded: u64,
    /// Adaptive retunes fired across all resident vehicles.
    pub retunes: u64,
    /// ACC frames dropped before the first DMU, across all residents.
    pub dropped_no_imu: u64,
    /// Vehicles evicted over the fleet's lifetime (any reason).
    pub evicted: usize,
    /// Range-saturation events across resident adaptive vehicles
    /// (lane vehicles share one substrate context and cannot
    /// attribute saturations per vehicle).
    pub saturations: u64,
    /// Substrate reconfigurations across resident adaptive vehicles.
    pub substrate_switches: u64,
    /// Merged ingress backpressure counters.
    pub ingress: IngressStats,
}

/// One vehicle of the adaptive sideband: a full scalar
/// [`FusionSession`] under an [`AdaptiveBackend`], advanced on the
/// same epoch clock as the lane shards but outside the lane arenas
/// (a reconfiguring substrate cannot share a lockstep lane group).
struct AdaptiveVehicle {
    id: VehicleId,
    scenario: String,
    session: FusionSession,
    duration_s: f64,
    clock: f64,
}

/// One shard plus its epoch-claim word, padded onto its own cache
/// lines so neighbouring shards' claim CAS traffic and hot slot
/// counters never false-share.
#[repr(align(128))]
struct ShardCell<A: LaneSpec<L>, const L: usize> {
    /// Epoch stamp of the shard's last claimed task. A worker owns the
    /// shard for the epoch stamped `e` iff its compare-exchange takes
    /// this from `< e` to `e` — monotonic stamps mean no reset pass
    /// between epochs, and the home/steal distinction is purely who
    /// wins the race.
    claim: AtomicU64,
    shard: SyncCell<Shard<A, L>>,
}

impl<A: LaneSpec<L>, const L: usize> ShardCell<A, L> {
    /// Claims this shard for the epoch stamped `stamp`; `true` means
    /// the caller owns the shard exclusively until the epoch barrier.
    fn try_claim(&self, stamp: u64) -> bool {
        let cur = self.claim.load(Ordering::Relaxed);
        cur < stamp
            && self
                .claim
                .compare_exchange(cur, stamp, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }
}

/// One worker's phase-time scratch for the epoch in flight,
/// cache-line-padded against false sharing (workers write their lap
/// concurrently).
#[derive(Clone, Copy, Debug, Default)]
struct WorkerLap {
    ingest_us: f64,
    compute_us: f64,
    sideband_us: f64,
    steal_us: f64,
    steals: u64,
}

#[repr(align(128))]
struct WorkerLapCell(SyncCell<WorkerLap>);

impl Default for WorkerLapCell {
    fn default() -> Self {
        Self(SyncCell::new(WorkerLap::default()))
    }
}

fn us_between(start: Instant, end: Instant) -> f64 {
    end.duration_since(start).as_secs_f64() * 1e6
}

/// Runs one shard's fused epoch task: drain the primed ingress buffer
/// through the lanes, apply shard-local evictions, then (unless this
/// is the run's final epoch) pre-ingest the next epoch into the other
/// buffer. The per-shard sequence is exactly the serial order — the
/// pipeline overlap comes from *other* shards computing while this one
/// ingests ahead.
fn run_shard_epoch<A: LaneSpec<L> + Clone + Default, const L: usize>(
    shard: &mut Shard<A, L>,
    ingest_next: bool,
    lap: &mut WorkerLap,
    stolen: bool,
) {
    let t0 = Instant::now();
    if !shard.is_primed() {
        // First epoch of a run (or a post-admission epoch): nothing
        // was pre-ingested, poll sources now.
        shard.ingest();
    }
    let t1 = Instant::now();
    shard.compute();
    shard.apply_evictions();
    let t2 = Instant::now();
    if ingest_next {
        shard.ingest();
    }
    let t3 = Instant::now();
    if stolen {
        // Stolen shards price the fallback, not the phase: the whole
        // task lands in the steal bucket.
        lap.steal_us += us_between(t0, t3);
        lap.steals += 1;
    } else {
        lap.ingest_us += us_between(t0, t1) + us_between(t2, t3);
        lap.compute_us += us_between(t1, t2);
    }
}

/// The fleet session server: vehicle directory, shard set and epoch
/// scheduler. See the [module docs](self) for the architecture.
pub struct Fleet<A: LaneSpec<L> + Clone + Default, const L: usize = 8> {
    config: FleetConfig,
    shards: Vec<ShardCell<A, L>>,
    /// vehicle id → (shard, slot); slots move on compaction, the
    /// directory is the source of truth. Control plane: touched only
    /// on the epoch barrier and in admission/eviction calls.
    directory: HashMap<u64, (u32, u32)>,
    /// The adaptive sideband: per-vehicle scalar sessions whose
    /// substrate reconfigures mid-run. Each cell is claimed by exactly
    /// one worker per epoch via an atomic cursor.
    adaptive: Vec<SyncCell<AdaptiveVehicle>>,
    /// vehicle id → index into `adaptive` (indices move on
    /// swap-remove retirement).
    adaptive_index: HashMap<u64, usize>,
    /// The cached persistent executor, rebuilt only when the requested
    /// worker count changes (a warm-up event, never steady state).
    pool: Option<exec::Pool>,
    /// Per-worker phase-time scratch, grown to the widest worker count
    /// seen (warm-up only).
    laps: Vec<WorkerLapCell>,
    profiler: EpochProfiler,
    next_id: u64,
    epoch: u64,
    completed: Vec<EvictedVehicle>,
}

/// The native-`f64` fleet with the default lane width.
pub type F64Fleet = Fleet<crate::arith::F64Arith, 8>;

impl<A: LaneSpec<L> + Clone + Default, const L: usize> Fleet<A, L> {
    /// Creates an empty fleet.
    pub fn new(config: FleetConfig) -> Self {
        let shard_count = config.shards.max(1);
        Self {
            shards: (0..shard_count)
                .map(|_| ShardCell {
                    claim: AtomicU64::new(0),
                    shard: SyncCell::new(Shard::new(&config)),
                })
                .collect(),
            config,
            directory: HashMap::new(),
            adaptive: Vec::new(),
            adaptive_index: HashMap::new(),
            pool: None,
            laps: Vec::new(),
            profiler: EpochProfiler::default(),
            next_id: 0,
            epoch: 0,
            completed: Vec::new(),
        }
    }

    /// The configuration the fleet was built with.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    fn shard_ref(&self, i: usize) -> &Shard<A, L> {
        // SAFETY: every `&self` accessor is serialized against
        // `run_epochs*` by the borrow checker (those take `&mut
        // self`), so no worker holds the cell while we read it.
        unsafe { &*self.shards[i].shard.get() }
    }

    fn shard_mut(&mut self, i: usize) -> &mut Shard<A, L> {
        self.shards[i].shard.get_mut()
    }

    /// Admits a vehicle running `spec`, joining the fleet mid-run at
    /// the current epoch with its stream at local time zero. The
    /// least-loaded shard (ties to the lowest index) receives it, so
    /// placement is deterministic in admission order.
    ///
    /// The spec's substrate field is ignored — the fleet's `A`
    /// parameter is the substrate authority — but its filter tuning
    /// must match the fleet's shared lane configuration in everything
    /// except measurement sigma.
    pub fn admit(&mut self, spec: &ScenarioSpec) -> Result<VehicleId, AdmitError> {
        let tuning = spec.tuning.estimator_config().filter;
        if !lane_compatible(&self.config.filter, &tuning) {
            return Err(AdmitError::IncompatibleTuning {
                scenario: spec.name.clone(),
            });
        }
        let mut best = 0;
        let mut best_load = usize::MAX;
        for i in 0..self.shards.len() {
            let load = self.shard_ref(i).occupied();
            if load < best_load {
                best = i;
                best_load = load;
            }
        }
        let id = VehicleId(self.next_id);
        self.next_id += 1;
        let slot = self.shard_mut(best).admit(id, spec);
        self.directory.insert(id.0, (best as u32, slot as u32));
        Ok(id)
    }

    /// Admits a vehicle on the adaptive sideband: a scalar session
    /// whose [`AdaptiveBackend`] starts on `initial` and reconfigures
    /// under `policy`, sharing the fleet's epoch clock but not the
    /// lockstep lane groups (so no lane-compatibility constraint
    /// applies — the sideband is per-vehicle).
    pub fn admit_adaptive(
        &mut self,
        spec: &ScenarioSpec,
        initial: SubstrateId,
        policy: Box<dyn ReconfigPolicy>,
    ) -> VehicleId {
        let id = VehicleId(self.next_id);
        self.next_id += 1;
        let session = spec.into_adaptive_session(spec.lower_trajectory(), initial, policy);
        self.adaptive_index.insert(id.0, self.adaptive.len());
        self.adaptive.push(SyncCell::new(AdaptiveVehicle {
            id,
            scenario: spec.name.clone(),
            session,
            duration_s: spec.duration_s,
            clock: 0.0,
        }));
        id
    }

    /// Evicts a vehicle now (reason [`EvictReason::Requested`]),
    /// returning its final summary. `None` for unknown ids.
    pub fn evict(&mut self, id: VehicleId) -> Option<VehicleSummary> {
        if let Some(&idx) = self.adaptive_index.get(&id.0) {
            return Some(self.retire_adaptive(idx, EvictReason::Requested));
        }
        let (shard, slot) = *self.directory.get(&id.0)?;
        let shard = self.shard_mut(shard as usize);
        shard.queue_eviction(slot as usize, EvictReason::Requested);
        shard.apply_evictions();
        self.collect_eviction_records();
        self.completed
            .iter()
            .rev()
            .find(|c| c.id == id)
            .map(|c| c.summary.clone())
    }

    /// Runs `epochs` epochs; each advances every shard one sensor tick
    /// (`tick_dt` of stream time per resident vehicle) on the fleet's
    /// cached persistent [`exec::Pool`] (`workers` `0` = one per core,
    /// `1` = inline with no thread machinery). The pool is built once
    /// and reused across calls; changing the worker count rebuilds it.
    /// Vehicle results are bit-identical at any worker count — shards
    /// are independent, each shard's fused epoch task preserves the
    /// serial ingest→compute→evict order, and directory/log upkeep
    /// stays on the sequential epoch barrier.
    pub fn run_epochs(&mut self, epochs: usize, workers: usize) {
        let n = self.shards.len();
        let workers = exec::resolve_workers(workers).clamp(1, n.max(1));
        if workers <= 1 {
            for e in 0..epochs {
                self.run_epoch_inline(e + 1 < epochs);
            }
            return;
        }
        if self.pool.as_ref().map(exec::Pool::workers) != Some(workers) {
            self.pool = Some(exec::Pool::new(workers));
        }
        let pool = self.pool.take().expect("pool cached above");
        for e in 0..epochs {
            self.run_epoch_pooled(&pool, e + 1 < epochs);
        }
        self.pool = Some(pool);
    }

    /// [`Fleet::run_epochs`] on a caller-owned pool — the form a host
    /// serving several fleets wants, one warm pool amortized across
    /// all of them. A one-worker pool runs inline.
    pub fn run_epochs_on(&mut self, epochs: usize, pool: &exec::Pool) {
        if pool.workers() <= 1 {
            for e in 0..epochs {
                self.run_epoch_inline(e + 1 < epochs);
            }
            return;
        }
        for e in 0..epochs {
            self.run_epoch_pooled(pool, e + 1 < epochs);
        }
    }

    /// One epoch, no thread machinery: the caller walks every shard
    /// and the sideband itself. Phase times still land in the profiler
    /// with the same attribution as the pooled path.
    fn run_epoch_inline(&mut self, ingest_next: bool) {
        let epoch_start = Instant::now();
        let mut lap = WorkerLap::default();
        for cell in &mut self.shards {
            run_shard_epoch(cell.shard.get_mut(), ingest_next, &mut lap, false);
        }
        let tick_dt = self.config.tick_dt;
        for cell in &mut self.adaptive {
            let t = Instant::now();
            let vehicle = cell.get_mut();
            vehicle.session.run_for(tick_dt);
            vehicle.clock += tick_dt;
            lap.sideband_us += us_between(t, Instant::now());
        }
        self.epoch += 1;
        self.finish_epoch(epoch_start, lap, 1);
    }

    /// One epoch fanned over the pool. Every worker first sweeps its
    /// contiguous home range of shards, then steals any shard still
    /// unclaimed, then pulls sideband vehicles off the shared cursor;
    /// the pool's barrier ends the epoch.
    fn run_epoch_pooled(&mut self, pool: &exec::Pool, ingest_next: bool) {
        let workers = pool.workers();
        while self.laps.len() < workers {
            self.laps.push(WorkerLapCell::default());
        }
        let epoch_start = Instant::now();
        // The claim stamp must exceed every stamp already in the
        // cells; the epoch counter is monotonic, so `epoch + 1` is.
        let stamp = self.epoch + 1;
        let n = self.shards.len();
        let tick_dt = self.config.tick_dt;
        {
            let shards = &self.shards;
            let adaptive = &self.adaptive;
            let laps = &self.laps;
            let sideband_cursor = AtomicUsize::new(0);
            pool.run_epoch(|w| {
                // SAFETY: lap slot `w` is touched only by worker `w`.
                let lap = unsafe { &mut *laps[w].0.get() };
                *lap = WorkerLap::default();
                let lo = n * w / workers;
                let hi = n * (w + 1) / workers;
                for cell in &shards[lo..hi] {
                    if cell.try_claim(stamp) {
                        // SAFETY: a won claim is exclusive ownership
                        // of the shard until the epoch barrier.
                        let shard = unsafe { &mut *cell.shard.get() };
                        run_shard_epoch(shard, ingest_next, lap, false);
                    }
                }
                // Work-stealing fallback: sweep the other workers'
                // homes for shards nobody has reached yet.
                for s in (hi..n).chain(0..lo) {
                    if shards[s].try_claim(stamp) {
                        // SAFETY: as above — the claim is exclusive.
                        let shard = unsafe { &mut *shards[s].shard.get() };
                        run_shard_epoch(shard, ingest_next, lap, true);
                    }
                }
                // The adaptive sideband rides the same pool:
                // independent scalar sessions handed out one at a
                // time by the cursor.
                loop {
                    let i = sideband_cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= adaptive.len() {
                        break;
                    }
                    let t = Instant::now();
                    // SAFETY: the cursor hands vehicle `i` to exactly
                    // one worker.
                    let vehicle = unsafe { &mut *adaptive[i].get() };
                    vehicle.session.run_for(tick_dt);
                    vehicle.clock += tick_dt;
                    lap.sideband_us += us_between(t, Instant::now());
                }
            });
        }
        self.epoch += 1;
        let mut lap = WorkerLap::default();
        for cell in &mut self.laps[..workers] {
            let worker_lap = cell.0.get_mut();
            lap.ingest_us += worker_lap.ingest_us;
            lap.compute_us += worker_lap.compute_us;
            lap.sideband_us += worker_lap.sideband_us;
            lap.steal_us += worker_lap.steal_us;
            lap.steals += worker_lap.steals;
        }
        self.finish_epoch(epoch_start, lap, workers);
    }

    /// The sequential epoch barrier: directory/log upkeep for the
    /// epoch's evictions and sideband completions, then the epoch's
    /// profile sample. Wall time is measured across the whole epoch
    /// including this control plane, so barrier attribution is honest.
    fn finish_epoch(&mut self, epoch_start: Instant, lap: WorkerLap, workers: usize) {
        self.collect_eviction_records();
        self.drain_adaptive_completed();
        let wall_us = us_between(epoch_start, Instant::now());
        let busy = lap.ingest_us + lap.compute_us + lap.sideband_us + lap.steal_us;
        self.profiler.record(EpochSample {
            wall_us,
            ingest_us: lap.ingest_us,
            compute_us: lap.compute_us,
            sideband_us: lap.sideband_us,
            steal_us: lap.steal_us,
            barrier_us: (wall_us * workers as f64 - busy).max(0.0),
            steals: lap.steals,
            workers: workers as u32,
        });
    }

    /// The aggregated scheduling profile over the retained epoch
    /// window (`None` before the first epoch).
    pub fn epoch_profile(&self) -> Option<EpochProfile> {
        self.profiler.profile()
    }

    /// The retained per-epoch samples (ring order, not chronological
    /// once the window wraps).
    pub fn epoch_samples(&self) -> &[EpochSample] {
        self.profiler.samples()
    }

    /// Forgets the profiled window (keeps its allocation) — call
    /// between warm-up and measurement so the profile covers only the
    /// timed epochs.
    pub fn reset_epoch_profile(&mut self) {
        self.profiler.reset();
    }

    /// Retires every sideband vehicle whose stream has run out.
    fn drain_adaptive_completed(&mut self) {
        let mut idx = 0;
        while idx < self.adaptive.len() {
            let vehicle = self.adaptive[idx].get_mut();
            if vehicle.clock >= vehicle.duration_s {
                self.retire_adaptive(idx, EvictReason::Completed);
            } else {
                idx += 1;
            }
        }
    }

    /// Removes sideband vehicle `idx`, logs it to the eviction log and
    /// returns its final summary (swap-remove; the moved vehicle's
    /// directory entry is patched).
    fn retire_adaptive(&mut self, idx: usize, reason: EvictReason) -> VehicleSummary {
        let vehicle = self.adaptive.swap_remove(idx).into_inner();
        self.adaptive_index.remove(&vehicle.id.0);
        if let Some(moved) = self.adaptive.get_mut(idx) {
            let moved_id = moved.get_mut().id;
            self.adaptive_index.insert(moved_id.0, idx);
        }
        let session = vehicle.session;
        let (switches, saturations) = session
            .backend_as::<AdaptiveBackend>()
            .map_or((0, 0), |b| (b.switch_count(), b.total_saturations()));
        let stream = session.stream_stats();
        let result = session.into_result();
        let summary = VehicleSummary::from_result(&result, saturations, stream)
            .with_substrate_switches(switches);
        self.completed.push(EvictedVehicle {
            id: vehicle.id,
            scenario: vehicle.scenario,
            reason,
            summary: summary.clone(),
        });
        summary
    }

    /// Drains every shard's eviction records (filled shard-locally by
    /// the workers) into the directory and the eviction log, in shard
    /// order — the same completed-log order the serial scheduler
    /// produced.
    fn collect_eviction_records(&mut self) {
        let Self {
            shards,
            directory,
            completed,
            ..
        } = self;
        for (si, cell) in shards.iter_mut().enumerate() {
            let shard = cell.shard.get_mut();
            if !shard.has_records() {
                continue;
            }
            shard.drain_records(|record| {
                directory.remove(&record.id.0);
                if let Some((moved_id, new_slot)) = record.moved {
                    directory.insert(moved_id.0, (si as u32, new_slot));
                }
                completed.push(EvictedVehicle {
                    id: record.id,
                    scenario: record.scenario,
                    reason: record.reason,
                    summary: record.summary,
                });
            });
        }
    }

    /// Vehicles currently resident (lane arenas plus the adaptive
    /// sideband).
    pub fn len(&self) -> usize {
        self.directory.len() + self.adaptive.len()
    }

    /// `true` when no vehicles are resident.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty() && self.adaptive.is_empty()
    }

    /// Sideband vehicles currently resident.
    pub fn adaptive_len(&self) -> usize {
        self.adaptive.len()
    }

    fn adaptive_vehicle(&self, id: VehicleId) -> Option<&AdaptiveVehicle> {
        // SAFETY: `&self` accessors are serialized against
        // `run_epochs*` (which take `&mut self`); no worker holds the
        // cell here.
        self.adaptive_index
            .get(&id.0)
            .map(|&i| unsafe { &*self.adaptive[i].get() })
    }

    /// A resident sideband vehicle's reconfiguration ledger.
    pub fn adaptive_ledger(&self, id: VehicleId) -> Option<&ReconfigLedger> {
        self.adaptive_vehicle(id).and_then(|v| {
            v.session
                .backend_as::<AdaptiveBackend>()
                .map(|b| b.ledger())
        })
    }

    /// A resident sideband vehicle's currently active substrate.
    pub fn adaptive_substrate(&self, id: VehicleId) -> Option<SubstrateId> {
        self.adaptive_vehicle(id).and_then(|v| {
            v.session
                .backend_as::<AdaptiveBackend>()
                .map(|b| b.active_substrate())
        })
    }

    /// Epochs run so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Where a vehicle currently lives: `(shard, slot)`. Slots move on
    /// compaction; ids never do.
    pub fn placement(&self, id: VehicleId) -> Option<(usize, usize)> {
        self.directory
            .get(&id.0)
            .map(|&(s, i)| (s as usize, i as usize))
    }

    fn with_slot<R>(
        &self,
        id: VehicleId,
        read: impl FnOnce(&Shard<A, L>, usize) -> R,
    ) -> Option<R> {
        let (shard, slot) = *self.directory.get(&id.0)?;
        Some(read(self.shard_ref(shard as usize), slot as usize))
    }

    /// A resident vehicle's current estimate with confidence.
    pub fn estimate(&self, id: VehicleId) -> Option<MisalignmentEstimate> {
        if let Some(vehicle) = self.adaptive_vehicle(id) {
            return Some(vehicle.session.estimate());
        }
        self.with_slot(id, |shard, slot| shard.estimate_of(slot))
    }

    /// A resident vehicle's report-shaped summary, as of now.
    pub fn summary(&self, id: VehicleId) -> Option<VehicleSummary> {
        self.with_slot(id, |shard, slot| shard.summary_of(slot))
    }

    /// A resident vehicle's event counters.
    pub fn vehicle_stats(&self, id: VehicleId) -> Option<VehicleStats> {
        self.with_slot(id, |shard, slot| shard.vehicle_stats_of(slot))
    }

    /// A resident vehicle's current (possibly retuned) measurement
    /// sigma.
    pub fn measurement_sigma(&self, id: VehicleId) -> Option<f64> {
        self.with_slot(id, |shard, slot| shard.measurement_sigma_of(slot))
    }

    /// A resident vehicle's adaptive retune count.
    pub fn retune_count(&self, id: VehicleId) -> Option<u64> {
        self.with_slot(id, |shard, slot| shard.retunes_of(slot))
    }

    /// A resident vehicle's local stream time, seconds (stalls under
    /// ingress backpressure).
    pub fn local_time(&self, id: VehicleId) -> Option<f64> {
        if let Some(vehicle) = self.adaptive_vehicle(id) {
            return Some(vehicle.clock);
        }
        self.with_slot(id, |shard, slot| shard.local_time_of(slot))
    }

    /// Every resident vehicle's id, in shard/slot order, the adaptive
    /// sideband last.
    pub fn resident_ids(&self) -> Vec<VehicleId> {
        let mut out = Vec::with_capacity(self.directory.len() + self.adaptive.len());
        for i in 0..self.shards.len() {
            let shard = self.shard_ref(i);
            for slot in 0..shard.occupied() {
                out.push(shard.id_of(slot));
            }
        }
        for i in 0..self.adaptive.len() {
            // SAFETY: `&self` accessor, no epoch in flight (see
            // `shard_ref`).
            out.push(unsafe { &*self.adaptive[i].get() }.id);
        }
        out
    }

    /// The eviction log, in eviction order.
    pub fn completed(&self) -> &[EvictedVehicle] {
        &self.completed
    }

    /// Aggregate counters across shards and residents (including the
    /// adaptive sideband).
    pub fn stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            vehicles: self.directory.len() + self.adaptive.len(),
            epoch: self.epoch,
            evicted: self.completed.len(),
            ..FleetStats::default()
        };
        for i in 0..self.shards.len() {
            let shard = self.shard_ref(i);
            shard.fold_stats(
                &mut stats.events,
                &mut stats.updates,
                &mut stats.exceeded,
                &mut stats.retunes,
                &mut stats.dropped_no_imu,
            );
            stats.ingress.merge(&shard.ingress_stats());
        }
        for i in 0..self.adaptive.len() {
            // SAFETY: `&self` accessor, no epoch in flight (see
            // `shard_ref`).
            let vehicle = unsafe { &*self.adaptive[i].get() };
            let s = vehicle.session.stats();
            stats.events += s.events;
            stats.updates += s.updates;
            stats.exceeded += s.exceeded;
            stats.saturations += s.saturations;
            if let Some(backend) = vehicle.session.backend_as::<AdaptiveBackend>() {
                stats.retunes += backend.retunes().len() as u64;
                stats.substrate_switches += backend.switch_count();
            }
        }
        stats
    }

    /// Arena-resident bytes per vehicle (slot record + lane-group
    /// share + staging cell; excludes the boxed per-vehicle source).
    pub fn bytes_per_vehicle() -> usize {
        arena::arena_bytes_per_vehicle::<A, L>()
    }
}

/// Whether a scenario's filter tuning can share the fleet's lane
/// groups: everything but the per-lane measurement sigma must match.
fn lane_compatible(fleet: &FilterConfig, spec: &FilterConfig) -> bool {
    fleet.initial_angle_sigma == spec.initial_angle_sigma
        && fleet.initial_bias_sigma == spec.initial_bias_sigma
        && fleet.angle_process_density == spec.angle_process_density
        && fleet.bias_process_density == spec.bias_process_density
        && fleet.estimate_bias == spec.estimate_bias
        && fleet.gate_sigmas == spec.gate_sigmas
        && fleet.angle_limit == spec.angle_limit
        && fleet.bias_limit == spec.bias_limit
        && fleet.iekf_iterations == spec.iekf_iterations
}
