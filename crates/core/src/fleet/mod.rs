//! Fleet-scale session serving: thousands of concurrent vehicles
//! multiplexed through one process.
//!
//! The paper's datapath aligns one vehicle's sensors; the production
//! problem is a *fleet* — every vehicle on the road running the same
//! boresight estimator, supervised centrally. This module is that
//! server. A [`Fleet`] owns a set of shards; each shard packs its
//! resident vehicles' filter state into lockstep
//! [`crate::lanes::LaneIekf`] lane groups (structure-of-arrays, `L`
//! *unrelated vehicles* per group — the fleet twist on the lane
//! substrate, which PR 5 used for one vehicle's `L` channels) behind a
//! bounded frame-ingestion queue. Scheduling is epoch-based: one
//! [`Fleet::run_epochs`] epoch advances every shard one sensor tick,
//! fanned out over the [`crate::exec`] work-stealing pool.
//!
//! The contract that makes the fleet trustworthy is **per-vehicle bit
//! identity**: a vehicle admitted from a catalog
//! [`crate::spec::ScenarioSpec`] produces exactly the estimate stream
//! — to the last bit, including gate decisions, retunes and counters —
//! that a standalone scalar [`crate::session::FusionSession`] run of
//! the same spec produces, at any shard count and any worker count
//! (`tests/fleet.rs` pins this for 1000+ vehicles). Vehicles join
//! mid-run ([`Fleet::admit`]), leave on completion, divergence,
//! monitor fault or request ([`EvictionPolicy`], [`Fleet::evict`]),
//! and their slots are recycled allocation-free; a steady-state epoch
//! performs zero heap allocations (`tests/alloc_audit.rs`).
//!
//! ```
//! use boresight::arith::F64Arith;
//! use boresight::catalog;
//! use boresight::fleet::{Fleet, FleetConfig};
//!
//! let mut fleet: Fleet<F64Arith, 4> = Fleet::new(FleetConfig::default());
//! let mut spec = catalog::paper_static();
//! spec.duration_s = 2.0;
//! let id = fleet.admit(&spec).expect("static tuning is lane-compatible");
//! fleet.run_epochs(100, 1); // 100 ticks at 200 Hz = 0.5 s of stream
//! assert!(fleet.estimate(id).expect("resident").updates > 0);
//! ```

mod arena;
mod ingress;
mod policy;

pub use arena::VehicleStats;
pub use ingress::IngressStats;
pub use policy::{AdmitError, EvictReason, EvictionPolicy};

use crate::adaptive::{AdaptiveBackend, ReconfigLedger, ReconfigPolicy, SubstrateId};
use crate::arith::LaneSpec;
use crate::estimator::MisalignmentEstimate;
use crate::exec;
use crate::filter::FilterConfig;
use crate::report::VehicleSummary;
use crate::session::{FusionBackend, FusionSession};
use crate::spec::ScenarioSpec;
use arena::Shard;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// A fleet-unique vehicle handle, stable across slot compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VehicleId(pub u64);

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Fleet server configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of shards (parallelism grain; vehicle results do not
    /// depend on it).
    pub shards: usize,
    /// Epoch tick, seconds of stream time per epoch (the paper's
    /// 200 Hz ACC rate makes 5 ms the natural grain).
    pub tick_dt: f64,
    /// Per-shard ingress queue capacity, frames.
    pub ingress_capacity: usize,
    /// The filter tuning every lane group shares. Admission accepts
    /// any scenario whose tuning differs only in measurement sigma
    /// (the one per-lane parameter).
    pub filter: FilterConfig,
    /// When the arena evicts vehicles on its own.
    pub eviction: EvictionPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            tick_dt: 0.005,
            ingress_capacity: 4096,
            filter: FilterConfig::paper_static(),
            eviction: EvictionPolicy::default(),
        }
    }
}

/// One entry of the fleet's eviction log.
#[derive(Clone, Debug)]
pub struct EvictedVehicle {
    /// The vehicle's fleet handle.
    pub id: VehicleId,
    /// The scenario it was admitted from.
    pub scenario: String,
    /// Why it left.
    pub reason: EvictReason,
    /// Its summary at eviction time.
    pub summary: VehicleSummary,
}

/// Aggregate fleet counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetStats {
    /// Vehicles currently resident.
    pub vehicles: usize,
    /// Epochs run so far.
    pub epoch: u64,
    /// Events dispatched across all resident vehicles.
    pub events: u64,
    /// Measurement updates returned across all resident vehicles.
    pub updates: u64,
    /// Updates beyond 3 sigma across all resident vehicles.
    pub exceeded: u64,
    /// Adaptive retunes fired across all resident vehicles.
    pub retunes: u64,
    /// ACC frames dropped before the first DMU, across all residents.
    pub dropped_no_imu: u64,
    /// Vehicles evicted over the fleet's lifetime (any reason).
    pub evicted: usize,
    /// Range-saturation events across resident adaptive vehicles
    /// (lane vehicles share one substrate context and cannot
    /// attribute saturations per vehicle).
    pub saturations: u64,
    /// Substrate reconfigurations across resident adaptive vehicles.
    pub substrate_switches: u64,
    /// Merged ingress backpressure counters.
    pub ingress: IngressStats,
}

/// One vehicle of the adaptive sideband: a full scalar
/// [`FusionSession`] under an [`AdaptiveBackend`], advanced on the
/// same epoch clock as the lane shards but outside the lane arenas
/// (a reconfiguring substrate cannot share a lockstep lane group).
struct AdaptiveVehicle {
    id: VehicleId,
    scenario: String,
    session: FusionSession,
    duration_s: f64,
    clock: f64,
}

/// The fleet session server: vehicle directory, shard set and epoch
/// scheduler. See the [module docs](self) for the architecture.
pub struct Fleet<A: LaneSpec<L> + Clone + Default, const L: usize = 8> {
    config: FleetConfig,
    shards: Vec<Mutex<Shard<A, L>>>,
    /// vehicle id → (shard, slot); slots move on compaction, the
    /// directory is the source of truth.
    directory: HashMap<u64, (u32, u32)>,
    /// The adaptive sideband: per-vehicle scalar sessions whose
    /// substrate reconfigures mid-run.
    adaptive: Vec<AdaptiveVehicle>,
    /// vehicle id → index into `adaptive` (indices move on
    /// swap-remove retirement).
    adaptive_index: HashMap<u64, usize>,
    next_id: u64,
    epoch: u64,
    completed: Vec<EvictedVehicle>,
}

/// The native-`f64` fleet with the default lane width.
pub type F64Fleet = Fleet<crate::arith::F64Arith, 8>;

impl<A: LaneSpec<L> + Clone + Default, const L: usize> Fleet<A, L> {
    /// Creates an empty fleet.
    pub fn new(config: FleetConfig) -> Self {
        let shard_count = config.shards.max(1);
        Self {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::new(&config)))
                .collect(),
            config,
            directory: HashMap::new(),
            adaptive: Vec::new(),
            adaptive_index: HashMap::new(),
            next_id: 0,
            epoch: 0,
            completed: Vec::new(),
        }
    }

    /// The configuration the fleet was built with.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Admits a vehicle running `spec`, joining the fleet mid-run at
    /// the current epoch with its stream at local time zero. The
    /// least-loaded shard (ties to the lowest index) receives it, so
    /// placement is deterministic in admission order.
    ///
    /// The spec's substrate field is ignored — the fleet's `A`
    /// parameter is the substrate authority — but its filter tuning
    /// must match the fleet's shared lane configuration in everything
    /// except measurement sigma.
    pub fn admit(&mut self, spec: &ScenarioSpec) -> Result<VehicleId, AdmitError> {
        let tuning = spec.tuning.estimator_config().filter;
        if !lane_compatible(&self.config.filter, &tuning) {
            return Err(AdmitError::IncompatibleTuning {
                scenario: spec.name.clone(),
            });
        }
        let mut best = 0;
        let mut best_load = usize::MAX;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let load = shard.get_mut().expect("shard lock").occupied();
            if load < best_load {
                best = i;
                best_load = load;
            }
        }
        let id = VehicleId(self.next_id);
        self.next_id += 1;
        let slot = self.shards[best]
            .get_mut()
            .expect("shard lock")
            .admit(id, spec);
        self.directory.insert(id.0, (best as u32, slot as u32));
        Ok(id)
    }

    /// Admits a vehicle on the adaptive sideband: a scalar session
    /// whose [`AdaptiveBackend`] starts on `initial` and reconfigures
    /// under `policy`, sharing the fleet's epoch clock but not the
    /// lockstep lane groups (so no lane-compatibility constraint
    /// applies — the sideband is per-vehicle).
    pub fn admit_adaptive(
        &mut self,
        spec: &ScenarioSpec,
        initial: SubstrateId,
        policy: Box<dyn ReconfigPolicy>,
    ) -> VehicleId {
        let id = VehicleId(self.next_id);
        self.next_id += 1;
        let session = spec.into_adaptive_session(spec.lower_trajectory(), initial, policy);
        self.adaptive_index.insert(id.0, self.adaptive.len());
        self.adaptive.push(AdaptiveVehicle {
            id,
            scenario: spec.name.clone(),
            session,
            duration_s: spec.duration_s,
            clock: 0.0,
        });
        id
    }

    /// Evicts a vehicle now (reason [`EvictReason::Requested`]),
    /// returning its final summary. `None` for unknown ids.
    pub fn evict(&mut self, id: VehicleId) -> Option<VehicleSummary> {
        if let Some(&idx) = self.adaptive_index.get(&id.0) {
            return Some(self.retire_adaptive(idx, EvictReason::Requested));
        }
        let (shard, slot) = *self.directory.get(&id.0)?;
        self.shards[shard as usize]
            .get_mut()
            .expect("shard lock")
            .queue_eviction(slot as usize, EvictReason::Requested);
        self.drain_evictions();
        self.completed
            .iter()
            .rev()
            .find(|c| c.id == id)
            .map(|c| c.summary.clone())
    }

    /// Runs `epochs` epochs; each advances every shard one sensor tick
    /// (`tick_dt` of stream time per resident vehicle), fanning the
    /// shards over `workers` pool threads (`0` = one per core, `1` =
    /// inline with no thread machinery). Vehicle results are
    /// bit-identical at any worker count — shards are independent and
    /// evictions are applied on the sequential epoch barrier.
    pub fn run_epochs(&mut self, epochs: usize, workers: usize) {
        let n = self.shards.len();
        let workers = exec::resolve_workers(workers).clamp(1, n.max(1));
        for _ in 0..epochs {
            if workers <= 1 {
                for shard in &mut self.shards {
                    shard.get_mut().expect("shard lock").tick();
                }
            } else {
                let shards = &self.shards;
                exec::map_parallel((0..n).collect(), workers, |i: usize| {
                    shards[i].lock().expect("shard lock").tick();
                });
            }
            // The adaptive sideband advances on the same clock,
            // inline: a handful of reconfiguring vehicles per fleet,
            // each a plain scalar session.
            let tick_dt = self.config.tick_dt;
            for vehicle in &mut self.adaptive {
                vehicle.session.run_for(tick_dt);
                vehicle.clock += tick_dt;
            }
            self.epoch += 1;
            self.drain_evictions();
            self.drain_adaptive_completed();
        }
    }

    /// Retires every sideband vehicle whose stream has run out.
    fn drain_adaptive_completed(&mut self) {
        let mut idx = 0;
        while idx < self.adaptive.len() {
            if self.adaptive[idx].clock >= self.adaptive[idx].duration_s {
                self.retire_adaptive(idx, EvictReason::Completed);
            } else {
                idx += 1;
            }
        }
    }

    /// Removes sideband vehicle `idx`, logs it to the eviction log and
    /// returns its final summary (swap-remove; the moved vehicle's
    /// directory entry is patched).
    fn retire_adaptive(&mut self, idx: usize, reason: EvictReason) -> VehicleSummary {
        let vehicle = self.adaptive.swap_remove(idx);
        self.adaptive_index.remove(&vehicle.id.0);
        if let Some(moved) = self.adaptive.get(idx) {
            self.adaptive_index.insert(moved.id.0, idx);
        }
        let session = vehicle.session;
        let (switches, saturations) = session
            .backend_as::<AdaptiveBackend>()
            .map_or((0, 0), |b| (b.switch_count(), b.total_saturations()));
        let stream = session.stream_stats();
        let result = session.into_result();
        let summary = VehicleSummary::from_result(&result, saturations, stream)
            .with_substrate_switches(switches);
        self.completed.push(EvictedVehicle {
            id: vehicle.id,
            scenario: vehicle.scenario,
            reason,
            summary: summary.clone(),
        });
        summary
    }

    /// Applies every shard's queued evictions (completion, divergence,
    /// monitor faults) and updates the directory for compaction moves.
    fn drain_evictions(&mut self) {
        let Self {
            shards,
            directory,
            completed,
            ..
        } = self;
        for (si, shard) in shards.iter_mut().enumerate() {
            let shard = shard.get_mut().expect("shard lock");
            if !shard.has_pending_evictions() {
                continue;
            }
            shard.apply_evictions(|record| {
                directory.remove(&record.id.0);
                if let Some((moved_id, new_slot)) = record.moved {
                    directory.insert(moved_id.0, (si as u32, new_slot));
                }
                completed.push(EvictedVehicle {
                    id: record.id,
                    scenario: record.scenario,
                    reason: record.reason,
                    summary: record.summary,
                });
            });
        }
    }

    /// Vehicles currently resident (lane arenas plus the adaptive
    /// sideband).
    pub fn len(&self) -> usize {
        self.directory.len() + self.adaptive.len()
    }

    /// `true` when no vehicles are resident.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty() && self.adaptive.is_empty()
    }

    /// Sideband vehicles currently resident.
    pub fn adaptive_len(&self) -> usize {
        self.adaptive.len()
    }

    fn adaptive_vehicle(&self, id: VehicleId) -> Option<&AdaptiveVehicle> {
        self.adaptive_index.get(&id.0).map(|&i| &self.adaptive[i])
    }

    /// A resident sideband vehicle's reconfiguration ledger.
    pub fn adaptive_ledger(&self, id: VehicleId) -> Option<&ReconfigLedger> {
        self.adaptive_vehicle(id).and_then(|v| {
            v.session
                .backend_as::<AdaptiveBackend>()
                .map(|b| b.ledger())
        })
    }

    /// A resident sideband vehicle's currently active substrate.
    pub fn adaptive_substrate(&self, id: VehicleId) -> Option<SubstrateId> {
        self.adaptive_vehicle(id).and_then(|v| {
            v.session
                .backend_as::<AdaptiveBackend>()
                .map(|b| b.active_substrate())
        })
    }

    /// Epochs run so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Where a vehicle currently lives: `(shard, slot)`. Slots move on
    /// compaction; ids never do.
    pub fn placement(&self, id: VehicleId) -> Option<(usize, usize)> {
        self.directory
            .get(&id.0)
            .map(|&(s, i)| (s as usize, i as usize))
    }

    fn with_slot<R>(
        &self,
        id: VehicleId,
        read: impl FnOnce(&Shard<A, L>, usize) -> R,
    ) -> Option<R> {
        let (shard, slot) = *self.directory.get(&id.0)?;
        let shard = self.shards[shard as usize].lock().expect("shard lock");
        Some(read(&shard, slot as usize))
    }

    /// A resident vehicle's current estimate with confidence.
    pub fn estimate(&self, id: VehicleId) -> Option<MisalignmentEstimate> {
        if let Some(vehicle) = self.adaptive_vehicle(id) {
            return Some(vehicle.session.estimate());
        }
        self.with_slot(id, |shard, slot| shard.estimate_of(slot))
    }

    /// A resident vehicle's report-shaped summary, as of now.
    pub fn summary(&self, id: VehicleId) -> Option<VehicleSummary> {
        self.with_slot(id, |shard, slot| shard.summary_of(slot))
    }

    /// A resident vehicle's event counters.
    pub fn vehicle_stats(&self, id: VehicleId) -> Option<VehicleStats> {
        self.with_slot(id, |shard, slot| shard.vehicle_stats_of(slot))
    }

    /// A resident vehicle's current (possibly retuned) measurement
    /// sigma.
    pub fn measurement_sigma(&self, id: VehicleId) -> Option<f64> {
        self.with_slot(id, |shard, slot| shard.measurement_sigma_of(slot))
    }

    /// A resident vehicle's adaptive retune count.
    pub fn retune_count(&self, id: VehicleId) -> Option<u64> {
        self.with_slot(id, |shard, slot| shard.retunes_of(slot))
    }

    /// A resident vehicle's local stream time, seconds (stalls under
    /// ingress backpressure).
    pub fn local_time(&self, id: VehicleId) -> Option<f64> {
        if let Some(vehicle) = self.adaptive_vehicle(id) {
            return Some(vehicle.clock);
        }
        self.with_slot(id, |shard, slot| shard.local_time_of(slot))
    }

    /// Every resident vehicle's id, in shard/slot order, the adaptive
    /// sideband last.
    pub fn resident_ids(&self) -> Vec<VehicleId> {
        let mut out = Vec::with_capacity(self.directory.len() + self.adaptive.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            for slot in 0..shard.occupied() {
                out.push(shard.id_of(slot));
            }
        }
        out.extend(self.adaptive.iter().map(|v| v.id));
        out
    }

    /// The eviction log, in eviction order.
    pub fn completed(&self) -> &[EvictedVehicle] {
        &self.completed
    }

    /// Aggregate counters across shards and residents (including the
    /// adaptive sideband).
    pub fn stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            vehicles: self.directory.len() + self.adaptive.len(),
            epoch: self.epoch,
            evicted: self.completed.len(),
            ..FleetStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            shard.fold_stats(
                &mut stats.events,
                &mut stats.updates,
                &mut stats.exceeded,
                &mut stats.retunes,
                &mut stats.dropped_no_imu,
            );
            stats.ingress.merge(&shard.ingress_stats());
        }
        for vehicle in &self.adaptive {
            let s = vehicle.session.stats();
            stats.events += s.events;
            stats.updates += s.updates;
            stats.exceeded += s.exceeded;
            stats.saturations += s.saturations;
            if let Some(backend) = vehicle.session.backend_as::<AdaptiveBackend>() {
                stats.retunes += backend.retunes().len() as u64;
                stats.substrate_switches += backend.switch_count();
            }
        }
        stats
    }

    /// Arena-resident bytes per vehicle (slot record + lane-group
    /// share + staging cell; excludes the boxed per-vehicle source).
    pub fn bytes_per_vehicle() -> usize {
        arena::arena_bytes_per_vehicle::<A, L>()
    }
}

/// Whether a scenario's filter tuning can share the fleet's lane
/// groups: everything but the per-lane measurement sigma must match.
fn lane_compatible(fleet: &FilterConfig, spec: &FilterConfig) -> bool {
    fleet.initial_angle_sigma == spec.initial_angle_sigma
        && fleet.initial_bias_sigma == spec.initial_bias_sigma
        && fleet.angle_process_density == spec.angle_process_density
        && fleet.bias_process_density == spec.bias_process_density
        && fleet.estimate_bias == spec.estimate_bias
        && fleet.gate_sigmas == spec.gate_sigmas
        && fleet.angle_limit == spec.angle_limit
        && fleet.bias_limit == spec.bias_limit
        && fleet.iekf_iterations == spec.iekf_iterations
}
