//! Admission and eviction policy for the fleet server.

use std::fmt;

/// Why a vehicle left the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictReason {
    /// Its sensor source ran to the end of its scenario.
    Completed,
    /// Its estimate went non-finite.
    Diverged,
    /// Its residual monitor fired more retunes than the policy allows.
    MonitorFault,
    /// [`crate::fleet::Fleet::evict`] was called on it.
    Requested,
}

/// When the arena evicts a vehicle on its own.
///
/// Completion always evicts (an exhausted source will never produce
/// another event); the health triggers are configurable.
#[derive(Clone, Copy, Debug)]
pub struct EvictionPolicy {
    /// Evict a vehicle whose estimated angles go non-finite (only
    /// reachable on the float substrates; fixed point saturates).
    pub evict_nonfinite: bool,
    /// Evict a vehicle once its adaptive retune count exceeds this —
    /// the "monitor fault" circuit breaker. `None` disables it.
    pub max_retunes: Option<u64>,
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        Self {
            evict_nonfinite: true,
            max_retunes: None,
        }
    }
}

/// Why [`crate::fleet::Fleet::admit`] refused a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The scenario's filter tuning differs from the fleet's shared
    /// lane configuration in more than the measurement sigma (the one
    /// per-lane parameter). Lanes share one instruction stream, so
    /// process densities, gates, limits and iteration counts must
    /// match across every admitted vehicle.
    IncompatibleTuning {
        /// The rejected scenario's name.
        scenario: String,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IncompatibleTuning { scenario } => write!(
                f,
                "scenario `{scenario}`: filter tuning differs from the fleet's shared \
                 lane configuration beyond the per-lane measurement sigma"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}
