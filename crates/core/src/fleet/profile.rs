//! Wall-time attribution for the fleet's epoch scheduler.
//!
//! The fleet's kernels were measured to death in earlier PRs; what was
//! *not* measured is the orchestration wrapped around them — thread
//! wake-up, shard claiming, the epoch barrier, work stealing. This
//! module makes that overhead a first-class, regression-gated
//! quantity: every epoch the scheduler folds each worker's phase
//! timings into one [`EpochSample`], a preallocated ring keeps the
//! recent window, and [`EpochProfile`] aggregates p50/p99 per phase
//! plus the scheduling-overhead fraction the CI gate checks.
//!
//! Recording is allocation-free in steady state (the ring is sized at
//! construction), so the profiler runs inside the audited zero-alloc
//! epoch loop.

/// One epoch's wall-time attribution. Per-phase fields are summed
/// across workers, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochSample {
    /// The epoch's wall clock, barrier to barrier.
    pub wall_us: f64,
    /// Source polling into the ingress buffers (home shards).
    pub ingest_us: f64,
    /// Dispatch + lane predict/update + eviction bookkeeping (home
    /// shards).
    pub compute_us: f64,
    /// Adaptive sideband sessions advanced on the pool.
    pub sideband_us: f64,
    /// Whole-shard epoch tasks run on a non-home worker (ingest and
    /// compute of stolen shards both land here — the bucket prices the
    /// *fallback*, not the phase).
    pub steal_us: f64,
    /// Scheduling overhead: `workers x wall` minus every worker's busy
    /// time — wake-up latency, claim scanning and barrier wait.
    pub barrier_us: f64,
    /// Shard tasks claimed by a non-home worker.
    pub steals: u64,
    /// Workers that serviced the epoch.
    pub workers: u32,
}

impl EpochSample {
    /// Busy time across workers (everything but scheduling overhead).
    pub fn busy_us(&self) -> f64 {
        self.ingest_us + self.compute_us + self.sideband_us + self.steal_us
    }

    /// This epoch's scheduling overhead as a fraction of total worker
    /// wall time (`0.0` for an empty epoch).
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.wall_us * f64::from(self.workers);
        if total <= 0.0 {
            0.0
        } else {
            (self.barrier_us / total).max(0.0)
        }
    }
}

/// One phase column's aggregate over the profiled window.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStats {
    /// Sum over the window, microseconds.
    pub total_us: f64,
    /// Median per-epoch value, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-epoch value, microseconds.
    pub p99_us: f64,
}

/// The aggregated epoch-scheduling profile: per-phase totals and
/// percentiles over the recorded window.
///
/// Percentiles are computed per phase independently (the p99 ingest
/// epoch need not be the p99 compute epoch), which is the right shape
/// for attributing a latency budget phase by phase.
#[derive(Clone, Debug, Default)]
pub struct EpochProfile {
    /// Epochs in the aggregated window.
    pub epochs: usize,
    /// Largest worker count observed in the window.
    pub workers: u32,
    /// Shard tasks claimed by non-home workers over the window.
    pub steals: u64,
    /// `sum(wall_us x workers)` over the window — the denominator of
    /// [`overhead_fraction`](EpochProfile::overhead_fraction), exact
    /// even when the worker count changed mid-window.
    pub worker_wall_us: f64,
    pub wall: PhaseStats,
    pub ingest: PhaseStats,
    pub compute: PhaseStats,
    pub sideband: PhaseStats,
    pub steal: PhaseStats,
    pub barrier: PhaseStats,
}

impl EpochProfile {
    /// Scheduling overhead (wake-up + claim + barrier) as a fraction
    /// of total worker wall time over the window — the quantity the
    /// acceptance gate bounds.
    pub fn overhead_fraction(&self) -> f64 {
        if self.worker_wall_us <= 0.0 {
            0.0
        } else {
            (self.barrier.total_us / self.worker_wall_us).clamp(0.0, 1.0)
        }
    }

    /// `(label, stats, share-of-busy)` rows for table printing, in
    /// pipeline order.
    pub fn rows(&self) -> [(&'static str, PhaseStats, f64); 5] {
        let busy = (self.ingest.total_us
            + self.compute.total_us
            + self.sideband.total_us
            + self.steal.total_us
            + self.barrier.total_us)
            .max(1e-12);
        let share = |s: &PhaseStats| s.total_us / busy;
        [
            ("ingest", self.ingest, share(&self.ingest)),
            ("compute", self.compute, share(&self.compute)),
            ("sideband", self.sideband, share(&self.sideband)),
            ("steal", self.steal, share(&self.steal)),
            ("barrier", self.barrier, share(&self.barrier)),
        ]
    }
}

/// A fixed-capacity ring of [`EpochSample`]s plus the scratch needed
/// to aggregate them without allocating in the record path.
#[derive(Debug)]
pub struct EpochProfiler {
    ring: Vec<EpochSample>,
    capacity: usize,
    /// Next write position; wraps once the ring is full.
    head: usize,
    /// Samples recorded since the last reset (saturates at capacity
    /// for windowing purposes; the lifetime count keeps going).
    recorded: u64,
}

/// Epochs the default profiler window retains — covers the full
/// `fleet_bench` measurement (2000 epochs plus warm-up) with room to
/// spare; older epochs are overwritten ring-wise.
pub const DEFAULT_PROFILE_WINDOW: usize = 4096;

impl EpochProfiler {
    /// A profiler retaining the last `capacity` epochs. The ring is
    /// allocated here, once — recording never allocates.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Records one epoch (allocation-free; overwrites the oldest
    /// sample once the window is full).
    pub fn record(&mut self, sample: EpochSample) {
        if self.ring.len() < self.capacity {
            self.ring.push(sample);
        } else {
            self.ring[self.head] = sample;
        }
        self.head = (self.head + 1) % self.capacity;
        self.recorded += 1;
    }

    /// Epochs recorded since construction or the last [`reset`].
    ///
    /// [`reset`]: EpochProfiler::reset
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The retained window, oldest-first not guaranteed (ring order).
    pub fn samples(&self) -> &[EpochSample] {
        &self.ring
    }

    /// Forgets the window (keeps the allocation) — called between a
    /// warm-up and a measurement so the profile covers only the timed
    /// epochs.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.recorded = 0;
    }

    /// Aggregates the retained window. `None` when nothing was
    /// recorded.
    pub fn profile(&self) -> Option<EpochProfile> {
        if self.ring.is_empty() {
            return None;
        }
        let mut scratch: Vec<f64> = Vec::with_capacity(self.ring.len());
        let mut stats = |field: fn(&EpochSample) -> f64| -> PhaseStats {
            scratch.clear();
            scratch.extend(self.ring.iter().map(field));
            let total_us = scratch.iter().sum();
            scratch.sort_by(|a, b| a.partial_cmp(b).expect("finite phase time"));
            PhaseStats {
                total_us,
                p50_us: percentile(&scratch, 0.50),
                p99_us: percentile(&scratch, 0.99),
            }
        };
        let wall = stats(|s| s.wall_us);
        let ingest = stats(|s| s.ingest_us);
        let compute = stats(|s| s.compute_us);
        let sideband = stats(|s| s.sideband_us);
        let steal = stats(|s| s.steal_us);
        let barrier = stats(|s| s.barrier_us);
        Some(EpochProfile {
            epochs: self.ring.len(),
            workers: self.ring.iter().map(|s| s.workers).max().unwrap_or(1),
            steals: self.ring.iter().map(|s| s.steals).sum(),
            worker_wall_us: self
                .ring
                .iter()
                .map(|s| s.wall_us * f64::from(s.workers))
                .sum(),
            wall,
            ingest,
            compute,
            sideband,
            steal,
            barrier,
        })
    }
}

impl Default for EpochProfiler {
    fn default() -> Self {
        Self::new(DEFAULT_PROFILE_WINDOW)
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(wall: f64, ingest: f64, compute: f64, barrier: f64, workers: u32) -> EpochSample {
        EpochSample {
            wall_us: wall,
            ingest_us: ingest,
            compute_us: compute,
            sideband_us: 0.0,
            steal_us: 0.0,
            barrier_us: barrier,
            steals: 0,
            workers,
        }
    }

    #[test]
    fn aggregates_percentiles_per_phase() {
        let mut p = EpochProfiler::new(128);
        for i in 0..100 {
            let wall = 100.0 + i as f64;
            p.record(sample(wall, 10.0, 80.0, 2.0 * wall - 90.0, 2));
        }
        let profile = p.profile().expect("recorded");
        assert_eq!(profile.epochs, 100);
        assert_eq!(profile.workers, 2);
        assert!((profile.wall.p50_us - 150.0).abs() < 1.0, "{profile:?}");
        assert!((profile.wall.p99_us - 198.0).abs() < 1.5, "{profile:?}");
        assert!((profile.ingest.p50_us - 10.0).abs() < 1e-9);
        // barrier = 2*wall - 90 against a 2-worker denominator 2*wall:
        // fraction tends to 1 - 45/wall.
        let f = profile.overhead_fraction();
        assert!(f > 0.5 && f < 1.0, "{f}");
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let mut p = EpochProfiler::new(4);
        for i in 0..10 {
            p.record(sample(i as f64, 0.0, 0.0, 0.0, 1));
        }
        assert_eq!(p.samples().len(), 4);
        assert_eq!(p.recorded(), 10);
        let retained: Vec<f64> = p.samples().iter().map(|s| s.wall_us).collect();
        for keep in [6.0, 7.0, 8.0, 9.0] {
            assert!(retained.contains(&keep), "{retained:?}");
        }
    }

    #[test]
    fn reset_clears_window_but_keeps_capacity() {
        let mut p = EpochProfiler::new(8);
        p.record(sample(1.0, 0.0, 0.0, 0.0, 1));
        p.reset();
        assert!(p.profile().is_none());
        assert_eq!(p.recorded(), 0);
        p.record(sample(2.0, 0.0, 0.0, 0.0, 1));
        assert_eq!(p.profile().expect("recorded").epochs, 1);
    }

    #[test]
    fn overhead_fraction_of_idle_free_epoch_is_zero() {
        let s = sample(100.0, 50.0, 150.0, 0.0, 2);
        assert_eq!(s.overhead_fraction(), 0.0);
        assert!((s.busy_us() - 200.0).abs() < 1e-12);
    }
}
