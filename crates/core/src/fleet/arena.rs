//! The struct-of-arrays state arena: one shard's worth of vehicles.
//!
//! A shard owns a dense prefix of *slots* (one per resident vehicle:
//! its boxed sensor source, IMU front end, residual monitor and
//! counters) and a parallel array of [`LaneIekf`] *lane groups* (slot
//! `s` lives in group `s / L`, lane `s % L`) — filter state for `L`
//! unrelated vehicles packed structure-of-arrays so one lockstep
//! instruction stream advances all of them. Slots stay dense: evicting
//! a vehicle swap-removes its slot and migrates the last vehicle's
//! lane state into the hole ([`LaneIekf::export_lane`] /
//! [`LaneIekf::import_lane`] round-trip bit-exactly), so lane groups
//! are always full except the last and freed capacity is recycled
//! without allocation.
//!
//! One epoch is two explicitly split phases the scheduler can
//! pipeline. [`Shard::ingest`] polls every live vehicle one sensor
//! tick into one of two bounded ingress queues (backpressure defers
//! vehicles, never reorders one vehicle's events); [`Shard::compute`]
//! drains the primed queue and dispatches slot-major — the queues are
//! double-buffered so epoch `N+1`'s ingest fills a different buffer
//! than the one epoch `N`'s compute drained, letting the fleet
//! scheduler run a shard's next-epoch ingest immediately after its
//! compute (and overlap it with *other* shards' compute on other
//! workers) without the two phases ever contending on one ring.
//! Dispatch order within compute is unchanged from the original fused
//! tick —
//! *staged* with the specific force, per-vehicle `dt` and timestamp
//! captured at dispatch point; a group's staged lanes flush through
//! one masked [`LaneIekf::predict_lanes`] +
//! [`LaneIekf::update_lanes_masked`] batch. Because staging captures
//! exactly what the scalar estimator would have computed at that event
//! — and masked lanes are untouched bit-for-bit — every vehicle's
//! estimate stream is bit-identical to its own scalar
//! [`crate::session::FusionSession`] run regardless of which lane,
//! group or shard it lands in.

use super::ingress::IngressQueue;
use super::policy::{EvictReason, EvictionPolicy};
use super::{FleetConfig, VehicleId};
use crate::arith::{Arith, LaneOps, LaneSpec};
use crate::estimator::{ImuPrep, MisalignmentEstimate};
use crate::lanes::LaneIekf;
use crate::monitor::ResidualMonitor;
use crate::report::{RunningRms, VehicleSummary};
use crate::session::SensorEvent;
use crate::spec::ScenarioSpec;
use mathx::{rad_to_deg, EulerAngles, Vec2, Vec3};

/// Per-vehicle event counters (the fleet mirror of
/// [`crate::session::SessionStats`], plus the no-IMU drop counter the
/// session layer folds into its backend).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VehicleStats {
    /// Raw events dispatched to this vehicle.
    pub events: u64,
    /// Measurement updates returned (accepted or gate-rejected).
    pub updates: u64,
    /// Updates whose innovation exceeded 3 sigma.
    pub exceeded: u64,
    /// ACC frames discarded because no DMU sample had arrived yet.
    pub dropped_no_imu: u64,
}

/// An ACC measurement captured at its dispatch point, waiting for its
/// lane group's batched flush. The specific force and `dt` are
/// computed *when the frame is dispatched* — not when the batch runs —
/// so a later DMU frame in the same tick cannot leak into an earlier
/// measurement, preserving scalar-session event-order semantics.
struct StagedMeas<A: Arith> {
    z: Vec2,
    f_b: [A::T; 3],
    time_s: f64,
    dt: f64,
}

/// One resident vehicle's non-filter state (filter state lives in the
/// lane groups).
struct SlotState<A: Arith> {
    id: VehicleId,
    scenario: String,
    truth: EulerAngles,
    duration_s: f64,
    lever_arm: Vec3,
    source: Box<dyn crate::session::SensorSource>,
    prep: ImuPrep<A>,
    monitor: Option<ResidualMonitor>,
    /// Local stream time: advances one tick per epoch *when polled*
    /// (backpressure stalls it losslessly).
    clock: f64,
    last_update_time: f64,
    retunes: u64,
    stats: VehicleStats,
    rms: RunningRms,
    exhausted: bool,
    evict_queued: bool,
}

/// What one eviction produced, handed to the fleet for directory and
/// log upkeep.
pub(crate) struct EvictionRecord {
    pub id: VehicleId,
    pub scenario: String,
    pub reason: EvictReason,
    pub summary: VehicleSummary,
    /// The vehicle compacted into the freed slot, if any.
    pub moved: Option<(VehicleId, u32)>,
}

/// One shard of the fleet arena.
pub(crate) struct Shard<A: LaneSpec<L>, const L: usize> {
    lane_config: crate::filter::FilterConfig,
    tick_dt: f64,
    policy: EvictionPolicy,
    groups: Vec<LaneIekf<A, L>>,
    slots: Vec<SlotState<A>>,
    /// Shared substrate context for every resident vehicle's IMU front
    /// end (the [`crate::lanes::LaneBank`] precedent: front-end values
    /// are identical whichever context instance computes them; context
    /// state is instrumentation only).
    front: A,
    /// Double-buffered ingress: [`Shard::ingest`] fills
    /// `queues[active]`, [`Shard::compute`] drains it and flips
    /// `active`, so the next ingest lands in the other buffer.
    queues: [IngressQueue; 2],
    /// Which queue the next ingest fills / the next compute drains.
    active: usize,
    /// `true` between an ingest and its compute: the active queue
    /// holds one undispatched epoch of frames.
    primed: bool,
    staged: Vec<Option<StagedMeas<A>>>,
    pending_evict: Vec<(usize, EvictReason)>,
    /// Evictions applied shard-locally during an epoch, drained by the
    /// fleet on the barrier for directory/log upkeep. The buffer keeps
    /// its capacity across drains.
    records: Vec<EvictionRecord>,
}

impl<A: LaneSpec<L> + Clone + Default, const L: usize> Shard<A, L> {
    pub(crate) fn new(config: &FleetConfig) -> Self {
        Self {
            lane_config: config.filter,
            tick_dt: config.tick_dt,
            policy: config.eviction,
            groups: Vec::new(),
            slots: Vec::new(),
            front: A::default(),
            queues: [
                IngressQueue::new(config.ingress_capacity),
                IngressQueue::new(config.ingress_capacity),
            ],
            active: 0,
            primed: false,
            staged: Vec::new(),
            pending_evict: Vec::with_capacity(16),
            records: Vec::with_capacity(16),
        }
    }

    pub(crate) fn occupied(&self) -> usize {
        self.slots.len()
    }

    /// Admits a vehicle into the next dense slot, recycling a retained
    /// lane group when one has spare capacity. Returns the slot index.
    pub(crate) fn admit(&mut self, id: VehicleId, spec: &ScenarioSpec) -> usize {
        // Admission is control-plane work: it must happen on the epoch
        // barrier, never while a pipelined ingest is in flight (the
        // primed buffer's slot tags would go stale).
        debug_assert!(!self.primed, "admit with a primed ingress buffer");
        let slot = self.slots.len();
        let (g, lane) = (slot / L, slot % L);
        if g == self.groups.len() {
            self.groups
                .push(LaneIekf::with_arith(A::default(), self.lane_config));
        }
        // Fresh or recycled, the lane starts from the exact
        // fresh-filter init, then takes the scenario's tuning sigma
        // (the one per-lane filter parameter).
        self.groups[g].reset_lane(lane);
        let estimator = spec.tuning.estimator_config();
        self.groups[g].set_measurement_sigma(lane, estimator.filter.measurement_sigma);
        self.slots.push(SlotState {
            id,
            scenario: spec.name.clone(),
            truth: spec.truth,
            duration_s: spec.duration_s,
            lever_arm: estimator.lever_arm,
            source: spec.into_source(spec.lower_trajectory()),
            prep: ImuPrep::new(&mut self.front),
            monitor: estimator
                .monitor
                .map(|m| ResidualMonitor::new(m, estimator.filter.measurement_sigma)),
            clock: 0.0,
            last_update_time: 0.0,
            retunes: 0,
            stats: VehicleStats::default(),
            rms: RunningRms::default(),
            exhausted: false,
            evict_queued: false,
        });
        if self.staged.len() < self.slots.len() {
            self.staged.push(None);
        }
        slot
    }

    /// `true` between an [`Shard::ingest`] and its [`Shard::compute`]:
    /// the active queue holds one undispatched epoch of frames.
    pub(crate) fn is_primed(&self) -> bool {
        self.primed
    }

    /// The ingest phase of one epoch: advances every live vehicle's
    /// local clock one sensor tick and polls its source into the
    /// active (empty) ingress buffer. Exactly one [`Shard::compute`]
    /// must drain it before the next ingest.
    pub(crate) fn ingest(&mut self) {
        debug_assert!(!self.primed, "ingest without an intervening compute");
        let queue = &mut self.queues[self.active];
        for (s, slot) in self.slots.iter_mut().enumerate() {
            if slot.exhausted {
                continue;
            }
            if !queue.has_headroom() {
                // Lossless backpressure: the clock stalls, the vehicle
                // catches up on a later, less-loaded epoch.
                queue.stats.deferred += 1;
                continue;
            }
            slot.clock += self.tick_dt;
            queue.poll_from(s as u32, slot.source.as_mut(), slot.clock);
            if slot.source.is_exhausted() {
                slot.exhausted = true;
            }
        }
        self.primed = true;
    }

    /// The compute phase of one epoch: drains the primed ingress
    /// buffer slot-major with batched lane flushes, then queues
    /// completions and health evictions. Flips the active buffer so
    /// the next ingest fills the other one.
    pub(crate) fn compute(&mut self) {
        debug_assert!(self.primed, "compute without a primed ingest");
        let q = self.active;

        // ---- Dispatch phase: slot-major, flush per lane group ------
        let mut cur_group = usize::MAX;
        for i in 0..self.queues[q].len() {
            let (slot32, event) = self.queues[q].frame(i);
            let s = slot32 as usize;
            let g = s / L;
            if g != cur_group {
                if cur_group != usize::MAX {
                    self.flush_group(cur_group);
                }
                cur_group = g;
            }
            match event {
                SensorEvent::Dmu(sample) => {
                    self.slots[s].stats.events += 1;
                    self.slots[s].prep.on_dmu(&mut self.front, &sample);
                }
                SensorEvent::Acc { time_s, z, .. } => {
                    if self.staged[s].is_some() {
                        // Two ACCs for one slot in one window: preserve
                        // per-vehicle update order by flushing first.
                        self.flush_group(g);
                    }
                    self.slots[s].stats.events += 1;
                    let slot = &mut self.slots[s];
                    match slot
                        .prep
                        .compensated_force(&mut self.front, time_s, slot.lever_arm)
                    {
                        Some(f_b) => {
                            let dt = (time_s - slot.last_update_time).max(0.0);
                            slot.last_update_time = time_s;
                            self.staged[s] = Some(StagedMeas { z, f_b, time_s, dt });
                        }
                        None => slot.stats.dropped_no_imu += 1,
                    }
                }
            }
        }
        if cur_group != usize::MAX {
            self.flush_group(cur_group);
        }
        self.queues[q].clear();
        self.primed = false;
        self.active ^= 1;

        // ---- Completion phase --------------------------------------
        let Self {
            slots,
            pending_evict,
            ..
        } = self;
        for (s, slot) in slots.iter_mut().enumerate() {
            if slot.exhausted && !slot.evict_queued {
                slot.evict_queued = true;
                pending_evict.push((s, EvictReason::Completed));
            }
        }
    }

    /// Runs the staged measurements of one lane group through a single
    /// masked predict + update batch and folds the results back into
    /// each vehicle's counters, monitor and health checks.
    fn flush_group(&mut self, g: usize) {
        let Self {
            groups,
            slots,
            staged,
            policy,
            pending_evict,
            ..
        } = self;
        let group = &mut groups[g];
        let base = g * L;
        let top = (base + L).min(slots.len());
        let zero = group.arith_mut().inner_mut().num(0.0);
        let mut active = [false; L];
        let mut zs = [Vec2::zeros(); L];
        let mut times = [0.0_f64; L];
        let mut dts = [0.0_f64; L];
        let mut fbs = [group.arith_mut().splat(zero); 3];
        let mut any = false;
        for (lane, cell) in staged[base..top].iter_mut().enumerate() {
            if let Some(staged_meas) = cell.take() {
                active[lane] = true;
                any = true;
                zs[lane] = staged_meas.z;
                times[lane] = staged_meas.time_s;
                dts[lane] = staged_meas.dt;
                for (axis, fb) in fbs.iter_mut().enumerate() {
                    fb[lane] = staged_meas.f_b[axis];
                }
            }
        }
        if !any {
            return;
        }
        group.predict_lanes(&dts);
        let records = group.update_lanes_masked(&zs, fbs, &times, &active);
        for (lane, record) in records.iter().enumerate() {
            let Some(update) = record else { continue };
            let s = base + lane;
            let slot = &mut slots[s];
            slot.stats.updates += 1;
            if update.exceeds_three_sigma() {
                slot.stats.exceeded += 1;
            }
            if update.accepted && update.time_s >= 0.5 * slot.duration_s {
                let e = group.angles(lane).error_to(&slot.truth);
                slot.rms
                    .push([rad_to_deg(e.roll), rad_to_deg(e.pitch), rad_to_deg(e.yaw)]);
            }
            if let Some(monitor) = &mut slot.monitor {
                if let Some(retune) = monitor.observe(update) {
                    group.set_measurement_sigma(lane, retune.new_sigma);
                    slot.retunes += 1;
                }
            }
            if slot.evict_queued {
                continue;
            }
            if policy.evict_nonfinite {
                let a = group.angles(lane);
                if !(a.roll.is_finite() && a.pitch.is_finite() && a.yaw.is_finite()) {
                    slot.evict_queued = true;
                    pending_evict.push((s, EvictReason::Diverged));
                    continue;
                }
            }
            if let Some(max) = policy.max_retunes {
                if slot.retunes > max {
                    slot.evict_queued = true;
                    pending_evict.push((s, EvictReason::MonitorFault));
                }
            }
        }
    }

    /// Marks a slot for eviction (idempotent).
    pub(crate) fn queue_eviction(&mut self, slot: usize, reason: EvictReason) {
        if !self.slots[slot].evict_queued {
            self.slots[slot].evict_queued = true;
            self.pending_evict.push((slot, reason));
        }
    }

    /// Applies every queued eviction shard-locally: summarizes the
    /// leaving vehicle, swap-removes its slot, migrates the last
    /// vehicle's lane state into the hole bit-for-bit and logs each
    /// move into the shard's record buffer (the fleet drains it on the
    /// epoch barrier via [`Shard::drain_records`]). Processes highest
    /// slots first so queued indices stay valid as the dense prefix
    /// shrinks. Runs inside the worker's epoch task — the control
    /// plane it needs (directory, eviction log) is touched only at
    /// drain time, on the barrier.
    pub(crate) fn apply_evictions(&mut self) {
        if self.pending_evict.is_empty() {
            return;
        }
        self.pending_evict
            .sort_unstable_by_key(|&(slot, _)| std::cmp::Reverse(slot));
        let mut pending = std::mem::take(&mut self.pending_evict);
        for (s, reason) in pending.drain(..) {
            let summary = self.summary_of(s);
            let last = self.slots.len() - 1;
            let state = self.slots.swap_remove(s);
            let moved = if s != last {
                let snapshot = self.groups[last / L].export_lane(last % L);
                self.groups[s / L].import_lane(s % L, &snapshot);
                Some((self.slots[s].id, s as u32))
            } else {
                None
            };
            // Park the vacated lane on benign fresh-filter values; it
            // is masked until the slot is reoccupied.
            self.groups[last / L].reset_lane(last % L);
            self.records.push(EvictionRecord {
                id: state.id,
                scenario: state.scenario,
                reason,
                summary,
                moved,
            });
        }
        // Hand the drained buffer's capacity back.
        self.pending_evict = pending;
    }

    pub(crate) fn has_records(&self) -> bool {
        !self.records.is_empty()
    }

    /// Hands the epoch's eviction records to the fleet, in application
    /// order, keeping the buffer's capacity.
    pub(crate) fn drain_records(&mut self, mut on_evict: impl FnMut(EvictionRecord)) {
        for record in self.records.drain(..) {
            on_evict(record);
        }
    }

    /// One vehicle's report-shaped summary, as of now.
    pub(crate) fn summary_of(&self, s: usize) -> VehicleSummary
    where
        A: Clone,
    {
        let slot = &self.slots[s];
        let (g, lane) = (s / L, s % L);
        let group = &self.groups[g];
        let estimate = group.estimate(lane);
        let e = estimate.angles.error_to(&slot.truth);
        let final_worst = [e.roll, e.pitch, e.yaw]
            .iter()
            .fold(0.0_f64, |m, v| m.max(rad_to_deg(*v).abs()));
        VehicleSummary {
            truth: slot.truth,
            estimate,
            error_rms_deg: slot.rms.rms_deg(),
            final_worst_error_deg: final_worst,
            exceed_rate: exceed_rate(&slot.stats),
            retune_count: slot.retunes as usize,
            // Lanes share one substrate context; saturations cannot be
            // attributed per vehicle.
            saturations: 0,
            stream: slot.source.stream_stats(),
            // Lane vehicles run one static substrate for life.
            substrate_switches: 0,
        }
    }

    pub(crate) fn estimate_of(&self, s: usize) -> MisalignmentEstimate
    where
        A: Clone,
    {
        self.groups[s / L].estimate(s % L)
    }

    pub(crate) fn vehicle_stats_of(&self, s: usize) -> VehicleStats {
        self.slots[s].stats
    }

    pub(crate) fn measurement_sigma_of(&self, s: usize) -> f64 {
        self.groups[s / L].measurement_sigma(s % L)
    }

    pub(crate) fn retunes_of(&self, s: usize) -> u64 {
        self.slots[s].retunes
    }

    pub(crate) fn local_time_of(&self, s: usize) -> f64 {
        self.slots[s].clock
    }

    pub(crate) fn id_of(&self, s: usize) -> VehicleId {
        self.slots[s].id
    }

    pub(crate) fn ingress_stats(&self) -> super::ingress::IngressStats {
        let mut stats = self.queues[0].stats;
        stats.merge(&self.queues[1].stats);
        stats
    }

    /// Sums this shard's per-vehicle counters.
    pub(crate) fn fold_stats(
        &self,
        events: &mut u64,
        updates: &mut u64,
        exceeded: &mut u64,
        retunes: &mut u64,
        dropped_no_imu: &mut u64,
    ) {
        for slot in &self.slots {
            *events += slot.stats.events;
            *updates += slot.stats.updates;
            *exceeded += slot.stats.exceeded;
            *retunes += slot.retunes;
            *dropped_no_imu += slot.stats.dropped_no_imu;
        }
    }
}

/// The session layer's exceed-rate convention: 0 when no updates ran.
fn exceed_rate(stats: &VehicleStats) -> f64 {
    if stats.updates == 0 {
        0.0
    } else {
        stats.exceeded as f64 / stats.updates as f64
    }
}

/// Arena-resident bytes per vehicle: its slot record, its share of a
/// lane group and its staging cell. Excludes the boxed per-vehicle
/// source front end (scenario-dependent) and the shard-shared ingress
/// queue.
pub(crate) fn arena_bytes_per_vehicle<A: LaneSpec<L>, const L: usize>() -> usize {
    std::mem::size_of::<SlotState<A>>()
        + std::mem::size_of::<LaneIekf<A, L>>() / L
        + std::mem::size_of::<Option<StagedMeas<A>>>()
}
