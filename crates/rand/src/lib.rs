//! Vendored random-number shim.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the (small) subset of the `rand` 0.9 API surface the
//! workspace uses, backed by a deterministic xoshiro256++ generator:
//!
//! * [`Rng`] — the core source trait (`next_u32`/`next_u64`);
//! * [`RngExt`] — `random::<T>()` and `random_range(..)` extension
//!   methods, blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] — `seed_from_u64` construction;
//! * [`rngs::StdRng`] — the workspace's standard generator.
//!
//! Everything is fully deterministic given the seed: no OS entropy is
//! ever consulted, which is exactly what the simulation scenarios and
//! the session determinism tests require.

use std::ops::{Range, RangeInclusive};

/// A source of randomness.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits.
pub trait Random {
    /// Draws one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_random_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::random(rng)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * f32::random(rng)
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws one value uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// a SplitMix64 expansion (so nearby `u64` seeds give uncorrelated
    /// streams). Deterministic; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is absorbing; the SplitMix64
            // expansion cannot produce it for any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(-3i32..7);
            assert!((-3..7).contains(&v));
            let w = rng.random_range(0u8..=8);
            assert!(w <= 8);
            let x = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_and_reborrowed_receivers() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        let y = {
            let r: &mut dyn FnMut() -> u64 = &mut || 0; // unrelated; just scope noise
            let _ = r;
            draw(&mut rng)
        };
        assert_ne!(x, y);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
