//! Fixed-point arithmetic and the sine/cosine lookup table.
//!
//! The paper's video transform "operate\[s\] on 16-bit precision fixed
//! point values with sine and cosine angles stored in a 1024-element
//! lookup table". This module provides:
//!
//! * [`Fixed`] — a Q-format signed fixed-point number over `i32`
//!   storage with a const-generic fraction width (Q16.16 for the
//!   fixed-point Kalman ablation, Q18.13 and friends for intermediate
//!   products);
//! * [`Q14`] helpers — the 16-bit Q1.14 trigonometric sample format;
//! * [`SinCosLut`] — the 1024-entry sine/cosine table addressed by a
//!   10-bit angle index.

use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A signed fixed-point number with `FRAC` fraction bits in an `i32`.
///
/// Arithmetic wraps like the FPGA datapath would; widening operations
/// (multiply, divide) go through `i64` with round-to-nearest.
///
/// # Examples
///
/// ```
/// use fpga::fixed::Fixed;
/// type Q16 = Fixed<16>;
/// let a = Q16::from_f64(1.5);
/// let b = Q16::from_f64(-2.25);
/// assert_eq!((a * b).to_f64(), -3.375);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed<const FRAC: u32>(i32);

/// Q16.16 general-purpose fixed point.
pub type Q16_16 = Fixed<16>;

impl<const FRAC: u32> Fixed<FRAC> {
    /// One least-significant-bit step.
    pub const EPSILON: Self = Self(1);
    /// Zero.
    pub const ZERO: Self = Self(0);

    /// Wraps a raw register value.
    pub const fn from_raw(raw: i32) -> Self {
        Self(raw)
    }

    /// The raw register value.
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// One (the multiplicative identity).
    pub const fn one() -> Self {
        Self(1 << FRAC)
    }

    /// Converts from `f64`, rounding to nearest; saturates at the
    /// register range.
    pub fn from_f64(x: f64) -> Self {
        let scaled = (x * (1i64 << FRAC) as f64).round();
        Self(scaled.clamp(i32::MIN as f64, i32::MAX as f64) as i32)
    }

    /// Converts to `f64` (exact).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i64 << FRAC) as f64
    }

    /// Converts from an integer (saturating).
    pub fn from_int(x: i32) -> Self {
        let wide = (x as i64) << FRAC;
        Self(wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Integer part, truncating toward negative infinity.
    pub fn floor_int(self) -> i32 {
        self.0 >> FRAC
    }

    /// Nearest integer (round half up).
    pub fn round_int(self) -> i32 {
        ((self.0 as i64 + (1i64 << (FRAC - 1))) >> FRAC) as i32
    }

    /// Multiplication through `i64` with round-to-nearest (wraps on
    /// overflow of the final narrow, like the hardware multiplier).
    pub fn wrapping_mul(self, rhs: Self) -> Self {
        let p = self.0 as i64 * rhs.0 as i64;
        let rounded = (p + (1i64 << (FRAC - 1))) >> FRAC;
        Self(rounded as i32)
    }

    /// Multiplication that saturates instead of wrapping.
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let p = self.0 as i64 * rhs.0 as i64;
        let rounded = (p + (1i64 << (FRAC - 1))) >> FRAC;
        Self(rounded.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Division through `i64` (round toward zero). Saturates on
    /// overflow and on division by zero (to the signed extreme).
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.0 == 0 {
            return if self.0 >= 0 {
                Self(i32::MAX)
            } else {
                Self(i32::MIN)
            };
        }
        let q = ((self.0 as i64) << FRAC) / rhs.0 as i64;
        Self(q.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }

    /// Absolute value (saturating at `i32::MAX`).
    pub fn abs(self) -> Self {
        Self(self.0.saturating_abs())
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Saturating negation (`-i32::MIN` pins at `i32::MAX`).
    pub fn saturating_neg(self) -> Self {
        Self(self.0.saturating_neg())
    }

    /// Saturating addition that also reports whether the register
    /// range was exceeded, so datapaths can count overflow events.
    pub fn saturating_add_checked(self, rhs: Self) -> (Self, bool) {
        let (wrapped, overflowed) = self.0.overflowing_add(rhs.0);
        if overflowed {
            (Self(if self.0 < 0 { i32::MIN } else { i32::MAX }), true)
        } else {
            (Self(wrapped), false)
        }
    }

    /// Saturating subtraction with overflow detection.
    pub fn saturating_sub_checked(self, rhs: Self) -> (Self, bool) {
        let (wrapped, overflowed) = self.0.overflowing_sub(rhs.0);
        if overflowed {
            (Self(if self.0 < 0 { i32::MIN } else { i32::MAX }), true)
        } else {
            (Self(wrapped), false)
        }
    }

    /// Saturating multiplication with overflow detection.
    pub fn saturating_mul_checked(self, rhs: Self) -> (Self, bool) {
        let p = self.0 as i64 * rhs.0 as i64;
        let rounded = (p + (1i64 << (FRAC - 1))) >> FRAC;
        let clamped = rounded.clamp(i32::MIN as i64, i32::MAX as i64);
        (Self(clamped as i32), clamped != rounded)
    }

    /// Saturating division with overflow / divide-by-zero detection.
    pub fn saturating_div_checked(self, rhs: Self) -> (Self, bool) {
        if rhs.0 == 0 {
            return (
                if self.0 >= 0 {
                    Self(i32::MAX)
                } else {
                    Self(i32::MIN)
                },
                true,
            );
        }
        let q = ((self.0 as i64) << FRAC) / rhs.0 as i64;
        let clamped = q.clamp(i32::MIN as i64, i32::MAX as i64);
        (Self(clamped as i32), clamped != q)
    }

    /// Fused multiply-add `self * rhs + addend` through a single wide
    /// accumulator (one rounding, as a DSP-slice MAC would perform),
    /// saturating with overflow detection.
    pub fn saturating_mul_add_checked(self, rhs: Self, addend: Self) -> (Self, bool) {
        let p = self.0 as i64 * rhs.0 as i64 + ((addend.0 as i64) << FRAC);
        let rounded = (p + (1i64 << (FRAC - 1))) >> FRAC;
        let clamped = rounded.clamp(i32::MIN as i64, i32::MAX as i64);
        (Self(clamped as i32), clamped != rounded)
    }
}

impl<const FRAC: u32> Add for Fixed<FRAC> {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0.wrapping_add(rhs.0))
    }
}

impl<const FRAC: u32> AddAssign for Fixed<FRAC> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const FRAC: u32> Sub for Fixed<FRAC> {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self(self.0.wrapping_sub(rhs.0))
    }
}

impl<const FRAC: u32> SubAssign for Fixed<FRAC> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const FRAC: u32> Neg for Fixed<FRAC> {
    type Output = Self;

    fn neg(self) -> Self {
        Self(self.0.wrapping_neg())
    }
}

impl<const FRAC: u32> std::ops::Mul for Fixed<FRAC> {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        self.wrapping_mul(rhs)
    }
}

impl<const FRAC: u32> std::fmt::Display for Fixed<FRAC> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// Number of entries in the trigonometric lookup table.
pub const LUT_SIZE: usize = 1024;
/// Fraction bits of the 16-bit trigonometric samples (Q1.14).
pub const Q14_FRAC: u32 = 14;
/// Unit value in Q1.14.
pub const Q14_ONE: i16 = 1 << Q14_FRAC;

/// Converts a Q1.14 sample to `f64`.
pub fn q14_to_f64(x: i16) -> f64 {
    x as f64 / Q14_ONE as f64
}

/// Q1.14 alias used in pipeline signatures.
pub type Q14 = i16;

/// The 1024-entry sine/cosine table of the paper's rotation pipeline.
///
/// Entries are 16-bit Q1.14 samples of `sin`/`cos` over a full turn;
/// the table is addressed with a 10-bit index (`angle / 2pi * 1024`).
///
/// # Examples
///
/// ```
/// use fpga::fixed::SinCosLut;
/// let lut = SinCosLut::new();
/// let (s, c) = lut.lookup(256); // quarter turn
/// assert_eq!(s, 1 << 14);
/// assert_eq!(c, 0);
/// ```
#[derive(Clone, Debug)]
pub struct SinCosLut {
    sin: Vec<i16>,
}

impl SinCosLut {
    /// Builds the table (values rounded to nearest Q1.14).
    pub fn new() -> Self {
        let sin = (0..LUT_SIZE)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * i as f64 / LUT_SIZE as f64;
                let v = (theta.sin() * Q14_ONE as f64).round() as i32;
                // sin(pi/2) would be exactly 2^14 which fits i16; clamp
                // anyway for safety at other extremes.
                v.clamp(i16::MIN as i32, i16::MAX as i32) as i16
            })
            .collect();
        Self { sin }
    }

    /// Sine and cosine at a 10-bit angle index (wraps modulo 1024).
    pub fn lookup(&self, index: u32) -> (Q14, Q14) {
        let i = (index as usize) % LUT_SIZE;
        let j = (i + LUT_SIZE / 4) % LUT_SIZE; // cos(x) = sin(x + pi/2)
        (self.sin[i], self.sin[j])
    }

    /// Converts an angle in radians to the nearest table index.
    pub fn index_of(theta: f64) -> u32 {
        let turns = theta / (2.0 * std::f64::consts::PI);
        let idx = (turns * LUT_SIZE as f64).round() as i64;
        idx.rem_euclid(LUT_SIZE as i64) as u32
    }

    /// Worst-case angle quantization, radians (half a table step).
    pub fn angle_resolution() -> f64 {
        std::f64::consts::PI / LUT_SIZE as f64
    }
}

impl Default for SinCosLut {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Q16 = Fixed<16>;

    #[test]
    fn roundtrip_f64() {
        for x in [-100.0, -1.5, -0.25, 0.0, 0.25, 1.5, 1000.125] {
            assert_eq!(Q16::from_f64(x).to_f64(), x);
        }
    }

    #[test]
    fn quantizes_to_lsb() {
        let eps = 1.0 / 65536.0;
        let x = Q16::from_f64(0.3);
        assert!((x.to_f64() - 0.3).abs() <= eps / 2.0);
    }

    #[test]
    fn add_sub_neg() {
        let a = Q16::from_f64(2.5);
        let b = Q16::from_f64(1.25);
        assert_eq!((a + b).to_f64(), 3.75);
        assert_eq!((a - b).to_f64(), 1.25);
        assert_eq!((-a).to_f64(), -2.5);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn multiplication_rounds() {
        let a = Q16::from_f64(3.0);
        let b = Q16::from_f64(1.0 / 3.0);
        let p = a * b;
        assert!((p.to_f64() - 1.0).abs() < 3.0 / 65536.0);
    }

    #[test]
    fn saturating_ops() {
        let big = Q16::from_f64(30000.0);
        assert_eq!(big.saturating_mul(big).raw(), i32::MAX);
        assert_eq!(Q16::from_f64(1.0).saturating_div(Q16::ZERO).raw(), i32::MAX);
        assert_eq!(
            Q16::from_f64(-1.0).saturating_div(Q16::ZERO).raw(),
            i32::MIN
        );
        assert_eq!(big.saturating_add(big).raw(), i32::MAX);
    }

    #[test]
    fn checked_ops_report_saturation() {
        let big = Q16::from_raw(i32::MAX);
        let (v, sat) = big.saturating_add_checked(Q16::one());
        assert_eq!(v.raw(), i32::MAX);
        assert!(sat);
        let (v, sat) = Q16::from_raw(i32::MIN).saturating_sub_checked(Q16::one());
        assert_eq!(v.raw(), i32::MIN);
        assert!(sat);
        let (v, sat) = Q16::from_f64(30000.0).saturating_mul_checked(Q16::from_f64(30000.0));
        assert_eq!(v.raw(), i32::MAX);
        assert!(sat);
        let (_, sat) = Q16::from_f64(1.0).saturating_div_checked(Q16::ZERO);
        assert!(sat);
        let (v, sat) = Q16::from_f64(2.0).saturating_add_checked(Q16::from_f64(3.0));
        assert_eq!(v.to_f64(), 5.0);
        assert!(!sat);
        let (v, sat) = Q16::from_f64(-30000.0).saturating_div_checked(Q16::from_f64(0.25));
        assert_eq!(v.raw(), i32::MIN);
        assert!(sat);
    }

    #[test]
    fn mul_add_fuses_single_rounding() {
        // 3 * (1/3) + 1 with one rounding lands closer than round(3/3)
        // followed by a rounded add in the worst case; here just check
        // exact behaviour on representable values.
        let (v, sat) =
            Q16::from_f64(1.5).saturating_mul_add_checked(Q16::from_f64(2.0), Q16::from_f64(0.25));
        assert_eq!(v.to_f64(), 3.25);
        assert!(!sat);
        let (v, sat) =
            Q16::from_f64(30000.0).saturating_mul_add_checked(Q16::from_f64(30000.0), Q16::ZERO);
        assert_eq!(v.raw(), i32::MAX);
        assert!(sat);
        assert_eq!(Q16::from_f64(-2.5).saturating_neg().to_f64(), 2.5);
        assert_eq!(Q16::from_raw(i32::MIN).saturating_neg().raw(), i32::MAX);
        assert_eq!(
            Q16::from_f64(7.5)
                .saturating_sub(Q16::from_f64(2.5))
                .to_f64(),
            5.0
        );
    }

    #[test]
    fn division_identities() {
        let a = Q16::from_f64(7.5);
        let b = Q16::from_f64(2.5);
        assert_eq!(a.saturating_div(b).to_f64(), 3.0);
        assert_eq!(a.saturating_div(Q16::one()), a);
    }

    #[test]
    fn integer_conversions() {
        assert_eq!(Q16::from_int(-7).to_f64(), -7.0);
        assert_eq!(Q16::from_f64(2.7).floor_int(), 2);
        assert_eq!(Q16::from_f64(-2.3).floor_int(), -3);
        assert_eq!(Q16::from_f64(2.5).round_int(), 3);
        assert_eq!(Q16::from_f64(2.49).round_int(), 2);
        assert_eq!(Q16::from_f64(-2.5).round_int(), -2); // half up
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q16::from_f64(1e9).raw(), i32::MAX);
        assert_eq!(Q16::from_f64(-1e9).raw(), i32::MIN);
    }

    #[test]
    fn lut_cardinal_points() {
        let lut = SinCosLut::new();
        assert_eq!(lut.lookup(0), (0, Q14_ONE));
        assert_eq!(lut.lookup(256), (Q14_ONE, 0));
        assert_eq!(lut.lookup(512), (0, -Q14_ONE));
        assert_eq!(lut.lookup(768), (-Q14_ONE, 0));
        assert_eq!(lut.lookup(1024), lut.lookup(0)); // wraps
    }

    #[test]
    fn lut_matches_f64_trig() {
        let lut = SinCosLut::new();
        let step = 2.0 * std::f64::consts::PI / LUT_SIZE as f64;
        for i in (0..LUT_SIZE as u32).step_by(7) {
            let (s, c) = lut.lookup(i);
            let theta = i as f64 * step;
            assert!((q14_to_f64(s) - theta.sin()).abs() < 1e-4, "sin at {i}");
            assert!((q14_to_f64(c) - theta.cos()).abs() < 1e-4, "cos at {i}");
        }
    }

    #[test]
    fn lut_pythagorean_identity() {
        let lut = SinCosLut::new();
        for i in (0..LUT_SIZE as u32).step_by(13) {
            let (s, c) = lut.lookup(i);
            let mag = q14_to_f64(s).powi(2) + q14_to_f64(c).powi(2);
            assert!((mag - 1.0).abs() < 2e-4, "index {i}: {mag}");
        }
    }

    #[test]
    fn index_of_angles() {
        assert_eq!(SinCosLut::index_of(0.0), 0);
        assert_eq!(SinCosLut::index_of(std::f64::consts::FRAC_PI_2), 256);
        assert_eq!(SinCosLut::index_of(-std::f64::consts::FRAC_PI_2), 768);
        assert_eq!(SinCosLut::index_of(2.0 * std::f64::consts::PI), 0);
        // Resolution: one table step is ~0.35 degrees.
        assert!(SinCosLut::angle_resolution() < 0.0031);
    }
}
