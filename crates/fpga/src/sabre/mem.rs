//! On-chip memory models.
//!
//! The Virtex-II XC2V1000 provides 40 BlockRAM tiles; the paper's Sabre
//! configuration allocates 8 Kbyte of program memory and 64 Kbyte of
//! data memory from them. The RC200E board adds two banks of 2 Mbyte
//! ZBT (zero-bus-turnaround) SRAM used as video framebuffers.

/// A word-addressable BlockRAM.
#[derive(Clone, Debug)]
pub struct BlockRam {
    words: Vec<u32>,
}

impl BlockRam {
    /// Creates a RAM of `bytes` capacity (rounded down to whole words),
    /// zero-initialized.
    pub fn new(bytes: usize) -> Self {
        Self {
            words: vec![0; bytes / 4],
        }
    }

    /// Capacity in bytes.
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Reads the word containing byte address `addr`.
    ///
    /// Returns `None` if the address is out of range or unaligned.
    pub fn read32(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) {
            return None;
        }
        self.words.get(addr as usize / 4).copied()
    }

    /// Writes the word at byte address `addr`.
    ///
    /// Returns `false` if the address is out of range or unaligned.
    pub fn write32(&mut self, addr: u32, value: u32) -> bool {
        if !addr.is_multiple_of(4) {
            return false;
        }
        match self.words.get_mut(addr as usize / 4) {
            Some(w) => {
                *w = value;
                true
            }
            None => false,
        }
    }

    /// Bulk-loads words starting at word index 0 (program load).
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the capacity.
    pub fn load(&mut self, image: &[u32]) {
        assert!(
            image.len() <= self.words.len(),
            "image of {} words exceeds memory of {} words",
            image.len(),
            self.words.len()
        );
        self.words[..image.len()].copy_from_slice(image);
    }

    /// Direct word access (for test harnesses).
    pub fn word(&self, index: usize) -> u32 {
        self.words[index]
    }
}

/// A ZBT SRAM bank with single-cycle random access and no turnaround
/// penalty between reads and writes — the property that makes the
/// double-buffered video design work at pixel rate.
#[derive(Clone, Debug)]
pub struct ZbtSram {
    words: Vec<u32>,
    reads: u64,
    writes: u64,
}

impl ZbtSram {
    /// Creates a bank of `bytes` capacity.
    pub fn new(bytes: usize) -> Self {
        Self {
            words: vec![0; bytes / 4],
            reads: 0,
            writes: 0,
        }
    }

    /// The RC200E's 2 Mbyte bank.
    pub fn rc200e_bank() -> Self {
        Self::new(2 * 1024 * 1024)
    }

    /// Capacity in bytes.
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Reads a word by word index (wraps at the bank size, as the
    /// address lines would).
    pub fn read(&mut self, word_index: usize) -> u32 {
        self.reads += 1;
        self.words[word_index % self.words.len()]
    }

    /// Writes a word by word index.
    pub fn write(&mut self, word_index: usize, value: u32) {
        self.writes += 1;
        let n = self.words.len();
        self.words[word_index % n] = value;
    }

    /// Total accesses (each is one cycle on a ZBT part).
    pub fn access_cycles(&self) -> u64 {
        self.reads + self.writes
    }

    /// Reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blockram_read_write() {
        let mut ram = BlockRam::new(64);
        assert!(ram.write32(0, 0xDEADBEEF));
        assert!(ram.write32(60, 42));
        assert_eq!(ram.read32(0), Some(0xDEADBEEF));
        assert_eq!(ram.read32(60), Some(42));
        assert_eq!(ram.read32(4), Some(0));
    }

    #[test]
    fn blockram_bounds_and_alignment() {
        let mut ram = BlockRam::new(64);
        assert_eq!(ram.read32(64), None);
        assert_eq!(ram.read32(2), None); // unaligned
        assert!(!ram.write32(64, 1));
        assert!(!ram.write32(1, 1));
    }

    #[test]
    fn blockram_load_image() {
        let mut ram = BlockRam::new(16);
        ram.load(&[1, 2, 3]);
        assert_eq!(ram.word(0), 1);
        assert_eq!(ram.word(2), 3);
        assert_eq!(ram.read32(12), Some(0));
    }

    #[test]
    #[should_panic(expected = "exceeds memory")]
    fn blockram_oversize_image_panics() {
        let mut ram = BlockRam::new(8);
        ram.load(&[1, 2, 3]);
    }

    #[test]
    fn zbt_counts_accesses() {
        let mut bank = ZbtSram::new(1024);
        bank.write(0, 7);
        bank.write(1, 8);
        assert_eq!(bank.read(0), 7);
        assert_eq!(bank.access_cycles(), 3);
        assert_eq!(bank.reads(), 1);
        assert_eq!(bank.writes(), 2);
    }

    #[test]
    fn zbt_wraps_addresses() {
        let mut bank = ZbtSram::new(16); // 4 words
        bank.write(5, 99); // wraps to index 1
        assert_eq!(bank.read(1), 99);
    }

    #[test]
    fn rc200e_bank_is_2mb() {
        assert_eq!(ZbtSram::rc200e_bank().len_bytes(), 2 * 1024 * 1024);
    }
}
