//! The Sabre 32-bit soft-core RISC and its board environment.
//!
//! "Sabre is a 32-bit RISC, designed in Handel-C, and programmed into
//! the FPGA as a soft-core. It has a Harvard architecture, with
//! expandable data and program memories [...] Peripherals are simply
//! connected via another 32-bit bus into the processor memory space."
//!
//! * [`isa`] — instruction set, encoder/decoder, cycle costs
//! * [`asm`] — two-pass assembler and disassembler
//! * [`cpu`] — the instruction-set simulator
//! * [`bus`] — peripheral bus and the Figure-6 devices (LEDs,
//!   switches, touchscreen, GUI FIFO, two UARTs, control block)
//! * [`mem`] — BlockRAM and ZBT SRAM models

pub mod asm;
pub mod bus;
pub mod cpu;
pub mod isa;
pub mod mem;

pub use asm::{assemble, disassemble, AsmError, Program};
pub use bus::{
    Bus, ControlBlock, ControlReg, GuiFifo, Leds, Peripheral, Switches, TouchScreen, UartPort,
    BUS_BASE, CONTROL_BASE, GUI_BASE, LEDS_BASE, SWITCHES_BASE, TOUCH_BASE, UART1_BASE, UART2_BASE,
};
pub use cpu::{Sabre, StopReason, Trap, DATA_BYTES, PROGRAM_BYTES};
pub use isa::Instr;
pub use mem::{BlockRam, ZbtSram};
