//! The Sabre instruction set architecture.
//!
//! Sabre is the paper's 32-bit RISC soft core: Harvard architecture,
//! BlockRAM program and data memories, memory-mapped peripherals. The
//! paper does not publish the ISA, so this is a clean-room definition
//! with the properties the paper describes (32-bit datapath, C
//! compilable, bus-master load/store I/O):
//!
//! * 16 general registers `r0..r15`; `r0` is hardwired to zero.
//! * Fixed 32-bit instruction words:
//!   - R-type: `op[31:26] rd[25:22] rs1[21:18] rs2[17:14]`
//!   - I-type: `op[31:26] rd[25:22] rs1[21:18] imm18[17:0]` (signed)
//!   - B-type: `op[31:26] rs1[25:22] rs2[21:18] off18[17:0]` (signed,
//!     instruction-relative)
//!   - J-type: `op[31:26] rd[25:22] off22[21:0]` (signed)
//! * Loads/stores are word-wide; addresses at or above
//!   [`super::bus::BUS_BASE`] reach the peripheral bus.

use std::fmt;

/// A register index (0-15).
pub type Reg = u8;

/// One decoded Sabre instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `rd = rs1 + rs2`
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2`
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 31)`
    Sll(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 31)` (logical)
    Srl(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 31)` (arithmetic)
    Sra(Reg, Reg, Reg),
    /// `rd = low32(rs1 * rs2)`
    Mul(Reg, Reg, Reg),
    /// `rd = high32(signed rs1 * rs2)`
    Mulh(Reg, Reg, Reg),
    /// `rd = high32(unsigned rs1 * rs2)`
    Mulhu(Reg, Reg, Reg),
    /// `rd = (rs1 <s rs2) ? 1 : 0`
    Slt(Reg, Reg, Reg),
    /// `rd = (rs1 <u rs2) ? 1 : 0`
    Sltu(Reg, Reg, Reg),
    /// `rd = rs1 + imm`
    Addi(Reg, Reg, i32),
    /// `rd = rs1 & imm`
    Andi(Reg, Reg, i32),
    /// `rd = rs1 | imm`
    Ori(Reg, Reg, i32),
    /// `rd = rs1 ^ imm`
    Xori(Reg, Reg, i32),
    /// `rd = (rs1 <s imm) ? 1 : 0`
    Slti(Reg, Reg, i32),
    /// `rd = imm16 << 16`
    Lui(Reg, i32),
    /// `rd = mem[rs1 + imm]`
    Lw(Reg, Reg, i32),
    /// `mem[rs1 + imm] = rs2` (encoded with rd = rs2)
    Sw(Reg, Reg, i32),
    /// `if rs1 == rs2 then pc += off`
    Beq(Reg, Reg, i32),
    /// `if rs1 != rs2 then pc += off`
    Bne(Reg, Reg, i32),
    /// `if rs1 <s rs2 then pc += off`
    Blt(Reg, Reg, i32),
    /// `if rs1 >=s rs2 then pc += off`
    Bge(Reg, Reg, i32),
    /// `rd = pc + 1; pc += off`
    Jal(Reg, i32),
    /// `rd = pc + 1; pc = (rs1 + imm) / 4` (byte target, word aligned)
    Jalr(Reg, Reg, i32),
    /// Stops the core.
    Halt,
    /// No operation.
    Nop,
}

/// Errors from decoding a machine word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode field.
    BadOpcode(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode numbers.
const OP_ADD: u8 = 0x01;
const OP_SUB: u8 = 0x02;
const OP_AND: u8 = 0x03;
const OP_OR: u8 = 0x04;
const OP_XOR: u8 = 0x05;
const OP_SLL: u8 = 0x06;
const OP_SRL: u8 = 0x07;
const OP_SRA: u8 = 0x08;
const OP_MUL: u8 = 0x09;
const OP_MULH: u8 = 0x0A;
const OP_MULHU: u8 = 0x0B;
const OP_SLT: u8 = 0x0C;
const OP_SLTU: u8 = 0x0D;
const OP_ADDI: u8 = 0x10;
const OP_ANDI: u8 = 0x11;
const OP_ORI: u8 = 0x12;
const OP_XORI: u8 = 0x13;
const OP_SLTI: u8 = 0x14;
const OP_LUI: u8 = 0x15;
const OP_LW: u8 = 0x18;
const OP_SW: u8 = 0x19;
const OP_BEQ: u8 = 0x20;
const OP_BNE: u8 = 0x21;
const OP_BLT: u8 = 0x22;
const OP_BGE: u8 = 0x23;
const OP_JAL: u8 = 0x28;
const OP_JALR: u8 = 0x29;
const OP_HALT: u8 = 0x3F;
const OP_NOP: u8 = 0x00;

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn imm18(x: i32) -> u32 {
    (x as u32) & 0x3FFFF
}

fn enc_r(op: u8, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    ((op as u32) << 26) | ((rd as u32) << 22) | ((rs1 as u32) << 18) | ((rs2 as u32) << 14)
}

fn enc_i(op: u8, rd: Reg, rs1: Reg, imm: i32) -> u32 {
    ((op as u32) << 26) | ((rd as u32) << 22) | ((rs1 as u32) << 18) | imm18(imm)
}

fn enc_j(op: u8, rd: Reg, off: i32) -> u32 {
    ((op as u32) << 26) | ((rd as u32) << 22) | ((off as u32) & 0x3F_FFFF)
}

impl Instr {
    /// Encodes to a machine word.
    pub fn encode(self) -> u32 {
        use Instr::*;
        match self {
            Add(d, a, b) => enc_r(OP_ADD, d, a, b),
            Sub(d, a, b) => enc_r(OP_SUB, d, a, b),
            And(d, a, b) => enc_r(OP_AND, d, a, b),
            Or(d, a, b) => enc_r(OP_OR, d, a, b),
            Xor(d, a, b) => enc_r(OP_XOR, d, a, b),
            Sll(d, a, b) => enc_r(OP_SLL, d, a, b),
            Srl(d, a, b) => enc_r(OP_SRL, d, a, b),
            Sra(d, a, b) => enc_r(OP_SRA, d, a, b),
            Mul(d, a, b) => enc_r(OP_MUL, d, a, b),
            Mulh(d, a, b) => enc_r(OP_MULH, d, a, b),
            Mulhu(d, a, b) => enc_r(OP_MULHU, d, a, b),
            Slt(d, a, b) => enc_r(OP_SLT, d, a, b),
            Sltu(d, a, b) => enc_r(OP_SLTU, d, a, b),
            Addi(d, a, i) => enc_i(OP_ADDI, d, a, i),
            Andi(d, a, i) => enc_i(OP_ANDI, d, a, i),
            Ori(d, a, i) => enc_i(OP_ORI, d, a, i),
            Xori(d, a, i) => enc_i(OP_XORI, d, a, i),
            Slti(d, a, i) => enc_i(OP_SLTI, d, a, i),
            Lui(d, i) => enc_i(OP_LUI, d, 0, i & 0xFFFF),
            Lw(d, a, i) => enc_i(OP_LW, d, a, i),
            Sw(s, a, i) => enc_i(OP_SW, s, a, i),
            Beq(a, b, o) => enc_i(OP_BEQ, a, b, o),
            Bne(a, b, o) => enc_i(OP_BNE, a, b, o),
            Blt(a, b, o) => enc_i(OP_BLT, a, b, o),
            Bge(a, b, o) => enc_i(OP_BGE, a, b, o),
            Jal(d, o) => enc_j(OP_JAL, d, o),
            Jalr(d, a, i) => enc_i(OP_JALR, d, a, i),
            Halt => (OP_HALT as u32) << 26,
            Nop => (OP_NOP as u32) << 26,
        }
    }

    /// Decodes a machine word.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadOpcode`] on an unknown opcode field.
    pub fn decode(word: u32) -> Result<Self, DecodeError> {
        use Instr::*;
        let op = (word >> 26) as u8;
        let rd = ((word >> 22) & 0xF) as Reg;
        let rs1 = ((word >> 18) & 0xF) as Reg;
        let rs2 = ((word >> 14) & 0xF) as Reg;
        let i18 = sext(word & 0x3FFFF, 18);
        let o22 = sext(word & 0x3F_FFFF, 22);
        Ok(match op {
            OP_ADD => Add(rd, rs1, rs2),
            OP_SUB => Sub(rd, rs1, rs2),
            OP_AND => And(rd, rs1, rs2),
            OP_OR => Or(rd, rs1, rs2),
            OP_XOR => Xor(rd, rs1, rs2),
            OP_SLL => Sll(rd, rs1, rs2),
            OP_SRL => Srl(rd, rs1, rs2),
            OP_SRA => Sra(rd, rs1, rs2),
            OP_MUL => Mul(rd, rs1, rs2),
            OP_MULH => Mulh(rd, rs1, rs2),
            OP_MULHU => Mulhu(rd, rs1, rs2),
            OP_SLT => Slt(rd, rs1, rs2),
            OP_SLTU => Sltu(rd, rs1, rs2),
            OP_ADDI => Addi(rd, rs1, i18),
            OP_ANDI => Andi(rd, rs1, i18),
            OP_ORI => Ori(rd, rs1, i18),
            OP_XORI => Xori(rd, rs1, i18),
            OP_SLTI => Slti(rd, rs1, i18),
            OP_LUI => Lui(rd, (word & 0xFFFF) as i32),
            OP_LW => Lw(rd, rs1, i18),
            OP_SW => Sw(rd, rs1, i18),
            OP_BEQ => Beq(rd, rs1, i18),
            OP_BNE => Bne(rd, rs1, i18),
            OP_BLT => Blt(rd, rs1, i18),
            OP_BGE => Bge(rd, rs1, i18),
            OP_JAL => Jal(rd, o22),
            OP_JALR => Jalr(rd, rs1, i18),
            OP_HALT => Halt,
            OP_NOP => Nop,
            other => return Err(DecodeError::BadOpcode(other)),
        })
    }

    /// Cycle cost of this instruction (taken branches add one more).
    pub fn base_cycles(self) -> u64 {
        use Instr::*;
        match self {
            Mul(..) | Mulh(..) | Mulhu(..) => 3,
            Lw(..) | Sw(..) => 2,
            Jal(..) | Jalr(..) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add(d, a, b) => write!(f, "add r{d}, r{a}, r{b}"),
            Sub(d, a, b) => write!(f, "sub r{d}, r{a}, r{b}"),
            And(d, a, b) => write!(f, "and r{d}, r{a}, r{b}"),
            Or(d, a, b) => write!(f, "or r{d}, r{a}, r{b}"),
            Xor(d, a, b) => write!(f, "xor r{d}, r{a}, r{b}"),
            Sll(d, a, b) => write!(f, "sll r{d}, r{a}, r{b}"),
            Srl(d, a, b) => write!(f, "srl r{d}, r{a}, r{b}"),
            Sra(d, a, b) => write!(f, "sra r{d}, r{a}, r{b}"),
            Mul(d, a, b) => write!(f, "mul r{d}, r{a}, r{b}"),
            Mulh(d, a, b) => write!(f, "mulh r{d}, r{a}, r{b}"),
            Mulhu(d, a, b) => write!(f, "mulhu r{d}, r{a}, r{b}"),
            Slt(d, a, b) => write!(f, "slt r{d}, r{a}, r{b}"),
            Sltu(d, a, b) => write!(f, "sltu r{d}, r{a}, r{b}"),
            Addi(d, a, i) => write!(f, "addi r{d}, r{a}, {i}"),
            Andi(d, a, i) => write!(f, "andi r{d}, r{a}, {i}"),
            Ori(d, a, i) => write!(f, "ori r{d}, r{a}, {i}"),
            Xori(d, a, i) => write!(f, "xori r{d}, r{a}, {i}"),
            Slti(d, a, i) => write!(f, "slti r{d}, r{a}, {i}"),
            Lui(d, i) => write!(f, "lui r{d}, {i:#x}"),
            Lw(d, a, i) => write!(f, "lw r{d}, {i}(r{a})"),
            Sw(s, a, i) => write!(f, "sw r{s}, {i}(r{a})"),
            Beq(a, b, o) => write!(f, "beq r{a}, r{b}, {o}"),
            Bne(a, b, o) => write!(f, "bne r{a}, r{b}, {o}"),
            Blt(a, b, o) => write!(f, "blt r{a}, r{b}, {o}"),
            Bge(a, b, o) => write!(f, "bge r{a}, r{b}, {o}"),
            Jal(d, o) => write!(f, "jal r{d}, {o}"),
            Jalr(d, a, i) => write!(f, "jalr r{d}, r{a}, {i}"),
            Halt => write!(f, "halt"),
            Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_samples() -> Vec<Instr> {
        use Instr::*;
        vec![
            Add(1, 2, 3),
            Sub(15, 14, 13),
            And(0, 1, 2),
            Or(3, 4, 5),
            Xor(6, 7, 8),
            Sll(9, 10, 11),
            Srl(1, 1, 1),
            Sra(2, 2, 2),
            Mul(3, 4, 5),
            Mulh(6, 7, 8),
            Mulhu(9, 10, 11),
            Slt(12, 13, 14),
            Sltu(15, 0, 1),
            Addi(1, 2, -42),
            Andi(3, 4, 0xFF),
            Ori(5, 6, 0x10),
            Xori(7, 8, -1),
            Slti(9, 10, 100),
            Lui(11, 0x8000),
            Lw(1, 2, 64),
            Sw(3, 4, -8),
            Beq(1, 2, -5),
            Bne(3, 4, 10),
            Blt(5, 6, 131071),
            Bge(7, 8, -131072),
            Jal(15, 12345),
            Jalr(15, 1, 0),
            Halt,
            Nop,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for instr in all_samples() {
            let word = instr.encode();
            let back = Instr::decode(word).unwrap();
            assert_eq!(back, instr, "word {word:#010x}");
        }
    }

    #[test]
    fn immediates_sign_extend() {
        let word = Instr::Addi(1, 0, -1).encode();
        assert_eq!(Instr::decode(word).unwrap(), Instr::Addi(1, 0, -1));
        let word = Instr::Beq(0, 0, -131072).encode();
        assert_eq!(Instr::decode(word).unwrap(), Instr::Beq(0, 0, -131072));
    }

    #[test]
    fn bad_opcode_rejected() {
        let word = 0x3Eu32 << 26;
        assert!(matches!(
            Instr::decode(word),
            Err(DecodeError::BadOpcode(0x3E))
        ));
    }

    #[test]
    fn display_is_assembly_like() {
        assert_eq!(Instr::Add(1, 2, 3).to_string(), "add r1, r2, r3");
        assert_eq!(Instr::Lw(1, 2, 8).to_string(), "lw r1, 8(r2)");
        assert_eq!(Instr::Sw(3, 4, -4).to_string(), "sw r3, -4(r4)");
    }

    #[test]
    fn cycle_costs() {
        assert_eq!(Instr::Add(1, 1, 1).base_cycles(), 1);
        assert_eq!(Instr::Mul(1, 1, 1).base_cycles(), 3);
        assert_eq!(Instr::Lw(1, 1, 0).base_cycles(), 2);
        assert_eq!(Instr::Jal(0, 0).base_cycles(), 2);
    }
}
