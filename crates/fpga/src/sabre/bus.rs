//! The Sabre peripheral bus and the board peripherals of Figure 6.
//!
//! The Sabre is the bus master; peripherals are "smart" memory-mapped
//! register blocks (the paper: "peripherals are simply connected via
//! another 32-bit bus into the processor memory space"). Loads and
//! stores with addresses at or above [`BUS_BASE`] are routed here.

use std::collections::VecDeque;

/// First address of the peripheral space.
pub const BUS_BASE: u32 = 0x8000_0000;
/// LED register block offset.
pub const LEDS_BASE: u32 = 0x8000_0000;
/// Switch register block offset.
pub const SWITCHES_BASE: u32 = 0x8000_0010;
/// Touchscreen register block offset.
pub const TOUCH_BASE: u32 = 0x8000_0020;
/// GUI command block offset.
pub const GUI_BASE: u32 = 0x8000_0030;
/// UART 1 (DMU) block offset.
pub const UART1_BASE: u32 = 0x8000_0040;
/// UART 2 (ACC) block offset.
pub const UART2_BASE: u32 = 0x8000_0050;
/// Control/angles block offset (the 12-register SabreBusControl).
pub const CONTROL_BASE: u32 = 0x8000_0060;

/// A memory-mapped peripheral occupying a small register window.
///
/// Peripherals are `Send` so a whole [`crate::sabre::Sabre`] (and any
/// host-side harness embedding one, such as a fusion-session event
/// sink) can move to a worker thread.
pub trait Peripheral: Send {
    /// Human-readable name (diagnostics).
    fn name(&self) -> &'static str;

    /// Size of the register window in bytes.
    fn window(&self) -> u32;

    /// Reads the register at `offset` (word aligned).
    fn read(&mut self, offset: u32) -> u32;

    /// Writes the register at `offset`.
    fn write(&mut self, offset: u32, value: u32);

    /// Typed access for host-side harnesses
    /// (`bus.device_at(base)?.as_any().downcast_mut::<UartPort>()`).
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// Bus fault raised on access to an unmapped address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusFault(pub u32);

impl std::fmt::Display for BusFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bus fault at {:#010x}", self.0)
    }
}

impl std::error::Error for BusFault {}

/// The peripheral bus: an address-sorted set of register windows.
#[derive(Default)]
pub struct Bus {
    devices: Vec<(u32, Box<dyn Peripheral>)>,
}

impl std::fmt::Debug for Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self
            .devices
            .iter()
            .map(|(base, d)| format!("{:#010x}:{}", base, d.name()))
            .collect();
        write!(f, "Bus[{}]", names.join(", "))
    }
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a peripheral at a base address.
    ///
    /// # Panics
    ///
    /// Panics if the window overlaps an existing device.
    pub fn map(&mut self, base: u32, device: Box<dyn Peripheral>) {
        let end = base + device.window();
        for (b, d) in &self.devices {
            let dend = b + d.window();
            assert!(
                end <= *b || base >= dend,
                "window {:#x}..{:#x} overlaps {}",
                base,
                end,
                d.name()
            );
        }
        self.devices.push((base, device));
        self.devices.sort_by_key(|(b, _)| *b);
    }

    fn find(&mut self, addr: u32) -> Option<(&mut Box<dyn Peripheral>, u32)> {
        for (base, dev) in &mut self.devices {
            if addr >= *base && addr < *base + dev.window() {
                return Some((dev, addr - *base));
            }
        }
        None
    }

    /// Reads a bus word.
    ///
    /// # Errors
    ///
    /// [`BusFault`] if no device claims the address.
    pub fn read32(&mut self, addr: u32) -> Result<u32, BusFault> {
        match self.find(addr) {
            Some((dev, off)) => Ok(dev.read(off)),
            None => Err(BusFault(addr)),
        }
    }

    /// Writes a bus word.
    ///
    /// # Errors
    ///
    /// [`BusFault`] if no device claims the address.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        match self.find(addr) {
            Some((dev, off)) => {
                dev.write(off, value);
                Ok(())
            }
            None => Err(BusFault(addr)),
        }
    }

    /// Borrows a mapped device by base address (test/host access).
    pub fn device_at(&mut self, base: u32) -> Option<&mut Box<dyn Peripheral>> {
        self.devices
            .iter_mut()
            .find(|(b, _)| *b == base)
            .map(|(_, d)| d)
    }
}

/// The RC200E LED bank (write = set LEDs, read back).
#[derive(Clone, Debug, Default)]
pub struct Leds {
    state: u32,
}

impl Leds {
    /// Creates LEDs, all off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current LED state.
    pub fn state(&self) -> u32 {
        self.state
    }
}

impl Peripheral for Leds {
    fn name(&self) -> &'static str {
        "leds"
    }

    fn window(&self) -> u32 {
        4
    }

    fn read(&mut self, _offset: u32) -> u32 {
        self.state
    }

    fn write(&mut self, _offset: u32, value: u32) {
        self.state = value;
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The board switch bank (host sets, core reads).
#[derive(Clone, Debug, Default)]
pub struct Switches {
    state: u32,
}

impl Switches {
    /// Creates switches, all open.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the switch lines (host side).
    pub fn set(&mut self, state: u32) {
        self.state = state;
    }
}

impl Peripheral for Switches {
    fn name(&self) -> &'static str {
        "switches"
    }

    fn window(&self) -> u32 {
        4
    }

    fn read(&mut self, _offset: u32) -> u32 {
        self.state
    }

    fn write(&mut self, _offset: u32, _value: u32) {}

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Touchscreen: X, Y and pressed registers (host sets, core reads).
#[derive(Clone, Debug, Default)]
pub struct TouchScreen {
    x: u32,
    y: u32,
    pressed: bool,
}

impl TouchScreen {
    /// Creates an untouched screen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates a touch at pixel coordinates.
    pub fn touch(&mut self, x: u32, y: u32) {
        self.x = x;
        self.y = y;
        self.pressed = true;
    }

    /// Simulates release.
    pub fn release(&mut self) {
        self.pressed = false;
    }
}

impl Peripheral for TouchScreen {
    fn name(&self) -> &'static str {
        "touchscreen"
    }

    fn window(&self) -> u32 {
        12
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0 => self.x,
            4 => self.y,
            8 => self.pressed as u32,
            _ => 0,
        }
    }

    fn write(&mut self, _offset: u32, _value: u32) {}

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// GUI command FIFO: the core writes packed draw commands; the video
/// block (host side here) drains them. Register 0 is the command port,
/// register 4 is status (bit 0 = FIFO not full).
#[derive(Clone, Debug)]
pub struct GuiFifo {
    commands: VecDeque<u32>,
    capacity: usize,
    overflows: u64,
}

impl GuiFifo {
    /// Creates a FIFO with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            commands: VecDeque::with_capacity(capacity),
            capacity,
            overflows: 0,
        }
    }

    /// Drains all pending commands (video side).
    pub fn drain(&mut self) -> Vec<u32> {
        self.commands.drain(..).collect()
    }

    /// Commands dropped due to a full FIFO.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

impl Peripheral for GuiFifo {
    fn name(&self) -> &'static str {
        "gui"
    }

    fn window(&self) -> u32 {
        8
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            4 => (self.commands.len() < self.capacity) as u32,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        if offset == 0 {
            if self.commands.len() < self.capacity {
                self.commands.push_back(value);
            } else {
                self.overflows += 1;
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A UART port as seen by the core: offset 0 = data (read pops RX,
/// write pushes TX), offset 4 = status (bit 0 = RX available, bit 1 =
/// TX ready).
#[derive(Clone, Debug, Default)]
pub struct UartPort {
    rx: VecDeque<u8>,
    tx: VecDeque<u8>,
}

impl UartPort {
    /// Creates an idle port.
    pub fn new() -> Self {
        Self::default()
    }

    /// Host side: deliver received bytes to the core.
    pub fn feed_rx(&mut self, bytes: &[u8]) {
        self.rx.extend(bytes.iter().copied());
    }

    /// Host side: collect bytes the core transmitted.
    pub fn take_tx(&mut self) -> Vec<u8> {
        self.tx.drain(..).collect()
    }

    /// Bytes waiting for the core to read.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }
}

impl Peripheral for UartPort {
    fn name(&self) -> &'static str {
        "uart"
    }

    fn window(&self) -> u32 {
        8
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0 => self.rx.pop_front().map_or(0xFFFF_FFFF, u32::from),
            4 => (!self.rx.is_empty() as u32) | 0b10, // TX always ready
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        if offset == 0 {
            self.tx.push_back(value as u8);
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Register indices of the control block (one per word).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum ControlReg {
    /// Roll misalignment, Q16.16 radians.
    Roll = 0,
    /// Pitch misalignment, Q16.16 radians.
    Pitch = 1,
    /// Yaw misalignment, Q16.16 radians.
    Yaw = 2,
    /// Roll 1-sigma, Q16.16 radians.
    RollSigma = 3,
    /// Pitch 1-sigma, Q16.16 radians.
    PitchSigma = 4,
    /// Yaw 1-sigma, Q16.16 radians.
    YawSigma = 5,
    /// Status flags (bit 0 = Kalman result valid, bit 1 = video enable).
    Status = 6,
    /// Count of filter updates performed.
    UpdateCount = 7,
    /// Operating mode selector.
    Mode = 8,
    /// X translation correction, pixels (signed).
    Bx = 9,
    /// Y translation correction, pixels (signed).
    By = 10,
    /// Reserved (reads back what was written).
    Reserved = 11,
}

/// The 12-register control block ("SabreBusControlRun ... a set of
/// twelve memory-mapped registers including roll, pitch and yaw values
/// and status flags that are used directly by the FPGA video
/// transformation block").
#[derive(Clone, Debug, Default)]
pub struct ControlBlock {
    regs: [u32; 12],
}

impl ControlBlock {
    /// Creates a zeroed control block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Host/video-side register read.
    pub fn reg(&self, r: ControlReg) -> u32 {
        self.regs[r as usize]
    }

    /// Host/video-side register write.
    pub fn set_reg(&mut self, r: ControlReg, value: u32) {
        self.regs[r as usize] = value;
    }

    /// Roll/pitch/yaw as Q16.16 radians (the video block's view).
    pub fn angles_q16(&self) -> [i32; 3] {
        [
            self.regs[0] as i32,
            self.regs[1] as i32,
            self.regs[2] as i32,
        ]
    }

    /// `true` when the Kalman-result-valid status bit is set.
    pub fn result_valid(&self) -> bool {
        self.regs[ControlReg::Status as usize] & 1 != 0
    }
}

impl Peripheral for ControlBlock {
    fn name(&self) -> &'static str {
        "control"
    }

    fn window(&self) -> u32 {
        48
    }

    fn read(&mut self, offset: u32) -> u32 {
        self.regs[(offset / 4) as usize % 12]
    }

    fn write(&mut self, offset: u32, value: u32) {
        self.regs[(offset / 4) as usize % 12] = value;
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Builds the standard RC200E peripheral set of Figure 6 at the
/// canonical base addresses.
pub fn standard_bus() -> Bus {
    let mut bus = Bus::new();
    bus.map(LEDS_BASE, Box::new(Leds::new()));
    bus.map(SWITCHES_BASE, Box::new(Switches::new()));
    bus.map(TOUCH_BASE, Box::new(TouchScreen::new()));
    bus.map(GUI_BASE, Box::new(GuiFifo::new(64)));
    bus.map(UART1_BASE, Box::new(UartPort::new()));
    bus.map(UART2_BASE, Box::new(UartPort::new()));
    bus.map(CONTROL_BASE, Box::new(ControlBlock::new()));
    bus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_routes_by_window() {
        let mut bus = standard_bus();
        bus.write32(LEDS_BASE, 0b1010).unwrap();
        assert_eq!(bus.read32(LEDS_BASE).unwrap(), 0b1010);
        assert_eq!(bus.read32(TOUCH_BASE + 8).unwrap(), 0); // not pressed
    }

    #[test]
    fn unmapped_address_faults() {
        let mut bus = standard_bus();
        assert!(bus.read32(0x9000_0000).is_err());
        assert!(bus.write32(0x8000_0100, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_map_panics() {
        let mut bus = Bus::new();
        bus.map(0x8000_0000, Box::new(Leds::new()));
        bus.map(0x8000_0000, Box::new(Leds::new()));
    }

    #[test]
    fn uart_port_fifo_semantics() {
        let mut port = UartPort::new();
        port.feed_rx(&[0x41, 0x42]);
        assert_eq!(port.read(4) & 1, 1); // RX available
        assert_eq!(port.read(0), 0x41);
        assert_eq!(port.read(0), 0x42);
        assert_eq!(port.read(4) & 1, 0);
        assert_eq!(port.read(0), 0xFFFF_FFFF); // empty marker
        port.write(0, 0x55);
        assert_eq!(port.take_tx(), vec![0x55]);
    }

    #[test]
    fn gui_fifo_overflow_counts() {
        let mut gui = GuiFifo::new(2);
        gui.write(0, 1);
        gui.write(0, 2);
        assert_eq!(gui.read(4), 0); // full
        gui.write(0, 3);
        assert_eq!(gui.overflows(), 1);
        assert_eq!(gui.drain(), vec![1, 2]);
        assert_eq!(gui.read(4), 1);
    }

    #[test]
    fn control_block_roundtrip() {
        let mut ctl = ControlBlock::new();
        ctl.write(0, 0x0001_8000); // roll = 1.5 in Q16.16
        ctl.write(24, 0b01); // status: valid
        assert_eq!(ctl.angles_q16()[0], 0x0001_8000);
        assert!(ctl.result_valid());
        assert_eq!(ctl.reg(ControlReg::Roll), 0x0001_8000);
    }

    #[test]
    fn touchscreen_reports_touches() {
        let mut ts = TouchScreen::new();
        ts.touch(100, 200);
        assert_eq!(ts.read(0), 100);
        assert_eq!(ts.read(4), 200);
        assert_eq!(ts.read(8), 1);
        ts.release();
        assert_eq!(ts.read(8), 0);
    }

    #[test]
    fn switches_are_read_only() {
        let mut sw = Switches::new();
        sw.set(0xF);
        sw.write(0, 0x0);
        assert_eq!(sw.read(0), 0xF);
    }
}
