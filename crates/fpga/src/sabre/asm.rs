//! Two-pass assembler for the Sabre ISA.
//!
//! The paper's flow compiled C to the Sabre instruction set and merged
//! the machine code into the FPGA BlockRAM initialization; this
//! assembler fills the same role for the simulator, so demo programs
//! and tests can be written symbolically.
//!
//! # Syntax
//!
//! ```text
//! ; comment (also '#')
//! start:  addi r1, r0, 10     ; labels end with ':'
//! loop:   add  r2, r2, r1
//!         addi r1, r1, -1
//!         bne  r1, r0, loop   ; branch targets are labels
//!         sw   r2, 0(r0)      ; load/store: imm(base)
//!         lui  r3, 0x8000     ; hex immediates
//!         jal  r15, func
//!         halt
//! value:  .word 1234          ; literal data word
//! ```

use super::isa::{Instr, Reg};
use std::collections::HashMap;
use std::fmt;

/// Assembly errors, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// The output of assembly: machine words plus the label map.
#[derive(Clone, Debug)]
pub struct Program {
    /// Encoded machine words, ready for program memory.
    pub words: Vec<u32>,
    /// Label name to word address.
    pub labels: HashMap<String, u32>,
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    if t.eq_ignore_ascii_case("zero") {
        return Ok(0);
    }
    let stripped = t
        .strip_prefix('r')
        .or_else(|| t.strip_prefix('R'))
        .ok_or_else(|| err(line, format!("expected register, got `{t}`")))?;
    let n: u8 = stripped
        .parse()
        .map_err(|_| err(line, format!("bad register `{t}`")))?;
    if n > 15 {
        return Err(err(line, format!("register out of range: `{t}`")));
    }
    Ok(n)
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let t = tok.trim();
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{t}`")))?;
    let signed = if neg { -value } else { value };
    i32::try_from(signed).map_err(|_| err(line, format!("immediate out of range `{t}`")))
}

/// Immediate or label (resolved as signed pc-relative word offset).
fn parse_target(
    tok: &str,
    labels: &HashMap<String, u32>,
    here: u32,
    line: usize,
) -> Result<i32, AsmError> {
    let t = tok.trim();
    if let Some(&addr) = labels.get(t) {
        Ok(addr as i32 - here as i32)
    } else {
        parse_imm(t, line)
    }
}

/// Parses `imm(base)` memory operands.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let t = tok.trim();
    let open = t
        .find('(')
        .ok_or_else(|| err(line, format!("expected imm(base), got `{t}`")))?;
    let close = t
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{t}`")))?;
    let imm_part = &t[..open];
    let imm = if imm_part.trim().is_empty() {
        0
    } else {
        parse_imm(imm_part, line)?
    };
    let base = parse_reg(&t[open + 1..close], line)?;
    Ok((imm, base))
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find(';')
        .into_iter()
        .chain(line.find('#'))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

/// One cleaned source statement.
struct Statement<'a> {
    line_no: usize,
    mnemonic: &'a str,
    operands: Vec<&'a str>,
}

fn tokenize(source: &str) -> Result<(Vec<Statement<'_>>, HashMap<String, u32>), AsmError> {
    let mut statements = Vec::new();
    let mut labels = HashMap::new();
    let mut addr: u32 = 0;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = strip_comment(raw).trim();
        // Labels (possibly several) at the start.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break; // `:` belongs to something else, not a label
            }
            if labels.insert(label.to_string(), addr).is_some() {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(ws) => text.split_at(ws),
            None => (text, ""),
        };
        let operands: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        statements.push(Statement {
            line_no,
            mnemonic,
            operands,
        });
        addr += 1;
    }
    Ok((statements, labels))
}

/// Assembles Sabre source text.
///
/// # Errors
///
/// [`AsmError`] with a line number for syntax errors, bad registers,
/// out-of-range immediates and duplicate/undefined labels.
///
/// # Examples
///
/// ```
/// let program = fpga::sabre::asm::assemble(
///     "        addi r1, r0, 41\n         addi r1, r1, 1\n         halt\n",
/// ).unwrap();
/// assert_eq!(program.words.len(), 3);
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let (statements, labels) = tokenize(source)?;
    let mut words = Vec::with_capacity(statements.len());
    for (word_addr, st) in statements.iter().enumerate() {
        let here = word_addr as u32;
        let n = st.line_no;
        let ops = &st.operands;
        let need = |count: usize| -> Result<(), AsmError> {
            if ops.len() == count {
                Ok(())
            } else {
                Err(err(
                    n,
                    format!(
                        "`{}` expects {count} operands, got {}",
                        st.mnemonic,
                        ops.len()
                    ),
                ))
            }
        };
        let instr = match st.mnemonic.to_ascii_lowercase().as_str() {
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "mul" | "mulh"
            | "mulhu" | "slt" | "sltu" => {
                need(3)?;
                let d = parse_reg(ops[0], n)?;
                let a = parse_reg(ops[1], n)?;
                let b = parse_reg(ops[2], n)?;
                match st.mnemonic.to_ascii_lowercase().as_str() {
                    "add" => Instr::Add(d, a, b),
                    "sub" => Instr::Sub(d, a, b),
                    "and" => Instr::And(d, a, b),
                    "or" => Instr::Or(d, a, b),
                    "xor" => Instr::Xor(d, a, b),
                    "sll" => Instr::Sll(d, a, b),
                    "srl" => Instr::Srl(d, a, b),
                    "sra" => Instr::Sra(d, a, b),
                    "mul" => Instr::Mul(d, a, b),
                    "mulh" => Instr::Mulh(d, a, b),
                    "mulhu" => Instr::Mulhu(d, a, b),
                    "slt" => Instr::Slt(d, a, b),
                    _ => Instr::Sltu(d, a, b),
                }
            }
            "addi" | "andi" | "ori" | "xori" | "slti" => {
                need(3)?;
                let d = parse_reg(ops[0], n)?;
                let a = parse_reg(ops[1], n)?;
                let i = parse_imm(ops[2], n)?;
                if !(-131072..=131071).contains(&i) {
                    return Err(err(n, format!("immediate {i} exceeds 18 bits")));
                }
                match st.mnemonic.to_ascii_lowercase().as_str() {
                    "addi" => Instr::Addi(d, a, i),
                    "andi" => Instr::Andi(d, a, i),
                    "ori" => Instr::Ori(d, a, i),
                    "xori" => Instr::Xori(d, a, i),
                    _ => Instr::Slti(d, a, i),
                }
            }
            "lui" => {
                need(2)?;
                let d = parse_reg(ops[0], n)?;
                let i = parse_imm(ops[1], n)?;
                if !(0..=0xFFFF).contains(&i) {
                    return Err(err(n, format!("lui immediate {i} exceeds 16 bits")));
                }
                Instr::Lui(d, i)
            }
            "lw" => {
                need(2)?;
                let d = parse_reg(ops[0], n)?;
                let (imm, base) = parse_mem(ops[1], n)?;
                Instr::Lw(d, base, imm)
            }
            "sw" => {
                need(2)?;
                let s = parse_reg(ops[0], n)?;
                let (imm, base) = parse_mem(ops[1], n)?;
                Instr::Sw(s, base, imm)
            }
            "beq" | "bne" | "blt" | "bge" => {
                need(3)?;
                let a = parse_reg(ops[0], n)?;
                let b = parse_reg(ops[1], n)?;
                let o = parse_target(ops[2], &labels, here, n)?;
                match st.mnemonic.to_ascii_lowercase().as_str() {
                    "beq" => Instr::Beq(a, b, o),
                    "bne" => Instr::Bne(a, b, o),
                    "blt" => Instr::Blt(a, b, o),
                    _ => Instr::Bge(a, b, o),
                }
            }
            "jal" => {
                need(2)?;
                let d = parse_reg(ops[0], n)?;
                let o = parse_target(ops[1], &labels, here, n)?;
                Instr::Jal(d, o)
            }
            "jalr" => {
                need(3)?;
                let d = parse_reg(ops[0], n)?;
                let a = parse_reg(ops[1], n)?;
                let i = parse_imm(ops[2], n)?;
                Instr::Jalr(d, a, i)
            }
            "halt" => {
                need(0)?;
                Instr::Halt
            }
            "nop" => {
                need(0)?;
                Instr::Nop
            }
            ".word" => {
                need(1)?;
                let t = ops[0].trim();
                let (neg, body) = match t.strip_prefix('-') {
                    Some(rest) => (true, rest),
                    None => (false, t),
                };
                let value = if let Some(hex) =
                    body.strip_prefix("0x").or_else(|| body.strip_prefix("0X"))
                {
                    i64::from_str_radix(hex, 16)
                } else {
                    body.parse::<i64>()
                }
                .map_err(|_| err(n, format!("bad word value `{t}`")))?;
                let signed = if neg { -value } else { value };
                if !(i32::MIN as i64..=u32::MAX as i64).contains(&signed) {
                    return Err(err(n, format!("word value out of range `{t}`")));
                }
                words.push(signed as u32);
                continue;
            }
            other => return Err(err(n, format!("unknown mnemonic `{other}`"))),
        };
        words.push(instr.encode());
    }
    Ok(Program { words, labels })
}

/// Disassembles machine words to text (one instruction per line).
pub fn disassemble(words: &[u32]) -> String {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| match Instr::decode(w) {
            Ok(instr) => format!("{i:4}: {instr}"),
            Err(_) => format!("{i:4}: .word {:#010x}", w),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sabre::cpu::{Sabre, StopReason};

    fn run(source: &str) -> Sabre {
        let program = assemble(source).expect("assembles");
        let mut cpu = Sabre::with_standard_bus();
        cpu.load_program(&program.words);
        assert_eq!(cpu.run(1_000_000), StopReason::Halted);
        cpu
    }

    #[test]
    fn sum_loop_program() {
        let cpu = run("
            ; sum 1..=100 into r2
                    addi r1, r0, 1
                    addi r3, r0, 101
            loop:   add  r2, r2, r1
                    addi r1, r1, 1
                    blt  r1, r3, loop
                    halt
        ");
        assert_eq!(cpu.reg(2), 5050);
    }

    #[test]
    fn fibonacci_program() {
        let cpu = run("
            # fib(20) in r3
                    addi r1, r0, 0
                    addi r2, r0, 1
                    addi r4, r0, 20
            fib:    add  r3, r1, r2
                    add  r1, r2, r0
                    add  r2, r3, r0
                    addi r4, r4, -1
                    bne  r4, r0, fib
                    halt
        ");
        assert_eq!(cpu.reg(3), 10946);
    }

    #[test]
    fn memory_and_words() {
        let program = assemble(
            "
                    lw   r1, 16(r0)
                    halt
        ",
        )
        .unwrap();
        let mut cpu = Sabre::with_standard_bus();
        cpu.load_program(&program.words);
        cpu.write_data_word(16, 777);
        assert_eq!(cpu.run(100), StopReason::Halted);
        assert_eq!(cpu.reg(1), 777);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble(
            "
            start:  jal r15, end
                    nop
            end:    beq r0, r0, start
                    halt
        ",
        )
        .unwrap();
        assert_eq!(p.labels["start"], 0);
        assert_eq!(p.labels["end"], 2);
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble("frobnicate r1, r2\n").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn bad_register_rejected() {
        let e = assemble("add r1, r99, r2\n").unwrap_err();
        assert!(e.message.contains("register"), "{e}");
    }

    #[test]
    fn immediate_range_checked() {
        assert!(assemble("addi r1, r0, 131071\n").is_ok());
        assert!(assemble("addi r1, r0, 131072\n").is_err());
        assert!(assemble("addi r1, r0, -131072\n").is_ok());
        assert!(assemble("addi r1, r0, -131073\n").is_err());
        assert!(assemble("lui r1, 0x10000\n").is_err());
    }

    #[test]
    fn hex_and_negative_immediates() {
        let cpu = run("
                    addi r1, r0, 0x7F
                    addi r2, r0, -0x10
                    halt
        ");
        assert_eq!(cpu.reg(1), 0x7F);
        assert_eq!(cpu.reg(2) as i32, -16);
    }

    #[test]
    fn led_program_via_bus() {
        let cpu = run("
                    lui  r1, 0x8000   ; LED base
                    addi r2, r0, 0xAA
                    sw   r2, 0(r1)
                    halt
        ");
        let mut cpu = cpu;
        assert_eq!(cpu.bus.read32(0x8000_0000).unwrap(), 0xAA);
    }

    #[test]
    fn word_directive_emits_data() {
        let p = assemble(
            "
                    halt
            data:   .word 0xDEADBEEF
                    .word -1
        ",
        )
        .unwrap();
        assert_eq!(p.words[1], 0xDEADBEEF);
        assert_eq!(p.words[2], 0xFFFF_FFFF);
        assert_eq!(p.labels["data"], 1);
    }

    #[test]
    fn disassemble_roundtrip_text() {
        let p = assemble("addi r1, r0, 5\nhalt\n").unwrap();
        let text = disassemble(&p.words);
        assert!(text.contains("addi r1, r0, 5"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn mem_operand_without_offset() {
        let p = assemble("lw r1, (r2)\nhalt\n").unwrap();
        let decoded = crate::sabre::isa::Instr::decode(p.words[0]).unwrap();
        assert_eq!(decoded, crate::sabre::isa::Instr::Lw(1, 2, 0));
    }
}
