//! The Sabre instruction-set simulator.
//!
//! Executes encoded programs from BlockRAM program memory against
//! BlockRAM data memory and the peripheral [`Bus`], with per-
//! instruction cycle accounting (single-issue, no cache — every cost
//! is architectural).

use super::bus::{Bus, BUS_BASE};
use super::isa::{DecodeError, Instr};
use super::mem::BlockRam;
use std::fmt;

/// Default program memory size (the paper: "up to 8 kbyte program
/// memory").
pub const PROGRAM_BYTES: usize = 8 * 1024;
/// Default data memory size (the paper: "64 kbyte of data memory").
pub const DATA_BYTES: usize = 64 * 1024;

/// Execution traps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// PC left the program memory.
    PcOutOfRange(u32),
    /// Undecodable instruction word.
    Decode(DecodeError),
    /// Data access out of range or unaligned.
    BadDataAccess(u32),
    /// Peripheral bus fault.
    BusFault(u32),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::PcOutOfRange(pc) => write!(f, "pc out of range: {pc:#x}"),
            Trap::Decode(e) => write!(f, "decode: {e}"),
            Trap::BadDataAccess(a) => write!(f, "bad data access at {a:#010x}"),
            Trap::BusFault(a) => write!(f, "bus fault at {a:#010x}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Why [`Sabre::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction executed.
    Halted,
    /// The cycle budget was exhausted.
    CycleLimit,
    /// A trap occurred.
    Trapped(Trap),
}

/// The Sabre core.
pub struct Sabre {
    regs: [u32; 16],
    pc: u32,
    program: BlockRam,
    data: BlockRam,
    /// The peripheral bus (public so harnesses can reach devices).
    pub bus: Bus,
    cycles: u64,
    instructions: u64,
    halted: bool,
}

impl fmt::Debug for Sabre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sabre {{ pc: {}, cycles: {}, instructions: {}, halted: {} }}",
            self.pc, self.cycles, self.instructions, self.halted
        )
    }
}

impl Sabre {
    /// Creates a core with the default memory sizes and the given bus.
    pub fn new(bus: Bus) -> Self {
        Self {
            regs: [0; 16],
            pc: 0,
            program: BlockRam::new(PROGRAM_BYTES),
            data: BlockRam::new(DATA_BYTES),
            bus,
            cycles: 0,
            instructions: 0,
            halted: false,
        }
    }

    /// Creates a core with the standard RC200E peripherals mapped.
    pub fn with_standard_bus() -> Self {
        Self::new(super::bus::standard_bus())
    }

    /// Loads a program image (machine words) at address 0 and resets
    /// the PC.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds program memory.
    pub fn load_program(&mut self, image: &[u32]) {
        self.program.load(image);
        self.pc = 0;
        self.halted = false;
    }

    /// Register value.
    pub fn reg(&self, r: u8) -> u32 {
        self.regs[(r & 0xF) as usize]
    }

    /// Sets a register (r0 writes are ignored).
    pub fn set_reg(&mut self, r: u8, value: u32) {
        if r != 0 {
            self.regs[(r & 0xF) as usize] = value;
        }
    }

    /// Program counter (word index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// `true` once a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Reads data memory directly (test harnesses).
    pub fn data_word(&self, addr: u32) -> Option<u32> {
        self.data.read32(addr)
    }

    /// Writes data memory directly (test harnesses).
    pub fn write_data_word(&mut self, addr: u32, value: u32) -> bool {
        self.data.write32(addr, value)
    }

    fn load32(&mut self, addr: u32) -> Result<u32, Trap> {
        if addr >= BUS_BASE {
            self.bus.read32(addr).map_err(|f| Trap::BusFault(f.0))
        } else {
            self.data.read32(addr).ok_or(Trap::BadDataAccess(addr))
        }
    }

    fn store32(&mut self, addr: u32, value: u32) -> Result<(), Trap> {
        if addr >= BUS_BASE {
            self.bus
                .write32(addr, value)
                .map_err(|f| Trap::BusFault(f.0))
        } else if self.data.write32(addr, value) {
            Ok(())
        } else {
            Err(Trap::BadDataAccess(addr))
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Any [`Trap`]; the core state is left at the faulting
    /// instruction.
    pub fn step(&mut self) -> Result<(), Trap> {
        if self.halted {
            return Ok(());
        }
        let word = self
            .program
            .read32(self.pc * 4)
            .ok_or(Trap::PcOutOfRange(self.pc))?;
        let instr = Instr::decode(word).map_err(Trap::Decode)?;
        let mut next_pc = self.pc.wrapping_add(1);
        let mut cycles = instr.base_cycles();
        use Instr::*;
        match instr {
            Add(d, a, b) => self.set_reg(d, self.reg(a).wrapping_add(self.reg(b))),
            Sub(d, a, b) => self.set_reg(d, self.reg(a).wrapping_sub(self.reg(b))),
            And(d, a, b) => self.set_reg(d, self.reg(a) & self.reg(b)),
            Or(d, a, b) => self.set_reg(d, self.reg(a) | self.reg(b)),
            Xor(d, a, b) => self.set_reg(d, self.reg(a) ^ self.reg(b)),
            Sll(d, a, b) => self.set_reg(d, self.reg(a) << (self.reg(b) & 31)),
            Srl(d, a, b) => self.set_reg(d, self.reg(a) >> (self.reg(b) & 31)),
            Sra(d, a, b) => self.set_reg(d, ((self.reg(a) as i32) >> (self.reg(b) & 31)) as u32),
            Mul(d, a, b) => self.set_reg(d, self.reg(a).wrapping_mul(self.reg(b))),
            Mulh(d, a, b) => {
                let p = (self.reg(a) as i32 as i64) * (self.reg(b) as i32 as i64);
                self.set_reg(d, (p >> 32) as u32);
            }
            Mulhu(d, a, b) => {
                let p = (self.reg(a) as u64) * (self.reg(b) as u64);
                self.set_reg(d, (p >> 32) as u32);
            }
            Slt(d, a, b) => self.set_reg(d, ((self.reg(a) as i32) < (self.reg(b) as i32)) as u32),
            Sltu(d, a, b) => self.set_reg(d, (self.reg(a) < self.reg(b)) as u32),
            Addi(d, a, i) => self.set_reg(d, self.reg(a).wrapping_add(i as u32)),
            Andi(d, a, i) => self.set_reg(d, self.reg(a) & i as u32),
            Ori(d, a, i) => self.set_reg(d, self.reg(a) | i as u32),
            Xori(d, a, i) => self.set_reg(d, self.reg(a) ^ i as u32),
            Slti(d, a, i) => self.set_reg(d, ((self.reg(a) as i32) < i) as u32),
            Lui(d, i) => self.set_reg(d, (i as u32) << 16),
            Lw(d, a, i) => {
                let addr = self.reg(a).wrapping_add(i as u32);
                let v = self.load32(addr)?;
                self.set_reg(d, v);
            }
            Sw(s, a, i) => {
                let addr = self.reg(a).wrapping_add(i as u32);
                self.store32(addr, self.reg(s))?;
            }
            Beq(a, b, o) => {
                if self.reg(a) == self.reg(b) {
                    next_pc = self.pc.wrapping_add(o as u32);
                    cycles += 1;
                }
            }
            Bne(a, b, o) => {
                if self.reg(a) != self.reg(b) {
                    next_pc = self.pc.wrapping_add(o as u32);
                    cycles += 1;
                }
            }
            Blt(a, b, o) => {
                if (self.reg(a) as i32) < (self.reg(b) as i32) {
                    next_pc = self.pc.wrapping_add(o as u32);
                    cycles += 1;
                }
            }
            Bge(a, b, o) => {
                if (self.reg(a) as i32) >= (self.reg(b) as i32) {
                    next_pc = self.pc.wrapping_add(o as u32);
                    cycles += 1;
                }
            }
            Jal(d, o) => {
                self.set_reg(d, next_pc);
                next_pc = self.pc.wrapping_add(o as u32);
            }
            Jalr(d, a, i) => {
                let target = self.reg(a).wrapping_add(i as u32);
                self.set_reg(d, next_pc);
                next_pc = target / 4;
            }
            Halt => {
                self.halted = true;
            }
            Nop => {}
        }
        self.pc = next_pc;
        self.cycles += cycles;
        self.instructions += 1;
        Ok(())
    }

    /// Runs until halt, trap or the cycle budget is spent.
    pub fn run(&mut self, max_cycles: u64) -> StopReason {
        let limit = self.cycles.saturating_add(max_cycles);
        while !self.halted && self.cycles < limit {
            if let Err(t) = self.step() {
                return StopReason::Trapped(t);
            }
        }
        if self.halted {
            StopReason::Halted
        } else {
            StopReason::CycleLimit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sabre::bus::{standard_bus, LEDS_BASE, UART1_BASE};

    fn assemble_and_run(instrs: &[Instr], max_cycles: u64) -> Sabre {
        let image: Vec<u32> = instrs.iter().map(|i| i.encode()).collect();
        let mut cpu = Sabre::new(standard_bus());
        cpu.load_program(&image);
        let stop = cpu.run(max_cycles);
        assert_eq!(stop, StopReason::Halted, "program did not halt cleanly");
        cpu
    }

    #[test]
    fn arithmetic_basics() {
        use Instr::*;
        let cpu = assemble_and_run(
            &[
                Addi(1, 0, 20),
                Addi(2, 0, 22),
                Add(3, 1, 2),
                Sub(4, 3, 1),
                Mul(5, 1, 2),
                Halt,
            ],
            1000,
        );
        assert_eq!(cpu.reg(3), 42);
        assert_eq!(cpu.reg(4), 22);
        assert_eq!(cpu.reg(5), 440);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        use Instr::*;
        let cpu = assemble_and_run(&[Addi(0, 0, 99), Add(1, 0, 0), Halt], 100);
        assert_eq!(cpu.reg(0), 0);
        assert_eq!(cpu.reg(1), 0);
    }

    #[test]
    fn loop_sums_1_to_10() {
        use Instr::*;
        // r1 = counter, r2 = sum, r3 = limit
        let cpu = assemble_and_run(
            &[
                Addi(1, 0, 1),
                Addi(2, 0, 0),
                Addi(3, 0, 11),
                // loop:
                Add(2, 2, 1),
                Addi(1, 1, 1),
                Blt(1, 3, -2),
                Halt,
            ],
            10_000,
        );
        assert_eq!(cpu.reg(2), 55);
    }

    #[test]
    fn memory_load_store() {
        use Instr::*;
        let cpu = assemble_and_run(
            &[Addi(1, 0, 0x1234), Sw(1, 0, 100), Lw(2, 0, 100), Halt],
            100,
        );
        assert_eq!(cpu.reg(2), 0x1234);
        assert_eq!(cpu.data_word(100), Some(0x1234));
    }

    #[test]
    fn signed_arithmetic_and_shifts() {
        use Instr::*;
        let cpu = assemble_and_run(
            &[
                Addi(1, 0, -8),
                Addi(2, 0, 2),
                Sra(3, 1, 2),  // -8 >> 2 = -2
                Srl(4, 1, 2),  // logical
                Slt(5, 1, 0),  // -8 < 0 -> 1
                Sltu(6, 1, 0), // unsigned: big -> 0... (0 < anything? rs1=-8 as u32 huge) -> 0
                Halt,
            ],
            100,
        );
        assert_eq!(cpu.reg(3) as i32, -2);
        assert_eq!(cpu.reg(4), (-8i32 as u32) >> 2);
        assert_eq!(cpu.reg(5), 1);
        assert_eq!(cpu.reg(6), 0);
    }

    #[test]
    fn mulh_variants() {
        use Instr::*;
        let cpu = assemble_and_run(
            &[
                Lui(1, 0x4000), // r1 = 0x4000_0000
                Addi(2, 0, 16),
                Mulhu(3, 1, 2), // (0x4000_0000 * 16) >> 32 = 4
                Addi(4, 0, -1),
                Mulh(5, 4, 4), // (-1 * -1) >> 32 = 0
                Halt,
            ],
            100,
        );
        assert_eq!(cpu.reg(3), 4);
        assert_eq!(cpu.reg(5), 0);
    }

    #[test]
    fn subroutine_call_and_return() {
        use Instr::*;
        // main: jal r15, func; halt. func at 2: r1 = 7; jalr r0, r15, 0
        // JALR's target is a byte address: r15 holds a word index, so
        // shift left 2 first... we store return as word index; jalr
        // divides by 4, so compute r14 = r15 * 4.
        let cpu = assemble_and_run(
            &[
                Jal(15, 2),      // 0: call func at pc+2
                Halt,            // 1:
                Addi(1, 0, 7),   // 2: func body
                Addi(14, 0, 4),  // 3:
                Mul(14, 15, 14), // 4: r14 = return word index * 4
                Jalr(0, 14, 0),  // 5: return
            ],
            1000,
        );
        assert_eq!(cpu.reg(1), 7);
    }

    #[test]
    fn peripheral_led_write() {
        use Instr::*;
        let mut cpu = Sabre::new(standard_bus());
        let prog: Vec<u32> = [
            Lui(1, 0x8000), // r1 = LEDS_BASE
            Addi(2, 0, 0b101),
            Sw(2, 1, 0),
            Lw(3, 1, 0),
            Halt,
        ]
        .iter()
        .map(|i| i.encode())
        .collect();
        cpu.load_program(&prog);
        assert_eq!(cpu.run(1000), StopReason::Halted);
        assert_eq!(cpu.reg(3), 0b101);
        assert_eq!(cpu.bus.read32(LEDS_BASE).unwrap(), 0b101);
    }

    #[test]
    fn uart_echo_program() {
        use Instr::*;
        // Poll UART1 status; when a byte is available, read and echo it
        // back; after 3 bytes, halt.
        let prog: Vec<u32> = [
            Lui(1, 0x8000),
            Ori(1, 1, 0x40), // r1 = UART1_BASE
            Addi(5, 0, 3),   // bytes to echo
            // poll:
            Lw(2, 1, 4),   // status
            Andi(2, 2, 1), // rx avail?
            Beq(2, 0, -2), // loop until available
            Lw(3, 1, 0),   // read byte
            Sw(3, 1, 0),   // write back
            Addi(5, 5, -1),
            Bne(5, 0, -6),
            Halt,
        ]
        .iter()
        .map(|i| i.encode())
        .collect();
        let mut cpu = Sabre::new(standard_bus());
        cpu.load_program(&prog);
        // Feed RX before running, via typed access to the port.
        cpu.bus
            .device_at(UART1_BASE)
            .unwrap()
            .as_any()
            .downcast_mut::<super::super::bus::UartPort>()
            .unwrap()
            .feed_rx(b"abc");
        assert_eq!(cpu.run(100_000), StopReason::Halted);
        let tx = cpu
            .bus
            .device_at(UART1_BASE)
            .unwrap()
            .as_any()
            .downcast_mut::<super::super::bus::UartPort>()
            .unwrap()
            .take_tx();
        assert_eq!(tx, b"abc".to_vec());
        assert_eq!(cpu.reg(5), 0);
    }

    #[test]
    fn traps_are_reported() {
        use Instr::*;
        // Unaligned store.
        let mut cpu = Sabre::new(standard_bus());
        cpu.load_program(&[Addi(1, 0, 2).encode(), Sw(1, 1, 0).encode()]);
        assert!(matches!(
            cpu.run(100),
            StopReason::Trapped(Trap::BadDataAccess(2))
        ));
        // Unmapped bus address.
        let mut cpu = Sabre::new(standard_bus());
        cpu.load_program(&[Lui(1, 0x9000).encode(), Lw(2, 1, 0).encode()]);
        assert!(matches!(
            cpu.run(100),
            StopReason::Trapped(Trap::BusFault(_))
        ));
        // Bad opcode.
        let mut cpu = Sabre::new(standard_bus());
        cpu.load_program(&[0x3E << 26]);
        assert!(matches!(cpu.run(100), StopReason::Trapped(Trap::Decode(_))));
    }

    #[test]
    fn cycle_accounting() {
        use Instr::*;
        let mut cpu = Sabre::new(standard_bus());
        cpu.load_program(&[
            Addi(1, 0, 1).encode(), // 1 cycle
            Mul(2, 1, 1).encode(),  // 3 cycles
            Sw(1, 0, 0).encode(),   // 2 cycles
            Halt.encode(),          // 1 cycle
        ]);
        assert_eq!(cpu.run(100), StopReason::Halted);
        assert_eq!(cpu.cycles(), 7);
        assert_eq!(cpu.instructions(), 4);
    }

    #[test]
    fn cycle_limit_stops_runaway() {
        use Instr::*;
        let mut cpu = Sabre::new(standard_bus());
        cpu.load_program(&[Beq(0, 0, 0).encode()]); // infinite self-loop
        assert_eq!(cpu.run(1000), StopReason::CycleLimit);
        assert!(cpu.cycles() >= 1000);
    }
}
