//! IEEE-754 binary64 arithmetic implemented with integer operations
//! only (round-to-nearest-even), in the style of the Berkeley Softfloat
//! library the paper runs on the Sabre soft-core.
//!
//! Representation: [`Sf64`] wraps the raw bit pattern. All operations
//! are pure functions of bit patterns; no host floating-point
//! instructions are involved in the arithmetic (tests compare against
//! the host FPU bit for bit).
//!
//! Internally every finite value is manipulated as
//! `sig * 2^(e - 1023 - 62)` with the significand normalized so its
//! most significant bit sits at bit 62 — i.e. the 53-bit mantissa plus
//! 10 guard bits, exactly the headroom Berkeley Softfloat uses, which
//! keeps small alignment shifts exact and makes the sticky-bit ("jam")
//! rounding argument sound through cancellation.

/// A binary64 value as a raw bit pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sf64(pub u64);

const SIGN: u64 = 1 << 63;
const EXP_MASK: u64 = 0x7FF;
const FRAC_BITS: u32 = 52;
const FRAC_MASK: u64 = (1 << FRAC_BITS) - 1;
const HIDDEN: u64 = 1 << FRAC_BITS;
/// Canonical quiet NaN.
const QNAN: u64 = 0x7FF8_0000_0000_0000;
const EXP_MAX: i32 = 0x7FF;
/// Guard bits carried below the mantissa during arithmetic.
const GUARD: u32 = 10;
/// Internal normalized significand MSB position (52 + 10).
const NORM_MSB: u32 = FRAC_BITS + GUARD;
/// Tie value of the guard field for round-to-nearest-even.
const TIE: u64 = 1 << (GUARD - 1);

impl Sf64 {
    /// Wraps raw bits.
    pub const fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    /// Converts from a host `f64` (bit-level, exact).
    pub fn from_f64(x: f64) -> Self {
        Self(x.to_bits())
    }

    /// Converts to a host `f64` (bit-level, exact).
    pub fn to_f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// The raw bit pattern.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Positive zero.
    pub const ZERO: Sf64 = Sf64(0);
    /// One.
    pub const ONE: Sf64 = Sf64(0x3FF0_0000_0000_0000);

    fn sign(self) -> bool {
        self.0 & SIGN != 0
    }

    fn exp(self) -> i32 {
        ((self.0 >> FRAC_BITS) & EXP_MASK) as i32
    }

    fn frac(self) -> u64 {
        self.0 & FRAC_MASK
    }

    /// `true` for any NaN.
    pub fn is_nan(self) -> bool {
        self.exp() == EXP_MAX && self.frac() != 0
    }

    /// `true` for +/- infinity.
    pub fn is_inf(self) -> bool {
        self.exp() == EXP_MAX && self.frac() == 0
    }

    /// `true` for +/- zero.
    pub fn is_zero(self) -> bool {
        self.0 & !SIGN == 0
    }

    /// Flips the sign bit (exact negation, including of NaN/inf/zero).
    #[allow(clippy::should_implement_trait)] // softfloat op set uses the paper's names
    pub fn neg(self) -> Self {
        Self(self.0 ^ SIGN)
    }

    /// Clears the sign bit.
    pub fn abs(self) -> Self {
        Self(self.0 & !SIGN)
    }
}

fn pack(sign: bool, exp_field: i32, frac: u64) -> u64 {
    ((sign as u64) << 63) | ((exp_field as u64) << FRAC_BITS) | frac
}

fn inf(sign: bool) -> u64 {
    pack(sign, EXP_MAX, 0)
}

/// Shift right with sticky (OR of shifted-out bits into bit 0).
fn srs64(x: u64, shift: u32) -> u64 {
    if shift == 0 {
        x
    } else if shift >= 64 {
        (x != 0) as u64
    } else {
        (x >> shift) | ((x & ((1u64 << shift) - 1) != 0) as u64)
    }
}

/// Shift a u128 right with sticky, returning u64 (result must fit).
fn srs128_to64(x: u128, shift: u32) -> u64 {
    let kept = (x >> shift) as u64;
    let sticky = (x & ((1u128 << shift) - 1)) != 0;
    kept | sticky as u64
}

/// Unpacks a finite nonzero value into (sign, biased exp, significand
/// with hidden bit normalized into `[2^52, 2^53)`).
fn unpack_norm(x: Sf64) -> (bool, i32, u64) {
    let mut e = x.exp();
    let mut sig = x.frac();
    if e == 0 {
        // Subnormal: normalize.
        let shift = sig.leading_zeros() - (63 - FRAC_BITS);
        sig <<= shift;
        e = 1 - shift as i32;
    } else {
        sig |= HIDDEN;
    }
    (x.sign(), e, sig)
}

/// Rounds and packs. `sig` carries [`GUARD`] guard bits; when the value
/// is normalized its MSB is at [`NORM_MSB`]. The represented value is
/// `sig * 2^(e - 1023 - 62)`.
fn round_pack(sign: bool, mut e: i32, mut sig: u64) -> u64 {
    debug_assert!(sig != 0);
    if e >= EXP_MAX {
        return inf(sign);
    }
    if e <= 0 {
        let shift = (1 - e) as u32;
        sig = srs64(sig, shift);
        e = 1;
    }
    let guard_bits = sig & ((1 << GUARD) - 1);
    let mut sig_r = sig >> GUARD;
    if guard_bits > TIE || (guard_bits == TIE && (sig_r & 1) == 1) {
        sig_r += 1;
    }
    if sig_r >= (1 << (FRAC_BITS + 1)) {
        sig_r >>= 1;
        e += 1;
        if e >= EXP_MAX {
            return inf(sign);
        }
    }
    if sig_r >= HIDDEN {
        pack(sign, e, sig_r - HIDDEN)
    } else {
        // Subnormal (or zero after underflow).
        pack(sign, 0, sig_r)
    }
}

/// Normalizes nonzero `sig` so its MSB is at [`NORM_MSB`], adjusting
/// `e`. Right shifts keep sticky.
fn normalize(mut e: i32, mut sig: u64) -> (i32, u64) {
    let msb = 63 - sig.leading_zeros() as i32;
    let shift = msb - NORM_MSB as i32;
    if shift > 0 {
        sig = srs64(sig, shift as u32);
        e += shift;
    } else if shift < 0 {
        sig <<= -shift;
        e += shift;
    }
    (e, sig)
}

/// IEEE-754 addition, round-to-nearest-even.
pub fn add(a: Sf64, b: Sf64) -> Sf64 {
    if a.is_nan() || b.is_nan() {
        return Sf64(QNAN);
    }
    match (a.is_inf(), b.is_inf()) {
        (true, true) => {
            return if a.sign() == b.sign() { a } else { Sf64(QNAN) };
        }
        (true, false) => return a,
        (false, true) => return b,
        _ => {}
    }
    if a.is_zero() && b.is_zero() {
        // +0 + +0 = +0; -0 + -0 = -0; mixed = +0 (round-to-nearest).
        return if a.sign() && b.sign() { a } else { Sf64(0) };
    }
    if a.is_zero() {
        return b;
    }
    if b.is_zero() {
        return a;
    }
    let (sa, ea, siga) = unpack_norm(a);
    let (sb, eb, sigb) = unpack_norm(b);
    let a_is_hi = (ea, siga) >= (eb, sigb);
    let (mut e, hi, s_hi, lo_raw, e_lo, s_lo) = if a_is_hi {
        (ea, siga << GUARD, sa, sigb << GUARD, eb, sb)
    } else {
        (eb, sigb << GUARD, sb, siga << GUARD, ea, sa)
    };
    let lo = srs64(lo_raw, (e - e_lo) as u32);
    let (sign, mut sum);
    if s_hi == s_lo {
        sum = hi + lo;
        sign = s_hi;
        if sum >= (1 << (NORM_MSB + 1)) {
            sum = srs64(sum, 1);
            e += 1;
        }
    } else {
        if hi == lo {
            return Sf64(0); // exact cancellation -> +0
        }
        sum = hi - lo;
        sign = s_hi;
        let (e2, s2) = normalize(e, sum);
        e = e2;
        sum = s2;
    }
    Sf64(round_pack(sign, e, sum))
}

/// IEEE-754 subtraction.
pub fn sub(a: Sf64, b: Sf64) -> Sf64 {
    if b.is_nan() {
        return Sf64(QNAN);
    }
    add(a, b.neg())
}

/// IEEE-754 multiplication, round-to-nearest-even.
pub fn mul(a: Sf64, b: Sf64) -> Sf64 {
    if a.is_nan() || b.is_nan() {
        return Sf64(QNAN);
    }
    let sign = a.sign() ^ b.sign();
    if a.is_inf() || b.is_inf() {
        if a.is_zero() || b.is_zero() {
            return Sf64(QNAN); // 0 * inf
        }
        return Sf64(inf(sign));
    }
    if a.is_zero() || b.is_zero() {
        return Sf64(pack(sign, 0, 0));
    }
    let (_, ea, siga) = unpack_norm(a);
    let (_, eb, sigb) = unpack_norm(b);
    let mut e = ea + eb - 1023;
    let p = (siga as u128) * (sigb as u128); // in [2^104, 2^106)
    let sig = if p >= (1u128 << 105) {
        e += 1;
        srs128_to64(p, 105 - NORM_MSB)
    } else {
        srs128_to64(p, 104 - NORM_MSB)
    };
    Sf64(round_pack(sign, e, sig))
}

/// IEEE-754 division, round-to-nearest-even.
pub fn div(a: Sf64, b: Sf64) -> Sf64 {
    if a.is_nan() || b.is_nan() {
        return Sf64(QNAN);
    }
    let sign = a.sign() ^ b.sign();
    match (a.is_inf(), b.is_inf()) {
        (true, true) => return Sf64(QNAN),
        (true, false) => return Sf64(inf(sign)),
        (false, true) => return Sf64(pack(sign, 0, 0)),
        _ => {}
    }
    match (a.is_zero(), b.is_zero()) {
        (true, true) => return Sf64(QNAN),
        (true, false) => return Sf64(pack(sign, 0, 0)),
        (false, true) => return Sf64(inf(sign)), // division by zero
        _ => {}
    }
    let (_, ea, siga) = unpack_norm(a);
    let (_, eb, sigb) = unpack_norm(b);
    let mut e = ea - eb + 1022;
    let num = (siga as u128) << (NORM_MSB + 1);
    let den = sigb as u128;
    let mut q = num / den; // in (2^62, 2^64)
    if !num.is_multiple_of(den) {
        q |= 1; // sticky
    }
    if q >= (1 << (NORM_MSB + 1)) {
        q = (q >> 1) | (q & 1);
        e += 1;
    }
    Sf64(round_pack(sign, e, q as u64))
}

/// IEEE-754 square root, round-to-nearest-even.
pub fn sqrt(a: Sf64) -> Sf64 {
    if a.is_nan() {
        return Sf64(QNAN);
    }
    if a.is_zero() {
        return a; // sqrt(+/-0) = +/-0
    }
    if a.sign() {
        return Sf64(QNAN); // negative
    }
    if a.is_inf() {
        return a;
    }
    let (_, e, sig) = unpack_norm(a);
    let mut ee = e - 1023; // unbiased
    let mut m = sig as u128; // in [2^52, 2^53)
    if ee & 1 != 0 {
        // Make the exponent even (works for negative odd too, since
        // we subtract after testing the low bit of the two's-complement).
        m <<= 1;
        ee -= 1;
    }
    // s = floor(sqrt(m << 72)) is in [2^62, 2^63).
    let x = m << 72;
    let mut s = isqrt_u128(x);
    if s * s != x {
        s |= 1; // inexact: never a tie, so floor+sticky rounds correctly
    }
    let er = ee / 2 + 1023;
    Sf64(round_pack(false, er, s as u64))
}

/// Integer square root of a u128 (floor), binary digit-by-digit.
pub(crate) fn isqrt_u128(x: u128) -> u128 {
    if x == 0 {
        return 0;
    }
    let mut res: u128 = 0;
    // Highest power of four <= x.
    let mut bit = 1u128 << ((127 - x.leading_zeros()) & !1);
    let mut rem = x;
    while bit != 0 {
        if rem >= res + bit {
            rem -= res + bit;
            res = (res >> 1) + bit;
        } else {
            res >>= 1;
        }
        bit >>= 2;
    }
    res
}

/// IEEE equality (`NaN != NaN`, `-0 == +0`).
pub fn eq(a: Sf64, b: Sf64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a.is_zero() && b.is_zero() {
        return true;
    }
    a.0 == b.0
}

/// IEEE less-than (`false` on any NaN).
pub fn lt(a: Sf64, b: Sf64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a.is_zero() && b.is_zero() {
        return false;
    }
    match (a.sign(), b.sign()) {
        (false, false) => a.0 < b.0,
        (true, true) => a.0 > b.0,
        (true, false) => true,
        (false, true) => false,
    }
}

/// IEEE less-or-equal (`false` on any NaN).
pub fn le(a: Sf64, b: Sf64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    eq(a, b) || lt(a, b)
}

/// Exact conversion from `i32`.
pub fn from_i32(x: i32) -> Sf64 {
    if x == 0 {
        return Sf64(0);
    }
    let sign = x < 0;
    let mag = (x as i64).unsigned_abs();
    let msb = 63 - mag.leading_zeros() as i32;
    let sig = mag << (NORM_MSB as i32 - msb); // msb <= 31 < 62: exact
    Sf64(round_pack(sign, 1023 + msb, sig))
}

/// Conversion to `i32`, truncating toward zero and saturating at the
/// `i32` range (NaN maps to 0) — the semantics of Rust's `as` cast.
pub fn to_i32_trunc(a: Sf64) -> i32 {
    if a.is_nan() {
        return 0;
    }
    if a.is_zero() {
        return 0;
    }
    if a.is_inf() {
        return if a.sign() { i32::MIN } else { i32::MAX };
    }
    let (sign, e, sig) = unpack_norm(a);
    let shift = e - 1023; // value = sig * 2^(shift - 52)
    if shift < 0 {
        return 0;
    }
    if shift > 31 {
        return if sign { i32::MIN } else { i32::MAX };
    }
    let mag = if shift >= FRAC_BITS as i32 {
        (sig as u128) << (shift - FRAC_BITS as i32)
    } else {
        (sig >> (FRAC_BITS as i32 - shift)) as u128
    };
    let limit = if sign { 1u128 << 31 } else { (1u128 << 31) - 1 };
    let mag = mag.min(limit);
    if sign {
        (mag as i64).wrapping_neg() as i32
    } else {
        mag as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bin(
        name: &str,
        op: fn(Sf64, Sf64) -> Sf64,
        native: fn(f64, f64) -> f64,
        a: f64,
        b: f64,
    ) {
        let got = op(Sf64::from_f64(a), Sf64::from_f64(b));
        let want = native(a, b);
        if want.is_nan() {
            assert!(
                got.is_nan(),
                "{name}({a:e},{b:e}): want NaN got {:016x}",
                got.bits()
            );
        } else {
            assert_eq!(
                got.bits(),
                want.to_bits(),
                "{name}({a:e},{b:e}): got {:016x} want {:016x}",
                got.bits(),
                want.to_bits()
            );
        }
    }

    const SPECIALS: &[f64] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        2.0,
        0.5,
        1.5,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::MIN_POSITIVE,
        f64::MAX,
        f64::MIN,
        4.9e-324,  // smallest subnormal
        1.0e-310,  // subnormal
        -3.2e-313, // subnormal
        std::f64::consts::PI,
        1.0000000000000002, // 1 + ulp
        9.80665,
        -273.15,
        1e300,
        -1e300,
        1e-300,
        0.1,
        3.0,
        -7.0,
    ];

    #[test]
    fn add_specials_exhaustive() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                check_bin("add", add, |x, y| x + y, a, b);
            }
        }
    }

    #[test]
    fn sub_specials_exhaustive() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                check_bin("sub", sub, |x, y| x - y, a, b);
            }
        }
    }

    #[test]
    fn mul_specials_exhaustive() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                check_bin("mul", mul, |x, y| x * y, a, b);
            }
        }
    }

    #[test]
    fn div_specials_exhaustive() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                check_bin("div", div, |x, y| x / y, a, b);
            }
        }
    }

    #[test]
    fn sqrt_specials() {
        for &a in SPECIALS {
            let got = sqrt(Sf64::from_f64(a));
            let want = a.sqrt();
            if want.is_nan() {
                assert!(got.is_nan(), "sqrt({a})");
            } else {
                assert_eq!(got.bits(), want.to_bits(), "sqrt({a:e})");
            }
        }
    }

    #[test]
    fn comparisons_match_native() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                let (sa, sb) = (Sf64::from_f64(a), Sf64::from_f64(b));
                assert_eq!(eq(sa, sb), a == b, "eq({a},{b})");
                assert_eq!(lt(sa, sb), a < b, "lt({a},{b})");
                assert_eq!(le(sa, sb), a <= b, "le({a},{b})");
            }
        }
    }

    #[test]
    fn i32_conversions_match_native() {
        for &x in &[0i32, 1, -1, 42, -42, i32::MAX, i32::MIN, 7_654_321] {
            assert_eq!(from_i32(x).to_f64(), x as f64, "from_i32({x})");
        }
        for &a in SPECIALS {
            assert_eq!(to_i32_trunc(Sf64::from_f64(a)), a as i32, "to_i32({a})");
        }
        for &a in &[2.9, -2.9, 2147483646.7, -2147483649.5, 0.49, 1e15, -1e15] {
            assert_eq!(to_i32_trunc(Sf64::from_f64(a)), a as i32, "to_i32({a})");
        }
    }

    #[test]
    fn isqrt_known_values() {
        assert_eq!(isqrt_u128(0), 0);
        assert_eq!(isqrt_u128(1), 1);
        assert_eq!(isqrt_u128(3), 1);
        assert_eq!(isqrt_u128(4), 2);
        assert_eq!(isqrt_u128(99), 9);
        assert_eq!(isqrt_u128(100), 10);
        let big = (1u128 << 100) - 1;
        let s = isqrt_u128(big);
        assert!(s * s <= big && (s + 1) * (s + 1) > big);
    }

    #[test]
    fn long_dependent_chain_matches_native() {
        let mut acc_native = 0.0f64;
        let mut acc_soft = Sf64::ZERO;
        let mut x = 0.1f64;
        for _ in 0..1000 {
            acc_native += x;
            acc_soft = add(acc_soft, Sf64::from_f64(x));
            let xn = x * 1.0001 - 0.00005;
            x = xn;
        }
        assert_eq!(acc_soft.bits(), acc_native.to_bits());
    }

    #[test]
    fn mixed_op_chain_matches_native() {
        // Exercise mul/div/sqrt in a dependent chain.
        let mut n = 2.0f64;
        let mut s = Sf64::from_f64(2.0);
        for i in 1..500 {
            let k = i as f64;
            n = (n * k + 1.0) / (k + 0.5);
            n = n.sqrt() + 0.25;
            let sk = from_i32(i);
            s = div(add(mul(s, sk), Sf64::ONE), add(sk, Sf64::from_f64(0.5)));
            s = add(sqrt(s), Sf64::from_f64(0.25));
        }
        assert_eq!(s.bits(), n.to_bits());
    }

    #[test]
    fn neg_abs_are_bitwise() {
        let x = Sf64::from_f64(-2.5);
        assert_eq!(x.neg().to_f64(), 2.5);
        assert_eq!(x.abs().to_f64(), 2.5);
        assert!(Sf64::from_f64(f64::NAN).neg().is_nan());
    }

    #[test]
    fn subnormal_arithmetic() {
        let tiny = f64::from_bits(5); // 5 * 2^-1074
        let tiny2 = f64::from_bits(3);
        check_bin("add", add, |x, y| x + y, tiny, tiny2);
        check_bin("sub", sub, |x, y| x - y, tiny, tiny2);
        check_bin("mul", mul, |x, y| x * y, tiny, 2.0);
        check_bin("div", div, |x, y| x / y, tiny, 2.0);
        // Gradual underflow of a normal.
        check_bin("mul", mul, |x, y| x * y, f64::MIN_POSITIVE, 0.5);
        check_bin("mul", mul, |x, y| x * y, f64::MIN_POSITIVE, 0.25000000001);
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        check_bin("mul", mul, |x, y| x * y, f64::MAX, 2.0);
        check_bin("add", add, |x, y| x + y, f64::MAX, f64::MAX);
        check_bin("div", div, |x, y| x / y, f64::MAX, 0.5);
    }
}
