//! Conversions between binary32 and binary64.

use super::f32impl::{self, Sf32};
use super::f64impl::Sf64;

/// Widens a binary32 to binary64 (always exact).
pub fn f32_to_f64(x: Sf32) -> Sf64 {
    if x.is_nan() {
        return Sf64(0x7FF8_0000_0000_0000);
    }
    let sign = (x.bits() >> 31) as u64;
    if x.is_inf() {
        return Sf64((sign << 63) | 0x7FF0_0000_0000_0000);
    }
    if x.is_zero() {
        return Sf64(sign << 63);
    }
    let (s, e32, sig24) = f32impl::unpack_norm(x);
    let e64 = e32 - 127 + 1023;
    let sig52 = (sig24 as u64) << 29; // [2^52, 2^53), exact
    Sf64(((s as u64) << 63) | ((e64 as u64) << 52) | (sig52 - (1 << 52)))
}

/// Narrows a binary64 to binary32, round-to-nearest-even.
pub fn f64_to_f32(x: Sf64) -> Sf32 {
    if x.is_nan() {
        return Sf32(0x7FC0_0000);
    }
    let sign = x.bits() >> 63 != 0;
    if x.is_inf() {
        return Sf32(f32impl::pack(sign, 0xFF, 0));
    }
    if x.is_zero() {
        return Sf32((sign as u32) << 31);
    }
    // Unpack (normalizing subnormals) without reaching into private
    // f64impl internals: extract fields directly.
    let bits = x.bits();
    let mut e = ((bits >> 52) & 0x7FF) as i32;
    let mut sig = bits & ((1u64 << 52) - 1);
    if e == 0 {
        let shift = sig.leading_zeros() - 11;
        sig <<= shift;
        e = 1 - shift as i32;
    } else {
        sig |= 1 << 52;
    }
    // Value = sig * 2^(e - 1023 - 52); the f32 round_pack consumes
    // sig30 * 2^(e32 - 127 - 30): sig30 = sig >> 22, e32 = e - 896.
    let sig30 = ((sig >> 22) as u32) | ((sig & ((1 << 22) - 1) != 0) as u32);
    let e32 = e - 896;
    Sf32(f32impl::round_pack(sign, e32, sig30))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_matches_native() {
        let cases: &[f32] = &[
            0.0,
            -0.0,
            1.0,
            -1.5,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MAX,
            f32::MIN_POSITIVE,
            1e-45,
            -1e-40,
            std::f32::consts::PI,
            9.80665,
        ];
        for &a in cases {
            let got = f32_to_f64(Sf32::from_f32(a));
            assert_eq!(got.bits(), (a as f64).to_bits(), "widen({a:e})");
        }
        assert!(f32_to_f64(Sf32::from_f32(f32::NAN)).is_nan());
    }

    #[test]
    fn narrow_matches_native() {
        let cases: &[f64] = &[
            0.0,
            -0.0,
            1.0,
            -1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,          // overflows to +inf
            -f64::MAX,         // overflows to -inf
            f64::MIN_POSITIVE, // underflows to 0
            1e-40,             // f32 subnormal range
            1e-45,
            1.0000000000000002,
            std::f64::consts::PI,
            9.80665,
            3.4028235e38,          // ~ f32::MAX
            3.4028237e38,          // just above f32::MAX
            1.401298464324817e-45, // f32 min subnormal
            7e-46,                 // rounds to smallest subnormal or zero
        ];
        for &a in cases {
            let got = f64_to_f32(Sf64::from_f64(a));
            assert_eq!(got.bits(), (a as f32).to_bits(), "narrow({a:e})");
        }
        assert!(f64_to_f32(Sf64::from_f64(f64::NAN)).is_nan());
    }

    #[test]
    fn roundtrip_f32_exact() {
        for &a in &[1.5f32, -0.1, 123.456, 1e-40] {
            let back = f64_to_f32(f32_to_f64(Sf32::from_f32(a)));
            assert_eq!(back.bits(), a.to_bits());
        }
    }
}
