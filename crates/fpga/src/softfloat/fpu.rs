//! Cost-accounted software FPU.
//!
//! The paper's Sabre core has no floating-point hardware; every float
//! operation the Kalman filter performs expands into a Softfloat
//! routine of integer instructions. [`SoftFpu`] wraps the arithmetic in
//! this module and charges a per-operation cycle cost to a ledger, so
//! "how many Sabre cycles does one EKF iteration take" can be answered
//! without porting a C compiler.
//!
//! The default [`CycleCosts`] are derived by counting the integer
//! ALU/shift/branch operations our own routines perform on typical
//! operands (normalized inputs, no special cases) on a single-issue
//! 32-bit RISC, where every 64-bit integer operation costs roughly two
//! 32-bit instructions and the 64x64 multiply is decomposed into four
//! 32x32 MULs. They are configurable for sensitivity studies.

use super::convert;
use super::f32impl::{self, Sf32};
use super::f64impl::{self, Sf64};

/// Kinds of floating-point operations the ledger tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// f32 add or subtract.
    AddF32,
    /// f32 multiply.
    MulF32,
    /// f32 divide.
    DivF32,
    /// f32 square root.
    SqrtF32,
    /// f32 compare.
    CmpF32,
    /// f64 add or subtract.
    AddF64,
    /// f64 multiply.
    MulF64,
    /// f64 divide.
    DivF64,
    /// f64 square root.
    SqrtF64,
    /// f64 compare.
    CmpF64,
    /// f64 sign manipulation (negate, absolute value).
    SignF64,
    /// f64 sine+cosine pair.
    SinCosF64,
    /// int <-> float conversion (either width).
    Convert,
}

/// Per-operation cycle costs on the soft core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleCosts {
    /// f32 add/sub cycles.
    pub add_f32: u64,
    /// f32 multiply cycles.
    pub mul_f32: u64,
    /// f32 divide cycles.
    pub div_f32: u64,
    /// f32 square-root cycles.
    pub sqrt_f32: u64,
    /// f32 compare cycles.
    pub cmp_f32: u64,
    /// f64 add/sub cycles.
    pub add_f64: u64,
    /// f64 multiply cycles.
    pub mul_f64: u64,
    /// f64 divide cycles.
    pub div_f64: u64,
    /// f64 square-root cycles.
    pub sqrt_f64: u64,
    /// f64 compare cycles.
    pub cmp_f64: u64,
    /// f64 sign-manipulation cycles (negate / absolute value are one
    /// XOR/AND on the sign bit plus load/store traffic).
    pub sign_f64: u64,
    /// f64 sine+cosine pair cycles (polynomial evaluation in software;
    /// roughly 13 multiply-adds per function after range reduction).
    pub sincos_f64: u64,
    /// Conversion cycles.
    pub convert: u64,
}

impl CycleCosts {
    /// Costs for a single-issue 32-bit RISC running Softfloat-style
    /// routines (see module docs for the derivation).
    pub fn sabre_default() -> Self {
        Self {
            add_f32: 48,
            mul_f32: 60,
            div_f32: 180,
            sqrt_f32: 260,
            cmp_f32: 14,
            add_f64: 75,
            mul_f64: 135,
            div_f64: 420,
            sqrt_f64: 620,
            cmp_f64: 22,
            sign_f64: 4,
            sincos_f64: 5600,
            convert: 30,
        }
    }

    /// Cycles for one op kind.
    pub fn of(&self, op: FpOp) -> u64 {
        match op {
            FpOp::AddF32 => self.add_f32,
            FpOp::MulF32 => self.mul_f32,
            FpOp::DivF32 => self.div_f32,
            FpOp::SqrtF32 => self.sqrt_f32,
            FpOp::CmpF32 => self.cmp_f32,
            FpOp::AddF64 => self.add_f64,
            FpOp::MulF64 => self.mul_f64,
            FpOp::DivF64 => self.div_f64,
            FpOp::SqrtF64 => self.sqrt_f64,
            FpOp::CmpF64 => self.cmp_f64,
            FpOp::SignF64 => self.sign_f64,
            FpOp::SinCosF64 => self.sincos_f64,
            FpOp::Convert => self.convert,
        }
    }
}

impl Default for CycleCosts {
    fn default() -> Self {
        Self::sabre_default()
    }
}

/// Operation counters and the cycle ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FpuStats {
    /// f32 adds/subs performed.
    pub add_f32: u64,
    /// f32 multiplies performed.
    pub mul_f32: u64,
    /// f32 divides performed.
    pub div_f32: u64,
    /// f32 square roots performed.
    pub sqrt_f32: u64,
    /// f32 compares performed.
    pub cmp_f32: u64,
    /// f64 adds/subs performed.
    pub add_f64: u64,
    /// f64 multiplies performed.
    pub mul_f64: u64,
    /// f64 divides performed.
    pub div_f64: u64,
    /// f64 square roots performed.
    pub sqrt_f64: u64,
    /// f64 compares performed.
    pub cmp_f64: u64,
    /// f64 sign manipulations performed.
    pub sign_f64: u64,
    /// f64 sine+cosine pairs performed.
    pub sincos_f64: u64,
    /// Conversions performed.
    pub convert: u64,
    /// Total cycles charged.
    pub cycles: u64,
}

impl FpuStats {
    /// Total operation count.
    pub fn total_ops(&self) -> u64 {
        self.add_f32
            + self.mul_f32
            + self.div_f32
            + self.sqrt_f32
            + self.cmp_f32
            + self.add_f64
            + self.mul_f64
            + self.div_f64
            + self.sqrt_f64
            + self.cmp_f64
            + self.sign_f64
            + self.sincos_f64
            + self.convert
    }
}

/// A software FPU with cycle accounting.
///
/// # Examples
///
/// ```
/// use fpga::softfloat::{Sf64, SoftFpu};
///
/// let mut fpu = SoftFpu::new();
/// let a = Sf64::from_f64(1.5);
/// let b = Sf64::from_f64(2.25);
/// let c = fpu.add_f64(a, b);
/// assert_eq!(c.to_f64(), 3.75);
/// assert!(fpu.stats().cycles > 0);
/// ```
#[derive(Clone, Debug)]
pub struct SoftFpu {
    costs: CycleCosts,
    stats: FpuStats,
}

impl SoftFpu {
    /// Creates an FPU with the default Sabre cost model.
    pub fn new() -> Self {
        Self::with_costs(CycleCosts::sabre_default())
    }

    /// Creates an FPU with explicit costs.
    pub fn with_costs(costs: CycleCosts) -> Self {
        Self {
            costs,
            stats: FpuStats::default(),
        }
    }

    /// The cost model in use.
    pub fn costs(&self) -> &CycleCosts {
        &self.costs
    }

    /// Counters and ledger so far.
    pub fn stats(&self) -> &FpuStats {
        &self.stats
    }

    /// Clears counters and the ledger.
    pub fn reset(&mut self) {
        self.stats = FpuStats::default();
    }

    fn charge(&mut self, op: FpOp) {
        self.stats.cycles += self.costs.of(op);
        match op {
            FpOp::AddF32 => self.stats.add_f32 += 1,
            FpOp::MulF32 => self.stats.mul_f32 += 1,
            FpOp::DivF32 => self.stats.div_f32 += 1,
            FpOp::SqrtF32 => self.stats.sqrt_f32 += 1,
            FpOp::CmpF32 => self.stats.cmp_f32 += 1,
            FpOp::AddF64 => self.stats.add_f64 += 1,
            FpOp::MulF64 => self.stats.mul_f64 += 1,
            FpOp::DivF64 => self.stats.div_f64 += 1,
            FpOp::SqrtF64 => self.stats.sqrt_f64 += 1,
            FpOp::CmpF64 => self.stats.cmp_f64 += 1,
            FpOp::SignF64 => self.stats.sign_f64 += 1,
            FpOp::SinCosF64 => self.stats.sincos_f64 += 1,
            FpOp::Convert => self.stats.convert += 1,
        }
    }

    /// f64 addition.
    pub fn add_f64(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.charge(FpOp::AddF64);
        f64impl::add(a, b)
    }

    /// f64 subtraction.
    pub fn sub_f64(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.charge(FpOp::AddF64);
        f64impl::sub(a, b)
    }

    /// f64 multiplication.
    pub fn mul_f64(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.charge(FpOp::MulF64);
        f64impl::mul(a, b)
    }

    /// f64 division.
    pub fn div_f64(&mut self, a: Sf64, b: Sf64) -> Sf64 {
        self.charge(FpOp::DivF64);
        f64impl::div(a, b)
    }

    /// f64 square root.
    pub fn sqrt_f64(&mut self, a: Sf64) -> Sf64 {
        self.charge(FpOp::SqrtF64);
        f64impl::sqrt(a)
    }

    /// f64 less-than.
    pub fn lt_f64(&mut self, a: Sf64, b: Sf64) -> bool {
        self.charge(FpOp::CmpF64);
        f64impl::lt(a, b)
    }

    /// f64 equality.
    pub fn eq_f64(&mut self, a: Sf64, b: Sf64) -> bool {
        self.charge(FpOp::CmpF64);
        f64impl::eq(a, b)
    }

    /// f64 negation (sign-bit flip).
    pub fn neg_f64(&mut self, a: Sf64) -> Sf64 {
        self.charge(FpOp::SignF64);
        a.neg()
    }

    /// f64 absolute value (sign-bit clear).
    pub fn abs_f64(&mut self, a: Sf64) -> Sf64 {
        self.charge(FpOp::SignF64);
        a.abs()
    }

    /// f64 sine and cosine.
    ///
    /// The value is computed by the host libm (the paper's target would
    /// link a polynomial routine); only the cycle cost models the
    /// software evaluation, so emulated trig stays bit-identical to the
    /// native reference.
    pub fn sin_cos_f64(&mut self, a: Sf64) -> (Sf64, Sf64) {
        self.charge(FpOp::SinCosF64);
        let (s, c) = a.to_f64().sin_cos();
        (Sf64::from_f64(s), Sf64::from_f64(c))
    }

    /// f32 addition.
    pub fn add_f32(&mut self, a: Sf32, b: Sf32) -> Sf32 {
        self.charge(FpOp::AddF32);
        f32impl::add(a, b)
    }

    /// f32 subtraction.
    pub fn sub_f32(&mut self, a: Sf32, b: Sf32) -> Sf32 {
        self.charge(FpOp::AddF32);
        f32impl::sub(a, b)
    }

    /// f32 multiplication.
    pub fn mul_f32(&mut self, a: Sf32, b: Sf32) -> Sf32 {
        self.charge(FpOp::MulF32);
        f32impl::mul(a, b)
    }

    /// f32 division.
    pub fn div_f32(&mut self, a: Sf32, b: Sf32) -> Sf32 {
        self.charge(FpOp::DivF32);
        f32impl::div(a, b)
    }

    /// f32 square root.
    pub fn sqrt_f32(&mut self, a: Sf32) -> Sf32 {
        self.charge(FpOp::SqrtF32);
        f32impl::sqrt(a)
    }

    /// f32 less-than.
    pub fn lt_f32(&mut self, a: Sf32, b: Sf32) -> bool {
        self.charge(FpOp::CmpF32);
        f32impl::lt(a, b)
    }

    /// i32 to f64.
    pub fn i32_to_f64(&mut self, x: i32) -> Sf64 {
        self.charge(FpOp::Convert);
        f64impl::from_i32(x)
    }

    /// f64 to i32 (truncating).
    pub fn f64_to_i32(&mut self, x: Sf64) -> i32 {
        self.charge(FpOp::Convert);
        f64impl::to_i32_trunc(x)
    }

    /// f32 to f64 (exact).
    pub fn f32_to_f64(&mut self, x: Sf32) -> Sf64 {
        self.charge(FpOp::Convert);
        convert::f32_to_f64(x)
    }

    /// f64 to f32 (rounding).
    pub fn f64_to_f32(&mut self, x: Sf64) -> Sf32 {
        self.charge(FpOp::Convert);
        convert::f64_to_f32(x)
    }
}

impl Default for SoftFpu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut fpu = SoftFpu::new();
        let one = Sf64::ONE;
        let _ = fpu.add_f64(one, one);
        let _ = fpu.mul_f64(one, one);
        let _ = fpu.div_f64(one, one);
        let _ = fpu.sqrt_f64(one);
        let stats = *fpu.stats();
        assert_eq!(stats.add_f64, 1);
        assert_eq!(stats.mul_f64, 1);
        assert_eq!(stats.div_f64, 1);
        assert_eq!(stats.sqrt_f64, 1);
        assert_eq!(stats.total_ops(), 4);
        let c = CycleCosts::sabre_default();
        assert_eq!(stats.cycles, c.add_f64 + c.mul_f64 + c.div_f64 + c.sqrt_f64);
    }

    #[test]
    fn custom_costs_respected() {
        let mut costs = CycleCosts::sabre_default();
        costs.add_f64 = 1000;
        let mut fpu = SoftFpu::with_costs(costs);
        let _ = fpu.add_f64(Sf64::ONE, Sf64::ONE);
        assert_eq!(fpu.stats().cycles, 1000);
    }

    #[test]
    fn reset_clears_ledger() {
        let mut fpu = SoftFpu::new();
        let _ = fpu.sqrt_f32(Sf32::ONE);
        fpu.reset();
        assert_eq!(fpu.stats().cycles, 0);
        assert_eq!(fpu.stats().total_ops(), 0);
    }

    #[test]
    fn arithmetic_passthrough_correct() {
        let mut fpu = SoftFpu::new();
        let x = fpu.i32_to_f64(9);
        let r = fpu.sqrt_f64(x);
        assert_eq!(r.to_f64(), 3.0);
        assert_eq!(fpu.f64_to_i32(r), 3);
        let n = fpu.f64_to_f32(Sf64::from_f64(0.1));
        assert_eq!(n.to_f32(), 0.1f32);
        let w = fpu.f32_to_f64(n);
        assert_eq!(w.to_f64(), 0.1f32 as f64);
        assert!(fpu.lt_f64(Sf64::ZERO, Sf64::ONE));
        assert!(!fpu.lt_f32(Sf32::ONE, Sf32::ZERO));
    }

    #[test]
    fn sign_and_trig_ops_are_charged() {
        let mut fpu = SoftFpu::new();
        let x = Sf64::from_f64(-2.5);
        assert_eq!(fpu.neg_f64(x).to_f64(), 2.5);
        assert_eq!(fpu.abs_f64(x).to_f64(), 2.5);
        assert!(fpu.eq_f64(x, x));
        let (s, c) = fpu.sin_cos_f64(Sf64::ZERO);
        assert_eq!(s.to_f64(), 0.0);
        assert_eq!(c.to_f64(), 1.0);
        let stats = *fpu.stats();
        assert_eq!(stats.sign_f64, 2);
        assert_eq!(stats.sincos_f64, 1);
        assert_eq!(stats.cmp_f64, 1);
        let costs = CycleCosts::sabre_default();
        assert_eq!(
            stats.cycles,
            2 * costs.sign_f64 + costs.sincos_f64 + costs.cmp_f64
        );
    }

    #[test]
    fn f64_costs_exceed_f32_costs() {
        let c = CycleCosts::sabre_default();
        assert!(c.add_f64 > c.add_f32);
        assert!(c.mul_f64 > c.mul_f32);
        assert!(c.div_f64 > c.div_f32);
        assert!(c.sqrt_f64 > c.sqrt_f32);
    }
}
