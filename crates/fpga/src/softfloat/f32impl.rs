//! IEEE-754 binary32 arithmetic implemented with integer operations
//! only (round-to-nearest-even). Mirrors [`super::f64impl`] with the
//! binary32 field widths: 23-bit mantissa plus 7 guard bits, the same
//! headroom Berkeley Softfloat uses for f32.

/// A binary32 value as a raw bit pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sf32(pub u32);

const SIGN: u32 = 1 << 31;
const EXP_MASK: u32 = 0xFF;
const FRAC_BITS: u32 = 23;
const FRAC_MASK: u32 = (1 << FRAC_BITS) - 1;
const HIDDEN: u32 = 1 << FRAC_BITS;
/// Canonical quiet NaN.
const QNAN: u32 = 0x7FC0_0000;
const EXP_MAX: i32 = 0xFF;
/// Guard bits carried below the mantissa during arithmetic.
const GUARD: u32 = 7;
/// Internal normalized significand MSB position (23 + 7).
const NORM_MSB: u32 = FRAC_BITS + GUARD;
/// Tie value of the guard field for round-to-nearest-even.
const TIE: u32 = 1 << (GUARD - 1);

impl Sf32 {
    /// Wraps raw bits.
    pub const fn from_bits(bits: u32) -> Self {
        Self(bits)
    }

    /// Converts from a host `f32` (bit-level, exact).
    pub fn from_f32(x: f32) -> Self {
        Self(x.to_bits())
    }

    /// Converts to a host `f32` (bit-level, exact).
    pub fn to_f32(self) -> f32 {
        f32::from_bits(self.0)
    }

    /// The raw bit pattern.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Positive zero.
    pub const ZERO: Sf32 = Sf32(0);
    /// One.
    pub const ONE: Sf32 = Sf32(0x3F80_0000);

    pub(crate) fn sign(self) -> bool {
        self.0 & SIGN != 0
    }

    fn exp(self) -> i32 {
        ((self.0 >> FRAC_BITS) & EXP_MASK) as i32
    }

    fn frac(self) -> u32 {
        self.0 & FRAC_MASK
    }

    /// `true` for any NaN.
    pub fn is_nan(self) -> bool {
        self.exp() == EXP_MAX && self.frac() != 0
    }

    /// `true` for +/- infinity.
    pub fn is_inf(self) -> bool {
        self.exp() == EXP_MAX && self.frac() == 0
    }

    /// `true` for +/- zero.
    pub fn is_zero(self) -> bool {
        self.0 & !SIGN == 0
    }

    /// Flips the sign bit.
    #[allow(clippy::should_implement_trait)] // softfloat op set uses the paper's names
    pub fn neg(self) -> Self {
        Self(self.0 ^ SIGN)
    }

    /// Clears the sign bit.
    pub fn abs(self) -> Self {
        Self(self.0 & !SIGN)
    }
}

pub(crate) fn pack(sign: bool, exp_field: i32, frac: u32) -> u32 {
    ((sign as u32) << 31) | ((exp_field as u32) << FRAC_BITS) | frac
}

fn inf(sign: bool) -> u32 {
    pack(sign, EXP_MAX, 0)
}

/// Shift right with sticky.
fn srs32(x: u32, shift: u32) -> u32 {
    if shift == 0 {
        x
    } else if shift >= 32 {
        (x != 0) as u32
    } else {
        (x >> shift) | ((x & ((1u32 << shift) - 1) != 0) as u32)
    }
}

fn srs64_to32(x: u64, shift: u32) -> u32 {
    let kept = (x >> shift) as u32;
    let sticky = (x & ((1u64 << shift) - 1)) != 0;
    kept | sticky as u32
}

/// Unpacks a finite nonzero value, significand normalized into
/// `[2^23, 2^24)`.
pub(crate) fn unpack_norm(x: Sf32) -> (bool, i32, u32) {
    let mut e = x.exp();
    let mut sig = x.frac();
    if e == 0 {
        let shift = sig.leading_zeros() - (31 - FRAC_BITS);
        sig <<= shift;
        e = 1 - shift as i32;
    } else {
        sig |= HIDDEN;
    }
    (x.sign(), e, sig)
}

/// Rounds and packs; `sig` carries 7 guard bits (MSB at bit 30 when
/// normalized); value is `sig * 2^(e - 127 - 30)`.
pub(crate) fn round_pack(sign: bool, mut e: i32, mut sig: u32) -> u32 {
    debug_assert!(sig != 0);
    if e >= EXP_MAX {
        return inf(sign);
    }
    if e <= 0 {
        let shift = (1 - e) as u32;
        sig = srs32(sig, shift);
        e = 1;
    }
    let guard_bits = sig & ((1 << GUARD) - 1);
    let mut sig_r = sig >> GUARD;
    if guard_bits > TIE || (guard_bits == TIE && (sig_r & 1) == 1) {
        sig_r += 1;
    }
    if sig_r >= (1 << (FRAC_BITS + 1)) {
        sig_r >>= 1;
        e += 1;
        if e >= EXP_MAX {
            return inf(sign);
        }
    }
    if sig_r >= HIDDEN {
        pack(sign, e, sig_r - HIDDEN)
    } else {
        pack(sign, 0, sig_r)
    }
}

/// Normalizes nonzero `sig` so its MSB is at bit 30.
fn normalize(mut e: i32, mut sig: u32) -> (i32, u32) {
    let msb = 31 - sig.leading_zeros() as i32;
    let shift = msb - NORM_MSB as i32;
    if shift > 0 {
        sig = srs32(sig, shift as u32);
        e += shift;
    } else if shift < 0 {
        sig <<= -shift;
        e += shift;
    }
    (e, sig)
}

/// IEEE-754 addition, round-to-nearest-even.
pub fn add(a: Sf32, b: Sf32) -> Sf32 {
    if a.is_nan() || b.is_nan() {
        return Sf32(QNAN);
    }
    match (a.is_inf(), b.is_inf()) {
        (true, true) => {
            return if a.sign() == b.sign() { a } else { Sf32(QNAN) };
        }
        (true, false) => return a,
        (false, true) => return b,
        _ => {}
    }
    if a.is_zero() && b.is_zero() {
        return if a.sign() && b.sign() { a } else { Sf32(0) };
    }
    if a.is_zero() {
        return b;
    }
    if b.is_zero() {
        return a;
    }
    let (sa, ea, siga) = unpack_norm(a);
    let (sb, eb, sigb) = unpack_norm(b);
    let a_is_hi = (ea, siga) >= (eb, sigb);
    let (mut e, hi, s_hi, lo_raw, e_lo, s_lo) = if a_is_hi {
        (ea, siga << GUARD, sa, sigb << GUARD, eb, sb)
    } else {
        (eb, sigb << GUARD, sb, siga << GUARD, ea, sa)
    };
    let lo = srs32(lo_raw, (e - e_lo) as u32);
    let (sign, mut sum);
    if s_hi == s_lo {
        sum = hi + lo;
        sign = s_hi;
        if sum >= (1 << (NORM_MSB + 1)) {
            sum = srs32(sum, 1);
            e += 1;
        }
    } else {
        if hi == lo {
            return Sf32(0);
        }
        sum = hi - lo;
        sign = s_hi;
        let (e2, s2) = normalize(e, sum);
        e = e2;
        sum = s2;
    }
    Sf32(round_pack(sign, e, sum))
}

/// IEEE-754 subtraction.
pub fn sub(a: Sf32, b: Sf32) -> Sf32 {
    if b.is_nan() {
        return Sf32(QNAN);
    }
    add(a, b.neg())
}

/// IEEE-754 multiplication, round-to-nearest-even.
pub fn mul(a: Sf32, b: Sf32) -> Sf32 {
    if a.is_nan() || b.is_nan() {
        return Sf32(QNAN);
    }
    let sign = a.sign() ^ b.sign();
    if a.is_inf() || b.is_inf() {
        if a.is_zero() || b.is_zero() {
            return Sf32(QNAN);
        }
        return Sf32(inf(sign));
    }
    if a.is_zero() || b.is_zero() {
        return Sf32(pack(sign, 0, 0));
    }
    let (_, ea, siga) = unpack_norm(a);
    let (_, eb, sigb) = unpack_norm(b);
    let mut e = ea + eb - 127;
    let p = (siga as u64) * (sigb as u64); // in [2^46, 2^48)
    let sig = if p >= (1u64 << 47) {
        e += 1;
        srs64_to32(p, 47 - NORM_MSB)
    } else {
        srs64_to32(p, 46 - NORM_MSB)
    };
    Sf32(round_pack(sign, e, sig))
}

/// IEEE-754 division, round-to-nearest-even.
pub fn div(a: Sf32, b: Sf32) -> Sf32 {
    if a.is_nan() || b.is_nan() {
        return Sf32(QNAN);
    }
    let sign = a.sign() ^ b.sign();
    match (a.is_inf(), b.is_inf()) {
        (true, true) => return Sf32(QNAN),
        (true, false) => return Sf32(inf(sign)),
        (false, true) => return Sf32(pack(sign, 0, 0)),
        _ => {}
    }
    match (a.is_zero(), b.is_zero()) {
        (true, true) => return Sf32(QNAN),
        (true, false) => return Sf32(pack(sign, 0, 0)),
        (false, true) => return Sf32(inf(sign)),
        _ => {}
    }
    let (_, ea, siga) = unpack_norm(a);
    let (_, eb, sigb) = unpack_norm(b);
    let mut e = ea - eb + 126;
    let num = (siga as u64) << (NORM_MSB + 1);
    let den = sigb as u64;
    let mut q = num / den; // in (2^30, 2^32)
    if !num.is_multiple_of(den) {
        q |= 1;
    }
    if q >= (1 << (NORM_MSB + 1)) {
        q = (q >> 1) | (q & 1);
        e += 1;
    }
    Sf32(round_pack(sign, e, q as u32))
}

/// IEEE-754 square root, round-to-nearest-even.
pub fn sqrt(a: Sf32) -> Sf32 {
    if a.is_nan() {
        return Sf32(QNAN);
    }
    if a.is_zero() {
        return a;
    }
    if a.sign() {
        return Sf32(QNAN);
    }
    if a.is_inf() {
        return a;
    }
    let (_, e, sig) = unpack_norm(a);
    let mut ee = e - 127;
    let mut m = sig as u128; // in [2^23, 2^24)
    if ee & 1 != 0 {
        m <<= 1;
        ee -= 1;
    }
    // s = floor(sqrt(m << 37)) is in [2^30, 2^31).
    let x = m << 37;
    let mut s = super::f64impl::isqrt_u128(x);
    if s * s != x {
        s |= 1;
    }
    let er = ee / 2 + 127;
    Sf32(round_pack(false, er, s as u32))
}

/// IEEE equality (`NaN != NaN`, `-0 == +0`).
pub fn eq(a: Sf32, b: Sf32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a.is_zero() && b.is_zero() {
        return true;
    }
    a.0 == b.0
}

/// IEEE less-than (`false` on any NaN).
pub fn lt(a: Sf32, b: Sf32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a.is_zero() && b.is_zero() {
        return false;
    }
    match (a.sign(), b.sign()) {
        (false, false) => a.0 < b.0,
        (true, true) => a.0 > b.0,
        (true, false) => true,
        (false, true) => false,
    }
}

/// IEEE less-or-equal (`false` on any NaN).
pub fn le(a: Sf32, b: Sf32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    eq(a, b) || lt(a, b)
}

/// Conversion from `i32` with round-to-nearest-even.
pub fn from_i32(x: i32) -> Sf32 {
    if x == 0 {
        return Sf32(0);
    }
    let sign = x < 0;
    let mag = (x as i64).unsigned_abs() as u32;
    let msb = 31 - mag.leading_zeros() as i32;
    let sig = if msb <= NORM_MSB as i32 {
        mag << (NORM_MSB as i32 - msb)
    } else {
        srs32(mag, (msb - NORM_MSB as i32) as u32)
    };
    Sf32(round_pack(sign, 127 + msb, sig))
}

/// Conversion to `i32`, truncating toward zero and saturating (NaN
/// maps to 0) — the semantics of Rust's `as` cast.
pub fn to_i32_trunc(a: Sf32) -> i32 {
    if a.is_nan() {
        return 0;
    }
    if a.is_zero() {
        return 0;
    }
    if a.is_inf() {
        return if a.sign() { i32::MIN } else { i32::MAX };
    }
    let (sign, e, sig) = unpack_norm(a);
    let shift = e - 127; // value = sig * 2^(shift - 23)
    if shift < 0 {
        return 0;
    }
    if shift > 31 {
        return if sign { i32::MIN } else { i32::MAX };
    }
    let mag = if shift >= FRAC_BITS as i32 {
        (sig as u64) << (shift - FRAC_BITS as i32)
    } else {
        (sig >> (FRAC_BITS as i32 - shift)) as u64
    };
    let limit = if sign { 1u64 << 31 } else { (1u64 << 31) - 1 };
    let mag = mag.min(limit);
    if sign {
        (mag as i64).wrapping_neg() as i32
    } else {
        mag as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bin(
        name: &str,
        op: fn(Sf32, Sf32) -> Sf32,
        native: fn(f32, f32) -> f32,
        a: f32,
        b: f32,
    ) {
        let got = op(Sf32::from_f32(a), Sf32::from_f32(b));
        let want = native(a, b);
        if want.is_nan() {
            assert!(got.is_nan(), "{name}({a:e},{b:e}): want NaN");
        } else {
            assert_eq!(
                got.bits(),
                want.to_bits(),
                "{name}({a:e},{b:e}): got {:08x} want {:08x}",
                got.bits(),
                want.to_bits()
            );
        }
    }

    const SPECIALS: &[f32] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        2.0,
        0.5,
        1.5,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
        1e-45,  // smallest subnormal
        1e-40,  // subnormal
        -1e-41, // subnormal
        std::f32::consts::PI,
        1.0000001, // 1 + ulp
        9.80665,
        -273.15,
        1e38,
        -1e38,
        1e-38,
        0.1,
        3.0,
        -7.0,
    ];

    #[test]
    fn add_specials_exhaustive() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                check_bin("add", add, |x, y| x + y, a, b);
            }
        }
    }

    #[test]
    fn sub_specials_exhaustive() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                check_bin("sub", sub, |x, y| x - y, a, b);
            }
        }
    }

    #[test]
    fn mul_specials_exhaustive() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                check_bin("mul", mul, |x, y| x * y, a, b);
            }
        }
    }

    #[test]
    fn div_specials_exhaustive() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                check_bin("div", div, |x, y| x / y, a, b);
            }
        }
    }

    #[test]
    fn sqrt_specials() {
        for &a in SPECIALS {
            let got = sqrt(Sf32::from_f32(a));
            let want = a.sqrt();
            if want.is_nan() {
                assert!(got.is_nan(), "sqrt({a})");
            } else {
                assert_eq!(got.bits(), want.to_bits(), "sqrt({a:e})");
            }
        }
    }

    #[test]
    fn comparisons_match_native() {
        for &a in SPECIALS {
            for &b in SPECIALS {
                let (sa, sb) = (Sf32::from_f32(a), Sf32::from_f32(b));
                assert_eq!(eq(sa, sb), a == b, "eq({a},{b})");
                assert_eq!(lt(sa, sb), a < b, "lt({a},{b})");
                assert_eq!(le(sa, sb), a <= b, "le({a},{b})");
            }
        }
    }

    #[test]
    fn i32_conversions_match_native() {
        for &x in &[
            0i32,
            1,
            -1,
            42,
            -42,
            i32::MAX,
            i32::MIN,
            7_654_321,
            16_777_217,
        ] {
            assert_eq!(from_i32(x).to_f32(), x as f32, "from_i32({x})");
        }
        for &a in SPECIALS {
            assert_eq!(to_i32_trunc(Sf32::from_f32(a)), a as i32, "to_i32({a})");
        }
        for &a in &[2.9f32, -2.9, 0.49, 1e15, -1e15, 2147483500.0] {
            assert_eq!(to_i32_trunc(Sf32::from_f32(a)), a as i32, "to_i32({a})");
        }
    }

    #[test]
    fn dependent_chain_matches_native() {
        let mut n = 2.0f32;
        let mut s = Sf32::from_f32(2.0);
        for i in 1..300 {
            let k = i as f32;
            n = (n * k + 1.0) / (k + 0.5);
            n = n.sqrt() + 0.25;
            let sk = from_i32(i);
            s = div(add(mul(s, sk), Sf32::ONE), add(sk, Sf32::from_f32(0.5)));
            s = add(sqrt(s), Sf32::from_f32(0.25));
        }
        assert_eq!(s.bits(), n.to_bits());
    }

    #[test]
    fn overflow_and_underflow() {
        check_bin("mul", mul, |x, y| x * y, f32::MAX, 2.0);
        check_bin("add", add, |x, y| x + y, f32::MAX, f32::MAX);
        check_bin("mul", mul, |x, y| x * y, f32::MIN_POSITIVE, 0.5);
        check_bin("div", div, |x, y| x / y, 1e-40, 100.0);
    }
}
