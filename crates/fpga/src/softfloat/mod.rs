//! IEEE-754 software floating point ("Softfloat") for the Sabre core.
//!
//! The paper: "the version of Sabre used here has no floating-point
//! co-processor. We therefore emulated IEEE floating point operations
//! using the Softfloat library." This module is a from-scratch Rust
//! implementation of that layer: binary32 and binary64 add/sub/mul/
//! div/sqrt, comparisons and conversions built from integer operations
//! only, with round-to-nearest-even, gradual underflow and NaN/infinity
//! handling. Property tests validate every operation bit-for-bit
//! against the host FPU.
//!
//! [`SoftFpu`] adds the per-operation Sabre cycle accounting used by
//! the performance benches.

pub mod convert;
pub mod f32impl;
pub mod f64impl;
pub mod fpu;

pub use convert::{f32_to_f64, f64_to_f32};
pub use f32impl::Sf32;
pub use f64impl::Sf64;
pub use fpu::{CycleCosts, FpOp, FpuStats, SoftFpu};
