//! Cycle-accurate model of the five-stage affine rotation pipeline
//! (paper Figure 5) and the frame-rate arithmetic it implies.
//!
//! The hardware computes, for each input pixel coordinate, the rotated
//! output coordinate:
//!
//! ```text
//! OutX = InX*cos(theta) - InY*sin(theta)
//! OutY = InY*cos(theta) + InX*sin(theta)
//! ```
//!
//! as a pipeline: (1) sine/cosine lookup, (2) translate to the centre
//! of rotation and convert to fixed point, (3) four fixed-point
//! multiplies, (4) sums and convert back to integer, (5) translate
//! back (plus the boresight translation correction). Once the pipeline
//! is full it accepts and produces one pixel per clock.

use crate::fixed::{SinCosLut, Q14};

/// A pixel coordinate pair.
pub type Coord = (i32, i32);

/// Stage-3 intermediate products (Q-scaled by the Q1.14 trig samples).
#[derive(Clone, Copy, Debug, Default)]
struct Products {
    neg_y_sin: i64,
    x_cos: i64,
    x_sin: i64,
    y_cos: i64,
}

/// The five-stage rotation pipeline.
///
/// Feed one input coordinate per [`AffinePipeline::clock`]; after a
/// five-cycle fill latency every clock yields one output coordinate.
///
/// # Examples
///
/// ```
/// use fpga::pipeline::AffinePipeline;
/// let mut pipe = AffinePipeline::new(0.0, (0, 0), (0, 0)); // identity
/// let mut out = None;
/// for _ in 0..5 {
///     out = pipe.clock(Some((10, 20)));
/// }
/// assert_eq!(out, Some((10, 20)));
/// ```
#[derive(Clone, Debug)]
pub struct AffinePipeline {
    lut: SinCosLut,
    theta_index: u32,
    centre: Coord,
    translation: Coord,
    // Stage registers (None = bubble).
    s1: Option<Coord>,      // after LUT fetch (trig held below)
    s2: Option<(i32, i32)>, // centred coordinates (fixed point)
    s3: Option<Products>,   // multiplier outputs
    s4: Option<Coord>,      // summed, converted back to int
    sin: Q14,
    cos: Q14,
    clocks: u64,
    outputs: u64,
}

impl AffinePipeline {
    /// Creates a pipeline for rotation `theta` (radians, quantized to
    /// the 1024-entry LUT) about `centre`, with an additional
    /// `translation` applied at the last stage.
    pub fn new(theta: f64, centre: Coord, translation: Coord) -> Self {
        let lut = SinCosLut::new();
        let theta_index = SinCosLut::index_of(theta);
        let (sin, cos) = lut.lookup(theta_index);
        Self {
            lut,
            theta_index,
            centre,
            translation,
            s1: None,
            s2: None,
            s3: None,
            s4: None,
            sin,
            cos,
            clocks: 0,
            outputs: 0,
        }
    }

    /// Updates the rotation angle (takes effect for pixels entering
    /// afterwards, as a register write would).
    pub fn set_theta(&mut self, theta: f64) {
        self.theta_index = SinCosLut::index_of(theta);
        let (s, c) = self.lut.lookup(self.theta_index);
        self.sin = s;
        self.cos = c;
    }

    /// Updates the output translation.
    pub fn set_translation(&mut self, translation: Coord) {
        self.translation = translation;
    }

    /// The LUT index in use.
    pub fn theta_index(&self) -> u32 {
        self.theta_index
    }

    /// Clocks the pipeline: accepts an optional input coordinate and
    /// returns the coordinate completing stage 5, if any.
    pub fn clock(&mut self, input: Option<Coord>) -> Option<Coord> {
        self.clocks += 1;
        // Stage 5: add centre back plus translation.
        let out = self.s4.take().map(|(x, y)| {
            self.outputs += 1;
            (
                x + self.centre.0 + self.translation.0,
                y + self.centre.1 + self.translation.1,
            )
        });
        // Stage 4: sums, fixed -> int (products are int * Q14).
        self.s4 = self.s3.take().map(|p| {
            let fx = p.neg_y_sin + p.x_cos;
            let fy = p.x_sin + p.y_cos;
            // Round-to-nearest on the Q14 products.
            let half = 1i64 << 13;
            (((fx + half) >> 14) as i32, ((fy + half) >> 14) as i32)
        });
        // Stage 3: four multipliers.
        self.s3 = self.s2.take().map(|(mx, my)| Products {
            neg_y_sin: -(my as i64) * self.sin as i64,
            x_cos: mx as i64 * self.cos as i64,
            x_sin: mx as i64 * self.sin as i64,
            y_cos: my as i64 * self.cos as i64,
        });
        // Stage 2: translate to the centre of rotation.
        self.s2 = self
            .s1
            .take()
            .map(|(x, y)| (x - self.centre.0, y - self.centre.1));
        // Stage 1: trig fetch (held in sin/cos registers).
        self.s1 = input;
        out
    }

    /// Clocks consumed so far.
    pub fn clocks(&self) -> u64 {
        self.clocks
    }

    /// Outputs produced so far.
    pub fn outputs(&self) -> u64 {
        self.outputs
    }

    /// Transforms one coordinate functionally (no pipeline timing) —
    /// the same arithmetic the hardware performs.
    pub fn transform(&self, (x, y): Coord) -> Coord {
        let mx = (x - self.centre.0) as i64;
        let my = (y - self.centre.1) as i64;
        let half = 1i64 << 13;
        let ox = ((-my * self.sin as i64 + mx * self.cos as i64 + half) >> 14) as i32;
        let oy = ((mx * self.sin as i64 + my * self.cos as i64 + half) >> 14) as i32;
        (
            ox + self.centre.0 + self.translation.0,
            oy + self.centre.1 + self.translation.1,
        )
    }

    /// Pipeline fill latency in clocks.
    pub const LATENCY: u64 = 5;
}

/// Frame timing for the full video transform pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameTiming {
    /// Frame width, pixels.
    pub width: u32,
    /// Frame height, pixels.
    pub height: u32,
    /// Pipeline clock frequency, Hz.
    pub clock_hz: f64,
}

impl FrameTiming {
    /// PAL-ish 640x480 at the RC200E's typical 65 MHz pixel clock.
    pub fn rc200e_vga() -> Self {
        Self {
            width: 640,
            height: 480,
            clock_hz: 65e6,
        }
    }

    /// Clocks to transform one frame: one pixel per clock plus the
    /// pipeline fill latency.
    pub fn cycles_per_frame(&self) -> u64 {
        self.width as u64 * self.height as u64 + AffinePipeline::LATENCY
    }

    /// Sustainable transformed frame rate, frames per second.
    pub fn max_fps(&self) -> f64 {
        self.clock_hz / self.cycles_per_frame() as f64
    }

    /// `true` if the pipeline keeps up with a given source frame rate.
    pub fn is_real_time(&self, source_fps: f64) -> bool {
        self.max_fps() >= source_fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_rotation_passes_through() {
        let mut pipe = AffinePipeline::new(0.0, (320, 240), (0, 0));
        let mut got = Vec::new();
        let pixels = [(0, 0), (320, 240), (639, 479)];
        for i in 0..pixels.len() as u64 + AffinePipeline::LATENCY {
            let input = pixels.get(i as usize).copied();
            if let Some(out) = pipe.clock(input) {
                got.push(out);
            }
        }
        assert_eq!(got, pixels.to_vec());
    }

    #[test]
    fn latency_is_five_clocks() {
        let mut pipe = AffinePipeline::new(0.1, (0, 0), (0, 0));
        assert!(pipe.clock(Some((1, 1))).is_none());
        assert!(pipe.clock(None).is_none());
        assert!(pipe.clock(None).is_none());
        assert!(pipe.clock(None).is_none());
        assert!(pipe.clock(None).is_some());
    }

    #[test]
    fn throughput_one_pixel_per_clock() {
        let mut pipe = AffinePipeline::new(0.05, (100, 100), (0, 0));
        let n = 1000u64;
        let mut outputs = 0;
        for i in 0..n + AffinePipeline::LATENCY {
            let input = if i < n {
                Some((i as i32 % 640, i as i32 / 640))
            } else {
                None
            };
            if pipe.clock(input).is_some() {
                outputs += 1;
            }
        }
        assert_eq!(outputs, n);
        assert_eq!(pipe.outputs(), n);
        assert_eq!(pipe.clocks(), n + AffinePipeline::LATENCY);
    }

    #[test]
    fn ninety_degree_rotation() {
        let pipe = AffinePipeline::new(std::f64::consts::FRAC_PI_2, (0, 0), (0, 0));
        // (10, 0) -> (0, 10) for +90 degrees.
        assert_eq!(pipe.transform((10, 0)), (0, 10));
        assert_eq!(pipe.transform((0, 10)), (-10, 0));
    }

    #[test]
    fn rotation_matches_float_within_quantization() {
        let theta = 0.1234;
        let pipe = AffinePipeline::new(theta, (320, 240), (0, 0));
        let (s, c) = (theta.sin(), theta.cos());
        for &(x, y) in &[(0, 0), (100, 50), (639, 479), (320, 240), (12, 400)] {
            let (ox, oy) = pipe.transform((x, y));
            let mx = (x - 320) as f64;
            let my = (y - 240) as f64;
            let fx = -my * s + mx * c + 320.0;
            let fy = mx * s + my * c + 240.0;
            assert!(
                (ox as f64 - fx).abs() <= 1.5 && (oy as f64 - fy).abs() <= 1.5,
                "({x},{y}) -> ({ox},{oy}) vs ({fx:.2},{fy:.2})"
            );
        }
    }

    #[test]
    fn translation_is_applied_last() {
        let pipe = AffinePipeline::new(0.0, (0, 0), (5, -3));
        assert_eq!(pipe.transform((10, 10)), (15, 7));
    }

    #[test]
    fn functional_and_pipelined_agree() {
        let mut pipe = AffinePipeline::new(0.3, (320, 240), (2, 1));
        let reference = pipe.clone();
        let pixels: Vec<Coord> = (0..50).map(|i| (i * 7 % 640, i * 13 % 480)).collect();
        let mut got = Vec::new();
        for i in 0..pixels.len() as u64 + AffinePipeline::LATENCY {
            let input = pixels.get(i as usize).copied();
            if let Some(out) = pipe.clock(input) {
                got.push(out);
            }
        }
        let want: Vec<Coord> = pixels.iter().map(|&p| reference.transform(p)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn set_theta_affects_new_pixels() {
        let mut pipe = AffinePipeline::new(0.0, (0, 0), (0, 0));
        pipe.set_theta(std::f64::consts::FRAC_PI_2);
        assert_eq!(pipe.transform((10, 0)), (0, 10));
    }

    #[test]
    fn vga_timing_is_real_time() {
        let t = FrameTiming::rc200e_vga();
        assert_eq!(t.cycles_per_frame(), 640 * 480 + 5);
        // 65 MHz / 307205 ~ 211 fps: comfortably real-time for PAL/NTSC.
        assert!(t.max_fps() > 200.0);
        assert!(t.is_real_time(25.0));
        assert!(t.is_real_time(30.0));
        assert!(!t.is_real_time(500.0));
    }

    #[test]
    fn bubble_handling() {
        let mut pipe = AffinePipeline::new(0.0, (0, 0), (0, 0));
        // Interleave inputs and bubbles; outputs preserve order.
        let seq = [Some((1, 1)), None, Some((2, 2)), None, Some((3, 3))];
        let mut got = Vec::new();
        for i in 0..seq.len() as u64 + AffinePipeline::LATENCY {
            let input = seq.get(i as usize).copied().flatten();
            if let Some(out) = pipe.clock(input) {
                got.push(out);
            }
        }
        assert_eq!(got, vec![(1, 1), (2, 2), (3, 3)]);
    }
}
