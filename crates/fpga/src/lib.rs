//! FPGA system substrate: everything the paper synthesizes onto the
//! Celoxica RC200E (Virtex-II XC2V1000), as cycle-aware simulation.
//!
//! * [`sabre`] — the Sabre 32-bit soft-core: ISA, assembler,
//!   instruction-set simulator, memory-mapped peripheral bus with the
//!   Figure-6 device set, BlockRAM/ZBT memory models.
//! * [`softfloat`] — from-scratch IEEE-754 binary32/binary64 arithmetic
//!   on integer ops (the paper's Softfloat layer), bit-exact against
//!   the host FPU, with per-op Sabre cycle accounting.
//! * [`fixed`] — Q-format fixed point and the 1024-entry sine/cosine
//!   LUT of the video path.
//! * [`pipeline`] — the five-stage affine rotation pipeline (Figure 5)
//!   with one-pixel-per-clock throughput and frame timing math.
//!
//! # Examples
//!
//! ```
//! use fpga::sabre::{assemble, Sabre, StopReason};
//!
//! let program = assemble("
//!         addi r1, r0, 6
//!         addi r2, r0, 7
//!         mul  r3, r1, r2
//!         halt
//! ").expect("valid assembly");
//! let mut cpu = Sabre::with_standard_bus();
//! cpu.load_program(&program.words);
//! assert_eq!(cpu.run(100), StopReason::Halted);
//! assert_eq!(cpu.reg(3), 42);
//! ```

pub mod fixed;
pub mod pipeline;
pub mod sabre;
pub mod softfloat;
