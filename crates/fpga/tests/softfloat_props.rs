//! Property tests: softfloat vs the host FPU, bit for bit, over random
//! bit patterns (which include NaNs, infinities, subnormals and every
//! exponent/significand combination proptest stumbles into).

use fpga::softfloat::{self, f32impl, f64impl, Sf32, Sf64};
use proptest::prelude::*;

fn check64(got: Sf64, want: f64, what: &str) {
    if want.is_nan() {
        assert!(got.is_nan(), "{what}: want NaN, got {:016x}", got.bits());
    } else {
        assert_eq!(
            got.bits(),
            want.to_bits(),
            "{what}: got {:016x} want {:016x}",
            got.bits(),
            want.to_bits()
        );
    }
}

fn check32(got: Sf32, want: f32, what: &str) {
    if want.is_nan() {
        assert!(got.is_nan(), "{what}: want NaN, got {:08x}", got.bits());
    } else {
        assert_eq!(
            got.bits(),
            want.to_bits(),
            "{what}: got {:08x} want {:08x}",
            got.bits(),
            want.to_bits()
        );
    }
}

/// Bit patterns with a boosted probability of special exponents.
fn f64_pattern() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => any::<u64>(),
        1 => any::<u64>().prop_map(|x| x | 0x7FF0_0000_0000_0000), // inf/NaN band
        1 => any::<u64>().prop_map(|x| x & 0x800F_FFFF_FFFF_FFFF), // subnormal band
        1 => any::<u64>().prop_map(|x| (x & 0x800F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000), // near 1
    ]
}

fn f32_pattern() -> impl Strategy<Value = u32> {
    prop_oneof![
        4 => any::<u32>(),
        1 => any::<u32>().prop_map(|x| x | 0x7F80_0000),
        1 => any::<u32>().prop_map(|x| x & 0x807F_FFFF),
        1 => any::<u32>().prop_map(|x| (x & 0x807F_FFFF) | 0x3F80_0000),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn f64_add_matches_native(a in f64_pattern(), b in f64_pattern()) {
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        check64(f64impl::add(Sf64(a), Sf64(b)), fa + fb, "add");
    }

    #[test]
    fn f64_sub_matches_native(a in f64_pattern(), b in f64_pattern()) {
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        check64(f64impl::sub(Sf64(a), Sf64(b)), fa - fb, "sub");
    }

    #[test]
    fn f64_mul_matches_native(a in f64_pattern(), b in f64_pattern()) {
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        check64(f64impl::mul(Sf64(a), Sf64(b)), fa * fb, "mul");
    }

    #[test]
    fn f64_div_matches_native(a in f64_pattern(), b in f64_pattern()) {
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        check64(f64impl::div(Sf64(a), Sf64(b)), fa / fb, "div");
    }

    #[test]
    fn f64_sqrt_matches_native(a in f64_pattern()) {
        let fa = f64::from_bits(a);
        check64(f64impl::sqrt(Sf64(a)), fa.sqrt(), "sqrt");
    }

    #[test]
    fn f64_cmp_matches_native(a in f64_pattern(), b in f64_pattern()) {
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        prop_assert_eq!(f64impl::eq(Sf64(a), Sf64(b)), fa == fb);
        prop_assert_eq!(f64impl::lt(Sf64(a), Sf64(b)), fa < fb);
        prop_assert_eq!(f64impl::le(Sf64(a), Sf64(b)), fa <= fb);
    }

    #[test]
    fn f64_to_i32_matches_native(a in f64_pattern()) {
        let fa = f64::from_bits(a);
        prop_assert_eq!(f64impl::to_i32_trunc(Sf64(a)), fa as i32);
    }

    #[test]
    fn i32_to_f64_matches_native(x in any::<i32>()) {
        prop_assert_eq!(f64impl::from_i32(x).to_f64(), x as f64);
    }

    #[test]
    fn f32_add_matches_native(a in f32_pattern(), b in f32_pattern()) {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        check32(f32impl::add(Sf32(a), Sf32(b)), fa + fb, "add32");
    }

    #[test]
    fn f32_sub_matches_native(a in f32_pattern(), b in f32_pattern()) {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        check32(f32impl::sub(Sf32(a), Sf32(b)), fa - fb, "sub32");
    }

    #[test]
    fn f32_mul_matches_native(a in f32_pattern(), b in f32_pattern()) {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        check32(f32impl::mul(Sf32(a), Sf32(b)), fa * fb, "mul32");
    }

    #[test]
    fn f32_div_matches_native(a in f32_pattern(), b in f32_pattern()) {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        check32(f32impl::div(Sf32(a), Sf32(b)), fa / fb, "div32");
    }

    #[test]
    fn f32_sqrt_matches_native(a in f32_pattern()) {
        let fa = f32::from_bits(a);
        check32(f32impl::sqrt(Sf32(a)), fa.sqrt(), "sqrt32");
    }

    #[test]
    fn f32_to_i32_matches_native(a in f32_pattern()) {
        let fa = f32::from_bits(a);
        prop_assert_eq!(f32impl::to_i32_trunc(Sf32(a)), fa as i32);
    }

    #[test]
    fn i32_to_f32_matches_native(x in any::<i32>()) {
        prop_assert_eq!(f32impl::from_i32(x).to_f32(), x as f32);
    }

    #[test]
    fn widen_matches_native(a in f32_pattern()) {
        let fa = f32::from_bits(a);
        check64(softfloat::f32_to_f64(Sf32(a)), fa as f64, "widen");
    }

    #[test]
    fn narrow_matches_native(a in f64_pattern()) {
        let fa = f64::from_bits(a);
        check32(softfloat::f64_to_f32(Sf64(a)), fa as f32, "narrow");
    }

    #[test]
    fn add_is_commutative(a in f64_pattern(), b in f64_pattern()) {
        let x = f64impl::add(Sf64(a), Sf64(b));
        let y = f64impl::add(Sf64(b), Sf64(a));
        prop_assert!(x.bits() == y.bits() || (x.is_nan() && y.is_nan()));
    }

    #[test]
    fn mul_is_commutative(a in f64_pattern(), b in f64_pattern()) {
        let x = f64impl::mul(Sf64(a), Sf64(b));
        let y = f64impl::mul(Sf64(b), Sf64(a));
        prop_assert!(x.bits() == y.bits() || (x.is_nan() && y.is_nan()));
    }
}
