//! Property tests for the video path: affine geometry, fixed-point
//! agreement, and metric sanity.

use proptest::prelude::*;
use video::affine::{transform, AffineParams, MappingKind};
use video::metrics::{mse, psnr};
use video::scene;
use video::{Frame, Rgb565};

fn small_angle() -> impl Strategy<Value = f64> {
    -0.12f64..0.12
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn affine_inverse_is_exact_inverse(
        theta in -1.0f64..1.0, tx in -20.0f64..20.0, ty in -20.0f64..20.0,
        px in -200.0f64..200.0, py in -200.0f64..200.0
    ) {
        let p = AffineParams { theta, tx, ty, centre: (100.0, 80.0) };
        let fwd = p.apply((px, py));
        let back = p.inverse().apply(fwd);
        prop_assert!((back.0 - px).abs() < 1e-8);
        prop_assert!((back.1 - py).abs() < 1e-8);
    }

    #[test]
    fn fixed_inverse_never_leaves_holes(theta in small_angle(), tx in -5.0f64..5.0) {
        let src = scene::checkerboard(64, 64, 8);
        let p = AffineParams { theta, tx, ty: 0.0, centre: (32.0, 32.0) };
        let (_, stats) = transform(&src, &p, MappingKind::FixedInverse);
        prop_assert_eq!(stats.holes, 0);
    }

    #[test]
    fn fixed_and_float_agree_on_interior(theta in small_angle()) {
        let src = scene::checkerboard(96, 96, 12);
        let p = AffineParams { theta, tx: 0.0, ty: 0.0, centre: (48.0, 48.0) };
        let (float_out, _) = transform(&src, &p, MappingKind::FloatInverse);
        let (fixed_out, _) = transform(&src, &p, MappingKind::FixedInverse);
        // LUT quantization is half a step (~0.003 rad): edge pixels may
        // differ, bulk must agree.
        let q = psnr(&float_out.crop(16, 16, 64, 64), &fixed_out.crop(16, 16, 64, 64));
        prop_assert!(q > 15.0, "psnr {q}");
    }

    #[test]
    fn identity_params_are_lossless_for_all_mappings(cell in 2u32..16) {
        let src = scene::checkerboard(48, 48, cell);
        let id = AffineParams::identity(48, 48);
        for kind in [MappingKind::FloatInverse, MappingKind::FixedForward, MappingKind::FixedInverse] {
            let (out, stats) = transform(&src, &id, kind);
            prop_assert_eq!(&out, &src);
            prop_assert_eq!(stats.holes, 0);
        }
    }

    #[test]
    fn mse_is_a_metric(seed_a in any::<u16>(), seed_b in any::<u16>()) {
        let mut a = Frame::new(16, 16);
        let mut b = Frame::new(16, 16);
        for i in 0..256u32 {
            let va = (seed_a as u32).wrapping_mul(i + 1) as u16;
            let vb = (seed_b as u32).wrapping_mul(i + 7) as u16;
            a.set((i % 16) as i32, (i / 16) as i32, Rgb565(va));
            b.set((i % 16) as i32, (i / 16) as i32, Rgb565(vb));
        }
        // Symmetry and identity of indiscernibles (on luma).
        prop_assert_eq!(mse(&a, &b).to_bits(), mse(&b, &a).to_bits());
        prop_assert_eq!(mse(&a, &a), 0.0);
        prop_assert!(mse(&a, &b) >= 0.0);
    }

    #[test]
    fn rotation_composes(theta in 0.01f64..0.06) {
        // Rotating by theta twice ~ rotating by 2*theta once (within
        // resampling error).
        let src = scene::crosshair(96, 96);
        let once = AffineParams { theta, tx: 0.0, ty: 0.0, centre: (48.0, 48.0) };
        let twice = AffineParams { theta: 2.0 * theta, ..once };
        let (step1, _) = transform(&src, &once, MappingKind::FloatInverse);
        let (step2, _) = transform(&step1, &once, MappingKind::FloatInverse);
        let (direct, _) = transform(&src, &twice, MappingKind::FloatInverse);
        let q = psnr(&step2.crop(24, 24, 48, 48), &direct.crop(24, 24, 48, 48));
        prop_assert!(q > 12.0, "psnr {q}");
    }
}
