//! RGB565 framebuffer.

/// A 16-bit RGB565 pixel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Rgb565(pub u16);

impl Rgb565 {
    /// Black.
    pub const BLACK: Rgb565 = Rgb565(0);
    /// White.
    pub const WHITE: Rgb565 = Rgb565(0xFFFF);

    /// Packs 8-bit channels (truncating to 5/6/5 bits).
    pub fn from_rgb8(r: u8, g: u8, b: u8) -> Self {
        Self((((r as u16) >> 3) << 11) | (((g as u16) >> 2) << 5) | ((b as u16) >> 3))
    }

    /// Unpacks to 8-bit channels (bit-replicated).
    pub fn to_rgb8(self) -> (u8, u8, u8) {
        let r5 = (self.0 >> 11) & 0x1F;
        let g6 = (self.0 >> 5) & 0x3F;
        let b5 = self.0 & 0x1F;
        (
            ((r5 << 3) | (r5 >> 2)) as u8,
            ((g6 << 2) | (g6 >> 4)) as u8,
            ((b5 << 3) | (b5 >> 2)) as u8,
        )
    }

    /// Perceptual-ish luma (0-255) for metrics.
    pub fn luma(self) -> u8 {
        let (r, g, b) = self.to_rgb8();
        ((77 * r as u32 + 150 * g as u32 + 29 * b as u32) >> 8) as u8
    }
}

/// A row-major RGB565 framebuffer.
///
/// # Examples
///
/// ```
/// use video::{Frame, Rgb565};
/// let mut f = Frame::new(4, 3);
/// f.set(1, 2, Rgb565::WHITE);
/// assert_eq!(f.get(1, 2), Some(Rgb565::WHITE));
/// assert_eq!(f.get(9, 9), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    width: u32,
    height: u32,
    pixels: Vec<Rgb565>,
}

impl Frame {
    /// Creates a black frame.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            pixels: vec![Rgb565::BLACK; (width * height) as usize],
        }
    }

    /// The RC200E VGA frame (640x480).
    pub fn vga() -> Self {
        Self::new(640, 480)
    }

    /// Frame width, pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height, pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel at (x, y), or `None` outside the frame.
    pub fn get(&self, x: i32, y: i32) -> Option<Rgb565> {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            None
        } else {
            Some(self.pixels[(y as u32 * self.width + x as u32) as usize])
        }
    }

    /// Sets the pixel at (x, y); out-of-frame writes are dropped
    /// (hardware clips to the active area).
    pub fn set(&mut self, x: i32, y: i32, value: Rgb565) {
        if x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height {
            self.pixels[(y as u32 * self.width + x as u32) as usize] = value;
        }
    }

    /// Fills the frame with one value.
    pub fn fill(&mut self, value: Rgb565) {
        self.pixels.fill(value);
    }

    /// Raw pixel slice (row major).
    pub fn pixels(&self) -> &[Rgb565] {
        &self.pixels
    }

    /// Iterates `(x, y, pixel)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, Rgb565)> + '_ {
        self.pixels.iter().enumerate().map(move |(i, &p)| {
            let i = i as u32;
            (i % self.width, i / self.width, p)
        })
    }

    /// Copies a rectangular region into a new frame. The region is
    /// clamped to the frame bounds.
    pub fn crop(&self, x0: u32, y0: u32, width: u32, height: u32) -> Frame {
        let x0 = x0.min(self.width);
        let y0 = y0.min(self.height);
        let w = width.min(self.width - x0);
        let h = height.min(self.height - y0);
        let mut out = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                if let Some(p) = self.get((x0 + x) as i32, (y0 + y) as i32) {
                    out.set(x as i32, y as i32, p);
                }
            }
        }
        out
    }

    /// Fraction of pixels equal to `value`.
    pub fn fraction_of(&self, value: Rgb565) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().filter(|&&p| p == value).count() as f64 / self.pixels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb565_packing() {
        assert_eq!(Rgb565::from_rgb8(255, 255, 255), Rgb565::WHITE);
        assert_eq!(Rgb565::from_rgb8(0, 0, 0), Rgb565::BLACK);
        let red = Rgb565::from_rgb8(255, 0, 0);
        assert_eq!(red.0, 0xF800);
        let (r, g, b) = red.to_rgb8();
        assert_eq!((r, g, b), (255, 0, 0));
    }

    #[test]
    fn rgb565_roundtrip_within_truncation() {
        for &(r, g, b) in &[(10u8, 200u8, 31u8), (123, 45, 67), (254, 253, 252)] {
            let (r2, g2, b2) = Rgb565::from_rgb8(r, g, b).to_rgb8();
            assert!((r as i32 - r2 as i32).abs() <= 8);
            assert!((g as i32 - g2 as i32).abs() <= 4);
            assert!((b as i32 - b2 as i32).abs() <= 8);
        }
    }

    #[test]
    fn luma_ordering() {
        assert!(Rgb565::WHITE.luma() > Rgb565::from_rgb8(128, 128, 128).luma());
        assert!(Rgb565::from_rgb8(128, 128, 128).luma() > Rgb565::BLACK.luma());
    }

    #[test]
    fn frame_bounds() {
        let mut f = Frame::new(2, 2);
        f.set(-1, 0, Rgb565::WHITE); // dropped
        f.set(0, 2, Rgb565::WHITE); // dropped
        f.set(1, 1, Rgb565::WHITE);
        assert_eq!(f.get(-1, 0), None);
        assert_eq!(f.get(0, 2), None);
        assert_eq!(f.get(1, 1), Some(Rgb565::WHITE));
        assert_eq!(f.fraction_of(Rgb565::WHITE), 0.25);
    }

    #[test]
    fn fill_and_iter() {
        let mut f = Frame::new(3, 2);
        f.fill(Rgb565::from_rgb8(0, 255, 0));
        assert_eq!(f.iter().count(), 6);
        assert!(f.iter().all(|(_, _, p)| p == Rgb565::from_rgb8(0, 255, 0)));
        let coords: Vec<(u32, u32)> = f.iter().map(|(x, y, _)| (x, y)).collect();
        assert_eq!(coords[0], (0, 0));
        assert_eq!(coords[5], (2, 1));
    }

    #[test]
    fn vga_dimensions() {
        let f = Frame::vga();
        assert_eq!((f.width(), f.height()), (640, 480));
        assert_eq!(f.pixels().len(), 640 * 480);
    }
}
