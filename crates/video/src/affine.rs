//! Affine correction transforms.
//!
//! Three implementations of `r' = A r + B` (paper section 6):
//!
//! * [`MappingKind::FloatInverse`] — double-precision inverse (gather)
//!   mapping: the quality reference.
//! * [`MappingKind::FixedForward`] — the paper-faithful path: 16-bit
//!   fixed point with the 1024-entry LUT, *forward* mapping ("computes
//!   the rotated output location of each input pixel"), which can
//!   leave holes where no input lands.
//! * [`MappingKind::FixedInverse`] — same arithmetic, inverse mapping
//!   (every output pixel gathers from a source location): no holes,
//!   the "obvious enhancement" ablation.

use crate::frame::{Frame, Rgb565};
use fpga::pipeline::AffinePipeline;

/// Affine transform parameters: rotation `theta` about `centre`, then
/// translation `(tx, ty)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AffineParams {
    /// Rotation angle, radians (positive = counterclockwise in pixel
    /// coordinates).
    pub theta: f64,
    /// X translation, pixels.
    pub tx: f64,
    /// Y translation, pixels.
    pub ty: f64,
    /// Centre of rotation, pixels.
    pub centre: (f64, f64),
}

impl AffineParams {
    /// Identity transform about the frame centre.
    pub fn identity(width: u32, height: u32) -> Self {
        Self {
            theta: 0.0,
            tx: 0.0,
            ty: 0.0,
            centre: (width as f64 / 2.0, height as f64 / 2.0),
        }
    }

    /// The inverse transform (undoes this one, exactly in floats).
    pub fn inverse(&self) -> Self {
        // r' = R(r - c) + c + t  =>  r = R^-1 (r' - c - t) + c.
        // Expressed in the same form: theta' = -theta and the
        // translation must be rotated back.
        let (s, c) = (-self.theta).sin_cos();
        let tx = -(c * self.tx - s * self.ty);
        let ty = -(s * self.tx + c * self.ty);
        Self {
            theta: -self.theta,
            tx,
            ty,
            centre: self.centre,
        }
    }

    /// Applies the forward transform to a point (float math).
    pub fn apply(&self, (x, y): (f64, f64)) -> (f64, f64) {
        let (s, c) = self.theta.sin_cos();
        let mx = x - self.centre.0;
        let my = y - self.centre.1;
        (
            c * mx - s * my + self.centre.0 + self.tx,
            s * mx + c * my + self.centre.1 + self.ty,
        )
    }
}

/// Which transform implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MappingKind {
    /// Double-precision inverse (gather) mapping.
    FloatInverse,
    /// Paper-faithful fixed-point forward (scatter) mapping.
    FixedForward,
    /// Fixed-point inverse (gather) mapping.
    FixedInverse,
}

/// Statistics of one frame transform.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransformStats {
    /// Output pixels never written (forward mapping holes).
    pub holes: u64,
    /// Input pixels mapped outside the output frame.
    pub clipped: u64,
    /// Pixel-pipeline clock cycles consumed (fixed paths).
    pub cycles: u64,
}

/// Transforms `src` with `params` using the chosen implementation.
/// Returns the output frame and per-frame statistics.
pub fn transform(src: &Frame, params: &AffineParams, kind: MappingKind) -> (Frame, TransformStats) {
    match kind {
        MappingKind::FloatInverse => float_inverse(src, params),
        MappingKind::FixedForward => fixed_forward(src, params),
        MappingKind::FixedInverse => fixed_inverse(src, params),
    }
}

fn float_inverse(src: &Frame, params: &AffineParams) -> (Frame, TransformStats) {
    let mut out = Frame::new(src.width(), src.height());
    let inv = params.inverse();
    let mut stats = TransformStats::default();
    for y in 0..out.height() as i32 {
        for x in 0..out.width() as i32 {
            let (sx, sy) = inv.apply((x as f64, y as f64));
            let (sx, sy) = (sx.round() as i32, sy.round() as i32);
            match src.get(sx, sy) {
                Some(p) => out.set(x, y, p),
                None => {
                    stats.clipped += 1;
                    out.set(x, y, Rgb565::BLACK);
                }
            }
        }
    }
    (out, stats)
}

fn fixed_forward(src: &Frame, params: &AffineParams) -> (Frame, TransformStats) {
    let centre = (
        params.centre.0.round() as i32,
        params.centre.1.round() as i32,
    );
    let translation = (params.tx.round() as i32, params.ty.round() as i32);
    let mut pipe = AffinePipeline::new(params.theta, centre, translation);
    let mut out = Frame::new(src.width(), src.height());
    let mut written = vec![false; (src.width() * src.height()) as usize];
    let mut stats = TransformStats::default();

    // Stream every input pixel through the pipeline; place each at its
    // computed output location (scatter). Track the source pixel value
    // in a small shift register matching the pipeline latency.
    let mut value_delay: std::collections::VecDeque<Rgb565> = std::collections::VecDeque::new();
    let total = (src.width() * src.height()) as u64;
    let mut fed = 0u64;
    let mut coords = src.iter();
    loop {
        let input = if fed < total {
            let (x, y, p) = coords.next().expect("counted");
            value_delay.push_back(p);
            fed += 1;
            Some((x as i32, y as i32))
        } else {
            value_delay.push_back(Rgb565::BLACK); // bubble filler
            None
        };
        let produced = pipe.clock(input);
        if let Some((ox, oy)) = produced {
            let p = value_delay.pop_front().expect("pipeline balance");
            if ox >= 0 && oy >= 0 && (ox as u32) < out.width() && (oy as u32) < out.height() {
                out.set(ox, oy, p);
                written[(oy as u32 * out.width() + ox as u32) as usize] = true;
            } else {
                stats.clipped += 1;
            }
        }
        if fed >= total && produced.is_none() && pipe.clocks() > total + AffinePipeline::LATENCY {
            break;
        }
        if pipe.outputs() == total {
            break;
        }
    }
    stats.holes = written.iter().filter(|&&w| !w).count() as u64;
    stats.cycles = pipe.clocks();
    (out, stats)
}

fn fixed_inverse(src: &Frame, params: &AffineParams) -> (Frame, TransformStats) {
    // Inverse mapping with the same fixed-point arithmetic: rotate by
    // -theta and subtract the translation before gathering.
    let centre = (
        params.centre.0.round() as i32,
        params.centre.1.round() as i32,
    );
    let inv = params.inverse();
    let translation = (inv.tx.round() as i32, inv.ty.round() as i32);
    let mut pipe = AffinePipeline::new(inv.theta, centre, translation);
    let mut out = Frame::new(src.width(), src.height());
    let mut stats = TransformStats::default();
    let total = (src.width() * src.height()) as u64;
    let mut fed = 0u64;
    let width = out.width() as i32;
    let mut produced_count = 0u64;
    while produced_count < total {
        let input = if fed < total {
            let x = (fed % src.width() as u64) as i32;
            let y = (fed / src.width() as u64) as i32;
            fed += 1;
            Some((x, y))
        } else {
            None
        };
        if let Some((sx, sy)) = pipe.clock(input) {
            let ox = (produced_count % src.width() as u64) as i32;
            let oy = (produced_count / src.width() as u64) as i32;
            debug_assert!(ox < width);
            match src.get(sx, sy) {
                Some(p) => out.set(ox, oy, p),
                None => {
                    stats.clipped += 1;
                    out.set(ox, oy, Rgb565::BLACK);
                }
            }
            produced_count += 1;
        }
    }
    stats.cycles = pipe.clocks();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;
    use crate::scene::{checkerboard, crosshair};

    #[test]
    fn identity_transforms_are_lossless() {
        let src = checkerboard(64, 64, 8);
        let id = AffineParams::identity(64, 64);
        for kind in [
            MappingKind::FloatInverse,
            MappingKind::FixedForward,
            MappingKind::FixedInverse,
        ] {
            let (out, stats) = transform(&src, &id, kind);
            assert_eq!(out, src, "{kind:?}");
            assert_eq!(stats.holes, 0, "{kind:?}");
        }
    }

    #[test]
    fn inverse_params_undo_apply() {
        let p = AffineParams {
            theta: 0.3,
            tx: 5.0,
            ty: -2.0,
            centre: (100.0, 80.0),
        };
        let inv = p.inverse();
        for &pt in &[(0.0, 0.0), (150.0, 40.0), (99.0, 81.0)] {
            let fwd = p.apply(pt);
            let back = inv.apply(fwd);
            assert!((back.0 - pt.0).abs() < 1e-9);
            assert!((back.1 - pt.1).abs() < 1e-9);
        }
    }

    #[test]
    fn forward_mapping_leaves_holes_under_rotation() {
        let src = checkerboard(128, 128, 8);
        let p = AffineParams {
            theta: 0.1,
            tx: 0.0,
            ty: 0.0,
            centre: (64.0, 64.0),
        };
        let (_, fwd_stats) = transform(&src, &p, MappingKind::FixedForward);
        let (_, inv_stats) = transform(&src, &p, MappingKind::FixedInverse);
        assert!(fwd_stats.holes > 0, "forward scatter should leave holes");
        assert_eq!(inv_stats.holes, 0, "gather never leaves holes");
    }

    #[test]
    fn fixed_inverse_tracks_float_reference() {
        let src = crosshair(128, 128);
        let p = AffineParams {
            theta: 0.07,
            tx: 3.0,
            ty: -1.0,
            centre: (64.0, 64.0),
        };
        let (float_out, _) = transform(&src, &p, MappingKind::FloatInverse);
        let (fixed_out, _) = transform(&src, &p, MappingKind::FixedInverse);
        // The LUT quantizes the angle (half-step = 0.003 rad) so edges
        // can land one pixel off; demand strong but not exact
        // agreement.
        let quality = psnr(&float_out, &fixed_out);
        assert!(quality > 20.0, "psnr {quality}");
    }

    #[test]
    fn rotation_then_counter_rotation_restores_image() {
        let src = checkerboard(128, 128, 16);
        let p = AffineParams {
            theta: 0.05,
            tx: 0.0,
            ty: 0.0,
            centre: (64.0, 64.0),
        };
        let (rotated, _) = transform(&src, &p, MappingKind::FloatInverse);
        let mut back_p = p;
        back_p.theta = -p.theta;
        let (restored, _) = transform(&rotated, &back_p, MappingKind::FloatInverse);
        // Interior should match well (borders clip).
        let quality = psnr(&src, &restored);
        assert!(quality > 15.0, "psnr {quality}");
        // And rotation alone must differ from the source noticeably.
        assert!(psnr(&src, &rotated) < quality);
    }

    #[test]
    fn clipping_counted_for_large_translation() {
        let src = checkerboard(32, 32, 4);
        let p = AffineParams {
            theta: 0.0,
            tx: 100.0,
            ty: 0.0,
            centre: (16.0, 16.0),
        };
        let (out, stats) = transform(&src, &p, MappingKind::FloatInverse);
        assert_eq!(stats.clipped, 32 * 32); // everything gathers from outside
        assert!(out.fraction_of(Rgb565::BLACK) > 0.99);
    }

    #[test]
    fn fixed_forward_cycle_count_is_pixels_plus_latency() {
        let src = checkerboard(32, 32, 4);
        let p = AffineParams::identity(32, 32);
        let (_, stats) = transform(&src, &p, MappingKind::FixedForward);
        // The last pixel emerges LATENCY-1 clocks after the last feed.
        assert_eq!(stats.cycles, 32 * 32 + AffinePipeline::LATENCY - 1);
    }
}
