//! Pinhole camera misalignment model.
//!
//! A camera rigidly mounted with a small roll/pitch/yaw error relative
//! to the vehicle sees a transformed image: roll rotates the picture
//! about the principal point, and pitch/yaw shift it vertically/
//! horizontally by `f * tan(angle)` pixels (small-angle pinhole
//! geometry). This is exactly the distortion the paper's affine stage
//! corrects with the Kalman filter's estimates.

use crate::affine::{transform, AffineParams, MappingKind};
use crate::frame::Frame;
use mathx::EulerAngles;

/// A misaligned camera.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CameraModel {
    /// Focal length in pixels.
    pub focal_px: f64,
    /// Mounting misalignment.
    pub misalignment: EulerAngles,
}

impl CameraModel {
    /// Creates a camera with the given focal length (pixels) and
    /// mounting misalignment.
    pub fn new(focal_px: f64, misalignment: EulerAngles) -> Self {
        Self {
            focal_px,
            misalignment,
        }
    }

    /// The affine distortion this mounting error imprints on the
    /// image: rotation by `-roll`, shift by `(-f tan(yaw), f tan(pitch))`.
    ///
    /// Signs: a camera rolled counterclockwise sees the world rotated
    /// clockwise; a camera yawed left sees the scene shifted right; a
    /// camera pitched up sees the scene shifted down. (Pixel y grows
    /// downward.)
    pub fn distortion(&self, width: u32, height: u32) -> AffineParams {
        AffineParams {
            theta: -self.misalignment.roll,
            tx: -self.focal_px * self.misalignment.yaw.tan(),
            ty: self.focal_px * self.misalignment.pitch.tan(),
            centre: (width as f64 / 2.0, height as f64 / 2.0),
        }
    }

    /// Renders what the misaligned camera sees of a perfectly aligned
    /// reference image.
    pub fn observe(&self, reference: &Frame) -> Frame {
        let params = self.distortion(reference.width(), reference.height());
        transform(reference, &params, MappingKind::FloatInverse).0
    }

    /// The correction transform for an *estimated* misalignment: the
    /// inverse of that estimate's distortion. Applied to the observed
    /// image it restores the aligned view (up to estimation error and
    /// border clipping).
    pub fn correction(
        estimate: &EulerAngles,
        focal_px: f64,
        width: u32,
        height: u32,
    ) -> AffineParams {
        CameraModel::new(focal_px, *estimate)
            .distortion(width, height)
            .inverse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;
    use crate::scene::{crosshair, road};

    #[test]
    fn aligned_camera_is_identity() {
        let cam = CameraModel::new(500.0, EulerAngles::zero());
        let scene = crosshair(160, 120);
        assert_eq!(cam.observe(&scene), scene);
    }

    #[test]
    fn yaw_shifts_horizontally() {
        let cam = CameraModel::new(500.0, EulerAngles::from_degrees(0.0, 0.0, 2.0));
        let d = cam.distortion(640, 480);
        assert!((d.tx - -500.0 * (2.0f64).to_radians().tan()).abs() < 1e-9);
        assert_eq!(d.ty, 0.0);
        assert_eq!(d.theta, 0.0);
    }

    #[test]
    fn pitch_shifts_vertically() {
        let cam = CameraModel::new(500.0, EulerAngles::from_degrees(0.0, 1.5, 0.0));
        let d = cam.distortion(640, 480);
        assert!(d.ty > 12.0 && d.ty < 14.0, "{}", d.ty);
        assert_eq!(d.tx, 0.0);
    }

    #[test]
    fn roll_rotates() {
        let cam = CameraModel::new(500.0, EulerAngles::from_degrees(3.0, 0.0, 0.0));
        let d = cam.distortion(640, 480);
        assert!((d.theta + (3.0f64).to_radians()).abs() < 1e-12);
    }

    #[test]
    fn perfect_estimate_restores_view() {
        let mis = EulerAngles::from_degrees(2.0, -1.0, 1.5);
        let cam = CameraModel::new(400.0, mis);
        let scene = road(160, 120, 0.0);
        let seen = cam.observe(&scene);
        let correction = CameraModel::correction(&mis, 400.0, 160, 120);
        let (restored, _) = transform(&seen, &correction, MappingKind::FloatInverse);
        // Compare on the interior: the borders are legitimately lost
        // to clipping (black bands), which is not an estimation error.
        let crop = |f: &Frame| f.crop(25, 25, 110, 70);
        let before = psnr(&crop(&scene), &crop(&seen));
        let after = psnr(&crop(&scene), &crop(&restored));
        assert!(after > before + 5.0, "before {before:.1} after {after:.1}");
    }

    #[test]
    fn poor_estimate_restores_less() {
        let mis = EulerAngles::from_degrees(3.0, 0.0, 0.0);
        let cam = CameraModel::new(400.0, mis);
        let scene = crosshair(160, 120);
        let seen = cam.observe(&scene);
        let good = CameraModel::correction(&mis, 400.0, 160, 120);
        let bad_est = EulerAngles::from_degrees(1.0, 0.0, 0.0);
        let bad = CameraModel::correction(&bad_est, 400.0, 160, 120);
        let (restored_good, _) = transform(&seen, &good, MappingKind::FloatInverse);
        let (restored_bad, _) = transform(&seen, &bad, MappingKind::FloatInverse);
        assert!(psnr(&scene, &restored_good) > psnr(&scene, &restored_bad));
    }
}
