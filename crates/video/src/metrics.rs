//! Image quality metrics.

use crate::frame::Frame;

/// Mean squared error over the 8-bit luma channel.
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn mse(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "frame sizes differ"
    );
    let n = a.pixels().len();
    if n == 0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (pa, pb) in a.pixels().iter().zip(b.pixels()) {
        let d = pa.luma() as f64 - pb.luma() as f64;
        acc += d * d;
    }
    acc / n as f64
}

/// Peak signal-to-noise ratio in dB over luma; `inf` for identical
/// frames.
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn psnr(a: &Frame, b: &Frame) -> f64 {
    let e = mse(a, b);
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0 * 255.0 / e).log10()
    }
}

/// Sum of absolute luma differences.
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn sad(a: &Frame, b: &Frame) -> u64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "frame sizes differ"
    );
    a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(pa, pb)| (pa.luma() as i64 - pb.luma() as i64).unsigned_abs())
        .sum()
}

/// Fraction of pixels whose luma differs by more than `tol`.
///
/// # Panics
///
/// Panics if the frames differ in size.
pub fn fraction_different(a: &Frame, b: &Frame, tol: u8) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "frame sizes differ"
    );
    let n = a.pixels().len();
    if n == 0 {
        return 0.0;
    }
    let diff = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .filter(|(pa, pb)| (pa.luma() as i32 - pb.luma() as i32).unsigned_abs() > tol as u32)
        .count();
    diff as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Rgb565;
    use crate::scene::checkerboard;

    #[test]
    fn identical_frames() {
        let f = checkerboard(32, 32, 4);
        assert_eq!(mse(&f, &f), 0.0);
        assert_eq!(psnr(&f, &f), f64::INFINITY);
        assert_eq!(sad(&f, &f), 0);
        assert_eq!(fraction_different(&f, &f, 0), 0.0);
    }

    #[test]
    fn opposite_frames() {
        let mut a = Frame::new(8, 8);
        let mut b = Frame::new(8, 8);
        a.fill(Rgb565::BLACK);
        b.fill(Rgb565::WHITE);
        assert!((mse(&a, &b) - 255.0 * 255.0).abs() < 1e-9);
        assert!((psnr(&a, &b) - 0.0).abs() < 1e-9);
        assert_eq!(sad(&a, &b), 64 * 255);
        assert_eq!(fraction_different(&a, &b, 10), 1.0);
    }

    #[test]
    fn psnr_decreases_with_distortion() {
        let base = checkerboard(64, 64, 8);
        let mut small = base.clone();
        let mut large = base.clone();
        for i in 0..4 {
            small.set(i, 0, Rgb565::from_rgb8(128, 128, 128));
        }
        for i in 0..400 {
            large.set(i % 64, i / 64, Rgb565::from_rgb8(128, 128, 128));
        }
        assert!(psnr(&base, &small) > psnr(&base, &large));
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn size_mismatch_panics() {
        let _ = mse(&Frame::new(2, 2), &Frame::new(3, 3));
    }
}
