//! GUI command rendering — the display side of `SabreGuiRun`.
//!
//! The paper's Sabre program drives a graphical user interface through
//! a memory-mapped command port (Figure 7 passes a `LINE_BASE_ADDRESS`
//! to `SabreGuiRun`). The soft core writes packed 32-bit draw commands
//! into the GUI FIFO; the display logic executes them against the
//! framebuffer. This module defines that command word format and the
//! renderer.
//!
//! Command word layout (`op` in the top 4 bits):
//!
//! ```text
//! op 0x1 MOVE  [op:4][x:14][y:14]      set the cursor
//! op 0x2 LINE  [op:4][x:14][y:14]      Bresenham line from cursor, move
//! op 0x3 COLOR [op:4][pad:12][rgb:16]  set the draw color
//! op 0x4 CLEAR [op:4][pad:12][rgb:16]  fill the frame
//! op 0x5 PIXEL [op:4][x:14][y:14]      plot one pixel
//! ```

use crate::frame::{Frame, Rgb565};

/// A decoded GUI command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuiCommand {
    /// Move the cursor without drawing.
    MoveTo {
        /// Target x, pixels.
        x: u16,
        /// Target y, pixels.
        y: u16,
    },
    /// Draw a line from the cursor and move it.
    LineTo {
        /// Target x, pixels.
        x: u16,
        /// Target y, pixels.
        y: u16,
    },
    /// Set the drawing color.
    SetColor(Rgb565),
    /// Fill the whole frame.
    Clear(Rgb565),
    /// Plot a single pixel.
    Pixel {
        /// Target x, pixels.
        x: u16,
        /// Target y, pixels.
        y: u16,
    },
}

const OP_MOVE: u32 = 0x1;
const OP_LINE: u32 = 0x2;
const OP_COLOR: u32 = 0x3;
const OP_CLEAR: u32 = 0x4;
const OP_PIXEL: u32 = 0x5;

impl GuiCommand {
    /// Packs to the 32-bit command word the Sabre writes.
    pub fn encode(self) -> u32 {
        fn xy(op: u32, x: u16, y: u16) -> u32 {
            (op << 28) | ((x as u32 & 0x3FFF) << 14) | (y as u32 & 0x3FFF)
        }
        match self {
            GuiCommand::MoveTo { x, y } => xy(OP_MOVE, x, y),
            GuiCommand::LineTo { x, y } => xy(OP_LINE, x, y),
            GuiCommand::SetColor(c) => (OP_COLOR << 28) | c.0 as u32,
            GuiCommand::Clear(c) => (OP_CLEAR << 28) | c.0 as u32,
            GuiCommand::Pixel { x, y } => xy(OP_PIXEL, x, y),
        }
    }

    /// Decodes a command word; `None` for unknown opcodes.
    pub fn decode(word: u32) -> Option<Self> {
        let x = ((word >> 14) & 0x3FFF) as u16;
        let y = (word & 0x3FFF) as u16;
        let color = Rgb565(word as u16);
        Some(match word >> 28 {
            OP_MOVE => GuiCommand::MoveTo { x, y },
            OP_LINE => GuiCommand::LineTo { x, y },
            OP_COLOR => GuiCommand::SetColor(color),
            OP_CLEAR => GuiCommand::Clear(color),
            OP_PIXEL => GuiCommand::Pixel { x, y },
            _ => return None,
        })
    }
}

/// Executes GUI commands against a framebuffer.
///
/// # Examples
///
/// ```
/// use video::gui::{GuiCommand, GuiRenderer};
/// use video::Rgb565;
///
/// let mut gui = GuiRenderer::new(64, 48);
/// gui.run(&[
///     GuiCommand::Clear(Rgb565::BLACK).encode(),
///     GuiCommand::SetColor(Rgb565::WHITE).encode(),
///     GuiCommand::MoveTo { x: 0, y: 0 }.encode(),
///     GuiCommand::LineTo { x: 63, y: 0 }.encode(),
/// ]);
/// assert_eq!(gui.frame().get(32, 0), Some(Rgb565::WHITE));
/// ```
#[derive(Clone, Debug)]
pub struct GuiRenderer {
    frame: Frame,
    cursor: (i32, i32),
    color: Rgb565,
    executed: u64,
    bad_words: u64,
}

impl GuiRenderer {
    /// Creates a renderer with a black frame.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            frame: Frame::new(width, height),
            cursor: (0, 0),
            color: Rgb565::WHITE,
            executed: 0,
            bad_words: 0,
        }
    }

    /// The framebuffer.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// Commands executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Undecodable words dropped.
    pub fn bad_words(&self) -> u64 {
        self.bad_words
    }

    /// Executes one raw command word.
    pub fn execute(&mut self, word: u32) {
        let Some(cmd) = GuiCommand::decode(word) else {
            self.bad_words += 1;
            return;
        };
        self.executed += 1;
        match cmd {
            GuiCommand::MoveTo { x, y } => self.cursor = (x as i32, y as i32),
            GuiCommand::LineTo { x, y } => {
                let to = (x as i32, y as i32);
                self.line(self.cursor, to);
                self.cursor = to;
            }
            GuiCommand::SetColor(c) => self.color = c,
            GuiCommand::Clear(c) => self.frame.fill(c),
            GuiCommand::Pixel { x, y } => self.frame.set(x as i32, y as i32, self.color),
        }
    }

    /// Executes a batch of raw words (e.g. a drained GUI FIFO).
    pub fn run(&mut self, words: &[u32]) {
        for &w in words {
            self.execute(w);
        }
    }

    /// Bresenham line from `a` to `b` inclusive.
    fn line(&mut self, a: (i32, i32), b: (i32, i32)) {
        let (mut x0, mut y0) = a;
        let (x1, y1) = b;
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.frame.set(x0, y0, self.color);
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_words_roundtrip() {
        let cases = [
            GuiCommand::MoveTo { x: 123, y: 456 },
            GuiCommand::LineTo { x: 0, y: 0 },
            GuiCommand::SetColor(Rgb565::from_rgb8(255, 0, 0)),
            GuiCommand::Clear(Rgb565::BLACK),
            GuiCommand::Pixel { x: 16383, y: 16383 },
        ];
        for c in cases {
            assert_eq!(GuiCommand::decode(c.encode()), Some(c), "{c:?}");
        }
        assert_eq!(GuiCommand::decode(0xF000_0000), None);
    }

    #[test]
    fn horizontal_line_is_continuous() {
        let mut gui = GuiRenderer::new(32, 8);
        gui.run(&[
            GuiCommand::MoveTo { x: 2, y: 4 }.encode(),
            GuiCommand::LineTo { x: 29, y: 4 }.encode(),
        ]);
        for x in 2..=29 {
            assert_eq!(gui.frame().get(x, 4), Some(Rgb565::WHITE), "x={x}");
        }
        assert_eq!(gui.frame().get(1, 4), Some(Rgb565::BLACK));
        assert_eq!(gui.frame().get(30, 4), Some(Rgb565::BLACK));
    }

    #[test]
    fn diagonal_line_hits_endpoints() {
        let mut gui = GuiRenderer::new(32, 32);
        gui.run(&[
            GuiCommand::MoveTo { x: 0, y: 0 }.encode(),
            GuiCommand::LineTo { x: 31, y: 31 }.encode(),
        ]);
        assert_eq!(gui.frame().get(0, 0), Some(Rgb565::WHITE));
        assert_eq!(gui.frame().get(31, 31), Some(Rgb565::WHITE));
        assert_eq!(gui.frame().get(15, 15), Some(Rgb565::WHITE));
    }

    #[test]
    fn clear_and_color() {
        let grey = Rgb565::from_rgb8(64, 64, 64);
        let red = Rgb565::from_rgb8(255, 0, 0);
        let mut gui = GuiRenderer::new(8, 8);
        gui.run(&[
            GuiCommand::Clear(grey).encode(),
            GuiCommand::SetColor(red).encode(),
            GuiCommand::Pixel { x: 3, y: 3 }.encode(),
        ]);
        assert_eq!(gui.frame().get(0, 0), Some(grey));
        assert_eq!(gui.frame().get(3, 3), Some(red));
    }

    #[test]
    fn lines_clip_at_frame_edge() {
        let mut gui = GuiRenderer::new(8, 8);
        gui.run(&[
            GuiCommand::MoveTo { x: 4, y: 4 }.encode(),
            GuiCommand::LineTo { x: 20, y: 4 }.encode(), // runs off-frame
        ]);
        assert_eq!(gui.frame().get(7, 4), Some(Rgb565::WHITE));
        assert_eq!(gui.executed(), 2);
    }

    #[test]
    fn bad_words_counted_not_executed() {
        let mut gui = GuiRenderer::new(8, 8);
        gui.run(&[0xF123_4567, 0x0000_0000]);
        assert_eq!(gui.bad_words(), 2);
        assert_eq!(gui.executed(), 0);
    }
}
