//! The two-bank ZBT double-buffering scheme.
//!
//! "The video processing makes use of both RC200 RAMS in a double-
//! buffering scheme": VideoIn writes incoming frame N into one bank
//! while VideoOut reads (and transforms) frame N-1 from the other;
//! the banks swap at each frame boundary, so the output never tears.

use crate::frame::{Frame, Rgb565};
use fpga::sabre::ZbtSram;

/// Double-buffered framebuffer over two ZBT banks.
///
/// # Examples
///
/// ```
/// use video::{DoubleBuffer, Frame, Rgb565};
/// let mut buf = DoubleBuffer::new(4, 4);
/// let mut f = Frame::new(4, 4);
/// f.fill(Rgb565::WHITE);
/// buf.write_frame(&f);
/// buf.swap();
/// assert_eq!(buf.read_frame(), f);
/// ```
#[derive(Debug)]
pub struct DoubleBuffer {
    banks: [ZbtSram; 2],
    width: u32,
    height: u32,
    /// Which bank VideoIn writes next.
    write_bank: usize,
    frames_written: u64,
    swaps: u64,
}

impl DoubleBuffer {
    /// Creates buffers for the given frame size over two banks sized
    /// to fit (one 16-bit pixel per half-word; we store one pixel per
    /// 32-bit word for simplicity, which still fits a VGA frame in a
    /// 2 MByte bank).
    pub fn new(width: u32, height: u32) -> Self {
        let bytes = (width * height * 4) as usize;
        Self {
            banks: [ZbtSram::new(bytes.max(4)), ZbtSram::new(bytes.max(4))],
            width,
            height,
            write_bank: 0,
            frames_written: 0,
            swaps: 0,
        }
    }

    /// VGA-sized buffers on RC200E-sized banks.
    pub fn rc200e() -> Self {
        let mut buf = Self::new(640, 480);
        buf.banks = [ZbtSram::rc200e_bank(), ZbtSram::rc200e_bank()];
        buf
    }

    /// Frame width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Writes one full incoming frame into the write bank (VideoIn).
    ///
    /// # Panics
    ///
    /// Panics if the frame size differs from the buffer size.
    pub fn write_frame(&mut self, frame: &Frame) {
        assert_eq!(
            (frame.width(), frame.height()),
            (self.width, self.height),
            "frame size mismatch"
        );
        let bank = &mut self.banks[self.write_bank];
        for (x, y, p) in frame.iter() {
            bank.write((y * self.width + x) as usize, p.0 as u32);
        }
        self.frames_written += 1;
    }

    /// Reads the full display frame from the read bank (VideoOut).
    pub fn read_frame(&mut self) -> Frame {
        let read_bank = 1 - self.write_bank;
        let mut out = Frame::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self.banks[read_bank].read((y * self.width + x) as usize);
                out.set(x as i32, y as i32, Rgb565(v as u16));
            }
        }
        out
    }

    /// Reads one pixel from the read bank (the transform's gather
    /// port).
    pub fn read_pixel(&mut self, x: i32, y: i32) -> Option<Rgb565> {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return None;
        }
        let read_bank = 1 - self.write_bank;
        let v = self.banks[read_bank].read((y as u32 * self.width + x as u32) as usize);
        Some(Rgb565(v as u16))
    }

    /// Swaps the banks at a frame boundary.
    pub fn swap(&mut self) {
        self.write_bank = 1 - self.write_bank;
        self.swaps += 1;
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }

    /// Bank swaps so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Total memory access cycles across both banks.
    pub fn access_cycles(&self) -> u64 {
        self.banks[0].access_cycles() + self.banks[1].access_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::checkerboard;

    #[test]
    fn write_then_swap_then_read() {
        let mut buf = DoubleBuffer::new(16, 16);
        let f = checkerboard(16, 16, 4);
        buf.write_frame(&f);
        buf.swap();
        assert_eq!(buf.read_frame(), f);
    }

    #[test]
    fn no_tearing_read_sees_previous_frame() {
        let mut buf = DoubleBuffer::new(8, 8);
        let f1 = checkerboard(8, 8, 2);
        let mut f2 = Frame::new(8, 8);
        f2.fill(Rgb565::WHITE);
        buf.write_frame(&f1);
        buf.swap();
        // Now writing f2 while reading must still return f1.
        buf.write_frame(&f2);
        assert_eq!(buf.read_frame(), f1);
        buf.swap();
        assert_eq!(buf.read_frame(), f2);
    }

    #[test]
    fn pixel_gather_port() {
        let mut buf = DoubleBuffer::new(8, 8);
        let f = checkerboard(8, 8, 2);
        buf.write_frame(&f);
        buf.swap();
        assert_eq!(buf.read_pixel(3, 5), f.get(3, 5));
        assert_eq!(buf.read_pixel(-1, 0), None);
        assert_eq!(buf.read_pixel(8, 0), None);
    }

    #[test]
    fn counters_track_activity() {
        let mut buf = DoubleBuffer::new(4, 4);
        let f = Frame::new(4, 4);
        buf.write_frame(&f);
        buf.swap();
        let _ = buf.read_frame();
        assert_eq!(buf.frames_written(), 1);
        assert_eq!(buf.swaps(), 1);
        assert_eq!(buf.access_cycles(), 16 + 16);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let mut buf = DoubleBuffer::new(4, 4);
        buf.write_frame(&Frame::new(8, 8));
    }

    #[test]
    fn rc200e_fits_vga() {
        let buf = DoubleBuffer::rc200e();
        assert_eq!((buf.width(), buf.height()), (640, 480));
    }
}
