//! Video substrate: framebuffers, synthetic scenes, the camera
//! misalignment model and the affine correction paths.
//!
//! The paper boresights a video camera: the camera is mounted with a
//! small roll/pitch/yaw error relative to the vehicle, and the FPGA
//! corrects the live picture with an affine transform driven by the
//! Kalman filter's misalignment estimate. This crate provides that
//! whole visual chain in simulation:
//!
//! * [`Frame`] — an RGB565 framebuffer (the RC200E's 16-bit video
//!   path).
//! * [`scene`] — synthetic test scenes (checkerboard, road with lane
//!   markings) standing in for the camera input.
//! * [`camera`] — the pinhole model mapping mounting misalignment to
//!   what the sensor sees (roll = image rotation, pitch/yaw = image
//!   translation by `f * tan(angle)`).
//! * [`affine`] — the correction transforms: a floating-point
//!   reference, the paper-faithful fixed-point forward (scatter)
//!   mapping built on the five-stage pipeline, and the quality-
//!   oriented inverse (gather) mapping; plus hole accounting.
//! * [`buffer`] — the two-bank ZBT double-buffering scheme.
//! * [`metrics`] — MSE/PSNR/SAD image quality measures used by the
//!   experiments.

pub mod affine;
pub mod buffer;
pub mod camera;
pub mod frame;
pub mod gui;
pub mod metrics;
pub mod scene;

pub use affine::{AffineParams, MappingKind, TransformStats};
pub use buffer::DoubleBuffer;
pub use camera::CameraModel;
pub use frame::{Frame, Rgb565};
pub use gui::{GuiCommand, GuiRenderer};
pub use metrics::{mse, psnr, sad};
