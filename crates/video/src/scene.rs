//! Synthetic camera scenes.
//!
//! Stand-ins for the live video input: deterministic, structured
//! images whose alignment errors are visually and metrically obvious
//! (sharp edges make PSNR sensitive to sub-degree rotations).

use crate::frame::{Frame, Rgb565};

/// A checkerboard with `cell` px squares.
pub fn checkerboard(width: u32, height: u32, cell: u32) -> Frame {
    let mut f = Frame::new(width, height);
    let cell = cell.max(1);
    for y in 0..height {
        for x in 0..width {
            let on = ((x / cell) + (y / cell)).is_multiple_of(2);
            f.set(
                x as i32,
                y as i32,
                if on {
                    Rgb565::WHITE
                } else {
                    Rgb565::from_rgb8(30, 30, 30)
                },
            );
        }
    }
    f
}

/// A crosshair/target calibration pattern (what a boresight laser
/// would be aimed at).
pub fn crosshair(width: u32, height: u32) -> Frame {
    let mut f = Frame::new(width, height);
    f.fill(Rgb565::from_rgb8(16, 16, 16));
    let cx = width as i32 / 2;
    let cy = height as i32 / 2;
    let mark = Rgb565::from_rgb8(255, 255, 0);
    for x in 0..width as i32 {
        f.set(x, cy, mark);
        f.set(x, cy + 1, mark);
    }
    for y in 0..height as i32 {
        f.set(cx, y, mark);
        f.set(cx + 1, y, mark);
    }
    // Concentric rings.
    for &radius in &[40i32, 80, 120] {
        let steps = radius * 8;
        for i in 0..steps {
            let a = i as f64 / steps as f64 * std::f64::consts::TAU;
            let x = cx + (radius as f64 * a.cos()).round() as i32;
            let y = cy + (radius as f64 * a.sin()).round() as i32;
            f.set(x, y, Rgb565::from_rgb8(0, 255, 255));
        }
    }
    f
}

/// A forward-looking road scene: sky, road surface, converging lane
/// edges and a dashed centre line. `phase` (0..1) advances the dash
/// pattern, animating vehicle motion.
pub fn road(width: u32, height: u32, phase: f64) -> Frame {
    let mut f = Frame::new(width, height);
    let horizon = (height as f64 * 0.45) as i32;
    let sky = Rgb565::from_rgb8(110, 160, 220);
    let tarmac = Rgb565::from_rgb8(60, 60, 64);
    let grass = Rgb565::from_rgb8(40, 110, 40);
    let paint = Rgb565::WHITE;
    let cx = width as f64 / 2.0;
    for y in 0..height as i32 {
        if y < horizon {
            for x in 0..width as i32 {
                f.set(x, y, sky);
            }
            continue;
        }
        // Perspective: road half-width grows from 0 at the horizon to
        // 45% of the frame at the bottom.
        let t = (y - horizon) as f64 / (height as i32 - horizon) as f64;
        let half = 0.45 * width as f64 * t;
        let left = (cx - half) as i32;
        let right = (cx + half) as i32;
        for x in 0..width as i32 {
            let p = if x < left || x > right { grass } else { tarmac };
            f.set(x, y, p);
        }
        // Lane edges.
        for dx in 0..3 {
            f.set(left + dx, y, paint);
            f.set(right - dx, y, paint);
        }
        // Dashed centre line: dashes advance with phase; dash length
        // scales with perspective depth.
        let depth = 1.0 / t.max(1e-3);
        let marker = ((depth * 0.35 + phase) % 1.0) < 0.5;
        if marker {
            let w = (1.0 + 3.0 * t) as i32;
            for dx in -w..=w {
                f.set(cx as i32 + dx, y, paint);
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;

    #[test]
    fn checkerboard_alternates() {
        let f = checkerboard(64, 64, 8);
        assert_eq!(f.get(0, 0), Some(Rgb565::WHITE));
        assert_eq!(f.get(8, 0), Some(Rgb565::from_rgb8(30, 30, 30)));
        assert_eq!(f.get(8, 8), Some(Rgb565::WHITE));
        // Roughly half the pixels are white.
        let frac = f.fraction_of(Rgb565::WHITE);
        assert!((frac - 0.5).abs() < 0.01, "{frac}");
    }

    #[test]
    fn crosshair_center_marked() {
        let f = crosshair(320, 240);
        assert_eq!(f.get(160, 120), Some(Rgb565::from_rgb8(255, 255, 0)));
        assert_eq!(f.get(0, 120), Some(Rgb565::from_rgb8(255, 255, 0)));
        // (160, 5) is on the vertical line and on no ring (distances
        // from the centre are 115, not 40/80/120).
        assert_eq!(f.get(160, 5), Some(Rgb565::from_rgb8(255, 255, 0)));
        // (160, 0) is exactly on the radius-120 ring, painted cyan.
        assert_eq!(f.get(160, 0), Some(Rgb565::from_rgb8(0, 255, 255)));
    }

    #[test]
    fn road_has_sky_and_road() {
        let f = road(320, 240, 0.0);
        // Sky at top.
        assert_eq!(f.get(10, 10), Some(Rgb565::from_rgb8(110, 160, 220)));
        // Grass at bottom corners.
        assert_eq!(f.get(2, 238), Some(Rgb565::from_rgb8(40, 110, 40)));
        // Tarmac near bottom centre (or paint).
        let p = f.get(140, 230).unwrap();
        assert!(
            p == Rgb565::from_rgb8(60, 60, 64) || p == Rgb565::WHITE,
            "{p:?}"
        );
    }

    #[test]
    fn road_phase_animates() {
        let a = road(320, 240, 0.0);
        let b = road(320, 240, 0.25);
        assert!(psnr(&a, &b) < 60.0, "dashes should move between phases");
    }

    #[test]
    fn scenes_are_deterministic() {
        assert_eq!(road(160, 120, 0.5), road(160, 120, 0.5));
        assert_eq!(checkerboard(32, 32, 4), checkerboard(32, 32, 4));
    }
}
