//! Micro-benchmarks pinning the shared `smallmat` dense kernels — the
//! inner loops every filter update spends its time in: the 5x5
//! products, the Gauss-Jordan inverse and the Joseph-form covariance
//! update, on the native-f64 (counted and uncounted) and Q16.16
//! substrates — plus the structure-exploiting kernels that replaced
//! them on the hot path (packed-symmetric Joseph, closed-form 2x2
//! solve) and the lockstep lane filter at 1/2/4/8 lanes.

use boresight::arith::{Arith, F64Arith, F64ArithFast, QArith};
use boresight::filter::{FilterConfig, GenericBoresightFilter};
use boresight::lanes::LaneIekf;
use boresight::smallmat;
use criterion::{criterion_group, criterion_main, Criterion};
use mathx::{Vec2, Vec3, STANDARD_GRAVITY};
use std::hint::black_box;

/// A well-conditioned 5x5 test matrix in the substrate.
fn mat5<A: Arith>(a: &mut A) -> [[A::T; 5]; 5] {
    let mut m = smallmat::identity::<A, 5>(a);
    for (i, row) in m.iter_mut().enumerate() {
        for (j, x) in row.iter_mut().enumerate() {
            let v = a.num(0.1 / (1.0 + (i as f64 - j as f64).abs()));
            *x = a.add(*x, v);
        }
    }
    m
}

/// A 2x5 measurement-style matrix in the substrate.
fn mat2x5<A: Arith>(a: &mut A) -> [[A::T; 5]; 2] {
    let mut m = smallmat::zeros::<A, 2, 5>(a);
    for (i, row) in m.iter_mut().enumerate() {
        for (j, x) in row.iter_mut().enumerate() {
            *x = a.num(((i + 2 * j) as f64).sin());
        }
    }
    m
}

fn bench_substrate<A: Arith + Default>(c: &mut Criterion, name: &str) {
    c.bench_function(&format!("smallmat/mul5x5_{name}"), |bench| {
        let mut a = A::default();
        let x = mat5(&mut a);
        let y = mat5(&mut a);
        bench.iter(|| black_box(smallmat::mul(&mut a, black_box(&x), black_box(&y))))
    });
    c.bench_function(&format!("smallmat/inverse2x2_{name}"), |bench| {
        let mut a = A::default();
        let s = {
            let mut m = smallmat::identity::<A, 2>(&mut a);
            let v = a.num(0.25);
            m[0][1] = v;
            m[1][0] = v;
            m
        };
        bench.iter(|| black_box(smallmat::inverse(&mut a, black_box(&s))))
    });
    c.bench_function(&format!("smallmat/joseph5_{name}"), |bench| {
        let mut a = A::default();
        let p = mat5(&mut a);
        let h = mat2x5(&mut a);
        let k = smallmat::transpose(&mut a, &h);
        let r = a.num(4.9e-5);
        bench.iter(|| {
            black_box(smallmat::joseph_update(
                &mut a,
                black_box(&p),
                black_box(&k),
                black_box(&h),
                r,
            ))
        })
    });
}

/// The structure-exploiting kernels the IEKF hot path switched to:
/// the packed-symmetric rank-2 Joseph update and the closed-form LDL
/// solve of the 2x2 innovation, benchmarked against the dense kernels
/// above (same shapes, same substrates).
fn bench_structured<A: Arith + Default>(c: &mut Criterion, name: &str) {
    c.bench_function(&format!("smallmat/solve2_closed_{name}"), |bench| {
        let mut a = A::default();
        let s = {
            let mut m = smallmat::identity::<A, 2>(&mut a);
            let v = a.num(0.25);
            m[0][1] = v;
            m[1][0] = v;
            m
        };
        bench.iter(|| black_box(smallmat::inverse2_sym(&mut a, black_box(&s))))
    });
    c.bench_function(&format!("smallmat/joseph5_sym_{name}"), |bench| {
        let mut a = A::default();
        let p = mat5(&mut a);
        let h = mat2x5(&mut a);
        let k = smallmat::transpose(&mut a, &h);
        let r = a.num(4.9e-5);
        bench.iter(|| {
            black_box(smallmat::joseph_update_sym(
                &mut a,
                black_box(&p),
                black_box(&k),
                black_box(&h),
                r,
            ))
        })
    });
}

/// One full predict + update step of the lockstep lane filter at `L`
/// lanes. Throughput per filter is the reported time divided by `L` —
/// the lane win is the gap to `L` times the scalar row.
fn bench_lane_step<const L: usize>(c: &mut Criterion) {
    c.bench_function(&format!("lanes/iekf_step_x{L}"), |bench| {
        let mut kf: LaneIekf<F64ArithFast, L> = LaneIekf::new(FilterConfig::paper_static());
        let f = Vec3::new([1.2, -0.8, STANDARD_GRAVITY]);
        let z: [Vec2; L] =
            std::array::from_fn(|lane| Vec2::new([0.01 * lane as f64, -0.005 * lane as f64]));
        let mut t = 0.0;
        bench.iter(|| {
            t += 0.005;
            kf.predict(0.005);
            black_box(kf.update_lanes(black_box(&z), &[f; L], t))
        })
    });
}

/// The scalar filter step the lane rows are compared against.
fn bench_scalar_step(c: &mut Criterion) {
    c.bench_function("lanes/iekf_step_scalar", |bench| {
        let mut kf: GenericBoresightFilter<F64ArithFast> =
            GenericBoresightFilter::new(FilterConfig::paper_static());
        let f = Vec3::new([1.2, -0.8, STANDARD_GRAVITY]);
        let z = Vec2::new([0.01, -0.005]);
        let mut t = 0.0;
        bench.iter(|| {
            t += 0.005;
            kf.predict(0.005);
            black_box(kf.update(black_box(z), f, t))
        })
    });
}

fn bench_smallmat(c: &mut Criterion) {
    bench_substrate::<F64Arith>(c, "f64");
    bench_substrate::<F64ArithFast>(c, "f64_uncounted");
    bench_substrate::<QArith<16>>(c, "q16.16");
    bench_structured::<F64Arith>(c, "f64");
    bench_structured::<F64ArithFast>(c, "f64_uncounted");
    bench_structured::<QArith<16>>(c, "q16.16");
    bench_scalar_step(c);
    bench_lane_step::<2>(c);
    bench_lane_step::<4>(c);
    bench_lane_step::<8>(c);
}

criterion_group!(benches, bench_smallmat);
criterion_main!(benches);
