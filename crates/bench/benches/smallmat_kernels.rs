//! Micro-benchmarks pinning the shared `smallmat` dense kernels — the
//! inner loops every filter update spends its time in: the 5x5
//! products, the Gauss-Jordan inverse and the Joseph-form covariance
//! update, on the native-f64 (counted and uncounted) and Q16.16
//! substrates.

use boresight::arith::{Arith, F64Arith, F64ArithFast, FixedArith};
use boresight::smallmat;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A well-conditioned 5x5 test matrix in the substrate.
fn mat5<A: Arith>(a: &mut A) -> [[A::T; 5]; 5] {
    let mut m = smallmat::identity::<A, 5>(a);
    for (i, row) in m.iter_mut().enumerate() {
        for (j, x) in row.iter_mut().enumerate() {
            let v = a.num(0.1 / (1.0 + (i as f64 - j as f64).abs()));
            *x = a.add(*x, v);
        }
    }
    m
}

/// A 2x5 measurement-style matrix in the substrate.
fn mat2x5<A: Arith>(a: &mut A) -> [[A::T; 5]; 2] {
    let mut m = smallmat::zeros::<A, 2, 5>(a);
    for (i, row) in m.iter_mut().enumerate() {
        for (j, x) in row.iter_mut().enumerate() {
            *x = a.num(((i + 2 * j) as f64).sin());
        }
    }
    m
}

fn bench_substrate<A: Arith + Default>(c: &mut Criterion, name: &str) {
    c.bench_function(&format!("smallmat/mul5x5_{name}"), |bench| {
        let mut a = A::default();
        let x = mat5(&mut a);
        let y = mat5(&mut a);
        bench.iter(|| black_box(smallmat::mul(&mut a, black_box(&x), black_box(&y))))
    });
    c.bench_function(&format!("smallmat/inverse2x2_{name}"), |bench| {
        let mut a = A::default();
        let s = {
            let mut m = smallmat::identity::<A, 2>(&mut a);
            let v = a.num(0.25);
            m[0][1] = v;
            m[1][0] = v;
            m
        };
        bench.iter(|| black_box(smallmat::inverse(&mut a, black_box(&s))))
    });
    c.bench_function(&format!("smallmat/joseph5_{name}"), |bench| {
        let mut a = A::default();
        let p = mat5(&mut a);
        let h = mat2x5(&mut a);
        let k = smallmat::transpose(&mut a, &h);
        let r = a.num(4.9e-5);
        bench.iter(|| {
            black_box(smallmat::joseph_update(
                &mut a,
                black_box(&p),
                black_box(&k),
                black_box(&h),
                r,
            ))
        })
    });
}

fn bench_smallmat(c: &mut Criterion) {
    bench_substrate::<F64Arith>(c, "f64");
    bench_substrate::<F64ArithFast>(c, "f64_uncounted");
    bench_substrate::<FixedArith>(c, "q16.16");
}

criterion_group!(benches, bench_smallmat);
criterion_main!(benches);
