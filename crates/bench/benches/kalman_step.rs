//! Filter-core benchmarks: one predict+update of the production
//! 5-state IEKF and of the 3-state ablation filters.

use boresight::arith::{F64Arith, Kf3, QArith};
use boresight::filter::{BoresightFilter, FilterConfig, GenericBoresightFilter};
use criterion::{criterion_group, criterion_main, Criterion};
use mathx::{Vec2, Vec3, STANDARD_GRAVITY};
use std::hint::black_box;

fn bench_kalman(c: &mut Criterion) {
    let f_b = Vec3::new([1.0, -0.5, STANDARD_GRAVITY]);
    let z = Vec2::new([0.3, -0.2]);

    c.bench_function("kalman/iekf5_update", |bench| {
        let mut kf = BoresightFilter::new(FilterConfig::paper_static());
        let mut t = 0.0;
        bench.iter(|| {
            kf.predict(0.005);
            t += 0.005;
            black_box(kf.update(black_box(z), black_box(f_b), t))
        })
    });
    c.bench_function("kalman/iekf5_fixed_update", |bench| {
        let mut kf: GenericBoresightFilter<QArith<16>> =
            GenericBoresightFilter::new(FilterConfig::paper_static());
        let mut t = 0.0;
        bench.iter(|| {
            kf.predict(0.005);
            t += 0.005;
            black_box(kf.update(black_box(z), black_box(f_b), t))
        })
    });
    c.bench_function("kalman/kf3_f64_step", |bench| {
        let mut kf = Kf3::new(F64Arith::default(), 0.1, 0.007);
        bench.iter(|| {
            kf.step(black_box(z), black_box(f_b), 1e-10);
            black_box(kf.update_count())
        })
    });
    c.bench_function("kalman/kf3_fixed_step", |bench| {
        let mut kf = Kf3::new(QArith::<16>::default(), 0.1, 0.007);
        bench.iter(|| {
            kf.step(black_box(z), black_box(f_b), 1e-10);
            black_box(kf.update_count())
        })
    });
}

criterion_group!(benches, bench_kalman);
criterion_main!(benches);
