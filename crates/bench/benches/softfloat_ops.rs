//! P2: softfloat operation benchmarks (host throughput of the
//! emulation layer itself; cycle costs on Sabre come from the cost
//! model, not wall time).

use criterion::{criterion_group, criterion_main, Criterion};
use fpga::softfloat::{f32impl, f64impl, Sf32, Sf64};
use std::hint::black_box;

fn bench_softfloat(c: &mut Criterion) {
    let a64 = Sf64::from_f64(std::f64::consts::PI);
    let b64 = Sf64::from_f64(std::f64::consts::E);
    let a32 = Sf32::from_f32(std::f32::consts::PI);
    let b32 = Sf32::from_f32(std::f32::consts::E);

    c.bench_function("softfloat/add_f64", |bench| {
        bench.iter(|| f64impl::add(black_box(a64), black_box(b64)))
    });
    c.bench_function("softfloat/mul_f64", |bench| {
        bench.iter(|| f64impl::mul(black_box(a64), black_box(b64)))
    });
    c.bench_function("softfloat/div_f64", |bench| {
        bench.iter(|| f64impl::div(black_box(a64), black_box(b64)))
    });
    c.bench_function("softfloat/sqrt_f64", |bench| {
        bench.iter(|| f64impl::sqrt(black_box(a64)))
    });
    c.bench_function("softfloat/add_f32", |bench| {
        bench.iter(|| f32impl::add(black_box(a32), black_box(b32)))
    });
    c.bench_function("softfloat/mul_f32", |bench| {
        bench.iter(|| f32impl::mul(black_box(a32), black_box(b32)))
    });
    c.bench_function("softfloat/div_f32", |bench| {
        bench.iter(|| f32impl::div(black_box(a32), black_box(b32)))
    });
}

criterion_group!(benches, bench_softfloat);
criterion_main!(benches);
