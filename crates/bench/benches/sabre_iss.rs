//! P3: Sabre instruction-set-simulator throughput on a busy loop.

use criterion::{criterion_group, criterion_main, Criterion};
use fpga::sabre::{assemble, Sabre, StopReason};
use std::hint::black_box;

fn bench_iss(c: &mut Criterion) {
    let program = assemble(
        "
                addi r1, r0, 0
                lui  r2, 0x0001      ; 65536 iterations
        loop:   addi r1, r1, 3
                mul  r3, r1, r1
                sra  r3, r3, r4
                sw   r3, 0(r0)
                lw   r5, 0(r0)
                addi r2, r2, -1
                bne  r2, r0, loop
                halt
    ",
    )
    .expect("assembles");
    c.bench_function("sabre/busy_loop_65536_iters", |bench| {
        bench.iter(|| {
            let mut cpu = Sabre::with_standard_bus();
            cpu.load_program(&program.words);
            let stop = cpu.run(u64::MAX);
            assert_eq!(stop, StopReason::Halted);
            black_box(cpu.instructions())
        })
    });
}

criterion_group!(benches, bench_iss);
criterion_main!(benches);
