//! P1: affine pipeline throughput — one VGA frame through the
//! five-stage fixed-point rotation pipeline, plus the functional
//! (per-pixel) transform for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use fpga::pipeline::AffinePipeline;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("pipeline/vga_frame_pipelined", |bench| {
        bench.iter(|| {
            let mut pipe = AffinePipeline::new(0.05, (320, 240), (2, -1));
            let total = 640u64 * 480;
            let mut checksum = 0i64;
            for i in 0..total + AffinePipeline::LATENCY {
                let input = if i < total {
                    Some(((i % 640) as i32, (i / 640) as i32))
                } else {
                    None
                };
                if let Some((x, y)) = pipe.clock(input) {
                    checksum += (x + y) as i64;
                }
            }
            black_box(checksum)
        })
    });
    c.bench_function("pipeline/per_pixel_functional", |bench| {
        let pipe = AffinePipeline::new(0.05, (320, 240), (2, -1));
        bench.iter(|| {
            let mut checksum = 0i64;
            for i in 0..640 * 480i32 {
                let (x, y) = pipe.transform((i % 640, i / 640));
                checksum += (x + y) as i64;
            }
            black_box(checksum)
        })
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
