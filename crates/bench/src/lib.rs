//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md section 5 and EXPERIMENTS.md for the index);
//! this library provides the small common pieces: CSV output and
//! aligned-table printing.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Output directory for generated CSV series (`bench_out/` at the
/// workspace root).
pub fn out_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench_out");
    fs::create_dir_all(&dir).expect("create bench_out");
    dir
}

/// Writes a CSV file of named columns into `bench_out/`.
///
/// # Panics
///
/// Panics if the columns have unequal lengths or the file cannot be
/// written.
pub fn write_csv(name: &str, columns: &[(&str, &[f64])]) -> PathBuf {
    assert!(!columns.is_empty(), "need at least one column");
    let rows = columns[0].1.len();
    for (label, data) in columns {
        assert_eq!(data.len(), rows, "column `{label}` length mismatch");
    }
    let path = out_dir().join(name);
    let mut file = fs::File::create(&path).expect("create csv");
    let header: Vec<&str> = columns.iter().map(|(label, _)| *label).collect();
    writeln!(file, "{}", header.join(",")).expect("write header");
    for r in 0..rows {
        let row: Vec<String> = columns.iter().map(|(_, d)| format!("{}", d[r])).collect();
        writeln!(file, "{}", row.join(",")).expect("write row");
    }
    path
}

/// Prints an aligned text table: a header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let path = write_csv(
            "test_helper.csv",
            &[("t", &[0.0, 1.0][..]), ("v", &[2.0, 3.0][..])],
        );
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("t,v\n"));
        assert!(text.contains("1,3"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn csv_mismatched_columns_panic() {
        let _ = write_csv("bad.csv", &[("a", &[0.0][..]), ("b", &[1.0, 2.0][..])]);
    }
}
